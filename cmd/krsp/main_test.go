package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs/rec"
)

func writeInstanceFile(t *testing.T) string {
	t.Helper()
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	ins := graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: 10, Name: "cli test"}
	path := filepath.Join(t.TempDir(), "ins.krsp")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graph.WriteInstance(f, ins); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSolve(t *testing.T) {
	path := writeInstanceFile(t)
	var out bytes.Buffer
	if _, err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "solve: k=2") || !strings.Contains(s, "lower-bound=") {
		t.Fatalf("output:\n%s", s)
	}
	if strings.Contains(s, "BOUND VIOLATED") {
		t.Fatalf("bound violated:\n%s", s)
	}
	if !strings.Contains(s, "path 1:") || !strings.Contains(s, "path 2:") {
		t.Fatalf("paths missing:\n%s", s)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	path := writeInstanceFile(t)
	for _, algo := range []string{"solve", "scaled", "phase1", "exact", "minsum", "mindelay", "greedy", "sweep"} {
		var out bytes.Buffer
		if _, err := run([]string{"-algo", algo, path}, &out); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), algo+": k=2") {
			t.Fatalf("%s output:\n%s", algo, out.String())
		}
	}
}

func TestRunLPEngineAndQuiet(t *testing.T) {
	path := writeInstanceFile(t)
	var out bytes.Buffer
	if _, err := run([]string{"-engine", "lp", "-quiet", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "path 1:") {
		t.Fatal("quiet mode printed paths")
	}
}

func TestRunDOTOutput(t *testing.T) {
	path := writeInstanceFile(t)
	dot := filepath.Join(t.TempDir(), "out.dot")
	var out bytes.Buffer
	if _, err := run([]string{"-dot", dot, path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") || !strings.Contains(string(data), "color=red") {
		t.Fatalf("dot file:\n%s", data)
	}
}

func TestRunDIMACSFormat(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	ins := graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: 22}
	path := filepath.Join(t.TempDir(), "ins.gr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteDIMACS(f, ins); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if _, err := run([]string{"-format", "dimacs", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "solve: k=2") {
		t.Fatalf("output:\n%s", out.String())
	}
	if _, err := run([]string{"-format", "bogus", path}, &out); err == nil {
		t.Fatal("bogus format accepted")
	}
}

func TestRunMinRatioEngine(t *testing.T) {
	path := writeInstanceFile(t)
	var out bytes.Buffer
	if _, err := run([]string{"-engine", "minratio", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "BOUND VIOLATED") {
		t.Fatal("bound violated")
	}
}

func TestRunErrors(t *testing.T) {
	path := writeInstanceFile(t)
	cases := [][]string{
		{"-algo", "bogus", path},
		{"-engine", "bogus", path},
		{"/nonexistent/file.krsp"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if _, err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestRunStatsAndTrace(t *testing.T) {
	path := writeInstanceFile(t)
	tfile := filepath.Join(t.TempDir(), "trace.jsonl")
	var out bytes.Buffer
	if _, err := run([]string{"-stats", "-trace", tfile, path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	i := strings.Index(s, "cancellations=")
	if i < 0 {
		t.Fatalf("no stats line:\n%s", s)
	}
	var cancels int
	if _, err := fmt.Sscanf(s[i:], "cancellations=%d", &cancels); err != nil {
		t.Fatalf("stats line unparsable: %v\n%s", err, s)
	}
	data, err := os.ReadFile(tfile)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	if trimmed := strings.TrimSpace(string(data)); trimmed != "" {
		lines = strings.Split(trimmed, "\n")
	}
	// One record per cancellation plus the summary trailer.
	if len(lines) != cancels+1 {
		t.Fatalf("trace has %d lines, stats reported %d cancellations (+1 summary)\n%s",
			len(lines), cancels, data)
	}
	for _, line := range lines[:cancels] {
		var rec core.IterationRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if rec.CRef <= 0 {
			t.Fatalf("trace record missing cref: %q", line)
		}
	}
	var sum traceSummary
	if err := json.Unmarshal([]byte(lines[cancels]), &sum); err != nil {
		t.Fatalf("trace summary %q: %v", lines[cancels], err)
	}
	if !sum.Summary || sum.Degraded || sum.Iterations != cancels {
		t.Fatalf("trace summary = %+v, want summary=true degraded=false iterations=%d",
			sum, cancels)
	}
	// -stats/-trace are meaningless for algorithms without core.Stats.
	if _, err := run([]string{"-algo", "exact", "-stats", path}, &out); err == nil {
		t.Fatal("-stats with -algo exact accepted")
	}
}

// TestRunTimeoutDegrades: an expired -timeout must still print a feasible
// answer, flag it, return degraded=true (exit code 2 in main), and close
// the trace with a degraded summary line.
func TestRunTimeoutDegrades(t *testing.T) {
	path := writeInstanceFile(t)
	tfile := filepath.Join(t.TempDir(), "trace.jsonl")
	var out bytes.Buffer
	degraded, err := run([]string{"-timeout", "-1ms", "-trace", tfile, path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !degraded {
		t.Fatalf("expected a degraded run:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "[DEGRADED") {
		t.Fatalf("summary line missing the degraded marker:\n%s", s)
	}
	if strings.Contains(s, "BOUND VIOLATED") {
		t.Fatalf("degraded answer violates the bound:\n%s", s)
	}
	data, err := os.ReadFile(tfile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var sum traceSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatalf("trace summary: %v", err)
	}
	if !sum.Summary || !sum.Degraded {
		t.Fatalf("trace summary = %+v, want summary=true degraded=true", sum)
	}
	// A generous timeout must not degrade anything.
	out.Reset()
	degraded, err = run([]string{"-timeout", "1h", path}, &out)
	if err != nil || degraded {
		t.Fatalf("generous timeout: degraded=%v err=%v", degraded, err)
	}
}

func TestRunInfeasibleInstance(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1, 10)
	ins := graph.Instance{G: g, S: 0, T: 1, K: 2, Bound: 5}
	path := filepath.Join(t.TempDir(), "bad.krsp")
	f, _ := os.Create(path)
	if err := graph.WriteInstance(f, ins); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if _, err := run([]string{path}, &out); err == nil {
		t.Fatal("infeasible instance accepted")
	}
}

// TestRunFlightDump: -flight writes a parseable flight-recorder dump whose
// stream brackets the solve, and -trace-id pins the header's trace ID.
func TestRunFlightDump(t *testing.T) {
	path := writeInstanceFile(t)
	dump := filepath.Join(t.TempDir(), "flight.jsonl")
	const id = "4bf92f3577b34da6a3ce929d0e0e4736"
	var out bytes.Buffer
	if _, err := run([]string{"-quiet", "-flight", dump, "-trace-id", id, path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dump)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr, evs, err := rec.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Trace != id || hdr.Schema != rec.Schema {
		t.Fatalf("flight header = %+v, want trace %s schema %d", hdr, id, rec.Schema)
	}
	if len(evs) == 0 || evs[0].Kind != rec.KindSolveStart || evs[len(evs)-1].Kind != rec.KindSolveEnd {
		t.Fatalf("flight stream malformed: %d events", len(evs))
	}
}

// TestRunFlightFlagValidation: bad trace IDs and baseline algos are
// rejected up front.
func TestRunFlightFlagValidation(t *testing.T) {
	path := writeInstanceFile(t)
	dump := filepath.Join(t.TempDir(), "flight.jsonl")
	var out bytes.Buffer
	if _, err := run([]string{"-flight", dump, "-trace-id", "XYZ", path}, &out); err == nil {
		t.Fatal("bad -trace-id accepted")
	}
	if _, err := run([]string{"-algo", "minsum", "-flight", dump, path}, &out); err == nil {
		t.Fatal("-flight with a baseline algo accepted")
	}
}

// TestTraceSummarySchema: the -trace trailer line carries the schema
// version and the trace ID.
func TestTraceSummarySchema(t *testing.T) {
	path := writeInstanceFile(t)
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	const id = "4bf92f3577b34da6a3ce929d0e0e4736"
	var out bytes.Buffer
	if _, err := run([]string{"-quiet", "-trace", trace, "-trace-id", id, path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var sum traceSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Summary || sum.Schema != rec.Schema || sum.Trace != id {
		t.Fatalf("summary = %+v, want schema %d trace %s", sum, rec.Schema, id)
	}
}
