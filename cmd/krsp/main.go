// Command krsp solves a kRSP instance from a file (or stdin) and prints
// the k disjoint paths with a cost/delay certificate.
//
// Usage:
//
//	krsp [flags] [instance-file]
//
// Flags:
//
//	-algo     solver: solve (default), scaled, phase1, exact,
//	          minsum, mindelay, greedy, sweep
//	-eps      epsilon for -algo scaled (default 0.25)
//	-engine   bicameral engine: comb (default), lp, or minratio
//	-format   instance format: krsp (default) or dimacs (.gr extension)
//	-dot      write a Graphviz rendering with the solution highlighted
//	-quiet    print only the summary line
//	-stats    print the full solve statistics on one stats: line
//	-trace    write one JSON object per cancellation (core.IterationRecord)
//	          to this file, one per line (JSONL), closed by a summary line
//	          {"summary":true,"schema":...,"trace":...,"degraded":...};
//	          implies trace collection
//	-flight   run the solve with a flight recorder attached and write the
//	          event dump as JSONL to this file (render with krsptrace)
//	-trace-id use this 32-hex W3C trace ID for -trace/-flight output
//	          instead of minting one (correlate with krspd dumps)
//	-timeout  deadline for -algo solve/scaled/phase1; past it the best
//	          feasible intermediate is printed and krsp exits 2
//
// Exit codes: 0 solved, 2 solved but degraded (deadline hit, answer is
// feasible but not bound-certified-final), 1 error.
//
// The instance format is documented in internal/graph (WriteInstance).
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/baseline"
	"repro/internal/bicameral"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
)

func main() {
	degraded, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "krsp:", err)
		os.Exit(1)
	}
	if degraded {
		os.Exit(2)
	}
}

// run executes one CLI invocation. The degraded return is true when a
// -timeout deadline cut the solve short and the printed answer is the best
// feasible intermediate (main maps it to exit code 2).
func run(args []string, out io.Writer) (bool, error) {
	fs := flag.NewFlagSet("krsp", flag.ContinueOnError)
	algo := fs.String("algo", "solve", "solver: solve|scaled|phase1|exact|minsum|mindelay|greedy|sweep")
	eps := fs.Float64("eps", 0.25, "epsilon for -algo scaled")
	engine := fs.String("engine", "comb", "bicameral engine: comb|lp|minratio")
	dotPath := fs.String("dot", "", "write Graphviz output to this file")
	format := fs.String("format", "krsp", "instance format: krsp|dimacs")
	quiet := fs.Bool("quiet", false, "print only the summary line")
	statsFlag := fs.Bool("stats", false, "print full solve statistics")
	tracePath := fs.String("trace", "", "write the cancellation trace as JSONL to this file")
	flightPath := fs.String("flight", "", "write the flight-recorder event dump as JSONL to this file")
	traceID := fs.String("trace-id", "", "32-hex W3C trace ID for -trace/-flight output (minted if empty)")
	timeout := fs.Duration("timeout", 0,
		"deadline for -algo solve/scaled/phase1; best feasible intermediate past it"+
			" (0 = none, negative = already expired)")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return false, err
	}

	var in io.Reader = os.Stdin
	name := "<stdin>"
	var err error
	if fs.NArg() > 0 {
		var f *os.File
		f, err = os.Open(fs.Arg(0))
		if err != nil {
			return false, err
		}
		defer f.Close()
		in = f
		name = fs.Arg(0)
	}
	var ins graph.Instance
	switch *format {
	case "krsp":
		ins, err = graph.ReadInstance(in)
	case "dimacs":
		ins, err = graph.ReadDIMACS(in)
	default:
		return false, fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return false, fmt.Errorf("parsing %s: %w", name, err)
	}
	if err := ins.Validate(); err != nil {
		return false, err
	}

	if *traceID != "" && !validTraceID(*traceID) {
		return false, fmt.Errorf("bad -trace-id %q: want 32 lowercase hex digits, not all zero", *traceID)
	}
	if *traceID == "" {
		*traceID = mintTraceID()
	}
	opts := core.Options{CollectTrace: *tracePath != ""}
	var flight *rec.Recorder
	if *flightPath != "" {
		// The CLI is a cmd/ edge like krspd: the real clock may enter here.
		flight = rec.New(obs.RealClock{}, rec.DefaultCapacity)
		opts.Recorder = flight
	}
	switch *engine {
	case "comb":
	case "lp":
		opts.Engine = bicameral.EngineLP
	case "minratio":
		opts.Engine = bicameral.EngineMinRatio
	default:
		return false, fmt.Errorf("unknown engine %q", *engine)
	}

	var (
		sol        graph.Solution
		cost, dly  int64
		lowerBound int64 = -1
		label            = *algo
		solveStats *core.Stats
		degraded   bool
	)
	switch *algo {
	case "solve", "scaled", "phase1":
		// Negative timeouts create an already-expired deadline: the solver
		// degrades at its first poll, which makes exit code 2 testable
		// without racing a wall-clock timer.
		ctx := context.Background()
		if *timeout != 0 {
			var cancelCtx context.CancelFunc
			ctx, cancelCtx = context.WithTimeout(ctx, *timeout)
			defer cancelCtx()
		}
		var res core.Result
		switch *algo {
		case "solve":
			res, err = core.SolveCtx(ctx, ins, opts)
		case "scaled":
			res, err = core.SolveScaledCtx(ctx, ins, *eps, *eps, opts)
		case "phase1":
			opts.Phase1Only = true
			res, err = core.SolveCtx(ctx, ins, opts)
		}
		if err != nil {
			return false, err
		}
		degraded = res.Stats.Degraded
		sol, cost, dly, lowerBound = res.Solution, res.Cost, res.Delay, res.LowerBound
		solveStats = &res.Stats
		if !*quiet {
			fmt.Fprintf(out, "phase1 λ-iterations: %d, cancellations: %d (types %v)\n",
				res.Stats.Phase1.LambdaIterations, res.Stats.Iterations, res.Stats.CyclesByType)
			if res.Exact {
				fmt.Fprintln(out, "solution is exactly optimal (min-cost flow met the bound)")
			}
		}
	case "exact":
		res, err := exact.BruteForce(ins, 0)
		if err != nil {
			return false, err
		}
		sol, cost, dly, lowerBound = res.Solution, res.Cost, res.Delay, res.Cost
	case "minsum", "mindelay", "greedy", "sweep":
		var fn baseline.Func
		for _, b := range baseline.All() {
			if b.Name == *algo {
				fn = b.Run
			}
		}
		res, err := fn(ins)
		if err != nil {
			return false, err
		}
		sol, cost, dly = res.Solution, res.Cost, res.Delay
	default:
		return false, fmt.Errorf("unknown algorithm %q", *algo)
	}

	if (*statsFlag || *tracePath != "" || *flightPath != "") && solveStats == nil {
		return false, fmt.Errorf("-stats, -trace, and -flight require -algo solve, scaled, or phase1")
	}

	fmt.Fprintf(out, "%s: k=%d cost=%d delay=%d bound=%d", label, ins.K, cost, dly, ins.Bound)
	if lowerBound > 0 {
		fmt.Fprintf(out, " lower-bound=%d (factor ≤ %.3f)", lowerBound, float64(cost)/float64(lowerBound))
	}
	if dly > ins.Bound {
		fmt.Fprint(out, " [BOUND VIOLATED]")
	}
	if degraded {
		fmt.Fprint(out, " [DEGRADED: deadline hit, best feasible intermediate]")
	}
	fmt.Fprintln(out)
	if !*quiet {
		for i, p := range sol.Paths {
			fmt.Fprintf(out, "  path %d: %s (cost %d, delay %d)\n",
				i+1, p.Format(ins.G), p.Cost(ins.G), p.Delay(ins.G))
		}
	}
	if *statsFlag {
		s := solveStats
		fmt.Fprintf(out, "stats: lambda-iterations=%d cancellations=%d"+
			" cycles0=%d cycles1=%d cycles2=%d cref-escalations=%d"+
			" budgets-tried=%d relaxed-cap=%t phase1-fallback=%t\n",
			s.Phase1.LambdaIterations, s.Iterations,
			s.CyclesByType[0], s.CyclesByType[1], s.CyclesByType[2],
			s.CRefEscalations, s.BudgetsTried, s.RelaxedCap, s.FellBackToPhase1)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return degraded, err
		}
		enc := json.NewEncoder(f) // one record per line: JSONL
		for _, rec := range solveStats.Trace {
			if err := enc.Encode(rec); err != nil {
				f.Close()
				return degraded, err
			}
		}
		// Trailer line: whole-solve outcome, distinguished by "summary".
		if err := enc.Encode(traceSummary{
			Summary: true, Schema: rec.Schema, Trace: *traceID, Degraded: degraded,
			Cost: cost, Delay: dly, Iterations: solveStats.Iterations,
		}); err != nil {
			f.Close()
			return degraded, err
		}
		if err := f.Close(); err != nil {
			return degraded, err
		}
	}
	if *flightPath != "" {
		f, err := os.Create(*flightPath)
		if err != nil {
			return degraded, err
		}
		if err := flight.WriteJSONL(f, *traceID); err != nil {
			f.Close()
			return degraded, err
		}
		if err := f.Close(); err != nil {
			return degraded, err
		}
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return degraded, err
		}
		defer f.Close()
		if err := graph.WriteDOT(f, ins.G, ins.Name, graph.NewEdgeSet(sol.EdgeIDs()...)); err != nil {
			return degraded, err
		}
	}
	return degraded, nil
}

// traceSummary is the final -trace JSONL line: the whole-solve outcome
// following the per-iteration records. Schema versions the line layout
// (shared with the flight-recorder dump format, rec.Schema); Trace carries
// the W3C trace ID so CLI traces correlate with krspd/krsptrace dumps.
type traceSummary struct {
	Summary    bool   `json:"summary"`
	Schema     int    `json:"schema"`
	Trace      string `json:"trace,omitempty"`
	Degraded   bool   `json:"degraded"`
	Cost       int64  `json:"cost"`
	Delay      int64  `json:"delay"`
	Iterations int    `json:"iterations"`
}

// validTraceID accepts a W3C trace ID: 32 lowercase hex digits, not all
// zero.
func validTraceID(s string) bool {
	if len(s) != 32 {
		return false
	}
	nonzero := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			nonzero = true
		}
	}
	return nonzero
}

// mintTraceID draws a fresh 128-bit trace ID; like the real clock,
// randomness enters only at the cmd/ edge.
func mintTraceID() string {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		for i := range b {
			b[i] = 0xfe
		}
	}
	return hex.EncodeToString(b)
}
