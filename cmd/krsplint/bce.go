package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// The BCE audit closes the loop between boundsafe's source-level proofs and
// the code the compiler emits. boundsafe discharges index arithmetic in
// //krsp:inbounds kernels with interval facts, the typed-ID axiom and the
// monotone-row pattern; the compiler's own bounds-check elimination sees
// none of those, so some checked instructions survive in the binary. The
// audit builds the module with -d=ssa/check_bce, counts the "Found
// IsInBounds" / "Found IsSliceInBounds" reports that land inside annotated
// kernel spans, and ratchets the per-kernel counts against a committed
// baseline: a count above baseline (or a newly annotated kernel missing
// from it) fails, a count below it asks for a -bce-update so the ratchet
// only ever tightens.

// bceBaseline is the committed ratchet: per-kernel surviving bounds-check
// counts keyed by "file:Func" (no line numbers, so unrelated edits that
// shift a kernel do not churn the file).
type bceBaseline struct {
	Checks map[string]int `json:"checks"`
}

// runBCE drives the audit; it shares krsplint's exit convention (0 clean,
// 1 regression, 2 the run itself failed).
func runBCE(dir, baselinePath string, update bool, stdout, stderr io.Writer) int {
	prog, err := lint.NewProgram(dir)
	if err != nil {
		fmt.Fprintf(stderr, "krsplint: %v\n", err)
		return 2
	}
	if err := prog.LoadAll(); err != nil {
		fmt.Fprintf(stderr, "krsplint: %v\n", err)
		return 2
	}
	extents := lint.InBoundsExtents(prog)
	root := prog.ModuleRoot()
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		fmt.Fprintf(stderr, "krsplint: %v\n", err)
		return 2
	}

	cmd := exec.Command("go", "build", "-gcflags="+modPath+"/...=-d=ssa/check_bce", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(stderr, "krsplint: go build -d=ssa/check_bce failed: %v\n%s", err, out)
		return 2
	}

	counts := map[string]int{}
	total := 0
	for _, line := range strings.Split(string(out), "\n") {
		file, lineNo, ok := parseBCELine(line)
		if !ok {
			continue
		}
		for i := range extents {
			if extents[i].Contains(file, lineNo) {
				counts[extents[i].Key()]++
				total++
				break
			}
		}
	}
	// Kernels the compiler fully cleaned still belong in the baseline at 0,
	// so deleting the annotation (or the kernel) is a visible diff.
	for i := range extents {
		if _, ok := counts[extents[i].Key()]; !ok {
			counts[extents[i].Key()] = 0
		}
	}

	if !filepath.IsAbs(baselinePath) {
		baselinePath = filepath.Join(root, baselinePath)
	}
	if update {
		data, err := json.MarshalIndent(bceBaseline{Checks: counts}, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "krsplint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "krsplint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "krsplint -bce: baseline updated: %d bounds check(s) across %d //krsp:inbounds kernel(s)\n",
			total, len(extents))
		return 0
	}

	baseline := bceBaseline{Checks: map[string]int{}}
	if data, err := os.ReadFile(baselinePath); err != nil {
		fmt.Fprintf(stderr, "krsplint: no BCE baseline at %s (run with -bce -bce-update to create it)\n", baselinePath)
		return 2
	} else if err := json.Unmarshal(data, &baseline); err != nil {
		fmt.Fprintf(stderr, "krsplint: reading BCE baseline: %v\n", err)
		return 2
	}

	var regressions, improvements []string
	for _, key := range sortedCountKeys(counts) {
		base, known := baseline.Checks[key]
		switch {
		case !known:
			regressions = append(regressions, fmt.Sprintf("%s: %d bounds check(s), kernel missing from baseline", key, counts[key]))
		case counts[key] > base:
			regressions = append(regressions, fmt.Sprintf("%s: %d bounds check(s), baseline %d", key, counts[key], base))
		case counts[key] < base:
			improvements = append(improvements, fmt.Sprintf("%s: %d bounds check(s), baseline %d", key, counts[key], base))
		}
	}
	for _, key := range sortedCountKeys(baseline.Checks) {
		if _, ok := counts[key]; !ok {
			improvements = append(improvements, fmt.Sprintf("%s: gone from the //krsp:inbounds set, baseline %d", key, baseline.Checks[key]))
		}
	}

	fmt.Fprintf(stdout, "krsplint -bce: %d bounds check(s) across %d //krsp:inbounds kernel(s)\n", total, len(extents))
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(stdout, "  regression: %s\n", r)
		}
		fmt.Fprintf(stderr, "krsplint -bce: %d kernel(s) above baseline; eliminate the checks or rerun with -bce-update and justify the new counts\n", len(regressions))
		return 1
	}
	for _, im := range improvements {
		fmt.Fprintf(stdout, "  improvable baseline: %s (rerun with -bce-update to tighten the ratchet)\n", im)
	}
	return 0
}

// parseBCELine extracts (file, line) from a compiler bounds-check report of
// the form "path/file.go:LINE:COL: Found IsInBounds" (or IsSliceInBounds).
// go build prints paths relative to the invocation directory, which runBCE
// pins to the module root.
func parseBCELine(line string) (string, int, bool) {
	if !strings.HasSuffix(line, ": Found IsInBounds") && !strings.HasSuffix(line, ": Found IsSliceInBounds") {
		return "", 0, false
	}
	parts := strings.SplitN(line, ":", 4)
	if len(parts) < 3 {
		return "", 0, false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, false
	}
	return filepath.ToSlash(strings.TrimPrefix(parts[0], "./")), n, true
}

// modulePath reads the module directive from go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

func sortedCountKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
