package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// drive runs the CLI in-process against one of the testdata mini-modules
// and returns (exit, stdout, stderr).
func drive(t *testing.T, mod string, argv ...string) (int, string, string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", mod))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run(argv, dir, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestExitZeroOnCleanModule(t *testing.T) {
	code, stdout, stderr := drive(t, "cleanmod", "./...")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run must print nothing, got %q", stdout)
	}
}

func TestExitOneOnDiagnostics(t *testing.T) {
	code, stdout, stderr := drive(t, "dirtymod")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "lib.go:") || !strings.Contains(stdout, "nopanic") {
		t.Errorf("report missing position or analyzer: %q", stdout)
	}
	if !strings.Contains(stderr, "1 diagnostic(s)") {
		t.Errorf("stderr missing count: %q", stderr)
	}
}

func TestExitTwoOnTypeError(t *testing.T) {
	code, _, stderr := drive(t, "brokenmod")
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "krsplint:") {
		t.Errorf("stderr missing failure report: %q", stderr)
	}
}

func TestExitTwoOnBadInvocation(t *testing.T) {
	cases := [][]string{
		{"-analyzers", "nosuchanalyzer"},
		{"-analyzers", "detmap,detmap"},
		{"-format", "xml"},
		{"./cmd/..."},
		{"-nosuchflag"},
	}
	for _, argv := range cases {
		if code, _, _ := drive(t, "cleanmod", argv...); code != 2 {
			t.Errorf("argv %v: exit %d, want 2", argv, code)
		}
	}
}

func TestAnalyzerSubset(t *testing.T) {
	// dirtymod's only finding belongs to nopanic; running detmap alone must
	// be clean, and -only must keep working as the -analyzers alias.
	if code, _, stderr := drive(t, "dirtymod", "-analyzers", "detmap"); code != 0 {
		t.Errorf("detmap-only run: exit %d, stderr %s", code, stderr)
	}
	if code, _, _ := drive(t, "dirtymod", "-only", "nopanic"); code != 1 {
		t.Errorf("-only nopanic: want exit 1")
	}
}

func TestJSONFormat(t *testing.T) {
	code, stdout, _ := drive(t, "dirtymod", "-format", "json")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) != 1 || diags[0].Analyzer != "nopanic" || diags[0].File != "lib.go" {
		t.Errorf("unexpected JSON report: %+v", diags)
	}
}

func TestSARIFFormatAndArtifact(t *testing.T) {
	artifact := filepath.Join(t.TempDir(), "krsplint.sarif")
	code, stdout, _ := drive(t, "dirtymod", "-format", "sarif", "-sarif-out", artifact)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("stdout is not SARIF JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 || len(doc.Runs[0].Results) != 1 {
		t.Errorf("unexpected SARIF shape: version=%q runs=%d", doc.Version, len(doc.Runs))
	}
	saved, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatalf("sarif artifact not written: %v", err)
	}
	if !bytes.Equal(saved, []byte(stdout)) {
		t.Error("sarif artifact differs from -format sarif stdout")
	}
}

func TestCacheColdThenWarm(t *testing.T) {
	cacheDir := t.TempDir()
	code, coldOut, coldErr := drive(t, "dirtymod", "-cache", cacheDir)
	if code != 1 {
		t.Fatalf("cold run: exit %d, stderr %s", code, coldErr)
	}
	if !strings.Contains(coldErr, "cache cold") {
		t.Errorf("cold run stderr: %q", coldErr)
	}
	code, warmOut, warmErr := drive(t, "dirtymod", "-cache", cacheDir)
	if code != 1 {
		t.Fatalf("warm run: exit %d, stderr %s", code, warmErr)
	}
	if !strings.Contains(warmErr, "cache warm") {
		t.Errorf("warm run stderr: %q", warmErr)
	}
	if coldOut != warmOut {
		t.Errorf("warm replay differs from cold report:\ncold: %q\nwarm: %q", coldOut, warmOut)
	}

	// Touching a source file must invalidate the key.
	lib := filepath.Join("testdata", "dirtymod", "lib.go")
	src, err := os.ReadFile(lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lib, append(src, []byte("\n// cache-buster\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.WriteFile(lib, src, 0o644); err != nil {
			t.Fatal(err)
		}
	}()
	// The manifest tracks the package dir plus a go.mod pseudo-entry, so
	// one edited file reads as 1 of 2.
	_, _, bustErr := drive(t, "dirtymod", "-cache", cacheDir)
	if !strings.Contains(bustErr, "cache cold (1 of 2 packages changed)") {
		t.Errorf("after edit, want cold run reporting 1 changed package, got: %q", bustErr)
	}
}

// TestCacheKeyedOnAnalyzerFingerprint pins the staleness fix: the cache key
// folds in lint.Fingerprint, so bumping an analyzer's Version invalidates a
// warm entry even though neither the source nor the analyzer NAMES changed.
// Before the fix the key hashed names only, and a rewritten analyzer would
// happily replay diagnostics computed by its previous self.
func TestCacheKeyedOnAnalyzerFingerprint(t *testing.T) {
	cacheDir := t.TempDir()
	dir, err := filepath.Abs(filepath.Join("testdata", "dirtymod"))
	if err != nil {
		t.Fatal(err)
	}
	a := *lint.Nopanic
	c1, err := openCache(cacheDir, dir, []*lint.Analyzer{&a})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.store(dir, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := c1.lookup(); !ok {
		t.Fatal("freshly stored entry must be warm under the same fingerprint")
	}
	bumped := a
	bumped.Version++
	c2, err := openCache(cacheDir, dir, []*lint.Analyzer{&bumped})
	if err != nil {
		t.Fatal(err)
	}
	if c1.key == c2.key {
		t.Fatal("version bump did not change the cache key")
	}
	if _, ok := c2.lookup(); ok {
		t.Fatal("version bump must invalidate the warm entry")
	}
}

// TestCacheInvalidatedByEngineSchema pins the engine-schema bump that
// shipped with the concurrency layer (lock-set walker plus the field-level
// contract index): the schema-2 fingerprint recorded before the bump must
// no longer be reproducible, so every .lintcache entry written by the old
// engine reads as cold; and the conc-analyzer subset itself runs
// cold-then-warm with a byte-identical replay.
func TestCacheInvalidatedByEngineSchema(t *testing.T) {
	// sha256("engine:2\nnopanic:0")[:8] — the pre-bump fingerprint of the
	// nopanic-only set. Recompute and update on the next deliberate bump.
	const schema2Nopanic = "cc56b72c9754ccfa"
	if got := lint.Fingerprint([]*lint.Analyzer{lint.Nopanic}); got == schema2Nopanic {
		t.Fatalf("Fingerprint still yields the schema-2 digest %s; the engine bump did not reach the cache key", got)
	}

	cacheDir := t.TempDir()
	code, coldOut, coldErr := drive(t, "dirtymod", "-cache", cacheDir, "-analyzers", "lockcheck,gorolife,atomicmix")
	if code != 0 {
		t.Fatalf("conc cold run: exit %d, stderr %s", code, coldErr)
	}
	if !strings.Contains(coldErr, "cache cold") {
		t.Errorf("conc cold run stderr: %q", coldErr)
	}
	code, warmOut, warmErr := drive(t, "dirtymod", "-cache", cacheDir, "-analyzers", "lockcheck,gorolife,atomicmix")
	if code != 0 {
		t.Fatalf("conc warm run: exit %d, stderr %s", code, warmErr)
	}
	if !strings.Contains(warmErr, "cache warm") {
		t.Errorf("conc warm run stderr: %q", warmErr)
	}
	if coldOut != warmOut {
		t.Errorf("conc warm replay differs from cold report:\ncold: %q\nwarm: %q", coldOut, warmOut)
	}
}

func TestParseBCELine(t *testing.T) {
	cases := []struct {
		line string
		file string
		n    int
		ok   bool
	}{
		{"internal/graph/csr.go:93:17: Found IsSliceInBounds", "internal/graph/csr.go", 93, true},
		{"./csr.go:12:3: Found IsInBounds", "csr.go", 12, true},
		{"# repro/internal/graph", "", 0, false},
		{"csr.go:12:3: something else", "", 0, false},
		{"", "", 0, false},
	}
	for _, c := range cases {
		file, n, ok := parseBCELine(c.line)
		if ok != c.ok || file != c.file || n != c.n {
			t.Errorf("parseBCELine(%q) = (%q, %d, %v), want (%q, %d, %v)", c.line, file, n, ok, c.file, c.n, c.ok)
		}
	}
}

func TestCacheKeyedOnAnalyzerSet(t *testing.T) {
	cacheDir := t.TempDir()
	if _, _, err := drive(t, "dirtymod", "-cache", cacheDir); !strings.Contains(err, "cache cold") {
		t.Fatalf("first full run not cold: %q", err)
	}
	// A different analyzer subset must not replay the full-suite entry.
	if _, _, err := drive(t, "dirtymod", "-cache", cacheDir, "-analyzers", "detmap"); !strings.Contains(err, "cache cold") {
		t.Errorf("subset run replayed the full-suite cache: %q", err)
	}
}
