// Package dirtymod carries exactly one nopanic violation; the CLI tests
// drive the exit-1 path and the report formats over it.
package dirtymod

// Explode panics on an input-dependent condition, which nopanic forbids in
// library packages.
func Explode(x int) int {
	if x > 0 {
		panic("boom")
	}
	return -x
}
