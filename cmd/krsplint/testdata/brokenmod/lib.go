// Package brokenmod does not type-check; the CLI tests drive the exit-2
// path over it.
package brokenmod

var oops int = "not an int"
