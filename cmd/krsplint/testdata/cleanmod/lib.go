// Package cleanmod is a minimal module that passes the whole suite; the
// CLI tests drive the exit-0 path over it.
package cleanmod

// Double returns 2x.
func Double(x int) int { return x + x }
