package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/lint"
)

// The krsplint cache replays a whole-module report when nothing relevant
// changed. The analyzers are interprocedural (contracts verify transitive
// callees, metricscat counts uses anywhere in the module), so per-package
// replay would be unsound: one edited file can change diagnostics in a
// package that did not change. The cache key therefore covers the entire
// module — go.mod, every .go file including _test.go (faultseam parses test
// files for arming sites) — plus lint.Fingerprint of the requested analyzer
// set, which folds in each analyzer's Version and the dataflow engine
// schema: bumping an analyzer (or the engine) invalidates warm entries even
// though no source changed. Per-directory hashes are still kept so a cold
// run can report how many packages moved.

// cacheEntry is one stored report, keyed by module content.
type cacheEntry struct {
	Key         string            `json:"key"`
	FreshNanos  int64             `json:"fresh_nanos"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

// cacheManifest records the last run's per-directory hashes for the
// "K of N packages changed" report.
type cacheManifest struct {
	DirHashes map[string]string `json:"dir_hashes"`
}

type lintCache struct {
	dir       string            // cache directory
	key       string            // whole-module key (content + analyzer set)
	dirHashes map[string]string // module-relative dir -> content hash
}

// openCache hashes the module under dir and prepares the cache rooted at
// cacheDir. Errors (unreadable module, un-creatable cache dir) disable the
// cache rather than the run.
func openCache(cacheDir, dir string, analyzers []*lint.Analyzer) (*lintCache, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, err
	}
	dirHashes, err := hashModule(root)
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	fmt.Fprintf(h, "fingerprint:%s\n", lint.Fingerprint(analyzers))
	dirs := sortedKeys(dirHashes)
	for _, d := range dirs {
		fmt.Fprintf(h, "%s:%s\n", d, dirHashes[d])
	}
	return &lintCache{
		dir:       cacheDir,
		key:       hex.EncodeToString(h.Sum(nil)),
		dirHashes: dirHashes,
	}, nil
}

func (c *lintCache) entryPath() string { return filepath.Join(c.dir, c.key+".json") }
func (c *lintCache) latestPath() string {
	return filepath.Join(c.dir, "latest.json")
}

// lookup returns the stored report for the current key, if any.
func (c *lintCache) lookup() (*cacheEntry, bool) {
	data, err := os.ReadFile(c.entryPath())
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != c.key {
		return nil, false
	}
	return &e, true
}

// changedSinceLast diffs the current per-directory hashes against the last
// stored manifest. With no prior manifest every package counts as changed.
func (c *lintCache) changedSinceLast() (changed, total int) {
	total = len(c.dirHashes)
	prev := cacheManifest{}
	if data, err := os.ReadFile(c.latestPath()); err == nil {
		_ = json.Unmarshal(data, &prev)
	}
	for d, h := range c.dirHashes {
		if prev.DirHashes[d] != h {
			changed++
		}
	}
	return changed, total
}

// store persists the report (file paths rewritten module-relative so replay
// output matches a fresh run) and the per-directory manifest.
func (c *lintCache) store(root string, diags []lint.Diagnostic, fresh time.Duration) error {
	stored := make([]lint.Diagnostic, len(diags))
	for i, d := range diags {
		if rel, err := filepath.Rel(root, d.Position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Position.Filename = filepath.ToSlash(rel)
		}
		stored[i] = d
	}
	entry, err := json.MarshalIndent(cacheEntry{Key: c.key, FreshNanos: fresh.Nanoseconds(), Diagnostics: stored}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(c.entryPath(), entry, 0o644); err != nil {
		return err
	}
	manifest, err := json.MarshalIndent(cacheManifest{DirHashes: c.dirHashes}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(c.latestPath(), manifest, 0o644)
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// hashModule walks the module the same way the loader does (skipping
// testdata, vendor, hidden and underscore directories) and hashes every .go
// file — tests included — plus go.mod under the synthetic "." entry.
func hashModule(root string) (map[string]string, error) {
	out := map[string]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirHash, n, err := hashDirGoFiles(path)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		out[filepath.ToSlash(rel)] = dirHash
		return nil
	})
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(gomod)
	out["go.mod"] = hex.EncodeToString(sum[:])
	return out, nil
}

// hashDirGoFiles hashes the .go files directly in dir (sorted by name) and
// returns how many it saw.
func hashDirGoFiles(dir string) (string, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", 0, err
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "%s:%s\n", name, hex.EncodeToString(sum[:]))
	}
	return hex.EncodeToString(h.Sum(nil)), len(names), nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
