// Command krsplint runs the project-invariant static-analysis suite
// (internal/lint) over the module: determinism of map iteration, panic
// freedom in library packages, zero-alloc kernel discipline on the solve
// path, wall-clock/unseeded-randomness bans, overflow guards on int64
// weight arithmetic, checked //krsp: contracts verified over the module
// call graph, and the cross-layer metric/fault-seam/suppression audits.
//
// Usage:
//
//	krsplint [-analyzers name[,name...]] [-format text|json|sarif]
//	         [-sarif-out file] [-cache dir] [packages]
//	krsplint -bce [-bce-baseline file] [-bce-update]
//
// The only accepted package pattern is ./... (the default): the loader
// always analyzes the whole module so cross-package reachability is exact.
// With -cache, results are replayed when no source file changed (the key
// hashes every .go file including tests, go.mod, and the fingerprint of
// the analyzer set — names, versions and the dataflow engine schema);
// load/analyze and fresh-vs-warm timings go to stderr.
//
// -bce switches to the bounds-check-elimination audit: the module is built
// with -gcflags=-d=ssa/check_bce and the bounds checks the compiler still
// emits inside //krsp:inbounds kernels are ratcheted against the committed
// BCE_BASELINE.json (see cmd/krsplint/bce.go).
//
// Exit status is 0 when no unsuppressed diagnostic is found, 1 when the
// suite reports diagnostics, and 2 when the run itself fails (bad flags,
// unknown or duplicated analyzer names, load or type-check errors). The
// report is sorted (file, line, column, analyzer) so CI diffs are
// deterministic.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "krsplint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], cwd, os.Stdout, os.Stderr))
}

// run is main without the process-global edges, so main_test can drive
// every exit path in-process.
func run(argv []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("krsplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzersFlag := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	only := fs.String("only", "", "alias for -analyzers")
	format := fs.String("format", "text", "report format: text, json or sarif")
	sarifOut := fs.String("sarif-out", "", "additionally write a SARIF 2.1.0 artifact to this file")
	cacheDir := fs.String("cache", "", "cache directory: replay the report when no source changed")
	bce := fs.Bool("bce", false, "audit compiler bounds checks inside //krsp:inbounds kernels against the baseline")
	bceBaselinePath := fs.String("bce-baseline", "BCE_BASELINE.json", "baseline file for -bce, module-root relative")
	bceUpdate := fs.Bool("bce-update", false, "with -bce: rewrite the baseline to the current counts")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	for _, arg := range fs.Args() {
		if arg != "./..." {
			fmt.Fprintf(stderr, "krsplint: only the ./... pattern is supported, got %q\n", arg)
			return 2
		}
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "krsplint: unknown -format %q (want text, json or sarif)\n", *format)
		return 2
	}

	if *bce {
		return runBCE(dir, *bceBaselinePath, *bceUpdate, stdout, stderr)
	}

	names := *analyzersFlag
	if names == "" {
		names = *only
	}
	analyzers := lint.All()
	if names != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(names, ","))
		if err != nil {
			fmt.Fprintf(stderr, "krsplint: %v\n", err)
			return 2
		}
	}

	var cache *lintCache
	if *cacheDir != "" {
		c, err := openCache(*cacheDir, dir, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "krsplint: cache disabled: %v\n", err)
		} else {
			cache = c
		}
	}

	var root string
	var diags []lint.Diagnostic
	if cache != nil {
		if entry, ok := cache.lookup(); ok {
			start := time.Now()
			root, diags = "", entry.Diagnostics // cached paths are already module-relative
			fmt.Fprintf(stderr, "krsplint: cache warm: replayed %d diagnostic(s) in %s (fresh run took %s)\n",
				len(diags), time.Since(start).Round(time.Millisecond), time.Duration(entry.FreshNanos).Round(time.Millisecond))
			return emit(stdout, stderr, *format, *sarifOut, root, diags)
		}
	}

	start := time.Now()
	prog, err := lint.NewProgram(dir)
	if err != nil {
		fmt.Fprintf(stderr, "krsplint: %v\n", err)
		return 2
	}
	if err := prog.LoadAll(); err != nil {
		fmt.Fprintf(stderr, "krsplint: %v\n", err)
		return 2
	}
	loaded := time.Now()
	diags = lint.Run(prog, analyzers)
	root = prog.ModuleRoot()
	elapsed := time.Since(start)
	if cache != nil {
		changed, total := cache.changedSinceLast()
		fmt.Fprintf(stderr, "krsplint: cache cold (%d of %d packages changed): load %s + analyze %s = %s\n",
			changed, total, loaded.Sub(start).Round(time.Millisecond),
			time.Since(loaded).Round(time.Millisecond), elapsed.Round(time.Millisecond))
		if err := cache.store(root, diags, elapsed); err != nil {
			fmt.Fprintf(stderr, "krsplint: cache write failed: %v\n", err)
		}
	}
	return emit(stdout, stderr, *format, *sarifOut, root, diags)
}

// emit renders the report in the chosen format (plus the optional SARIF
// artifact) and maps the diagnostic count to the exit status.
func emit(stdout, stderr io.Writer, format, sarifOut, root string, diags []lint.Diagnostic) int {
	rep := lint.Report{Root: root, Diagnostics: diags}
	var err error
	switch format {
	case "json":
		err = rep.WriteJSON(stdout)
	case "sarif":
		err = rep.WriteSARIF(stdout)
	default:
		err = rep.WriteText(stdout)
	}
	if err == nil && sarifOut != "" {
		err = writeSARIFFile(sarifOut, rep)
	}
	if err != nil {
		fmt.Fprintf(stderr, "krsplint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "krsplint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

func writeSARIFFile(path string, rep lint.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteSARIF(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
