// Command krsplint runs the project-invariant static-analysis suite
// (internal/lint) over the module: determinism of map iteration, panic
// freedom in library packages, zero-alloc kernel discipline on the solve
// path, wall-clock/unseeded-randomness bans, and overflow guards on int64
// weight arithmetic.
//
// Usage:
//
//	krsplint [-only name[,name...]] [packages]
//
// The only accepted package pattern is ./... (the default): the loader
// always analyzes the whole module so cross-package reachability is exact.
// Exit status is 0 when no unsuppressed diagnostic is found, 1 otherwise,
// 2 on loader errors. The report is sorted (file, line, column, analyzer)
// so CI diffs are deterministic.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	flag.Parse()

	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "krsplint: only the ./... pattern is supported, got %q\n", arg)
			os.Exit(2)
		}
	}

	analyzers := lint.All()
	if *only != "" {
		var bad string
		analyzers, bad = lint.ByName(strings.Split(*only, ","))
		if bad != "" {
			fmt.Fprintf(os.Stderr, "krsplint: unknown analyzer %q\n", bad)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "krsplint: %v\n", err)
		os.Exit(2)
	}
	prog, err := lint.NewProgram(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "krsplint: %v\n", err)
		os.Exit(2)
	}
	if err := prog.LoadAll(); err != nil {
		fmt.Fprintf(os.Stderr, "krsplint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Println(d.StringRel(prog.ModuleRoot()))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "krsplint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
