package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/solvecache"
)

// config bundles the daemon's operational knobs. Tests construct it
// directly; main fills it from flags.
type config struct {
	maxBody int64
	pprof   bool
	// maxInflight bounds concurrently executing solve/feasible requests;
	// excess requests are shed with 429 instead of queued (an SDN controller
	// would rather retry elsewhere than pile up latency). ≤ 0 disables
	// admission control.
	maxInflight int
	// defaultDeadline is applied to every solve without an explicit
	// X-Krsp-Deadline-Ms header; 0 means none.
	defaultDeadline time.Duration
	// maxDeadline caps the per-request header deadline (clients cannot buy
	// unbounded compute); 0 means uncapped.
	maxDeadline time.Duration
	// faults, when non-nil, is threaded into every solve — the chaos/test
	// lever behind the recover middleware and degraded-path tests. Never
	// set in production.
	faults *fault.Registry
	// traceDir, when non-empty, receives JSONL flight-recorder dumps
	// (<traceID>.jsonl): every black-boxed solve (degraded, 503, panic)
	// plus every traceSample-th ordinary one.
	traceDir string
	// traceSample dumps every Nth ordinary solve trace to traceDir; 0
	// writes black-box dumps only.
	traceSample int
	// peers is the full cluster member list (host:port), including this
	// node; empty disables cluster mode (DESIGN.md §14).
	peers []string
	// self is this node's own address exactly as spelled in peers.
	self string
	// cacheSize bounds the fingerprint solution cache; 0 disables caching.
	cacheSize int
	// cacheTTL is the freshness window; older entries are served only as
	// stale fallbacks under deadline pressure. 0 means never stale.
	cacheTTL time.Duration
	// hedgeAfter launches a duplicate proxy attempt when the first has not
	// answered within it; 0 disables hedging.
	hedgeAfter time.Duration
	// proxyAttempts caps tries per proxied solve (0 = default).
	proxyAttempts int
	// backoffBase/backoffMax tune proxy retry backoff (0 = cluster defaults).
	backoffBase, backoffMax time.Duration
	// pollEvery is the solver's cancellation poll stride (core.Options
	// .PollEvery): smaller means deadlines are noticed sooner at a little
	// per-iteration cost. 0 selects the solver default.
	pollEvery int
}

// server carries the daemon's shared state: the metrics registry (also
// handed to every solve as core.Options.Metrics), the structured logger,
// the operational config, the admission semaphore, and the request-id
// source.
type server struct {
	reg *obs.Registry
	// sm is the HTTP metric group, cached off reg once; the group's
	// recording methods are nil-safe, so handlers record unconditionally
	// even on a registry-less server.
	sm    *obs.ServerMetrics
	cm    *obs.ClusterMetrics
	log   *slog.Logger
	cfg   config
	sem   chan struct{}
	reqID atomic.Int64
	// tracer owns the per-request flight recorders, trace dumps, and the
	// /debug/trace/last buffer (trace.go).
	tracer *tracer
	// cache and group are the solve-dedup layer: cache replays identical
	// solves across time, group collapses them across concurrency. Both are
	// nil-safe no-ops when disabled.
	cache *solvecache.Cache[cachedSolution]
	group *solvecache.Group[cachedSolution]
	// clstr is the sharded-mode state (cluster.go); nil on single nodes.
	clstr *clusterNode
}

// newServer wires the handler state. Tests pass a ManualClock-backed
// registry and a discard logger; main passes RealClock and stderr. The
// only error source is an invalid cluster membership.
func newServer(reg *obs.Registry, logger *slog.Logger, cfg config) (*server, error) {
	s := &server{reg: reg, sm: reg.ServerMetrics(), cm: reg.ClusterMetrics(), log: logger, cfg: cfg}
	if cfg.maxInflight > 0 {
		s.sem = make(chan struct{}, cfg.maxInflight)
	}
	s.tracer = newTracer(registryClock{reg}, cfg.traceDir, cfg.traceSample)
	s.cache = solvecache.NewCache[cachedSolution](cfg.cacheSize, cfg.cacheTTL.Nanoseconds())
	s.group = solvecache.NewGroup[cachedSolution]()
	if len(cfg.peers) > 0 {
		n, err := newClusterNode(cfg)
		if err != nil {
			return nil, err
		}
		s.clstr = n
	}
	return s, nil
}

// handler is the daemon's root handler: the route table wrapped in the
// recover middleware, so a panicking solve turns into one 500 plus a
// krspd_panic_recovered_total tick instead of a dead process.
func (s *server) handler() http.Handler {
	return s.recoverWrap(s.mux())
}

// recoverWrap converts handler panics to 500s. Recovery is per-request:
// net/http would also swallow the panic, but it would tear down the
// connection and leave no metric behind.
func (s *server) recoverWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.sm.RecordPanic()
				s.log.Error("panic recovered", "path", r.URL.Path, "panic", fmt.Sprint(p))
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// admit reserves an admission slot, answering 429 when the daemon is at
// maxInflight. Shed responses carry a Retry-After hint sized to the solve
// deadline — the time by which the currently admitted work should have
// drained. The returned release func is a no-op when admission control is
// disabled.
func (s *server) admit(w http.ResponseWriter, fail func(string, int)) (release func(), ok bool) {
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		s.sm.RecordShed()
		w.Header().Set("Retry-After", strconv.FormatInt(s.retryAfterSeconds(), 10))
		fail("overloaded: max inflight solves reached, retry later", http.StatusTooManyRequests)
		return nil, false
	}
}

// retryAfterSeconds derives the 429 Retry-After hint from the configured
// deadline (default, falling back to the cap), rounded up, at least 1.
func (s *server) retryAfterSeconds() int64 {
	d := s.cfg.defaultDeadline
	if d <= 0 {
		d = s.cfg.maxDeadline
	}
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// deadlineMsHeader is the per-request deadline override, in milliseconds.
const deadlineMsHeader = "X-Krsp-Deadline-Ms"

// solveDeadline resolves the effective deadline for one request: the
// header when present (rejecting garbage), else the configured default,
// both capped by maxDeadline. 0 means no deadline.
func (s *server) solveDeadline(r *http.Request) (time.Duration, error) {
	d := s.cfg.defaultDeadline
	if h := r.Header.Get(deadlineMsHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return 0, fmt.Errorf("bad %s: want a positive integer, got %q", deadlineMsHeader, h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if s.cfg.maxDeadline > 0 && (d == 0 || d > s.cfg.maxDeadline) {
		d = s.cfg.maxDeadline
	}
	return d, nil
}

// mux builds the route table.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/feasible", s.handleFeasible)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/trace/last", s.handleTraceLast)
	if s.cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// solveResponse is the JSON result of /solve.
type solveResponse struct {
	RequestID  int64     `json:"requestId"`
	Cost       int64     `json:"cost"`
	Delay      int64     `json:"delay"`
	Bound      int64     `json:"bound"`
	LowerBound int64     `json:"lowerBound"`
	Exact      bool      `json:"exact"`
	Paths      [][]int32 `json:"paths"` // vertex sequences
	Violated   bool      `json:"boundViolated"`
	// Degraded mirrors Stats.Degraded at the top level: the deadline hit and
	// this is the best feasible intermediate, still within the delay bound.
	Degraded bool `json:"degraded"`
	// DeadlineMs echoes the effective deadline applied to the solve
	// (header, default, and cap resolved); 0 means none.
	DeadlineMs int64 `json:"deadlineMs"`
	// TraceID identifies this solve's flight-recorder trace: the trace-id
	// from the request's traceparent header when one was sent, else minted
	// here. The response traceparent header carries the same ID.
	TraceID string     `json:"traceId"`
	Stats   core.Stats `json:"stats"`
	// Cache classifies the fingerprint-cache lookup ("hit", "miss",
	// "stale"); empty when caching is disabled.
	Cache string `json:"cache,omitempty"`
	// Stale marks an answer served from a lapsed cache entry under deadline
	// pressure — correct for the instance, possibly not freshly computed.
	Stale bool `json:"stale,omitempty"`
	// Collapsed marks an answer taken from an identical in-flight solve.
	Collapsed bool `json:"collapsed,omitempty"`
	// Route reports cluster routing: "local", "proxy:<peer>", or
	// "degraded-local"; empty on single-node daemons.
	Route string `json:"route,omitempty"`
	// DegradedRoute marks a solve computed off-owner because the owning
	// peer was unreachable (DESIGN.md §14 failover).
	DegradedRoute bool `json:"degradedRoute,omitempty"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	id := s.reqID.Add(1)
	start := s.reg.Now()
	status := http.StatusOK
	outcome := "ok"
	var n, m, k int
	algo := r.URL.Query().Get("algo")
	if algo == "" {
		algo = "solve"
	}
	// Trace identity: adopt the caller's W3C trace ID when the traceparent
	// header parses, else mint one. Either way the response carries a
	// traceparent with our own span ID so downstream hops keep correlating.
	traceID, hadParent := parseTraceparent(r.Header.Get(traceparentHeader))
	if !hadParent {
		traceID = newTraceID()
	}
	w.Header().Set(traceparentHeader, "00-"+traceID+"-"+newSpanID()+"-01")
	var dumpPath string
	defer func() {
		dur := s.reg.Now() - start
		s.sm.ObserveRequest(dur)
		s.log.Info("solve", "id", id, "trace", traceID, "algo", algo, "n", n, "m", m, "k", k,
			"outcome", outcome, "status", status, "durMs", float64(dur)/1e6, "dump", dumpPath)
	}()
	fail := func(msg string, code int) {
		status, outcome = code, msg
		s.sm.RecordError()
		http.Error(w, msg, code)
	}
	if r.Method != http.MethodPost {
		fail("POST an instance in krsp text format", http.StatusMethodNotAllowed)
		return
	}
	release, admitted := s.admit(w, fail)
	if !admitted {
		return
	}
	defer release()
	s.sm.RecordAccepted(false)
	s.sm.AddInflight(1)
	defer s.sm.AddInflight(-1)
	deadline, derr := s.solveDeadline(r)
	if derr != nil {
		fail(derr.Error(), http.StatusBadRequest)
		return
	}
	// The body is buffered (not streamed into the parser) because cluster
	// mode may need to replay the same bytes at the owning peer.
	raw, ok := s.readBody(w, r, fail)
	if !ok {
		return
	}
	ins, err := graph.ReadInstance(bytes.NewReader(raw))
	if err != nil {
		fail("bad instance: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := ins.Validate(); err != nil {
		fail(err.Error(), http.StatusBadRequest)
		return
	}
	// Algo and eps validate before fingerprinting: both are part of the
	// cache identity.
	epsQ := r.URL.Query().Get("eps")
	var eps float64
	switch algo {
	case "solve", "phase1":
	case "scaled":
		eps = 0.25
		if epsQ != "" {
			eps, err = strconv.ParseFloat(epsQ, 64)
			if err != nil || eps <= 0 {
				fail("bad eps", http.StatusBadRequest)
				return
			}
		}
	default:
		fail("unknown algo "+algo, http.StatusBadRequest)
		return
	}
	n, m, k = ins.G.NumNodes(), ins.G.NumEdges(), ins.K
	ctx := r.Context()
	if deadline > 0 {
		var cancelCtx context.CancelFunc
		ctx, cancelCtx = context.WithTimeout(ctx, deadline)
		defer cancelCtx()
	}
	// Arm a pooled flight recorder for the solve. finishTrace snapshots it
	// (always into the /debug/trace/last buffer, to disk when black-boxed or
	// sampled) and recycles it; the deferred call is the panic path — it
	// preserves the black box before recoverWrap converts the panic to 500.
	flight := s.tracer.acquire()
	finished := false
	finishTrace := func(blackBox bool) {
		finished = true
		dumpPath = s.tracer.finish(flight, traceID, blackBox)
	}
	defer func() {
		if !finished {
			finishTrace(true)
		}
	}()
	fp := solvecache.Fingerprint(ins, algo, eps)
	cacheLabel := ""
	if s.cache != nil {
		cached, st := s.cache.Get(fp, s.reg.Now())
		s.cm.RecordCacheLookup(st == solvecache.Fresh)
		if st == solvecache.Fresh {
			flight.Record(rec.KindCacheHit, int64(st), 0, 0, 0)
			finishTrace(false)
			outcome = "cache-hit"
			resp := solutionResponse(id, cached, deadline, traceID)
			resp.Cache = "hit"
			s.writeJSON(w, resp)
			return
		}
		cacheLabel = "miss"
	}
	// Cluster routing: fresh, first-hop misses go to the ring owner. A
	// proxied request (hops ≥ 1) is always solved locally — the loop guard.
	degradedRoute := false
	route := ""
	if s.clstr != nil {
		route = "local"
		if owner, isSelf := s.clstr.table.Owner(fp.Key64()); !isSelf && r.Header.Get(hopsHeader) == "" {
			if resp, attempts, proxied := s.proxySolve(ctx, owner, raw, algo, epsQ, deadline, traceID, flight); proxied {
				resp.RequestID = id
				resp.TraceID = traceID
				resp.Route = "proxy:" + owner
				if !resp.Degraded && !resp.Stale {
					s.cache.Put(fp, solutionOf(*resp), s.reg.Now())
				}
				finishTrace(false)
				outcome = "proxied"
				s.writeJSON(w, *resp)
				return
			} else {
				// Owner unreachable after budgeted retries: solve here,
				// off-route, rather than fail the request.
				degradedRoute = true
				route = "degraded-local"
				s.cm.RecordDegradedRoute()
				flight.Record(rec.KindDegradedRoute, int64(attempts), 0, 0, 0)
			}
		}
	}
	opt := core.Options{Metrics: s.reg, Faults: s.cfg.faults, Recorder: flight, PollEvery: s.cfg.pollEvery}
	runSolve := func() (cachedSolution, error) {
		var res core.Result
		var serr error
		switch algo {
		case "solve":
			res, serr = core.SolveCtx(ctx, ins, opt)
		case "phase1":
			p1 := opt
			p1.Phase1Only = true
			res, serr = core.SolveCtx(ctx, ins, p1)
		case "scaled":
			res, serr = core.SolveScaledCtx(ctx, ins, eps, eps, opt)
		}
		if serr != nil {
			return cachedSolution{}, serr
		}
		return newCachedSolution(res, ins), nil
	}
	sol, err, collapsed := s.group.Do(fp, runSolve)
	if collapsed {
		s.cm.RecordCollapsed()
		flight.Record(rec.KindSingleflight, 0, 0, 0, 0)
	}
	if err != nil {
		// Deadline pressure (no feasible flow in time) or a dead leader:
		// a stale cache entry beats a 503 — the instance hasn't changed,
		// only our time to recompute it has run out.
		if errors.Is(err, core.ErrNoProgress) || errors.Is(err, solvecache.ErrLeaderFailed) {
			if cached, st := s.cache.Get(fp, s.reg.Now()); st != solvecache.Miss {
				s.cm.RecordStaleServed()
				flight.Record(rec.KindCacheHit, int64(st), 0, 0, 0)
				finishTrace(true)
				outcome = "stale-served"
				resp := solutionResponse(id, cached, deadline, traceID)
				resp.Cache = st.String()
				resp.Stale = true
				resp.Route = route
				resp.DegradedRoute = degradedRoute
				s.writeJSON(w, resp)
				return
			}
		}
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, core.ErrNoKPaths) || errors.Is(err, core.ErrDelayInfeasible):
			code = http.StatusUnprocessableEntity
		case errors.Is(err, core.ErrNoProgress):
			// The deadline expired before any feasible k-flow existed; the
			// client can retry with a bigger budget.
			code = http.StatusServiceUnavailable
		}
		// 5xx solves black-box their trace; client errors (422) do not.
		finishTrace(code >= http.StatusInternalServerError)
		fail(err.Error(), code)
		return
	}
	// A degraded solve black-boxes its trace even though it returned 200 —
	// the whole point of the recorder is explaining what the deadline cut.
	finishTrace(sol.Degraded)
	if !collapsed && !sol.Degraded {
		// Only complete answers are worth replaying; a degraded one would
		// freeze a deadline artifact into the cache.
		s.cache.Put(fp, sol, s.reg.Now())
	}
	resp := solutionResponse(id, sol, deadline, traceID)
	resp.Cache = cacheLabel
	resp.Collapsed = collapsed
	resp.Route = route
	resp.DegradedRoute = degradedRoute
	s.writeJSON(w, resp)
}

// readBody reads the size-capped request body whole, mapping an over-limit
// read to 413.
func (s *server) readBody(w http.ResponseWriter, r *http.Request, fail func(string, int)) ([]byte, bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
	raw, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			fail(fmt.Sprintf("body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
		} else {
			fail("read body: "+err.Error(), http.StatusBadRequest)
		}
		return nil, false
	}
	return raw, true
}

func (s *server) handleFeasible(w http.ResponseWriter, r *http.Request) {
	id := s.reqID.Add(1)
	start := s.reg.Now()
	status := http.StatusOK
	outcome := "ok"
	defer func() {
		dur := s.reg.Now() - start
		s.sm.ObserveRequest(dur)
		s.log.Info("feasible", "id", id, "outcome", outcome, "status", status,
			"durMs", float64(dur)/1e6)
	}()
	fail := func(msg string, code int) {
		status, outcome = code, msg
		s.sm.RecordError()
		http.Error(w, msg, code)
	}
	if r.Method != http.MethodPost {
		fail("POST an instance in krsp text format", http.StatusMethodNotAllowed)
		return
	}
	release, admitted := s.admit(w, fail)
	if !admitted {
		return
	}
	defer release()
	s.sm.RecordAccepted(true)
	s.sm.AddInflight(1)
	defer s.sm.AddInflight(-1)
	ins, ok := s.readInstance(w, r, fail)
	if !ok {
		return
	}
	feas, err := core.CheckFeasible(ins)
	if err != nil {
		fail(err.Error(), http.StatusBadRequest)
		return
	}
	s.writeJSON(w, map[string]any{
		"maxDisjoint": feas.MaxDisjoint,
		"minDelay":    feas.MinDelay,
		"ok":          feas.OK,
	})
}

// handleTraceLast serves the most recent solve's flight-recorder dump as
// JSONL — the zero-setup debugging path: reproduce the bad solve, then GET
// this endpoint and pipe it into krsptrace.
func (s *server) handleTraceLast(w http.ResponseWriter, r *http.Request) {
	dump, traceID := s.tracer.lastTrace()
	if len(dump) == 0 {
		http.Error(w, "no solve traced yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Krsp-Trace-Id", traceID)
	w.Write(dump)
}

// readInstance parses a size-capped request body, mapping an over-limit
// read to 413 and any other parse failure to 400 through fail.
func (s *server) readInstance(w http.ResponseWriter, r *http.Request, fail func(string, int)) (graph.Instance, bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
	ins, err := graph.ReadInstance(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			fail(fmt.Sprintf("body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
		} else {
			fail("bad instance: "+err.Error(), http.StatusBadRequest)
		}
		return graph.Instance{}, false
	}
	return ins, true
}

// handleMetrics serves the Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Warn("metrics write", "err", err)
	}
}

// handleVars serves an expvar-compatible JSON document: the process-global
// expvar set (cmdline, memstats) plus this server's registry snapshot
// under "krsp". The registry is NOT expvar.Publish-ed — Publish panics on
// duplicate names, which breaks multi-server tests and any embedder
// running two daemons in one process.
func (s *server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	if snap, err := json.Marshal(s.reg.Snapshot()); err == nil {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: %s", "krsp", snap)
	}
	fmt.Fprintf(w, "\n}\n")
}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; best effort log.
		s.log.Warn("encode response", "err", err)
	}
}
