package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs/rec"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		in string
		ok bool
	}{
		{valid, true},
		{"", false},
		{valid[:54], false},             // truncated
		{valid + "0", false},            // too long
		{"01" + valid[2:], false},       // unknown version
		{strings.ToUpper(valid), false}, // uppercase hex is invalid
		{strings.Replace(valid, "-", "_", 1), false},
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", false}, // zero trace ID
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false}, // zero span ID
		{"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", false}, // non-hex
	}
	for _, tc := range cases {
		id, ok := parseTraceparent(tc.in)
		if ok != tc.ok {
			t.Errorf("parseTraceparent(%q) ok = %v, want %v", tc.in, ok, tc.ok)
		}
		if tc.ok && id != tc.in[3:35] {
			t.Errorf("parseTraceparent(%q) id = %q", tc.in, id)
		}
	}
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// TestSolveTraceparentPropagation: a caller-supplied traceparent is adopted
// (same trace ID in the response header, body, and trace dump) while a
// fresh span ID replaces the caller's; without the header krspd mints a
// well-formed trace ID of its own.
func TestSolveTraceparentPropagation(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/solve", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(traceparentHeader, parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	echo := resp.Header.Get(traceparentHeader)
	wantTrace := parent[3:35]
	gotTrace, ok := parseTraceparent(echo)
	if !ok || gotTrace != wantTrace {
		t.Fatalf("response traceparent %q does not carry trace ID %s", echo, wantTrace)
	}
	if echo[36:52] == parent[36:52] {
		t.Fatalf("response reused the caller's span ID: %q", echo)
	}
	var out solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != wantTrace {
		t.Fatalf("response traceId = %q, want %q", out.TraceID, wantTrace)
	}

	// No header → a minted, well-formed 128-bit ID.
	resp2, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	minted, ok := parseTraceparent(resp2.Header.Get(traceparentHeader))
	if !ok || len(minted) != 32 || !isHex(minted) {
		t.Fatalf("minted traceparent %q invalid", resp2.Header.Get(traceparentHeader))
	}
	if minted == wantTrace {
		t.Fatal("minted trace ID collided with the caller's")
	}
}

// TestDegradedSolveBlackBoxDump is the acceptance path: a degraded solve
// must leave a black-box JSONL dump in -trace-dir, named after the trace
// ID, that parses and carries the degradation decision.
func TestDegradedSolveBlackBoxDump(t *testing.T) {
	dir := t.TempDir()
	faults := fault.New(2)
	faults.Arm(fault.PointCancel, 1.0)
	srv, _ := testServerCfg(t, config{
		maxBody:     1 << 20,
		maxDeadline: 50 * time.Millisecond,
		faults:      faults,
		traceDir:    dir,
	})
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/solve", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(deadlineMsHeader, "100000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !out.Degraded {
		t.Fatalf("status %d degraded=%v, want a 200 degraded solve", resp.StatusCode, out.Degraded)
	}
	path := filepath.Join(dir, out.TraceID+".jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("black-box dump missing: %v", err)
	}
	hdr, evs, err := rec.ReadJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if hdr.Trace != out.TraceID || hdr.Schema != rec.Schema {
		t.Fatalf("dump header = %+v, want trace %s schema %d", hdr, out.TraceID, rec.Schema)
	}
	var degraded, faultHits int
	for _, ev := range evs {
		switch ev.Kind {
		case rec.KindDegraded:
			degraded++
		case rec.KindFaultHit:
			faultHits++
		}
	}
	if degraded != 1 || faultHits == 0 {
		t.Fatalf("dump has %d degraded / %d fault-hit events, want 1 / ≥1", degraded, faultHits)
	}
}

// TestPanicSolveBlackBoxDump: a panicking solve still leaves its black box
// behind before recoverWrap turns the panic into a 500.
func TestPanicSolveBlackBoxDump(t *testing.T) {
	dir := t.TempDir()
	faults := fault.New(3)
	faults.ArmPanic(fault.PointCycleSearch, 1.0)
	srv, _ := testServerCfg(t, config{maxBody: 1 << 20, faults: faults, traceDir: dir})
	resp, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil || len(files) != 1 {
		t.Fatalf("panic dump files = %v (err %v), want exactly one", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, evs, err := rec.ReadJSONL(bytes.NewReader(data)); err != nil || len(evs) == 0 {
		t.Fatalf("panic dump unreadable: %d events, err %v", len(evs), err)
	}
}

// TestTraceSampling: with -trace-sample 2 and no black-box triggers, every
// second ordinary solve is dumped.
func TestTraceSampling(t *testing.T) {
	dir := t.TempDir()
	srv, _ := testServerCfg(t, config{maxBody: 1 << 20, traceDir: dir, traceSample: 2})
	for i := 0; i < 4; i++ {
		resp, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("sampled dumps = %d, want 2 of 4 solves", len(files))
	}
}

// TestTraceLastEndpoint: 404 before any solve, then the last solve's dump
// with its trace ID in a header.
func TestTraceLastEndpoint(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	resp, err := http.Get(srv.URL + "/debug/trace/last")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-solve status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	var out solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/debug/trace/last")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Krsp-Trace-Id"); got != out.TraceID {
		t.Fatalf("last trace ID = %q, want %q", got, out.TraceID)
	}
	hdr, evs, err := rec.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Trace != out.TraceID {
		t.Fatalf("dump header trace = %q, want %q", hdr.Trace, out.TraceID)
	}
	if len(evs) == 0 || evs[0].Kind != rec.KindSolveStart || evs[len(evs)-1].Kind != rec.KindSolveEnd {
		t.Fatalf("last trace stream malformed: %d events", len(evs))
	}
}
