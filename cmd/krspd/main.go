// Command krspd serves kRSP solving over HTTP — the shape an SDN
// controller would embed (the paper's §1 argues SDN controllers are where
// multipath QoS routing becomes deployable: global topology, central
// compute).
//
//	krspd -addr :8080
//
// Endpoints:
//
//	POST /solve         body: instance in the krsp text format;
//	                    query: algo=solve|scaled|phase1 (default solve),
//	                           eps=<float> (scaled only)
//	                    → JSON {cost, delay, bound, lowerBound, exact, paths}
//	POST /feasible      body: instance → JSON {maxDisjoint, minDelay, ok}
//	GET  /healthz       → 200 "ok"
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	log.Printf("krspd listening on %s", *addr)
	if err := http.ListenAndServe(*addr, newMux()); err != nil {
		log.Fatal(err)
	}
}

// newMux builds the HTTP handler; separated from main for tests.
func newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", handleSolve)
	mux.HandleFunc("/feasible", handleFeasible)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// solveResponse is the JSON result of /solve.
type solveResponse struct {
	Cost       int64     `json:"cost"`
	Delay      int64     `json:"delay"`
	Bound      int64     `json:"bound"`
	LowerBound int64     `json:"lowerBound"`
	Exact      bool      `json:"exact"`
	Paths      [][]int32 `json:"paths"` // vertex sequences
	Violated   bool      `json:"boundViolated"`
}

func handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an instance in krsp text format", http.StatusMethodNotAllowed)
		return
	}
	ins, err := graph.ReadInstance(r.Body)
	if err != nil {
		http.Error(w, "bad instance: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := ins.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var res core.Result
	switch algo := r.URL.Query().Get("algo"); algo {
	case "", "solve":
		res, err = core.Solve(ins, core.Options{})
	case "phase1":
		res, err = core.Solve(ins, core.Options{Phase1Only: true})
	case "scaled":
		eps := 0.25
		if s := r.URL.Query().Get("eps"); s != "" {
			eps, err = strconv.ParseFloat(s, 64)
			if err != nil || eps <= 0 {
				http.Error(w, "bad eps", http.StatusBadRequest)
				return
			}
		}
		res, err = core.SolveScaled(ins, eps, eps, core.Options{})
	default:
		http.Error(w, "unknown algo "+algo, http.StatusBadRequest)
		return
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrNoKPaths) || errors.Is(err, core.ErrDelayInfeasible) {
			status = http.StatusUnprocessableEntity
		}
		http.Error(w, err.Error(), status)
		return
	}
	resp := solveResponse{
		Cost: res.Cost, Delay: res.Delay, Bound: ins.Bound,
		LowerBound: res.LowerBound, Exact: res.Exact,
		Violated: res.Delay > ins.Bound,
	}
	for _, p := range res.Solution.Paths {
		var nodes []int32
		for _, v := range p.Nodes(ins.G) {
			nodes = append(nodes, int32(v))
		}
		resp.Paths = append(resp.Paths, nodes)
	}
	writeJSON(w, resp)
}

func handleFeasible(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an instance in krsp text format", http.StatusMethodNotAllowed)
		return
	}
	ins, err := graph.ReadInstance(r.Body)
	if err != nil {
		http.Error(w, "bad instance: "+err.Error(), http.StatusBadRequest)
		return
	}
	feas, err := core.CheckFeasible(ins)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{
		"maxDisjoint": feas.MaxDisjoint,
		"minDelay":    feas.MinDelay,
		"ok":          feas.OK,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; best effort log.
		log.Printf("krspd: encode: %v", err)
	}
}
