// Command krspd serves kRSP solving over HTTP — the shape an SDN
// controller would embed (the paper's §1 argues SDN controllers are where
// multipath QoS routing becomes deployable: global topology, central
// compute).
//
//	krspd -addr :8080 [-pprof] [-max-body 8388608] [-max-inflight N]
//	      [-deadline 0] [-max-deadline 60s] [-trace-dir DIR] [-trace-sample N]
//
// Endpoints:
//
//	POST /solve         body: instance in the krsp text format;
//	                    query: algo=solve|scaled|phase1 (default solve),
//	                           eps=<float> (scaled only)
//	                    header: X-Krsp-Deadline-Ms overrides -deadline,
//	                            capped by -max-deadline;
//	                            traceparent joins a W3C trace (one is
//	                            minted otherwise; the response echoes it)
//	                    → JSON {requestId, cost, delay, bound, lowerBound,
//	                            exact, paths, degraded, deadlineMs,
//	                            traceId, stats}
//	POST /feasible      body: instance → JSON {maxDisjoint, minDelay, ok}
//	GET  /healthz       → 200 "ok"
//	GET  /metrics       → Prometheus text exposition (DESIGN.md §9)
//	GET  /debug/vars    → expvar-compatible JSON (std vars + "krsp")
//	GET  /debug/trace/last → JSONL flight-recorder dump of the last solve
//	GET  /debug/pprof/  → net/http/pprof, only with -pprof
//
// Every solve runs with a flight recorder attached (DESIGN.md §13). The
// dump of the last solve is always available at /debug/trace/last; with
// -trace-dir set, degraded / 503 / panicking solves additionally write
// black-box JSONL dumps named <traceID>.jsonl there (plus every Nth
// ordinary solve with -trace-sample N). Render dumps with cmd/krsptrace.
//
// The server reads bodies through MaxBytesReader (413 beyond -max-body),
// sheds load with 429 past -max-inflight concurrent solves, enforces
// per-request solve deadlines (degraded-but-feasible answers carry
// "degraded": true), converts handler panics to 500s, runs with read/write
// timeouts, logs one structured line per request via log/slog, and shuts
// down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	maxBody := flag.Int64("max-body", 8<<20, "maximum request body size in bytes")
	maxInflight := flag.Int("max-inflight", 2*runtime.GOMAXPROCS(0),
		"maximum concurrent solve/feasible requests before shedding 429 (0 disables)")
	deadline := flag.Duration("deadline", 0,
		"default per-solve deadline; degraded-but-feasible answers past it (0 disables)")
	maxDeadline := flag.Duration("max-deadline", 60*time.Second,
		"cap on the X-Krsp-Deadline-Ms header deadline (0 = uncapped)")
	traceDir := flag.String("trace-dir", "",
		"directory for flight-recorder JSONL dumps: black boxes (degraded/503/panic) plus sampled solves (empty disables)")
	traceSample := flag.Int("trace-sample", 0,
		"with -trace-dir, also dump every Nth ordinary solve trace (0 = black boxes only)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	// The cmd/ edge is the only place the real clock enters the solver
	// stack (krsplint wallclock invariant; see internal/obs/realclock.go).
	srv := newServer(obs.New(obs.RealClock{}), logger, config{
		maxBody:         *maxBody,
		pprof:           *pprofFlag,
		maxInflight:     *maxInflight,
		defaultDeadline: *deadline,
		maxDeadline:     *maxDeadline,
		traceDir:        *traceDir,
		traceSample:     *traceSample,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute, // big solves; must outlive the slowest algo
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("krspd listening", "addr", *addr, "pprof", *pprofFlag,
		"maxBody", *maxBody, "maxInflight", *maxInflight,
		"deadline", *deadline, "maxDeadline", *maxDeadline,
		"traceDir", *traceDir, "traceSample", *traceSample)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		logger.Info("signal received, draining connections")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown incomplete", "err", err)
			os.Exit(1)
		}
		logger.Info("bye")
	}
}
