// Command krspd serves kRSP solving over HTTP — the shape an SDN
// controller would embed (the paper's §1 argues SDN controllers are where
// multipath QoS routing becomes deployable: global topology, central
// compute).
//
//	krspd -addr :8080 [-pprof] [-max-body 8388608] [-max-inflight N]
//	      [-deadline 0] [-max-deadline 60s] [-trace-dir DIR] [-trace-sample N]
//	      [-cluster h1:p,h2:p,... -self h1:p] [-cache N] [-cache-ttl 1m]
//	      [-hedge 0] [-probe-every 2s] [-poll-stride 0]
//
// Endpoints:
//
//	POST /solve         body: instance in the krsp text format;
//	                    query: algo=solve|scaled|phase1 (default solve),
//	                           eps=<float> (scaled only)
//	                    header: X-Krsp-Deadline-Ms overrides -deadline,
//	                            capped by -max-deadline;
//	                            traceparent joins a W3C trace (one is
//	                            minted otherwise; the response echoes it)
//	                    → JSON {requestId, cost, delay, bound, lowerBound,
//	                            exact, paths, degraded, deadlineMs,
//	                            traceId, stats} plus, in cluster mode,
//	                            {cache, stale, collapsed, route,
//	                            degradedRoute} (DESIGN.md §14)
//	POST /feasible      body: instance → JSON {maxDisjoint, minDelay, ok}
//	GET  /healthz       → 200 "ok"
//	GET  /readyz        → JSON ring membership + peer health (§14)
//	GET  /metrics       → Prometheus text exposition (DESIGN.md §9)
//	GET  /debug/vars    → expvar-compatible JSON (std vars + "krsp")
//	GET  /debug/trace/last → JSONL flight-recorder dump of the last solve
//	GET  /debug/pprof/  → net/http/pprof, only with -pprof
//
// Cluster mode (-cluster + -self, DESIGN.md §14): the members rendezvous-
// hash instance fingerprints to owners; any node accepts any solve and
// proxies non-owned ones to the owner with deadline-budgeted retries,
// optional hedging (-hedge), per-peer circuit breaking with -probe-every
// readmission probing, and degraded local fallback. -cache N enables the
// fingerprint solution cache (singleflight is always on); entries older
// than -cache-ttl serve only as stale fallbacks under deadline pressure.
//
// Every solve runs with a flight recorder attached (DESIGN.md §13). The
// dump of the last solve is always available at /debug/trace/last; with
// -trace-dir set, degraded / 503 / panicking solves additionally write
// black-box JSONL dumps named <traceID>.jsonl there (plus every Nth
// ordinary solve with -trace-sample N). Render dumps with cmd/krsptrace.
//
// The server reads bodies through MaxBytesReader (413 beyond -max-body),
// sheds load with 429 past -max-inflight concurrent solves, enforces
// per-request solve deadlines (degraded-but-feasible answers carry
// "degraded": true), converts handler panics to 500s, runs with read/write
// timeouts, logs one structured line per request via log/slog, and shuts
// down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	maxBody := flag.Int64("max-body", 8<<20, "maximum request body size in bytes")
	maxInflight := flag.Int("max-inflight", 2*runtime.GOMAXPROCS(0),
		"maximum concurrent solve/feasible requests before shedding 429 (0 disables)")
	deadline := flag.Duration("deadline", 0,
		"default per-solve deadline; degraded-but-feasible answers past it (0 disables)")
	maxDeadline := flag.Duration("max-deadline", 60*time.Second,
		"cap on the X-Krsp-Deadline-Ms header deadline (0 = uncapped)")
	traceDir := flag.String("trace-dir", "",
		"directory for flight-recorder JSONL dumps: black boxes (degraded/503/panic) plus sampled solves (empty disables)")
	traceSample := flag.Int("trace-sample", 0,
		"with -trace-dir, also dump every Nth ordinary solve trace (0 = black boxes only)")
	clusterFlag := flag.String("cluster", "",
		"comma-separated member list (host:port,...) enabling sharded cluster mode; must include -self")
	selfFlag := flag.String("self", "",
		"this node's own address, spelled exactly as in -cluster")
	cacheSize := flag.Int("cache", 0,
		"fingerprint solution cache capacity in entries (0 disables)")
	cacheTTL := flag.Duration("cache-ttl", time.Minute,
		"cache freshness window; older entries serve only as stale fallbacks under deadline pressure")
	hedge := flag.Duration("hedge", 0,
		"launch a duplicate proxy attempt if the owner has not answered within this (0 disables)")
	probeEvery := flag.Duration("probe-every", 2*time.Second,
		"how often to probe ejected peers for readmission")
	pollEvery := flag.Int("poll-stride", 0,
		"solver cancellation poll stride; smaller notices deadlines sooner (0 = solver default)")
	flag.Parse()

	var peers []string
	if *clusterFlag != "" {
		for _, p := range strings.Split(*clusterFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	// The cmd/ edge is the only place the real clock enters the solver
	// stack (krsplint wallclock invariant; see internal/obs/realclock.go).
	srv, err := newServer(obs.New(obs.RealClock{}), logger, config{
		maxBody:         *maxBody,
		pprof:           *pprofFlag,
		maxInflight:     *maxInflight,
		defaultDeadline: *deadline,
		maxDeadline:     *maxDeadline,
		traceDir:        *traceDir,
		traceSample:     *traceSample,
		peers:           peers,
		self:            *selfFlag,
		cacheSize:       *cacheSize,
		cacheTTL:        *cacheTTL,
		hedgeAfter:      *hedge,
		pollEvery:       *pollEvery,
	})
	if err != nil {
		logger.Error("bad configuration", "err", err)
		os.Exit(2)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute, // big solves; must outlive the slowest algo
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The readmission prober is the only background goroutine of cluster
	// mode: everything else happens on request paths.
	if srv.clstr != nil && *probeEvery > 0 {
		go func() {
			tick := time.NewTicker(*probeEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					srv.probeOnce()
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("krspd listening", "addr", *addr, "pprof", *pprofFlag,
		"maxBody", *maxBody, "maxInflight", *maxInflight,
		"deadline", *deadline, "maxDeadline", *maxDeadline,
		"traceDir", *traceDir, "traceSample", *traceSample,
		"cluster", *clusterFlag, "self", *selfFlag,
		"cache", *cacheSize, "cacheTTL", *cacheTTL, "hedge", *hedge)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		logger.Info("signal received, draining connections")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown incomplete", "err", err)
			os.Exit(1)
		}
		logger.Info("bye")
	}
}
