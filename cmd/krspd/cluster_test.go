// Partition-chaos tests for cluster mode: three in-process krspd nodes on
// real loopback listeners, with deterministic fault seams (PointProxyDial,
// PointProxyRead, PointCancel), manual clocks, and killable/restartable
// listeners. Every scenario the DESIGN.md §14 failover state machine
// promises is driven here: proxying with bit-identical answers, retry with
// backoff, hedging, ejection on node death with zero lost requests,
// cooldown-gated readmission, singleflight collapse, and stale serving
// under deadline pressure.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/solvecache"
)

// cnode is one in-process cluster member.
type cnode struct {
	srv    *server
	hs     *http.Server
	addr   string
	clock  *obs.ManualClock
	faults *fault.Registry
}

func (n *cnode) url() string { return "http://" + n.addr }

// kill closes the node's listener and connections — the "node died" lever.
func (n *cnode) kill(t *testing.T) {
	t.Helper()
	if err := n.hs.Close(); err != nil {
		t.Fatalf("kill %s: %v", n.addr, err)
	}
}

// restart rebinds the node's address with a fresh server (a restarted
// process has empty caches and a clean member table).
func (n *cnode) restart(t *testing.T, peers []string) {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", n.addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", n.addr, err)
	}
	n.clock = &obs.ManualClock{}
	n.faults = fault.New(int64(len(n.addr)))
	srv, err := newServer(obs.New(n.clock), discardLogger(), clusterCfg(peers, n.addr, n.faults))
	if err != nil {
		t.Fatal(err)
	}
	n.srv = srv
	n.srv.clstr.sleep = func(time.Duration) {}
	n.hs = &http.Server{Handler: srv.handler()}
	go n.hs.Serve(ln)
	t.Cleanup(func() { n.hs.Close() })
}

// clusterCfg is the common node config: caching on, trivial backoff so
// retries don't slow the suite down.
func clusterCfg(peers []string, self string, faults *fault.Registry) config {
	return config{
		maxBody:     8 << 20,
		peers:       peers,
		self:        self,
		cacheSize:   64,
		cacheTTL:    time.Hour,
		faults:      faults,
		backoffBase: time.Nanosecond,
		backoffMax:  time.Nanosecond,
	}
}

// startCluster boots n nodes on loopback and returns them with their
// shared member list. Tweaks run before each node starts serving, so
// mutations of unsynchronized fields (hedge timer hooks) are ordered
// before any handler goroutine under the race detector.
func startCluster(t *testing.T, n int, tweaks ...func(i int, node *cnode)) ([]*cnode, []string) {
	t.Helper()
	guardGoroutines(t)
	nodes := make([]*cnode, n)
	peers := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	for i := range nodes {
		clock := &obs.ManualClock{}
		faults := fault.New(int64(i + 1))
		srv, err := newServer(obs.New(clock), discardLogger(), clusterCfg(peers, peers[i], faults))
		if err != nil {
			t.Fatal(err)
		}
		srv.clstr.sleep = func(time.Duration) {}
		nodes[i] = &cnode{srv: srv, addr: peers[i], clock: clock, faults: faults}
		for _, tweak := range tweaks {
			tweak(i, nodes[i])
		}
		nodes[i].hs = &http.Server{Handler: srv.handler()}
		go nodes[i].hs.Serve(lns[i])
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.hs.Close()
		}
	})
	return nodes, peers
}

// testInstance is the 4-node instance of instanceBody as a value; distinct
// bounds give distinct fingerprints (hence distinct ring owners).
func testInstance(bound int64, k int) graph.Instance {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	return graph.Instance{G: g, S: 0, T: 3, K: k, Bound: bound}
}

func instancePayload(t *testing.T, ins graph.Instance) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteInstance(&buf, ins); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// boundOwnedBy scans delay bounds upward from min until the instance's
// fingerprint lands on the wanted owner in from's ring. Bounds ≥ 8 keep
// the instance feasible for k=2 (two disjoint paths of total delay 7
// exist).
func boundOwnedBy(t *testing.T, from *cnode, want string, min int64) int64 {
	t.Helper()
	for b := min; b < min+400; b++ {
		fp := solvecache.Fingerprint(testInstance(b, 2), "solve", 0)
		if owner, _ := from.srv.clstr.table.Owner(fp.Key64()); owner == want {
			return b
		}
	}
	t.Fatalf("no bound in [%d,%d) hashes to %s", min, min+400, want)
	return 0
}

// postSolve sends one solve and decodes the response.
func postSolve(t *testing.T, url string, body []byte, hdr map[string]string) (solveResponse, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out solveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// TestClusterProxyBitIdentical: the same instance posted to every node
// yields byte-identical solutions — proxied answers ARE the owner's
// answers, and the degraded-local path solves the very same deterministic
// problem.
func TestClusterProxyBitIdentical(t *testing.T) {
	nodes, _ := startCluster(t, 3)
	ins := testInstance(10, 2)
	body := instancePayload(t, ins)
	want, err := core.Solve(ins, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	proxied := 0
	for i, n := range nodes {
		out, code := postSolve(t, n.url(), body, nil)
		if code != http.StatusOK {
			t.Fatalf("node %d: status %d", i, code)
		}
		if out.Cost != want.Cost || out.Delay != want.Delay {
			t.Fatalf("node %d: cost/delay %d/%d, want %d/%d", i, out.Cost, out.Delay, want.Cost, want.Delay)
		}
		direct := newCachedSolution(want, ins)
		if fmt.Sprint(out.Paths) != fmt.Sprint(direct.Paths) {
			t.Fatalf("node %d: paths %v, want %v", i, out.Paths, direct.Paths)
		}
		if strings.HasPrefix(out.Route, "proxy:") {
			proxied++
		}
	}
	if proxied != 2 {
		t.Fatalf("proxied answers = %d of 3, want exactly 2 (one owner)", proxied)
	}
	var total int64
	for _, n := range nodes {
		total += n.srv.reg.Cluster.ProxyRequests.Value()
	}
	if total != 2 {
		t.Fatalf("krsp_proxy_requests_total across nodes = %d, want 2", total)
	}
}

// TestClusterCacheHitFast: repeat solves of a cached fingerprint are
// answered from memory — sub-millisecond, flagged "hit", counted.
func TestClusterCacheHitFast(t *testing.T) {
	srv, s := testServerCfg(t, config{maxBody: 1 << 20, cacheSize: 8, cacheTTL: time.Hour})
	body := instancePayload(t, testInstance(10, 2))
	out, code := postSolve(t, srv.URL, body, nil)
	if code != http.StatusOK || out.Cache != "miss" {
		t.Fatalf("first solve: status %d cache %q, want 200/miss", code, out.Cache)
	}
	best := time.Hour
	for i := 0; i < 20; i++ {
		start := time.Now()
		out, code = postSolve(t, srv.URL, body, nil)
		if d := time.Since(start); d < best {
			best = d
		}
		if code != http.StatusOK || out.Cache != "hit" {
			t.Fatalf("repeat %d: status %d cache %q, want 200/hit", i, code, out.Cache)
		}
	}
	if best >= time.Millisecond {
		t.Fatalf("best cache-hit latency %v, want < 1ms", best)
	}
	if got := s.reg.Cluster.CacheHits.Value(); got != 20 {
		t.Fatalf("krsp_cache_hits_total = %d, want 20", got)
	}
	if got := s.reg.Cluster.CacheMisses.Value(); got != 1 {
		t.Fatalf("krsp_cache_misses_total = %d, want 1", got)
	}
}

// TestClusterNodeDeathFailover is the headline chaos scenario: kill a
// node mid-workload and prove zero lost requests (every request still
// answers 2xx), circuit-breaker ejection, remapped ownership, and exact
// readmission after restart + probe.
func TestClusterNodeDeathFailover(t *testing.T) {
	nodes, peers := startCluster(t, 3)
	entry, victim := nodes[0], nodes[2]

	// Warm-up traffic through the entry node, including solves owned by
	// the soon-to-die victim.
	preBound := boundOwnedBy(t, entry, victim.addr, 10)
	out, code := postSolve(t, entry.url(), instancePayload(t, testInstance(preBound, 2)), nil)
	if code != http.StatusOK || out.Route != "proxy:"+victim.addr {
		t.Fatalf("pre-kill proxied solve: status %d route %q", code, out.Route)
	}

	victim.kill(t)

	// Every request keeps answering 2xx. The first victim-owned solve
	// burns the dial retries, ejects the peer, and is solved locally.
	// Start past preBound: the pre-kill bound is cached, a fresh solve is
	// needed to exercise the dial-retry-eject path.
	killBound := boundOwnedBy(t, entry, victim.addr, preBound+1)
	out, code = postSolve(t, entry.url(), instancePayload(t, testInstance(killBound, 2)), nil)
	if code != http.StatusOK {
		t.Fatalf("post-kill solve: status %d, want 200 (zero lost requests)", code)
	}
	if !out.DegradedRoute || out.Route != "degraded-local" {
		t.Fatalf("post-kill solve: degradedRoute=%v route=%q", out.DegradedRoute, out.Route)
	}
	if got := entry.srv.reg.Cluster.PeerEjected.Value(); got != 1 {
		t.Fatalf("krsp_peer_ejected_total = %d, want 1", got)
	}
	if got := entry.srv.reg.Cluster.ProxyRetries.Value(); got < 2 {
		t.Fatalf("krsp_proxy_retries_total = %d, want ≥ 2", got)
	}
	if h := entry.srv.clstr.table.Health(victim.addr); fmt.Sprint(h) != "ejected" {
		t.Fatalf("victim health = %v, want ejected", h)
	}

	// With the victim ejected, its keys remap and solves flow on without
	// burning retries: no further ejections, all 2xx.
	for b := int64(50); b < 60; b++ {
		if _, code := postSolve(t, entry.url(), instancePayload(t, testInstance(b, 2)), nil); code != http.StatusOK {
			t.Fatalf("bound %d: status %d, want 200", b, code)
		}
	}
	if got := entry.srv.reg.Cluster.PeerEjected.Value(); got != 1 {
		t.Fatalf("ejections after remap = %d, want still 1", got)
	}

	// Restart the victim, lapse the cooldown on the entry node's manual
	// clock, probe, and verify exact readmission: the pre-kill bound routes
	// to the victim again.
	victim.restart(t, peers)
	entry.clock.Advance(3_000_000_000)
	entry.srv.probeOnce()
	if got := entry.srv.reg.Cluster.PeerReadmitted.Value(); got != 1 {
		t.Fatalf("krsp_peer_readmitted_total = %d, want 1", got)
	}
	fp := solvecache.Fingerprint(testInstance(killBound, 2), "solve", 0)
	if owner, _ := entry.srv.clstr.table.Owner(fp.Key64()); owner != victim.addr {
		t.Fatalf("post-readmit owner = %q, want %q restored", owner, victim.addr)
	}
	out, code = postSolve(t, entry.url(), instancePayload(t, testInstance(int64(399), 2)), nil)
	if code != http.StatusOK {
		t.Fatalf("post-readmit solve: status %d", code)
	}
}

// TestClusterRetryBackoff: transient dial failures are retried within the
// deadline budget and the proxy still lands — the seam armed through
// PointProxyDial.
func TestClusterRetryBackoff(t *testing.T) {
	nodes, _ := startCluster(t, 3)
	entry := nodes[0]
	peer := nodes[1]
	bound := boundOwnedBy(t, entry, peer.addr, 10)

	var calls atomic.Int64
	entry.faults.ArmFunc(fault.PointProxyDial, func() error {
		if calls.Add(1) <= 2 {
			return fault.ErrInjected
		}
		return nil
	})
	out, code := postSolve(t, entry.url(), instancePayload(t, testInstance(bound, 2)), nil)
	if code != http.StatusOK || out.Route != "proxy:"+peer.addr {
		t.Fatalf("status %d route %q, want 200 proxied", code, out.Route)
	}
	if got := entry.srv.reg.Cluster.ProxyRetries.Value(); got != 2 {
		t.Fatalf("krsp_proxy_retries_total = %d, want 2", got)
	}
	if got := entry.faults.Trips(fault.PointProxyDial); got != 3 {
		t.Fatalf("proxy-dial trips = %d, want 3", got)
	}
	// The eventual success reset the failure streak.
	if h := entry.srv.clstr.table.Health(peer.addr); fmt.Sprint(h) != "up" {
		t.Fatalf("peer health after recovery = %v, want up", h)
	}
}

// TestClusterProxyReadFault: a peer dying mid-response (PointProxyRead)
// exhausts retries and falls back to the degraded local solve — the answer
// is still correct and still 200.
func TestClusterProxyReadFault(t *testing.T) {
	nodes, _ := startCluster(t, 3)
	entry := nodes[0]
	peer := nodes[1]
	bound := boundOwnedBy(t, entry, peer.addr, 10)
	entry.faults.Arm(fault.PointProxyRead, 1.0)

	ins := testInstance(bound, 2)
	want, err := core.Solve(ins, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, code := postSolve(t, entry.url(), instancePayload(t, ins), nil)
	if code != http.StatusOK || !out.DegradedRoute {
		t.Fatalf("status %d degradedRoute %v, want 200/true", code, out.DegradedRoute)
	}
	if out.Cost != want.Cost || out.Delay != want.Delay {
		t.Fatalf("degraded-route answer %d/%d, want %d/%d", out.Cost, out.Delay, want.Cost, want.Delay)
	}
	if got := entry.srv.reg.Cluster.DegradedRoute.Value(); got != 1 {
		t.Fatalf("krsp_degraded_route_total = %d, want 1", got)
	}
	if got := entry.faults.Trips(fault.PointProxyRead); got != 3 {
		t.Fatalf("proxy-read trips = %d, want 3 (one per attempt)", got)
	}
}

// TestClusterHedge: when the first proxy attempt hangs, the hedge timer
// launches a duplicate and the request completes from the duplicate — the
// stuck attempt never blocks the caller.
func TestClusterHedge(t *testing.T) {
	// The entry node's hedge timer fires immediately (stubbed before the
	// node starts serving, so the mutation is ordered before every handler
	// goroutine).
	nodes, _ := startCluster(t, 3, func(i int, n *cnode) {
		if i != 0 {
			return
		}
		n.srv.clstr.hedgeAfter = time.Millisecond
		n.srv.clstr.after = func(time.Duration) <-chan time.Time {
			c := make(chan time.Time, 1)
			c <- time.Time{}
			return c
		}
	})
	entry := nodes[0]
	peer := nodes[1]
	bound := boundOwnedBy(t, entry, peer.addr, 10)

	// The first dial parks until released, so the duplicate attempt wins
	// the race deterministically.
	release := make(chan struct{})
	var firstCall atomic.Bool
	entry.faults.ArmFunc(fault.PointProxyDial, func() error {
		if firstCall.CompareAndSwap(false, true) {
			<-release
		}
		return nil
	})
	defer close(release)
	out, code := postSolve(t, entry.url(), instancePayload(t, testInstance(bound, 2)), nil)
	if code != http.StatusOK || out.Route != "proxy:"+peer.addr {
		t.Fatalf("status %d route %q, want 200 proxied via hedge", code, out.Route)
	}
	if got := entry.srv.reg.Cluster.ProxyHedged.Value(); got != 1 {
		t.Fatalf("krsp_proxy_hedged_total = %d, want 1", got)
	}
}

// TestClusterHopsGuard: a request already carrying the proxy hop header is
// solved locally even by a non-owner — proxy loops are impossible.
func TestClusterHopsGuard(t *testing.T) {
	nodes, _ := startCluster(t, 3)
	entry := nodes[0]
	bound := boundOwnedBy(t, entry, nodes[1].addr, 10)
	out, code := postSolve(t, entry.url(), instancePayload(t, testInstance(bound, 2)),
		map[string]string{hopsHeader: "1"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Route != "local" {
		t.Fatalf("route %q, want local (hops guard)", out.Route)
	}
	if got := entry.srv.reg.Cluster.ProxyRequests.Value(); got != 0 {
		t.Fatalf("proxied = %d, want 0", got)
	}
}

// TestSingleflightCollapseHTTP: concurrent identical solves collapse onto
// one solver run; the leader is parked in-solver via a blocking fault hook
// while the duplicates arrive.
func TestSingleflightCollapseHTTP(t *testing.T) {
	faults := fault.New(1)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	faults.ArmFunc(fault.PointCancel, func() error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	})
	srv, s := testServerCfg(t, config{maxBody: 1 << 20, cacheSize: 8, cacheTTL: time.Hour, faults: faults})
	body := instancePayload(t, testInstance(10, 2))

	const waiters = 4
	results := make(chan int, waiters+1)
	post := func() {
		resp, err := http.Post(srv.URL+"/solve", "text/plain", bytes.NewReader(body))
		if err != nil {
			results <- -1
			return
		}
		resp.Body.Close()
		results <- resp.StatusCode
	}
	go post() // leader
	<-entered // leader parked inside the solver, fingerprint registered
	for i := 0; i < waiters; i++ {
		go post()
	}
	// Wait until all five requests are inflight (leader + 4 waiters past
	// admission), then give the waiters a beat to reach the singleflight
	// gate before releasing the leader.
	for s.reg.Server.Inflight.Value() != waiters+1 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	close(release)
	for i := 0; i < waiters+1; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if got := s.reg.Cluster.SingleflightCollapsed.Value(); got != waiters {
		t.Fatalf("krsp_singleflight_collapsed_total = %d, want %d", got, waiters)
	}
	// The leader's answer was cached; one more request is a pure hit.
	out, code := postSolve(t, srv.URL, body, nil)
	if code != http.StatusOK || out.Cache != "hit" {
		t.Fatalf("follow-up: status %d cache %q", code, out.Cache)
	}
}

// TestStaleServedUnderDeadlinePressure: when the deadline fires before any
// feasible flow exists (ErrNoProgress), a lapsed cache entry is served
// with stale:true instead of a 503.
func TestStaleServedUnderDeadlinePressure(t *testing.T) {
	clock := &obs.ManualClock{}
	// pollEvery 1: the endpoint flows notice the expired deadline on their
	// first poll instead of strides later, so the 1ms deadline lands in
	// phase 1 (ErrNoProgress) and not in the degradable refinement loop.
	s, err := newServer(obs.New(clock), discardLogger(),
		config{maxBody: 8 << 20, cacheSize: 8, cacheTTL: 1 /* ns */, pollEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := startHTTP(t, s)

	// A big instance the 1ms deadline cannot finish (the endpoint min-cost
	// flow alone takes tens of ms), pre-cached as if solved earlier.
	ins := gen.ER(7, 1000, 0.2, gen.DefaultWeights())
	ins.K = 3
	bounded, ok := gen.WithBound(ins, 1.3)
	if !ok {
		t.Fatal("generated instance infeasible")
	}
	fp := solvecache.Fingerprint(bounded, "solve", 0)
	seeded := cachedSolution{Cost: 1234, Delay: 56, Bound: bounded.Bound, Paths: [][]int32{{0, 1}}}
	s.cache.Put(fp, seeded, clock.Now())
	clock.Advance(10) // lapse the 1ns TTL: the entry is now stale, not fresh

	out, code := postSolve(t, hs, instancePayload(t, bounded),
		map[string]string{deadlineMsHeader: "1"})
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 (stale beats 503)", code)
	}
	if !out.Stale || out.Cache != "stale" {
		t.Fatalf("stale=%v cache=%q, want true/stale", out.Stale, out.Cache)
	}
	if out.Cost != seeded.Cost || out.Delay != seeded.Delay {
		t.Fatalf("served %d/%d, want the seeded cache entry %d/%d", out.Cost, out.Delay, seeded.Cost, seeded.Delay)
	}
	if got := s.reg.Cluster.StaleServed.Value(); got != 1 {
		t.Fatalf("krsp_cache_stale_served_total = %d, want 1", got)
	}
	// Without a cache entry the same pressure is a plain 503.
	s.cache.Remove(fp)
	_, code = postSolve(t, hs, instancePayload(t, bounded),
		map[string]string{deadlineMsHeader: "1"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("uncached status %d, want 503", code)
	}
}

// startHTTP serves an already-built server on loopback and returns its
// base URL.
func startHTTP(t *testing.T, s *server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return "http://" + ln.Addr().String()
}

// TestReadyz: cluster nodes expose ring membership and health; single
// nodes report ready with cluster:false.
func TestReadyz(t *testing.T) {
	nodes, _ := startCluster(t, 3)
	resp, err := http.Get(nodes[0].url() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Ready   bool   `json:"ready"`
		Cluster bool   `json:"cluster"`
		Self    string `json:"self"`
		Members []struct {
			Addr   string `json:"addr"`
			Health string `json:"health"`
		} `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Ready || !doc.Cluster || doc.Self != nodes[0].addr || len(doc.Members) != 3 {
		t.Fatalf("readyz = %+v", doc)
	}
	for _, m := range doc.Members {
		if m.Health != "up" {
			t.Fatalf("member %s health %q, want up", m.Addr, m.Health)
		}
	}

	srv, _ := testServer(t, 1<<20, false)
	resp2, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var single struct {
		Ready   bool `json:"ready"`
		Cluster bool `json:"cluster"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}
	if !single.Ready || single.Cluster {
		t.Fatalf("single-node readyz = %+v", single)
	}
}
