// Cluster mode (DESIGN.md §14): krspd nodes share one consistent-hash
// ring over instance fingerprints. Any node accepts any solve, computes
// the owner, and proxies non-owned requests to it — with deadline-budgeted
// retry/backoff, an optional hedged second attempt, a per-peer circuit
// breaker, and a degraded local fallback when the owner is unreachable.
// The loop guard is one hop: a proxied request carries X-Krsp-Hops and is
// always solved locally by the receiver, so transient ring disagreements
// cannot bounce a request around the cluster.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs/rec"
)

// hopsHeader is the proxy loop guard: set to "1" on proxied requests, and
// any request carrying it is solved locally by the receiver.
const hopsHeader = "X-Krsp-Hops"

// defaultProxyAttempts bounds tries per proxied solve (1 initial + retries).
const defaultProxyAttempts = 3

// proxyReserveNs is the deadline slice retries must leave untouched for
// the degraded local fallback: a backoff sleep that would eat into it is
// skipped and the request falls back immediately.
const proxyReserveNs = int64(5_000_000)

// clusterNode is krspd's per-process cluster state: the member table (ring
// + health), the retry backoff policy, and the peer HTTP client. The sleep
// and after hooks default to the real clock in main and are replaced by
// deterministic stand-ins in tests.
type clusterNode struct {
	table      *cluster.Table
	backoff    *cluster.Backoff
	client     *http.Client
	attempts   int
	hedgeAfter time.Duration
	sleep      func(time.Duration)
	after      func(time.Duration) <-chan time.Time
}

// newClusterNode validates the membership and wires the proxy transport.
func newClusterNode(cfg config) (*clusterNode, error) {
	table, err := cluster.NewTable(cfg.peers, cfg.self, cluster.Options{})
	if err != nil {
		return nil, err
	}
	attempts := cfg.proxyAttempts
	if attempts <= 0 {
		attempts = defaultProxyAttempts
	}
	// Seed the backoff jitter from the node's own address so fleet members
	// retry on decorrelated schedules while each node stays deterministic.
	var seed int64
	for _, b := range []byte(cfg.self) {
		seed = seed*131 + int64(b)
	}
	return &clusterNode{
		table:      table,
		backoff:    cluster.NewBackoff(cfg.backoffBase.Nanoseconds(), cfg.backoffMax.Nanoseconds(), seed),
		client:     &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4, IdleConnTimeout: 30 * time.Second}},
		attempts:   attempts,
		hedgeAfter: cfg.hedgeAfter,
		sleep:      time.Sleep,
		after:      time.After,
	}, nil
}

// cachedSolution is the cache/singleflight value: every response field a
// duplicate or replayed solve needs. Paths are vertex sequences, never
// EdgeIDs — edge identities depend on insertion order while the
// fingerprint deliberately does not, so a cached answer must be expressed
// in the order-independent vocabulary.
type cachedSolution struct {
	Cost, Delay, Bound, LowerBound int64
	Exact, Violated, Degraded      bool
	Paths                          [][]int32
	Stats                          core.Stats
}

// newCachedSolution converts a solver result into the cacheable form.
func newCachedSolution(res core.Result, ins graph.Instance) cachedSolution {
	sol := cachedSolution{
		Cost: res.Cost, Delay: res.Delay, Bound: ins.Bound,
		LowerBound: res.LowerBound, Exact: res.Exact,
		Violated: res.Delay > ins.Bound,
		Degraded: res.Stats.Degraded,
		Stats:    res.Stats,
	}
	for _, p := range res.Solution.Paths {
		var nodes []int32
		for _, v := range p.Nodes(ins.G) {
			nodes = append(nodes, int32(v))
		}
		sol.Paths = append(sol.Paths, nodes)
	}
	return sol
}

// solutionOf projects a peer's solve response back into the cacheable form
// so proxied answers populate the local cache too.
func solutionOf(resp solveResponse) cachedSolution {
	return cachedSolution{
		Cost: resp.Cost, Delay: resp.Delay, Bound: resp.Bound,
		LowerBound: resp.LowerBound, Exact: resp.Exact,
		Violated: resp.Violated, Degraded: resp.Degraded,
		Paths: resp.Paths, Stats: resp.Stats,
	}
}

// solutionResponse builds the common response envelope from a cached (or
// just-computed) solution.
func solutionResponse(id int64, v cachedSolution, deadline time.Duration, traceID string) solveResponse {
	return solveResponse{
		RequestID: id, Cost: v.Cost, Delay: v.Delay, Bound: v.Bound,
		LowerBound: v.LowerBound, Exact: v.Exact, Paths: v.Paths,
		Violated: v.Violated, Degraded: v.Degraded,
		DeadlineMs: deadline.Milliseconds(), TraceID: traceID, Stats: v.Stats,
	}
}

// proxySolve forwards a solve to its owning peer with budgeted
// retry/backoff, returning the peer's response, the attempts consumed, and
// whether any attempt succeeded. Peer health flows into the member table
// (ejection and readmission) as a side effect.
func (s *server) proxySolve(ctx context.Context, owner string, body []byte, algo, epsQ string, deadline time.Duration, traceID string, flight *rec.Recorder) (*solveResponse, int, bool) {
	c := s.clstr
	budget := cluster.NewBudget(s.reg.Now(), deadline.Nanoseconds())
	attempts := 0
	for try := 0; try < c.attempts; try++ {
		if try > 0 {
			d := c.backoff.Delay(try - 1)
			if !budget.Allows(s.reg.Now(), d, proxyReserveNs) {
				break
			}
			c.sleep(time.Duration(d))
		}
		attempts++
		resp, outcome := s.proxyAttempt(ctx, owner, body, algo, epsQ, budget, traceID, try, flight)
		flight.Record(rec.KindProxyAttempt, int64(try), outcome, 0, 0)
		if outcome == rec.ProxyOK {
			if c.table.Succeed(owner) {
				s.cm.RecordReadmitted()
			}
			s.cm.RecordProxy(int64(attempts - 1))
			return resp, attempts, true
		}
		if c.table.Fail(owner, s.reg.Now()) {
			s.cm.RecordEjected()
		}
		if ctx.Err() != nil {
			break
		}
	}
	s.cm.RecordProxy(int64(attempts - 1))
	return nil, attempts, false
}

// proxyAttempt runs one proxy attempt, racing a hedged duplicate after
// hedgeAfter on the first try. Both racers write to a buffered channel, so
// the loser completes in the background without leaking a goroutine; the
// peer computes the same deterministic answer, so whichever response wins
// is equally valid.
func (s *server) proxyAttempt(ctx context.Context, owner string, body []byte, algo, epsQ string, budget cluster.Budget, traceID string, try int, flight *rec.Recorder) (*solveResponse, int64) {
	c := s.clstr
	if c.hedgeAfter <= 0 || try > 0 {
		return s.proxyOnce(ctx, owner, body, algo, epsQ, budget, traceID)
	}
	type outcome struct {
		resp *solveResponse
		code int64
	}
	ch := make(chan outcome, 2)
	launch := func() {
		r, code := s.proxyOnce(ctx, owner, body, algo, epsQ, budget, traceID)
		ch <- outcome{r, code}
	}
	go launch()
	select {
	case o := <-ch:
		return o.resp, o.code
	case <-c.after(c.hedgeAfter):
		s.cm.RecordHedged()
		go launch()
		o := <-ch
		flight.Record(rec.KindProxyAttempt, int64(try), o.code, 1, 0)
		return o.resp, o.code
	}
}

// proxyOnce sends one request to the owner and decodes its response. The
// two fault seams bracket the real I/O: PointProxyDial trips before the
// request leaves (dead peer, partition) and PointProxyRead after the
// response arrives but before decoding (peer died mid-stream).
func (s *server) proxyOnce(ctx context.Context, owner string, body []byte, algo, epsQ string, budget cluster.Budget, traceID string) (*solveResponse, int64) {
	if err := s.cfg.faults.Check(fault.PointProxyDial); err != nil {
		return nil, rec.ProxyDialFailed
	}
	u := "http://" + owner + "/solve?algo=" + algo
	if epsQ != "" {
		u += "&eps=" + epsQ
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, rec.ProxyDialFailed
	}
	req.Header.Set(hopsHeader, "1")
	req.Header.Set(traceparentHeader, "00-"+traceID+"-"+newSpanID()+"-01")
	if remaining := budget.Remaining(s.reg.Now()); remaining < 1<<62 {
		ms := remaining / int64(time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(deadlineMsHeader, strconv.FormatInt(ms, 10))
	}
	hr, err := s.clstr.client.Do(req)
	if err != nil {
		return nil, rec.ProxyDialFailed
	}
	defer hr.Body.Close()
	if err := s.cfg.faults.Check(fault.PointProxyRead); err != nil {
		return nil, rec.ProxyReadFailed
	}
	if hr.StatusCode != http.StatusOK {
		// Non-200s (shed 429s, peer 5xx, even 4xx) are all handled the same
		// way: retry, then fall back to the authoritative local solve.
		io.Copy(io.Discard, hr.Body)
		return nil, rec.ProxyBadStatus
	}
	var resp solveResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return nil, rec.ProxyReadFailed
	}
	return &resp, rec.ProxyOK
}

// probeOnce contacts every ejected peer whose cooldown has lapsed; a
// healthy answer readmits it (restoring its ring ownership exactly), a
// failure re-arms the cooldown. main drives this on a ticker; tests call
// it directly.
func (s *server) probeOnce() {
	c := s.clstr
	if c == nil {
		return
	}
	for _, addr := range c.table.ProbeTargets(s.reg.Now()) {
		req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/healthz", nil)
		if err != nil {
			continue
		}
		hr, err := c.client.Do(req)
		if err != nil {
			c.table.Fail(addr, s.reg.Now())
			continue
		}
		io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
		if hr.StatusCode == http.StatusOK {
			if c.table.Succeed(addr) {
				s.cm.RecordReadmitted()
				s.log.Info("peer readmitted", "peer", addr)
			}
		} else {
			c.table.Fail(addr, s.reg.Now())
		}
	}
}

// handleReadyz reports ring membership and peer health — the endpoint a
// load balancer or operator polls to see the cluster through this node's
// eyes. Single-node daemons report ready with cluster:false.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	info := map[string]any{
		"ready":        true,
		"cluster":      s.clstr != nil,
		"cacheEntries": s.cache.Len(),
	}
	if s.clstr != nil {
		info["self"] = s.clstr.table.Self()
		info["members"] = s.clstr.table.Snapshot()
	}
	s.writeJSON(w, info)
}
