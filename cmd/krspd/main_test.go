package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/graph"
)

func instanceBody(t *testing.T, bound int64, k int) *bytes.Buffer {
	t.Helper()
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	ins := graph.Instance{G: g, S: 0, T: 3, K: k, Bound: bound}
	var buf bytes.Buffer
	if err := graph.WriteInstance(&buf, ins); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSolveEndpoint(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Delay > 10 || out.Violated {
		t.Fatalf("bound violated: %+v", out)
	}
	if out.Cost > 26 || out.Cost < 13 {
		t.Fatalf("cost %d outside [OPT, 2·OPT]", out.Cost)
	}
	if len(out.Paths) != 2 {
		t.Fatalf("%d paths", len(out.Paths))
	}
	for _, p := range out.Paths {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Fatalf("path endpoints %v", p)
		}
	}
}

func TestSolveEndpointAlgos(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	for _, q := range []string{"?algo=phase1", "?algo=scaled&eps=0.5"} {
		resp, err := http.Post(srv.URL+"/solve"+q, "text/plain", instanceBody(t, 10, 2))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", q, resp.StatusCode)
		}
	}
}

func TestSolveEndpointErrors(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	// Malformed body.
	resp, _ := http.Post(srv.URL+"/solve", "text/plain", strings.NewReader("garbage"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Infeasible instance → 422.
	resp, _ = http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 3, 2))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Unknown algo.
	resp, _ = http.Post(srv.URL+"/solve?algo=bogus", "text/plain", instanceBody(t, 10, 2))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus algo: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad eps.
	resp, _ = http.Post(srv.URL+"/solve?algo=scaled&eps=-1", "text/plain", instanceBody(t, 10, 2))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad eps: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// GET not allowed.
	resp, _ = http.Get(srv.URL + "/solve")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestFeasibleEndpoint(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/feasible", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		MaxDisjoint int   `json:"maxDisjoint"`
		MinDelay    int64 `json:"minDelay"`
		OK          bool  `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.MaxDisjoint != 3 || out.MinDelay != 7 || !out.OK {
		t.Fatalf("feasible = %+v", out)
	}
}
