package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// discardLogger suppresses request logs in tests (go.mod targets go 1.22;
// slog.DiscardHandler arrived later).
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testServer spins up a daemon instance with a deterministic clock and the
// given body limit; pprof off unless a test opts in.
func testServer(t *testing.T, maxBody int64, enablePprof bool) (*httptest.Server, *server) {
	t.Helper()
	s := newServer(obs.New(&obs.ManualClock{}), discardLogger(), maxBody, enablePprof)
	srv := httptest.NewServer(s.mux())
	t.Cleanup(srv.Close)
	return srv, s
}

func instanceBody(t *testing.T, bound int64, k int) *bytes.Buffer {
	t.Helper()
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	ins := graph.Instance{G: g, S: 0, T: 3, K: k, Bound: bound}
	var buf bytes.Buffer
	if err := graph.WriteInstance(&buf, ins); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSolveEndpoint(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	resp, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Delay > 10 || out.Violated {
		t.Fatalf("bound violated: %+v", out)
	}
	if out.Cost > 26 || out.Cost < 13 {
		t.Fatalf("cost %d outside [OPT, 2·OPT]", out.Cost)
	}
	if len(out.Paths) != 2 {
		t.Fatalf("%d paths", len(out.Paths))
	}
	for _, p := range out.Paths {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Fatalf("path endpoints %v", p)
		}
	}
	if out.RequestID == 0 {
		t.Fatal("missing request id")
	}
	// Stats ride along in the response (per-request observability).
	if out.Stats.Phase1.CLPDen == 0 {
		t.Fatalf("stats not echoed: %+v", out.Stats)
	}
}

func TestSolveEndpointAlgos(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	for _, q := range []string{"?algo=phase1", "?algo=scaled&eps=0.5"} {
		resp, err := http.Post(srv.URL+"/solve"+q, "text/plain", instanceBody(t, 10, 2))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", q, resp.StatusCode)
		}
	}
}

func TestSolveEndpointErrors(t *testing.T) {
	srv, s := testServer(t, 1<<20, false)
	// Malformed body.
	resp, _ := http.Post(srv.URL+"/solve", "text/plain", strings.NewReader("garbage"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Infeasible instance → 422.
	resp, _ = http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 3, 2))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Unknown algo.
	resp, _ = http.Post(srv.URL+"/solve?algo=bogus", "text/plain", instanceBody(t, 10, 2))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus algo: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad eps.
	resp, _ = http.Post(srv.URL+"/solve?algo=scaled&eps=-1", "text/plain", instanceBody(t, 10, 2))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad eps: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// GET not allowed.
	resp, _ = http.Get(srv.URL + "/solve")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := s.reg.Server.RequestErrors.Value(); got != 5 {
		t.Fatalf("request errors counted = %d, want 5", got)
	}
}

func TestSolveBodyLimit(t *testing.T) {
	srv, _ := testServer(t, 64, false) // 64-byte cap
	big := strings.Repeat("# padding line beyond any reasonable limit\n", 100)
	resp, err := http.Post(srv.URL+"/solve", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func TestFeasibleEndpoint(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	resp, err := http.Post(srv.URL+"/feasible", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		MaxDisjoint int   `json:"maxDisjoint"`
		MinDelay    int64 `json:"minDelay"`
		OK          bool  `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.MaxDisjoint != 3 || out.MinDelay != 7 || !out.OK {
		t.Fatalf("feasible = %+v", out)
	}
}

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue finds the sample `name value` (name includes labels if any)
// in an exposition body.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("sample %s: parse %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("sample %s not found in exposition:\n%s", name, body)
	return 0
}

// TestMetricsIntegration is the acceptance check: two /solve calls, then a
// /metrics scrape must show request count = 2, nonzero phase-duration
// histogram counts, and cycle-type counters matching the summed response
// Stats.
func TestMetricsIntegration(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	var cycles [3]int
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
		if err != nil {
			t.Fatal(err)
		}
		var out solveResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
		for j, c := range out.Stats.CyclesByType {
			cycles[j] += c
		}
	}
	body := scrape(t, srv)
	if got := metricValue(t, body, "krspd_solve_requests_total"); got != 2 {
		t.Fatalf("solve requests = %d, want 2", got)
	}
	for _, phase := range []string{"phase1", "decompose", "total"} {
		name := fmt.Sprintf(`krsp_solve_phase_duration_seconds_count{phase=%q}`, phase)
		if got := metricValue(t, body, name); got < 2 {
			t.Fatalf("phase %s observations = %d, want ≥ 2", phase, got)
		}
	}
	for j, want := range cycles {
		name := fmt.Sprintf(`krsp_cycles_total{type="%d"}`, j)
		if got := metricValue(t, body, name); got != int64(want) {
			t.Fatalf("cycles type %d = %d, want %d (from response stats)", j, got, want)
		}
	}
	if got := metricValue(t, body, "krsp_solves_total"); got != 2 {
		t.Fatalf("solves = %d, want 2", got)
	}
	if got := metricValue(t, body, "krspd_inflight_requests"); got != 0 {
		t.Fatalf("inflight after completion = %d, want 0", got)
	}
}

func TestDebugVars(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	// One request so the counters are nonzero.
	resp, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("vars not valid JSON: %v", err)
	}
	var krsp map[string]any
	if err := json.Unmarshal(doc["krsp"], &krsp); err != nil {
		t.Fatalf("krsp snapshot: %v", err)
	}
	if v, ok := krsp["krspd_solve_requests_total"].(float64); !ok || v != 1 {
		t.Fatalf("snapshot solve requests = %v, want 1", krsp["krspd_solve_requests_total"])
	}
	if _, ok := krsp[`krsp_solve_phase_duration_seconds{phase="total"}`]; !ok {
		t.Fatal("snapshot missing phase histogram")
	}
}

func TestPprofGate(t *testing.T) {
	on, _ := testServer(t, 1<<20, true)
	resp, err := http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: status %d", resp.StatusCode)
	}
	off, _ := testServer(t, 1<<20, false)
	resp, err = http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: status %d, want 404", resp.StatusCode)
	}
}
