package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
)

// discardLogger suppresses request logs in tests (go.mod targets go 1.22;
// slog.DiscardHandler arrived later).
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// guardGoroutines fails the test when goroutines spawned during it outlive
// its servers. The entry count is compared after every other cleanup
// (server shutdown, client drains) has run; exits are asynchronous, so the
// check retries until the count stabilizes at or below the baseline before
// declaring a leak.
func guardGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		n := runtime.NumGoroutine()
		for n > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > base {
			t.Errorf("goroutine leak: %d at test entry, %d after cleanup", base, n)
		}
	})
}

// testServerCfg spins up a daemon instance with a deterministic clock and
// full control over the operational config.
func testServerCfg(t *testing.T, cfg config) (*httptest.Server, *server) {
	t.Helper()
	guardGoroutines(t)
	s, err := newServer(obs.New(&obs.ManualClock{}), discardLogger(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.handler())
	t.Cleanup(srv.Close)
	return srv, s
}

// testServer is the common-case helper: the given body limit, admission
// control off, no deadlines; pprof off unless a test opts in.
func testServer(t *testing.T, maxBody int64, enablePprof bool) (*httptest.Server, *server) {
	t.Helper()
	return testServerCfg(t, config{maxBody: maxBody, pprof: enablePprof})
}

func instanceBody(t *testing.T, bound int64, k int) *bytes.Buffer {
	t.Helper()
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	ins := graph.Instance{G: g, S: 0, T: 3, K: k, Bound: bound}
	var buf bytes.Buffer
	if err := graph.WriteInstance(&buf, ins); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSolveEndpoint(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	resp, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Delay > 10 || out.Violated {
		t.Fatalf("bound violated: %+v", out)
	}
	if out.Cost > 26 || out.Cost < 13 {
		t.Fatalf("cost %d outside [OPT, 2·OPT]", out.Cost)
	}
	if len(out.Paths) != 2 {
		t.Fatalf("%d paths", len(out.Paths))
	}
	for _, p := range out.Paths {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Fatalf("path endpoints %v", p)
		}
	}
	if out.RequestID == 0 {
		t.Fatal("missing request id")
	}
	// Stats ride along in the response (per-request observability).
	if out.Stats.Phase1.CLPDen == 0 {
		t.Fatalf("stats not echoed: %+v", out.Stats)
	}
}

func TestSolveEndpointAlgos(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	for _, q := range []string{"?algo=phase1", "?algo=scaled&eps=0.5"} {
		resp, err := http.Post(srv.URL+"/solve"+q, "text/plain", instanceBody(t, 10, 2))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", q, resp.StatusCode)
		}
	}
}

func TestSolveEndpointErrors(t *testing.T) {
	srv, s := testServer(t, 1<<20, false)
	// Malformed body.
	resp, _ := http.Post(srv.URL+"/solve", "text/plain", strings.NewReader("garbage"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Infeasible instance → 422.
	resp, _ = http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 3, 2))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Unknown algo.
	resp, _ = http.Post(srv.URL+"/solve?algo=bogus", "text/plain", instanceBody(t, 10, 2))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus algo: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad eps.
	resp, _ = http.Post(srv.URL+"/solve?algo=scaled&eps=-1", "text/plain", instanceBody(t, 10, 2))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad eps: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// GET not allowed.
	resp, _ = http.Get(srv.URL + "/solve")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := s.reg.Server.RequestErrors.Value(); got != 5 {
		t.Fatalf("request errors counted = %d, want 5", got)
	}
}

func TestSolveBodyLimit(t *testing.T) {
	srv, _ := testServer(t, 64, false) // 64-byte cap
	big := strings.Repeat("# padding line beyond any reasonable limit\n", 100)
	resp, err := http.Post(srv.URL+"/solve", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func TestFeasibleEndpoint(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	resp, err := http.Post(srv.URL+"/feasible", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		MaxDisjoint int   `json:"maxDisjoint"`
		MinDelay    int64 `json:"minDelay"`
		OK          bool  `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.MaxDisjoint != 3 || out.MinDelay != 7 || !out.OK {
		t.Fatalf("feasible = %+v", out)
	}
}

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue finds the sample `name value` (name includes labels if any)
// in an exposition body.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("sample %s: parse %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("sample %s not found in exposition:\n%s", name, body)
	return 0
}

// TestMetricsIntegration is the acceptance check: two /solve calls, then a
// /metrics scrape must show request count = 2, nonzero phase-duration
// histogram counts, and cycle-type counters matching the summed response
// Stats.
func TestMetricsIntegration(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	var cycles [3]int
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
		if err != nil {
			t.Fatal(err)
		}
		var out solveResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
		for j, c := range out.Stats.CyclesByType {
			cycles[j] += c
		}
	}
	body := scrape(t, srv)
	if got := metricValue(t, body, "krspd_solve_requests_total"); got != 2 {
		t.Fatalf("solve requests = %d, want 2", got)
	}
	for _, phase := range []string{"phase1", "decompose", "total"} {
		name := fmt.Sprintf(`krsp_solve_phase_duration_seconds_count{phase=%q}`, phase)
		if got := metricValue(t, body, name); got < 2 {
			t.Fatalf("phase %s observations = %d, want ≥ 2", phase, got)
		}
	}
	for j, want := range cycles {
		name := fmt.Sprintf(`krsp_cycles_total{type="%d"}`, j)
		if got := metricValue(t, body, name); got != int64(want) {
			t.Fatalf("cycles type %d = %d, want %d (from response stats)", j, got, want)
		}
	}
	if got := metricValue(t, body, "krsp_solves_total"); got != 2 {
		t.Fatalf("solves = %d, want 2", got)
	}
	if got := metricValue(t, body, "krspd_inflight_requests"); got != 0 {
		t.Fatalf("inflight after completion = %d, want 0", got)
	}
}

func TestDebugVars(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	// One request so the counters are nonzero.
	resp, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("vars not valid JSON: %v", err)
	}
	var krsp map[string]any
	if err := json.Unmarshal(doc["krsp"], &krsp); err != nil {
		t.Fatalf("krsp snapshot: %v", err)
	}
	if v, ok := krsp["krspd_solve_requests_total"].(float64); !ok || v != 1 {
		t.Fatalf("snapshot solve requests = %v, want 1", krsp["krspd_solve_requests_total"])
	}
	if _, ok := krsp[`krsp_solve_phase_duration_seconds{phase="total"}`]; !ok {
		t.Fatal("snapshot missing phase histogram")
	}
}

// TestSolveShedsWhenOverloaded parks one solve inside the solver via a
// blocking fault hook so the single admission slot stays occupied, then
// asserts a concurrent solve is shed with 429 carrying a Retry-After hint
// and counted, and that the parked solve still completes once released.
func TestSolveShedsWhenOverloaded(t *testing.T) {
	faults := fault.New(1)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	faults.ArmFunc(fault.PointCancel, func() error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	})
	srv, s := testServerCfg(t, config{
		maxBody: 1 << 20, maxInflight: 1, faults: faults,
		defaultDeadline: 2500 * time.Millisecond, // Retry-After rounds up to 3
	})

	firstBody := instanceBody(t, 10, 2)
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/solve", "text/plain", firstBody)
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-entered // the first solve now holds the only slot, parked in-solver

	resp, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded solve: status %d, want 429", resp.StatusCode)
	}
	// A shed response tells the client when to come back: the configured
	// deadline (how long the slot could stay busy), rounded up to seconds.
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\" (2.5s default deadline rounded up)", got)
	}
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("parked solve: status %d, want 200", code)
	}
	if got := s.reg.Server.Shed.Value(); got != 1 {
		t.Fatalf("krspd_shed_total = %d, want 1", got)
	}
	if got := metricValue(t, scrape(t, srv), "krspd_shed_total"); got != 1 {
		t.Fatalf("exposed shed total = %d, want 1", got)
	}
}

// TestSolveDeadlineDegrades exercises the full deadline path: the header is
// parsed and capped, a canceller exists, and the fault-tripped cancellation
// returns a degraded-but-feasible answer with 200, the degraded flag, the
// echoed effective deadline, and a counter tick.
func TestSolveDeadlineDegrades(t *testing.T) {
	faults := fault.New(2)
	faults.Arm(fault.PointCancel, 1.0) // deterministic stand-in for the clock expiring
	srv, _ := testServerCfg(t, config{
		maxBody:     1 << 20,
		maxDeadline: 50 * time.Millisecond,
		faults:      faults,
	})
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/solve", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(deadlineMsHeader, "100000") // way past the cap
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (anytime answers are not errors)", resp.StatusCode)
	}
	var out solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || !out.Stats.Degraded {
		t.Fatalf("expected a degraded answer, got %+v", out)
	}
	if out.DeadlineMs != 50 {
		t.Fatalf("deadlineMs = %d, want the 50ms cap", out.DeadlineMs)
	}
	if out.Delay > out.Bound || out.Violated {
		t.Fatalf("degraded answer violates the delay bound: %+v", out)
	}
	if got := metricValue(t, scrape(t, srv), "krsp_solve_degraded_total"); got != 1 {
		t.Fatalf("krsp_solve_degraded_total = %d, want 1", got)
	}
}

// TestSolveDeadlineHeaderValidation: garbage or non-positive header values
// are a client error, not a silently ignored knob.
func TestSolveDeadlineHeaderValidation(t *testing.T) {
	srv, _ := testServer(t, 1<<20, false)
	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/solve", instanceBody(t, 10, 2))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(deadlineMsHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("header %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestSolvePanicRecovered: an injected solver panic must become one 500 and
// a krspd_panic_recovered_total tick — and the daemon must keep serving.
func TestSolvePanicRecovered(t *testing.T) {
	faults := fault.New(3)
	faults.ArmPanic(fault.PointCycleSearch, 1.0)
	srv, s := testServerCfg(t, config{maxBody: 1 << 20, faults: faults})
	resp, err := http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking solve: status %d, want 500", resp.StatusCode)
	}
	if got := s.reg.Server.PanicsRecovered.Value(); got != 1 {
		t.Fatalf("panics recovered = %d, want 1", got)
	}
	// The daemon survives: disarm and solve again on the same server.
	faults.Disarm(fault.PointCycleSearch)
	resp, err = http.Post(srv.URL+"/solve", "text/plain", instanceBody(t, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic solve: status %d, want 200", resp.StatusCode)
	}
	if got := metricValue(t, scrape(t, srv), "krspd_panic_recovered_total"); got != 1 {
		t.Fatalf("exposed panic total = %d, want 1", got)
	}
}

func TestPprofGate(t *testing.T) {
	on, _ := testServer(t, 1<<20, true)
	resp, err := http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: status %d", resp.StatusCode)
	}
	off, _ := testServer(t, 1<<20, false)
	resp, err = http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: status %d, want 404", resp.StatusCode)
	}
}
