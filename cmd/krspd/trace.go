package main

// Per-request flight-recorder tracing for krspd: W3C traceparent parsing
// and propagation, a recorder pool feeding core.Options.Recorder, sampled
// JSONL dumps under -trace-dir, automatic black-box dumps whenever a solve
// degrades, 503s, or panics, and the in-memory last-trace buffer behind
// GET /debug/trace/last. cmd/krsptrace renders the dumps.

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/rec"
)

// traceparentHeader is the W3C Trace Context header carrying the trace ID
// (https://www.w3.org/TR/trace-context/): 00-<32 hex>-<16 hex>-<2 hex>.
const traceparentHeader = "traceparent"

// parseTraceparent extracts the trace ID from a version-00 traceparent
// value, rejecting malformed input and the all-zero (invalid) trace ID.
func parseTraceparent(h string) (traceID string, ok bool) {
	// 2 (version) + 1 + 32 (trace-id) + 1 + 16 (parent-id) + 1 + 2 (flags)
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	tid := h[3:35]
	allZero := true
	for i := 0; i < len(h); i++ {
		if i == 2 || i == 35 || i == 52 {
			continue
		}
		c := h[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return "", false
		}
	}
	for i := 0; i < len(tid); i++ {
		if tid[i] != '0' {
			allZero = false
			break
		}
	}
	if allZero {
		return "", false
	}
	// The parent span ID must be nonzero too.
	allZero = true
	for i := 36; i < 52; i++ {
		if h[i] != '0' {
			allZero = false
			break
		}
	}
	if allZero {
		return "", false
	}
	return tid, true
}

// randomHex returns n bytes of crypto randomness as 2n lowercase hex
// digits. ID generation lives only at this cmd/ edge, like the real clock.
func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is a platform catastrophe; an all-zero ID
		// would be invalid per the spec, so fall back to a fixed nonzero
		// marker that is at least well-formed.
		for i := range b {
			b[i] = 0xfe
		}
	}
	return hex.EncodeToString(b)
}

// newTraceID mints a 128-bit W3C trace ID.
func newTraceID() string { return randomHex(16) }

// newSpanID mints a 64-bit W3C span ID.
func newSpanID() string { return randomHex(8) }

// registryClock adapts the server's metric registry into the obs.Clock the
// recorder wants, so traces and phase spans share one time source.
type registryClock struct{ reg *obs.Registry }

func (c registryClock) Now() int64 { return c.reg.Now() }

// tracer owns krspd's per-request recorders: a pool (rings are ~200 KiB;
// reallocating one per request would dwarf the solve's own allocations),
// the sampling counter, the dump directory, and the last-trace buffer.
type tracer struct {
	// dir, sample and clock are immutable after newTracer returns.
	dir     string    //lint:allow lockcheck immutable after newTracer returns
	sample  int       //lint:allow lockcheck immutable after newTracer returns
	clock   obs.Clock //lint:allow lockcheck immutable after newTracer returns
	pool    sync.Pool
	counter atomic.Int64

	mu sync.Mutex
	//krsp:guardedby(mu)
	last []byte // JSONL dump of the most recent finished solve trace
	//krsp:guardedby(mu)
	lastID string
}

// newTracer wires the recorder pool. dir == "" disables on-disk dumps
// (the last-trace buffer still works); sample N dumps every Nth solve
// trace in addition to the black-box triggers, 0 dumps black boxes only.
func newTracer(clock obs.Clock, dir string, sample int) *tracer {
	t := &tracer{dir: dir, sample: sample, clock: clock}
	t.pool.New = func() any { return rec.New(clock, rec.DefaultCapacity) }
	return t
}

// acquire returns a reset recorder from the pool.
func (t *tracer) acquire() *rec.Recorder {
	r := t.pool.Get().(*rec.Recorder)
	r.Reset()
	return r
}

// finish encodes the request's trace, stores it as the last trace, dumps
// it to disk when sampled or black-boxed, and returns the recorder to the
// pool. It reports the dump path ("" when not written to disk).
func (t *tracer) finish(r *rec.Recorder, traceID string, blackBox bool) string {
	defer t.pool.Put(r)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, traceID); err != nil {
		return ""
	}
	dump := buf.Bytes()
	t.mu.Lock()
	t.last = dump
	t.lastID = traceID
	t.mu.Unlock()

	if t.dir == "" {
		return ""
	}
	sampled := false
	if t.sample > 0 {
		sampled = t.counter.Add(1)%int64(t.sample) == 0
	}
	if !blackBox && !sampled {
		return ""
	}
	path := filepath.Join(t.dir, traceID+".jsonl")
	if err := os.WriteFile(path, dump, 0o644); err != nil {
		return ""
	}
	return path
}

// lastTrace returns the most recent finished trace dump and its ID.
func (t *tracer) lastTrace() (dump []byte, traceID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last, t.lastID
}
