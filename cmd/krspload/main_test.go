package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubServer mimics krspd's /solve envelope: first sight of a body is a
// miss, repeats are hits, and every other request reports a proxied route.
func stubServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	seen := make(map[string]bool)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		body := make([]byte, 1<<16)
		ln, _ := r.Body.Read(body)
		key := string(body[:ln])
		<-mu
		hit := seen[key]
		seen[key] = true
		mu <- struct{}{}
		cache := "miss"
		if hit {
			cache = "hit"
		}
		route := "local"
		if n%2 == 0 {
			route = "proxy:peer"
		}
		json.NewEncoder(w).Encode(map[string]any{"route": route, "cache": cache})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestRunSummary: an open-loop run against the stub counts total, proxied,
// and cache-hit responses and reports sane latency stats.
func TestRunSummary(t *testing.T) {
	srv, calls := stubServer(t)
	sum, err := run(loadConfig{
		targets:  []string{srv.URL},
		qps:      0, // as fast as possible
		n:        20,
		distinct: 4,
		timeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 20 || sum.Total != 20 {
		t.Fatalf("requests = %d / total = %d, want 20", calls.Load(), sum.Total)
	}
	if sum.Non2xx != 0 {
		t.Fatalf("non2xx = %d, want 0", sum.Non2xx)
	}
	if sum.Proxied != 10 {
		t.Fatalf("proxied = %d, want 10 (every other stub response)", sum.Proxied)
	}
	// 4 distinct bounds: 4 misses, 16 hits.
	if sum.CacheHits != 16 {
		t.Fatalf("cacheHits = %d, want 16", sum.CacheHits)
	}
	if sum.MaxMs <= 0 || sum.P99Ms > sum.MaxMs {
		t.Fatalf("latency stats inconsistent: %+v", sum)
	}
	total := 0
	for _, c := range sum.HistogramMs {
		total += c
	}
	if total != 20 {
		t.Fatalf("histogram holds %d samples, want 20", total)
	}
}

// TestRunCountsFailures: a dead target yields non-2xx results, not a hang
// or a crash.
func TestRunCountsFailures(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	sum, err := run(loadConfig{targets: []string{srv.URL}, n: 5, timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Non2xx != 5 {
		t.Fatalf("non2xx = %d, want 5", sum.Non2xx)
	}
}

// TestParseReplay: offsets and bounds parse, comments and blanks are
// skipped, garbage is rejected with a line number.
func TestParseReplay(t *testing.T) {
	evs, err := parseReplay(strings.NewReader("# trace\n0 10\n\n5 12\n7 11\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []event{{0, 10}, {5, 12}, {7, 11}}
	if len(evs) != len(want) {
		t.Fatalf("events = %v, want %v", evs, want)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, evs[i], want[i])
		}
	}
	for _, bad := range []string{"x 10\n", "5\n", "5 0\n", "-1 10\n"} {
		if _, err := parseReplay(strings.NewReader(bad)); err == nil {
			t.Fatalf("parseReplay(%q) accepted garbage", bad)
		}
	}
}

// TestReplaySchedule: a replayed trace drives the request schedule — the
// run cannot finish before the last offset.
func TestReplaySchedule(t *testing.T) {
	srv, _ := stubServer(t)
	start := time.Now()
	sum, err := run(loadConfig{
		targets: []string{srv.URL},
		replay:  []event{{0, 10}, {30, 11}, {60, 12}},
		timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("replay finished in %v, before the 60ms final offset", elapsed)
	}
	if sum.Total != 3 {
		t.Fatalf("total = %d, want 3", sum.Total)
	}
}

// TestAssess: the CI assertions fire on the right fields and pass when
// disabled.
func TestAssess(t *testing.T) {
	sum := summary{Non2xx: 2, Proxied: 1, CacheHits: 3}
	if msg := assess(loadConfig{maxNon2xx: -1}, sum); msg != "" {
		t.Fatalf("disabled assertions failed: %s", msg)
	}
	if msg := assess(loadConfig{maxNon2xx: 1}, sum); !strings.Contains(msg, "non2xx") {
		t.Fatalf("want non2xx failure, got %q", msg)
	}
	if msg := assess(loadConfig{maxNon2xx: -1, minProxied: 2}, sum); !strings.Contains(msg, "proxied") {
		t.Fatalf("want proxied failure, got %q", msg)
	}
	if msg := assess(loadConfig{maxNon2xx: -1, minCacheHit: 4}, sum); !strings.Contains(msg, "cacheHits") {
		t.Fatalf("want cacheHits failure, got %q", msg)
	}
	if msg := assess(loadConfig{maxNon2xx: 2, minProxied: 1, minCacheHit: 3}, sum); msg != "" {
		t.Fatalf("satisfied assertions failed: %s", msg)
	}
}

// TestBucket: histogram bins are power-of-two and cover the range.
func TestBucket(t *testing.T) {
	cases := map[time.Duration]string{
		100 * time.Microsecond:  "<1ms",
		1500 * time.Microsecond: "<2ms",
		900 * time.Millisecond:  "<1.024s",
		20 * time.Second:        ">=16s",
	}
	for d, want := range cases {
		if got := bucket(d); got != want {
			t.Fatalf("bucket(%v) = %q, want %q", d, got, want)
		}
	}
}
