// Command krspload is an open-loop load generator for krspd: it fires
// solve requests at a fixed target rate (never waiting for responses, so
// a slow or dying server cannot make the generator lie about latency),
// tracks per-request latency and routing outcomes, and can kill a peer
// mid-run to rehearse the cluster failover path.
//
//	krspload -targets http://h1:8080,http://h2:8080 -qps 50 -n 100
//	         [-distinct 8] [-instance FILE] [-replay FILE]
//	         [-kill-after N -kill-pid PID] [-timeout 30s]
//	         [-max-non2xx N] [-min-proxied N] [-min-cache-hit N]
//
// Each request posts a small built-in instance whose delay bound rotates
// through -distinct values, so a run exercises both cache misses (first
// sight of a bound) and hits (repeats), and in cluster mode spreads
// ownership across the ring. -instance substitutes a fixed payload from a
// file; -replay replays a trace file of "<offset_ms> <bound>" lines on
// the recorded schedule instead of the fixed-rate clock.
//
// After -kill-after requests have been launched, the process -kill-pid is
// sent SIGTERM — the mid-run node death of the cluster-smoke target.
//
// The run summary is one JSON object on stdout: counts (total, non-2xx,
// proxied, cache hits, stale, degraded-route), achieved QPS, latency
// percentiles, and a power-of-two-millisecond histogram. The -max-non2xx /
// -min-proxied / -min-cache-hit assertions turn the summary into an exit
// code for CI.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/graph"
)

// loadConfig bundles the generator knobs; tests construct it directly.
type loadConfig struct {
	targets  []string
	qps      float64
	n        int
	distinct int
	body     []byte  // fixed payload; nil selects the rotating built-in
	replay   []event // overrides qps/n scheduling when non-empty
	timeout  time.Duration

	killAfter int
	killPid   int

	maxNon2xx   int // -1 disables
	minProxied  int
	minCacheHit int
}

// event is one replayed request: fire at offset with the given bound.
type event struct {
	offsetMs int64
	bound    int64
}

// result is one request's outcome as the generator saw it.
type result struct {
	code    int
	latency time.Duration
	route   string
	cache   string
	stale   bool
}

// summary is the JSON report: everything a smoke harness or a human needs
// to judge a run.
type summary struct {
	Total         int     `json:"total"`
	Non2xx        int     `json:"non2xx"`
	Proxied       int     `json:"proxied"`
	CacheHits     int     `json:"cacheHits"`
	Stale         int     `json:"stale"`
	DegradedRoute int     `json:"degradedRoute"`
	AchievedQPS   float64 `json:"achievedQps"`
	P50Ms         float64 `json:"p50Ms"`
	P90Ms         float64 `json:"p90Ms"`
	P99Ms         float64 `json:"p99Ms"`
	MaxMs         float64 `json:"maxMs"`
	// HistogramMs maps power-of-two latency buckets ("<1ms", "<2ms", ...)
	// to request counts.
	HistogramMs map[string]int `json:"histogramMs"`
	// Codes counts responses by HTTP status ("0" = transport error).
	Codes map[string]int `json:"codes"`
}

func main() {
	targets := flag.String("targets", "http://127.0.0.1:8080",
		"comma-separated krspd base URLs, round-robined")
	qps := flag.Float64("qps", 50, "open-loop launch rate, requests per second")
	n := flag.Int("n", 100, "total requests to launch")
	distinct := flag.Int("distinct", 8,
		"distinct delay bounds to rotate through (cache misses vs hits)")
	instanceFile := flag.String("instance", "",
		"post this instance file instead of the rotating built-in")
	replayFile := flag.String("replay", "",
		"replay a trace of '<offset_ms> <bound>' lines on its own schedule")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	killAfter := flag.Int("kill-after", 0,
		"after launching this many requests, SIGTERM -kill-pid (0 disables)")
	killPid := flag.Int("kill-pid", 0, "process to kill at -kill-after")
	maxNon2xx := flag.Int("max-non2xx", -1,
		"fail (exit 1) if more than this many non-2xx responses (-1 disables)")
	minProxied := flag.Int("min-proxied", 0,
		"fail (exit 1) unless at least this many responses were proxied")
	minCacheHit := flag.Int("min-cache-hit", 0,
		"fail (exit 1) unless at least this many responses were cache hits")
	flag.Parse()

	cfg := loadConfig{
		qps: *qps, n: *n, distinct: *distinct, timeout: *timeout,
		killAfter: *killAfter, killPid: *killPid,
		maxNon2xx: *maxNon2xx, minProxied: *minProxied, minCacheHit: *minCacheHit,
	}
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			cfg.targets = append(cfg.targets, strings.TrimSuffix(t, "/"))
		}
	}
	if *instanceFile != "" {
		body, err := os.ReadFile(*instanceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "krspload:", err)
			os.Exit(2)
		}
		cfg.body = body
	}
	if *replayFile != "" {
		f, err := os.Open(*replayFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "krspload:", err)
			os.Exit(2)
		}
		cfg.replay, err = parseReplay(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "krspload:", err)
			os.Exit(2)
		}
	}

	sum, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "krspload:", err)
		os.Exit(2)
	}
	out, _ := json.MarshalIndent(sum, "", "  ")
	fmt.Println(string(out))
	if failed := assess(cfg, sum); failed != "" {
		fmt.Fprintln(os.Stderr, "krspload: FAIL:", failed)
		os.Exit(1)
	}
}

// parseReplay reads "<offset_ms> <bound>" lines ('#' comments and blanks
// skipped).
func parseReplay(r io.Reader) ([]event, error) {
	var evs []event
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("replay line %d: want '<offset_ms> <bound>', got %q", line, text)
		}
		off, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || off < 0 {
			return nil, fmt.Errorf("replay line %d: bad offset %q", line, fields[0])
		}
		bound, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || bound <= 0 {
			return nil, fmt.Errorf("replay line %d: bad bound %q", line, fields[1])
		}
		evs = append(evs, event{offsetMs: off, bound: bound})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}

// builtinBody renders the standard 4-node two-disjoint-paths instance with
// the given delay bound — the same shape the krspd tests post, cheap to
// solve, with a bound-sensitive fingerprint.
func builtinBody(bound int64) []byte {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	var buf bytes.Buffer
	if err := graph.WriteInstance(&buf, graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: bound}); err != nil {
		panic(err) // static instance; cannot fail
	}
	return buf.Bytes()
}

// run drives the open-loop schedule: launch times come from the clock (or
// the replay trace), never from response arrivals, so server slowness
// shows up as latency and shed — not as a gentler workload.
func run(cfg loadConfig) (summary, error) {
	if len(cfg.targets) == 0 {
		return summary{}, fmt.Errorf("no targets")
	}
	n := cfg.n
	if len(cfg.replay) > 0 {
		n = len(cfg.replay)
	}
	if n <= 0 {
		return summary{}, fmt.Errorf("nothing to send (n=%d)", n)
	}
	if cfg.distinct <= 0 {
		cfg.distinct = 1
	}
	client := &http.Client{Timeout: cfg.timeout}

	results := make(chan result, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		bound := int64(10 + i%cfg.distinct)
		if len(cfg.replay) > 0 {
			ev := cfg.replay[i]
			bound = ev.bound
			time.Sleep(time.Duration(ev.offsetMs)*time.Millisecond - time.Since(start))
		} else if cfg.qps > 0 && i > 0 {
			time.Sleep(time.Duration(float64(i)/cfg.qps*float64(time.Second)) - time.Since(start))
		}
		body := cfg.body
		if body == nil {
			body = builtinBody(bound)
		}
		target := cfg.targets[i%len(cfg.targets)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- post(client, target, body)
		}()
		if cfg.killAfter > 0 && i+1 == cfg.killAfter && cfg.killPid > 0 {
			// The mid-run node death: SIGTERM, exactly once, while
			// requests are still in flight.
			if p, err := os.FindProcess(cfg.killPid); err == nil {
				p.Signal(syscall.SIGTERM)
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	return summarize(results, n, elapsed), nil
}

// post fires one solve and extracts the routing fields from the response.
func post(client *http.Client, target string, body []byte) result {
	start := time.Now()
	resp, err := client.Post(target+"/solve", "text/plain", bytes.NewReader(body))
	if err != nil {
		return result{code: 0, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	r := result{code: resp.StatusCode}
	var doc struct {
		Route string `json:"route"`
		Cache string `json:"cache"`
		Stale bool   `json:"stale"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err == nil {
		r.route = doc.Route
		r.cache = doc.Cache
		r.stale = doc.Stale
	}
	r.latency = time.Since(start)
	return r
}

// summarize folds the per-request results into the report.
func summarize(results <-chan result, n int, elapsed time.Duration) summary {
	sum := summary{Total: n, HistogramMs: map[string]int{}, Codes: map[string]int{}}
	latencies := make([]time.Duration, 0, n)
	for r := range results {
		latencies = append(latencies, r.latency)
		sum.Codes[strconv.Itoa(r.code)]++
		if r.code < 200 || r.code > 299 {
			sum.Non2xx++
		}
		if strings.HasPrefix(r.route, "proxy:") {
			sum.Proxied++
		}
		if r.route == "degraded-local" {
			sum.DegradedRoute++
		}
		if r.cache == "hit" {
			sum.CacheHits++
		}
		if r.stale {
			sum.Stale++
		}
		sum.HistogramMs[bucket(r.latency)]++
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return ms(latencies[idx])
	}
	sum.P50Ms, sum.P90Ms, sum.P99Ms = pct(0.50), pct(0.90), pct(0.99)
	sum.MaxMs = ms(latencies[len(latencies)-1])
	if secs := elapsed.Seconds(); secs > 0 {
		sum.AchievedQPS = float64(n) / secs
	}
	return sum
}

// bucket names the power-of-two-millisecond histogram bin for one latency.
func bucket(d time.Duration) string {
	for limit := time.Millisecond; limit <= 16*time.Second; limit *= 2 {
		if d < limit {
			return "<" + limit.String()
		}
	}
	return ">=16s"
}

// assess applies the CI assertions; empty means pass.
func assess(cfg loadConfig, sum summary) string {
	if cfg.maxNon2xx >= 0 && sum.Non2xx > cfg.maxNon2xx {
		return fmt.Sprintf("non2xx = %d > max %d", sum.Non2xx, cfg.maxNon2xx)
	}
	if sum.Proxied < cfg.minProxied {
		return fmt.Sprintf("proxied = %d < min %d", sum.Proxied, cfg.minProxied)
	}
	if sum.CacheHits < cfg.minCacheHit {
		return fmt.Sprintf("cacheHits = %d < min %d", sum.CacheHits, cfg.minCacheHit)
	}
	return ""
}
