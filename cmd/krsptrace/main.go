// Command krsptrace renders flight-recorder dumps (DESIGN.md §13) into
// human-readable reports and Chrome trace_event JSON.
//
// Usage:
//
//	krsptrace [flags] [trace.jsonl]
//
// With a file argument (or JSONL on stdin), krsptrace prints the solve
// report: the phase timeline, the duality-gap convergence table, the
// decision log (degradations, escalations, fallbacks, fault hits), and an
// event census.
//
// Flags:
//
//	-chrome FILE  write Chrome trace_event JSON instead of the report;
//	              load it in Perfetto (ui.perfetto.dev) or about:tracing.
//	              "-" writes to stdout.
//	-dir DIR      aggregate report: one summary row per *.jsonl dump in
//	              DIR (as written by krspd -trace-dir), plus totals.
//
// Dumps come from krspd (-trace-dir, /debug/trace/last) or krsp -flight.
// Timestamps are whatever clock recorded the trace — wall-clock
// nanoseconds from the daemons, arbitrary manual-clock ticks in tests —
// and the report always shows them relative to the first event.
package main

import (
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "krsptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs, cfg := newFlags(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.dir != "" {
		if fs.NArg() > 0 {
			return fmt.Errorf("-dir takes no file arguments")
		}
		return aggregate(out, cfg.dir)
	}
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in, name = f, fs.Arg(0)
	}
	hdr, evs, err := readDump(in)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", name, err)
	}
	if cfg.chrome != "" {
		w := out
		if cfg.chrome != "-" {
			f, err := os.Create(cfg.chrome)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return writeChrome(w, hdr, evs)
	}
	return report(out, hdr, evs)
}
