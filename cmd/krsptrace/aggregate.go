package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs/rec"
)

// traceSummaryRow condenses one dump for the aggregate table.
type traceSummaryRow struct {
	name       string
	trace      string
	events     int
	dropped    uint64
	iters      int64 // cancel-step count
	lambda     int64 // lambda-iter count
	gapFirst   int64
	gapLast    int64
	gapSeen    bool
	outcome    string
	parseError error
}

func summarize(name string, in io.Reader) traceSummaryRow {
	row := traceSummaryRow{name: name, outcome: "?"}
	hdr, evs, err := readDump(in)
	if err != nil {
		row.parseError = err
		return row
	}
	row.trace = hdr.Trace
	row.events = len(evs)
	row.dropped = hdr.Dropped
	for _, ev := range evs {
		switch ev.Kind {
		case rec.KindCancelStep:
			row.iters++
		case rec.KindLambdaIter:
			row.lambda++
		case rec.KindDualityGap:
			if !row.gapSeen {
				row.gapFirst = ev.Args[3]
				row.gapSeen = true
			}
			row.gapLast = ev.Args[3]
		case rec.KindSolveEnd:
			row.outcome = flagNames(ev.Args[3])
		}
	}
	return row
}

// aggregate prints one summary row per *.jsonl dump in dir plus totals —
// the triage view over a krspd -trace-dir directory.
func aggregate(w io.Writer, dir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no *.jsonl dumps in %s", dir)
	}
	sort.Strings(files)
	fmt.Fprintf(w, "%-32s  %7s  %7s  %6s  %7s  %12s  %s\n",
		"trace", "events", "dropped", "iters", "λ-iters", "gap", "outcome")
	var totalEvents, totalDegraded, badFiles int
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		row := summarize(filepath.Base(path), f)
		f.Close()
		if row.parseError != nil {
			fmt.Fprintf(w, "%-32s  unreadable: %v\n", row.name, row.parseError)
			badFiles++
			continue
		}
		trace := row.trace
		if trace == "" {
			trace = row.name
		}
		gap := "-"
		if row.gapSeen {
			gap = fmt.Sprintf("%d→%d", row.gapFirst, row.gapLast)
		}
		fmt.Fprintf(w, "%-32s  %7d  %7d  %6d  %7d  %12s  %s\n",
			trace, row.events, row.dropped, row.iters, row.lambda, gap, row.outcome)
		totalEvents += row.events
		if row.outcome != "ok" && row.outcome != "exact" {
			totalDegraded++
		}
	}
	fmt.Fprintf(w, "totals: %d traces, %d with non-clean outcomes, %d events",
		len(files)-badFiles, totalDegraded, totalEvents)
	if badFiles > 0 {
		fmt.Fprintf(w, ", %d unreadable", badFiles)
	}
	fmt.Fprintln(w)
	return nil
}
