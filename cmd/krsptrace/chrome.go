package main

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/obs/rec"
)

// writeChrome emits the dump as Chrome trace_event JSON (the "JSON Object
// Format"): phase pairs become B/E duration events, everything else an
// instant event carrying its named arguments. Perfetto and about:tracing
// load the result directly. Timestamps are microseconds per the format;
// recorder timestamps are treated as nanoseconds (what the daemons'
// RealClock records), so ts = T/1000.
//
// The JSON is written by hand rather than via encoding/json: field order
// and number formatting stay byte-stable, which is what the golden test
// pins.
func writeChrome(w io.Writer, hdr rec.Header, evs []rec.Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\n")
	fmt.Fprintf(bw, " \"otherData\":{\"schema\":%d,\"trace\":%q,\"dropped\":%d},\n", hdr.Schema, hdr.Trace, hdr.Dropped)
	fmt.Fprintf(bw, " \"traceEvents\":[")
	var t0 int64
	if len(evs) > 0 {
		t0 = evs[0].T
	}
	for i, ev := range evs {
		if i > 0 {
			fmt.Fprint(bw, ",")
		}
		fmt.Fprint(bw, "\n  ")
		ts := float64(ev.T-t0) / 1e3
		switch ev.Kind {
		case rec.KindPhaseStart, rec.KindPhaseEnd:
			ph := "B"
			if ev.Kind == rec.KindPhaseEnd {
				ph = "E"
			}
			fmt.Fprintf(bw, `{"name":%q,"cat":"phase","ph":%q,"ts":%.3f,"pid":1,"tid":1}`,
				obs.Phase(ev.Args[0]).String(), ph, ts)
		default:
			fmt.Fprintf(bw, `{"name":%q,"cat":"event","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":1,"args":{`,
				ev.Kind.String(), ts)
			info := ev.Kind.Info()
			first := true
			for slot, name := range info.Args {
				if name == "" {
					continue
				}
				if !first {
					fmt.Fprint(bw, ",")
				}
				first = false
				fmt.Fprintf(bw, "%q:%d", name, ev.Args[slot])
			}
			fmt.Fprint(bw, "}}")
		}
	}
	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}
