package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/rec"
)

// cfg carries the parsed flags of one invocation.
type cfgT struct {
	chrome string
	dir    string
}

func newFlags(out io.Writer) (*flag.FlagSet, *cfgT) {
	fs := flag.NewFlagSet("krsptrace", flag.ContinueOnError)
	cfg := &cfgT{}
	fs.StringVar(&cfg.chrome, "chrome", "",
		`write Chrome trace_event JSON to this file ("-" = stdout) instead of the report`)
	fs.StringVar(&cfg.dir, "dir", "",
		"aggregate report over every *.jsonl dump in this directory")
	fs.SetOutput(out)
	return fs, cfg
}

// readDump parses one JSONL flight-recorder dump.
func readDump(in io.Reader) (rec.Header, []rec.Event, error) {
	return rec.ReadJSONL(in)
}

// fallbackReasons names the KindFallback reason codes for display.
func fallbackReason(code int64) string {
	switch code {
	case rec.FallbackIterCap:
		return "iteration-cap"
	case rec.FallbackSearchExhausted:
		return "search-exhausted"
	case rec.FallbackCheaper:
		return "endpoint-cheaper"
	default:
		return fmt.Sprintf("reason-%d", code)
	}
}

// flagNames renders a KindSolveEnd flags bitmask.
func flagNames(flags int64) string {
	var parts []string
	if flags&rec.FlagDegraded != 0 {
		parts = append(parts, "degraded")
	}
	if flags&rec.FlagExact != 0 {
		parts = append(parts, "exact")
	}
	if flags&rec.FlagRelaxedCap != 0 {
		parts = append(parts, "relaxed-cap")
	}
	if flags&rec.FlagFellBack != 0 {
		parts = append(parts, "fell-back")
	}
	if len(parts) == 0 {
		return "ok"
	}
	return strings.Join(parts, ",")
}

// phaseSpan is one matched phase-start/phase-end pair.
type phaseSpan struct {
	phase      obs.Phase
	start, end int64
	depth      int
}

// phaseSpans pairs phase events in stream order. Phases nest (a scaled
// solve wraps an inner solve), so starts push a stack and ends pop it;
// an unmatched start closes at the last event's timestamp.
func phaseSpans(evs []rec.Event) []phaseSpan {
	var spans []phaseSpan
	var open []int // indices into spans
	for _, ev := range evs {
		switch ev.Kind {
		case rec.KindPhaseStart:
			spans = append(spans, phaseSpan{
				phase: obs.Phase(ev.Args[0]), start: ev.T, end: ev.T, depth: len(open),
			})
			open = append(open, len(spans)-1)
		case rec.KindPhaseEnd:
			// Pop the innermost open span for this phase (ends arrive in
			// LIFO order from the deferred span closes).
			for i := len(open) - 1; i >= 0; i-- {
				if spans[open[i]].phase == obs.Phase(ev.Args[0]) {
					spans[open[i]].end = ev.T
					open = append(open[:i], open[i+1:]...)
					break
				}
			}
		}
	}
	if len(evs) > 0 {
		last := evs[len(evs)-1].T
		for _, i := range open {
			spans[i].end = last
		}
	}
	return spans
}

// bar renders a width-character gantt bar for [start, end] within
// [t0, t0+span].
func bar(start, end, t0, span int64, width int) string {
	if span <= 0 {
		return ""
	}
	from := int((start - t0) * int64(width) / span)
	to := int((end - t0) * int64(width) / span)
	if to <= from {
		to = from + 1
	}
	if to > width {
		to = width
	}
	return strings.Repeat(".", from) + strings.Repeat("#", to-from) + strings.Repeat(".", width-to)
}

// report renders the human-readable solve report: header, phase timeline,
// duality-gap convergence table, decision log, and event census.
func report(w io.Writer, hdr rec.Header, evs []rec.Event) error {
	trace := hdr.Trace
	if trace == "" {
		trace = "(untraced)"
	}
	fmt.Fprintf(w, "trace %s  schema %d  events %d", trace, hdr.Schema, len(evs))
	if hdr.Dropped > 0 {
		fmt.Fprintf(w, "  (ring wrapped: %d of %d dropped)", hdr.Dropped, hdr.Total)
	}
	fmt.Fprintln(w)
	if len(evs) == 0 {
		fmt.Fprintln(w, "empty trace")
		return nil
	}
	t0 := evs[0].T
	span := evs[len(evs)-1].T - t0

	// Result line from the outermost (last) solve-end.
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == rec.KindSolveEnd {
			a := evs[i].Args
			fmt.Fprintf(w, "result: cost=%d delay=%d iterations=%d outcome=%s\n",
				a[0], a[1], a[2], flagNames(a[3]))
			break
		}
	}

	spans := phaseSpans(evs)
	if len(spans) > 0 {
		fmt.Fprintf(w, "\nphase timeline (Δt from first event):\n")
		for _, s := range spans {
			label := strings.Repeat("  ", s.depth) + s.phase.String()
			fmt.Fprintf(w, "  %8d .. %-8d  %-14s %s (%d)\n",
				s.start-t0, s.end-t0, label, bar(s.start, s.end, t0, span, 30), s.end-s.start)
		}
	}

	printedHeader := false
	for _, ev := range evs {
		if ev.Kind != rec.KindDualityGap {
			continue
		}
		if !printedHeader {
			fmt.Fprintf(w, "\nduality-gap convergence:\n")
			fmt.Fprintf(w, "  %5s  %12s  %12s  %10s\n", "iter", "feasible", "dual-floor", "gap")
			printedHeader = true
		}
		fmt.Fprintf(w, "  %5d  %12d  %12d  %10d\n", ev.Args[0], ev.Args[1], ev.Args[2], ev.Args[3])
	}

	printedHeader = false
	decision := func(t int64, format string, args ...any) {
		if !printedHeader {
			fmt.Fprintf(w, "\ndecisions:\n")
			printedHeader = true
		}
		fmt.Fprintf(w, "  t=%-8d %s\n", t-t0, fmt.Sprintf(format, args...))
	}
	for _, ev := range evs {
		switch ev.Kind {
		case rec.KindDegraded:
			decision(ev.T, "degraded: deadline fired in phase %s", obs.Phase(ev.Args[0]))
		case rec.KindCRefEscalate:
			decision(ev.T, "cref-escalate: C_ref %d -> %d", ev.Args[0], ev.Args[1])
		case rec.KindRelaxedCap:
			decision(ev.T, "relaxed-cap: consumed fallback candidate cost=%d delay=%d", ev.Args[0], ev.Args[1])
		case rec.KindFallback:
			decision(ev.T, "fallback: returned phase-1 endpoint (%s)", fallbackReason(ev.Args[0]))
		case rec.KindResidualRebuild:
			decision(ev.T, "residual-rebuild: full rebuild at iteration %d", ev.Args[0])
		case rec.KindFaultHit:
			decision(ev.T, "fault-hit: %s", fault.Point(ev.Args[0]))
		}
	}

	var counts [rec.NumKinds]int
	for _, ev := range evs {
		if ev.Kind < rec.NumKinds {
			counts[ev.Kind]++
		}
	}
	fmt.Fprintf(w, "\nevent census:\n")
	for k := rec.Kind(0); k < rec.NumKinds; k++ {
		if counts[k] > 0 {
			fmt.Fprintf(w, "  %-18s %d\n", k.String(), counts[k])
		}
	}
	return nil
}
