package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
)

// golden compares got against testdata/<name>; KRSPTRACE_UPDATE=1
// regenerates the file instead.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("KRSPTRACE_UPDATE") == "1" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (KRSPTRACE_UPDATE=1 regenerates):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestReportGolden pins the human report: phase timeline, duality-gap
// convergence table, decision log, event census.
func TestReportGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{filepath.Join("testdata", "flight.jsonl")}, &out); err != nil {
		t.Fatal(err)
	}
	golden(t, "report.golden", out.Bytes())
}

// TestChromeGolden pins the Chrome trace_event export byte-for-byte and
// checks it is valid JSON of the expected shape.
func TestChromeGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-chrome", "-", filepath.Join("testdata", "flight.jsonl")}, &out); err != nil {
		t.Fatal(err)
	}
	golden(t, "chrome.golden", out.Bytes())

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			Schema int    `json:"schema"`
			Trace  string `json:"trace"`
		} `json:"otherData"`
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.OtherData.Schema != rec.Schema || doc.OtherData.Trace == "" {
		t.Fatalf("otherData = %+v", doc.OtherData)
	}
	if len(doc.TraceEvents) != 20 {
		t.Fatalf("trace events = %d, want 20", len(doc.TraceEvents))
	}
	var b, e int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			b++
		case "E":
			e++
		}
	}
	if b != 3 || e != 3 {
		t.Fatalf("phase B/E events = %d/%d, want 3/3", b, e)
	}
}

// TestAggregate: one row per dump plus a totals line.
func TestAggregate(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", "flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.jsonl"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	other := bytes.Replace(src, []byte("4bf92f3577b34da6a3ce929d0e0e4736"),
		[]byte("00000000000000000000000000000002"), 1)
	if err := os.WriteFile(filepath.Join(dir, "b.jsonl"), other, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "4bf92f3577b34da6a3ce929d0e0e4736") ||
		!strings.Contains(s, "00000000000000000000000000000002") {
		t.Fatalf("aggregate rows missing:\n%s", s)
	}
	if !strings.Contains(s, "totals: 2 traces, 2 with non-clean outcomes, 40 events") {
		t.Fatalf("totals line wrong:\n%s", s)
	}
	if !strings.Contains(s, "degraded") {
		t.Fatalf("outcome column missing:\n%s", s)
	}
}

// TestAggregateEmptyDir: an empty directory is an error, not a silent
// empty report.
func TestAggregateEmptyDir(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dir", t.TempDir()}, &out); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestLiveRoundTrip closes the loop with the real solver: record an actual
// solve, dump it with WriteJSONL, and require the report to render a phase
// timeline and a convergence table from it — the acceptance-criteria path
// without golden brittleness (live traces depend on solver internals).
func TestLiveRoundTrip(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	ins := graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: 10}
	r := rec.New(new(obs.ManualClock), 1024)
	if _, err := core.Solve(ins, core.Options{Recorder: r}); err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	if err := r.WriteJSONL(&dump, "0123456789abcdef0123456789abcdef"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "live.jsonl")
	if err := os.WriteFile(path, dump.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"trace 0123456789abcdef0123456789abcdef",
		"phase timeline",
		"duality-gap convergence",
		"result: cost=",
		"event census:",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}

	var chrome bytes.Buffer
	if err := run([]string{"-chrome", "-", path}, &chrome); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("live chrome export invalid: %v", err)
	}
}
