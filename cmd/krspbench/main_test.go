package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{
  "schema": "krspbench/1",
  "benchmarks": [
    {"name": "SolveN60K3", "allocs_per_op": 229},
    {"name": "BicameralFind", "allocs_per_op": 20}
  ]
}`

func TestGuardPasses(t *testing.T) {
	path := writeBaseline(t, baselineJSON)
	var out bytes.Buffer
	current := []record{
		{Name: "SolveN60K3", AllocsPerOp: 229},
		{Name: "BicameralFind", AllocsPerOp: 18}, // improvements are fine
		{Name: "Unlisted", AllocsPerOp: 9999},    // not in baseline: skipped
	}
	if err := guard(&out, path, current); err != nil {
		t.Fatalf("guard failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Unlisted") || !strings.Contains(out.String(), "skipped") {
		t.Fatalf("skip not reported:\n%s", out.String())
	}
}

func TestGuardFailsOnRegression(t *testing.T) {
	path := writeBaseline(t, baselineJSON)
	var out bytes.Buffer
	err := guard(&out, path, []record{{Name: "SolveN60K3", AllocsPerOp: 230}})
	if err == nil {
		t.Fatal("regression not caught")
	}
	if !strings.Contains(err.Error(), "SolveN60K3: 230 allocs/op > baseline 229") {
		t.Fatalf("error: %v", err)
	}
}

func TestGuardFailsOnEmptyIntersection(t *testing.T) {
	path := writeBaseline(t, baselineJSON)
	var out bytes.Buffer
	if err := guard(&out, path, []record{{Name: "Nope", AllocsPerOp: 1}}); err == nil {
		t.Fatal("empty intersection accepted")
	}
}

func TestGuardFailsOnMissingOrBadBaseline(t *testing.T) {
	var out bytes.Buffer
	if err := guard(&out, "/nonexistent.json", nil); err == nil {
		t.Fatal("missing baseline accepted")
	}
	path := writeBaseline(t, "not json")
	if err := guard(&out, path, nil); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}
