package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{
  "schema": "krspbench/1",
  "benchmarks": [
    {"name": "SolveN60K3", "allocs_per_op": 229},
    {"name": "BicameralFind", "allocs_per_op": 20}
  ]
}`

func TestGuardPasses(t *testing.T) {
	path := writeBaseline(t, baselineJSON)
	var out bytes.Buffer
	current := []record{
		{Name: "SolveN60K3", AllocsPerOp: 229},
		{Name: "BicameralFind", AllocsPerOp: 18}, // improvements are fine
		{Name: "Unlisted", AllocsPerOp: 9999},    // not in baseline: skipped
	}
	if err := guard(&out, path, current); err != nil {
		t.Fatalf("guard failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Unlisted") || !strings.Contains(out.String(), "skipped") {
		t.Fatalf("skip not reported:\n%s", out.String())
	}
}

func TestGuardFailsOnRegression(t *testing.T) {
	path := writeBaseline(t, baselineJSON)
	var out bytes.Buffer
	err := guard(&out, path, []record{{Name: "SolveN60K3", AllocsPerOp: 230}})
	if err == nil {
		t.Fatal("regression not caught")
	}
	if !strings.Contains(err.Error(), "SolveN60K3: 230 allocs/op > baseline 229") {
		t.Fatalf("error: %v", err)
	}
}

func TestGuardFailsOnEmptyIntersection(t *testing.T) {
	path := writeBaseline(t, baselineJSON)
	var out bytes.Buffer
	if err := guard(&out, path, []record{{Name: "Nope", AllocsPerOp: 1}}); err == nil {
		t.Fatal("empty intersection accepted")
	}
}

const baselineFullJSON = `{
  "schema": "krspbench/1",
  "benchmarks": [
    {"name": "SolveN60K3", "ns_per_op": 900000, "allocs_per_op": 229, "bytes_per_op": 200000},
    {"name": "Phase1ScaledN5k", "ns_per_op": 16000000, "allocs_per_op": 270, "bytes_per_op": 2200000}
  ]
}`

func TestBaselineDeltaTable(t *testing.T) {
	path := writeBaseline(t, baselineFullJSON)
	var out bytes.Buffer
	current := []record{
		{Name: "SolveN60K3", NsPerOp: 450000, AllocsPerOp: 173, BytesPerOp: 150000},
		{Name: "Phase1ScaledN5k", NsPerOp: 15000000, AllocsPerOp: 270, BytesPerOp: 2200000},
		{Name: "BrandNewRow", NsPerOp: 10, AllocsPerOp: 1, BytesPerOp: 8},
	}
	if err := diffBaseline(&out, path, current); err != nil {
		t.Fatalf("diffBaseline failed: %v\n%s", err, out.String())
	}
	text := out.String()
	// The table must carry the improvement as a negative ns/op delta, flag
	// rows absent from the baseline, and show a zero allocs delta.
	if !strings.Contains(text, "-50.0%") {
		t.Fatalf("ns/op delta missing:\n%s", text)
	}
	if !strings.Contains(text, "(new)") {
		t.Fatalf("new row not flagged:\n%s", text)
	}
	if !strings.Contains(text, "+0") {
		t.Fatalf("flat allocs delta missing:\n%s", text)
	}
}

func TestBaselineFailsOnAllocRegression(t *testing.T) {
	path := writeBaseline(t, baselineFullJSON)
	var out bytes.Buffer
	err := diffBaseline(&out, path, []record{
		{Name: "SolveN60K3", NsPerOp: 400000, AllocsPerOp: 230, BytesPerOp: 150000},
	})
	if err == nil {
		t.Fatal("alloc regression not caught")
	}
	if !strings.Contains(err.Error(), "SolveN60K3: 230 allocs/op > baseline 229") {
		t.Fatalf("error: %v", err)
	}
	// A faster-but-allocating run must still fail: ns/op never excuses allocs.
	if !strings.Contains(out.String(), "-5") {
		t.Fatalf("table should still have printed:\n%s", out.String())
	}
}

func TestBaselineFailsOnEmptyIntersection(t *testing.T) {
	path := writeBaseline(t, baselineFullJSON)
	var out bytes.Buffer
	if err := diffBaseline(&out, path, []record{{Name: "Nope"}}); err == nil {
		t.Fatal("empty intersection accepted")
	}
}

func TestGuardFailsOnMissingOrBadBaseline(t *testing.T) {
	var out bytes.Buffer
	if err := guard(&out, "/nonexistent.json", nil); err == nil {
		t.Fatal("missing baseline accepted")
	}
	path := writeBaseline(t, "not json")
	if err := guard(&out, path, nil); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}
