// Command krspbench runs the hot-path benchmark suite via testing.Benchmark
// and writes a machine-readable JSON report (BENCH_1.json by default): one
// record per benchmark with ns/op, allocs/op and B/op. CI and the README
// performance workflow diff these reports across commits.
//
// Usage:
//
//	krspbench                       # all benchmarks → BENCH_1.json
//	krspbench -out report.json      # custom output path
//	krspbench -run Solve,Residual   # substring-filtered subset
//	krspbench -guard BENCH_1.json   # fail if allocs/op regress above the
//	                                # baseline (no report written unless
//	                                # -out is given explicitly)
//	krspbench -baseline BENCH_1.json# per-benchmark delta table (ns/op, B/op,
//	                                # allocs/op vs the baseline), failing on
//	                                # any allocs/op regression
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bicameral"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/residual"
	"repro/internal/shortest"
	"repro/internal/solvecache"
)

// record is one benchmark result in the JSON report.
type record struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// report is the BENCH_1.json schema.
type report struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []record `json:"benchmarks"`
}

type bench struct {
	name string
	fn   func(b *testing.B)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "krspbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("krspbench", flag.ContinueOnError)
	outPath := fs.String("out", "BENCH_1.json", "output JSON path (- for stdout)")
	filter := fs.String("run", "", "comma-separated substrings; empty = all")
	guardPath := fs.String("guard", "", "baseline JSON: fail on allocs/op regression instead of writing a report")
	basePath := fs.String("baseline", "", "baseline JSON: print a per-benchmark delta table and fail on allocs/op regression")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	outSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})
	var wanted []string
	if *filter != "" {
		wanted = strings.Split(*filter, ",")
	}
	rep := report{
		Schema:     "krspbench/1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, bm := range suite() {
		if !matches(bm.name, wanted) {
			continue
		}
		// testing.Benchmark applies the standard ~1s auto-scaling.
		res := testing.Benchmark(bm.fn)
		if res.N == 0 {
			fmt.Fprintf(out, "%-28s skipped\n", bm.name)
			continue
		}
		rec := record{
			Name:        bm.name,
			Iters:       res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
		fmt.Fprintf(out, "%-28s %12.0f ns/op %10d allocs/op %12d B/op\n",
			rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.BytesPerOp)
	}
	if *basePath != "" {
		if err := diffBaseline(out, *basePath, rep.Benchmarks); err != nil {
			return err
		}
		if !outSet {
			return nil // baseline mode: don't clobber the baseline
		}
	}
	if *guardPath != "" {
		if err := guard(out, *guardPath, rep.Benchmarks); err != nil {
			return err
		}
		if !outSet {
			return nil // guard mode: don't clobber the baseline
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "-" {
		_, err = out.Write(data)
		return err
	}
	return os.WriteFile(*outPath, data, 0o644)
}

// guard compares allocs/op for every benchmark present in both the current
// run and the baseline report, and fails on any regression. allocs/op is
// the guarded quantity (it is deterministic, unlike ns/op): the zero-alloc
// observability contract says core.Solve with Options.Metrics unset must
// not allocate more than the pre-instrumentation baseline.
func guard(out io.Writer, path string, current []record) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseline := make(map[string]int64, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r.AllocsPerOp
	}
	compared := 0
	var regressed []string
	for _, r := range current {
		want, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(out, "guard: %-22s no baseline, skipped\n", r.Name)
			continue
		}
		compared++
		if r.AllocsPerOp > want {
			regressed = append(regressed,
				fmt.Sprintf("%s: %d allocs/op > baseline %d", r.Name, r.AllocsPerOp, want))
		} else {
			fmt.Fprintf(out, "guard: %-22s %d allocs/op ≤ baseline %d\n", r.Name, r.AllocsPerOp, want)
		}
	}
	if compared == 0 {
		return fmt.Errorf("guard: no benchmark in common with %s (check -run filter)", path)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("alloc regression vs %s:\n  %s", path, strings.Join(regressed, "\n  "))
	}
	return nil
}

// diffBaseline prints a per-benchmark delta table against a previous report
// and, like guard, fails on any allocs/op regression. ns/op and B/op deltas
// are informational (they are machine- and load-dependent); allocs/op is the
// deterministic, guarded column.
func diffBaseline(out io.Writer, path string, current []record) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseline := make(map[string]record, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r
	}
	pct := func(cur, old float64) string {
		if old == 0 {
			return "   n/a"
		}
		return fmt.Sprintf("%+6.1f%%", (cur-old)/old*100)
	}
	fmt.Fprintf(out, "\ndelta vs %s\n", path)
	fmt.Fprintf(out, "%-24s %14s %9s %12s %9s %12s %6s\n",
		"benchmark", "ns/op", "Δ", "B/op", "Δ", "allocs/op", "Δ")
	compared := 0
	var regressed []string
	for _, r := range current {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(out, "%-24s %14.0f %9s %12d %9s %12d %6s  (new)\n",
				r.Name, r.NsPerOp, "", r.BytesPerOp, "", r.AllocsPerOp, "")
			continue
		}
		compared++
		fmt.Fprintf(out, "%-24s %14.0f %9s %12d %9s %12d %+6d\n",
			r.Name, r.NsPerOp, pct(r.NsPerOp, b.NsPerOp),
			r.BytesPerOp, pct(float64(r.BytesPerOp), float64(b.BytesPerOp)),
			r.AllocsPerOp, r.AllocsPerOp-b.AllocsPerOp)
		if r.AllocsPerOp > b.AllocsPerOp {
			regressed = append(regressed,
				fmt.Sprintf("%s: %d allocs/op > baseline %d", r.Name, r.AllocsPerOp, b.AllocsPerOp))
		}
	}
	if compared == 0 {
		return fmt.Errorf("baseline: no benchmark in common with %s (check -run filter)", path)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("alloc regression vs %s:\n  %s", path, strings.Join(regressed, "\n  "))
	}
	return nil
}

func matches(name string, wanted []string) bool {
	if len(wanted) == 0 {
		return true
	}
	for _, w := range wanted {
		if strings.Contains(strings.ToLower(name), strings.ToLower(strings.TrimSpace(w))) {
			return true
		}
	}
	return false
}

func benchInstance(n, k int, slack float64) graph.Instance {
	ins := gen.ER(42, n, 0.2, gen.DefaultWeights())
	ins.K = k
	bounded, ok := gen.WithBound(ins, slack)
	if !ok {
		panic("krspbench: benchmark instance infeasible")
	}
	return bounded
}

// largeInstance mirrors the repo-level bench_large_test.go helper: a
// layered-grid instance with ≈ n vertices, Θ(n) edges, and a delay bound in
// the Lagrangian-hard band (min-delay feasible, min-cost infeasible), built
// without gen.WithBound's Θ(width)-augmentation feasibility certificate.
func largeInstance(n, k int) graph.Instance {
	width := 100
	for width*width < 2*n {
		width += 50
	}
	layers := (n + width - 1) / width
	ins := gen.LayeredGrid(42, layers, width, gen.DefaultWeights())
	ins.K = k
	fd, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, k, shortest.DelayWeight)
	if err != nil {
		panic("krspbench: large instance infeasible: " + err.Error())
	}
	minD := fd.Delay(ins.G)
	ins.Bound = minD + minD/10 + 1
	return ins
}

func phase1Row(n, k int, scaled bool) func(b *testing.B) {
	return func(b *testing.B) {
		ins := largeInstance(n, k)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if scaled {
				_, err = core.Phase1Scaled(ins, core.DefaultPhase1Eps)
			} else {
				_, err = core.Phase1(ins)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// suite mirrors the hot-path subset of the repo-level bench_test.go — the
// benchmarks whose regressions the performance workflow tracks.
func suite() []bench {
	return []bench{
		{"SolveN20K2", func(b *testing.B) {
			ins := benchInstance(20, 2, 1.3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(ins, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SolveN60K3", func(b *testing.B) {
			ins := benchInstance(60, 3, 1.3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(ins, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SolveCtxN60K3", func(b *testing.B) {
			// Cancellable-context twin of SolveN60K3: a live Canceller is
			// threaded through every kernel, so this proves the deadline
			// machinery (pool-backed Canceller, strided polling) costs zero
			// additional allocations on the hot path.
			ins := benchInstance(60, 3, 1.3)
			ctx, stop := context.WithCancel(context.Background())
			defer stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveCtx(ctx, ins, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SolveN60K3CacheMiss", func(b *testing.B) {
			// Cache-layer twin: the full krspd miss path (fingerprint,
			// lookup, solve, insert, evict) per iteration. The guarded
			// baseline pins allocs/op equal to SolveN60K3: fingerprinting
			// is allocation-free and the cache freelist recycles entries.
			ins := benchInstance(60, 3, 1.3)
			cache := solvecache.NewCache[core.Result](8, int64(time.Hour))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fp := solvecache.Fingerprint(ins, "solve", 0)
				if _, st := cache.Get(fp, int64(i)); st != solvecache.Miss {
					b.Fatal("unexpected cache hit")
				}
				res, err := core.Solve(ins, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				cache.Put(fp, res, int64(i))
				cache.Remove(fp)
			}
		}},
		{"SolveN60K3Metrics", func(b *testing.B) {
			// Same workload with a live registry: the price of recording.
			// Not in the guarded baseline; tracked for visibility.
			ins := benchInstance(60, 3, 1.3)
			reg := obs.New(obs.RealClock{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(ins, core.Options{Metrics: reg}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SolveN60K3Recorder", func(b *testing.B) {
			// Flight-recorded twin: a live ring recorder is threaded through
			// every kernel. Not in the guarded baseline; tracked so the cost
			// of event recording stays visible next to the Metrics twin.
			ins := benchInstance(60, 3, 1.3)
			r := rec.New(obs.RealClock{}, rec.DefaultCapacity)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(ins, core.Options{Recorder: r}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SolveIncremental", func(b *testing.B) {
			ins := benchInstance(40, 3, 1.15)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(ins, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BicameralFind", func(b *testing.B) {
			rg, p, ok := bicameralInputs()
			if !ok {
				b.Skip("min-cost flow already feasible")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bicameral.Find(rg, p, bicameral.Options{})
			}
		}},
		{"BicameralParallel", func(b *testing.B) {
			rg, p, ok := bicameralInputs()
			if !ok {
				b.Skip("min-cost flow already feasible")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bicameral.Find(rg, p, bicameral.Options{Workers: 4})
			}
		}},
		{"ResidualBuild", func(b *testing.B) {
			ins := gen.ER(7, 100, 0.1, gen.DefaultWeights())
			f1, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, 2, shortest.CostWeight)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				residual.Build(ins.G, f1.Edges)
			}
		}},
		{"SPFAAll", func(b *testing.B) {
			ins := gen.ER(3, 200, 0.08, gen.DefaultWeights())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shortest.SPFAAll(ins.G, shortest.CostWeight)
			}
		}},
		{"SPFAAllInto", func(b *testing.B) {
			ins := gen.ER(3, 200, 0.08, gen.DefaultWeights())
			ws := shortest.NewWorkspace(ins.G.NumNodes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shortest.SPFAAllInto(ws, ins.G, shortest.CostWeight)
			}
		}},
		// Large tier: classic vs scaled phase-1 kernel on the same instance.
		// The scaled/classic ns/op ratio at each size is the headline claim
		// of the CSR + scaled-kernel work (≥2× at N ≥ 5k, allocs/op flat).
		{"Phase1ClassicN5k", phase1Row(5_000, 3, false)},
		{"Phase1ScaledN5k", phase1Row(5_000, 3, true)},
		{"Phase1ClassicN20k", phase1Row(20_000, 3, false)},
		{"Phase1ScaledN20k", phase1Row(20_000, 3, true)},
		{"Phase1ClassicN50k", phase1Row(50_000, 3, false)},
		{"Phase1ScaledN50k", phase1Row(50_000, 3, true)},
	}
}

func bicameralInputs() (*residual.Graph, bicameral.Params, bool) {
	ins := benchInstance(30, 2, 1.2)
	f, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, ins.K, shortest.CostWeight)
	if err != nil {
		panic(err)
	}
	rg := residual.Build(ins.G, f.Edges)
	dd := ins.Bound - f.Delay(ins.G)
	if dd >= 0 {
		return nil, bicameral.Params{}, false
	}
	return rg, bicameral.Params{DeltaD: dd, DeltaC: 10, CostCap: 1 << 20}, true
}
