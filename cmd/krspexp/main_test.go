package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-seeds", "2", "-run", "E3,E4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "=== E3:") || !strings.Contains(s, "=== E4:") {
		t.Fatalf("output:\n%s", s)
	}
	if strings.Contains(s, "=== E1:") {
		t.Fatal("unselected experiment ran")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "E99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	var out bytes.Buffer
	if err := run([]string{"-quick", "-seeds", "2", "-run", "E9", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e9.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "mode,inst") {
		t.Fatalf("csv:\n%s", data)
	}
}

func TestRunParallelMatchesSequentialStructure(t *testing.T) {
	var seq, par bytes.Buffer
	if err := run([]string{"-quick", "-seeds", "2", "-run", "E3,E9"}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-seeds", "2", "-parallel", "-run", "E3,E9"}, &par); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"=== E3:", "=== E9:"} {
		if !strings.Contains(par.String(), want) {
			t.Fatalf("parallel output missing %s", want)
		}
	}
	// The solved values are deterministic, but any row with a wall-clock
	// column differs run to run; compare with timing-bearing lines removed.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "(") || strings.Contains(line, "µs") ||
				strings.Contains(line, "ms") || strings.Contains(line, "time") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(seq.String()) != strip(par.String()) {
		t.Fatalf("parallel output diverged from sequential:\n%s\n---\n%s",
			strip(seq.String()), strip(par.String()))
	}
}
