// Command krspexp runs the experiment suite (E1–E10 from DESIGN.md §5) and
// prints the result tables; EXPERIMENTS.md is regenerated from this output.
//
// Usage:
//
//	krspexp               # run everything
//	krspexp -run E3,E5    # selected experiments
//	krspexp -quick        # smaller instances/seeds (smoke run)
//	krspexp -csv dir/     # additionally write one CSV per experiment
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "krspexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("krspexp", flag.ContinueOnError)
	runList := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	quick := fs.Bool("quick", false, "smoke mode: fewer seeds, smaller instances")
	seeds := fs.Int("seeds", 0, "instances per cell (0 = default)")
	csvDir := fs.String("csv", "", "write per-experiment CSVs into this directory")
	parallel := fs.Bool("parallel", false, "run experiments concurrently (output stays ordered)")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := exp.Config{Quick: *quick, Seeds: *seeds}

	var selected []exp.Experiment
	if *runList == "" {
		selected = exp.Registry()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			e := exp.Lookup(strings.TrimSpace(id))
			if e == nil {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, *e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	type outcome struct {
		text  bytes.Buffer
		table *exp.Table
		err   error
	}
	outcomes := make([]outcome, len(selected))
	runOne := func(i int) {
		e := selected[i]
		o := &outcomes[i]
		fmt.Fprintf(&o.text, "=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			o.err = fmt.Errorf("%s: %w", e.ID, err)
			return
		}
		o.table = table
		table.Render(&o.text)
		fmt.Fprintf(&o.text, "(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *parallel {
		var wg sync.WaitGroup
		for i := range selected {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range selected {
			runOne(i)
		}
	}
	for i, e := range selected {
		o := &outcomes[i]
		if o.err != nil {
			return o.err
		}
		if _, err := io.Copy(out, &o.text); err != nil {
			return err
		}
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv"))
			if err != nil {
				return err
			}
			o.table.RenderCSV(f)
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
