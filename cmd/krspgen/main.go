// Command krspgen generates kRSP instances in the repository's text format.
//
// Usage:
//
//	krspgen -topo er -n 40 -seed 7 -k 2 -slack 1.5 > instance.krsp
//
// Topologies: er, grid, layered, geometric, isp, figure1, figure2, plus the
// large-instance families lgrid, geofast and expander (Θ(n) edges, built for
// -n in the tens of thousands).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "krspgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("krspgen", flag.ContinueOnError)
	topo := fs.String("topo", "er", "topology: er|grid|layered|geometric|isp|figure1|figure2|lgrid|geofast|expander")
	n := fs.Int("n", 30, "vertex count (er, geometric, geofast, lgrid, expander) or side length (grid)")
	deg := fs.Int("deg", 3, "permutation count (expander)")
	radius := fs.Float64("radius", 0.35, "connection radius (geometric, geofast)")
	seed := fs.Int64("seed", 1, "random seed")
	k := fs.Int("k", 2, "number of disjoint paths")
	density := fs.Float64("density", 0.2, "edge density (er, layered)")
	slack := fs.Float64("slack", 1.5, "delay bound as slack × minimal delay")
	maxC := fs.Int64("maxcost", 20, "max edge cost")
	maxD := fs.Int64("maxdelay", 20, "max edge delay")
	corr := fs.Float64("corr", -0.8, "cost/delay correlation in [-1,1]")
	figD := fs.Int64("figd", 8, "D parameter for figure1")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := gen.Weights{MaxCost: *maxC, MaxDelay: *maxD, Correlation: *corr}
	var ins graph.Instance
	switch *topo {
	case "er":
		ins = gen.ER(*seed, *n, *density, w)
	case "grid":
		ins = gen.Grid(*seed, *n, *n, w)
	case "layered":
		ins = gen.Layered(*seed, 5, *n/5+2, *density, w)
	case "geometric":
		ins = gen.Geometric(*seed, *n, *radius, w)
	case "geofast":
		ins = gen.GeometricFast(*seed, *n, *radius, w)
	case "lgrid":
		// Aspect ratio ~1:10 keeps lane diversity high while the layer count
		// (path length) grows slowly with n.
		width := *n / 10
		if width < 2 {
			width = 2
		}
		ins = gen.LayeredGrid(*seed, (*n+width-1)/width, width, w)
	case "expander":
		ins = gen.Expander(*seed, *n, *deg, w)
	case "isp":
		ins = gen.ISP(*seed, *n/3+3, 2, w)
	case "figure1":
		ins, _, err := gen.Figure1(10, *figD)
		if err != nil {
			return err
		}
		return graph.WriteInstance(out, ins)
	case "figure2":
		ins, _, _ = gen.Figure2()
		return graph.WriteInstance(out, ins)
	default:
		return fmt.Errorf("unknown topology %q", *topo)
	}
	ins.K = *k
	bounded, ok := gen.WithBound(ins, *slack)
	if !ok {
		return fmt.Errorf("instance cannot host k=%d disjoint paths; try another seed or topology", *k)
	}
	return graph.WriteInstance(out, bounded)
}
