package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestGenerateAllTopologies(t *testing.T) {
	for _, topo := range []string{"er", "grid", "layered", "geometric", "isp", "figure1", "figure2",
		"lgrid", "geofast", "expander"} {
		var out bytes.Buffer
		args := []string{"-topo", topo, "-n", "40", "-seed", "3"}
		if err := run(args, &out); err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		ins, err := graph.ReadInstance(&out)
		if err != nil {
			t.Fatalf("%s: parse: %v", topo, err)
		}
		if err := ins.Validate(); err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
	}
}

func TestGeneratedInstanceIsFeasible(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-topo", "er", "-n", "20", "-seed", "9", "-slack", "1.4"}, &out); err != nil {
		t.Fatal(err)
	}
	ins, err := graph.ReadInstance(&out)
	if err != nil {
		t.Fatal(err)
	}
	feas, err := core.CheckFeasible(ins)
	if err != nil || !feas.OK {
		t.Fatalf("generated instance infeasible: %+v %v", feas, err)
	}
	// Generated instances must be solvable end to end.
	if _, err := core.Solve(ins, core.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-topo", "grid", "-n", "5", "-seed", "4"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topo", "grid", "-n", "5", "-seed", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestGenerateErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-topo", "bogus"}, &out); err == nil {
		t.Fatal("bogus topology accepted")
	}
	// A k larger than any topology supports.
	if err := run([]string{"-topo", "grid", "-n", "3", "-k", "50"}, &out); err == nil {
		t.Fatal("impossible k accepted")
	}
}

func TestFigure1Flag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-topo", "figure1", "-figd", "16"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bound 16") {
		t.Fatalf("figure1 bound not set:\n%s", out.String())
	}
}
