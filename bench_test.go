// Repository-level benchmarks: one per experiment (E1–E10, regenerating the
// EXPERIMENTS.md tables in quick mode) plus micro-benchmarks of the kernels
// the algorithms are built from. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"
	"time"

	"repro/internal/bicameral"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/residual"
	"repro/internal/rsp"
	"repro/internal/shortest"
	"repro/internal/solvecache"
)

// benchExperiment runs one registered experiment in quick mode per
// iteration; the tables themselves are produced by cmd/krspexp.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e := exp.Lookup(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := exp.Config{Quick: true, Seeds: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_ApproxRatio(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2_Phase1(b *testing.B)           { benchExperiment(b, "E2") }
func BenchmarkE3_Figure1(b *testing.B)          { benchExperiment(b, "E3") }
func BenchmarkE4_AuxGraph(b *testing.B)         { benchExperiment(b, "E4") }
func BenchmarkE5_EpsilonSweep(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE6_KSweep(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE7_Topologies(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8_BicameralEngines(b *testing.B) { benchExperiment(b, "E8") }
func BenchmarkE9_Infeasible(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10_Tightness(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11_Scaling(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkE12_Batch(b *testing.B)           { benchExperiment(b, "E12") }
func BenchmarkE13_Netsim(b *testing.B)          { benchExperiment(b, "E13") }

// --- kernel micro-benchmarks -------------------------------------------

func benchInstance(b *testing.B, n int, k int, slack float64) graph.Instance {
	b.Helper()
	ins := gen.ER(42, n, 0.2, gen.DefaultWeights())
	ins.K = k
	bounded, ok := gen.WithBound(ins, slack)
	if !ok {
		b.Fatal("benchmark instance infeasible")
	}
	return bounded
}

func BenchmarkSolveN20K2(b *testing.B) {
	ins := benchInstance(b, 20, 2, 1.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(ins, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveN60K3(b *testing.B) {
	ins := benchInstance(b, 60, 3, 1.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(ins, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveN60K3CacheMiss is the cache-layer twin of SolveN60K3: every
// iteration runs the full krspd miss path — fingerprint, cache lookup,
// solve, insert — then evicts, so the next iteration misses again and the
// freelist recycles the entry. allocs/op must equal SolveN60K3's: the
// fingerprint+cache layer is zero-alloc in steady state by contract
// (bench-guarded against BENCH_3.json).
func BenchmarkSolveN60K3CacheMiss(b *testing.B) {
	ins := benchInstance(b, 60, 3, 1.3)
	cache := solvecache.NewCache[core.Result](8, int64(time.Hour))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp := solvecache.Fingerprint(ins, "solve", 0)
		if _, st := cache.Get(fp, int64(i)); st != solvecache.Miss {
			b.Fatal("unexpected cache hit")
		}
		res, err := core.Solve(ins, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cache.Put(fp, res, int64(i))
		cache.Remove(fp)
	}
}

// BenchmarkSolveN60K3Metrics is the instrumented twin of SolveN60K3: same
// workload with a live obs registry attached. Comparing the two -benchmem
// lines shows the full cost of recording (allocs/op must match: the record
// path is zero-alloc by contract).
func BenchmarkSolveN60K3Metrics(b *testing.B) {
	ins := benchInstance(b, 60, 3, 1.3)
	reg := obs.New(&obs.ManualClock{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(ins, core.Options{Metrics: reg}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveN60K3Recorder is the flight-recorded twin of SolveN60K3:
// same workload with a live recorder attached. Comparing the two -benchmem
// lines shows the full cost of event recording; the nil-recorder default
// (SolveN60K3 itself) is what the bench-guard pins, since Record is
// zero-alloc by //krsp:noalloc contract either way.
func BenchmarkSolveN60K3Recorder(b *testing.B) {
	ins := benchInstance(b, 60, 3, 1.3)
	r := rec.New(new(obs.ManualClock), rec.DefaultCapacity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(ins, core.Options{Recorder: r}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveScaledN30(b *testing.B) {
	ins := benchInstance(b, 30, 2, 1.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveScaled(ins, 0.25, 0.25, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhase1N60(b *testing.B) {
	ins := benchInstance(b, 60, 3, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Phase1(ins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinCostKFlowN100(b *testing.B) {
	ins := gen.ER(7, 100, 0.1, gen.DefaultWeights())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, 2, shortest.CostWeight); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxFlowN200(b *testing.B) {
	ins := gen.ER(7, 200, 0.05, gen.DefaultWeights())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flow.MaxDisjointPaths(ins.G, ins.S, ins.T)
	}
}

func BenchmarkRSPExactDP(b *testing.B) {
	ins := benchInstance(b, 40, 1, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rsp.ExactDP(ins.G, ins.S, ins.T, ins.Bound); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSPFPTAS(b *testing.B) {
	ins := benchInstance(b, 40, 1, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rsp.FPTAS(ins.G, ins.S, ins.T, ins.Bound, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSPLARAC(b *testing.B) {
	ins := benchInstance(b, 40, 1, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rsp.LARAC(ins.G, ins.S, ins.T, ins.Bound); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBicameralFind(b *testing.B) {
	ins := benchInstance(b, 30, 2, 1.2)
	f, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, ins.K, shortest.CostWeight)
	if err != nil {
		b.Fatal(err)
	}
	rg := residual.Build(ins.G, f.Edges)
	dd := ins.Bound - f.Delay(ins.G)
	if dd >= 0 {
		b.Skip("min-cost flow already feasible on this seed")
	}
	p := bicameral.Params{DeltaD: dd, DeltaC: 10, CostCap: 1 << 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bicameral.Find(rg, p, bicameral.Options{})
	}
}

func BenchmarkSPFAAllN2000(b *testing.B) {
	ins := gen.ER(3, 200, 0.08, gen.DefaultWeights())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shortest.SPFAAll(ins.G, shortest.CostWeight)
	}
}

// BenchmarkSPFAAllInto is the workspace-reusing counterpart of
// BenchmarkSPFAAllN2000: the delta between the two is precisely the
// per-search allocation cost the Workspace removes.
func BenchmarkSPFAAllInto(b *testing.B) {
	ins := gen.ER(3, 200, 0.08, gen.DefaultWeights())
	ws := shortest.NewWorkspace(ins.G.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shortest.SPFAAllInto(ws, ins.G, shortest.CostWeight)
	}
}

// BenchmarkSolveIncremental isolates the cancellation loop's residual
// maintenance: a mid-size instance whose solve performs several
// cancellations, so the incremental rg.Update path (vs a per-iteration
// rebuild) dominates the measured delta.
func BenchmarkSolveIncremental(b *testing.B) {
	ins := benchInstance(b, 40, 3, 1.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(ins, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBicameralParallel runs the same search as BenchmarkBicameralFind
// with the worker pool enabled; the ns/op ratio against the serial run is
// the parallel speedup (results are bit-identical by construction).
func BenchmarkBicameralParallel(b *testing.B) {
	ins := benchInstance(b, 30, 2, 1.2)
	f, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, ins.K, shortest.CostWeight)
	if err != nil {
		b.Fatal(err)
	}
	rg := residual.Build(ins.G, f.Edges)
	dd := ins.Bound - f.Delay(ins.G)
	if dd >= 0 {
		b.Skip("min-cost flow already feasible on this seed")
	}
	p := bicameral.Params{DeltaD: dd, DeltaC: 10, CostCap: 1 << 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bicameral.Find(rg, p, bicameral.Options{Workers: 4})
	}
}

// BenchmarkResidualUpdate measures one incremental Update against the full
// Build it replaces, on a realistic solution-swap cycle set.
func BenchmarkResidualUpdate(b *testing.B) {
	ins := gen.ER(7, 100, 0.1, gen.DefaultWeights())
	f1, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, 2, shortest.CostWeight)
	if err != nil {
		b.Fatal(err)
	}
	f2, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, 2, shortest.DelayWeight)
	if err != nil {
		b.Fatal(err)
	}
	rg := residual.Build(ins.G, f1.Edges)
	fwd, err := rg.SolutionCycles(f2.Edges)
	if err != nil {
		b.Fatal(err)
	}
	if err := rg.Update(fwd); err != nil {
		b.Fatal(err)
	}
	back, err := rg.SolutionCycles(f1.Edges)
	if err != nil {
		b.Fatal(err)
	}
	if err := rg.Update(back); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += 2 {
		if err := rg.Update(fwd); err != nil {
			b.Fatal(err)
		}
		if err := rg.Update(back); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResidualBuild(b *testing.B) {
	ins := gen.ER(7, 100, 0.1, gen.DefaultWeights())
	f1, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, 2, shortest.CostWeight)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		residual.Build(ins.G, f1.Edges)
	}
}
