package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shortest"
)

// --- large-instance tier (N = 5k .. 50k) --------------------------------
//
// These rows exist to measure the CSR core and the scaled phase-1 kernel at
// the scale they were built for; they are skipped under -short so the
// regular test sweep stays fast. `make bench-large` runs the full tier,
// `make check` runs the N=5k smoke.

// largeInstance builds a layered-grid instance with ≈ n vertices and Θ(n)
// edges, and sets a delay bound in the Lagrangian-hard band: above the
// minimum k-flow delay (feasible) but below the min-cost flow's delay (so
// phase 1 actually runs its λ search). gen.WithBound is deliberately NOT
// used here — its max-flow feasibility certificate is Θ(width) augmentations
// on this family, which would dwarf the setup of every benchmark below.
func largeInstance(b *testing.B, n, k int) graph.Instance {
	b.Helper()
	width := 100
	for width*width < 2*n { // layers ≈ width/2 keeps lanes plentiful
		width += 50
	}
	layers := (n + width - 1) / width
	ins := gen.LayeredGrid(42, layers, width, gen.DefaultWeights())
	ins.K = k
	g := ins.G
	fd, err := flow.MinCostKFlow(g, ins.S, ins.T, k, shortest.DelayWeight)
	if err != nil {
		b.Fatalf("min-delay flow: %v", err)
	}
	minD := fd.Delay(g)
	ins.Bound = minD + minD/10 + 1
	return ins
}

func benchPhase1Classic(b *testing.B, n, k int) {
	if testing.Short() {
		b.Skip("large tier: skipped under -short")
	}
	ins := largeInstance(b, n, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Phase1(ins); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPhase1Scaled(b *testing.B, n, k int) {
	if testing.Short() {
		b.Skip("large tier: skipped under -short")
	}
	ins := largeInstance(b, n, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Phase1Scaled(ins, core.DefaultPhase1Eps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhase1ClassicN5k(b *testing.B)  { benchPhase1Classic(b, 5_000, 3) }
func BenchmarkPhase1ScaledN5k(b *testing.B)   { benchPhase1Scaled(b, 5_000, 3) }
func BenchmarkPhase1ClassicN20k(b *testing.B) { benchPhase1Classic(b, 20_000, 3) }
func BenchmarkPhase1ScaledN20k(b *testing.B)  { benchPhase1Scaled(b, 20_000, 3) }
func BenchmarkPhase1ClassicN50k(b *testing.B) { benchPhase1Classic(b, 50_000, 3) }
func BenchmarkPhase1ScaledN50k(b *testing.B)  { benchPhase1Scaled(b, 50_000, 3) }

// BenchmarkSolveLargeN5k runs the full pipeline (scaled phase 1 + the
// cancellation loop) at the 5k tier — the end-to-end row behind the
// "N=60 → N=5k+" claim, not just the phase-1 kernel.
func BenchmarkSolveLargeN5k(b *testing.B) {
	if testing.Short() {
		b.Skip("large tier: skipped under -short")
	}
	ins := largeInstance(b, 5_000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(ins, core.Options{Phase1Kernel: "scaled"}); err != nil {
			b.Fatal(err)
		}
	}
}
