// Load balance, measured: provision k = 1, 2, 3 disjoint QoS paths with
// the paper's algorithm, then push the SAME growing traffic demand through
// each provisioning with the packet-level simulator. Single-path QoS
// routing collapses past one link's capacity; disjoint multipath absorbs
// it — the paper's §1 motivation as numbers.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netsim"
)

func main() {
	base := gen.ER(314, 22, 0.25, gen.Weights{MaxCost: 10, MaxDelay: 10, Correlation: -0.7})
	fmt.Printf("topology: %d nodes, %d links; provisioning s→t paths under a delay SLA\n\n",
		base.G.NumNodes(), base.G.NumEdges())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "offered load\tk\tloss\tp99 delay\tbusiest link")
	for _, load := range []float64{0.5, 1.0, 1.5, 2.0} {
		for _, k := range []int{1, 2, 3} {
			ins := base
			ins.K = k
			bounded, ok := gen.WithBound(ins, 1.5)
			if !ok {
				log.Fatalf("cannot host k=%d", k)
			}
			res, err := core.Solve(bounded, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			st, err := netsim.Run(bounded.G, netsim.Config{QueueLimit: 32}, []netsim.Flow{
				{Paths: res.Solution.Paths, Rate: load, Packets: 4000},
			}, 7)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%.1fx\t%d\t%5.1f%%\t%7.1f\t%5.1f%%\n",
				load, k, 100*st.LossRate(), st.P99Delay, 100*st.MaxUtilization)
		}
		fmt.Fprintln(w, "\t\t\t\t")
	}
	w.Flush()
	fmt.Println("loads are relative to a single link's capacity: beyond 1.0x only")
	fmt.Println("multipath provisioning can carry the demand without loss.")
}
