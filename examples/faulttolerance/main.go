// Fault tolerance: the remaining benefit the paper's introduction lists
// for multipath QoS routing. Provision k = 3 disjoint paths, then simulate
// every single-link failure on them and show that (a) the surviving paths
// keep carrying traffic instantly and (b) re-solving on the degraded
// topology restores full capacity — comparing the re-solve cost against
// the original.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// Corner-anchored grids only guarantee two disjoint routes; scan seeds
	// until the diagonal sprinkle yields a third.
	var ins graph.Instance
	found := false
	for seed := int64(1); seed < 64 && !found; seed++ {
		cand := gen.Grid(seed, 5, 6, gen.Weights{MaxCost: 15, MaxDelay: 15, Correlation: -0.7})
		cand.K = 3
		if bounded, ok := gen.WithBound(cand, 1.6); ok {
			ins = bounded
			found = true
		}
	}
	if !found {
		log.Fatal("no grid seed hosts 3 disjoint paths")
	}

	res, err := core.Solve(ins, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d disjoint paths, cost %d, delay %d ≤ %d\n\n",
		ins.K, res.Cost, res.Delay, ins.Bound)

	// Fail each provisioned link in turn.
	failures, resolved, costSum := 0, 0, int64(0)
	for _, p := range res.Solution.Paths {
		for _, dead := range p.Edges {
			failures++
			survivors := 0
			for _, q := range res.Solution.Paths {
				alive := true
				for _, id := range q.Edges {
					if id == dead {
						alive = false
						break
					}
				}
				if alive {
					survivors++
				}
			}
			// Rebuild the degraded topology and re-solve.
			deg := graph.New(ins.G.NumNodes())
			for _, e := range ins.G.EdgesView() {
				if e.ID != dead {
					deg.AddEdge(e.From, e.To, e.Cost, e.Delay)
				}
			}
			dIns := graph.Instance{G: deg, S: ins.S, T: ins.T, K: ins.K, Bound: ins.Bound}
			if r2, err := core.Solve(dIns, core.Options{}); err == nil {
				resolved++
				costSum += r2.Cost
				if survivors != ins.K-1 {
					log.Fatalf("edge-disjointness violated: %d survivors", survivors)
				}
			}
		}
	}
	fmt.Printf("simulated %d single-link failures on provisioned paths:\n", failures)
	fmt.Printf("  immediate survivors per failure: %d of %d paths (disjointness)\n", ins.K-1, ins.K)
	fmt.Printf("  re-provisioning succeeded for %d/%d failures\n", resolved, failures)
	if resolved > 0 {
		fmt.Printf("  mean re-provisioned cost: %.1f (baseline %d)\n",
			float64(costSum)/float64(resolved), res.Cost)
	}
}
