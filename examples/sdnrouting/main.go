// SDN multipath provisioning: the scenario from the paper's introduction.
// An SDN controller holds the global topology of an ISP-like network
// (core ring + dual-homed access trees) and must provision k disjoint
// tunnels between two customer sites under a total-delay SLA, minimizing
// transit cost. The example compares the paper's algorithm against the
// delay-oblivious and cost-oblivious baselines a controller might
// otherwise ship.
//
//	go run ./examples/sdnrouting
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	// Deterministic ISP topology: 10-router core ring with chords,
	// dual-homed access chains to the customer sites.
	ins := gen.ISP(2026, 10, 2, gen.Weights{MaxCost: 30, MaxDelay: 30, Correlation: -0.9})
	ins.K = 2
	bounded, ok := gen.WithBound(ins, 1.06) // tight SLA: 6% above the physical floor
	if !ok {
		log.Fatal("topology cannot host 2 disjoint tunnels")
	}
	ins = bounded
	fmt.Printf("topology %q: %d routers, %d links, SLA total delay ≤ %d\n\n",
		ins.Name, ins.G.NumNodes(), ins.G.NumEdges(), ins.Bound)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tcost\tdelay\tmeets SLA\tnote")
	for _, b := range baseline.All() {
		res, err := b.Run(ins)
		if err != nil {
			fmt.Fprintf(w, "%s\t-\t-\t-\tfailed: %v\n", b.Name, err)
			continue
		}
		note := ""
		switch b.Name {
		case "krsp":
			note = "the paper's algorithm"
		case "minsum":
			note = "cheapest, ignores the SLA"
		case "mindelay":
			note = "fastest, ignores cost"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%s\n", b.Name, res.Cost, res.Delay, res.Feasible, note)
	}
	w.Flush()

	res, err := core.Solve(ins, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovisioned tunnels (cost %d, certified ≤ %.2f× optimal):\n",
		res.Cost, float64(res.Cost)/float64(res.LowerBound))
	for i, p := range res.Solution.Paths {
		fmt.Printf("  tunnel %d: %s\n", i+1, p.Format(ins.G))
	}
}
