// Video streaming with urgency-prioritized multipath: the paper's §1
// motivation for a TOTAL delay budget. kRSP bounds the SUM of path delays;
// the application then routes urgent traffic (key frames, audio) over the
// fastest computed path and deferrable traffic (prefetch, bulk) over the
// slower ones. This example provisions k = 3 disjoint paths on a layered
// transit network and assigns traffic classes to them.
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	ins := gen.Layered(99, 6, 5, 0.55, gen.Weights{MaxCost: 25, MaxDelay: 40, Correlation: -0.85})
	ins.K = 3
	bounded, ok := gen.WithBound(ins, 1.5)
	if !ok {
		log.Fatal("network cannot host 3 disjoint paths")
	}
	ins = bounded
	fmt.Printf("transit network: %d nodes, %d links; k=%d, total delay budget %d\n\n",
		ins.G.NumNodes(), ins.G.NumEdges(), ins.K, ins.Bound)

	res, err := core.Solve(ins, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Sort paths by individual delay: urgent classes ride the fastest.
	paths := make([]int, 0, len(res.Solution.Paths))
	for i := range res.Solution.Paths {
		paths = append(paths, i)
	}
	sort.Slice(paths, func(a, b int) bool {
		return res.Solution.Paths[paths[a]].Delay(ins.G) < res.Solution.Paths[paths[b]].Delay(ins.G)
	})
	classes := []string{"key frames + audio (urgent)", "video layers (normal)", "prefetch + bulk (deferrable)"}

	fmt.Printf("provisioned %d disjoint paths, total cost %d, total delay %d ≤ %d\n",
		ins.K, res.Cost, res.Delay, ins.Bound)
	for rank, idx := range paths {
		p := res.Solution.Paths[idx]
		class := classes[rank]
		if rank >= len(classes) {
			class = "spare"
		}
		fmt.Printf("  [%d] delay %-4d cost %-4d → %s\n", rank+1, p.Delay(ins.G), p.Cost(ins.G), class)
		fmt.Printf("      route: %s\n", p.Format(ins.G))
	}
	fmt.Printf("\ncertified cost factor: ≤ %.2f× optimal (lower bound %d)\n",
		float64(res.Cost)/float64(res.LowerBound), res.LowerBound)
	fmt.Println("fault tolerance: any single link failure leaves", ins.K-1, "paths intact")
}
