// Figure 1 from the paper, end to end: why Definition 10's cost constraint
// |c(O)| ≤ C_OPT is essential. Runs the instance family at increasing D
// with the real algorithm and with the ablated one (no cap, no principled
// reference bound, adversarial-but-compliant cycle choice), showing the
// cost blow-up to ≈ (D+1)·OPT that the caption describes.
//
//	go run ./examples/figure1
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	fmt.Println("Paper Figure 1: s→a→b→c→t chain (free, slow), s→t (free, fast),")
	fmt.Println("b→t shortcut (cost C, the optimum) and a→t shortcut (cost C(D+1)−1).")
	fmt.Println()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "D\tOPT\twith cap (paper)\twithout cap (ablated)\tblow-up")
	for _, d := range []int64{2, 4, 8, 16, 32} {
		ins, opt, err := gen.Figure1(10, d)
		if err != nil {
			log.Fatal(err)
		}
		good, err := core.Solve(ins, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		bad, err := core.Solve(ins, core.Options{
			DisableCostCap:   true,
			Adversarial:      true,
			OverestimateCRef: true,
			NoSafetyNet:      true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%d\tcost %d\tcost %d\t%.1f×\n",
			d, opt, good.Cost, bad.Cost, float64(bad.Cost)/float64(opt))
	}
	w.Flush()
	fmt.Println("\nwith the cap the algorithm returns the optimum {s·a·b·t, s·t};")
	fmt.Println("without it, a compliant-but-unlucky cycle choice pays the a→t shortcut.")
}
