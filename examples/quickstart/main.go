// Quickstart: build a small network, ask for k=2 edge-disjoint paths with a
// total delay budget, and print the certified result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// A tiny QoS network: costs are monetary (e.g. transit fees), delays in
	// milliseconds. Cheap links are slow, fast links are expensive.
	g := graph.New(6)
	type link struct {
		u, v        graph.NodeID
		cost, delay int64
	}
	links := []link{
		{0, 1, 1, 9}, {1, 5, 1, 9}, // cheap, slow route
		{0, 2, 6, 1}, {2, 5, 6, 1}, // expensive, fast route
		{0, 3, 3, 4}, {3, 5, 3, 4}, // balanced route
		{0, 4, 2, 6}, {4, 5, 2, 6}, // budget route
		{1, 2, 1, 1}, {3, 4, 1, 1}, // crossovers
	}
	for _, l := range links {
		g.AddEdge(l.u, l.v, l.cost, l.delay)
	}

	ins := graph.Instance{
		G: g, S: 0, T: 5,
		K:     2,  // two edge-disjoint paths
		Bound: 18, // total delay budget across both paths
		Name:  "quickstart",
	}

	// Feasibility first: is k=2 with this budget even possible?
	feas, err := core.CheckFeasible(ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max disjoint paths: %d, minimal total delay: %d (budget %d)\n",
		feas.MaxDisjoint, feas.MinDelay, ins.Bound)

	// Solve with the paper's algorithm: delay ≤ D guaranteed, cost ≤ 2·OPT.
	res, err := core.Solve(ins, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost=%d delay=%d (certified lower bound on OPT: %d → factor ≤ %.2f)\n",
		res.Cost, res.Delay, res.LowerBound, float64(res.Cost)/float64(res.LowerBound))
	for i, p := range res.Solution.Paths {
		fmt.Printf("  path %d: %s  (cost %d, delay %d)\n",
			i+1, p.Format(g), p.Cost(g), p.Delay(g))
	}
	if res.Exact {
		fmt.Println("the solution is exactly optimal")
	}
}
