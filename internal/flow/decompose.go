package flow

import (
	"fmt"

	"repro/internal/graph"
)

// Decompose splits a unit flow (edge set where every edge carries one unit)
// into k edge-disjoint s→t paths plus a set of edge-disjoint cycles
// covering the remaining flow edges. It errors if the edge set does not
// satisfy flow conservation with net outflow k at s and net inflow k at t.
//
//krsp:terminates(every pop consumes one of ≤ m available edges, and each walk is budget-checked against the edge count)
func Decompose(g *graph.Digraph, edges graph.EdgeSet, s, t graph.NodeID, k int) ([]graph.Path, []graph.Cycle, error) {
	// Per-vertex unused outgoing flow edges. Maps keep the footprint
	// proportional to the flow (not the graph); every scan below resolves
	// ties by minimum vertex ID so nothing depends on map iteration order.
	outAvail := make(map[graph.NodeID][]graph.EdgeID)
	balance := make(map[graph.NodeID]int)
	for _, id := range edges.IDs() {
		e := g.Edge(id)
		outAvail[e.From] = append(outAvail[e.From], id)
		balance[e.From]++
		balance[e.To]--
	}
	bad := graph.NodeID(-1)
	//lint:allow detmap min-selection over the range is order-insensitive
	for v, b := range balance {
		want := 0
		switch v {
		case s:
			want = k
		case t:
			want = -k
		}
		if b != want && (bad < 0 || v < bad) {
			bad = v
		}
	}
	switch {
	case bad == s && bad >= 0:
		return nil, nil, fmt.Errorf("flow: source balance %d, want %d", balance[s], k)
	case bad == t && bad >= 0:
		return nil, nil, fmt.Errorf("flow: sink balance %d, want %d", balance[t], -k)
	case bad >= 0:
		return nil, nil, fmt.Errorf("flow: vertex %d unbalanced (%d)", bad, balance[bad])
	}
	if k > 0 && balance[s] != k {
		return nil, nil, fmt.Errorf("flow: source missing outflow")
	}

	pop := func(v graph.NodeID) (graph.EdgeID, bool) {
		avail := outAvail[v]
		if len(avail) == 0 {
			return -1, false
		}
		id := avail[len(avail)-1]
		outAvail[v] = avail[:len(avail)-1]
		return id, true
	}

	// Peel k s→t paths. Walks may pass through cycles; since every edge is
	// consumed exactly once and balances hold, each walk must terminate at
	// t. We record the walk then shortcut repeated vertices so returned
	// paths are edge sequences without repeated edges (possibly repeated
	// vertices, which Solution.Validate allows); the shortcut edges rejoin
	// the cycle pool.
	var paths []graph.Path
	for i := 0; i < k; i++ {
		var walk []graph.EdgeID
		cur := s
		for cur != t {
			id, ok := pop(cur)
			if !ok {
				return nil, nil, fmt.Errorf("flow: walk from source stuck at %d", cur)
			}
			walk = append(walk, id)
			cur = g.Edge(id).To
			if len(walk) > edges.Len() {
				return nil, nil, fmt.Errorf("flow: walk exceeded edge budget (corrupt flow)")
			}
		}
		path, loops := shortcutWalk(g, walk, s)
		// Loops removed from the walk are flow cycles: return their edges
		// to the availability pool so the cycle-peeling phase picks them up.
		for _, loop := range loops {
			for _, id := range loop {
				e := g.Edge(id)
				outAvail[e.From] = append(outAvail[e.From], id)
			}
		}
		paths = append(paths, path)
	}

	// Peel remaining edges into cycles.
	var cycles []graph.Cycle
	for {
		start := graph.NodeID(-1)
		//lint:allow detmap min-selection over the range is order-insensitive
		for v, avail := range outAvail {
			if len(avail) > 0 && (start < 0 || v < start) {
				start = v
			}
		}
		if start < 0 {
			break
		}
		var walk []graph.EdgeID
		cur := start
		for {
			id, ok := pop(cur)
			if !ok {
				return nil, nil, fmt.Errorf("flow: cycle walk stuck at %d", cur)
			}
			walk = append(walk, id)
			cur = g.Edge(id).To
			if cur == start {
				break
			}
			if len(walk) > edges.Len() {
				return nil, nil, fmt.Errorf("flow: cycle walk exceeded edge budget")
			}
		}
		// The closed walk may itself contain sub-cycles; split into simple
		// cycles for deterministic downstream handling.
		cycles = append(cycles, SplitClosedWalk(g, walk)...)
	}
	return paths, cycles, nil
}

// shortcutWalk removes vertex-repeating loops from an s→… walk, returning
// the loop-free path and the removed loops (each a closed edge sequence).
func shortcutWalk(g *graph.Digraph, walk []graph.EdgeID, s graph.NodeID) (graph.Path, [][]graph.EdgeID) {
	var loops [][]graph.EdgeID
	prefix := make([]graph.EdgeID, 0, len(walk))
	lastAt := map[graph.NodeID]int{s: 0} // vertex → len(prefix) when last visited
	cur := s
	for _, id := range walk {
		prefix = append(prefix, id)
		cur = g.Edge(id).To
		if at, seen := lastAt[cur]; seen {
			loop := append([]graph.EdgeID(nil), prefix[at:]...)
			loops = append(loops, loop)
			prefix = prefix[:at]
			// Invalidate lastAt entries beyond the cut.
			for v, pos := range lastAt {
				if pos > at {
					delete(lastAt, v)
				}
			}
		} else {
			lastAt[cur] = len(prefix)
		}
	}
	return graph.Path{Edges: prefix}, loops
}

// SplitClosedWalk splits a closed walk (edge sequence returning to its
// start) into vertex-simple cycles.
func SplitClosedWalk(g *graph.Digraph, walk []graph.EdgeID) []graph.Cycle {
	if len(walk) == 0 {
		return nil
	}
	var out []graph.Cycle
	var stackEdges []graph.EdgeID
	stackPos := map[graph.NodeID]int{}
	start := g.Edge(walk[0]).From
	stackPos[start] = 0
	cur := start
	for _, id := range walk {
		stackEdges = append(stackEdges, id)
		cur = g.Edge(id).To
		if at, seen := stackPos[cur]; seen {
			cyc := append([]graph.EdgeID(nil), stackEdges[at:]...)
			out = append(out, graph.Cycle{Edges: cyc})
			for v, pos := range stackPos {
				if pos > at {
					delete(stackPos, v)
				}
			}
			stackEdges = stackEdges[:at]
		} else {
			stackPos[cur] = len(stackEdges)
		}
	}
	return out
}
