package flow

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// twoDisjoint builds a graph with exactly two edge-disjoint 0→3 paths.
func twoDisjoint() *graph.Digraph {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 2) // e0
	g.AddEdge(0, 2, 2, 1) // e1
	g.AddEdge(1, 3, 3, 4) // e2
	g.AddEdge(2, 3, 4, 3) // e3
	g.AddEdge(1, 2, 5, 5) // e4
	return g
}

func TestMaxDisjointPathsSimple(t *testing.T) {
	g := twoDisjoint()
	if got := MaxDisjointPaths(g, 0, 3); got != 2 {
		t.Fatalf("maxflow = %d, want 2", got)
	}
	if got := MaxDisjointPaths(g, 0, 0); got != 0 {
		t.Fatalf("s==t maxflow = %d", got)
	}
	if got := MaxDisjointPaths(g, 3, 0); got != 0 {
		t.Fatalf("reverse maxflow = %d", got)
	}
}

func TestMaxDisjointPathsNeedsBackEdge(t *testing.T) {
	// Classic instance where greedy path choice must be undone via a
	// residual back edge.
	g := graph.New(6)
	g.AddEdge(0, 1, 0, 0) // s→a
	g.AddEdge(0, 2, 0, 0) // s→b
	g.AddEdge(1, 3, 0, 0) // a→c
	g.AddEdge(2, 3, 0, 0) // b→c
	g.AddEdge(3, 4, 0, 0) // c→d  (shared bottleneck candidate)
	g.AddEdge(1, 4, 0, 0) // a→d
	g.AddEdge(4, 5, 0, 0) // d→t
	g.AddEdge(3, 5, 0, 0) // c→t
	if got := MaxDisjointPaths(g, 0, 5); got != 2 {
		t.Fatalf("maxflow = %d, want 2", got)
	}
}

func TestMaxFlowMatchesBruteMenger(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), 1, 1)
			}
		}
		s, tt := graph.NodeID(0), graph.NodeID(n-1)
		got := MaxDisjointPaths(g, s, tt)
		// Verify against successive BFS augmentation on a residual copy
		// (Ford–Fulkerson with unit capacities, independent implementation).
		want := bruteMaxFlow(g, s, tt)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// bruteMaxFlow: BFS augmenting paths over explicit residual adjacency.
func bruteMaxFlow(g *graph.Digraph, s, t graph.NodeID) int {
	used := make([]bool, g.NumEdges())
	total := 0
	for {
		type hop struct {
			edge graph.EdgeID
			fwd  bool
		}
		parent := make(map[graph.NodeID]hop)
		visited := map[graph.NodeID]bool{s: true}
		queue := []graph.NodeID{s}
		for len(queue) > 0 && !visited[t] {
			u := queue[0]
			queue = queue[1:]
			for _, id := range g.Out(u) {
				e := g.Edge(id)
				if !used[id] && !visited[e.To] {
					visited[e.To] = true
					parent[e.To] = hop{id, true}
					queue = append(queue, e.To)
				}
			}
			for _, id := range g.In(u) {
				e := g.Edge(id)
				if used[id] && !visited[e.From] {
					visited[e.From] = true
					parent[e.From] = hop{id, false}
					queue = append(queue, e.From)
				}
			}
		}
		if !visited[t] {
			return total
		}
		v := t
		for v != s {
			h := parent[v]
			if h.fwd {
				used[h.edge] = true
				v = g.Edge(h.edge).From
			} else {
				used[h.edge] = false
				v = g.Edge(h.edge).To
			}
		}
		total++
	}
}

func TestMinCostKFlowOptimal(t *testing.T) {
	g := twoDisjoint()
	f, err := MinCostKFlow(g, 0, 3, 2, shortest.CostWeight)
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint paths must use e0..e3; total cost 10.
	if f.Cost(g) != 10 {
		t.Fatalf("cost = %d, want 10", f.Cost(g))
	}
	if f.Edges.Len() != 4 || f.Edges.Has(4) {
		t.Fatalf("edges = %v", f.Edges.IDs())
	}
}

func TestMinCostKFlowRerouting(t *testing.T) {
	// Cheapest single path uses the bottleneck; 2-flow must reroute it.
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 0)  // e0
	g.AddEdge(1, 3, 1, 0)  // e1
	g.AddEdge(0, 2, 10, 0) // e2
	g.AddEdge(2, 3, 10, 0) // e3
	g.AddEdge(0, 3, 5, 0)  // e4 direct
	f, err := MinCostKFlow(g, 0, 3, 2, shortest.CostWeight)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cost(g) != 7 { // e0+e1 (2) + e4 (5)
		t.Fatalf("cost = %d, want 7", f.Cost(g))
	}
}

func TestMinCostKFlowInfeasible(t *testing.T) {
	g := twoDisjoint()
	_, err := MinCostKFlow(g, 0, 3, 3, shortest.CostWeight)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// Unreachable sink.
	g2 := graph.New(3)
	g2.AddEdge(0, 1, 1, 1)
	_, err = MinCostKFlow(g2, 0, 2, 1, shortest.CostWeight)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMinCostKFlowZeroK(t *testing.T) {
	g := twoDisjoint()
	f, err := MinCostKFlow(g, 0, 3, 0, shortest.CostWeight)
	if err != nil || f.Edges.Len() != 0 {
		t.Fatalf("zero flow: %v %v", f.Edges.IDs(), err)
	}
}

func TestMinCostKFlowMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(5)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(20)), int64(r.Intn(20)))
			}
		}
		s, tt := graph.NodeID(0), graph.NodeID(n-1)
		k := 1 + r.Intn(2)
		got, err := MinCostKFlow(g, s, tt, k, shortest.CostWeight)
		want, feasible := bruteMinCostK(g, s, tt, k)
		if err != nil {
			return !feasible
		}
		if !feasible {
			return false
		}
		// Flow must decompose into k disjoint paths with the optimal cost.
		paths, _, derr := Decompose(g, got.Edges, s, tt, k)
		if derr != nil || len(paths) != k {
			return false
		}
		return got.Cost(g) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// bruteMinCostK enumerates all sets of k edge-disjoint paths (tiny graphs).
func bruteMinCostK(g *graph.Digraph, s, t graph.NodeID, k int) (int64, bool) {
	paths := enumeratePaths(g, s, t, graph.NewEdgeSet())
	var best int64
	found := false
	var rec func(i int, used graph.EdgeSet, cost int64, left int)
	rec = func(i int, used graph.EdgeSet, cost int64, left int) {
		if left == 0 {
			if !found || cost < best {
				best, found = cost, true
			}
			return
		}
		for j := i; j < len(paths); j++ {
			p := paths[j]
			disjoint := true
			for _, id := range p.Edges {
				if used.Has(id) {
					disjoint = false
					break
				}
			}
			if !disjoint {
				continue
			}
			u2 := used.Clone()
			for _, id := range p.Edges {
				u2.Add(id)
			}
			rec(j+1, u2, cost+p.Cost(g), left-1)
		}
	}
	rec(0, graph.NewEdgeSet(), 0, k)
	return best, found
}

// enumeratePaths lists all edge-simple s→t paths (exponential; tiny only).
func enumeratePaths(g *graph.Digraph, s, t graph.NodeID, used graph.EdgeSet) []graph.Path {
	var out []graph.Path
	var cur []graph.EdgeID
	onPath := map[graph.NodeID]bool{s: true}
	var dfs func(v graph.NodeID)
	dfs = func(v graph.NodeID) {
		if v == t {
			out = append(out, graph.Path{Edges: append([]graph.EdgeID(nil), cur...)})
			return
		}
		for _, id := range g.Out(v) {
			e := g.Edge(id)
			if used.Has(id) || onPath[e.To] {
				continue
			}
			onPath[e.To] = true
			cur = append(cur, id)
			dfs(e.To)
			cur = cur[:len(cur)-1]
			delete(onPath, e.To)
		}
	}
	dfs(s)
	return out
}

func TestDecomposeSimple(t *testing.T) {
	g := twoDisjoint()
	set := graph.NewEdgeSet(0, 1, 2, 3)
	paths, cycles, err := Decompose(g, set, 0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || len(cycles) != 0 {
		t.Fatalf("got %d paths %d cycles", len(paths), len(cycles))
	}
	ins := graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: 1 << 30}
	if err := (graph.Solution{Paths: paths}).Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeWithCycle(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1, 1, 1) // e0 path
	g.AddEdge(1, 4, 1, 1) // e1 path
	g.AddEdge(2, 3, 1, 1) // e2 cycle
	g.AddEdge(3, 2, 1, 1) // e3 cycle
	set := graph.NewEdgeSet(0, 1, 2, 3)
	paths, cycles, err := Decompose(g, set, 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(cycles) != 1 {
		t.Fatalf("got %d paths %d cycles", len(paths), len(cycles))
	}
	if err := cycles[0].Validate(g, true); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposePathThroughCycleShortcut(t *testing.T) {
	// Flow where the walk from s can wander into a cycle before reaching t;
	// decomposition must shortcut it into a simple path + cycle.
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 1) // e0
	g.AddEdge(1, 2, 1, 1) // e1 (cycle)
	g.AddEdge(2, 1, 1, 1) // e2 (cycle)
	g.AddEdge(1, 3, 1, 1) // e3
	set := graph.NewEdgeSet(0, 1, 2, 3)
	paths, cycles, err := Decompose(g, set, 0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	if err := paths[0].Validate(g, 0, 3, true); err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 1 || cycles[0].Len() != 2 {
		t.Fatalf("cycles = %+v", cycles)
	}
}

func TestDecomposeRejectsUnbalanced(t *testing.T) {
	g := twoDisjoint()
	if _, _, err := Decompose(g, graph.NewEdgeSet(0), 0, 3, 1); err == nil {
		t.Fatal("unbalanced set accepted")
	}
	if _, _, err := Decompose(g, graph.NewEdgeSet(0, 1, 2, 3), 0, 3, 1); err == nil {
		t.Fatal("wrong k accepted")
	}
}

func TestSplitClosedWalkNested(t *testing.T) {
	// Walk 0→1→2→1→0 contains nested cycle 1→2→1.
	g := graph.New(3)
	e0 := g.AddEdge(0, 1, 1, 1)
	e1 := g.AddEdge(1, 2, 1, 1)
	e2 := g.AddEdge(2, 1, 1, 1)
	e3 := g.AddEdge(1, 0, 1, 1)
	cycles := SplitClosedWalk(g, []graph.EdgeID{e0, e1, e2, e3})
	if len(cycles) != 2 {
		t.Fatalf("got %d cycles", len(cycles))
	}
	for _, c := range cycles {
		if err := c.Validate(g, true); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSuurballeMinSum(t *testing.T) {
	g := twoDisjoint()
	sol, err := SuurballeMinSum(g, 0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ins := graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: 1 << 30}
	if err := sol.Validate(ins); err != nil {
		t.Fatal(err)
	}
	if sol.Cost(g) != 10 {
		t.Fatalf("cost %d", sol.Cost(g))
	}
}

func TestSplitVertices(t *testing.T) {
	g := twoDisjoint()
	sp := SplitVertices(g)
	if sp.G.NumNodes() != 8 {
		t.Fatalf("split nodes = %d", sp.G.NumNodes())
	}
	if sp.G.NumEdges() != g.NumNodes()+g.NumEdges() {
		t.Fatalf("split edges = %d", sp.G.NumEdges())
	}
	// Vertex-disjoint max flow from Out[0] to In[3]: paths 0-1-3 and 0-2-3
	// share no interior vertex, so 2.
	if got := MaxDisjointPaths(sp.G, sp.Out[0], sp.In[3]); got != 2 {
		t.Fatalf("vertex-disjoint flow = %d", got)
	}
	// A graph where 2 edge-disjoint paths exist but only 1 vertex-disjoint.
	h := graph.New(4)
	h.AddEdge(0, 1, 0, 0)
	h.AddEdge(1, 3, 0, 0)
	h.AddEdge(0, 1, 0, 0) // parallel
	h.AddEdge(1, 3, 0, 0) // parallel
	if MaxDisjointPaths(h, 0, 3) != 2 {
		t.Fatal("edge-disjoint should be 2")
	}
	sph := SplitVertices(h)
	if got := MaxDisjointPaths(sph.G, sph.Out[0], sph.In[3]); got != 1 {
		t.Fatalf("vertex-disjoint flow = %d, want 1", got)
	}
}

func TestProjectPath(t *testing.T) {
	g := twoDisjoint()
	sp := SplitVertices(g)
	f, err := MinCostKFlow(sp.G, sp.Out[0], sp.In[3], 2, shortest.CostWeight)
	if err != nil {
		t.Fatal(err)
	}
	paths, _, err := Decompose(sp.G, f.Edges, sp.Out[0], sp.In[3], 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		orig := sp.ProjectPath(p)
		if err := orig.Validate(g, 0, 3, true); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMinCostKFlowDelayWeight(t *testing.T) {
	g := twoDisjoint()
	f, err := MinCostKFlow(g, 0, 3, 2, shortest.DelayWeight)
	if err != nil {
		t.Fatal(err)
	}
	if f.Delay(g) != 10 {
		t.Fatalf("delay = %d", f.Delay(g))
	}
	if f.Weight(g, shortest.DelayWeight) != 10 {
		t.Fatal("Weight() mismatch")
	}
}
