package flow_test

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/shortest"
)

// ExampleMinCostKFlow computes the cheapest pair of edge-disjoint paths
// and decomposes the flow back into paths.
func ExampleMinCostKFlow() {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 3, 1, 0)
	g.AddEdge(0, 2, 10, 0)
	g.AddEdge(2, 3, 10, 0)
	g.AddEdge(0, 3, 5, 0)

	f, err := flow.MinCostKFlow(g, 0, 3, 2, shortest.CostWeight)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	paths, _, _ := flow.Decompose(g, f.Edges, 0, 3, 2)
	fmt.Printf("total cost %d over %d paths\n", f.Cost(g), len(paths))
	for _, p := range paths {
		fmt.Println(" ", p.Format(g))
	}
	// Output:
	// total cost 7 over 2 paths
	//   0->3
	//   0->1->3
}

// ExampleMaxDisjointPaths answers Menger's question: how many edge-disjoint
// routes exist at all?
func ExampleMaxDisjointPaths() {
	g := graph.New(4)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(1, 3, 0, 0)
	g.AddEdge(0, 2, 0, 0)
	g.AddEdge(2, 3, 0, 0)
	g.AddEdge(0, 3, 0, 0)
	fmt.Println(flow.MaxDisjointPaths(g, 0, 3))
	// Output:
	// 3
}
