package flow

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/shortest"
)

// randomFlowGraph builds a seeded nonnegative-weight multigraph with a
// planted fan of s→t paths so k-flows up to width are feasible.
func randomFlowGraph(seed int64, n, m, width int) (*graph.Digraph, graph.NodeID, graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	s, t := graph.NodeID(0), graph.NodeID(n-1)
	for w := 0; w < width; w++ {
		mid := graph.NodeID(1 + rng.Intn(n-2))
		g.AddEdge(s, mid, int64(rng.Intn(20)), int64(rng.Intn(20)))
		g.AddEdge(mid, t, int64(rng.Intn(20)), int64(rng.Intn(20)))
	}
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		for v == u {
			v = graph.NodeID(rng.Intn(n))
		}
		g.AddEdge(u, v, int64(rng.Intn(20)), int64(rng.Intn(20)))
	}
	return g, s, t
}

func sortedIDs(f UnitFlow) []graph.EdgeID {
	return graph.SortedEdgeIDs(f.Edges.IDs())
}

// TestKFlowSolverMatchesDigraph asserts the CSR solver is bit-identical to
// minCostKFlow: same flows (not just same optima), same errors, and same
// augmentation/relaxation metric counts (the strongest observable proof the
// relaxation order matched).
func TestKFlowSolverMatchesDigraph(t *testing.T) {
	weights := []struct {
		w  shortest.Weight
		lw shortest.LinWeight
	}{
		{shortest.CostWeight, shortest.LinCost},
		{shortest.DelayWeight, shortest.LinDelay},
		{shortest.Combine(3, 2), shortest.LinCombine(3, 2)},
	}
	for seed := int64(0); seed < 15; seed++ {
		g, s, tt := randomFlowGraph(seed, 24, 80, 4)
		kf := NewKFlowSolver(graph.NewCSR(g))
		for k := 0; k <= 6; k++ {
			for wi, wp := range weights {
				md := obs.New(&obs.ManualClock{}).FlowMetrics()
				mc := obs.New(&obs.ManualClock{}).FlowMetrics()
				fd, errD := MinCostKFlowMetered(g, s, tt, k, wp.w, md)
				fc, errC := kf.MinCostKFlow(s, tt, k, wp.lw, mc, nil)
				if (errD == nil) != (errC == nil) {
					t.Fatalf("seed %d k %d w %d: err %v vs %v", seed, k, wi, errD, errC)
				}
				if errD != nil {
					if errD.Error() != errC.Error() {
						t.Fatalf("seed %d k %d w %d: err %q vs %q", seed, k, wi, errD, errC)
					}
				} else {
					idsD, idsC := sortedIDs(fd), sortedIDs(fc)
					if len(idsD) != len(idsC) {
						t.Fatalf("seed %d k %d w %d: %d vs %d flow edges", seed, k, wi, len(idsD), len(idsC))
					}
					for i := range idsD {
						if idsD[i] != idsC[i] {
							t.Fatalf("seed %d k %d w %d: flow edge %d: %d vs %d", seed, k, wi, i, idsD[i], idsC[i])
						}
					}
				}
				if md.Augmentations.Value() != mc.Augmentations.Value() ||
					md.Relaxations.Value() != mc.Relaxations.Value() ||
					md.Infeasible.Value() != mc.Infeasible.Value() {
					t.Fatalf("seed %d k %d w %d: metrics (%d,%d,%d) vs (%d,%d,%d)",
						seed, k, wi,
						md.Augmentations.Value(), md.Relaxations.Value(), md.Infeasible.Value(),
						mc.Augmentations.Value(), mc.Relaxations.Value(), mc.Infeasible.Value())
				}
			}
		}
	}
}

// TestKFlowSolverTargetIsExact asserts the target-stopped variant finds
// flows of identical optimal weight (exactness) with identical feasibility
// verdicts, even though tie-broken flow supports may differ.
func TestKFlowSolverTargetIsExact(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g, s, tt := randomFlowGraph(seed+50, 30, 120, 5)
		kf := NewKFlowSolver(graph.NewCSR(g))
		for k := 0; k <= 7; k++ {
			for _, lw := range []shortest.LinWeight{shortest.LinCost, shortest.LinDelay, shortest.LinCombine(2, 5)} {
				fe, errE := kf.MinCostKFlow(s, tt, k, lw, nil, nil)
				ft, errT := kf.MinCostKFlowTarget(s, tt, k, lw, nil, nil)
				if (errE == nil) != (errT == nil) {
					t.Fatalf("seed %d k %d: err %v vs %v", seed, k, errE, errT)
				}
				if errE != nil {
					continue
				}
				we := fe.Weight(g, func(e graph.Edge) int64 { return lw.Of(e.Cost, e.Delay) })
				wt := ft.Weight(g, func(e graph.Edge) int64 { return lw.Of(e.Cost, e.Delay) })
				if we != wt {
					t.Fatalf("seed %d k %d: target-stop weight %d, exact %d", seed, k, wt, we)
				}
				if fe.Value != ft.Value {
					t.Fatalf("seed %d k %d: value %d vs %d", seed, k, ft.Value, fe.Value)
				}
			}
		}
	}
}

// TestKFlowSolverReuseIsClean reruns the same solve on a reused solver and
// checks the second answer matches the first (scratch resets fully).
func TestKFlowSolverReuseIsClean(t *testing.T) {
	g, s, tt := randomFlowGraph(99, 24, 80, 4)
	kf := NewKFlowSolver(graph.NewCSR(g))
	f1, err1 := kf.MinCostKFlow(s, tt, 3, shortest.LinCost, nil, nil)
	// An interleaved different-weight solve dirties every scratch array.
	if _, err := kf.MinCostKFlowTarget(s, tt, 4, shortest.LinDelay, nil, nil); err != nil {
		t.Fatalf("interleaved solve: %v", err)
	}
	f2, err2 := kf.MinCostKFlow(s, tt, 3, shortest.LinCost, nil, nil)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs %v %v", err1, err2)
	}
	ids1, ids2 := sortedIDs(f1), sortedIDs(f2)
	if len(ids1) != len(ids2) {
		t.Fatalf("reuse drift: %d vs %d edges", len(ids1), len(ids2))
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("reuse drift at %d: %d vs %d", i, ids1[i], ids2[i])
		}
	}
}
