package flow

import (
	"repro/internal/graph"
)

// SplitResult describes the vertex-splitting transform used to reduce
// vertex-disjoint path problems to edge-disjoint ones: every vertex v
// becomes v_in → v_out joined by a zero-cost zero-delay "gadget" edge; every
// original edge u→v becomes u_out → v_in carrying the original weights.
type SplitResult struct {
	G *graph.Digraph
	// In and Out map original vertices to their split halves.
	In, Out []graph.NodeID
	// EdgeOf maps split-graph edge IDs back to original edge IDs, or -1 for
	// gadget edges.
	EdgeOf []graph.EdgeID
}

// SplitVertices builds the vertex-splitting transform of g. The source's
// out-half and the sink's in-half serve as terminals, which permits k paths
// through s and t themselves while keeping interior vertices disjoint.
func SplitVertices(g *graph.Digraph) SplitResult {
	n := g.NumNodes()
	sg := graph.New(2 * n)
	res := SplitResult{
		G:   sg,
		In:  make([]graph.NodeID, n),
		Out: make([]graph.NodeID, n),
	}
	for v := 0; v < n; v++ {
		res.In[v] = graph.NodeID(2 * v)
		res.Out[v] = graph.NodeID(2*v + 1)
		sg.AddEdge(res.In[v], res.Out[v], 0, 0)
		res.EdgeOf = append(res.EdgeOf, -1)
	}
	for _, e := range g.EdgesView() {
		sg.AddEdge(res.Out[e.From], res.In[e.To], e.Cost, e.Delay)
		res.EdgeOf = append(res.EdgeOf, e.ID)
	}
	return res
}

// ProjectPath maps a path in the split graph back to original edge IDs,
// dropping gadget edges.
func (r SplitResult) ProjectPath(p graph.Path) graph.Path {
	var out []graph.EdgeID
	for _, id := range p.Edges {
		if orig := r.EdgeOf[id]; orig >= 0 {
			out = append(out, orig)
		}
	}
	return graph.Path{Edges: out}
}
