package flow

import (
	"fmt"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/pq"
	"repro/internal/shortest"
)

// KFlowSolver computes min-cost k-flows over a frozen CSR view with
// reusable scratch. Phase 1 calls min-cost flow ~10 times per solve (two
// endpoint flows plus the Lagrangian iterations) on the SAME graph;
// minCostKFlow re-allocates its workspace, potential, distance, parent and
// heap arrays on every call, which dominated both the allocation budget and
// the cache behaviour at N ≥ 5k. A solver instance hoists all of that: a
// call allocates only its UnitFlow result.
//
// Augmentation rounds iterate the CSR rows directly (forward arcs from
// OutRow, cancelling arcs from InRow, both ID-ascending), which makes
// MinCostKFlow bit-identical to minCostKFlow on the Digraph the view was
// packed from. Not safe for concurrent use; one solver per goroutine.
type KFlowSolver struct {
	c       *graph.CSR
	ws      *shortest.Workspace
	inFlow  []bool
	pot     []int64
	dist    []int64
	parent  []arc
	settled []bool
	h       *pq.Heap
	fr      *rec.Recorder
}

// SetRecorder attaches a flight recorder; each augmentation round then
// records one augment event (round index, s→t reduced distance). Nil (the
// default) records nothing and costs one dead branch per round.
func (kf *KFlowSolver) SetRecorder(r *rec.Recorder) { kf.fr = r }

// NewKFlowSolver returns a solver bound to the view. The view must not be
// flipped while the solver is in use (problem graphs never are; the solver
// checks and panics to keep the contract loud).
func NewKFlowSolver(c *graph.CSR) *KFlowSolver {
	n := c.NumNodes()
	return &KFlowSolver{
		c:       c,
		ws:      shortest.NewWorkspace(n),
		inFlow:  make([]bool, c.NumEdges()),
		pot:     make([]int64, n),
		dist:    make([]int64, n),
		parent:  make([]arc, n),
		settled: make([]bool, n),
		h:       pq.New(n),
	}
}

// MinCostKFlow is minCostKFlow over the solver's CSR view: a minimum-weight
// integral s→t flow of value k under unit capacities by successive shortest
// paths with Johnson potentials, bit-identical to the Digraph path
// (identical augmentation order, flows, metrics and errors).
func (kf *KFlowSolver) MinCostKFlow(s, t graph.NodeID, k int, lw shortest.LinWeight, m *obs.FlowMetrics, c *cancel.Canceller) (UnitFlow, error) {
	return kf.run(s, t, k, lw, m, c, false)
}

// MinCostKFlowTarget is MinCostKFlow with target-stopped Dijkstra rounds:
// each augmentation stops as soon as t settles and repairs potentials with
// pot'[v] = pot[v] + min(dist[v], dist[t]) — the standard early-exit for
// successive shortest paths, still EXACT (every augmenting path is a true
// shortest path; reduced weights stay nonnegative under the capped repair).
// Roughly halves per-round work on large instances. Tie-broken flows may
// differ from MinCostKFlow's, so only value-level guarantees (optimal
// weight, feasibility verdicts) are preserved — the scaled phase-1 kernel
// is its only solve-path caller.
func (kf *KFlowSolver) MinCostKFlowTarget(s, t graph.NodeID, k int, lw shortest.LinWeight, m *obs.FlowMetrics, c *cancel.Canceller) (UnitFlow, error) {
	return kf.run(s, t, k, lw, m, c, true)
}

func (kf *KFlowSolver) run(s, t graph.NodeID, k int, lw shortest.LinWeight, m *obs.FlowMetrics, c *cancel.Canceller, targetStop bool) (UnitFlow, error) {
	if k < 0 {
		return UnitFlow{}, fmt.Errorf("flow: negative k=%d", k)
	}
	cs := kf.c
	if cs.Mixed() {
		//lint:allow nopanic solver contract: flipping the view mid-use is a programming error, not runtime input
		panic("flow: KFlowSolver used on a flipped CSR view")
	}
	var rounds, relaxed int64
	n := cs.NumNodes()
	inFlow := kf.inFlow[:cs.NumEdges()]
	for i := range inFlow {
		inFlow[i] = false
	}
	// Potentials initialized by a plain Dijkstra (weights nonnegative),
	// copied out of the workspace tree so the per-round searches below can
	// reuse the workspace-independent scratch.
	pot := kf.pot[:n]
	copy(pot, shortest.DijkstraCSRInto(kf.ws, cs, s, lw).Dist)

	dist, parent, settled, h := kf.dist[:n], kf.parent[:n], kf.settled[:n], kf.h
	for it := 0; it < k; it++ {
		for v := range dist {
			dist[v] = shortest.Inf
			parent[v] = arc{edge: -1}
			settled[v] = false
		}
		if pot[s] == shortest.Inf {
			recordFlow(m, rounds, relaxed, true)
			return UnitFlow{}, ErrInfeasible
		}
		dist[s] = 0
		h.Reset()
		h.Push(int(s), 0)
		for h.Len() > 0 {
			if c.Poll() {
				recordFlow(m, rounds, relaxed, false)
				return UnitFlow{}, cancel.ErrCancelled
			}
			ui, du := h.Pop()
			u := graph.NodeID(ui)
			if settled[u] {
				continue
			}
			settled[u] = true
			if targetStop && u == t {
				break
			}
			for _, id := range cs.OutRow(u) {
				if inFlow[id] {
					continue
				}
				to := cs.Head(id)
				if settled[to] || pot[to] == shortest.Inf {
					continue
				}
				rw := lw.Of(cs.Cost(id), cs.Delay(id)) + pot[u] - pot[to]
				if rw < 0 {
					//lint:allow nopanic potential-validity invariant; a violation is a solver bug, not bad input
					panic(fmt.Sprintf("flow: negative reduced weight %d", rw))
				}
				if nd := du + rw; nd < dist[to] {
					dist[to] = nd
					parent[to] = arc{edge: id, fwd: true}
					h.Push(int(to), nd)
					relaxed++
				}
			}
			for _, id := range cs.InRow(u) {
				if !inFlow[id] {
					continue
				}
				to := cs.Tail(id)
				if settled[to] || pot[to] == shortest.Inf {
					continue
				}
				rw := -lw.Of(cs.Cost(id), cs.Delay(id)) + pot[u] - pot[to]
				if rw < 0 {
					//lint:allow nopanic potential-validity invariant; a violation is a solver bug, not bad input
					panic(fmt.Sprintf("flow: negative reduced weight %d", rw))
				}
				if nd := du + rw; nd < dist[to] {
					dist[to] = nd
					parent[to] = arc{edge: id, fwd: false}
					h.Push(int(to), nd)
					relaxed++
				}
			}
		}
		if dist[t] == shortest.Inf {
			recordFlow(m, rounds, relaxed, true)
			return UnitFlow{}, ErrInfeasible
		}
		rounds++
		kf.fr.Record(rec.KindAugment, rounds, dist[t], 0, 0)
		kf.augmentAlong(parent, inFlow, s, t)
		if targetStop {
			// Capped repair: pot'[v] = pot[v] + min(dist[v], dist[t]) keeps
			// every residual reduced weight nonnegative without requiring the
			// round to settle the whole graph.
			dt := dist[t]
			for v := range pot {
				if pot[v] == shortest.Inf {
					continue
				}
				if dist[v] < dt {
					pot[v] += dist[v] //lint:allow weightovf potentials accumulate <=k reduced path sums, each under n*MaxWeight < 2^47
				} else {
					pot[v] += dt
				}
			}
		} else {
			for v := range pot {
				if pot[v] == shortest.Inf {
					continue
				}
				if dist[v] == shortest.Inf {
					pot[v] = shortest.Inf
				} else {
					pot[v] += dist[v] //lint:allow weightovf potentials accumulate <=k reduced path sums, each under n*MaxWeight < 2^47
				}
			}
		}
	}

	set := graph.NewEdgeSet()
	for id, used := range inFlow {
		if used {
			set.Add(graph.EdgeID(id))
		}
	}
	recordFlow(m, rounds, relaxed, false)
	return UnitFlow{Edges: set, Value: k}, nil
}

// augmentAlong is augmentAlong over the CSR view: flip flow along the
// parent chain from t back to s.
//
//krsp:terminates(the parent array encodes a simple chain from t to s, ≤ n edges)
func (kf *KFlowSolver) augmentAlong(parent []arc, inFlow []bool, s, t graph.NodeID) {
	v := t
	for v != s {
		a := parent[v]
		if a.fwd {
			inFlow[a.edge] = true
			v = kf.c.Tail(a.edge)
		} else {
			inFlow[a.edge] = false
			v = kf.c.Head(a.edge)
		}
	}
}
