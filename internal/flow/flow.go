// Package flow implements unit-capacity network flow over the shared
// digraph type: Dinic max-flow (feasibility: do k edge-disjoint paths
// exist?), minimum-cost k-flow by successive shortest paths with Johnson
// potentials (the Suurballe generalization used throughout the kRSP
// algorithms), decomposition of unit flows into paths and cycles, and a
// vertex-splitting transform for vertex-disjoint variants.
package flow

import (
	"errors"
	"fmt"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pq"
	"repro/internal/shortest"
)

// ErrInfeasible reports that the requested flow value is not achievable.
var ErrInfeasible = errors.New("flow: requested value exceeds max flow")

// MaxDisjointPaths returns the maximum number of edge-disjoint s→t paths
// (the s-t max-flow under unit capacities), computed with Dinic's
// algorithm.
func MaxDisjointPaths(g *graph.Digraph, s, t graph.NodeID) int {
	if s == t {
		return 0
	}
	n := g.NumNodes()
	used := make([]bool, g.NumEdges()) // edge carries flow
	level := make([]int, n)
	iterOut := make([]int, n)
	iterIn := make([]int, n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue := []graph.NodeID{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, id := range g.Out(u) {
				e := g.Edge(id)
				if !used[id] && level[e.To] < 0 {
					level[e.To] = level[u] + 1
					queue = append(queue, e.To)
				}
			}
			for _, id := range g.In(u) {
				e := g.Edge(id)
				if used[id] && level[e.From] < 0 {
					level[e.From] = level[u] + 1
					queue = append(queue, e.From)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u graph.NodeID) bool
	dfs = func(u graph.NodeID) bool {
		if u == t {
			return true
		}
		for ; iterOut[u] < len(g.Out(u)); iterOut[u]++ {
			id := g.Out(u)[iterOut[u]]
			e := g.Edge(id)
			if !used[id] && level[e.To] == level[u]+1 && dfs(e.To) {
				used[id] = true
				return true
			}
		}
		for ; iterIn[u] < len(g.In(u)); iterIn[u]++ {
			id := g.In(u)[iterIn[u]]
			e := g.Edge(id)
			if used[id] && level[e.From] == level[u]+1 && dfs(e.From) {
				used[id] = false
				return true
			}
		}
		return false
	}

	total := 0
	for bfs() {
		for i := range iterOut {
			iterOut[i] = 0
			iterIn[i] = 0
		}
		for dfs(s) {
			total++
		}
	}
	return total
}

// UnitFlow is an integral unit-capacity flow: the set of edges carrying one
// unit each.
type UnitFlow struct {
	Edges graph.EdgeSet
	Value int
}

// Cost sums edge costs of the flow. Summation is order-independent, so the
// set is walked directly rather than sorted.
func (f UnitFlow) Cost(g *graph.Digraph) int64 {
	var s int64
	f.Edges.Each(func(id graph.EdgeID) { s += g.Edge(id).Cost }) //lint:allow weightovf flow sum over MaxWeight-capped edges; ≤ m·MaxWeight
	return s
}

// Delay sums edge delays of the flow.
func (f UnitFlow) Delay(g *graph.Digraph) int64 {
	var s int64
	f.Edges.Each(func(id graph.EdgeID) { s += g.Edge(id).Delay }) //lint:allow weightovf flow sum over MaxWeight-capped edges; ≤ m·MaxWeight
	return s
}

// Weight sums an arbitrary edge weight over the flow.
func (f UnitFlow) Weight(g *graph.Digraph, w shortest.Weight) int64 {
	var s int64
	f.Edges.Each(func(id graph.EdgeID) { s += w(g.Edge(id)) }) //lint:allow weightovf flow sum; callers pass MaxWeight-bounded weightings
	return s
}

// MinCostKFlow computes a minimum-weight integral s→t flow of value k under
// unit edge capacities, using successive shortest paths with Johnson
// potentials. The weight selector must be nonnegative on every edge
// (problem inputs are; residual graphs are handled elsewhere). Returns
// ErrInfeasible if fewer than k edge-disjoint paths exist.
func MinCostKFlow(g *graph.Digraph, s, t graph.NodeID, k int, w shortest.Weight) (UnitFlow, error) {
	return minCostKFlow(g, s, t, k, w, nil, nil)
}

// MinCostKFlowMetered is MinCostKFlow reporting call/augmentation/
// relaxation/infeasibility counts into m. A nil sink records nothing and
// costs nothing; counts are accumulated in locals and folded into the
// atomic counters once per call, at the exits.
func MinCostKFlowMetered(g *graph.Digraph, s, t graph.NodeID, k int, w shortest.Weight, m *obs.FlowMetrics) (UnitFlow, error) {
	return minCostKFlow(g, s, t, k, w, m, nil)
}

// MinCostKFlowCancel is MinCostKFlowMetered polling a Canceller in its
// Dijkstra pop loop: once c stops, the run abandons its partial flow and
// returns cancel.ErrCancelled. A nil Canceller costs one branch per pop.
// core.Phase1 threads its SolveCtx canceller through here so the Lagrangian
// search honors deadlines between and within augmentation rounds.
func MinCostKFlowCancel(g *graph.Digraph, s, t graph.NodeID, k int, w shortest.Weight, m *obs.FlowMetrics, c *cancel.Canceller) (UnitFlow, error) {
	return minCostKFlow(g, s, t, k, w, m, c)
}

// recordFlow folds one minCostKFlow run into the sink.
func recordFlow(m *obs.FlowMetrics, rounds, relaxed int64, infeasible bool) {
	if m == nil {
		return
	}
	m.Calls.Inc()
	m.Augmentations.Add(rounds)
	m.Relaxations.Add(relaxed)
	if infeasible {
		m.Infeasible.Inc()
	}
}

// arc is a residual-graph step recorded in the Dijkstra parent array: push
// one unit on an unused edge (fwd) or cancel a unit on a used one.
type arc struct {
	edge graph.EdgeID
	fwd  bool // true: push on unused edge; false: cancel used edge
}

// augmentAlong flips flow along the parent chain from t back to s, pushing
// on forward arcs and cancelling on backward ones.
//
//krsp:terminates(the parent array encodes a simple chain from t to s, ≤ n edges)
func augmentAlong(g *graph.Digraph, parent []arc, inFlow []bool, s, t graph.NodeID) {
	v := t
	for v != s {
		a := parent[v]
		e := g.Edge(a.edge)
		if a.fwd {
			inFlow[a.edge] = true
			v = e.From
		} else {
			inFlow[a.edge] = false
			v = e.To
		}
	}
}

func minCostKFlow(g *graph.Digraph, s, t graph.NodeID, k int, w shortest.Weight, m *obs.FlowMetrics, c *cancel.Canceller) (UnitFlow, error) {
	if k < 0 {
		return UnitFlow{}, fmt.Errorf("flow: negative k=%d", k)
	}
	var rounds, relaxed int64
	n := g.NumNodes()
	inFlow := make([]bool, g.NumEdges())
	// Potentials initialized by a plain Dijkstra (weights nonnegative). The
	// workspace-backed tree aliases ws, which is not reused below, so its
	// Dist doubles as the (mutated) potential array without a copy.
	ws := shortest.NewWorkspace(n)
	pot := shortest.DijkstraInto(ws, g, s, w).Dist

	// Scratch shared by the k augmentation rounds: allocating it per round
	// dominated small-instance solves (Phase1 calls this in a Lagrangian
	// loop, so the savings multiply).
	dist := make([]int64, n)
	parent := make([]arc, n)
	settled := make([]bool, n)
	h := pq.New(n)

	for it := 0; it < k; it++ {
		// Dijkstra over the residual structure with reduced weights.
		for v := range dist {
			dist[v] = shortest.Inf
			parent[v] = arc{edge: -1}
			settled[v] = false
		}
		if pot[s] == shortest.Inf {
			recordFlow(m, rounds, relaxed, true)
			return UnitFlow{}, ErrInfeasible
		}
		dist[s] = 0
		h.Reset()
		h.Push(int(s), 0)
		for h.Len() > 0 {
			if c.Poll() {
				recordFlow(m, rounds, relaxed, false)
				return UnitFlow{}, cancel.ErrCancelled
			}
			ui, du := h.Pop()
			u := graph.NodeID(ui)
			if settled[u] {
				continue
			}
			settled[u] = true
			// relax reports whether it improved dist[to]; the call sites
			// count improvements into a plain local (capturing a counter in
			// the closure could force it to the heap, which bench-guard
			// would flag).
			relax := func(to graph.NodeID, wt int64, a arc) bool {
				if settled[to] || pot[to] == shortest.Inf {
					return false
				}
				rw := wt + pot[u] - pot[to]
				if rw < 0 {
					//lint:allow nopanic potential-validity invariant; a violation is a solver bug, not bad input
					panic(fmt.Sprintf("flow: negative reduced weight %d", rw))
				}
				if nd := du + rw; nd < dist[to] {
					dist[to] = nd
					parent[to] = a
					h.Push(int(to), nd)
					return true
				}
				return false
			}
			for _, id := range g.Out(u) {
				e := g.Edge(id)
				if !inFlow[id] && relax(e.To, w(e), arc{edge: id, fwd: true}) {
					relaxed++
				}
			}
			for _, id := range g.In(u) {
				e := g.Edge(id)
				if inFlow[id] && relax(e.From, -w(e), arc{edge: id, fwd: false}) {
					relaxed++
				}
			}
		}
		if dist[t] == shortest.Inf {
			recordFlow(m, rounds, relaxed, true)
			return UnitFlow{}, ErrInfeasible
		}
		rounds++
		augmentAlong(g, parent, inFlow, s, t)
		// Update potentials: pot'[v] = pot[v] + dist_reduced[v]; vertices
		// unreached this round become unreachable for future rounds too
		// under reduced weights, mark Inf.
		for v := range pot {
			if pot[v] == shortest.Inf {
				continue
			}
			if dist[v] == shortest.Inf {
				pot[v] = shortest.Inf
			} else {
				pot[v] += dist[v] //lint:allow weightovf potentials accumulate <=k reduced path sums, each under n*MaxWeight < 2^47
			}
		}
	}

	set := graph.NewEdgeSet()
	for id, used := range inFlow {
		if used {
			set.Add(graph.EdgeID(id))
		}
	}
	recordFlow(m, rounds, relaxed, false)
	return UnitFlow{Edges: set, Value: k}, nil
}

// SuurballeMinSum returns k edge-disjoint s→t paths of minimum total cost
// (no delay constraint): the classic min-sum disjoint path problem [20, 21]
// solved as a min-cost k-flow. This is the delay-oblivious baseline.
func SuurballeMinSum(g *graph.Digraph, s, t graph.NodeID, k int) (graph.Solution, error) {
	f, err := MinCostKFlow(g, s, t, k, shortest.CostWeight)
	if err != nil {
		return graph.Solution{}, err
	}
	paths, cycles, err := Decompose(g, f.Edges, s, t, k)
	if err != nil {
		return graph.Solution{}, err
	}
	if len(cycles) != 0 {
		// Min-cost flows over nonnegative weights never need cycles, but a
		// zero-cost cycle may appear; drop them (they only add delay).
		_ = cycles
	}
	return graph.Solution{Paths: paths}, nil
}
