package rsp

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// mk builds the canonical tradeoff graph: a cheap slow path and an
// expensive fast path.
func mk() *graph.Digraph {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10) // cheap/slow
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 10, 1) // expensive/fast
	g.AddEdge(2, 3, 10, 1)
	g.AddEdge(0, 3, 5, 8) // middle
	return g
}

func TestExactDPTradeoff(t *testing.T) {
	g := mk()
	cases := []struct {
		bound    int64
		wantCost int64
	}{
		{25, 2}, // cheap/slow fits
		{10, 5}, // only middle and fast fit; middle cheaper
		{7, 20}, // only fast fits
		{2, 20}, // fast exactly
	}
	for _, tc := range cases {
		res, err := ExactDP(g, 0, 3, tc.bound)
		if err != nil {
			t.Fatalf("bound %d: %v", tc.bound, err)
		}
		if res.Cost != tc.wantCost {
			t.Fatalf("bound %d: cost %d want %d", tc.bound, res.Cost, tc.wantCost)
		}
		if res.Delay > tc.bound {
			t.Fatalf("bound %d: delay %d violates bound", tc.bound, res.Delay)
		}
		if err := res.Path.Validate(g, 0, 3, true); err != nil {
			t.Fatal(err)
		}
		if res.Path.Cost(g) != res.Cost || res.Path.Delay(g) != res.Delay {
			t.Fatal("metrics inconsistent with path")
		}
	}
}

func TestExactDPInfeasible(t *testing.T) {
	g := mk()
	if _, err := ExactDP(g, 0, 3, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ExactDP(g, 0, 3, -1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("negative bound err = %v", err)
	}
	// Disconnected sink.
	g2 := graph.New(2)
	if _, err := ExactDP(g2, 0, 1, 100); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestExactDPZeroDelayEdges(t *testing.T) {
	// Zero-delay edges create same-layer relaxations; the layered Dijkstra
	// must still find the optimum.
	g := graph.New(4)
	g.AddEdge(0, 1, 5, 0)
	g.AddEdge(1, 2, 5, 0)
	g.AddEdge(2, 3, 5, 0)
	g.AddEdge(0, 3, 100, 0)
	res, err := ExactDP(g, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 15 || res.Delay != 0 {
		t.Fatalf("got %d/%d", res.Cost, res.Delay)
	}
}

// bruteRSP enumerates all simple paths (tiny graphs).
func bruteRSP(g *graph.Digraph, s, t graph.NodeID, bound int64) (int64, bool) {
	best := int64(-1)
	var cur []graph.EdgeID
	on := map[graph.NodeID]bool{s: true}
	var dfs func(v graph.NodeID, cost, delay int64)
	dfs = func(v graph.NodeID, cost, delay int64) {
		if delay > bound {
			return
		}
		if v == t {
			if best < 0 || cost < best {
				best = cost
			}
			return
		}
		for _, id := range g.Out(v) {
			e := g.Edge(id)
			if on[e.To] {
				continue
			}
			on[e.To] = true
			cur = append(cur, id)
			dfs(e.To, cost+e.Cost, delay+e.Delay)
			cur = cur[:len(cur)-1]
			delete(on, e.To)
		}
	}
	dfs(s, 0, 0)
	return best, best >= 0
}

func randG(r *rand.Rand, n, m int, maxC, maxD int64) *graph.Digraph {
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(graph.NodeID(u), graph.NodeID(v), r.Int63n(maxC+1), r.Int63n(maxD+1))
		}
	}
	return g
}

func TestExactDPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(5)
		g := randG(r, n, 3*n, 15, 8)
		bound := r.Int63n(20)
		want, feasible := bruteRSP(g, 0, graph.NodeID(n-1), bound)
		res, err := ExactDP(g, 0, graph.NodeID(n-1), bound)
		if err != nil {
			return !feasible
		}
		return feasible && res.Cost == want && res.Delay <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLARACFeasibleAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		g := randG(r, n, 3*n, 20, 10)
		bound := r.Int63n(25)
		res, err := LARAC(g, 0, graph.NodeID(n-1), bound)
		exact, exErr := ExactDP(g, 0, graph.NodeID(n-1), bound)
		if err != nil {
			// LARAC declares infeasible only when truly infeasible.
			return exErr != nil
		}
		if res.Delay > bound {
			return false
		}
		// Lower bound sandwich: LB ≤ OPT ≤ LARAC cost.
		if exErr == nil {
			if res.LowerBound > exact.Cost || res.Cost < exact.Cost {
				return false
			}
		}
		return res.Path.Validate(g, 0, graph.NodeID(n-1), false) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLARACExactWhenUnconstrainedFits(t *testing.T) {
	g := mk()
	res, err := LARAC(g, 0, 3, 100)
	if err != nil || res.Cost != 2 || res.LowerBound != 2 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestLARACInfeasible(t *testing.T) {
	g := mk()
	if _, err := LARAC(g, 0, 3, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err=%v", err)
	}
}

func TestFPTASWithinFactor(t *testing.T) {
	for _, eps := range []float64{1.0, 0.5, 0.1} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			n := 3 + r.Intn(6)
			g := randG(r, n, 3*n, 30, 10)
			bound := r.Int63n(25)
			res, err := FPTAS(g, 0, graph.NodeID(n-1), bound, eps)
			exact, exErr := ExactDP(g, 0, graph.NodeID(n-1), bound)
			if err != nil {
				return exErr != nil
			}
			if exErr != nil {
				return false // FPTAS found a path the exact solver missed?!
			}
			if res.Delay > bound {
				return false
			}
			limit := float64(exact.Cost) * (1 + eps)
			return float64(res.Cost) <= limit+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
	}
}

func TestFPTASRejectsBadEps(t *testing.T) {
	g := mk()
	if _, err := FPTAS(g, 0, 3, 10, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := FPTAS(g, 0, 3, 10, -1); err == nil {
		t.Fatal("eps<0 accepted")
	}
}

func TestFPTASInfeasible(t *testing.T) {
	g := mk()
	if _, err := FPTAS(g, 0, 3, 1, 0.5); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err=%v", err)
	}
}

func TestFPTASLargeCosts(t *testing.T) {
	// Costs large enough that scaling actually kicks in (θ > 1).
	g := graph.New(4)
	g.AddEdge(0, 1, 100000, 10)
	g.AddEdge(1, 3, 100000, 10)
	g.AddEdge(0, 2, 1000000, 1)
	g.AddEdge(2, 3, 1000000, 1)
	res, err := FPTAS(g, 0, 3, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > 2 {
		t.Fatalf("delay %d", res.Delay)
	}
	if res.Cost > int64(float64(2000000)*1.25) {
		t.Fatalf("cost %d exceeds (1+ε)·OPT", res.Cost)
	}
}

func TestLayeredBestAndPath(t *testing.T) {
	g := mk()
	l := runLayered(g, 0, shortest.DelayWeight, shortest.CostWeight, 25)
	b, d := l.best(3)
	if d != 2 || b < 0 {
		t.Fatalf("best = %d @ layer %d", d, b)
	}
	p := l.pathTo(g, 3, b)
	if p.Cost(g) != 2 {
		t.Fatalf("path cost %d", p.Cost(g))
	}
}

func TestLARACQualityOnTradeoff(t *testing.T) {
	// Regression for the inverted-multiplier bug: LARAC must actually
	// iterate and land on the middle path (cost 5), not stall on the
	// delay-minimal one (cost 20).
	g := mk()
	res, err := LARAC(g, 0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 5 || res.Delay != 8 {
		t.Fatalf("LARAC stalled: got %d/%d, want 5/8", res.Cost, res.Delay)
	}
	if res.LowerBound > 5 || res.LowerBound < 2 {
		t.Fatalf("lower bound %d", res.LowerBound)
	}
}
