// Package rsp implements the single (k=1) Restricted Shortest Path
// problem: min-cost s→t path with delay ≤ D. It is both a baseline (the
// paper's citations [7, 17]) and a substrate: the exact layered DP doubles
// as the engine behind auxiliary-graph searches elsewhere.
//
// Three solvers are provided:
//   - ExactDP: pseudo-polynomial O((D+1)·m·log) layered Dijkstra.
//   - LARAC:   Lagrangian relaxation with exact integer arithmetic; returns
//     a feasible path plus a lower bound on OPT.
//   - FPTAS:   (1+ε)-approximation by cost scaling with geometric interval
//     narrowing (Hassin / Lorenz–Raz style).
package rsp

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/pq"
	"repro/internal/shortest"
)

// ErrInfeasible reports that no s→t path satisfies the delay bound.
var ErrInfeasible = errors.New("rsp: no path within delay bound")

// Result is a solved RSP query.
type Result struct {
	Path  graph.Path
	Cost  int64
	Delay int64
	// LowerBound ≤ OPT cost; equals Cost for exact solvers.
	LowerBound int64
}

// layeredDijkstra runs Dijkstra over the implicit layered graph whose nodes
// are (v, b) with b = accumulated layer weight ≤ cap; layer increments come
// from layerW (must be ≥ 0) and path lengths from distW (must be ≥ 0).
// dist[b][v] is the min distW-length of an s→(v,≤ rearranged) walk reaching
// v with layer budget exactly b consumed; parent pointers allow path
// reconstruction.
type layered struct {
	cap    int64
	n      int
	dist   []int64        // index b*n + v
	parent []graph.EdgeID // edge into (v,b); -1 if root/unreached
	prevB  []int64        // layer of the parent state
}

func (l *layered) at(b int64, v graph.NodeID) int { return int(b)*l.n + int(v) }

func runLayered(g *graph.Digraph, s graph.NodeID, layerW, distW shortest.Weight, cap int64) *layered {
	n := g.NumNodes()
	size := (cap + 1) * int64(n)
	l := &layered{cap: cap, n: n,
		dist:   make([]int64, size),
		parent: make([]graph.EdgeID, size),
		prevB:  make([]int64, size),
	}
	for i := range l.dist {
		l.dist[i] = shortest.Inf
		l.parent[i] = -1
	}
	start := l.at(0, s)
	l.dist[start] = 0
	h := pq.New(int(size))
	h.Push(start, 0)
	settled := make([]bool, size)
	for h.Len() > 0 {
		idx, du := h.Pop()
		if settled[idx] {
			continue
		}
		settled[idx] = true
		b := int64(idx) / int64(n)
		v := graph.NodeID(int64(idx) % int64(n))
		for _, id := range g.Out(v) {
			e := g.Edge(id)
			lw, dw := layerW(e), distW(e)
			if lw < 0 || dw < 0 {
				//lint:allow nopanic scaling invariant: layered weights of validated instances are nonnegative
				panic(fmt.Sprintf("rsp: negative layered weights (%d,%d)", lw, dw))
			}
			nb := b + lw
			if nb > cap {
				continue
			}
			ni := l.at(nb, e.To)
			if settled[ni] {
				continue
			}
			if nd := du + dw; nd < l.dist[ni] {
				l.dist[ni] = nd
				l.parent[ni] = id
				l.prevB[ni] = b
				h.Push(ni, nd)
			}
		}
	}
	return l
}

// best returns the minimum dist over all layers b ≤ cap at v, with the
// layer achieving it.
func (l *layered) best(v graph.NodeID) (bestB int64, bestD int64) {
	bestB, bestD = -1, shortest.Inf
	for b := int64(0); b <= l.cap; b++ {
		if d := l.dist[l.at(b, v)]; d < bestD {
			bestD = d
			bestB = b
		}
	}
	return bestB, bestD
}

// pathTo reconstructs the path into state (v, b).
func (l *layered) pathTo(g *graph.Digraph, v graph.NodeID, b int64) graph.Path {
	var rev []graph.EdgeID
	for {
		idx := l.at(b, v)
		id := l.parent[idx]
		if id < 0 {
			break
		}
		rev = append(rev, id)
		b = l.prevB[idx]
		v = g.Edge(id).From
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return graph.Path{Edges: rev}
}

// ExactDP solves RSP exactly in O((D+1)·m·log((D+1)·n)) time via Dijkstra
// over the delay-layered graph. Pseudo-polynomial in D.
func ExactDP(g *graph.Digraph, s, t graph.NodeID, bound int64) (Result, error) {
	if bound < 0 {
		return Result{}, ErrInfeasible
	}
	l := runLayered(g, s, shortest.DelayWeight, shortest.CostWeight, bound)
	b, cost := l.best(t)
	if b < 0 {
		return Result{}, ErrInfeasible
	}
	p := l.pathTo(g, t, b)
	return Result{Path: p, Cost: cost, Delay: p.Delay(g), LowerBound: cost}, nil
}

// LARAC solves RSP approximately via Lagrangian relaxation. It returns a
// feasible path (delay ≤ D) whose cost is at most OPT + gap where the gap
// is certified by Result.LowerBound ≤ OPT. All arithmetic is exact: the
// multiplier λ = p/q is kept rational and paths are computed under the
// integer weight q·c + p·d.
func LARAC(g *graph.Digraph, s, t graph.NodeID, bound int64) (Result, error) {
	// One workspace serves every Dijkstra below: the Lagrangian loop runs up
	// to 256 searches over the same graph, and paths are materialized before
	// the next search clobbers the tree.
	ws := shortest.NewWorkspace(g.NumNodes())
	// Cost-minimal path: if feasible, it is exactly optimal.
	tc := shortest.DijkstraInto(ws, g, s, shortest.CostWeight)
	pc, ok := tc.PathTo(g, t)
	if !ok {
		return Result{}, ErrInfeasible
	}
	if pc.Delay(g) <= bound {
		c := pc.Cost(g)
		return Result{Path: pc, Cost: c, Delay: pc.Delay(g), LowerBound: c}, nil
	}
	// Delay-minimal path: if infeasible, the instance is infeasible.
	td := shortest.DijkstraInto(ws, g, s, shortest.DelayWeight)
	pd, ok := td.PathTo(g, t)
	if !ok || pd.Delay(g) > bound {
		return Result{}, ErrInfeasible
	}
	// Invariant: pc infeasible (delay > D), pd feasible (delay ≤ D).
	lower := pc.Cost(g) // trivial lower bound: cost of unconstrained min
	for iter := 0; iter < 256; iter++ {
		// λ = (c(pd) − c(pc)) / (d(pc) − d(pd)) ≥ 0: pc is the cheap
		// infeasible path, pd the pricier feasible one, so the numerator is
		// ≥ 0 and the denominator > 0 by the invariant.
		p := pd.Cost(g) - pc.Cost(g)
		q := pc.Delay(g) - pd.Delay(g)
		if p < 0 {
			p = 0 // cost tie degenerates to λ = 0
		}
		if q <= 0 {
			break
		}
		w := shortest.Combine(q, p)
		tr := shortest.DijkstraInto(ws, g, s, w)
		r, _ := tr.PathTo(g, t)
		wr := weightOf(g, r, w)
		// Lagrangian lower bound: (wλ(r) − p·D) / q ≤ OPT.
		if lb := divCeil(wr-p*bound, q); lb > lower {
			lower = lb
		}
		if wr == weightOf(g, pc, w) || wr == weightOf(g, pd, w) {
			break // converged: r ties an endpoint
		}
		if r.Delay(g) <= bound {
			pd = r
		} else {
			pc = r
		}
	}
	c := pd.Cost(g)
	if lower > c {
		lower = c
	}
	if lower < 0 {
		lower = 0
	}
	return Result{Path: pd, Cost: c, Delay: pd.Delay(g), LowerBound: lower}, nil
}

// FPTAS solves RSP within factor (1+ε) on cost, strictly obeying the delay
// bound. eps must be > 0. Runs in time polynomial in the graph size, 1/ε
// and log(Cmax).
func FPTAS(g *graph.Digraph, s, t graph.NodeID, bound int64, eps float64) (Result, error) {
	if eps <= 0 {
		return Result{}, fmt.Errorf("rsp: eps must be positive, got %g", eps)
	}
	// Feasibility + upper bound: min-delay path. Both probes and their paths
	// are materialized off one workspace.
	ws := shortest.NewWorkspace(g.NumNodes())
	td := shortest.DijkstraInto(ws, g, s, shortest.DelayWeight)
	pd, ok := td.PathTo(g, t)
	if !ok || pd.Delay(g) > bound {
		return Result{}, ErrInfeasible
	}
	ub := pd.Cost(g)
	// Lower bound: unconstrained min cost; exact answer if feasible.
	tc := shortest.DijkstraInto(ws, g, s, shortest.CostWeight)
	pc, _ := tc.PathTo(g, t)
	if pc.Delay(g) <= bound {
		c := pc.Cost(g)
		return Result{Path: pc, Cost: c, Delay: pc.Delay(g), LowerBound: c}, nil
	}
	lb := pc.Cost(g)
	if lb < 1 {
		lb = 1
	}
	n := int64(g.NumNodes())
	// Geometric narrowing: find V with OPT ∈ (V/2, 3V].
	v := lb
	for v < ub {
		if testAtMost(g, s, t, bound, v, n) {
			break // OPT ≤ 3V
		}
		v *= 2
	}
	// Final scaled DP with θ = max(1, ⌈ε·V/(2n)⌉); cost error ≤ n·θ ≤ ε·V/2
	// ≤ ε·OPT (since OPT > V/2 when the loop advanced; when it broke at
	// V = lb, θ's error ≤ ε·lb/2 ≤ ε·OPT too).
	theta := int64(eps*float64(v)/(4*float64(n))) + 1
	cap := 3*v/theta + n + 1
	if capTotal := g.SumCost()/theta + n + 1; cap > capTotal { //lint:allow weightovf θ-scaled cost cap ≤ SumCost < 2^61
		cap = capTotal
	}
	scaled := func(e graph.Edge) int64 { return e.Cost / theta }
	l := runLayered(g, s, scaled, shortest.DelayWeight, cap)
	// Minimum scaled budget whose min delay is feasible.
	for b := int64(0); b <= cap; b++ {
		if l.dist[l.at(b, t)] <= bound {
			p := l.pathTo(g, t, b)
			return Result{Path: p, Cost: p.Cost(g), Delay: p.Delay(g), LowerBound: lb}, nil
		}
	}
	// Unreachable in theory (pd is feasible and has scaled cost ≤ cap);
	// return the min-delay path as a safe fallback.
	return Result{Path: pd, Cost: pd.Cost(g), Delay: pd.Delay(g), LowerBound: lb}, nil
}

// testAtMost reports whether some feasible path has cost ≤ 3V (true) or
// certifies every feasible path costs > V (false), using a coarse scaled
// DP with θ = max(1, V/n) and budget cap 2n.
func testAtMost(g *graph.Digraph, s, t graph.NodeID, bound, v, n int64) bool {
	theta := v / n
	if theta < 1 {
		theta = 1
	}
	cap := 2 * n
	if capV := v/theta + n; capV < cap {
		cap = capV
	}
	scaled := func(e graph.Edge) int64 { return e.Cost / theta }
	l := runLayered(g, s, scaled, shortest.DelayWeight, cap)
	for b := int64(0); b <= cap; b++ {
		if l.dist[l.at(b, t)] <= bound {
			return true
		}
	}
	return false
}

func weightOf(g *graph.Digraph, p graph.Path, w shortest.Weight) int64 {
	var s int64
	for _, id := range p.Edges {
		s += w(g.Edge(id)) //lint:allow weightovf path sum; callers pass MaxWeight-bounded weightings
	}
	return s
}

func divCeil(a, b int64) int64 {
	if b <= 0 {
		//lint:allow nopanic divisor is θ ≥ 1 by construction; programmer error
		panic("rsp: divCeil nonpositive divisor")
	}
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}
