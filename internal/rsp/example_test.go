package rsp_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rsp"
)

// ExampleExactDP solves the classic single restricted shortest path: the
// cheapest route whose delay fits the budget.
func ExampleExactDP() {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10) // cheap but slow
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 10, 1) // fast but pricey
	g.AddEdge(2, 3, 10, 1)
	g.AddEdge(0, 3, 5, 8) // middle ground

	for _, bound := range []int64{25, 10, 2} {
		res, err := rsp.ExactDP(g, 0, 3, bound)
		if err != nil {
			fmt.Printf("D=%d: infeasible\n", bound)
			continue
		}
		fmt.Printf("D=%d: cost %d, delay %d\n", bound, res.Cost, res.Delay)
	}
	// Output:
	// D=25: cost 2, delay 20
	// D=10: cost 5, delay 8
	// D=2: cost 20, delay 2
}

// ExampleLARAC shows the Lagrangian solver's certificate: a feasible path
// plus a lower bound sandwiching the optimum.
func ExampleLARAC() {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 10, 1)
	g.AddEdge(2, 3, 10, 1)
	g.AddEdge(0, 3, 5, 8)

	res, _ := rsp.LARAC(g, 0, 3, 10)
	fmt.Printf("feasible cost %d (delay %d), optimum is at least %d\n",
		res.Cost, res.Delay, res.LowerBound)
	// Output:
	// feasible cost 5 (delay 8), optimum is at least 5
}
