package baseline

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/shortest"
)

// MinMax computes k edge-disjoint s→t paths approximately minimizing the
// maximum per-path delay — the Min-Max disjoint path problem the paper
// surveys in §1.2. The problem is NP-complete with best possible factor 2
// in digraphs [16]; that factor is achieved by the min-SUM reduction of
// Suurballe [20, 21]: the delay-minimal k-flow's longest path is at most
// the sum of all k paths' delays, which is at most k times... more simply,
// max ≤ sum ≤ k·OPT_max gives factor k; for k = 2 the classic argument
// tightens it to 2. Returns the solution and its realized maximum
// per-path delay.
func MinMax(ins graph.Instance) (graph.Solution, int64, error) {
	f, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, ins.K, shortest.DelayWeight)
	if err != nil {
		return graph.Solution{}, 0, fmt.Errorf("baseline minmax: %w", err)
	}
	paths, _, err := flow.Decompose(ins.G, f.Edges, ins.S, ins.T, ins.K)
	if err != nil {
		return graph.Solution{}, 0, fmt.Errorf("baseline minmax: %v", err)
	}
	sol := graph.Solution{Paths: paths}
	var worst int64
	for _, p := range paths {
		if d := p.Delay(ins.G); d > worst {
			worst = d
		}
	}
	return sol, worst, nil
}
