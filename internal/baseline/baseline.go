// Package baseline implements the comparison algorithms the experiment
// suite measures the paper's algorithm against:
//
//   - MinSum (Suurballe [20,21]): min-cost k disjoint paths, delay ignored —
//     the delay-oblivious lower-bound baseline.
//   - MinDelay: delay-minimal k disjoint paths, cost ignored — the
//     feasibility-first baseline.
//   - GreedySequential: route k restricted shortest paths one at a time on
//     the shrinking graph (each under a proportional share of the delay
//     budget) — the classic practical heuristic; may fail on feasible
//     instances.
//   - LagrangianSweep: cheapest feasible min-cost k-flow across a sweep of
//     multipliers λ (the flow-level analogue of the tradeoff algorithms of
//     [18]) — no cycle cancellation.
//   - YenGreedy: k-shortest-paths enumeration + greedy disjoint selection,
//     the classic engineering heuristic with no guarantee.
//   - Phase1Only: the paper's first phase alone, i.e. the (2,2)-flavoured
//     LP-rounding bound of [9].
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/rsp"
	"repro/internal/shortest"
)

// ErrFailed reports that a heuristic baseline could not produce k paths
// (which, unlike for exact methods, does not certify infeasibility).
var ErrFailed = errors.New("baseline: heuristic failed to route k paths")

// Result is a baseline outcome. Feasible reports delay ≤ bound: baselines
// are allowed to return bound-violating solutions so experiments can
// measure the violation.
type Result struct {
	Name     string
	Solution graph.Solution
	Cost     int64
	Delay    int64
	Feasible bool
}

func mkResult(name string, ins graph.Instance, paths []graph.Path) Result {
	sol := graph.Solution{Paths: paths}
	return Result{
		Name:     name,
		Solution: sol,
		Cost:     sol.Cost(ins.G),
		Delay:    sol.Delay(ins.G),
		Feasible: sol.Delay(ins.G) <= ins.Bound,
	}
}

// MinSum is the Suurballe-style min-cost disjoint paths baseline.
func MinSum(ins graph.Instance) (Result, error) {
	sol, err := flow.SuurballeMinSum(ins.G, ins.S, ins.T, ins.K)
	if err != nil {
		return Result{}, fmt.Errorf("baseline minsum: %w", err)
	}
	return mkResult("minsum", ins, sol.Paths), nil
}

// MinDelay routes the delay-minimal k disjoint paths.
func MinDelay(ins graph.Instance) (Result, error) {
	f, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, ins.K, shortest.DelayWeight)
	if err != nil {
		return Result{}, fmt.Errorf("baseline mindelay: %w", err)
	}
	paths, _, err := flow.Decompose(ins.G, f.Edges, ins.S, ins.T, ins.K)
	if err != nil {
		return Result{}, fmt.Errorf("baseline mindelay: %w", err)
	}
	return mkResult("mindelay", ins, paths), nil
}

// GreedySequential routes one restricted shortest path at a time, removing
// its edges, giving each path an equal share of the remaining delay budget.
// Simple, fast, and incomplete: it can fail (or go infeasible) on instances
// the exact algorithms solve.
func GreedySequential(ins graph.Instance) (Result, error) {
	g := ins.G.Clone()
	alive := make([]bool, g.NumEdges())
	for i := range alive {
		alive[i] = true
	}
	budget := ins.Bound
	var paths []graph.Path
	for i := 0; i < ins.K; i++ {
		share := budget / int64(ins.K-i)
		sub, mapping := subgraph(g, alive)
		res, err := rsp.ExactDP(sub, ins.S, ins.T, share)
		if err != nil {
			// Retry with the whole remaining budget before giving up.
			res, err = rsp.ExactDP(sub, ins.S, ins.T, budget)
			if err != nil {
				return Result{}, fmt.Errorf("%w: path %d: %v", ErrFailed, i+1, err)
			}
		}
		var orig []graph.EdgeID
		for _, id := range res.Path.Edges {
			orig = append(orig, mapping[id])
			alive[mapping[id]] = false
		}
		paths = append(paths, graph.Path{Edges: orig})
		budget -= ins.G.TotalDelay(orig)
		if budget < 0 {
			budget = 0
		}
	}
	return mkResult("greedy", ins, paths), nil
}

// subgraph copies the alive edges of g into a fresh graph, returning the
// new→old edge ID mapping.
func subgraph(g *graph.Digraph, alive []bool) (*graph.Digraph, []graph.EdgeID) {
	sub := graph.New(g.NumNodes())
	var mapping []graph.EdgeID
	for _, e := range g.EdgesView() {
		if alive[e.ID] {
			sub.AddEdge(e.From, e.To, e.Cost, e.Delay)
			mapping = append(mapping, e.ID)
		}
	}
	return sub, mapping
}

// LagrangianSweep scans multipliers λ = 0, 1, 2, 4, … over the combined
// weight c + λ·d and returns the cheapest bound-respecting min-cost k-flow
// seen. Unlike the paper's algorithm it cannot trade cost for delay below
// the flow-polytope vertices it visits.
func LagrangianSweep(ins graph.Instance) (Result, error) {
	var best *Result
	lambda := int64(0)
	for iter := 0; iter < 48; iter++ {
		w := shortest.Combine(1, lambda)
		f, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, ins.K, w)
		if err != nil {
			return Result{}, fmt.Errorf("baseline sweep: %w", err)
		}
		if f.Delay(ins.G) <= ins.Bound {
			paths, _, derr := flow.Decompose(ins.G, f.Edges, ins.S, ins.T, ins.K)
			if derr != nil {
				return Result{}, fmt.Errorf("baseline sweep: %v", derr)
			}
			r := mkResult("sweep", ins, paths)
			if best == nil || r.Cost < best.Cost {
				best = &r
			}
		}
		if lambda == 0 {
			lambda = 1
		} else {
			lambda *= 2
		}
		if lambda > ins.G.SumCost()+1 {
			break
		}
	}
	if best == nil {
		return Result{}, fmt.Errorf("%w: no feasible flow in sweep", ErrFailed)
	}
	return *best, nil
}

// Phase1Only runs the paper's first phase alone (the [9]-style bound).
func Phase1Only(ins graph.Instance) (Result, error) {
	res, err := core.Solve(ins, core.Options{Phase1Only: true})
	if err != nil {
		return Result{}, err
	}
	r := mkResult("phase1", ins, res.Solution.Paths)
	return r, nil
}

// KRSP runs the paper's full algorithm, for inclusion in comparison tables.
func KRSP(ins graph.Instance) (Result, error) {
	res, err := core.Solve(ins, core.Options{})
	if err != nil {
		return Result{}, err
	}
	return mkResult("krsp", ins, res.Solution.Paths), nil
}

// Func is a baseline entry point.
type Func func(graph.Instance) (Result, error)

// All returns the registry of baselines in presentation order.
func All() []struct {
	Name string
	Run  Func
} {
	return []struct {
		Name string
		Run  Func
	}{
		{"krsp", KRSP},
		{"phase1", Phase1Only},
		{"sweep", LagrangianSweep},
		{"greedy", GreedySequential},
		{"yen", YenGreedy},
		{"minsum", MinSum},
		{"mindelay", MinDelay},
	}
}

// YenGreedy enumerates the cheapest simple paths with Yen's algorithm and
// greedily assembles k edge-disjoint ones whose total delay fits the
// bound, preferring cheap paths. A common engineering heuristic: no
// guarantee at all (it can fail on feasible instances and has unbounded
// cost ratio), which is what E6 measures it against.
func YenGreedy(ins graph.Instance) (Result, error) {
	const poolFactor = 8
	pool := shortest.KShortestPaths(ins.G, ins.S, ins.T, poolFactor*ins.K, shortest.CostWeight)
	if len(pool) < ins.K {
		return Result{}, fmt.Errorf("%w: only %d simple paths found", ErrFailed, len(pool))
	}
	// Greedy selection with restart: try each pool rotation as the anchor
	// so a single bad first pick does not doom the run.
	for start := 0; start+ins.K <= len(pool); start++ {
		var picked []graph.Path
		used := graph.NewEdgeSet()
		var delay int64
		for _, p := range pool[start:] {
			conflict := false
			for _, id := range p.Edges {
				if used.Has(id) {
					conflict = true
					break
				}
			}
			if conflict || delay+p.Delay(ins.G) > ins.Bound {
				continue
			}
			picked = append(picked, p)
			delay += p.Delay(ins.G)
			for _, id := range p.Edges {
				used.Add(id)
			}
			if len(picked) == ins.K {
				return mkResult("yen", ins, picked), nil
			}
		}
	}
	return Result{}, fmt.Errorf("%w: no disjoint feasible combination in the Yen pool", ErrFailed)
}
