package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func tradeoff(bound int64) graph.Instance {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	return graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: bound}
}

func TestMinSum(t *testing.T) {
	ins := tradeoff(10)
	r, err := MinSum(ins)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 5 { // cheapest 2 disjoint: {e0,e1} (2) + {e4} (3)
		t.Fatalf("cost = %d", r.Cost)
	}
	if r.Feasible {
		t.Fatal("min-sum should violate the tight bound here")
	}
	if err := r.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestMinDelay(t *testing.T) {
	ins := tradeoff(10)
	r, err := MinDelay(ins)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delay != 7 { // pricey pair (2) + direct (5)
		t.Fatalf("delay = %d", r.Delay)
	}
	if !r.Feasible {
		t.Fatal("min-delay must be feasible when the instance is")
	}
}

func TestGreedySequential(t *testing.T) {
	ins := tradeoff(12)
	r, err := GreedySequential(ins)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyCanFail(t *testing.T) {
	// A trap: the cheap first path blocks the only disjoint pair.
	g := graph.New(4)
	g.AddEdge(0, 1, 0, 1) // s→a cheap fast: greedy takes s→a→t
	g.AddEdge(1, 3, 0, 1)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 1, 5, 1) // second path must go s→b→a→t — via a!
	ins := graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: 100}
	if _, err := GreedySequential(ins); err == nil {
		t.Fatal("greedy should fail on the trap instance")
	}
}

func TestLagrangianSweep(t *testing.T) {
	ins := tradeoff(10)
	r, err := LagrangianSweep(ins)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("sweep returned infeasible result")
	}
	if err := r.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestPhase1OnlyAndKRSP(t *testing.T) {
	ins := tradeoff(10)
	p1, err := Phase1Only(ins)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
	kr, err := KRSP(ins)
	if err != nil {
		t.Fatal(err)
	}
	if !kr.Feasible {
		t.Fatal("krsp must meet the bound on feasible instances")
	}
	if kr.Cost > 26 { // 2·OPT with OPT=13
		t.Fatalf("krsp cost %d", kr.Cost)
	}
}

func TestAllRegistry(t *testing.T) {
	ins := tradeoff(10)
	entries := All()
	if len(entries) != 7 {
		t.Fatalf("registry size %d", len(entries))
	}
	for _, e := range entries {
		r, err := e.Run(ins)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if err := r.Solution.Validate(ins); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
	}
}

// TestBaselineOrdering: on random feasible instances, krsp's cost is never
// worse than mindelay's (both feasible), and minsum's cost lower-bounds
// everything.
func TestBaselineOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := gen.ER(seed, 8+r.Intn(6), 0.25, gen.DefaultWeights())
		bounded, ok := gen.WithBound(ins, 1.3+r.Float64())
		if !ok {
			return true
		}
		kr, err := KRSP(bounded)
		if err != nil {
			return false
		}
		ms, err := MinSum(bounded)
		if err != nil {
			return false
		}
		md, err := MinDelay(bounded)
		if err != nil {
			return false
		}
		if !kr.Feasible || !md.Feasible {
			return false
		}
		if ms.Cost > kr.Cost {
			return false // min-sum is a lower bound on any solution's cost
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxFactorTwo(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(8)), int64(r.Intn(8)))
			}
		}
		ins := graph.Instance{G: g, S: 0, T: graph.NodeID(n - 1), K: 2, Bound: 1 << 30}
		sol, worst, err := MinMax(ins)
		if err != nil {
			return true // fewer than 2 disjoint paths
		}
		if sol.Validate(ins) != nil {
			return false
		}
		opt, ok := bruteMinMax(ins)
		if !ok {
			return false
		}
		// The min-sum reduction is a 2-approximation for k = 2 [16, 20].
		return worst <= 2*opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// bruteMinMax enumerates disjoint path pairs minimizing the longer delay.
func bruteMinMax(ins graph.Instance) (int64, bool) {
	paths := enumerateAll(ins.G, ins.S, ins.T)
	best := int64(-1)
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if sharesEdge(paths[i], paths[j]) {
				continue
			}
			a, b := paths[i].Delay(ins.G), paths[j].Delay(ins.G)
			if b > a {
				a = b
			}
			if best < 0 || a < best {
				best = a
			}
		}
	}
	return best, best >= 0
}

func sharesEdge(a, b graph.Path) bool {
	set := graph.NewEdgeSet(a.Edges...)
	for _, id := range b.Edges {
		if set.Has(id) {
			return true
		}
	}
	return false
}

func enumerateAll(g *graph.Digraph, s, t graph.NodeID) []graph.Path {
	var out []graph.Path
	var cur []graph.EdgeID
	on := map[graph.NodeID]bool{s: true}
	var dfs func(v graph.NodeID)
	dfs = func(v graph.NodeID) {
		if v == t {
			out = append(out, graph.Path{Edges: append([]graph.EdgeID(nil), cur...)})
			return
		}
		for _, id := range g.Out(v) {
			e := g.Edge(id)
			if on[e.To] {
				continue
			}
			on[e.To] = true
			cur = append(cur, id)
			dfs(e.To)
			cur = cur[:len(cur)-1]
			delete(on, e.To)
		}
	}
	dfs(s)
	return out
}

func TestMinMaxInfeasible(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 2, 1, 1)
	ins := graph.Instance{G: g, S: 0, T: 2, K: 2, Bound: 100}
	if _, _, err := MinMax(ins); err == nil {
		t.Fatal("single-route graph cannot host 2 disjoint paths")
	}
}

func TestYenGreedy(t *testing.T) {
	ins := tradeoff(12)
	r, err := YenGreedy(ins)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("yen result infeasible: %+v", r)
	}
	if err := r.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestYenGreedyFailsWithoutEnoughPaths(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 2, 1, 1)
	ins := graph.Instance{G: g, S: 0, T: 2, K: 2, Bound: 100}
	if _, err := YenGreedy(ins); err == nil {
		t.Fatal("single-route graph accepted")
	}
}
