// Package cancel provides the solver's cooperative-cancellation primitive:
// a Canceller that hot loops poll with a counter-strided channel check, so
// the common (not-yet-cancelled) case costs one predictable branch and no
// atomics, and the nil Canceller is a free no-op (mirroring the obs
// nil-sink contract). core.SolveCtx derives a Canceller from its context —
// a context that can never be done (context.Background) yields nil, making
// the plain Solve path provably overhead-free.
//
// Cancellers are pooled: New and Child draw from a sync.Pool and Release
// returns to it, so a steady-state SolveCtx allocates nothing for
// cancellation (the bench guard's SolveCtxN60K3 twin pins this).
//
// A Canceller is single-goroutine state. Parallel workers take one Child
// each (same done channel, fresh counter); sharing one Canceller across
// goroutines is a data race.
package cancel

import (
	"context"
	"errors"
	"sync"
)

// ErrCancelled is the sentinel kernels return when a Canceller stopped them
// mid-run. The solver translates it into a degraded-but-feasible result or
// core.ErrNoProgress; it never escapes the core API.
var ErrCancelled = errors.New("cancel: cancelled")

// DefaultPollStride is the default number of Poll calls between channel
// checks. At typical kernel iteration costs (tens of ns) this bounds
// cancellation latency well under a millisecond while keeping the per-
// iteration cost to one counter increment and branch.
const DefaultPollStride = 1024

// Canceller is the poll target threaded through the solve pipeline. The
// zero value is unusable; obtain one from New or Child, and Release it when
// the solve finishes. A nil *Canceller is valid everywhere and never
// reports cancellation.
type Canceller struct {
	done    <-chan struct{}
	stride  uint32
	n       uint32
	stopped bool
}

var pool = sync.Pool{New: func() any { return new(Canceller) }}

// New derives a Canceller from ctx, polling the context's done channel
// every stride Poll calls (stride ≤ 0 selects DefaultPollStride). Contexts
// that can never be cancelled (Done() == nil, e.g. context.Background)
// yield nil — the free no-op Canceller.
func New(ctx context.Context, stride int) *Canceller {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	if stride <= 0 {
		stride = DefaultPollStride
	}
	c := pool.Get().(*Canceller)
	if c == nil { // pool.New always yields a value; keep the invariant local
		c = new(Canceller)
	}
	c.done = done
	c.stride = uint32(stride)
	c.n = 0
	c.stopped = false
	return c
}

// Child returns a Canceller sharing c's done channel and stride with fresh
// counter state, for handing to a parallel worker (Cancellers are not
// goroutine-safe). A child of nil is nil. Children are pooled too; Release
// them when the worker finishes.
func (c *Canceller) Child() *Canceller {
	if c == nil {
		return nil
	}
	ch := pool.Get().(*Canceller)
	if ch == nil { // pool.New always yields a value; keep the invariant local
		ch = new(Canceller)
	}
	ch.done = c.done
	ch.stride = c.stride
	ch.n = 0
	ch.stopped = c.stopped
	return ch
}

// Release returns c to the pool. Safe on nil. The caller must not use c
// after Release.
func (c *Canceller) Release() {
	if c == nil {
		return
	}
	c.done = nil
	pool.Put(c)
}

// Poll is the hot-loop cancellation probe: it checks the done channel once
// every stride calls and reports whether the Canceller has stopped. After
// the first true, every subsequent call is true without touching the
// channel. Nil-safe (always false).
func (c *Canceller) Poll() bool {
	if c == nil {
		return false
	}
	if c.stopped {
		return true
	}
	c.n++
	if c.n < c.stride {
		return false
	}
	c.n = 0
	return c.Check()
}

// Check probes the done channel immediately (no stride), latching stopped.
// Coarse loop boundaries — once per cancellation iteration, once per budget
// escalation — use it for tight cancellation latency at negligible cost.
// Nil-safe (always false).
func (c *Canceller) Check() bool {
	if c == nil {
		return false
	}
	if c.stopped {
		return true
	}
	select {
	case <-c.done:
		c.stopped = true
		return true
	default:
		return false
	}
}

// Stopped reports whether a previous Poll/Check/Trip observed cancellation,
// without touching the channel. Callers use it after a kernel returns a
// no-verdict to distinguish cancellation from budget exhaustion. Nil-safe.
func (c *Canceller) Stopped() bool {
	return c != nil && c.stopped
}

// Trip latches the Canceller stopped without any channel involved — the
// deterministic "deadline fired" lever used by fault injection (the
// fault.PointCancel site) and tests. Nil-safe no-op.
func (c *Canceller) Trip() {
	if c != nil {
		c.stopped = true
	}
}
