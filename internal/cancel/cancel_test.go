package cancel

import (
	"context"
	"testing"
)

func TestNilIsFreeNoOp(t *testing.T) {
	var c *Canceller
	for i := 0; i < 10; i++ {
		if c.Poll() || c.Check() || c.Stopped() {
			t.Fatal("nil Canceller reported cancellation")
		}
	}
	c.Trip() // must not panic
	c.Release()
	if c.Child() != nil {
		t.Fatal("Child of nil must be nil")
	}
}

func TestBackgroundYieldsNil(t *testing.T) {
	if c := New(context.Background(), 0); c != nil {
		t.Fatal("context.Background must yield a nil Canceller")
	}
	if c := New(nil, 0); c != nil {
		t.Fatal("nil context must yield a nil Canceller")
	}
}

func TestPollStride(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	c := New(ctx, 4)
	defer c.Release()
	for i := 0; i < 16; i++ {
		if c.Poll() {
			t.Fatalf("poll %d fired before cancellation", i)
		}
	}
	cancelFn()
	// The channel is checked only every 4th call; within at most one full
	// stride Poll must observe the cancellation and latch.
	fired := false
	for i := 0; i < 4; i++ {
		if c.Poll() {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("Poll did not observe cancellation within one stride")
	}
	if !c.Poll() || !c.Stopped() || !c.Check() {
		t.Fatal("stopped state did not latch")
	}
}

func TestCheckImmediate(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	c := New(ctx, 1<<20)
	defer c.Release()
	if c.Check() {
		t.Fatal("Check fired before cancellation")
	}
	cancelFn()
	if !c.Check() {
		t.Fatal("Check must observe cancellation immediately, ignoring stride")
	}
}

func TestTrip(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	defer cancelFn()
	c := New(ctx, 0)
	defer c.Release()
	c.Trip()
	if !c.Poll() || !c.Stopped() {
		t.Fatal("Trip did not latch stopped")
	}
}

func TestChildSharesDoneNotCounter(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	c := New(ctx, 2)
	defer c.Release()
	ch := c.Child()
	defer ch.Release()
	if ch.Stopped() {
		t.Fatal("fresh child already stopped")
	}
	cancelFn()
	if !ch.Check() {
		t.Fatal("child does not see the parent's done channel")
	}
	// The parent's own latch is independent state.
	if c.Stopped() {
		t.Fatal("parent latched through the child")
	}
	if !c.Check() {
		t.Fatal("parent cannot see its own done channel")
	}
}

func TestChildOfTrippedParentStartsStopped(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	defer cancelFn()
	c := New(ctx, 0)
	defer c.Release()
	c.Trip()
	ch := c.Child()
	defer ch.Release()
	if !ch.Stopped() {
		t.Fatal("child of a tripped parent must start stopped")
	}
}

func TestPoolReuseResetsState(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	c := New(ctx, 8)
	c.Trip()
	cancelFn()
	c.Release()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	// Whatever the pool hands back (possibly c) must behave as fresh.
	c2 := New(ctx2, 8)
	defer c2.Release()
	if c2.Stopped() || c2.Poll() {
		t.Fatal("pooled Canceller leaked stopped state")
	}
}
