// Package graph provides the directed-multigraph substrate used by every
// other package in this repository. Graphs carry a nonnegative integral
// cost and delay on every edge, matching the kRSP problem definition
// (Definition 2 of the paper). Residual constructions elsewhere relax the
// nonnegativity, so the types here deliberately allow negative weights and
// parallel edges.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a vertex. Vertices are dense integers 0..NumNodes-1.
type NodeID int32

// EdgeID identifies an edge. Edges are dense integers 0..NumEdges-1 in
// insertion order and are never reused; parallel edges get distinct IDs.
type EdgeID int32

// Edge is a directed edge with integral cost and delay.
type Edge struct {
	ID   EdgeID
	From NodeID
	To   NodeID
	// Cost is the routing cost c(e). Nonnegative in problem inputs;
	// residual graphs negate it on reversed edges.
	Cost int64
	// Delay is the QoS delay d(e). Same sign convention as Cost.
	Delay int64
}

// Digraph is a directed multigraph with per-edge cost and delay.
// The zero value is an empty graph with no nodes; use New to size it.
type Digraph struct {
	edges []Edge
	out   [][]EdgeID
	in    [][]EdgeID
}

// New returns an empty digraph with n vertices and no edges.
func New(n int) *Digraph {
	if n < 0 {
		//lint:allow nopanic negative size is a programmer error, not runtime input
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Digraph{
		out: make([][]EdgeID, n),
		in:  make([][]EdgeID, n),
	}
}

// NumNodes reports the number of vertices.
func (g *Digraph) NumNodes() int { return len(g.out) }

// NumEdges reports the number of edges.
func (g *Digraph) NumEdges() int { return len(g.edges) }

// AddNode appends a fresh vertex and returns its ID.
func (g *Digraph) AddNode() NodeID {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return NodeID(len(g.out) - 1)
}

// AddEdge inserts a directed edge from u to v and returns its ID.
// Parallel edges and self-loops are permitted (residual graphs need the
// former; generators reject the latter themselves where it matters).
func (g *Digraph) AddEdge(u, v NodeID, cost, delay int64) EdgeID {
	g.checkNode(u)
	g.checkNode(v)
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: u, To: v, Cost: cost, Delay: delay})
	g.out[u] = append(g.out[u], id)
	g.in[v] = append(g.in[v], id)
	return id
}

// Edge returns the edge with the given ID.
func (g *Digraph) Edge(id EdgeID) Edge {
	return g.edges[id]
}

// Edges returns a copy of all edges in insertion order.
func (g *Digraph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// EdgesView returns the graph's edge slice without copying. The slice is
// owned by the graph and must not be modified or retained across mutations;
// hot loops use it to avoid the per-call allocation of Edges.
func (g *Digraph) EdgesView() []Edge { return g.edges }

// SetEdgeWeights overwrites the cost and delay of an existing edge in
// place. Endpoints and ID are untouched, so adjacency stays valid.
func (g *Digraph) SetEdgeWeights(id EdgeID, cost, delay int64) {
	e := &g.edges[id]
	e.Cost = cost
	e.Delay = delay
}

// FlipEdge reverses the direction of edge id in place, negating its cost
// and delay, and keeping its ID. This is the residual-graph primitive: a
// solution edge u→v (c, d) becomes the reversed copy v→u (−c, −d) and vice
// versa, without rebuilding the graph.
//
// Adjacency lists built by AddEdge alone are ascending in edge ID, and
// searches iterate them in list order, so FlipEdge re-inserts in sorted
// position: a graph mutated by any sequence of flips has exactly the
// adjacency a fresh construction with the final directions would have,
// which keeps incremental residual maintenance bit-identical to a rebuild.
func (g *Digraph) FlipEdge(id EdgeID) {
	e := &g.edges[id]
	g.removeAdj(&g.out[e.From], id)
	g.removeAdj(&g.in[e.To], id)
	e.From, e.To = e.To, e.From
	e.Cost, e.Delay = -e.Cost, -e.Delay
	g.insertAdj(&g.out[e.From], id)
	g.insertAdj(&g.in[e.To], id)
}

// removeAdj deletes id from an adjacency list, preserving the order of the
// remaining entries.
func (g *Digraph) removeAdj(list *[]EdgeID, id EdgeID) {
	l := *list
	i := sort.Search(len(l), func(i int) bool { return l[i] >= id })
	if i == len(l) || l[i] != id {
		//lint:allow nopanic adjacency-consistency invariant; violation means a corrupted Digraph
		panic(fmt.Sprintf("graph: edge %d missing from adjacency", id))
	}
	*list = append(l[:i], l[i+1:]...)
}

// insertAdj inserts id into an ascending adjacency list at its sorted
// position.
func (g *Digraph) insertAdj(list *[]EdgeID, id EdgeID) {
	l := *list
	i := sort.Search(len(l), func(i int) bool { return l[i] >= id })
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = id
	*list = l
}

// Out returns the IDs of edges leaving v. The returned slice is owned by
// the graph and must not be modified.
func (g *Digraph) Out(v NodeID) []EdgeID { g.checkNode(v); return g.out[v] }

// In returns the IDs of edges entering v. The returned slice is owned by
// the graph and must not be modified.
func (g *Digraph) In(v NodeID) []EdgeID { g.checkNode(v); return g.in[v] }

// OutDegree reports the number of edges leaving v.
func (g *Digraph) OutDegree(v NodeID) int { g.checkNode(v); return len(g.out[v]) }

// InDegree reports the number of edges entering v.
func (g *Digraph) InDegree(v NodeID) int { g.checkNode(v); return len(g.in[v]) }

// Clone returns a deep copy of g. Adjacency lists are carved out of two
// shared backing arrays with capacity clamped to length: the whole clone
// costs O(1) allocations, and a later append to any one list reallocates
// just that list (copy-on-write) instead of corrupting its neighbours.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{
		edges: append([]Edge(nil), g.edges...),
		out:   make([][]EdgeID, len(g.out)),
		in:    make([][]EdgeID, len(g.in)),
	}
	outBack := make([]EdgeID, len(g.edges))
	inBack := make([]EdgeID, len(g.edges))
	var o, i int
	for v := range g.out {
		n := copy(outBack[o:], g.out[v])
		c.out[v] = outBack[o : o+n : o+n]
		o += n
		n = copy(inBack[i:], g.in[v])
		c.in[v] = inBack[i : i+n : i+n]
		i += n
	}
	return c
}

// Reverse returns a new graph with every edge direction flipped. Edge IDs,
// costs and delays are preserved.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.NumNodes())
	for _, e := range g.edges {
		r.AddEdge(e.To, e.From, e.Cost, e.Delay)
	}
	return r
}

// TotalCost sums the cost of the identified edges.
func (g *Digraph) TotalCost(ids []EdgeID) int64 {
	var s int64
	for _, id := range ids {
		s += g.edges[id].Cost //lint:allow weightovf Σ over ≤ m MaxWeight-capped weights stays < 2^61
	}
	return s
}

// TotalDelay sums the delay of the identified edges.
func (g *Digraph) TotalDelay(ids []EdgeID) int64 {
	var s int64
	for _, id := range ids {
		s += g.edges[id].Delay //lint:allow weightovf Σ over ≤ m MaxWeight-capped weights stays < 2^61
	}
	return s
}

// SumCost returns Σ_e c(e) over all edges (the paper's Σc(e) bound).
func (g *Digraph) SumCost() int64 {
	var s int64
	for _, e := range g.edges {
		s += e.Cost //lint:allow weightovf Σ over ≤ m MaxWeight-capped weights stays < 2^61
	}
	return s
}

// SumDelay returns Σ_e d(e) over all edges.
func (g *Digraph) SumDelay() int64 {
	var s int64
	for _, e := range g.edges {
		s += e.Delay //lint:allow weightovf Σ over ≤ m MaxWeight-capped weights stays < 2^61
	}
	return s
}

// MaxCost returns the maximum edge cost, or 0 for an edgeless graph.
func (g *Digraph) MaxCost() int64 {
	var m int64
	for _, e := range g.edges {
		if e.Cost > m {
			m = e.Cost
		}
	}
	return m
}

// MaxDelay returns the maximum edge delay, or 0 for an edgeless graph.
func (g *Digraph) MaxDelay() int64 {
	var m int64
	for _, e := range g.edges {
		if e.Delay > m {
			m = e.Delay
		}
	}
	return m
}

// MaxWeight is the largest edge cost or delay a problem Instance may carry;
// Instance.Validate enforces it on every solver entry point. Capping inputs
// at 2^30 keeps every aggregate the pipeline forms — weight sums over
// m < 2^31 edges, cross-multiplied Definition 10 ratios, and the layered
// lexicographic factors — strictly below the 2^62 sentinel used by the
// bicameral engine's masking trick, so interior int64 arithmetic cannot
// wrap. Residual graphs and derived weightings inherit the bound (their
// entries are ± sums of capped inputs).
const MaxWeight int64 = 1 << 30

// HasNonNegativeWeights reports whether every edge has cost ≥ 0 and
// delay ≥ 0 (true for problem inputs, false for residual graphs).
func (g *Digraph) HasNonNegativeWeights() bool {
	for _, e := range g.edges {
		if e.Cost < 0 || e.Delay < 0 {
			return false
		}
	}
	return true
}

// FindEdges returns the IDs of all u→v parallel edges in insertion order.
func (g *Digraph) FindEdges(u, v NodeID) []EdgeID {
	var ids []EdgeID
	for _, id := range g.out[u] {
		if g.edges[id].To == v {
			ids = append(ids, id)
		}
	}
	return ids
}

// Validate checks internal adjacency consistency. It is used by tests and
// by fuzz-style property checks; it returns a descriptive error on the
// first inconsistency found.
func (g *Digraph) Validate() error {
	n := g.NumNodes()
	seen := make(map[EdgeID]int)
	for v := 0; v < n; v++ {
		for _, id := range g.out[v] {
			if int(id) >= len(g.edges) {
				return fmt.Errorf("graph: out[%d] references unknown edge %d", v, id)
			}
			e := g.edges[id]
			if e.From != NodeID(v) {
				return fmt.Errorf("graph: edge %d in out[%d] has From=%d", id, v, e.From)
			}
			seen[id]++
		}
	}
	for v := 0; v < n; v++ {
		for _, id := range g.in[v] {
			if int(id) >= len(g.edges) {
				return fmt.Errorf("graph: in[%d] references unknown edge %d", v, id)
			}
			e := g.edges[id]
			if e.To != NodeID(v) {
				return fmt.Errorf("graph: edge %d in in[%d] has To=%d", id, v, e.To)
			}
			seen[id]++
		}
	}
	for i, e := range g.edges {
		if e.ID != EdgeID(i) {
			return fmt.Errorf("graph: edge at index %d has ID %d", i, e.ID)
		}
		if int(e.From) >= n || int(e.To) >= n || e.From < 0 || e.To < 0 {
			return fmt.Errorf("graph: edge %d endpoints out of range: %d→%d", i, e.From, e.To)
		}
		if seen[e.ID] != 2 {
			return fmt.Errorf("graph: edge %d appears %d times in adjacency (want 2)", e.ID, seen[e.ID])
		}
	}
	return nil
}

// String renders a compact human-readable summary.
func (g *Digraph) String() string {
	return fmt.Sprintf("Digraph(n=%d, m=%d)", g.NumNodes(), g.NumEdges())
}

func (g *Digraph) checkNode(v NodeID) {
	if v < 0 || int(v) >= len(g.out) {
		//lint:allow nopanic index-range invariant, same contract as slice indexing
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, len(g.out))) //lint:allow contracts panic path: formats only once the invariant is already broken
	}
}

// SortedEdgeIDs returns the IDs sorted ascending; handy for deterministic
// output in tests and serialization.
func SortedEdgeIDs(ids []EdgeID) []EdgeID {
	out := append([]EdgeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
