package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadInstance: the text parser must never panic, and everything it
// accepts must round-trip through WriteInstance.
func FuzzReadInstance(f *testing.F) {
	f.Add("krsp v1\nnodes 3\nst 0 2\nk 1\nbound 9\nedge 0 1 2 3\nedge 1 2 4 5\n")
	f.Add("krsp v1\nnodes 0\n")
	f.Add("krsp v1\n# comment\nnodes 2\nname x y z\nedge 0 1 -3 -4\n")
	f.Add("bogus")
	f.Fuzz(func(t *testing.T, src string) {
		ins, err := ReadInstance(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := ins.G.Validate(); err != nil {
			t.Fatalf("accepted inconsistent graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteInstance(&buf, ins); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadInstance(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\n%s", err, buf.String())
		}
		if back.G.NumNodes() != ins.G.NumNodes() || back.G.NumEdges() != ins.G.NumEdges() {
			t.Fatal("round-trip changed graph size")
		}
		for _, e := range ins.G.Edges() {
			if back.G.Edge(e.ID) != e {
				t.Fatalf("round-trip changed edge %d", e.ID)
			}
		}
	})
}

// FuzzReadDIMACS: same contract for the DIMACS-style parser.
func FuzzReadDIMACS(f *testing.F) {
	f.Add("c hello\np sp 3 2\nq 1 3 2 9\na 1 2 4 5\na 2 3 6\n")
	f.Add("p sp 1 0\n")
	f.Add("a 1 2 3\n")
	f.Fuzz(func(t *testing.T, src string) {
		ins, err := ReadDIMACS(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := ins.G.Validate(); err != nil {
			t.Fatalf("accepted inconsistent graph: %v", err)
		}
		// Accepted instances with in-range terminals must survive a
		// write/read cycle.
		n := ins.G.NumNodes()
		if int(ins.S) < 0 || int(ins.S) >= n || int(ins.T) < 0 || int(ins.T) >= n {
			return // query line may reference out-of-range vertices
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, ins); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadDIMACS(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\n%s", err, buf.String())
		}
		if back.G.NumEdges() != ins.G.NumEdges() {
			t.Fatal("round-trip changed edge count")
		}
	})
}
