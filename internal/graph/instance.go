package graph

import (
	"errors"
	"fmt"
)

// Instance is a complete kRSP problem instance (Definition 2 of the paper):
// a digraph with costs and delays, terminals s and t, the number of
// required edge-disjoint paths K, and the total delay bound D.
type Instance struct {
	G     *Digraph
	S, T  NodeID
	K     int
	Bound int64 // D, the total delay bound
	// Name labels the instance in experiment output; optional.
	Name string
}

// ErrInvalidInstance wraps all instance validation failures.
var ErrInvalidInstance = errors.New("invalid kRSP instance")

// Validate checks structural sanity: terminals in range and distinct,
// K ≥ 1, D ≥ 0, and nonnegative edge weights (required by Definition 2;
// residual graphs are not Instances).
func (ins Instance) Validate() error {
	if ins.G == nil {
		return fmt.Errorf("%w: nil graph", ErrInvalidInstance)
	}
	n := ins.G.NumNodes()
	if ins.S < 0 || int(ins.S) >= n {
		return fmt.Errorf("%w: source %d out of range [0,%d)", ErrInvalidInstance, ins.S, n)
	}
	if ins.T < 0 || int(ins.T) >= n {
		return fmt.Errorf("%w: sink %d out of range [0,%d)", ErrInvalidInstance, ins.T, n)
	}
	if ins.S == ins.T {
		return fmt.Errorf("%w: source equals sink (%d)", ErrInvalidInstance, ins.S)
	}
	if ins.K < 1 {
		return fmt.Errorf("%w: k=%d, want ≥ 1", ErrInvalidInstance, ins.K)
	}
	if ins.Bound < 0 {
		return fmt.Errorf("%w: delay bound %d < 0", ErrInvalidInstance, ins.Bound)
	}
	if !ins.G.HasNonNegativeWeights() {
		return fmt.Errorf("%w: negative edge weights", ErrInvalidInstance)
	}
	if c, d := ins.G.MaxCost(), ins.G.MaxDelay(); c > MaxWeight || d > MaxWeight {
		return fmt.Errorf("%w: edge weight %d exceeds MaxWeight=%d", ErrInvalidInstance, max64(c, d), MaxWeight)
	}
	return ins.G.Validate()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Solution is a set of K edge-disjoint s→t paths.
type Solution struct {
	Paths []Path
}

// Cost sums the cost of all paths.
func (s Solution) Cost(g *Digraph) int64 {
	var c int64
	for _, p := range s.Paths {
		c += p.Cost(g) //lint:allow weightovf Σ over ≤ m MaxWeight-capped weights stays < 2^61
	}
	return c
}

// Delay sums the delay of all paths.
func (s Solution) Delay(g *Digraph) int64 {
	var d int64
	for _, p := range s.Paths {
		d += p.Delay(g) //lint:allow weightovf Σ over ≤ m MaxWeight-capped weights stays < 2^61
	}
	return d
}

// EdgeIDs returns all edges used across paths, sorted.
func (s Solution) EdgeIDs() []EdgeID {
	var ids []EdgeID
	for _, p := range s.Paths {
		ids = append(ids, p.Edges...)
	}
	return SortedEdgeIDs(ids)
}

// Validate checks that the solution consists of exactly ins.K edge-disjoint
// s→t paths in ins.G. It does NOT check the delay bound: approximation
// algorithms may legitimately exceed it by their bifactor; callers check
// delay separately.
func (s Solution) Validate(ins Instance) error {
	if len(s.Paths) != ins.K {
		return fmt.Errorf("solution has %d paths, want %d", len(s.Paths), ins.K)
	}
	seen := map[EdgeID]bool{}
	for i, p := range s.Paths {
		if err := p.Validate(ins.G, ins.S, ins.T, false); err != nil {
			return fmt.Errorf("path %d: %w", i, err)
		}
		for _, id := range p.Edges {
			if seen[id] {
				return fmt.Errorf("paths share edge %d", id)
			}
			seen[id] = true
		}
	}
	return nil
}
