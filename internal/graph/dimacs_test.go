package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	g := mkDiamond(t)
	ins := Instance{G: g, S: 0, T: 3, K: 2, Bound: 12, Name: "dimacs demo"}
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, ins); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.S != ins.S || back.T != ins.T || back.K != ins.K || back.Bound != ins.Bound {
		t.Fatalf("query mismatch: %+v", back)
	}
	if back.Name != ins.Name {
		t.Fatalf("name %q", back.Name)
	}
	for _, e := range g.Edges() {
		if back.G.Edge(e.ID) != e {
			t.Fatalf("edge %d mismatch", e.ID)
		}
	}
}

func TestDIMACSOneBasedWire(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 7, 3)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, Instance{G: g, S: 0, T: 1, K: 1, Bound: 5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a 1 2 7 3") || !strings.Contains(out, "q 1 2 1 5") {
		t.Fatalf("wire format not 1-based:\n%s", out)
	}
}

func TestReadDIMACSPlainSingleWeight(t *testing.T) {
	// A classic 9th-challenge .gr file: weight doubles as cost and delay.
	src := "c tiny\np sp 3 2\na 1 2 4\na 2 3 6\n"
	ins, err := ReadDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if ins.G.NumEdges() != 2 {
		t.Fatalf("edges %d", ins.G.NumEdges())
	}
	e := ins.G.Edge(0)
	if e.Cost != 4 || e.Delay != 4 {
		t.Fatalf("edge %+v", e)
	}
	if ins.K != 0 || ins.Bound != 0 {
		t.Fatal("absent query line should leave zero values")
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"",
		"p sp x 2\n",
		"a 1 2 3\n",              // arc before problem line
		"p sp 2 1\na 1 9 3\n",    // endpoint out of range
		"p sp 2 1\na 1 2\n",      // short arc
		"p sp 2 1\nq 1 2\n",      // short query
		"p sp 2 1\nz nonsense\n", // unknown line
		"p tree 2 1\n",           // wrong problem type
		"p sp 2 1\nq 1 2 1 zz\n", // bad bound
		"p sp 2 1\na 1 2 3 zz\n", // bad delay
	}
	for i, src := range cases {
		if _, err := ReadDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

// TestDIMACSLargeRoundTripByteIdentical drives a 10k-node instance through
// write → read → write and requires the two serializations to be identical
// byte for byte: the reader must preserve vertex numbering, edge order and
// the query line exactly, at the scale the large-instance tier exchanges
// files. (Write order is insertion order on both sides, so any silent
// reordering or renumbering in either direction shows up as a byte diff.)
func TestDIMACSLargeRoundTripByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	const n = 10_000
	g := New(n)
	// A ring for connectivity plus random chords: ~3 edges per vertex.
	for v := 0; v < n; v++ {
		g.AddEdge(NodeID(v), NodeID((v+1)%n), r.Int63n(100)+1, r.Int63n(100)+1)
	}
	for i := 0; i < 2*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(NodeID(u), NodeID(v), r.Int63n(100)+1, r.Int63n(100)+1)
		}
	}
	ins := Instance{G: g, S: 0, T: NodeID(n / 2), K: 3, Bound: 12345,
		Name: "dimacs large roundtrip"}

	var first bytes.Buffer
	if err := WriteDIMACS(&first, ins); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACS(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteDIMACS(&second, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		// Find the first differing line for a useful failure message.
		a := strings.Split(first.String(), "\n")
		b := strings.Split(second.String(), "\n")
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("re-serialization differs at line %d:\n  first:  %q\n  second: %q", i+1, a[i], b[i])
			}
		}
		t.Fatalf("re-serialization differs in length: %d vs %d bytes", first.Len(), second.Len())
	}
	if back.G.NumNodes() != n || back.G.NumEdges() != g.NumEdges() {
		t.Fatalf("size drift: %d/%d nodes, %d/%d edges",
			back.G.NumNodes(), n, back.G.NumEdges(), g.NumEdges())
	}
}
