package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mkDiamond(t *testing.T) *Digraph {
	t.Helper()
	g := New(4)
	g.AddEdge(0, 1, 1, 2) // e0
	g.AddEdge(0, 2, 2, 1) // e1
	g.AddEdge(1, 3, 3, 4) // e2
	g.AddEdge(2, 3, 4, 3) // e3
	g.AddEdge(1, 2, 5, 5) // e4
	return g
}

func TestNewAndAddEdge(t *testing.T) {
	g := New(3)
	if g.NumNodes() != 3 || g.NumEdges() != 0 {
		t.Fatalf("got n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	id := g.AddEdge(0, 1, 7, 9)
	if id != 0 {
		t.Fatalf("first edge ID = %d", id)
	}
	e := g.Edge(id)
	if e.From != 0 || e.To != 1 || e.Cost != 7 || e.Delay != 9 {
		t.Fatalf("edge = %+v", e)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddNode(t *testing.T) {
	g := New(1)
	v := g.AddNode()
	if v != 1 || g.NumNodes() != 2 {
		t.Fatalf("AddNode gave %d, n=%d", v, g.NumNodes())
	}
	g.AddEdge(0, v, 1, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelEdgesAllowed(t *testing.T) {
	g := New(2)
	a := g.AddEdge(0, 1, 1, 1)
	b := g.AddEdge(0, 1, 2, 2)
	if a == b {
		t.Fatal("parallel edges must get distinct IDs")
	}
	ids := g.FindEdges(0, 1)
	if len(ids) != 2 {
		t.Fatalf("FindEdges = %v", ids)
	}
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := mkDiamond(t)
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 {
		t.Fatalf("out(0)=%d in(3)=%d", g.OutDegree(0), g.InDegree(3))
	}
	if g.OutDegree(1) != 2 || g.InDegree(2) != 2 {
		t.Fatalf("out(1)=%d in(2)=%d", g.OutDegree(1), g.InDegree(2))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mkDiamond(t)
	c := g.Clone()
	c.AddEdge(3, 0, 1, 1)
	if g.NumEdges() == c.NumEdges() {
		t.Fatal("clone shares edge storage")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReverse(t *testing.T) {
	g := mkDiamond(t)
	r := g.Reverse()
	if r.NumEdges() != g.NumEdges() {
		t.Fatal("reverse dropped edges")
	}
	for _, e := range g.Edges() {
		re := r.Edge(e.ID)
		if re.From != e.To || re.To != e.From || re.Cost != e.Cost || re.Delay != e.Delay {
			t.Fatalf("edge %d reversed badly: %+v vs %+v", e.ID, e, re)
		}
	}
	rr := r.Reverse()
	for _, e := range g.Edges() {
		if rr.Edge(e.ID) != e {
			t.Fatalf("double reverse changed edge %d", e.ID)
		}
	}
}

func TestTotalsAndExtremes(t *testing.T) {
	g := mkDiamond(t)
	if g.SumCost() != 15 || g.SumDelay() != 15 {
		t.Fatalf("sums = %d/%d", g.SumCost(), g.SumDelay())
	}
	if g.MaxCost() != 5 || g.MaxDelay() != 5 {
		t.Fatalf("max = %d/%d", g.MaxCost(), g.MaxDelay())
	}
	if g.TotalCost([]EdgeID{0, 2}) != 4 {
		t.Fatalf("TotalCost = %d", g.TotalCost([]EdgeID{0, 2}))
	}
	if g.TotalDelay([]EdgeID{1, 3}) != 4 {
		t.Fatalf("TotalDelay = %d", g.TotalDelay([]EdgeID{1, 3}))
	}
}

func TestHasNonNegativeWeights(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1, 1)
	if !g.HasNonNegativeWeights() {
		t.Fatal("want nonnegative")
	}
	g.AddEdge(1, 0, -1, 1)
	if g.HasNonNegativeWeights() {
		t.Fatal("want negative detected")
	}
}

func TestPathValidateAndMetrics(t *testing.T) {
	g := mkDiamond(t)
	p := PathFromEdges(0, 2) // 0→1→3
	if err := p.Validate(g, 0, 3, true); err != nil {
		t.Fatal(err)
	}
	if p.Cost(g) != 4 || p.Delay(g) != 6 {
		t.Fatalf("cost/delay = %d/%d", p.Cost(g), p.Delay(g))
	}
	if p.From(g) != 0 || p.To(g) != 3 {
		t.Fatalf("endpoints %d %d", p.From(g), p.To(g))
	}
	nodes := p.Nodes(g)
	if len(nodes) != 3 || nodes[0] != 0 || nodes[1] != 1 || nodes[2] != 3 {
		t.Fatalf("nodes = %v", nodes)
	}
	if got := p.Format(g); got != "0->1->3" {
		t.Fatalf("format = %q", got)
	}
}

func TestPathValidateRejects(t *testing.T) {
	g := mkDiamond(t)
	cases := []struct {
		name string
		p    Path
		s, t NodeID
	}{
		{"discontiguous", PathFromEdges(0, 3), 0, 3},
		{"wrong start", PathFromEdges(2), 0, 3},
		{"wrong end", PathFromEdges(0), 0, 3},
		{"repeated edge", PathFromEdges(0, 4, 3), 0, 0},
		{"empty with s!=t", Path{}, 0, 3},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(g, tc.s, tc.t, false); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestPathSimpleDetectsRevisit(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1, 1) // e0
	g.AddEdge(1, 0, 1, 1) // e1
	g.AddEdge(0, 2, 1, 1) // e2
	p := PathFromEdges(0, 1, 2)
	if err := p.Validate(g, 0, 2, false); err != nil {
		t.Fatalf("non-simple walk should pass: %v", err)
	}
	if err := p.Validate(g, 0, 2, true); err == nil {
		t.Fatal("simple validation should reject revisit of 0")
	}
}

func TestCycleValidate(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 2, 1, 1)
	g.AddEdge(2, 0, 1, 1)
	c := Cycle{Edges: []EdgeID{0, 1, 2}}
	if err := c.Validate(g, true); err != nil {
		t.Fatal(err)
	}
	if c.Cost(g) != 3 || c.Delay(g) != 3 {
		t.Fatalf("cycle cost/delay %d/%d", c.Cost(g), c.Delay(g))
	}
	if got := c.Format(g); got != "0->1->2->0" {
		t.Fatalf("format = %q", got)
	}
	bad := Cycle{Edges: []EdgeID{0, 1}}
	if err := bad.Validate(g, true); err == nil {
		t.Fatal("open walk accepted as cycle")
	}
	if err := (Cycle{}).Validate(g, true); err == nil {
		t.Fatal("empty cycle accepted")
	}
}

func TestEdgeSetOps(t *testing.T) {
	a := NewEdgeSet(1, 2, 3)
	b := NewEdgeSet(3, 4)
	if got := a.Union(b).Len(); got != 4 {
		t.Fatalf("union len %d", got)
	}
	if got := a.Intersect(b).IDs(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("intersect %v", got)
	}
	if got := a.Minus(b).IDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("minus %v", got)
	}
	c := a.Clone()
	c.Remove(1)
	if !a.Has(1) || c.Has(1) {
		t.Fatal("clone not independent")
	}
	c.Add(9)
	if !c.Has(9) {
		t.Fatal("Add failed")
	}
}

func TestOPlusCancelsOppositePairs(t *testing.T) {
	// Graph with edge 0→1 and its reverse 1→0 (as in a residual graph).
	g := New(2)
	fwd := g.AddEdge(0, 1, 5, 5)
	bwd := g.AddEdge(1, 0, -5, -5)
	res := OPlus(g, NewEdgeSet(fwd), NewEdgeSet(bwd))
	if res.Len() != 0 {
		t.Fatalf("opposite pair should cancel, got %v", res.IDs())
	}
}

func TestOPlusKeepsNonOpposite(t *testing.T) {
	g := mkDiamond(t)
	res := OPlus(g, NewEdgeSet(0, 2), NewEdgeSet(1, 3))
	if res.Len() != 4 {
		t.Fatalf("nothing should cancel, got %v", res.IDs())
	}
}

func TestOPlusMultigraphGreedy(t *testing.T) {
	g := New(2)
	f1 := g.AddEdge(0, 1, 1, 1)
	f2 := g.AddEdge(0, 1, 2, 2)
	b1 := g.AddEdge(1, 0, 3, 3)
	res := OPlus(g, NewEdgeSet(f1, f2), NewEdgeSet(b1))
	// One forward edge cancels against the single backward edge.
	if res.Len() != 1 {
		t.Fatalf("want one survivor, got %v", res.IDs())
	}
}

func TestInstanceValidate(t *testing.T) {
	g := mkDiamond(t)
	ok := Instance{G: g, S: 0, T: 3, K: 2, Bound: 10}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Instance{
		{G: nil, S: 0, T: 3, K: 2, Bound: 10},
		{G: g, S: -1, T: 3, K: 2, Bound: 10},
		{G: g, S: 0, T: 99, K: 2, Bound: 10},
		{G: g, S: 0, T: 0, K: 2, Bound: 10},
		{G: g, S: 0, T: 3, K: 0, Bound: 10},
		{G: g, S: 0, T: 3, K: 2, Bound: -1},
	}
	for i, ins := range bad {
		if err := ins.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSolutionValidateAndMetrics(t *testing.T) {
	g := mkDiamond(t)
	ins := Instance{G: g, S: 0, T: 3, K: 2, Bound: 100}
	sol := Solution{Paths: []Path{PathFromEdges(0, 2), PathFromEdges(1, 3)}}
	if err := sol.Validate(ins); err != nil {
		t.Fatal(err)
	}
	if sol.Cost(g) != 10 || sol.Delay(g) != 10 {
		t.Fatalf("cost/delay %d/%d", sol.Cost(g), sol.Delay(g))
	}
	ids := sol.EdgeIDs()
	if len(ids) != 4 {
		t.Fatalf("edges %v", ids)
	}
	// Shared edge must be rejected.
	shared := Solution{Paths: []Path{PathFromEdges(0, 2), PathFromEdges(0, 4, 3)}}
	if err := shared.Validate(ins); err == nil {
		t.Fatal("edge sharing accepted")
	}
	// Wrong count.
	one := Solution{Paths: []Path{PathFromEdges(0, 2)}}
	if err := one.Validate(ins); err == nil {
		t.Fatal("wrong path count accepted")
	}
}

func TestInstanceIORoundTrip(t *testing.T) {
	g := mkDiamond(t)
	ins := Instance{G: g, S: 0, T: 3, K: 2, Bound: 10, Name: "diamond test"}
	var buf bytes.Buffer
	if err := WriteInstance(&buf, ins); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.S != ins.S || back.T != ins.T || back.K != ins.K || back.Bound != ins.Bound || back.Name != ins.Name {
		t.Fatalf("header mismatch: %+v", back)
	}
	if back.G.NumNodes() != g.NumNodes() || back.G.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch")
	}
	for _, e := range g.Edges() {
		if back.G.Edge(e.ID) != e {
			t.Fatalf("edge %d mismatch", e.ID)
		}
	}
}

func TestReadInstanceErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus header",
		"krsp v1\nedge 0 1 1 1\n",          // edge before nodes
		"krsp v1\nnodes 2\nedge 0 5 1 1\n", // endpoint out of range
		"krsp v1\nnodes 2\nfrobnicate 1\n", // unknown directive
		"krsp v1\nnodes x\n",               // bad count
		"krsp v1\nnodes 2\nedge 0 1 1\n",   // short edge
		"krsp v1\nnodes 2\nst 0\n",         // short st
		"krsp v1\nnodes 2\nk zz\n",         // bad k
		"krsp v1\nnodes 2\nbound zz\n",     // bad bound
	}
	for i, src := range cases {
		if _, err := ReadInstance(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

func TestReadInstanceSkipsCommentsAndBlank(t *testing.T) {
	src := "krsp v1\n# a comment\n\nnodes 2\nst 0 1\nk 1\nbound 5\nedge 0 1 3 4\n"
	ins, err := ReadInstance(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if ins.G.NumEdges() != 1 || ins.Bound != 5 {
		t.Fatalf("parse wrong: %+v", ins)
	}
}

func TestWriteDOT(t *testing.T) {
	g := mkDiamond(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "demo", NewEdgeSet(0)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph \"demo\"") || !strings.Contains(out, "color=red") {
		t.Fatalf("dot output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "0 -> 1 [label=\"1/2\", color=red") {
		t.Fatalf("highlight edge not rendered:\n%s", out)
	}
}

// randomGraph builds a random digraph for property tests.
func randomGraph(r *rand.Rand, maxN, maxM int) *Digraph {
	n := 2 + r.Intn(maxN-1)
	g := New(n)
	m := r.Intn(maxM + 1)
	for i := 0; i < m; i++ {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		g.AddEdge(u, v, int64(r.Intn(100)), int64(r.Intn(100)))
	}
	return g
}

func TestQuickGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 20, 60)
		if g.Validate() != nil {
			return false
		}
		// Reverse twice preserves edges.
		rr := g.Reverse().Reverse()
		for _, e := range g.Edges() {
			if rr.Edge(e.ID) != e {
				return false
			}
		}
		// Degree sums equal edge count.
		var outSum, inSum int
		for v := 0; v < g.NumNodes(); v++ {
			outSum += g.OutDegree(NodeID(v))
			inSum += g.InDegree(NodeID(v))
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 12, 40)
		ins := Instance{G: g, S: 0, T: 1, K: 1 + r.Intn(3), Bound: int64(r.Intn(1000))}
		var buf bytes.Buffer
		if WriteInstance(&buf, ins) != nil {
			return false
		}
		back, err := ReadInstance(&buf)
		if err != nil {
			return false
		}
		if back.G.NumEdges() != g.NumEdges() || back.Bound != ins.Bound || back.K != ins.K {
			return false
		}
		for _, e := range g.Edges() {
			if back.G.Edge(e.ID) != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOPlusDegreeParity(t *testing.T) {
	// ⊕ preserves per-vertex (out-in) degree balance mod cancellation:
	// cancelling an opposite pair changes both endpoints' balance by zero.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 10, 30)
		var ids []EdgeID
		for _, e := range g.Edges() {
			ids = append(ids, e.ID)
		}
		r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		half := len(ids) / 2
		e1 := NewEdgeSet(ids[:half]...)
		e2 := NewEdgeSet(ids[half:]...)
		balance := func(set EdgeSet) map[NodeID]int {
			b := map[NodeID]int{}
			for _, id := range set.IDs() {
				e := g.Edge(id)
				b[e.From]++
				b[e.To]--
			}
			return b
		}
		union := e1.Union(e2)
		want := balance(union)
		got := balance(OPlus(g, e1, e2))
		for v, x := range want {
			if got[v] != x {
				return false
			}
		}
		for v, x := range got {
			if want[v] != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
