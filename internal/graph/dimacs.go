package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DIMACS-style interop. The shortest-path community's standard exchange
// format is the 9th DIMACS Implementation Challenge ".gr" format:
//
//	c <comment>
//	p sp <n> <m>
//	a <from> <to> <weight>
//
// kRSP instances carry two weights per arc plus terminals, so we read and
// write a conservative extension: arcs carry "a <from> <to> <cost> <delay>"
// and the query is an extra problem line "q <s> <t> <k> <D>". Vertices are
// 1-based on the wire (DIMACS convention) and 0-based in memory. Plain
// single-weight .gr files are accepted too: the weight is used as cost and
// delay both, and the query line may be absent (zero-valued Instance
// fields result).

// WriteDIMACS serializes ins in the extended .gr format.
func WriteDIMACS(w io.Writer, ins Instance) error {
	bw := bufio.NewWriter(w)
	if ins.Name != "" {
		fmt.Fprintf(bw, "c %s\n", ins.Name)
	}
	fmt.Fprintf(bw, "p sp %d %d\n", ins.G.NumNodes(), ins.G.NumEdges())
	fmt.Fprintf(bw, "q %d %d %d %d\n", ins.S+1, ins.T+1, ins.K, ins.Bound)
	for _, e := range ins.G.EdgesView() {
		fmt.Fprintf(bw, "a %d %d %d %d\n", e.From+1, e.To+1, e.Cost, e.Delay)
	}
	return bw.Flush()
}

// ReadDIMACS parses the extended .gr format (and tolerates plain
// single-weight files).
func ReadDIMACS(r io.Reader) (Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var (
		ins  Instance
		g    *Digraph
		line int
	)
	fail := func(format string, args ...any) (Instance, error) {
		return Instance{}, fmt.Errorf("dimacs line %d: %s", line, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "c":
			if ins.Name == "" && len(fields) > 1 {
				ins.Name = strings.TrimSpace(strings.TrimPrefix(text, "c"))
			}
		case "p":
			if len(fields) != 4 || fields[1] != "sp" {
				return fail("want 'p sp <n> <m>', got %q", text)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return fail("bad node count %q", fields[2])
			}
			g = New(n)
			ins.G = g
		case "q":
			if len(fields) != 5 {
				return fail("want 'q <s> <t> <k> <D>'")
			}
			vals := make([]int64, 4)
			for i := 0; i < 4; i++ {
				v, err := strconv.ParseInt(fields[i+1], 10, 64)
				if err != nil {
					return fail("bad query field %q", fields[i+1])
				}
				vals[i] = v
			}
			ins.S, ins.T = NodeID(vals[0]-1), NodeID(vals[1]-1)
			ins.K = int(vals[2])
			ins.Bound = vals[3]
		case "a":
			if g == nil {
				return fail("arc before problem line")
			}
			if len(fields) != 4 && len(fields) != 5 {
				return fail("want 'a <u> <v> <cost> [delay]'")
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			c, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return fail("bad arc %q", text)
			}
			d := c // single-weight files: weight doubles as both criteria
			if len(fields) == 5 {
				d, err3 = strconv.ParseInt(fields[4], 10, 64)
				if err3 != nil {
					return fail("bad delay %q", fields[4])
				}
			}
			if u < 1 || u > g.NumNodes() || v < 1 || v > g.NumNodes() {
				return fail("arc endpoint out of range in %q", text)
			}
			g.AddEdge(NodeID(u-1), NodeID(v-1), c, d)
		default:
			return fail("unknown line type %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return Instance{}, err
	}
	if ins.G == nil {
		return Instance{}, fmt.Errorf("dimacs: missing problem line")
	}
	return ins, nil
}
