package graph

import (
	"fmt"
	"strings"
)

// Path is a directed walk represented by its edge sequence. Every algorithm
// in this repository produces simple paths (no repeated edges); Validate
// additionally checks vertex-level simplicity when asked.
type Path struct {
	Edges []EdgeID
}

// PathFromEdges builds a Path from an explicit edge sequence.
func PathFromEdges(ids ...EdgeID) Path { return Path{Edges: append([]EdgeID(nil), ids...)} }

// Len reports the number of edges.
func (p Path) Len() int { return len(p.Edges) }

// Cost sums edge costs in g.
func (p Path) Cost(g *Digraph) int64 { return g.TotalCost(p.Edges) }

// Delay sums edge delays in g.
func (p Path) Delay(g *Digraph) int64 { return g.TotalDelay(p.Edges) }

// From returns the first vertex of the path; it panics on an empty path.
func (p Path) From(g *Digraph) NodeID { return g.Edge(p.Edges[0]).From }

// To returns the last vertex of the path; it panics on an empty path.
func (p Path) To(g *Digraph) NodeID { return g.Edge(p.Edges[len(p.Edges)-1]).To }

// Nodes returns the vertex sequence of the path (length Len()+1).
func (p Path) Nodes(g *Digraph) []NodeID {
	if len(p.Edges) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(p.Edges)+1)
	out = append(out, g.Edge(p.Edges[0]).From)
	for _, id := range p.Edges {
		out = append(out, g.Edge(id).To)
	}
	return out
}

// Validate checks that p is a contiguous s→t walk in g. With simple=true it
// also rejects repeated vertices.
func (p Path) Validate(g *Digraph, s, t NodeID, simple bool) error {
	if len(p.Edges) == 0 {
		if s == t {
			return nil
		}
		return fmt.Errorf("graph: empty path cannot connect %d→%d", s, t)
	}
	cur := s
	seenV := map[NodeID]bool{s: true}
	seenE := map[EdgeID]bool{}
	for i, id := range p.Edges {
		if int(id) >= g.NumEdges() || id < 0 {
			return fmt.Errorf("graph: path edge %d (#%d) unknown", id, i)
		}
		if seenE[id] {
			return fmt.Errorf("graph: path repeats edge %d", id)
		}
		seenE[id] = true
		e := g.Edge(id)
		if e.From != cur {
			return fmt.Errorf("graph: path edge #%d starts at %d, want %d", i, e.From, cur)
		}
		cur = e.To
		if simple && seenV[cur] && !(cur == t && i == len(p.Edges)-1) {
			return fmt.Errorf("graph: path revisits vertex %d", cur)
		}
		seenV[cur] = true
	}
	if cur != t {
		return fmt.Errorf("graph: path ends at %d, want %d", cur, t)
	}
	return nil
}

// String renders the path as a vertex chain, e.g. "0→3→5".
func (p Path) Format(g *Digraph) string {
	nodes := p.Nodes(g)
	if len(nodes) == 0 {
		return "(empty path)"
	}
	var b strings.Builder
	for i, v := range nodes {
		if i > 0 {
			b.WriteString("->")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Cycle is a closed directed walk represented by its edge sequence: the
// head of the last edge equals the tail of the first.
type Cycle struct {
	Edges []EdgeID
}

// Len reports the number of edges.
func (c Cycle) Len() int { return len(c.Edges) }

// Cost sums edge costs in g.
func (c Cycle) Cost(g *Digraph) int64 { return g.TotalCost(c.Edges) }

// Delay sums edge delays in g.
func (c Cycle) Delay(g *Digraph) int64 { return g.TotalDelay(c.Edges) }

// Validate checks that c is a contiguous closed walk in g with no repeated
// edge. Vertices may repeat only if simple is false.
func (c Cycle) Validate(g *Digraph, simple bool) error {
	if len(c.Edges) == 0 {
		return fmt.Errorf("graph: empty cycle")
	}
	for i, id := range c.Edges {
		if id < 0 || int(id) >= g.NumEdges() {
			return fmt.Errorf("graph: cycle edge %d (#%d) unknown", id, i)
		}
	}
	start := g.Edge(c.Edges[0]).From
	cur := start
	seenE := map[EdgeID]bool{}
	seenV := map[NodeID]bool{}
	for i, id := range c.Edges {
		if int(id) >= g.NumEdges() || id < 0 {
			return fmt.Errorf("graph: cycle edge %d (#%d) unknown", id, i)
		}
		if seenE[id] {
			return fmt.Errorf("graph: cycle repeats edge %d", id)
		}
		seenE[id] = true
		e := g.Edge(id)
		if e.From != cur {
			return fmt.Errorf("graph: cycle edge #%d starts at %d, want %d", i, e.From, cur)
		}
		if simple && seenV[cur] {
			return fmt.Errorf("graph: cycle revisits vertex %d", cur)
		}
		seenV[cur] = true
		cur = e.To
	}
	if cur != start {
		return fmt.Errorf("graph: cycle ends at %d, want %d", cur, start)
	}
	return nil
}

// Format renders the cycle as a vertex chain ending at its start.
func (c Cycle) Format(g *Digraph) string {
	if len(c.Edges) == 0 {
		return "(empty cycle)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d", g.Edge(c.Edges[0]).From)
	for _, id := range c.Edges {
		fmt.Fprintf(&b, "->%d", g.Edge(id).To)
	}
	return b.String()
}
