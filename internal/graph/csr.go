package graph

import "fmt"

// CSR is a frozen compressed-sparse-row view of a Digraph: flat row-start
// offsets into packed adjacency arrays, plus packed per-edge endpoint and
// weight arrays. It exists because the solver's hot kernels (Dijkstra/SPFA/
// Bellman–Ford sweeps, min-cost-flow augmentation rounds) spend their time
// chasing the Digraph's slice-of-slices adjacency, which scatters every
// row header across the heap; the CSR layout turns a row visit into a
// contiguous scan and takes solves from toy sizes to N=10⁴–10⁵.
//
// Topology is frozen at construction: rows always list edges in the
// orientation the source graph had when NewCSR ran, ascending by edge ID
// (AddEdge order; Digraph.FlipEdge maintains the same invariant). Residual
// maintenance never re-packs rows — Flip toggles a per-edge orientation bit
// and negates the packed weights in place, and SetWeights patches weights
// in place. Each mutation bumps an epoch counter so callers that cache
// derived state (orderings, potentials) can detect staleness cheaply.
//
// Kernels recover the CURRENT adjacency of a partially-flipped CSR by
// merging two ID-ascending streams: the non-reversed entries of OutRow(v)
// and the reversed entries of InRow(v). Because both streams ascend and a
// Digraph's adjacency lists are kept ID-sorted by FlipEdge, the merge
// enumerates exactly the edge sequence Digraph.Out(v) would — which is what
// keeps CSR kernels bit-identical to their Digraph counterparts.
type CSR struct {
	n int
	// outStart/outEdge and inStart/inEdge are the forward and reverse
	// adjacency in standard CSR form: row v is colEdge[rowStart[v]:rowStart[v+1]].
	outStart []int32
	outEdge  []EdgeID
	inStart  []int32
	inEdge   []EdgeID
	// from/to are the FROZEN build-time endpoints of each edge; cost/delay
	// are the CURRENT weights (negated in place by Flip).
	from  []NodeID
	to    []NodeID
	cost  []int64
	delay []int64
	// rev[id] reports that edge id currently runs to→from with negated
	// weights relative to the frozen orientation.
	rev   []bool
	flips int
	epoch uint64
}

// NewCSR packs the graph's current topology and weights into a frozen CSR
// view. Cost: O(n + m), about ten allocations total, independent of later
// Flip/SetWeights traffic.
func NewCSR(g *Digraph) *CSR {
	n, m := g.NumNodes(), g.NumEdges()
	c := &CSR{
		n:        n,
		outStart: make([]int32, n+1),
		outEdge:  make([]EdgeID, m),
		inStart:  make([]int32, n+1),
		inEdge:   make([]EdgeID, m),
		from:     make([]NodeID, m),
		to:       make([]NodeID, m),
		cost:     make([]int64, m),
		delay:    make([]int64, m),
		rev:      make([]bool, m),
	}
	var o, i int32
	for v := 0; v < n; v++ {
		c.outStart[v] = o
		o += int32(copy(c.outEdge[o:], g.Out(NodeID(v))))
		c.inStart[v] = i
		i += int32(copy(c.inEdge[i:], g.In(NodeID(v))))
	}
	c.outStart[n] = o
	c.inStart[n] = i
	for idx, e := range g.EdgesView() {
		c.from[idx] = e.From
		c.to[idx] = e.To
		c.cost[idx] = e.Cost
		c.delay[idx] = e.Delay
	}
	return c
}

// NumNodes reports the number of vertices.
func (c *CSR) NumNodes() int { return c.n }

// NumEdges reports the number of edges.
func (c *CSR) NumEdges() int { return len(c.outEdge) }

// OutRow returns the frozen forward row of v: IDs of edges that left v at
// build time, ascending. Entries whose Reversed bit is set now run INTO v;
// kernels skip them and pick the reversed entries of InRow up instead.
//
//krsp:inbounds
func (c *CSR) OutRow(v NodeID) []EdgeID {
	return c.outEdge[c.outStart[v]:c.outStart[v+1]]
}

// InRow returns the frozen reverse row of v (edges that entered v at build
// time, ascending by ID).
//
//krsp:inbounds
func (c *CSR) InRow(v NodeID) []EdgeID {
	return c.inEdge[c.inStart[v]:c.inStart[v+1]]
}

// Tail returns the current source vertex of edge id.
//
//krsp:inbounds
func (c *CSR) Tail(id EdgeID) NodeID {
	if c.rev[id] {
		return c.to[id]
	}
	return c.from[id]
}

// Head returns the current target vertex of edge id.
//
//krsp:inbounds
func (c *CSR) Head(id EdgeID) NodeID {
	if c.rev[id] {
		return c.from[id]
	}
	return c.to[id]
}

// Cost returns the current cost of edge id (negated while reversed).
//
//krsp:inbounds
func (c *CSR) Cost(id EdgeID) int64 { return c.cost[id] }

// Delay returns the current delay of edge id (negated while reversed).
//
//krsp:inbounds
func (c *CSR) Delay(id EdgeID) int64 { return c.delay[id] }

// Reversed reports whether edge id is currently flipped against its frozen
// orientation.
//
//krsp:inbounds
func (c *CSR) Reversed(id EdgeID) bool { return c.rev[id] }

// Mixed reports whether any edge is currently reversed. Kernels use it to
// skip the two-stream merge entirely on never-flipped views (problem
// graphs), where OutRow alone IS the current adjacency.
func (c *CSR) Mixed() bool { return c.flips > 0 }

// Epoch returns the mutation counter: it increments on every Flip and
// SetWeights, so cached state derived from the view can be invalidated by
// comparing epochs instead of diffing arrays.
func (c *CSR) Epoch() uint64 { return c.epoch }

// Flip reverses edge id in place — the residual-graph primitive, mirroring
// Digraph.FlipEdge: direction toggles, both weights negate, the ID stays.
// Rows are untouched (orientation lives in the rev bit), so a flip is O(1)
// where the Digraph's sorted re-insertion is O(deg).
//
//krsp:inbounds
func (c *CSR) Flip(id EdgeID) {
	if c.rev[id] {
		c.flips--
	} else {
		c.flips++
	}
	c.rev[id] = !c.rev[id]
	c.cost[id] = -c.cost[id]
	c.delay[id] = -c.delay[id]
	c.epoch++
}

// SetWeights overwrites the CURRENT cost and delay of edge id in place,
// mirroring Digraph.SetEdgeWeights on the current orientation.
//
//krsp:inbounds
func (c *CSR) SetWeights(id EdgeID, cost, delay int64) {
	c.cost[id] = cost
	c.delay[id] = delay
	c.epoch++
}

// Validate checks the view against the Digraph it should currently mirror:
// same size, same per-edge endpoints and weights under the rev bits, and
// row merges reproducing g's adjacency order exactly. Tests and the
// residual self-heal path use it; it is O(n + m).
func (c *CSR) Validate(g *Digraph) error {
	if c.n != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		return fmt.Errorf("csr: size mismatch: view %d/%d vs graph %d/%d",
			c.n, c.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < c.NumEdges(); i++ {
		id := EdgeID(i)
		e := g.Edge(id)
		if c.Tail(id) != e.From || c.Head(id) != e.To || c.cost[i] != e.Cost || c.delay[i] != e.Delay {
			return fmt.Errorf("csr: edge %d is %d→%d (%d,%d), graph has %d→%d (%d,%d)",
				id, c.Tail(id), c.Head(id), c.cost[i], c.delay[i], e.From, e.To, e.Cost, e.Delay)
		}
	}
	for v := 0; v < c.n; v++ {
		row := g.Out(NodeID(v))
		k := 0
		outRow, inRow := c.OutRow(NodeID(v)), c.InRow(NodeID(v))
		i, j := 0, 0
		for {
			for i < len(outRow) && c.rev[outRow[i]] {
				i++
			}
			for j < len(inRow) && !c.rev[inRow[j]] {
				j++
			}
			var id EdgeID
			switch {
			case i < len(outRow) && (j >= len(inRow) || outRow[i] < inRow[j]):
				id = outRow[i]
				i++
			case j < len(inRow):
				id = inRow[j]
				j++
			default:
				if k != len(row) {
					return fmt.Errorf("csr: out row %d has %d merged edges, graph has %d", v, k, len(row))
				}
				goto nextRow
			}
			if k >= len(row) || row[k] != id {
				return fmt.Errorf("csr: out row %d diverges from graph adjacency at position %d (edge %d)", v, k, id)
			}
			k++
		}
	nextRow:
	}
	return nil
}
