package graph

import (
	"math/rand"
	"testing"
)

// randomDigraph builds a seeded multigraph with parallel edges and a few
// self-loop-free random arcs, mirroring the shapes residual graphs take.
func randomDigraph(seed int64, n, m int) *Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < m; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		for v == u {
			v = NodeID(rng.Intn(n))
		}
		g.AddEdge(u, v, int64(rng.Intn(50)), int64(rng.Intn(50)))
	}
	return g
}

func TestCSRMirrorsFreshGraph(t *testing.T) {
	g := randomDigraph(1, 40, 200)
	c := NewCSR(g)
	if err := c.Validate(g); err != nil {
		t.Fatalf("fresh CSR: %v", err)
	}
	if c.Mixed() {
		t.Fatalf("fresh CSR reports Mixed")
	}
	if c.Epoch() != 0 {
		t.Fatalf("fresh CSR epoch = %d, want 0", c.Epoch())
	}
}

// TestCSRFlipTracksDigraph drives the same random flip sequence through a
// Digraph (sorted re-insertion) and its CSR view (rev bits) and checks the
// merged CSR rows stay bit-identical to the Digraph adjacency — the
// property every residual-path kernel relies on.
func TestCSRFlipTracksDigraph(t *testing.T) {
	g := randomDigraph(2, 30, 150)
	c := NewCSR(g)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 400; step++ {
		id := EdgeID(rng.Intn(g.NumEdges()))
		g.FlipEdge(id)
		c.Flip(id)
		if step%37 == 0 {
			if err := c.Validate(g); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := c.Validate(g); err != nil {
		t.Fatalf("final: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("digraph corrupted: %v", err)
	}
}

func TestCSRFlipIsInvolutive(t *testing.T) {
	g := randomDigraph(3, 10, 40)
	c := NewCSR(g)
	c.Flip(5)
	if !c.Mixed() || !c.Reversed(5) {
		t.Fatalf("flip not recorded")
	}
	e := g.Edge(5)
	if c.Tail(5) != e.To || c.Head(5) != e.From || c.Cost(5) != -e.Cost || c.Delay(5) != -e.Delay {
		t.Fatalf("flip mismatch: %d→%d (%d,%d)", c.Tail(5), c.Head(5), c.Cost(5), c.Delay(5))
	}
	c.Flip(5)
	if c.Mixed() || c.Reversed(5) {
		t.Fatalf("double flip should restore orientation")
	}
	if err := c.Validate(g); err != nil {
		t.Fatalf("after double flip: %v", err)
	}
}

func TestCSREpochAndSetWeights(t *testing.T) {
	g := randomDigraph(4, 10, 40)
	c := NewCSR(g)
	e0 := c.Epoch()
	c.Flip(0)
	if c.Epoch() != e0+1 {
		t.Fatalf("epoch after flip = %d, want %d", c.Epoch(), e0+1)
	}
	c.SetWeights(1, 99, -3)
	if c.Epoch() != e0+2 {
		t.Fatalf("epoch after SetWeights = %d, want %d", c.Epoch(), e0+2)
	}
	if c.Cost(1) != 99 || c.Delay(1) != -3 {
		t.Fatalf("SetWeights not applied: (%d,%d)", c.Cost(1), c.Delay(1))
	}
	g.FlipEdge(0)
	g.SetEdgeWeights(1, 99, -3)
	if err := c.Validate(g); err != nil {
		t.Fatalf("after patching both: %v", err)
	}
}

func TestCSRValidateDetectsDrift(t *testing.T) {
	g := randomDigraph(5, 10, 40)
	c := NewCSR(g)
	g.FlipEdge(2) // mutate the graph only: the view is now stale
	if err := c.Validate(g); err == nil {
		t.Fatalf("Validate missed a stale view")
	}
}
