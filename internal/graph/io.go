package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format for kRSP instances is line-oriented:
//
//	krsp v1
//	# comments start with '#'
//	name <label>          (optional)
//	nodes <n>
//	st <s> <t>
//	k <k>
//	bound <D>
//	edge <u> <v> <cost> <delay>   (repeated)
//
// Header lines may appear in any order but must precede the first edge.

// WriteInstance serializes ins in the text format.
func WriteInstance(w io.Writer, ins Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "krsp v1")
	if ins.Name != "" {
		fmt.Fprintf(bw, "name %s\n", ins.Name)
	}
	fmt.Fprintf(bw, "nodes %d\n", ins.G.NumNodes())
	fmt.Fprintf(bw, "st %d %d\n", ins.S, ins.T)
	fmt.Fprintf(bw, "k %d\n", ins.K)
	fmt.Fprintf(bw, "bound %d\n", ins.Bound)
	for _, e := range ins.G.EdgesView() {
		fmt.Fprintf(bw, "edge %d %d %d %d\n", e.From, e.To, e.Cost, e.Delay)
	}
	return bw.Flush()
}

// ReadInstance parses the text format produced by WriteInstance.
func ReadInstance(r io.Reader) (Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var (
		ins      Instance
		g        *Digraph
		sawMagic bool
		line     int
	)
	fail := func(format string, args ...any) (Instance, error) {
		return Instance{}, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if !sawMagic {
			if len(fields) != 2 || fields[0] != "krsp" || fields[1] != "v1" {
				return fail("expected header 'krsp v1', got %q", text)
			}
			sawMagic = true
			continue
		}
		switch fields[0] {
		case "name":
			ins.Name = strings.TrimSpace(strings.TrimPrefix(text, "name"))
		case "nodes":
			if len(fields) != 2 {
				return fail("nodes wants 1 argument")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return fail("bad node count %q", fields[1])
			}
			g = New(n)
			ins.G = g
		case "st":
			if len(fields) != 3 {
				return fail("st wants 2 arguments")
			}
			s, err1 := strconv.Atoi(fields[1])
			t, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return fail("bad st line %q", text)
			}
			ins.S, ins.T = NodeID(s), NodeID(t)
		case "k":
			if len(fields) != 2 {
				return fail("k wants 1 argument")
			}
			k, err := strconv.Atoi(fields[1])
			if err != nil {
				return fail("bad k %q", fields[1])
			}
			ins.K = k
		case "bound":
			if len(fields) != 2 {
				return fail("bound wants 1 argument")
			}
			d, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return fail("bad bound %q", fields[1])
			}
			ins.Bound = d
		case "edge":
			if g == nil {
				return fail("edge before nodes")
			}
			if len(fields) != 5 {
				return fail("edge wants 4 arguments")
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			c, err3 := strconv.ParseInt(fields[3], 10, 64)
			d, err4 := strconv.ParseInt(fields[4], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return fail("bad edge line %q", text)
			}
			if u < 0 || u >= g.NumNodes() || v < 0 || v >= g.NumNodes() {
				return fail("edge endpoint out of range in %q", text)
			}
			g.AddEdge(NodeID(u), NodeID(v), c, d)
		default:
			return fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return Instance{}, err
	}
	if !sawMagic {
		return Instance{}, fmt.Errorf("empty input: missing 'krsp v1' header")
	}
	if ins.G == nil {
		return Instance{}, fmt.Errorf("missing 'nodes' directive")
	}
	return ins, nil
}

// WriteDOT emits a Graphviz rendering of g. Edges carry "cost/delay"
// labels; edges whose ID is in highlight are drawn bold red (used to show
// solutions).
func WriteDOT(w io.Writer, g *Digraph, name string, highlight EdgeSet) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", name)
	for v := 0; v < g.NumNodes(); v++ {
		fmt.Fprintf(bw, "  %d;\n", v)
	}
	for _, e := range g.EdgesView() {
		attr := ""
		if highlight.m != nil && highlight.Has(e.ID) {
			attr = ", color=red, penwidth=2"
		}
		fmt.Fprintf(bw, "  %d -> %d [label=\"%d/%d\"%s];\n", e.From, e.To, e.Cost, e.Delay, attr)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
