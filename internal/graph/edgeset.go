package graph

// EdgeSet is a set of edge IDs. The zero value is empty but not usable;
// construct with NewEdgeSet.
type EdgeSet struct {
	m map[EdgeID]struct{}
}

// NewEdgeSet builds a set from the given IDs.
func NewEdgeSet(ids ...EdgeID) EdgeSet {
	s := EdgeSet{m: make(map[EdgeID]struct{}, len(ids))}
	for _, id := range ids {
		s.m[id] = struct{}{}
	}
	return s
}

// Add inserts id.
func (s EdgeSet) Add(id EdgeID) { s.m[id] = struct{}{} }

// Remove deletes id; removing an absent ID is a no-op.
func (s EdgeSet) Remove(id EdgeID) { delete(s.m, id) }

// Has reports membership.
func (s EdgeSet) Has(id EdgeID) bool { _, ok := s.m[id]; return ok }

// Len reports the cardinality.
func (s EdgeSet) Len() int { return len(s.m) }

// Each calls fn for every member in unspecified order. Order-insensitive
// consumers (sums, counts) use it to skip the sort-and-allocate of IDs.
func (s EdgeSet) Each(fn func(EdgeID)) {
	for id := range s.m {
		fn(id)
	}
}

// IDs returns the members sorted ascending (deterministic).
func (s EdgeSet) IDs() []EdgeID {
	out := make([]EdgeID, 0, len(s.m))
	//lint:allow detmap collection order is erased by the sort below
	for id := range s.m {
		out = append(out, id)
	}
	return SortedEdgeIDs(out)
}

// Clone returns an independent copy.
func (s EdgeSet) Clone() EdgeSet {
	c := EdgeSet{m: make(map[EdgeID]struct{}, len(s.m))}
	for id := range s.m {
		c.m[id] = struct{}{}
	}
	return c
}

// Union returns s ∪ t.
func (s EdgeSet) Union(t EdgeSet) EdgeSet {
	u := s.Clone()
	for id := range t.m {
		u.m[id] = struct{}{}
	}
	return u
}

// Intersect returns s ∩ t.
func (s EdgeSet) Intersect(t EdgeSet) EdgeSet {
	u := NewEdgeSet()
	for id := range s.m {
		if t.Has(id) {
			u.m[id] = struct{}{}
		}
	}
	return u
}

// Minus returns s \ t.
func (s EdgeSet) Minus(t EdgeSet) EdgeSet {
	u := NewEdgeSet()
	for id := range s.m {
		if !t.Has(id) {
			u.m[id] = struct{}{}
		}
	}
	return u
}

// OPlus implements the paper's ⊕ operator on edge sets of a single graph
// (Section 2.1): E1 ⊕ E2 is E1 ∪ E2 with every pair of opposite parallel
// edges {e(u,v), e'(v,u)} removed. In the flow view this cancels a unit of
// forward flow against a unit of reverse flow.
//
// Identification of "opposite parallel" pairs is positional: an edge u→v in
// the union cancels against an edge v→u in the union. When several
// candidates exist (multigraph), pairs are cancelled greedily in ascending
// ID order, which is the standard flow-cancellation semantics: the paper's
// residual graphs never contain both an edge and its reverse inside the
// same operand, so the greedy choice is canonical there.
func OPlus(g *Digraph, e1, e2 EdgeSet) EdgeSet {
	union := e1.Union(e2)
	ids := union.IDs()
	// Bucket edges of the union by unordered endpoint pair, then cancel
	// opposite directions pairwise.
	type key struct{ a, b NodeID }
	norm := func(u, v NodeID) key {
		if u <= v {
			return key{u, v}
		}
		return key{v, u}
	}
	buckets := make(map[key][]EdgeID)
	for _, id := range ids {
		e := g.Edge(id)
		k := norm(e.From, e.To)
		buckets[k] = append(buckets[k], id)
	}
	dropped := NewEdgeSet()
	// Re-walk ids so buckets are processed in first-seen (ascending edge
	// ID) order; ranging over the map would order cancellations by hash.
	for _, id := range ids {
		e := g.Edge(id)
		k := norm(e.From, e.To)
		members, pending := buckets[k]
		if !pending {
			continue
		}
		delete(buckets, k)
		var fwd, bwd []EdgeID // k.a→k.b and k.b→k.a respectively
		for _, id := range members {
			if g.Edge(id).From == k.a {
				fwd = append(fwd, id)
			} else {
				bwd = append(bwd, id)
			}
		}
		n := len(fwd)
		if len(bwd) < n {
			n = len(bwd)
		}
		for i := 0; i < n; i++ {
			dropped.Add(fwd[i])
			dropped.Add(bwd[i])
		}
	}
	return union.Minus(dropped)
}
