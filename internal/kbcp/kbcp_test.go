package kbcp

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
)

func tradeoff() graph.Instance {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	return graph.Instance{G: g, S: 0, T: 3, K: 2}
}

func TestSolveBothBoundsLoose(t *testing.T) {
	ins := tradeoff()
	ins.Bound = 30 // D
	res, err := Solve(ins, 20, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostFactor > 1 || res.DelayFactor > 1 {
		t.Fatalf("loose bounds should be met: %+v", res)
	}
	if err := res.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTightCostBound(t *testing.T) {
	// C = 5 forces the cheap pair (cost 5, delay 25): the cost-bounded
	// orientation should find it, paying delay instead.
	ins := tradeoff()
	ins.Bound = 25
	res, err := Solve(ins, 5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostFactor > 2.0+1e-9 || res.DelayFactor > 2.0+1e-9 {
		t.Fatalf("bifactor blown: %+v", res)
	}
}

func TestSolveInfeasible(t *testing.T) {
	ins := tradeoff()
	ins.Bound = 3 // below min delay 7
	// Cost bound also below min cost 5 → both orientations fail.
	if _, err := Solve(ins, 2, core.Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	ins := tradeoff()
	ins.Bound = 10
	if _, err := Solve(ins, -1, core.Options{}); err == nil {
		t.Fatal("negative cost bound accepted")
	}
	ins.K = 0
	if _, err := Solve(ins, 10, core.Options{}); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

// TestBifactorGuarantee: whenever BOTH bounds are simultaneously
// satisfiable, at least one orientation returns a solution with one factor
// ≤ 1 and the other ≤ 2 (the kRSP reduction's promise).
func TestBifactorGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(8)), int64(r.Intn(8)))
			}
		}
		ins := graph.Instance{G: g, S: 0, T: graph.NodeID(n - 1), K: 1 + r.Intn(2)}
		// Pick a simultaneously-achievable (C, D) pair by solving once with
		// a loose bound and using that solution's own measures.
		ins.Bound = 1 << 30
		probe, err := core.Solve(ins, core.Options{})
		if err != nil {
			return true // no k disjoint paths at all: skip
		}
		costBound := probe.Cost + r.Int63n(5)
		ins.Bound = probe.Delay + r.Int63n(5)
		res, err := Solve(ins, costBound, core.Options{})
		if err != nil {
			return false // a feasible witness exists, kBCP must answer
		}
		minFac := res.CostFactor
		maxFac := res.DelayFactor
		if minFac > maxFac {
			minFac, maxFac = maxFac, minFac
		}
		return minFac <= 1+1e-9 && maxFac <= 2+1e-9 &&
			res.Solution.Validate(ins) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOrientationLabels(t *testing.T) {
	ins := tradeoff()
	ins.Bound = 25
	res, err := Solve(ins, 100, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Orientation != "delay-bounded" && res.Orientation != "cost-bounded" {
		t.Fatalf("orientation %q", res.Orientation)
	}
}
