// Package kbcp solves the k disjoint Bi-Constrained Path problem the paper
// positions as the weaker sibling of kRSP (§1.2): given BOTH a cost bound C
// and a delay bound D, find k edge-disjoint s→t paths with Σc(P_i) ≤ C and
// Σd(P_i) ≤ D. As the paper notes, "all approximations of kRSP can be
// adopted to solve kBCP, but not the other way around": we run the kRSP
// solver in both orientations (delay-bounded minimizing cost, and
// cost-bounded minimizing delay, by swapping the weight roles) and return
// the orientation with the smaller worst violation factor.
package kbcp

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// ErrInfeasible reports that no k disjoint paths exist at all, or neither
// orientation produced a solution.
var ErrInfeasible = errors.New("kbcp: infeasible")

// Result is a kBCP answer with its bifactor certificate.
type Result struct {
	Solution graph.Solution
	Cost     int64
	Delay    int64
	// CostFactor = Cost/C and DelayFactor = Delay/D; a value ≤ 1 means the
	// corresponding bound is met. The kRSP reduction guarantees one factor
	// ≤ 1 and the other ≤ 2 (+ε under scaling) whenever the instance is
	// feasible.
	CostFactor, DelayFactor float64
	// Orientation records which reduction produced the answer:
	// "delay-bounded" (plain kRSP) or "cost-bounded" (roles swapped).
	Orientation string
}

// worst returns the larger violation factor.
func (r Result) worst() float64 {
	if r.CostFactor > r.DelayFactor {
		return r.CostFactor
	}
	return r.DelayFactor
}

// Solve runs both kRSP orientations and returns the better certificate.
// costBound is the C of the kBCP instance; ins.Bound is the D.
func Solve(ins graph.Instance, costBound int64, opt core.Options) (Result, error) {
	if err := ins.Validate(); err != nil {
		return Result{}, err
	}
	if costBound < 0 {
		return Result{}, fmt.Errorf("kbcp: negative cost bound %d", costBound)
	}
	var best *Result

	// Orientation 1: delay-bounded kRSP (minimize cost subject to Σd ≤ D).
	if res, err := core.Solve(ins, opt); err == nil {
		r := mk(ins.G, res.Solution, costBound, ins.Bound, "delay-bounded")
		best = &r
	}

	// Orientation 2: swap weight roles — bound the cost, minimize delay.
	swapped := graph.New(ins.G.NumNodes())
	for _, e := range ins.G.EdgesView() {
		swapped.AddEdge(e.From, e.To, e.Delay, e.Cost) // cost↔delay
	}
	sIns := graph.Instance{G: swapped, S: ins.S, T: ins.T, K: ins.K,
		Bound: costBound, Name: ins.Name + " (swapped)"}
	if res, err := core.Solve(sIns, opt); err == nil {
		// Paths carry the same edge IDs in both graphs.
		r := mk(ins.G, res.Solution, costBound, ins.Bound, "cost-bounded")
		if best == nil || r.worst() < best.worst() {
			best = &r
		}
	}

	if best == nil {
		return Result{}, ErrInfeasible
	}
	return *best, nil
}

func mk(g *graph.Digraph, sol graph.Solution, costBound, delayBound int64, orientation string) Result {
	c, d := sol.Cost(g), sol.Delay(g)
	r := Result{Solution: sol, Cost: c, Delay: d, Orientation: orientation}
	if costBound > 0 {
		r.CostFactor = float64(c) / float64(costBound)
	} else if c > 0 {
		r.CostFactor = float64(c)
	}
	if delayBound > 0 {
		r.DelayFactor = float64(d) / float64(delayBound)
	} else if d > 0 {
		r.DelayFactor = float64(d)
	}
	return r
}
