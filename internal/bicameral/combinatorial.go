package bicameral

import (
	"repro/internal/auxgraph"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/residual"
	"repro/internal/shortest"
)

// findCombinatorial is the primary engine: for an escalating cost budget B
// it builds the TwoSided layered graph (wrap edges at every reversed-edge
// endpoint) and runs negative-cycle detection under the combined weight
// W(e) = ΔC·d(e) − ΔD·c(e). Any W-negative cycle projects onto residual
// cycles among which at least one has W < 0, i.e. is bicameral up to the
// cost cap. Budgets escalate until min(MaxBudget, Σ|c|): at that point
// every residual cycle is representable (prefix cost sums are bounded by
// Σ|c|), so a combinatorially complete answer is reached.
func findCombinatorial(rg *residual.Graph, p Params, o Options) (Candidate, Stats, bool) {
	var st Stats
	seeds := rg.ReversedSeeds()
	if len(seeds) == 0 {
		// Without reversed edges every edge has W ≥ 0 (ΔC>0, ΔD<0 against
		// nonnegative weights): no bicameral cycle can exist.
		return Candidate{}, st, false
	}
	// The fast-path detection rounds below run on the residual's CSR view:
	// flat weight arrays for the scans here, packed rows for the SPFA sweeps.
	view := rg.View()
	m := view.NumEdges()
	sumAbs := int64(0)
	for i := 0; i < m; i++ {
		if c := view.Cost(graph.EdgeID(i)); c >= 0 {
			sumAbs += c
		} else {
			sumAbs -= c
		}
	}
	// Default ceiling is Σ|c|: prefix cost sums of ANY simple cycle fit in
	// [−Σ|c|, Σ|c|], so escalating to sumAbs makes the search complete.
	// Note the cap does NOT bound the ceiling — a cap-respecting cycle may
	// have prefix sums far above its total cost.
	maxB := o.MaxBudget
	if maxB <= 0 {
		maxB = sumAbs
	}
	if sumAbs >= 1 && maxB > sumAbs {
		maxB = sumAbs
	}
	if maxB < 1 {
		maxB = 1
	}
	b := o.InitialBudget
	if b < 1 {
		b = 1
	}
	if b > maxB {
		b = maxB
	}
	// Detection weights. Definition 10's type-1/2 allow boundary cycles
	// with W = 0 exactly (d·ΔC = ΔD·c), which pure W<0 detection misses.
	// Lexicographic weights make them strictly negative: a cycle is
	// negative under W·K + d iff W < 0, or W = 0 with negative delay
	// (a boundary type-1); under W·K + c iff W < 0, or W = 0 with negative
	// cost (a boundary type-2). K > n·max(|d|,|c|) prevents the secondary
	// term from flipping the primary's sign over any simple cycle.
	maxW := int64(1)
	for i := 0; i < m; i++ {
		if a := abs64(view.Delay(graph.EdgeID(i))); a > maxW {
			maxW = a
		}
		if a := abs64(view.Cost(graph.EdgeID(i))); a > maxW {
			maxW = a
		}
	}
	k := int64(rg.R.NumNodes()+1)*maxW + 1
	wOf := func(e graph.Edge) int64 { return p.Weight(e)*k + e.Delay } //lint:allow weightovf Find's entry guard keeps |Δ|·maxW·K below 2^61

	var best Candidate
	haveBest := false

	// Adversarial mode (experiment E3 only) wants the WORST qualifying
	// cycle, which detection-based search cannot rank; use the complete
	// enumerator directly (E3 instances are tiny).
	if o.Adversarial {
		if cand, found, _ := enumerateQualifying(rg, p, o, &st); found {
			return cand, st, true
		}
	}

	// Fast path: look for negative-W cycles in the residual graph itself,
	// with no cost-layer constraint. If none exists at all, no bicameral
	// cycle exists at ANY budget (bicameral ⇒ W < 0) and the layered
	// machinery can be skipped entirely. When a detected cycle fails the
	// cap, its edges are excluded and detection restarts — the detector
	// would otherwise keep returning the same dominating cycle and mask
	// qualifying ones.
	alive := make([]bool, rg.R.NumEdges())
	for i := range alive {
		alive[i] = true
	}
	anyNegative := false
	// Excluded edges are masked by a sentinel weight instead of cloning the
	// graph minus them (the clone dominated the engine's allocations): with
	// all-sources detection every tentative distance is ≤ 0 and only ever
	// decreases, so a relaxation through a sentinel edge (du + sentinel > 0)
	// can never win — the edge is unreachable without rebuilding anything.
	// The CSR kernel applies the same sentinel to !alive edges internally;
	// Find's overflow guard keeps |du| < 2^61, so the sum cannot overflow.
	// The lexicographic weights in LinWeight form: W(e)·K + d and W(e)·K + c
	// expanded over W(e) = ΔC·d − ΔD·c (two's-complement distributivity
	// keeps them bitwise equal to the closure forms at any magnitude).
	weights := []shortest.LinWeight{
		{Q: -p.DeltaD * k, P: p.DeltaC*k + 1},
		{Q: -p.DeltaD*k + 1, P: p.DeltaC * k},
	}
	wi := 0
	// One workspace serves every sequential search below: the detection
	// rounds here and the shared layered sweeps (it grows to layered size on
	// first use). The parallel per-seed sweep takes one workspace per worker.
	ws := shortest.NewWorkspace(rg.R.NumNodes())
	ws.SetMetrics(o.Metrics.ShortestMetrics())
	ws.SetCancel(o.Cancel)
	for round := 0; round <= 2*rg.R.NumEdges()+1; round++ {
		if o.Cancel.Stopped() {
			// A cancelled kernel reports "no cycle"; don't let that masquerade
			// as the completeness proof below — bail out as not-found and let
			// core read Stopped().
			return Candidate{}, st, false
		}
		st.Searches++
		_, cyc, noNeg := shortest.SPFAAllCSRInto(ws, view, weights[wi], alive)
		if noNeg {
			if wi+1 < len(weights) {
				// Switch to the cost-lexicographic weight with a fresh
				// exclusion slate (boundary type-2 hunting).
				wi++
				for i := range alive {
					alive[i] = true
				}
				continue
			}
			break
		}
		anyNegative = true
		base := graph.Cycle{Edges: cyc.Edges}
		cc, dd := rg.CycleCost(base), rg.CycleDelay(base)
		st.Candidates++
		cand := Candidate{Cycles: []graph.Cycle{base}, Cost: cc, Delay: dd,
			Type: Classify(cc, dd, p)}
		if cand.Type != TypeNone {
			return cand, st, true
		}
		if st.Fallback == nil || p.Weight(graph.Edge{Cost: cc, Delay: dd}) <
			p.Weight(graph.Edge{Cost: st.Fallback.Cost, Delay: st.Fallback.Delay}) {
			ccopy := cand
			st.Fallback = &ccopy
		}
		for _, id := range cyc.Edges {
			alive[id] = false
		}
	}
	if !anyNegative {
		return Candidate{}, st, false
	}

	// Bounded exhaustive fallback: a W<0 cycle exists but every detected
	// one failed the cap. Enumerate simple residual cycles outright (with a
	// step budget); complete whenever the budget is not exhausted, which
	// covers all small and medium instances. Detection + exclusion above is
	// a heuristic: overlapping negative cycles can mask qualifying ones.
	if cand, found, exhausted := enumerateQualifying(rg, p, o, &st); found {
		return cand, st, true
	} else if !exhausted {
		// Enumeration completed without finding a candidate: none exists.
		return Candidate{}, st, false
	}

	// Work guard: layered graphs have (2B+1)·n vertices; past a few million
	// states the search costs more than the guarantee it buys, and the
	// caller's fallback (relaxed cap or the feasible phase-1 flow) keeps
	// the output correct. The guard only trims the adversarial tail — the
	// fast path and the enumerator have already handled everything else.
	const maxStates = 1_000_000
	// relaxBudget caps each layered detection pass: SPFA's worst case is
	// O(V·E), hopeless on million-state graphs; a budget keeps the layered
	// phase best-effort (its misses are covered by the enumerator and the
	// caller's fallbacks).
	const relaxBudget = 1_000_000
	nodes64 := int64(rg.R.NumNodes() + rg.R.NumEdges())
	for {
		if o.Cancel.Check() {
			break
		}
		if (2*b+1)*nodes64 > maxStates {
			break
		}
		st.BudgetsTried++
		st.LastBudget = b
		a := auxgraph.BuildShared(rg.R, seeds, b)
		st.Searches++
		hCyc, negFound, _ := shortest.SPFAAllBoundedInto(ws, a.H, wOf, relaxBudget)
		if negFound {
			cands := candidatesFromWalk(rg, a, hCyc.Edges, p, &st)
			for _, c := range cands {
				if c.Type == TypeNone {
					continue
				}
				if !haveBest || better(c, best, o.Adversarial) {
					best, haveBest = c, true
				}
			}
			if haveBest {
				return best, st, true
			}
			// The detected cycle produced no cap-respecting candidate. Try
			// per-seed graphs for structural diversity before escalating —
			// unless the combined state count across seeds blows the work
			// guard, in which case budgets keep escalating without it.
			perSeed := seeds
			if int64(len(seeds))*(2*b+1)*nodes64 > maxStates {
				perSeed = nil
			}
			if cand, found := sweepSeeds(rg, perSeed, b, wOf, relaxBudget, p, o, &st); found {
				return cand, st, true
			}
		}
		if b >= maxB {
			break
		}
		if o.FullSweep {
			b++
		} else {
			b *= 2
			if b > maxB {
				b = maxB
			}
		}
	}
	return Candidate{}, st, false
}

// candidatesFromWalk projects a closed H-walk to residual cycles and emits
// classified candidates: every vertex-simple projected cycle individually,
// plus — when the projected cycles share no residual edge — the whole
// bundle. W<0 walks whose bundle violates the cost cap feed Stats.Fallback.
func candidatesFromWalk(rg *residual.Graph, a *auxgraph.Aux, hEdges []graph.EdgeID, p Params, st *Stats) []Candidate {
	cycles := a.ProjectWalk(hEdges)
	if len(cycles) == 0 {
		return nil
	}
	var out []Candidate
	consider := func(c Candidate) {
		st.Candidates++
		c.Type = Classify(c.Cost, c.Delay, p)
		if c.Type != TypeNone {
			out = append(out, c)
			return
		}
		// Track a relaxed-cap fallback: W < 0 but |cost| over the cap.
		if p.DeltaC*c.Delay-p.DeltaD*c.Cost < 0 { //lint:allow weightovf combined weight W; bounded by Find's entry guard
			if st.Fallback == nil || p.DeltaC*c.Delay-p.DeltaD*c.Cost < //lint:allow weightovf combined weight W; bounded by Find's entry guard
				p.DeltaC*st.Fallback.Delay-p.DeltaD*st.Fallback.Cost { //lint:allow weightovf combined weight W; bounded by Find's entry guard
				cc := c
				st.Fallback = &cc
			}
		}
	}
	seen := graph.NewEdgeSet()
	disjoint := true
	var totC, totD int64
	for _, cyc := range cycles {
		cc := rg.CycleCost(cyc)
		dd := rg.CycleDelay(cyc)
		totC += cc
		totD += dd
		consider(Candidate{Cycles: []graph.Cycle{cyc}, Cost: cc, Delay: dd})
		for _, id := range cyc.Edges {
			if seen.Has(id) {
				disjoint = false
			}
			seen.Add(id)
		}
	}
	if disjoint && len(cycles) > 1 {
		consider(Candidate{Cycles: cycles, Cost: totC, Delay: totD})
	}
	// Wrap-segment bundles: pieces of the H-cycle between consecutive wrap
	// edges project to closed base walks whose total cost sits inside
	// [−B, B] even when the full bundle does not. Only closed segments with
	// unique base edges are usable (Proposition 7 needs edge-disjointness).
	var segment []graph.EdgeID
	flush := func() {
		if len(segment) == 0 {
			return
		}
		first := a.Base.Edge(segment[0])
		last := a.Base.Edge(segment[len(segment)-1])
		uniq := graph.NewEdgeSet(segment...)
		if first.From == last.To && uniq.Len() == len(segment) {
			segCycles := flowSplit(a.Base, segment)
			segSeen := graph.NewEdgeSet()
			segDisjoint := true
			var c, d int64
			for _, sc := range segCycles {
				c += rg.CycleCost(sc)  //lint:allow weightovf cycle sums over MaxWeight-capped edges; ≤ m·MaxWeight
				d += rg.CycleDelay(sc) //lint:allow weightovf cycle sums over MaxWeight-capped edges; ≤ m·MaxWeight
				for _, id := range sc.Edges {
					if segSeen.Has(id) {
						segDisjoint = false
					}
					segSeen.Add(id)
				}
			}
			if segDisjoint && len(segCycles) > 1 {
				consider(Candidate{Cycles: segCycles, Cost: c, Delay: d})
			}
		}
		segment = segment[:0]
	}
	for _, id := range hEdges {
		if a.ResEdge(id) < 0 {
			flush()
			continue
		}
		segment = append(segment, a.ResEdge(id))
	}
	flush()
	return out
}

// flowSplit adapts flow.SplitClosedWalk for the projection of segments.
func flowSplit(base *graph.Digraph, walk []graph.EdgeID) []graph.Cycle {
	return flow.SplitClosedWalk(base, walk)
}
