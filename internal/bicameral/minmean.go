package bicameral

import (
	"repro/internal/graph"
	"repro/internal/residual"
	"repro/internal/shortest"
)

// findMinRatio is the prior-work engine modelled on [12, 18]: those papers
// zero out the COST of reversed residual edges so that all costs stay
// nonnegative, then search for the cycle minimizing d(O)/c(O) — computable
// in polynomial time precisely because only one weight goes negative. We
// reproduce that search with a parametric negative-cycle test (μ = p/q,
// weight q·d(e) − p·ĉ(e) with ĉ = max(c, 0)) and then classify the found
// cycle against Definition 10 using the TRUE residual costs. The engine is
// an E8 ablation arm: it shows what the pre-bicameral technique finds and
// misses on residual graphs where both weights are negative.
func findMinRatio(rg *residual.Graph, p Params, o Options) (Candidate, Stats, bool) {
	var st Stats
	seeds := rg.ReversedSeeds()
	if len(seeds) == 0 {
		return Candidate{}, st, false
	}
	cHat := func(e graph.Edge) int64 {
		if e.Cost < 0 {
			return 0
		}
		return e.Cost
	}
	// One workspace for the whole parametric search: up to ~50 SPFA sweeps
	// share it (extracted cycles are fresh slices, so reuse is safe).
	ws := shortest.NewWorkspace(rg.R.NumNodes())

	// Fast exits: a plain negative-delay cycle (the μ → −∞ limit).
	st.Searches++
	if _, cyc, ok := shortest.SPFAAllInto(ws, rg.R, shortest.DelayWeight); !ok {
		if cand, good := classifyCycle(rg, cyc, p, &st); good {
			return cand, st, true
		}
	}

	// Parametric search: the most negative feasible ratio μ = d/ĉ over
	// cycles with ĉ > 0. Binary search on p/q with integer weights.
	sumD := int64(0)
	for _, e := range rg.R.EdgesView() {
		if e.Delay >= 0 {
			sumD += e.Delay //lint:allow weightovf Σ|d| over MaxWeight-capped edges; ≤ m·MaxWeight
		} else {
			sumD -= e.Delay
		}
	}
	lo, hi := -sumD, int64(0) // μ ∈ [−Σ|d|, 0]
	var bestCycle graph.Cycle
	haveCycle := false
	for iter := 0; iter < 48 && lo < hi; iter++ {
		mid := lo + (hi-lo)/2 // try to certify a cycle with d − μ·ĉ < 0
		w := func(e graph.Edge) int64 { return e.Delay - mid*cHat(e) }
		st.Searches++
		if _, cyc, ok := shortest.SPFAAllInto(ws, rg.R, w); !ok {
			bestCycle = cyc
			haveCycle = true
			hi = mid // a cycle with ratio < mid exists: tighten upward bound
		} else {
			lo = mid + 1
		}
	}
	if !haveCycle {
		return Candidate{}, st, false
	}
	if cand, good := classifyCycle(rg, bestCycle, p, &st); good {
		return cand, st, true
	}
	return Candidate{}, st, false
}

// classifyCycle measures a residual cycle with TRUE weights and applies
// Definition 10, recording a fallback when it only fails the cap.
func classifyCycle(rg *residual.Graph, cyc graph.Cycle, p Params, st *Stats) (Candidate, bool) {
	cc, dd := rg.CycleCost(cyc), rg.CycleDelay(cyc)
	st.Candidates++
	cand := Candidate{Cycles: []graph.Cycle{cyc}, Cost: cc, Delay: dd,
		Type: Classify(cc, dd, p)}
	if cand.Type != TypeNone {
		return cand, true
	}
	if p.DeltaC*dd-p.DeltaD*cc < 0 && st.Fallback == nil {
		c := cand
		st.Fallback = &c
	}
	return cand, false
}
