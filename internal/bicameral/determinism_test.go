package bicameral_test

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/bicameral"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/residual"
)

// findInputs builds realistic Find inputs the way Solve does: phase 1's
// bound-violating endpoint against the LP-derived parameters. Instances
// where phase 1 is already exact (no cancellation needed) return ok=false.
func findInputs(t *testing.T, ins graph.Instance) (*residual.Graph, bicameral.Params, bool) {
	t.Helper()
	p1, err := core.Phase1(ins)
	if err != nil || p1.Exact {
		return nil, bicameral.Params{}, false
	}
	g := ins.G
	cur := p1.Hi.Edges
	curCost, curDelay := p1.Hi.Cost(g), p1.Hi.Delay(g)
	if curDelay <= ins.Bound {
		return nil, bicameral.Params{}, false
	}
	cRef := p1.CLPCeil
	if cRef <= curCost {
		cRef = curCost + 1
	}
	return residual.Build(g, cur), bicameral.Params{
		DeltaD:  ins.Bound - curDelay,
		DeltaC:  cRef - curCost,
		CostCap: cRef,
	}, true
}

// TestFindWorkerDeterminism: the combinatorial engine must return a
// bit-identical Candidate and Stats for Workers ∈ {1, 4, GOMAXPROCS} — the
// parallel sweep replays the serial visit order, so worker count may only
// change wall-clock time, never the answer.
func TestFindWorkerDeterminism(t *testing.T) {
	mks := []func(seed int64) graph.Instance{
		func(s int64) graph.Instance { return gen.ER(s, 14+int(s%10), 0.25, gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.Grid(s, 4, 4, gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.Layered(s, 4, 4, 0.6, gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.Geometric(s, 16, 0.4, gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.ISP(s, 7, 2, gen.DefaultWeights()) },
	}
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	checked := 0
	for round := 0; round < 30; round++ {
		ins := mks[round%len(mks)](int64(round))
		ins.K = 1 + round%2
		bounded, ok := gen.WithBound(ins, 1.1+0.07*float64(round%5))
		if !ok {
			continue
		}
		rg, params, ok := findInputs(t, bounded)
		if !ok {
			continue
		}
		type outcome struct {
			cand  bicameral.Candidate
			stats bicameral.Stats
			found bool
		}
		var base outcome
		for ci, w := range counts {
			// Find mutates nothing, so the same residual serves every run.
			cand, stats, found := bicameral.Find(rg, params, bicameral.Options{Workers: w})
			got := outcome{cand: cand, stats: stats, found: found}
			if ci == 0 {
				base = got
				continue
			}
			if got.found != base.found {
				t.Fatalf("%s: found=%v with %d workers, %v with 1", bounded.Name, got.found, w, base.found)
			}
			if !reflect.DeepEqual(got.cand, base.cand) {
				t.Fatalf("%s: candidate differs with %d workers:\n  1: %+v\n  %d: %+v",
					bounded.Name, w, base.cand, w, got.cand)
			}
			if got.stats.BudgetsTried != base.stats.BudgetsTried {
				t.Fatalf("%s: BudgetsTried %d with %d workers, %d with 1",
					bounded.Name, got.stats.BudgetsTried, w, base.stats.BudgetsTried)
			}
			if !reflect.DeepEqual(got.stats, base.stats) {
				t.Fatalf("%s: stats differ with %d workers:\n  1: %+v\n  %d: %+v",
					bounded.Name, w, base.stats, w, got.stats)
			}
		}
		checked++
	}
	if checked < 8 {
		t.Fatalf("only %d instances reached Find; generators too tame", checked)
	}
}

// TestSolveWorkerDeterminism runs the whole solver with different worker
// counts: identical Results, including iteration-level stats.
func TestSolveWorkerDeterminism(t *testing.T) {
	for round := 0; round < 8; round++ {
		ins := gen.ER(int64(100+round), 16, 0.3, gen.DefaultWeights())
		ins.K = 1 + round%2
		bounded, ok := gen.WithBound(ins, 1.15)
		if !ok {
			continue
		}
		r1, err1 := core.Solve(bounded, core.Options{Workers: 1})
		rN, errN := core.Solve(bounded, core.Options{Workers: runtime.GOMAXPROCS(0)})
		if (err1 == nil) != (errN == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", bounded.Name, err1, errN)
		}
		if err1 != nil {
			continue
		}
		if !reflect.DeepEqual(r1, rN) {
			t.Fatalf("%s: results differ across worker counts:\n  1: %+v\n  N: %+v",
				bounded.Name, r1, rN)
		}
	}
}
