package bicameral

import (
	"errors"

	"repro/internal/auxgraph"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/residual"
)

// findLP is the paper-faithful engine: Algorithm 3 with LP (6). For each
// budget B and each seed vertex v it builds H_v^+(B) and H_v^-(B), solves
//
//	min  Σ_{e∈H} c(e)·x(e)
//	s.t. flow conservation at every vertex of H
//	     Σ_{e∈H} d(e)·x(e) ≤ ΔD
//	     0 ≤ x(e) ≤ 1
//
// with the in-repo simplex, and releases the cycles in the support of the
// optimum (the “rounding” step: x(e) → 1 on extracted cycles). Exact
// integer classification then filters bicameral candidates. The box
// x ≤ 1 is not in the paper's LP but keeps it bounded; every single simple
// cycle of H remains feasible, which is all the rounding step consumes.
func findLP(rg *residual.Graph, p Params, o Options) (Candidate, Stats, bool) {
	var st Stats
	seeds := rg.ReversedSeeds()
	if len(seeds) == 0 {
		return Candidate{}, st, false
	}
	maxB := o.MaxBudget
	if maxB <= 0 {
		maxB = p.CostCap
	}
	if maxB < 1 {
		maxB = 1
	}
	b := o.InitialBudget
	if b < 1 {
		b = 1
	}
	if b > maxB {
		b = maxB
	}
	var best Candidate
	haveBest := false
	for {
		if o.Cancel.Check() {
			// Cancelled: not-found without a completeness claim (callers
			// re-check the Canceller, see Options.Cancel).
			return Candidate{}, st, false
		}
		st.BudgetsTried++
		st.LastBudget = b
		for _, v := range seeds {
			for _, kind := range []auxgraph.Kind{auxgraph.Plus, auxgraph.Minus} {
				a := auxgraph.Build(rg.R, v, b, kind)
				st.Searches++
				for _, cand := range lpCandidates(rg, a, p, o, &st) {
					if cand.Type == TypeNone {
						continue
					}
					if !haveBest || better(cand, best, o.Adversarial) {
						best, haveBest = cand, true
					}
				}
			}
		}
		if haveBest {
			return best, st, true
		}
		if b >= maxB {
			break
		}
		if o.FullSweep {
			b++
		} else {
			b *= 2
			if b > maxB {
				b = maxB
			}
		}
	}
	return Candidate{}, st, false
}

// lpCandidates solves LP (6) on one auxiliary graph and extracts support
// cycles as candidates.
func lpCandidates(rg *residual.Graph, a *auxgraph.Aux, p Params, o Options, st *Stats) []Candidate {
	h := a.H
	m := h.NumEdges()
	if m == 0 {
		return nil
	}
	// Injected LP-rounding failure: this auxiliary graph yields no
	// candidates, exactly like a numerically troubled simplex run below.
	if err := o.Faults.Check(fault.PointLPRound); err != nil {
		return nil
	}
	prob := lp.NewProblem(m)
	for _, e := range h.EdgesView() {
		prob.SetObjective(int(e.ID), float64(e.Cost))
		prob.AddBound(int(e.ID), 1)
	}
	// Conservation at every H vertex that touches an edge.
	for v := 0; v < h.NumNodes(); v++ {
		outs := h.Out(graph.NodeID(v))
		ins := h.In(graph.NodeID(v))
		if len(outs) == 0 && len(ins) == 0 {
			continue
		}
		var coefs []lp.Coef
		for _, id := range outs {
			coefs = append(coefs, lp.Coef{Var: int(id), Val: 1})
		}
		for _, id := range ins {
			coefs = append(coefs, lp.Coef{Var: int(id), Val: -1})
		}
		prob.AddRow(coefs, lp.EQ, 0)
	}
	// Σ d(e) x(e) ≤ ΔD (< 0 while the delay bound is violated: forces a
	// delay-negative circulation).
	var dRow []lp.Coef
	for _, e := range h.EdgesView() {
		if e.Delay != 0 {
			dRow = append(dRow, lp.Coef{Var: int(e.ID), Val: float64(e.Delay)})
		}
	}
	prob.AddRow(dRow, lp.LE, float64(p.DeltaD))
	sol, err := prob.Solve()
	if err != nil {
		if errors.Is(err, lp.ErrInfeasible) {
			return nil // no qualifying circulation in this H
		}
		return nil // numerical trouble: treat as no candidates
	}
	// Release cycles from the fractional support and classify each.
	support := make([]float64, m)
	copy(support, sol.X)
	var out []Candidate
	for iter := 0; iter < m; iter++ {
		hCycle := extractSupportCycle(h, support)
		if hCycle == nil {
			break
		}
		// Remove the cycle's minimum multiplicity from the support.
		minX := 2.0
		for _, id := range hCycle {
			if support[id] < minX {
				minX = support[id]
			}
		}
		for _, id := range hCycle {
			support[id] -= minX
		}
		for _, cyc := range a.ProjectWalk(hCycle) {
			st.Candidates++
			cc, dd := rg.CycleCost(cyc), rg.CycleDelay(cyc)
			out = append(out, Candidate{
				Cycles: []graph.Cycle{cyc},
				Cost:   cc,
				Delay:  dd,
				Type:   Classify(cc, dd, p),
			})
		}
	}
	return out
}

// extractSupportCycle finds a directed cycle among edges with x > eps,
// returned as an H edge sequence, or nil if the support is (numerically)
// empty or acyclic.
//
//krsp:terminates(the pos check ends the walk at the first repeated vertex, within n steps)
func extractSupportCycle(h *graph.Digraph, x []float64) []graph.EdgeID {
	const eps = 1e-7
	next := make(map[graph.NodeID]graph.EdgeID)
	var start graph.NodeID = -1
	for _, e := range h.EdgesView() {
		if x[e.ID] > eps {
			if _, dup := next[e.From]; !dup {
				next[e.From] = e.ID
			}
			if start < 0 {
				start = e.From
			}
		}
	}
	if start < 0 {
		return nil
	}
	// Walk successor pointers until a vertex repeats.
	pos := map[graph.NodeID]int{}
	var walk []graph.EdgeID
	cur := start
	for {
		id, ok := next[cur]
		if !ok {
			return nil // dead end: conservation says this shouldn't happen
		}
		if at, seen := pos[cur]; seen {
			return walk[at:]
		}
		pos[cur] = len(walk)
		walk = append(walk, id)
		cur = h.Edge(id).To
		if len(walk) > h.NumEdges() {
			return nil
		}
	}
}
