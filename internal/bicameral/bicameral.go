// Package bicameral implements the paper's central machinery: finding
// bicameral cycles (Definition 10) in a residual graph that carries both
// negative costs and negative delays.
//
// Let r = ΔD/ΔC with ΔD = D − Σd(P) (negative while the delay bound is
// violated) and ΔC = C_ref − Σc(P) (positive while the solution is cheaper
// than the reference bound). All three bicameral types collapse into one
// scalar test — for a cycle O:
//
//	W(O) := ΔC·d(O) − ΔD·c(O) < 0  and  |c(O)| ≤ CostCap
//
// (type-0 cycles have W < 0 outright; type-1/2 are exactly the W ≤ 0
// cycles with the matching signs). The search therefore reduces to
// negative-cycle detection under the combined integer weight W on the
// cost-layered auxiliary graph, which enforces the cost cap. This is the
// combinatorial engine; an LP engine solving the paper's LP (6) via the
// in-repo simplex is kept for the E8 ablation.
package bicameral

import (
	"fmt"

	"repro/internal/cancel"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/residual"
)

// Params carries the quantities of Definition 10.
type Params struct {
	// DeltaD is D − Σd(P_i): negative while the solution violates the
	// delay bound.
	DeltaD int64
	// DeltaC is C_ref − Σc(P_i) where C_ref is the best known lower bound
	// on C_OPT; must be positive when Find is called.
	DeltaC int64
	// CostCap bounds |c(O)| (the paper's “essential” constraint — see the
	// Figure 1 pathology). Typically C_ref.
	CostCap int64
}

// Weight is the combined scalar weight W(e) = ΔC·d(e) − ΔD·c(e).
// Instances should keep ΔC·d and ΔD·c below 2^62 to avoid overflow; the
// solver guards this at construction.
func (p Params) Weight(e graph.Edge) int64 {
	return p.DeltaC*e.Delay - p.DeltaD*e.Cost //lint:allow weightovf Find's entry guard keeps |Δ|·maxW·K below 2^61
}

// CycleType labels Definition 10's cases.
type CycleType int

const (
	// TypeNone marks a non-bicameral cycle.
	TypeNone CycleType = iota - 1
	// Type0: d < 0 ∧ c ≤ 0, or d ≤ 0 ∧ c < 0 — strictly improving.
	Type0
	// Type1: d < 0, 0 < c ≤ cap, d/c ≤ ΔD/ΔC — buys delay with cost.
	Type1
	// Type2: d ≥ 0, −cap ≤ c < 0, d/c ≥ ΔD/ΔC — buys cost with delay.
	Type2
)

func (t CycleType) String() string {
	switch t {
	case Type0:
		return "type-0"
	case Type1:
		return "type-1"
	case Type2:
		return "type-2"
	}
	return "none"
}

// Classify applies Definition 10 to a (cost, delay) pair using exact
// integer cross-multiplication.
func Classify(cost, delay int64, p Params) CycleType {
	switch {
	case (delay < 0 && cost <= 0) || (delay <= 0 && cost < 0):
		return Type0
	case delay < 0 && cost > 0 && cost <= p.CostCap:
		if p.DeltaC > 0 && delay*p.DeltaC <= p.DeltaD*cost { //lint:allow weightovf cycle aggregates × Δ bounded by Find's entry guard
			return Type1
		}
	case delay >= 0 && cost < 0 && -cost <= p.CostCap:
		if p.DeltaC > 0 && delay*p.DeltaC <= p.DeltaD*cost { //lint:allow weightovf cycle aggregates × Δ bounded by Find's entry guard
			return Type2
		}
	}
	return TypeNone
}

// Candidate is a bicameral cycle — or, more generally, a set of
// edge-disjoint residual cycles applied together (Proposition 7 covers
// sets; the classification uses the aggregate cost/delay).
type Candidate struct {
	Cycles []graph.Cycle
	Cost   int64
	Delay  int64
	Type   CycleType
}

// Engine selects the search implementation.
type Engine int

const (
	// EngineCombinatorial is the default: negative-W-cycle detection on
	// the TwoSided layered graph.
	EngineCombinatorial Engine = iota
	// EngineLP solves the paper's LP (6) on H_v^±(B) with the in-repo
	// simplex (Algorithm 3 as written). Small instances only.
	EngineLP
	// EngineMinRatio is the prior-work technique of [12, 18] (reversed
	// edges costed 0, parametric min d/c cycle search), kept for the E8
	// ablation. Incomplete on residual graphs with both weights negative —
	// that incompleteness is the paper's motivation.
	EngineMinRatio
)

func (e Engine) String() string {
	switch e {
	case EngineLP:
		return "lp"
	case EngineMinRatio:
		return "minratio"
	}
	return "combinatorial"
}

// Options tune the search.
type Options struct {
	Engine Engine
	// InitialBudget is the first cost budget B tried (default 1).
	InitialBudget int64
	// FullSweep walks B = 1, 2, 3, … exactly as Algorithm 3 does instead
	// of doubling (ablation E8; much slower).
	FullSweep bool
	// MaxBudget caps B; 0 means min(CostCap, Σ|c(e)|) for the combinatorial
	// engine (complete) and CostCap for the LP engine.
	MaxBudget int64
	// Adversarial inverts candidate preference to the most expensive
	// qualifying cycle. It exists solely for experiment E3 (the Figure 1
	// pathology: what a worst-case-compliant selection could do); never
	// enable it for real solving.
	Adversarial bool
	// Workers bounds the goroutines used by the combinatorial engine's
	// anchor×budget sweep (the per-seed layered searches and the cycle
	// enumerator). ≤ 1 runs serially; values above GOMAXPROCS are clamped.
	// The parallel reduction replays the serial visit order (same better()
	// tie-breaks, same step-budget accounting), so the returned Candidate
	// and Stats.BudgetsTried are bit-identical for every worker count.
	Workers int
	// Metrics, when non-nil, receives search instrumentation: Find calls,
	// searches, candidates, budget escalations, and SPFA kernel counts
	// through the per-worker workspaces. Nil (the default) records nothing
	// and costs nothing. Metrics never influence results, but counters fed
	// by speculative parallel work may vary with Workers — the
	// bit-identical promise covers the returned Candidate and Stats only.
	Metrics *obs.Registry
	// Recorder, when non-nil, receives one search-done flight-recorder
	// event per Find (found flag, budgets tried, candidates inspected,
	// final budget) and a fault-hit event when the cycle-search fault point
	// trips. Nil (the default) records nothing and costs nothing.
	Recorder *rec.Recorder
	// Cancel, when non-nil, is polled throughout the search; once stopped,
	// Find returns found=false as fast as it can. A cancelled found=false is
	// NOT a completeness certificate — callers must check Cancel.Stopped()
	// before treating it as "no bicameral cycle exists" (core does). The
	// bit-identical-results promise does not cover cancelled runs. Parallel
	// workers derive their own cancel.Child from this Canceller.
	Cancel *cancel.Canceller
	// Faults, when non-nil, is consulted at the deterministic injection
	// sites (fault.PointCycleSearch on entry to Find, fault.PointLPRound per
	// LP solve). Nil is a free no-op.
	Faults *fault.Registry
}

// Stats instruments a search.
type Stats struct {
	BudgetsTried int
	Searches     int
	Candidates   int
	LastBudget   int64
	// Fallback holds the best W<0 candidate that failed the cost cap, if
	// any; callers may use it under a relaxed-cap policy.
	Fallback *Candidate
}

// Find searches the residual graph for a bicameral cycle under the given
// parameters. found=false means the engine exhausted its budget schedule
// without a cap-respecting candidate (Stats.Fallback may still be set).
func Find(rg *residual.Graph, p Params, o Options) (Candidate, Stats, bool) {
	if p.DeltaC <= 0 {
		//lint:allow nopanic caller contract (core escalates C_ref before calling); programmer error
		panic(fmt.Sprintf("bicameral: DeltaC=%d must be positive (escalate C_ref first)", p.DeltaC))
	}
	if p.CostCap < 1 {
		//lint:allow nopanic caller contract; Definition 10 needs a positive cap
		panic(fmt.Sprintf("bicameral: CostCap=%d must be ≥ 1", p.CostCap))
	}
	// Overflow guard: the combined weight multiplies ΔC/ΔD by edge weights
	// and then by the lexicographic factor K ≈ n·max(|w|); keep the whole
	// product comfortably inside int64.
	var maxW int64 = 1
	for _, e := range rg.R.EdgesView() {
		if a := abs64(e.Cost); a > maxW {
			maxW = a
		}
		if a := abs64(e.Delay); a > maxW {
			maxW = a
		}
	}
	scale := abs64(p.DeltaC)
	if a := abs64(p.DeltaD); a > scale {
		scale = a
	}
	if maxW > (int64(1)<<60)/int64(rg.R.NumNodes()+2) {
		//lint:allow nopanic exact-arithmetic guard; unreachable for MaxWeight-capped instances
		panic(fmt.Sprintf("bicameral: edge weights up to %d overflow the layered factor; rescale the instance", maxW))
	}
	k := int64(rg.R.NumNodes()+1)*maxW + 1
	if scale > (int64(1)<<61)/(2*maxW)/k {
		//lint:allow nopanic exact-arithmetic guard; unreachable for MaxWeight-capped instances
		panic(fmt.Sprintf("bicameral: weights too large for exact arithmetic "+
			"(|Δ|=%d, max edge weight %d, n=%d); rescale the instance",
			scale, maxW, rg.R.NumNodes()))
	}
	var (
		cand  Candidate
		st    Stats
		found bool
	)
	// Injected cycle-search failure: report "nothing found". Safe because a
	// not-found verdict only ever steers core toward its fallbacks (C_ref
	// escalation, relaxed cap, phase-1 flow) — never into an infeasible
	// output.
	if err := o.Faults.Check(fault.PointCycleSearch); err != nil {
		o.Recorder.Record(rec.KindFaultHit, int64(fault.PointCycleSearch), 0, 0, 0)
		return cand, st, false
	}
	switch o.Engine {
	case EngineLP:
		cand, st, found = findLP(rg, p, o)
	case EngineMinRatio:
		cand, st, found = findMinRatio(rg, p, o)
	default:
		cand, st, found = findCombinatorial(rg, p, o)
	}
	if bm := o.Metrics.BicameralMetrics(); bm != nil {
		bm.Finds.Inc()
		bm.Searches.Add(int64(st.Searches))
		bm.Candidates.Add(int64(st.Candidates))
		bm.BudgetEscalations.Add(int64(st.BudgetsTried))
		if !found {
			bm.NotFound.Inc()
		}
	}
	var foundArg int64
	if found {
		foundArg = 1
	}
	o.Recorder.Record(rec.KindSearchDone, foundArg, int64(st.BudgetsTried), int64(st.Candidates), st.LastBudget)
	return cand, st, found
}

// better reports whether a should be preferred over b as the returned
// candidate. Preference: delay-reducing first (type-0, then type-1 by most
// negative delay-per-cost), then type-2 (least delay damage per cost
// saved). The paper's Algorithm 3 step 3 similarly arbitrates between the
// best negative-delay and negative-cost cycles. With adversarial=true the
// most expensive qualifying candidate wins instead (experiment E3).
func better(a, b Candidate, adversarial bool) bool {
	if adversarial {
		if a.Cost != b.Cost {
			return a.Cost > b.Cost
		}
		return a.Delay > b.Delay
	}
	rank := func(t CycleType) int {
		switch t {
		case Type0:
			return 0
		case Type1:
			return 1
		case Type2:
			return 2
		}
		return 3
	}
	if rank(a.Type) != rank(b.Type) {
		return rank(a.Type) < rank(b.Type)
	}
	switch a.Type {
	case Type0:
		if a.Delay != b.Delay {
			return a.Delay < b.Delay
		}
		return a.Cost < b.Cost
	case Type1:
		// Most negative d/c: a.Delay/a.Cost < b.Delay/b.Cost with positive
		// denominators ⇔ a.Delay·b.Cost < b.Delay·a.Cost.
		return a.Delay*b.Cost < b.Delay*a.Cost //lint:allow weightovf cross-multiplied ratio of cycle aggregates; bounded by Find's entry guard
	case Type2:
		// Largest d/c (least damage): with both costs negative,
		// a.Delay/a.Cost > b.Delay/b.Cost ⇔ a.Delay·b.Cost > b.Delay·a.Cost.
		return a.Delay*b.Cost > b.Delay*a.Cost //lint:allow weightovf cross-multiplied ratio of cycle aggregates; bounded by Find's entry guard
	}
	return false
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
