package bicameral

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/residual"
	"repro/internal/shortest"
)

func params(dd, dc, cap int64) Params { return Params{DeltaD: dd, DeltaC: dc, CostCap: cap} }

func TestClassifyTypes(t *testing.T) {
	p := params(-15, 8, 10)
	cases := []struct {
		cost, delay int64
		want        CycleType
	}{
		{-1, -1, Type0},
		{0, -1, Type0},
		{-1, 0, Type0},
		{0, 0, TypeNone},
		{8, -18, Type1},      // −18·8 ≤ −15·8
		{8, -14, TypeNone},   // −14·8 = −112 > −120
		{8, -15, Type1},      // equality passes
		{11, -100, TypeNone}, // cost over cap
		{-8, 14, Type2},      // 14·8 = 112 ≤ (−15)(−8) = 120
		{-8, 16, TypeNone},   // 16·8 = 128 > 120
		{-11, 1, TypeNone},   // |cost| over cap
		{1, 1, TypeNone},
	}
	for _, tc := range cases {
		if got := Classify(tc.cost, tc.delay, p); got != tc.want {
			t.Errorf("Classify(%d,%d) = %v, want %v", tc.cost, tc.delay, got, tc.want)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	if Type0.String() != "type-0" || Type1.String() != "type-1" ||
		Type2.String() != "type-2" || TypeNone.String() != "none" {
		t.Fatal("strings")
	}
	if EngineCombinatorial.String() != "combinatorial" || EngineLP.String() != "lp" {
		t.Fatal("engine strings")
	}
}

// TestWeightEquivalence: Classify ≠ None ⇒ W ≤ 0, and W < 0 with |c| ≤ cap
// ⇒ Classify ≠ None (the scalar-reduction the combinatorial engine relies
// on).
func TestWeightEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := params(-1-int64(r.Intn(50)), 1+int64(r.Intn(50)), 1+int64(r.Intn(30)))
		c := int64(r.Intn(81) - 40)
		d := int64(r.Intn(81) - 40)
		w := p.DeltaC*d - p.DeltaD*c
		ty := Classify(c, d, p)
		if ty != TypeNone && w > 0 {
			return false
		}
		if w < 0 && abs64(c) <= p.CostCap && ty == TypeNone {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// tradeoffInstance: cheap/slow route in the current solution, pricey/fast
// alternative available; the improving type-1 cycle swaps them.
func tradeoffInstance() (*graph.Digraph, graph.EdgeSet) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10) // e0 current
	g.AddEdge(1, 3, 1, 10) // e1 current
	g.AddEdge(0, 2, 5, 1)  // e2
	g.AddEdge(2, 3, 5, 1)  // e3
	return g, graph.NewEdgeSet(0, 1)
}

func TestFindType1Cycle(t *testing.T) {
	g, sol := tradeoffInstance()
	rg := residual.Build(g, sol)
	p := params(5-20, 10-2, 10) // D=5, Cref=OPT=10
	for _, engine := range []Engine{EngineCombinatorial, EngineLP} {
		cand, st, found := Find(rg, p, Options{Engine: engine})
		if !found {
			t.Fatalf("%v: no cycle found (stats %+v)", engine, st)
		}
		if cand.Type != Type1 {
			t.Fatalf("%v: type = %v", engine, cand.Type)
		}
		if cand.Cost != 8 || cand.Delay != -18 {
			t.Fatalf("%v: (c,d) = (%d,%d)", engine, cand.Cost, cand.Delay)
		}
		next, err := rg.ApplyAll(cand.Cycles)
		if err != nil {
			t.Fatal(err)
		}
		paths, _, err := flow.Decompose(g, next, 0, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		solution := graph.Solution{Paths: paths}
		if solution.Cost(g) != 10 || solution.Delay(g) != 2 {
			t.Fatalf("%v: after apply cost/delay = %d/%d",
				engine, solution.Cost(g), solution.Delay(g))
		}
	}
}

func TestFindRespectsCostCap(t *testing.T) {
	g, sol := tradeoffInstance()
	rg := residual.Build(g, sol)
	// Cap below the swap cost 8: the only improving cycle is out of reach.
	p := params(-15, 8, 7)
	cand, st, found := Find(rg, p, Options{})
	if found {
		t.Fatalf("found %+v despite cap", cand)
	}
	// The W<0 cycle should be recorded as a relaxed-cap fallback.
	if st.Fallback == nil || st.Fallback.Cost != 8 {
		t.Fatalf("fallback = %+v", st.Fallback)
	}
}

func TestFindNoneWhenNoReversedEdges(t *testing.T) {
	g, _ := tradeoffInstance()
	rg := residual.Build(g, graph.NewEdgeSet())
	if _, _, found := Find(rg, params(-5, 5, 10), Options{}); found {
		t.Fatal("cycle without any reversed edge?")
	}
}

func TestFindNoneWhenRatioTooBad(t *testing.T) {
	g, sol := tradeoffInstance()
	rg := residual.Build(g, sol)
	// ΔD/ΔC = −1/8: need d/c ≤ −1/8... the swap has −18/8 ≤ −1/8 so it
	// WOULD qualify; instead make ΔD barely negative and ΔC huge relative:
	// require d·ΔC ≤ ΔD·c: −18·1000 ≤ −1·8 ✓ — still qualifies. The swap
	// cycle is genuinely excellent; starve it via the cap instead and
	// verify type-2 absence too (reverse swap has W>0 here).
	p := params(-1, 1000, 7)
	if _, _, found := Find(rg, p, Options{}); found {
		t.Fatal("expected no candidate under tight cap")
	}
}

func TestFindPanicsOnBadParams(t *testing.T) {
	g, sol := tradeoffInstance()
	rg := residual.Build(g, sol)
	for _, p := range []Params{params(-5, 0, 10), params(-5, 5, 0)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", p)
				}
			}()
			Find(rg, p, Options{})
		}()
	}
}

func TestFullSweepMatchesDoubling(t *testing.T) {
	g, sol := tradeoffInstance()
	rg := residual.Build(g, sol)
	p := params(-15, 8, 10)
	c1, _, ok1 := Find(rg, p, Options{})
	c2, _, ok2 := Find(rg, p, Options{FullSweep: true})
	if !ok1 || !ok2 {
		t.Fatal("both schedules must find the cycle")
	}
	if c1.Type != c2.Type {
		t.Fatalf("types differ: %v vs %v", c1.Type, c2.Type)
	}
}

// bruteBicameral enumerates all simple residual cycles and reports whether
// any classifies as bicameral.
func bruteBicameral(rg *residual.Graph, p Params) bool {
	g := rg.R
	n := g.NumNodes()
	found := false
	var dfs func(start, cur graph.NodeID, visited map[graph.NodeID]bool, cost, delay int64)
	dfs = func(start, cur graph.NodeID, visited map[graph.NodeID]bool, cost, delay int64) {
		if found {
			return
		}
		for _, id := range g.Out(cur) {
			e := g.Edge(id)
			if e.To == start {
				if Classify(cost+e.Cost, delay+e.Delay, p) != TypeNone {
					found = true
					return
				}
				continue
			}
			if visited[e.To] || e.To < start {
				continue
			}
			visited[e.To] = true
			dfs(start, e.To, visited, cost+e.Cost, delay+e.Delay)
			delete(visited, e.To)
		}
	}
	for v := 0; v < n && !found; v++ {
		dfs(graph.NodeID(v), graph.NodeID(v), map[graph.NodeID]bool{}, 0, 0)
	}
	return found
}

// TestFindCompleteness: on tiny random instances, whenever a simple
// bicameral cycle exists the combinatorial engine finds a valid candidate;
// every returned candidate validates, classifies consistently, and applies
// to a legal flow.
func TestFindCompleteness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(6)), int64(r.Intn(6)))
			}
		}
		s, tt := graph.NodeID(0), graph.NodeID(n-1)
		k := 1 + r.Intn(2)
		if flow.MaxDisjointPaths(g, s, tt) < k {
			return true
		}
		fl, err := flow.MinCostKFlow(g, s, tt, k, shortest.CostWeight)
		if err != nil {
			return false
		}
		rg := residual.Build(g, fl.Edges)
		p := params(-1-int64(r.Intn(20)), 1+int64(r.Intn(20)), 1+int64(r.Intn(15)))
		cand, _, found := Find(rg, p, Options{})
		exists := bruteBicameral(rg, p)
		if exists && !found {
			return false
		}
		if !found {
			return true
		}
		// Candidate consistency.
		var totC, totD int64
		for _, cyc := range cand.Cycles {
			if cyc.Validate(rg.R, false) != nil {
				return false
			}
			totC += rg.CycleCost(cyc)
			totD += rg.CycleDelay(cyc)
		}
		if totC != cand.Cost || totD != cand.Delay {
			return false
		}
		if Classify(cand.Cost, cand.Delay, p) != cand.Type || cand.Type == TypeNone {
			return false
		}
		next, err := rg.ApplyAll(cand.Cycles)
		if err != nil {
			return false
		}
		_, _, err = flow.Decompose(g, next, s, tt, k)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLPEngineValidity: every candidate the LP engine returns is a genuine
// bicameral cycle. The LP engine may return found=false where the
// (enumeration-complete) combinatorial engine succeeds — e.g. boundary
// W = 0 cycles, or cycles whose prefix cost sums leave [0, B] — which is
// exactly the gap E8 measures; only validity is asserted here.
func TestLPEngineValidity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(3)
		g := graph.New(n)
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(4)), int64(r.Intn(4)))
			}
		}
		s, tt := graph.NodeID(0), graph.NodeID(n-1)
		if flow.MaxDisjointPaths(g, s, tt) < 1 {
			return true
		}
		fl, err := flow.MinCostKFlow(g, s, tt, 1, shortest.CostWeight)
		if err != nil {
			return false
		}
		rg := residual.Build(g, fl.Edges)
		p := params(-5, 5, 6)
		lpCand, _, lpFound := Find(rg, p, Options{Engine: EngineLP})
		if !lpFound {
			return true
		}
		if Classify(lpCand.Cost, lpCand.Delay, p) != lpCand.Type || lpCand.Type == TypeNone {
			return false
		}
		for _, cyc := range lpCand.Cycles {
			if cyc.Validate(rg.R, false) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMinRatioEngineFindsSwapCycle(t *testing.T) {
	g, sol := tradeoffInstance()
	rg := residual.Build(g, sol)
	p := params(5-20, 10-2, 10)
	cand, _, found := Find(rg, p, Options{Engine: EngineMinRatio})
	if !found {
		t.Fatal("minratio engine missed the improving cycle")
	}
	if cand.Type == TypeNone {
		t.Fatalf("candidate type %v", cand.Type)
	}
	if Classify(cand.Cost, cand.Delay, p) != cand.Type {
		t.Fatal("classification inconsistent")
	}
	for _, cyc := range cand.Cycles {
		if err := cyc.Validate(rg.R, false); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMinRatioEngineValidity(t *testing.T) {
	// Whatever the [18]-style engine returns must be a genuine bicameral
	// candidate; it may legitimately return found=false where the
	// combinatorial engine succeeds (that incompleteness is the ablation's
	// point), so only validity is asserted here.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(6)), int64(r.Intn(6)))
			}
		}
		s, tt := graph.NodeID(0), graph.NodeID(n-1)
		if flow.MaxDisjointPaths(g, s, tt) < 1 {
			return true
		}
		fl, err := flow.MinCostKFlow(g, s, tt, 1, shortest.CostWeight)
		if err != nil {
			return false
		}
		rg := residual.Build(g, fl.Edges)
		p := params(-1-int64(r.Intn(20)), 1+int64(r.Intn(20)), 1+int64(r.Intn(15)))
		cand, _, found := Find(rg, p, Options{Engine: EngineMinRatio})
		if !found {
			return true
		}
		var totC, totD int64
		for _, cyc := range cand.Cycles {
			if cyc.Validate(rg.R, false) != nil {
				return false
			}
			totC += rg.CycleCost(cyc)
			totD += rg.CycleDelay(cyc)
		}
		return totC == cand.Cost && totD == cand.Delay &&
			Classify(cand.Cost, cand.Delay, p) == cand.Type && cand.Type != TypeNone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStrings(t *testing.T) {
	if EngineMinRatio.String() != "minratio" {
		t.Fatal("engine string")
	}
}

func TestFindPanicsOnOverflowRisk(t *testing.T) {
	g := graph.New(2)
	huge := int64(1) << 40
	g.AddEdge(0, 1, huge, huge)
	g.AddEdge(1, 0, huge, huge)
	rg := residual.Build(g, graph.NewEdgeSet(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	Find(rg, Params{DeltaD: -huge, DeltaC: huge, CostCap: huge}, Options{})
}
