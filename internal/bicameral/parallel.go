package bicameral

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/auxgraph"
	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/residual"
	"repro/internal/shortest"
)

// This file implements the parallel side of the combinatorial engine: the
// per-seed layered sweep and the simple-cycle enumerator both fan out over
// a bounded worker pool, then reduce their per-index results by replaying
// the serial visit order (ascending seed/root index, same better()
// tie-breaks, same step-budget accounting). Work computed past the serial
// stopping point is discarded by the reduction, so the outcome is
// bit-identical for every worker count; atomic cancellation flags merely
// trim that speculative tail.

// effectiveWorkers resolves Options.Workers against the item count and the
// machine: ≤1 is serial, values above GOMAXPROCS are clamped.
func effectiveWorkers(o Options, items int) int {
	w := o.Workers
	if w < 1 {
		w = 1
	}
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelOrdered runs fn(i, worker) for i = 0..n-1 on `workers`
// goroutines. Indices are pulled in ascending order; cancelled(i) is
// consulted before running index i and must be monotone (once true for i it
// stays true, and it may only become true when the reduction provably stops
// before i). fn receives a stable worker id in [0, workers) for per-worker
// scratch. With workers ≤ 1 everything runs on the calling goroutine, and a
// cancelled index ends the loop outright (the reduction stops before it).
//
//krsp:terminates(every claim-loop pass advances the shared atomic counter, which reaches n; kernels poll via the worker's child canceller)
func parallelOrdered(n, workers int, fn func(i, worker int), cancelled func(i int) bool) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cancelled != nil && cancelled(i) {
				return
			}
			fn(i, 0)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if cancelled != nil && cancelled(i) {
					return
				}
				fn(i, worker)
			}
		}(w)
	}
	wg.Wait()
}

// mergeFallback folds a per-shard relaxed-cap fallback into the shared
// Stats using the same strictly-better-W rule candidatesFromWalk applies,
// so merging shard fallbacks in visit order reproduces the serial result.
func mergeFallback(st *Stats, fb *Candidate, p Params) {
	if fb == nil {
		return
	}
	if st.Fallback == nil || p.DeltaC*fb.Delay-p.DeltaD*fb.Cost < //lint:allow weightovf combined weight W; bounded by Find's entry guard
		p.DeltaC*st.Fallback.Delay-p.DeltaD*st.Fallback.Cost { //lint:allow weightovf combined weight W; bounded by Find's entry guard
		c := *fb
		st.Fallback = &c
	}
}

// seedResult is the outcome of one per-seed layered search.
type seedResult struct {
	ran   bool
	quals []Candidate // cap-respecting candidates, in discovery order
	local Stats       // Candidates + Fallback gathered by candidatesFromWalk
}

// sweepSeeds runs the per-seed TwoSided layered searches at budget b over a
// worker pool and reduces the results in seed order: each processed seed
// contributes Searches/Candidates/Fallback to st exactly as the serial loop
// did, and the first seed with a qualifying candidate ends the sweep with
// the best of that seed's candidates (earlier seeds had none, so this
// matches the serial early return). found=false leaves the caller to
// escalate the budget.
//
//krsp:terminates(per-seed searches are relaxation-budgeted, and the stop-index CAS retries on a monotonically decreasing value)
func sweepSeeds(rg *residual.Graph, perSeed []graph.NodeID, b int64, wOf shortest.Weight, relaxBudget int, p Params, o Options, st *Stats) (Candidate, bool) {
	n := len(perSeed)
	if n == 0 {
		return Candidate{}, false
	}
	workers := effectiveWorkers(o, n)
	if bm := o.Metrics.BicameralMetrics(); bm != nil {
		bm.SeedSweeps.Inc()
		bm.SweepWorkers.Observe(int64(workers))
	}
	results := make([]seedResult, n)
	wss := make([]*shortest.Workspace, workers)
	// Cancellers are single-goroutine state: each worker polls its own Child
	// (nil parent → nil children → free no-ops).
	kids := make([]*cancel.Canceller, workers)
	defer func() {
		for _, k := range kids {
			k.Release()
		}
	}()
	sm := o.Metrics.ShortestMetrics()
	for i := range wss {
		wss[i] = shortest.NewWorkspace(1) // grows to layered size on first use
		wss[i].SetMetrics(sm)
		kids[i] = o.Cancel.Child()
		wss[i].SetCancel(kids[i])
	}
	var stopAt atomic.Int64 // lowest seed index with a qualifying candidate
	stopAt.Store(int64(n))
	run := func(i, worker int) {
		av := auxgraph.Build(rg.R, perSeed[i], b, auxgraph.TwoSided)
		r := seedResult{ran: true}
		cyc, found, _ := shortest.SPFAAllBoundedInto(wss[worker], av.H, wOf, relaxBudget)
		if found {
			for _, c := range candidatesFromWalk(rg, av, cyc.Edges, p, &r.local) {
				if c.Type != TypeNone {
					r.quals = append(r.quals, c)
				}
			}
		}
		results[i] = r
		if len(r.quals) > 0 {
			for {
				cur := stopAt.Load()
				if int64(i) >= cur || stopAt.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		}
	}
	// Sound because stopAt only ever holds qualifying seed indices, so it
	// stays ≥ the minimum one, and the replay stops exactly there.
	cancelled := func(i int) bool { return int64(i) > stopAt.Load() }
	parallelOrdered(n, workers, run, cancelled)

	for i := 0; i < n; i++ {
		r := results[i]
		if !r.ran {
			break // only past the minimum qualifying seed
		}
		st.Searches++
		st.Candidates += r.local.Candidates
		mergeFallback(st, r.local.Fallback, p)
		if len(r.quals) > 0 {
			best := r.quals[0]
			for _, c := range r.quals[1:] {
				if better(c, best, o.Adversarial) {
					best = c
				}
			}
			return best, true
		}
	}
	return Candidate{}, false
}

// enumRootBudget is the DFS step budget of one enumeration root. The
// serial replay additionally enforces the global enumStepBudget, matching
// the pre-parallel enumerator's accounting.
const (
	enumStepBudget = 400000
	enumRootBudget = 400000
)

// enumScratch is per-worker DFS state for the cycle enumerator.
type enumScratch struct {
	visited []bool
	stack   []graph.EdgeID
	cancel  *cancel.Canceller // this worker's Child; nil is a free no-op
}

// rootResult is the outcome of enumerating the vertex-simple cycles rooted
// (by minimum vertex) at one start vertex.
type rootResult struct {
	ran        bool
	best       Candidate
	found      bool
	type0      bool // hit a type-0 candidate: enumeration stops here
	exhausted  bool // per-root step budget ran out
	steps      int
	candidates int
}

// enumerateRoot DFS-enumerates the vertex-simple cycles whose minimum
// vertex is start, classifying each against Definition 10. It stops at the
// first type-0 candidate (non-adversarial) or when its step budget runs
// out; otherwise it reduces candidates with better() in discovery order.
func enumerateRoot(rg *residual.Graph, start graph.NodeID, p Params, o Options, scr *enumScratch) rootResult {
	g := rg.R
	res := rootResult{ran: true}
	var dfs func(cur graph.NodeID, cost, delay int64) bool
	dfs = func(cur graph.NodeID, cost, delay int64) bool {
		res.steps++
		if res.steps > enumRootBudget || scr.cancel.Poll() {
			// Cancellation reuses the budget-exhaustion path: the enumeration
			// simply stops being a completeness certificate.
			res.exhausted = true
			return true
		}
		for _, id := range g.Out(cur) {
			e := g.Edge(id)
			if e.To == start {
				c, d := cost+e.Cost, delay+e.Delay //lint:allow weightovf DFS path aggregates ≤ n·MaxWeight
				ty := Classify(c, d, p)
				if ty != TypeNone {
					res.candidates++
					cyc := graph.Cycle{Edges: append(append([]graph.EdgeID(nil), scr.stack...), id)}
					cand := Candidate{Cycles: []graph.Cycle{cyc}, Cost: c, Delay: d, Type: ty}
					if !res.found || better(cand, res.best, o.Adversarial) {
						res.best, res.found = cand, true
					}
					if ty == Type0 && !o.Adversarial {
						res.type0 = true
						return true
					}
				}
				continue
			}
			if e.To < start || scr.visited[e.To] {
				continue
			}
			scr.visited[e.To] = true
			scr.stack = append(scr.stack, id)
			stop := dfs(e.To, cost+e.Cost, delay+e.Delay) //lint:allow weightovf DFS path aggregates ≤ n·MaxWeight
			scr.stack = scr.stack[:len(scr.stack)-1]
			scr.visited[e.To] = false
			if stop {
				return true
			}
		}
		return false
	}
	dfs(start, 0, 0)
	return res
}

// enumerateQualifying enumerates vertex-simple residual cycles rooted at
// their minimum vertex over a worker pool, classifying each against
// Definition 10. The deterministic reduction replays the serial root order
// under the global step budget: a root whose DFS does not fit in the
// remaining budget ends the scan with exhausted=true (the enumeration is
// then NOT a completeness certificate), and a type-0 hit stops it at the
// first such root. Results are identical for every Options.Workers value.
//
//krsp:terminates(per-root DFS is step-budgeted, the frontier only advances, and the stop-index CAS retries on a monotonically decreasing value)
func enumerateQualifying(rg *residual.Graph, p Params, o Options, st *Stats) (best Candidate, found, exhausted bool) {
	g := rg.R
	n := g.NumNodes()
	if n == 0 {
		return Candidate{}, false, false
	}
	workers := effectiveWorkers(o, n)
	results := make([]rootResult, n)
	scratch := make([]*enumScratch, workers)
	for i := range scratch {
		//lint:allow hotalloc one-time per-worker scratch, bounded by Options.Workers
		scratch[i] = &enumScratch{visited: make([]bool, n), cancel: o.Cancel.Child()}
	}
	defer func() {
		for _, s := range scratch {
			s.cancel.Release()
		}
	}()
	var stopAt atomic.Int64 // lowest root index that hit a type-0
	stopAt.Store(int64(n))
	// Budget cancellation counts only the steps of the CONTIGUOUS completed
	// prefix 0..frontier−1: once that prefix alone exceeds the global budget
	// the replay provably breaks inside it, so skipping later roots cannot
	// change the result. (Counting speculative high-index roots would not be
	// sound — it could skip a root the replay still reaches.)
	var mu sync.Mutex
	frontier, prefixSteps := 0, 0
	var overBudget atomic.Bool
	run := func(i, worker int) {
		r := enumerateRoot(rg, graph.NodeID(i), p, o, scratch[worker])
		if r.type0 {
			for {
				cur := stopAt.Load()
				if int64(i) >= cur || stopAt.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		}
		// The results write shares the frontier lock: the scan below reads
		// neighbouring indices, so unsynchronized writes would race with it.
		mu.Lock()
		results[i] = r
		for frontier < n && results[frontier].ran {
			prefixSteps += results[frontier].steps
			frontier++
		}
		if prefixSteps > enumStepBudget {
			overBudget.Store(true)
		}
		mu.Unlock()
	}
	// Both flags are monotone and only fire when the replay below provably
	// stops before the skipped index: a type-0 at root r stops it at ≤ r,
	// and an over-budget completed prefix stops it inside that prefix.
	cancelled := func(i int) bool {
		return int64(i) > stopAt.Load() || overBudget.Load()
	}
	parallelOrdered(n, workers, run, cancelled)

	remaining := enumStepBudget
	for i := 0; i < n; i++ {
		r := results[i]
		if !r.ran {
			// Only reachable past a budget break; keep the certificate honest.
			exhausted = true
			break
		}
		if r.steps > remaining {
			exhausted = true
			break
		}
		remaining -= r.steps
		st.Candidates += r.candidates
		if r.found && (!found || better(r.best, best, o.Adversarial)) {
			best, found = r.best, true
		}
		if r.type0 {
			break
		}
	}
	return best, found, exhausted
}
