package exact

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(10)), int64(r.Intn(10)))
			}
		}
		ins := graph.Instance{G: g, S: 0, T: graph.NodeID(n - 1),
			K: 1 + r.Intn(2), Bound: r.Int63n(30)}
		bf, bfErr := BruteForce(ins, 60)
		bb, bbErr := BranchAndBound(ins, 0)
		if (bfErr == nil) != (bbErr == nil) {
			return false
		}
		if bfErr != nil {
			return errors.Is(bfErr, ErrInfeasible) == errors.Is(bbErr, ErrInfeasible)
		}
		if bb.Cost != bf.Cost {
			return false
		}
		if bb.Delay > ins.Bound {
			return false
		}
		return bb.Solution.Validate(ins) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchAndBoundTradeoff(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	ins := graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: 10}
	res, err := BranchAndBound(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 13 || res.Delay != 7 {
		t.Fatalf("got %d/%d, want 13/7", res.Cost, res.Delay)
	}
}

func TestBranchAndBoundInfeasible(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1, 9)
	g.AddEdge(1, 2, 1, 9)
	ins := graph.Instance{G: g, S: 0, T: 2, K: 1, Bound: 5}
	if _, err := BranchAndBound(ins, 0); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	ins.K = 2
	if _, err := BranchAndBound(ins, 0); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("k=2 err = %v", err)
	}
}

func TestBranchAndBoundNodeBudget(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 2, 1, 1)
	ins := graph.Instance{G: g, S: 0, T: 2, K: 1, Bound: 5}
	if _, err := BranchAndBound(ins, 0); err != nil {
		t.Fatal(err)
	}
	// maxNodes must be respected... 1 node is never enough once branching
	// is required; on this trivially integral instance it suffices.
	if _, err := BranchAndBound(ins, 1); err != nil {
		t.Fatalf("trivial instance within 1 node: %v", err)
	}
}

func TestBranchAndBoundValidatesInput(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1, 1)
	ins := graph.Instance{G: g, S: 0, T: 1, K: 0, Bound: 5}
	if _, err := BranchAndBound(ins, 0); err == nil {
		t.Fatal("invalid instance accepted")
	}
}
