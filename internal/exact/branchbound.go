package exact

import (
	"fmt"
	"math"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/lp"
)

// BranchAndBound solves kRSP exactly by LP-based branch & bound: the
// relaxation min cᵀx over {flow of value k, 0 ≤ x ≤ 1, dᵀx ≤ D} is solved
// with the in-repo simplex; fractional edges are branched on by pinning
// x_e = 0 or x_e = 1. It scales an order of magnitude beyond BruteForce
// (hundreds of edges instead of dozens) while remaining a ground-truth
// tool, not a production solver. maxNodes caps the search tree (0 means
// 4096); exceeding it returns ErrTooLarge.
func BranchAndBound(ins graph.Instance, maxNodes int) (Result, error) {
	if err := ins.Validate(); err != nil {
		return Result{}, err
	}
	if maxNodes <= 0 {
		maxNodes = 4096
	}
	g := ins.G
	m := g.NumEdges()

	type node struct {
		fixed map[graph.EdgeID]int // edge → 0 (banned) or 1 (forced)
	}
	stack := []node{{fixed: map[graph.EdgeID]int{}}}
	res := Result{Cost: -1}
	explored := 0

	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		explored++
		if explored > maxNodes {
			return Result{}, fmt.Errorf("%w: branch-and-bound node budget", ErrTooLarge)
		}
		x, obj, feasible := solveRelaxation(ins, cur.fixed)
		if !feasible {
			continue
		}
		// Prune on the incumbent (costs are integral: ⌈obj − ε⌉ bounds).
		if res.Cost >= 0 && int64(math.Ceil(obj-1e-6)) >= res.Cost {
			continue
		}
		// Find the most fractional edge.
		branch := graph.EdgeID(-1)
		worst := 1e-6
		for e := 0; e < m; e++ {
			frac := math.Abs(x[e] - math.Round(x[e]))
			if frac > worst {
				worst = frac
				branch = graph.EdgeID(e)
			}
		}
		if branch < 0 {
			// Integral: materialize and accept if genuinely feasible.
			set := graph.NewEdgeSet()
			for e := 0; e < m; e++ {
				if x[e] > 0.5 {
					set.Add(graph.EdgeID(e))
				}
			}
			paths, cycles, err := flow.Decompose(g, set, ins.S, ins.T, ins.K)
			if err != nil {
				continue // numerically integral but structurally off; skip
			}
			// Cycles in the support only add cost/delay; drop them.
			_ = cycles
			sol := graph.Solution{Paths: paths}
			c, d := sol.Cost(g), sol.Delay(g)
			if d <= ins.Bound && (res.Cost < 0 || c < res.Cost) {
				res.Cost, res.Delay = c, d
				res.Solution = graph.Solution{Paths: clonePaths(paths)}
			}
			continue
		}
		// Depth-first: explore the forced branch first (tends to find
		// incumbents quickly).
		ban := map[graph.EdgeID]int{}
		force := map[graph.EdgeID]int{}
		for k, v := range cur.fixed {
			ban[k] = v
			force[k] = v
		}
		ban[branch] = 0
		force[branch] = 1
		stack = append(stack, node{fixed: ban}, node{fixed: force})
	}
	res.Explored = explored
	if res.Cost < 0 {
		return Result{}, ErrInfeasible
	}
	return res, nil
}

// solveRelaxation solves the LP relaxation with the given pinned edges.
func solveRelaxation(ins graph.Instance, fixed map[graph.EdgeID]int) (x []float64, obj float64, feasible bool) {
	g := ins.G
	m := g.NumEdges()
	p := lp.NewProblem(m)
	for _, e := range g.EdgesView() {
		p.SetObjective(int(e.ID), float64(e.Cost))
		switch v, pinned := fixed[e.ID]; {
		case pinned && v == 0:
			p.AddRow([]lp.Coef{{Var: int(e.ID), Val: 1}}, lp.EQ, 0)
		case pinned && v == 1:
			p.AddRow([]lp.Coef{{Var: int(e.ID), Val: 1}}, lp.EQ, 1)
		default:
			p.AddBound(int(e.ID), 1)
		}
	}
	// Conservation with value k at the terminals.
	for v := 0; v < g.NumNodes(); v++ {
		var coefs []lp.Coef
		for _, id := range g.Out(graph.NodeID(v)) {
			coefs = append(coefs, lp.Coef{Var: int(id), Val: 1})
		}
		for _, id := range g.In(graph.NodeID(v)) {
			coefs = append(coefs, lp.Coef{Var: int(id), Val: -1})
		}
		rhs := 0.0
		switch graph.NodeID(v) {
		case ins.S:
			rhs = float64(ins.K)
		case ins.T:
			rhs = -float64(ins.K)
		}
		if len(coefs) == 0 && rhs != 0 {
			return nil, 0, false // terminal with no incident edges
		}
		if len(coefs) > 0 {
			p.AddRow(coefs, lp.EQ, rhs)
		}
	}
	var dRow []lp.Coef
	for _, e := range g.EdgesView() {
		if e.Delay != 0 {
			dRow = append(dRow, lp.Coef{Var: int(e.ID), Val: float64(e.Delay)})
		}
	}
	p.AddRow(dRow, lp.LE, float64(ins.Bound))
	sol, err := p.Solve()
	if err != nil {
		return nil, 0, false
	}
	return sol.X, sol.Obj, true
}
