// Package exact provides ground-truth kRSP solvers for small instances:
// an exponential brute-force enumerator over k-tuples of edge-disjoint
// paths, and an LP-guided branch & bound that scales a little further.
// They exist to validate the approximation guarantees of the core
// algorithms (experiments E1, E3, E5) — never to solve production-sized
// instances.
package exact

import (
	"errors"

	"repro/internal/graph"
)

// ErrInfeasible reports that no k edge-disjoint paths meet the delay bound.
var ErrInfeasible = errors.New("exact: infeasible instance")

// ErrTooLarge reports that the instance exceeds the enumerator's guardrail.
var ErrTooLarge = errors.New("exact: instance too large for brute force")

// Result is an optimal solution.
type Result struct {
	Solution graph.Solution
	Cost     int64
	Delay    int64
	// Explored counts search nodes, for curiosity and tests.
	Explored int
}

// BruteForce enumerates every set of k edge-disjoint s→t paths and returns
// a minimum-cost set with total delay ≤ ins.Bound. The guardrail rejects
// graphs with more than maxEdges edges (default 40 when 0 is passed).
func BruteForce(ins graph.Instance, maxEdges int) (Result, error) {
	if maxEdges <= 0 {
		maxEdges = 40
	}
	if ins.G.NumEdges() > maxEdges {
		return Result{}, ErrTooLarge
	}
	if err := ins.Validate(); err != nil {
		return Result{}, err
	}
	paths := enumerate(ins.G, ins.S, ins.T)
	res := Result{Cost: -1}
	cur := make([]graph.Path, 0, ins.K)
	used := graph.NewEdgeSet()

	var rec func(from int, cost, delay int64, left int)
	rec = func(from int, cost, delay int64, left int) {
		res.Explored++
		if delay > ins.Bound {
			return
		}
		if res.Cost >= 0 && cost >= res.Cost {
			return // cost-only branch-and-bound pruning
		}
		if left == 0 {
			res.Cost = cost
			res.Delay = delay
			res.Solution = graph.Solution{Paths: clonePaths(cur)}
			return
		}
		for i := from; i < len(paths); i++ {
			p := paths[i]
			ok := true
			for _, id := range p.Edges {
				if used.Has(id) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, id := range p.Edges {
				used.Add(id)
			}
			cur = append(cur, p)
			rec(i+1, cost+p.Cost(ins.G), delay+p.Delay(ins.G), left-1)
			cur = cur[:len(cur)-1]
			for _, id := range p.Edges {
				used.Remove(id)
			}
		}
	}
	rec(0, 0, 0, ins.K)
	if res.Cost < 0 {
		return Result{}, ErrInfeasible
	}
	return res, nil
}

// Caveat: restricting enumeration to vertex-simple paths is safe — any
// k edge-disjoint path set can be shortcut to vertex-simple paths without
// raising cost or delay (weights are nonnegative), preserving disjointness.
func enumerate(g *graph.Digraph, s, t graph.NodeID) []graph.Path {
	var out []graph.Path
	var cur []graph.EdgeID
	on := map[graph.NodeID]bool{s: true}
	var dfs func(v graph.NodeID)
	dfs = func(v graph.NodeID) {
		if v == t {
			out = append(out, graph.Path{Edges: append([]graph.EdgeID(nil), cur...)})
			return
		}
		for _, id := range g.Out(v) {
			e := g.Edge(id)
			if on[e.To] {
				continue
			}
			on[e.To] = true
			cur = append(cur, id)
			dfs(e.To)
			cur = cur[:len(cur)-1]
			delete(on, e.To)
		}
	}
	dfs(s)
	return out
}

func clonePaths(ps []graph.Path) []graph.Path {
	out := make([]graph.Path, len(ps))
	for i, p := range ps {
		out[i] = graph.Path{Edges: append([]graph.EdgeID(nil), p.Edges...)}
	}
	return out
}
