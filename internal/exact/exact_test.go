package exact

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

func tradeoff() graph.Instance {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10) // cheap slow
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1) // pricey fast
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5) // direct middle
	return graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: 25}
}

func TestBruteForceOptimal(t *testing.T) {
	ins := tradeoff()
	res, err := BruteForce(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	// k=2, D=25: {cheap(2,20), direct(3,5)} = cost 5 delay 25 fits.
	if res.Cost != 5 || res.Delay != 25 {
		t.Fatalf("got %d/%d", res.Cost, res.Delay)
	}
	if err := res.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestBruteForceTightBound(t *testing.T) {
	ins := tradeoff()
	ins.Bound = 10
	res, err := BruteForce(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Must use {pricey(10,2), direct(3,5)} = 13/7.
	if res.Cost != 13 || res.Delay != 7 {
		t.Fatalf("got %d/%d", res.Cost, res.Delay)
	}
}

func TestBruteForceInfeasible(t *testing.T) {
	ins := tradeoff()
	ins.Bound = 3
	if _, err := BruteForce(ins, 0); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	ins.Bound = 25
	ins.K = 4 // only 3 disjoint routes exist
	if _, err := BruteForce(ins, 0); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestBruteForceGuardrail(t *testing.T) {
	ins := tradeoff()
	if _, err := BruteForce(ins, 3); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestBruteForceRejectsInvalidInstance(t *testing.T) {
	ins := tradeoff()
	ins.K = 0
	if _, err := BruteForce(ins, 0); err == nil {
		t.Fatal("invalid instance accepted")
	}
}
