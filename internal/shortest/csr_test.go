package shortest

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// mirrorPair builds a seeded random multigraph, flips a subset of its edges
// in both representations (Digraph sorted re-insertion vs CSR rev bits), and
// returns the pair. Weights land in [-25, 25) after flips — the residual
// shape the solve-path kernels actually see.
func mirrorPair(t *testing.T, seed int64, n, m, flips int) (*graph.Digraph, *graph.CSR) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		for v == u {
			v = graph.NodeID(rng.Intn(n))
		}
		g.AddEdge(u, v, int64(rng.Intn(25)), int64(rng.Intn(25)))
	}
	c := graph.NewCSR(g)
	for i := 0; i < flips; i++ {
		id := graph.EdgeID(rng.Intn(m))
		g.FlipEdge(id)
		c.Flip(id)
	}
	if err := c.Validate(g); err != nil {
		t.Fatalf("mirror pair diverged: %v", err)
	}
	return g, c
}

func sameCycle(t *testing.T, label string, a, b graph.Cycle) {
	t.Helper()
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("%s: cycle lengths %d vs %d", label, len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("%s: cycle edge %d: %d vs %d", label, i, a.Edges[i], b.Edges[i])
		}
	}
}

// TestSPFAAllCSRMatchesDigraph drives the CSR all-sources SPFA against the
// Digraph kernel over many seeds, weights, and mask states, asserting
// bit-identical trees, verdicts and extracted cycles.
func TestSPFAAllCSRMatchesDigraph(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, c := mirrorPair(t, seed, 20, 60, int(seed%7)*4)
		q, p := int64(seed%5)-2, int64(seed%3)+1
		w := Combine(q, p)
		lw := LinCombine(q, p)

		var alive []bool
		wMasked := w
		if seed%2 == 0 {
			alive = make([]bool, g.NumEdges())
			rng := rand.New(rand.NewSource(seed + 1000))
			for i := range alive {
				alive[i] = rng.Intn(4) != 0
			}
			al := alive
			wMasked = func(e graph.Edge) int64 {
				if !al[e.ID] {
					return int64(1) << 62
				}
				return w(e)
			}
		}

		wsD, wsC := NewWorkspace(g.NumNodes()), NewWorkspace(g.NumNodes())
		td, cycD, okD := SPFAAllInto(wsD, g, wMasked)
		tc, cycC, okC := SPFAAllCSRInto(wsC, c, lw, alive)
		if okD != okC {
			t.Fatalf("seed %d: verdict %v vs %v", seed, okD, okC)
		}
		sameTree(t, "spfa", td, tc)
		sameCycle(t, "spfa", cycD, cycC)
	}
}

func TestBellmanFordAllCSRMatchesDigraph(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, c := mirrorPair(t, seed+100, 15, 45, int(seed%5)*3)
		w := Combine(1, -1)
		lw := LinCombine(1, -1)
		wsD, wsC := NewWorkspace(g.NumNodes()), NewWorkspace(g.NumNodes())
		td, cycD, okD := BellmanFordAllInto(wsD, g, w)
		tc, cycC, okC := BellmanFordAllCSRInto(wsC, c, lw, nil)
		if okD != okC {
			t.Fatalf("seed %d: verdict %v vs %v", seed, okD, okC)
		}
		sameTree(t, "bf", td, tc)
		sameCycle(t, "bf", cycD, cycC)
	}
}

// TestDijkstraCSRMatchesDigraph covers both the unmixed fast path and the
// merged iteration of a flipped view (weights re-patched nonnegative via
// SetWeights so Dijkstra's contract holds).
func TestDijkstraCSRMatchesDigraph(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, c := mirrorPair(t, seed+200, 20, 70, 0)
		if seed%2 == 1 {
			// Flip a few edges, then restore nonnegative weights in place on
			// both representations: the view stays Mixed (merge path) while
			// satisfying Dijkstra's nonnegativity contract.
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10; i++ {
				id := graph.EdgeID(rng.Intn(g.NumEdges()))
				g.FlipEdge(id)
				c.Flip(id)
				e := g.Edge(id)
				cost, delay := e.Cost, e.Delay
				if cost < 0 {
					cost = -cost
				}
				if delay < 0 {
					delay = -delay
				}
				g.SetEdgeWeights(id, cost, delay)
				c.SetWeights(id, cost, delay)
			}
			if err := c.Validate(g); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !c.Mixed() {
				t.Fatalf("seed %d: expected a mixed view", seed)
			}
		}
		s := graph.NodeID(seed % 20)
		wsD, wsC := NewWorkspace(g.NumNodes()), NewWorkspace(g.NumNodes())
		td := DijkstraInto(wsD, g, s, CostWeight)
		tc := DijkstraCSRInto(wsC, c, s, LinCost)
		sameTree(t, "dijkstra", td, tc)
	}
}

func TestLinWeightMatchesCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		q := rng.Int63n(1<<31) - (1 << 30)
		p := rng.Int63n(1<<31) - (1 << 30)
		cost := rng.Int63n(1<<31) - (1 << 30)
		delay := rng.Int63n(1<<31) - (1 << 30)
		e := graph.Edge{Cost: cost, Delay: delay}
		if got, want := LinCombine(q, p).Of(cost, delay), Combine(q, p)(e); got != want {
			t.Fatalf("q=%d p=%d c=%d d=%d: %d vs %d", q, p, cost, delay, got, want)
		}
	}
}
