package shortest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestSPFAMatchesBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(41)-8), 0)
			}
		}
		bfT, _, bfOK := BellmanFord(g, 0, CostWeight)
		spT, spCyc, spOK := SPFA(g, 0, CostWeight)
		if bfOK != spOK {
			return false
		}
		if !spOK {
			// Both found negative cycles; SPFA's must be genuinely negative.
			return spCyc.Validate(g, true) == nil && spCyc.Cost(g) < 0
		}
		for v := 0; v < n; v++ {
			if bfT.Dist[v] != spT.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSPFAAllMatchesBellmanFordAll(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(31)-6), 0)
			}
		}
		_, _, bfOK := BellmanFordAll(g, CostWeight)
		spT, spCyc, spOK := SPFAAll(g, CostWeight)
		if bfOK != spOK {
			return false
		}
		if !spOK {
			return spCyc.Validate(g, true) == nil && spCyc.Cost(g) < 0
		}
		// Distances must be valid potentials.
		for _, e := range g.Edges() {
			if e.Cost+spT.Dist[e.From]-spT.Dist[e.To] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSPFASimple(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 4, 0)
	g.AddEdge(0, 2, 1, 0)
	g.AddEdge(2, 1, -3, 0)
	g.AddEdge(1, 3, 2, 0)
	tr, _, ok := SPFA(g, 0, CostWeight)
	if !ok || tr.Dist[1] != -2 || tr.Dist[3] != 0 {
		t.Fatalf("ok=%v dist=%v", ok, tr.Dist)
	}
}
