package shortest

import (
	"repro/internal/graph"
)

// BellmanFord computes shortest paths from s under w, allowing negative
// weights. If a negative cycle is reachable from s, ok=false and the cycle
// is returned; otherwise ok=true and cycle is empty.
func BellmanFord(g *graph.Digraph, s graph.NodeID, w Weight) (t Tree, cycle graph.Cycle, ok bool) {
	return BellmanFordInto(NewWorkspace(g.NumNodes()), g, s, w)
}

// BellmanFordInto is BellmanFord over caller-provided scratch. The returned
// Tree aliases the workspace (see Workspace).
//
//krsp:noalloc
func BellmanFordInto(ws *Workspace, g *graph.Digraph, s graph.NodeID, w Weight) (Tree, graph.Cycle, bool) {
	t := ws.tree(g.NumNodes())
	for v := range t.Dist {
		t.Dist[v] = Inf
		t.Parent[v] = -1
	}
	t.Dist[s] = 0
	return bfCore(ws, g, w, t)
}

// BellmanFordAll runs Bellman–Ford from a virtual super-source connected to
// every vertex with weight 0 (all initial distances zero). It detects a
// negative cycle anywhere in the graph; otherwise the distances form valid
// potentials: dist[v] ≤ dist[u] + w(u→v) for every edge.
func BellmanFordAll(g *graph.Digraph, w Weight) (t Tree, cycle graph.Cycle, ok bool) {
	return BellmanFordAllInto(NewWorkspace(g.NumNodes()), g, w)
}

// BellmanFordAllInto is BellmanFordAll over caller-provided scratch. The
// returned Tree aliases the workspace (see Workspace).
//
//krsp:noalloc
func BellmanFordAllInto(ws *Workspace, g *graph.Digraph, w Weight) (Tree, graph.Cycle, bool) {
	t := ws.tree(g.NumNodes())
	for v := range t.Dist {
		t.Dist[v] = 0
		t.Parent[v] = -1
	}
	return bfCore(ws, g, w, t)
}

func bfCore(ws *Workspace, g *graph.Digraph, w Weight, t Tree) (Tree, graph.Cycle, bool) {
	n := g.NumNodes()
	edges := g.EdgesView()
	var lastRelaxed graph.NodeID = -1
	for pass := 0; pass < n; pass++ {
		if ws.cancel.Check() {
			// Cancelled between passes: conservative "no cycle" verdict;
			// solve-path callers re-check the Canceller (SetCancel contract).
			return t, graph.Cycle{}, true
		}
		changed := false
		for _, e := range edges {
			if t.Dist[e.From] == Inf {
				continue
			}
			if nd := t.Dist[e.From] + w(e); nd < t.Dist[e.To] { //lint:allow weightovf finite Dist is a <=n-1 edge path sum, |nd| < n*MaxWeight < 2^47
				t.Dist[e.To] = nd
				t.Parent[e.To] = e.ID
				changed = true
				lastRelaxed = e.To
			}
		}
		if !changed {
			return t, graph.Cycle{}, true
		}
	}
	// A relaxation happened in the n-th pass: a negative cycle exists.
	// Walk parents n times from the last relaxed vertex to guarantee we are
	// on the cycle, then extract it.
	v := lastRelaxed
	for i := 0; i < n; i++ {
		v = g.Edge(t.Parent[v]).From
	}
	cyc := extractParentCycle(g, t.Parent, v)
	return t, cyc, false
}

// extractParentCycle follows parent edges from a vertex known to lie on a
// parent-pointer cycle and returns that cycle in forward edge order.
//
//krsp:terminates(parent-pointer cycle is vertex-simple, so the walk closes within n steps)
func extractParentCycle(g *graph.Digraph, parent []graph.EdgeID, start graph.NodeID) graph.Cycle {
	var revEdges []graph.EdgeID
	v := start
	for {
		id := parent[v]
		//lint:allow contracts cold path: runs once per extracted cycle, ≤ n appends; counted in the bench-guard alloc budget
		revEdges = append(revEdges, id)
		v = g.Edge(id).From
		if v == start {
			break
		}
	}
	// revEdges currently lists edges from the cycle walked backwards;
	// reverse to get forward order starting at `start`'s predecessor chain.
	for i, j := 0, len(revEdges)-1; i < j; i, j = i+1, j-1 {
		revEdges[i], revEdges[j] = revEdges[j], revEdges[i]
	}
	return graph.Cycle{Edges: revEdges}
}

// NegativeCycle finds any negative-weight cycle in g under w, returning
// found=false if none exists. When found, the returned cycle is extracted
// from Bellman–Ford parent pointers, has strictly negative total weight,
// and is vertex-simple.
func NegativeCycle(g *graph.Digraph, w Weight) (graph.Cycle, bool) {
	return NegativeCycleInto(NewWorkspace(g.NumNodes()), g, w)
}

// NegativeCycleInto is NegativeCycle over caller-provided scratch.
//
//krsp:noalloc
func NegativeCycleInto(ws *Workspace, g *graph.Digraph, w Weight) (graph.Cycle, bool) {
	_, cyc, ok := BellmanFordAllInto(ws, g, w)
	if ok {
		return graph.Cycle{}, false
	}
	return cyc, true
}

// Potentials returns node potentials π with π[v] ≤ π[u] + w(u→v) for every
// edge (so reduced weights are nonnegative), or found=false if g has a
// negative cycle under w. Unreachable is impossible here since the virtual
// super-source reaches everything.
func Potentials(g *graph.Digraph, w Weight) ([]int64, bool) {
	return PotentialsInto(NewWorkspace(g.NumNodes()), g, w)
}

// PotentialsInto is Potentials over caller-provided scratch. The returned
// slice aliases the workspace (see Workspace).
//
//krsp:noalloc
func PotentialsInto(ws *Workspace, g *graph.Digraph, w Weight) ([]int64, bool) {
	t, _, ok := BellmanFordAllInto(ws, g, w)
	if !ok {
		return nil, false
	}
	return t.Dist, true
}
