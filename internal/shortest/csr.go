package shortest

import (
	"repro/internal/graph"
)

// LinWeight is a linear edge weighting q·cost + p·delay in packed form.
// Every weighting the solver routes on is linear in (cost, delay) — cost,
// delay, the Lagrangian combinations Combine(q, p), and the bicameral
// lexicographic weights — so CSR kernels take a LinWeight instead of a
// Weight closure: two multiplies against the packed arrays replace an
// indirect call per edge, and two's-complement distributivity makes the
// evaluation bitwise identical to the closure it replaces even at the
// overflow margins the masking sentinel lives near.
type LinWeight struct {
	Q int64 // cost coefficient
	P int64 // delay coefficient
}

// Of evaluates the weighting on an edge's (cost, delay).
func (lw LinWeight) Of(cost, delay int64) int64 {
	return lw.Q*cost + lw.P*delay //lint:allow weightovf exact λ=p/q search; callers keep |p|,|q|·MaxWeight in range
}

// LinCost and LinDelay are the CSR counterparts of CostWeight/DelayWeight.
var (
	LinCost  = LinWeight{Q: 1}
	LinDelay = LinWeight{P: 1}
)

// LinCombine is the CSR counterpart of Combine: q·cost + p·delay.
func LinCombine(q, p int64) LinWeight { return LinWeight{Q: q, P: p} }

// maskedW is the sentinel weight of an excluded edge, matching the
// bicameral engine's masking trick: with all-sources detection every
// tentative distance is ≤ 0 and only decreases, so du + maskedW > 0 can
// never win a relaxation and the edge is effectively deleted without
// touching the graph. Callers guarantee |du| < 2^61 so the sum cannot wrap.
const maskedW = int64(1) << 62

func defaultBudgetCSR(c *graph.CSR) int {
	return 4*c.NumNodes()*c.NumEdges() + 256
}

// DijkstraCSRInto is DijkstraInto over a CSR view: shortest paths from s
// under lw, all selected weights nonnegative (panics otherwise, same
// contract as Dijkstra). Iteration follows the view's CURRENT orientation
// in ascending edge-ID order, which is bit-identical to running DijkstraInto
// on the Digraph the view mirrors.
//
//krsp:noalloc
//krsp:terminates(each vertex finalizes once and the heap holds ≤ m entries)
//krsp:inbounds
func DijkstraCSRInto(ws *Workspace, c *graph.CSR, s graph.NodeID, lw LinWeight) Tree {
	n := c.NumNodes()
	t := ws.tree(n)
	done := ws.done[:n] //lint:allow boundsafe ws.tree(n) grows ws.done to n alongside the tree arrays
	for v := range t.Dist {
		t.Dist[v] = Inf
		t.Parent[v] = -1 //lint:allow boundsafe ws.tree(n) sizes Dist and Parent to the same length
		done[v] = false  //lint:allow boundsafe ws.tree(n) grows ws.done to n alongside the tree arrays
	}
	t.Dist[s] = 0
	h := ws.heap
	h.Reset()
	h.Push(int(s), 0)
	mixed := c.Mixed()
	for h.Len() > 0 {
		ui, du := h.Pop()
		u := graph.NodeID(ui)
		if done[u] {
			continue
		}
		done[u] = true
		if !mixed {
			// Never-flipped view: OutRow IS the current adjacency.
			for _, id := range c.OutRow(u) {
				to := c.Head(id)
				if done[to] {
					continue
				}
				rw := lw.Of(c.Cost(id), c.Delay(id))
				if rw < 0 {
					//lint:allow nopanic nonnegative-weight contract; a violation is a solver bug, not bad input
					panic("shortest: negative weight in DijkstraCSRInto")
				}
				if nd := du + rw; nd < t.Dist[to] {
					t.Dist[to] = nd
					t.Parent[to] = id
					h.Push(int(to), nd)
				}
			}
			continue
		}
		// Mixed view: merge the non-reversed out row with the reversed in
		// row by ascending edge ID — exactly the Digraph's sorted adjacency.
		outRow, inRow := c.OutRow(u), c.InRow(u)
		i, j := 0, 0
		for {
			for i < len(outRow) && c.Reversed(outRow[i]) {
				i++
			}
			for j < len(inRow) && !c.Reversed(inRow[j]) {
				j++
			}
			var id graph.EdgeID
			if i < len(outRow) && (j >= len(inRow) || outRow[i] < inRow[j]) {
				id = outRow[i]
				i++
			} else if j < len(inRow) {
				id = inRow[j]
				j++
			} else {
				break
			}
			to := c.Head(id)
			if done[to] {
				continue
			}
			rw := lw.Of(c.Cost(id), c.Delay(id))
			if rw < 0 {
				//lint:allow nopanic nonnegative-weight contract; a violation is a solver bug, not bad input
				panic("shortest: negative weight in DijkstraCSRInto")
			}
			if nd := du + rw; nd < t.Dist[to] {
				t.Dist[to] = nd
				t.Parent[to] = id
				h.Push(int(to), nd)
			}
		}
	}
	return t
}

// SPFAAllCSRInto is SPFAAllInto over a CSR view: negative-cycle detection
// from a virtual super-source under lw, with an optional mask — edges whose
// alive entry is false are weighted by the masking sentinel and can never
// relax (a nil mask keeps every edge). Falls back to the pass-based CSR
// Bellman–Ford when the relaxation budget blows, mirroring SPFAAllInto's
// verdict contract (including the conservative "no cycle" on cancellation).
//
//krsp:noalloc
//krsp:inbounds
func SPFAAllCSRInto(ws *Workspace, c *graph.CSR, lw LinWeight, alive []bool) (Tree, graph.Cycle, bool) {
	n := c.NumNodes()
	t := ws.tree(n)
	for v := range t.Dist {
		t.Dist[v] = 0
		t.Parent[v] = -1 //lint:allow boundsafe ws.tree(n) sizes Dist and Parent to the same length
	}
	tree, cyc, ok, done := spfaCSRCore(ws, c, lw, alive, t, defaultBudgetCSR(c))
	if done {
		return tree, cyc, ok
	}
	if ws.cancel.Stopped() {
		return tree, graph.Cycle{}, true // cancelled: see Workspace.SetCancel
	}
	return BellmanFordAllCSRInto(ws, c, lw, alive)
}

// spfaCSRCore is spfaCore over a CSR view (all-sources seeding only, which
// is the solve-path shape). Relaxation order, budget accounting, pathLen
// verification and cycle extraction all mirror spfaCore exactly.
//
//krsp:inbounds
func spfaCSRCore(ws *Workspace, c *graph.CSR, lw LinWeight, alive []bool, t Tree, budget int) (Tree, graph.Cycle, bool, bool) {
	n := c.NumNodes()
	inQueue, pathLen, queue := ws.resetFlags(n)
	defer func() { ws.queue = queue[:0] }() //lint:allow boundsafe [:0] never exceeds capacity; reslicing hands the grown buffer back to the workspace
	relaxations := 0
	for v := 0; v < n; v++ {
		queue = append(queue, graph.NodeID(v)) //lint:allow contracts amortized: appends reuse the persisted workspace queue buffer
		inQueue[v] = true                      //lint:allow boundsafe ws.resetFlags(n) sizes inQueue to n, the loop bound
	}
	head := 0
	for head < len(queue) {
		if ws.cancel.Poll() {
			ws.recordSPFA(relaxations, false)
			return t, graph.Cycle{}, false, false
		}
		u := queue[head]
		head++
		inQueue[u] = false
		du := t.Dist[u]
		if du == Inf {
			continue
		}
		outRow, inRow := c.OutRow(u), c.InRow(u)
		i, j := 0, 0
		for { //lint:allow ctxpoll bounded row merge: ≤ deg(u) steps, and the dequeue loop above polls once per vertex
			for i < len(outRow) && c.Reversed(outRow[i]) {
				i++
			}
			for j < len(inRow) && !c.Reversed(inRow[j]) { //lint:allow ctxpoll cursor only advances: ≤ len(inRow) steps total across the merge
				j++
			}
			var id graph.EdgeID
			if i < len(outRow) && (j >= len(inRow) || outRow[i] < inRow[j]) {
				id = outRow[i]
				i++
			} else if j < len(inRow) {
				id = inRow[j]
				j++
			} else {
				break
			}
			w := lw.Of(c.Cost(id), c.Delay(id))
			if alive != nil && !alive[id] {
				w = maskedW
			}
			to := c.Head(id)
			if nd := du + w; nd < t.Dist[to] {
				budget--
				relaxations++
				if budget < 0 {
					ws.recordSPFA(relaxations, false)
					return t, graph.Cycle{}, false, false
				}
				t.Dist[to] = nd
				t.Parent[to] = id
				pathLen[to] = pathLen[u] + 1
				if pathLen[to] >= n {
					// Same lazy-snapshot verification as spfaCore: confirm a
					// repeated vertex on the live parent chain before trusting
					// the negative-cycle trigger.
					if at, cyclic := chainRepeatCSR(c, t.Parent, to); cyclic {
						ws.recordSPFA(relaxations, true)
						return t, extractParentCycleCSR(c, t.Parent, at), false, true
					}
					pathLen[to] = chainLengthCSR(c, t.Parent, to)
				}
				if !inQueue[to] {
					inQueue[to] = true
					queue = append(queue, to) //lint:allow contracts amortized: appends reuse the persisted workspace queue buffer
				}
			}
		}
	}
	ws.recordSPFA(relaxations, false)
	return t, graph.Cycle{}, true, true
}

// BellmanFordAllCSRInto is BellmanFordAllInto over a CSR view with the same
// optional mask as SPFAAllCSRInto. The per-pass edge scan walks IDs
// ascending in current orientation — identical to bfCore's EdgesView scan.
//
//krsp:noalloc
//krsp:inbounds
func BellmanFordAllCSRInto(ws *Workspace, c *graph.CSR, lw LinWeight, alive []bool) (Tree, graph.Cycle, bool) {
	n := c.NumNodes()
	t := ws.tree(n)
	for v := range t.Dist {
		t.Dist[v] = 0
		t.Parent[v] = -1 //lint:allow boundsafe ws.tree(n) sizes Dist and Parent to the same length
	}
	m := c.NumEdges()
	var lastRelaxed graph.NodeID = -1
	for pass := 0; pass < n; pass++ {
		if ws.cancel.Check() {
			return t, graph.Cycle{}, true // cancelled: conservative "no cycle"
		}
		changed := false
		for i := 0; i < m; i++ {
			id := graph.EdgeID(i)
			from := c.Tail(id)
			if t.Dist[from] == Inf {
				continue
			}
			w := lw.Of(c.Cost(id), c.Delay(id))
			if alive != nil && !alive[id] {
				w = maskedW
			}
			if nd := t.Dist[from] + w; nd < t.Dist[c.Head(id)] { //lint:allow weightovf finite Dist is a <=n-1 edge path sum and |du| < 2^61 under masking, so nd cannot wrap
				to := c.Head(id)
				t.Dist[to] = nd
				t.Parent[to] = id
				changed = true
				lastRelaxed = to
			}
		}
		if !changed {
			return t, graph.Cycle{}, true
		}
	}
	v := lastRelaxed
	for i := 0; i < n; i++ {
		v = c.Tail(t.Parent[v])
	}
	return t, extractParentCycleCSR(c, t.Parent, v), false
}

// chainRepeatCSR is chainRepeat over a CSR view.
//
//krsp:terminates(the seen set forces a repeat or a root exit within n steps)
func chainRepeatCSR(c *graph.CSR, parent []graph.EdgeID, v graph.NodeID) (graph.NodeID, bool) {
	seen := map[graph.NodeID]bool{v: true}
	for {
		id := parent[v]
		if id < 0 {
			return 0, false
		}
		v = c.Tail(id)
		if seen[v] {
			return v, true
		}
		//lint:allow contracts cold path: map grows only while verifying a suspected cycle; counted in the bench-guard alloc budget
		seen[v] = true
	}
}

// chainLengthCSR is chainLength over a CSR view.
//
//krsp:terminates(parent chain is acyclic here, ≤ n edges to the root)
func chainLengthCSR(c *graph.CSR, parent []graph.EdgeID, v graph.NodeID) int {
	length := 0
	for parent[v] >= 0 {
		v = c.Tail(parent[v])
		length++
	}
	return length
}

// extractParentCycleCSR is extractParentCycle over a CSR view.
//
//krsp:terminates(parent-pointer cycle is vertex-simple, so the walk closes within n steps)
func extractParentCycleCSR(c *graph.CSR, parent []graph.EdgeID, start graph.NodeID) graph.Cycle {
	var revEdges []graph.EdgeID
	v := start
	for {
		id := parent[v]
		//lint:allow contracts cold path: runs once per extracted cycle, ≤ n appends; counted in the bench-guard alloc budget
		revEdges = append(revEdges, id)
		v = c.Tail(id)
		if v == start {
			break
		}
	}
	for i, j := 0, len(revEdges)-1; i < j; i, j = i+1, j-1 {
		revEdges[i], revEdges[j] = revEdges[j], revEdges[i]
	}
	return graph.Cycle{Edges: revEdges}
}
