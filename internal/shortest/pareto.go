package shortest

import (
	"sort"

	"repro/internal/graph"
)

// Label is one Pareto-optimal (cost, delay) pair at a vertex together with
// the path realizing it.
type Label struct {
	Cost  int64
	Delay int64
	Path  graph.Path
}

// ParetoFrontier enumerates all non-dominated (cost, delay) pairs of s→t
// paths by label-setting over a priority queue ordered by (cost, delay).
// Both criteria must be nonnegative. maxLabels bounds the total number of
// labels settled across all vertices (0 means unlimited); ok=false reports
// that the bound was hit and the frontier may be incomplete.
//
// This is the exact bicriteria engine: worst-case exponential, intended for
// small instances (ground truth in tests) and for the RSP exact baseline.
func ParetoFrontier(g *graph.Digraph, s, t graph.NodeID, maxLabels int) (frontier []Label, ok bool) {
	type state struct {
		cost, delay int64
		v           graph.NodeID
		parent      int          // index into settled, -1 for root
		via         graph.EdgeID // edge into v
	}
	// Priority queue ordered lexicographically by (cost, delay). We embed
	// both into a single int64 key only if safe; otherwise fall back to a
	// sorted slice. For robustness use an explicit heap via sort on a
	// slice-backed queue (small instances).
	var queue []state
	push := func(st state) {
		queue = append(queue, st)
	}
	popMin := func() state {
		best := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].cost < queue[best].cost ||
				(queue[i].cost == queue[best].cost && queue[i].delay < queue[best].delay) {
				best = i
			}
		}
		st := queue[best]
		queue[best] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		return st
	}

	n := g.NumNodes()
	settledAt := make([][]state, n) // non-dominated settled labels per vertex
	var settled []state
	dominated := func(v graph.NodeID, c, d int64) bool {
		for _, l := range settledAt[v] {
			if l.cost <= c && l.delay <= d {
				return true
			}
		}
		return false
	}
	push(state{0, 0, s, -1, -1})
	ok = true
	for len(queue) > 0 {
		st := popMin()
		if dominated(st.v, st.cost, st.delay) {
			continue
		}
		settled = append(settled, st)
		settledAt[st.v] = append(settledAt[st.v], st)
		if maxLabels > 0 && len(settled) > maxLabels {
			ok = false
			break
		}
		idx := len(settled) - 1
		for _, id := range g.Out(st.v) {
			e := g.Edge(id)
			nc, nd := st.cost+e.Cost, st.delay+e.Delay //lint:allow weightovf label aggregates ≤ n·MaxWeight
			if !dominated(e.To, nc, nd) {
				push(state{nc, nd, e.To, idx, id})
			}
		}
	}
	// Collect labels at t with reconstructed paths.
	for _, st := range settledAt[t] {
		var rev []graph.EdgeID
		cur := st
		for cur.via >= 0 {
			rev = append(rev, cur.via)
			cur = settled[cur.parent]
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		frontier = append(frontier, Label{Cost: st.cost, Delay: st.delay, Path: graph.Path{Edges: rev}})
	}
	sort.Slice(frontier, func(i, j int) bool {
		if frontier[i].Cost != frontier[j].Cost {
			return frontier[i].Cost < frontier[j].Cost
		}
		return frontier[i].Delay < frontier[j].Delay
	})
	return frontier, ok
}
