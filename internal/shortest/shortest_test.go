package shortest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func mkWeighted(t *testing.T) *graph.Digraph {
	t.Helper()
	// 0→1 (1/10), 0→2 (4/1), 1→2 (2/1), 2→3 (1/1), 1→3 (7/2)
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(0, 2, 4, 1)
	g.AddEdge(1, 2, 2, 1)
	g.AddEdge(2, 3, 1, 1)
	g.AddEdge(1, 3, 7, 2)
	return g
}

func TestBFS(t *testing.T) {
	g := mkWeighted(t)
	tr := BFS(g, 0)
	want := []int64{0, 1, 1, 2}
	for v, d := range want {
		if tr.Dist[v] != d {
			t.Fatalf("dist[%d]=%d want %d", v, tr.Dist[v], d)
		}
	}
	p, ok := tr.PathTo(g, 3)
	if !ok || p.Len() != 2 {
		t.Fatalf("PathTo(3) = %v %v", p, ok)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1, 1)
	tr := BFS(g, 0)
	if tr.Dist[2] != Inf {
		t.Fatal("vertex 2 should be unreachable")
	}
	if _, ok := tr.PathTo(g, 2); ok {
		t.Fatal("PathTo unreachable should fail")
	}
}

func TestDijkstraCost(t *testing.T) {
	g := mkWeighted(t)
	tr := Dijkstra(g, 0, CostWeight)
	want := []int64{0, 1, 3, 4}
	for v, d := range want {
		if tr.Dist[v] != d {
			t.Fatalf("dist[%d]=%d want %d", v, tr.Dist[v], d)
		}
	}
	p, _ := tr.PathTo(g, 3)
	if err := p.Validate(g, 0, 3, true); err != nil {
		t.Fatal(err)
	}
	if p.Cost(g) != 4 {
		t.Fatalf("path cost %d", p.Cost(g))
	}
}

func TestDijkstraDelay(t *testing.T) {
	g := mkWeighted(t)
	tr := Dijkstra(g, 0, DelayWeight)
	if tr.Dist[3] != 2 { // 0→2→3: 1+1
		t.Fatalf("delay dist[3]=%d", tr.Dist[3])
	}
}

func TestDijkstraPanicsOnNegative(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, -1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dijkstra(g, 0, CostWeight)
}

func TestCombineWeight(t *testing.T) {
	e := graph.Edge{Cost: 3, Delay: 5}
	if w := Combine(2, 7)(e); w != 2*3+7*5 {
		t.Fatalf("combine = %d", w)
	}
}

func TestDijkstraWithPotentials(t *testing.T) {
	// Negative edge made nonnegative by potentials.
	g := graph.New(3)
	g.AddEdge(0, 1, 5, 0)
	g.AddEdge(1, 2, -2, 0)
	g.AddEdge(0, 2, 4, 0)
	pot, ok := Potentials(g, CostWeight)
	if !ok {
		t.Fatal("potentials should exist")
	}
	tr := DijkstraPotentials(g, 0, CostWeight, pot)
	if tr.Dist[2] != 3 {
		t.Fatalf("dist[2]=%d want 3", tr.Dist[2])
	}
}

func TestBellmanFordMatchesDijkstraNonneg(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := graph.New(n)
		m := r.Intn(4 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), int64(r.Intn(50)), int64(r.Intn(50)))
		}
		bf, _, ok := BellmanFord(g, 0, CostWeight)
		if !ok {
			return false // nonnegative weights: no negative cycle possible
		}
		dj := Dijkstra(g, 0, CostWeight)
		for v := 0; v < n; v++ {
			if bf.Dist[v] != dj.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBellmanFordNegativeEdgesNoCycle(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 4, 0)
	g.AddEdge(0, 2, 1, 0)
	g.AddEdge(2, 1, -3, 0)
	g.AddEdge(1, 3, 2, 0)
	tr, _, ok := BellmanFord(g, 0, CostWeight)
	if !ok {
		t.Fatal("no negative cycle expected")
	}
	if tr.Dist[1] != -2 || tr.Dist[3] != 0 {
		t.Fatalf("dist = %v", tr.Dist)
	}
}

func TestBellmanFordDetectsNegativeCycle(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 2, -5, 0)
	g.AddEdge(2, 1, 2, 0)
	_, cyc, ok := BellmanFord(g, 0, CostWeight)
	if ok {
		t.Fatal("negative cycle not detected")
	}
	if err := cyc.Validate(g, true); err != nil {
		t.Fatal(err)
	}
	if cyc.Cost(g) >= 0 {
		t.Fatalf("cycle cost %d not negative", cyc.Cost(g))
	}
}

func TestNegativeCycleAbsent(t *testing.T) {
	g := mkWeighted(t)
	if _, found := NegativeCycle(g, CostWeight); found {
		t.Fatal("found phantom negative cycle")
	}
}

func TestNegativeCycleUnreachableFromZero(t *testing.T) {
	// Negative cycle in a component unreachable from vertex 0; the
	// all-sources variant must still find it.
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(2, 3, -5, 0)
	g.AddEdge(3, 2, 1, 0)
	cyc, found := NegativeCycle(g, CostWeight)
	if !found {
		t.Fatal("missed negative cycle")
	}
	if err := cyc.Validate(g, true); err != nil {
		t.Fatal(err)
	}
	if cyc.Cost(g) >= 0 {
		t.Fatalf("cycle cost %d", cyc.Cost(g))
	}
}

func TestPotentialsValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), int64(r.Intn(40)-5), 0)
		}
		pot, ok := Potentials(g, CostWeight)
		if !ok {
			// Negative cycle: verify one actually exists.
			_, found := NegativeCycle(g, CostWeight)
			return found
		}
		for _, e := range g.Edges() {
			if e.Cost+pot[e.From]-pot[e.To] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologicalAndDAGShortest(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(0, 2, 5, 0)
	g.AddEdge(1, 2, -10, 0)
	g.AddEdge(2, 3, 2, 0)
	order, ok := Topological(g)
	if !ok || len(order) != 4 {
		t.Fatalf("topo failed: %v %v", order, ok)
	}
	tr, ok := DAGShortest(g, 0, CostWeight)
	if !ok {
		t.Fatal("DAGShortest rejected a DAG")
	}
	if tr.Dist[3] != -7 {
		t.Fatalf("dist[3]=%d want -7", tr.Dist[3])
	}
	// Add a cycle; both must now fail.
	g.AddEdge(3, 0, 0, 0)
	if _, ok := Topological(g); ok {
		t.Fatal("topo accepted cyclic graph")
	}
	if _, ok := DAGShortest(g, 0, CostWeight); ok {
		t.Fatal("DAGShortest accepted cyclic graph")
	}
}

func TestMinMeanCycleSimple(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 2, 0)
	g.AddEdge(1, 0, 2, 0) // mean 2
	g.AddEdge(1, 2, 1, 0)
	g.AddEdge(2, 1, 1, 0) // mean 1
	cyc, num, den, found := MinMeanCycle(g, CostWeight)
	if !found {
		t.Fatal("no cycle found")
	}
	if err := cyc.Validate(g, true); err != nil {
		t.Fatal(err)
	}
	if num*1 != den*1 { // mean must be exactly 1
		t.Fatalf("mean %d/%d want 1", num, den)
	}
	if got := cyc.Cost(g) * den; got != num*int64(cyc.Len()) {
		t.Fatalf("extracted cycle mean %d/%d doesn't match reported %d/%d",
			cyc.Cost(g), cyc.Len(), num, den)
	}
}

func TestMinMeanCycleNegative(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, -3, 0)
	g.AddEdge(1, 0, 1, 0)
	g.AddEdge(1, 2, 10, 0)
	g.AddEdge(2, 1, 10, 0)
	cyc, num, den, found := MinMeanCycle(g, CostWeight)
	if !found {
		t.Fatal("no cycle")
	}
	if num >= 0 {
		t.Fatalf("mean %d/%d should be negative", num, den)
	}
	if cyc.Cost(g) != -2 {
		t.Fatalf("cycle cost %d want -2", cyc.Cost(g))
	}
}

func TestMinMeanCycleAcyclic(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 2, 1, 0)
	if _, _, _, found := MinMeanCycle(g, CostWeight); found {
		t.Fatal("found cycle in DAG")
	}
}

func TestMinMeanCycleMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		g := graph.New(n)
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(21)-10), 0)
		}
		bNum, bDen, bFound := bruteMinMean(g)
		cyc, num, den, found := MinMeanCycle(g, CostWeight)
		if found != bFound {
			return false
		}
		if !found {
			return true
		}
		if cyc.Validate(g, true) != nil {
			return false
		}
		// Reported mean equals brute force minimum.
		if num*bDen != bNum*den {
			return false
		}
		// Extracted cycle's mean must not exceed reported mean... it should
		// equal it; allow ≤ as the DP guarantees ≤ and minimality forces =.
		return cyc.Cost(g)*den <= num*int64(cyc.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// bruteMinMean enumerates all simple cycles via DFS (tiny graphs only).
func bruteMinMean(g *graph.Digraph) (num, den int64, found bool) {
	n := g.NumNodes()
	var best struct {
		num, den int64
		ok       bool
	}
	var dfs func(start, cur graph.NodeID, visited map[graph.NodeID]bool, cost int64, length int64)
	dfs = func(start, cur graph.NodeID, visited map[graph.NodeID]bool, cost int64, length int64) {
		for _, id := range g.Out(cur) {
			e := g.Edge(id)
			if e.To == start && length > 0 {
				cNum, cDen := cost+e.Cost, length+1
				if !best.ok || cNum*best.den < best.num*cDen {
					best.num, best.den, best.ok = cNum, cDen, true
				}
				continue
			}
			if e.To == start || visited[e.To] || e.To < start {
				continue // canonical: cycles rooted at their min vertex
			}
			visited[e.To] = true
			dfs(start, e.To, visited, cost+e.Cost, length+1)
			delete(visited, e.To)
		}
	}
	for v := 0; v < n; v++ {
		dfs(graph.NodeID(v), graph.NodeID(v), map[graph.NodeID]bool{}, 0, 0)
	}
	return best.num, best.den, best.ok
}

func TestParetoFrontierSmall(t *testing.T) {
	g := mkWeighted(t)
	fr, ok := ParetoFrontier(g, 0, 3, 0)
	if !ok {
		t.Fatal("bounded?")
	}
	// s→t paths: 0-1-3 (8,12), 0-1-2-3 (4,12), 0-2-3 (5,2).
	// (4,12) and (5,2) are the frontier; (8,12) dominated by (4,12).
	if len(fr) != 2 {
		t.Fatalf("frontier = %+v", fr)
	}
	if fr[0].Cost != 4 || fr[0].Delay != 12 || fr[1].Cost != 5 || fr[1].Delay != 2 {
		t.Fatalf("frontier = %+v", fr)
	}
	for _, l := range fr {
		if err := l.Path.Validate(g, 0, 3, true); err != nil {
			t.Fatal(err)
		}
		if l.Path.Cost(g) != l.Cost || l.Path.Delay(g) != l.Delay {
			t.Fatal("label metrics mismatch path")
		}
	}
}

func TestParetoFrontierLabelCap(t *testing.T) {
	g := mkWeighted(t)
	_, ok := ParetoFrontier(g, 0, 3, 1)
	if ok {
		t.Fatal("cap of 1 label should report incomplete")
	}
}

func TestParetoFrontierNonDominated(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(20)), int64(r.Intn(20)))
		}
		fr, ok := ParetoFrontier(g, 0, graph.NodeID(n-1), 100000)
		if !ok {
			return true // cap hit, skip
		}
		for i := range fr {
			for j := range fr {
				if i != j && fr[i].Cost <= fr[j].Cost && fr[i].Delay <= fr[j].Delay {
					return false // fr[j] dominated
				}
			}
		}
		for _, l := range fr {
			if l.Path.Validate(g, 0, graph.NodeID(n-1), false) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
