// Package shortest implements the single-criterion shortest-path substrate:
// BFS, Dijkstra with potentials, Bellman–Ford with negative-cycle
// extraction, Karp's minimum mean cycle, and a bicriteria Pareto frontier
// enumerator. All algorithms take an edge-weight selector so callers can
// route on cost, delay, or integer combinations q·c + p·d.
package shortest

import (
	"math"

	"repro/internal/graph"
)

// Inf is the sentinel distance for unreachable vertices.
const Inf = math.MaxInt64

// Weight selects the routing weight of an edge.
type Weight func(e graph.Edge) int64

// CostWeight routes on edge cost.
func CostWeight(e graph.Edge) int64 { return e.Cost }

// DelayWeight routes on edge delay.
func DelayWeight(e graph.Edge) int64 { return e.Delay }

// Combine returns the weight q·cost + p·delay; exact integer arithmetic for
// Lagrangian searches with rational multiplier λ = p/q.
func Combine(q, p int64) Weight {
	return func(e graph.Edge) int64 { return q*e.Cost + p*e.Delay } //lint:allow weightovf exact λ=p/q search; callers keep |p|,|q|·MaxWeight in range
}

// Tree is a shortest-path tree: Dist[v] is the distance from the source
// (Inf if unreachable) and Parent[v] is the tree edge entering v (-1 at the
// source and at unreachable vertices).
type Tree struct {
	Dist   []int64
	Parent []graph.EdgeID
}

// PathTo reconstructs the tree path from the source to v, or nil if v is
// unreachable.
func (t Tree) PathTo(g *graph.Digraph, v graph.NodeID) (graph.Path, bool) {
	if t.Dist[v] == Inf {
		return graph.Path{}, false
	}
	var rev []graph.EdgeID
	for t.Parent[v] >= 0 {
		id := t.Parent[v]
		rev = append(rev, id)
		v = g.Edge(id).From
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return graph.Path{Edges: rev}, true
}

// BFS returns hop distances from s (Inf if unreachable) and parent edges.
func BFS(g *graph.Digraph, s graph.NodeID) Tree {
	n := g.NumNodes()
	t := Tree{Dist: make([]int64, n), Parent: make([]graph.EdgeID, n)}
	for v := range t.Dist {
		t.Dist[v] = Inf
		t.Parent[v] = -1
	}
	t.Dist[s] = 0
	queue := []graph.NodeID{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.Out(u) {
			e := g.Edge(id)
			if t.Dist[e.To] == Inf {
				t.Dist[e.To] = t.Dist[u] + 1
				t.Parent[e.To] = id
				queue = append(queue, e.To)
			}
		}
	}
	return t
}

// Dijkstra computes shortest paths from s under w. All selected weights
// must be nonnegative; the function panics on a negative weight since that
// would silently produce wrong answers.
func Dijkstra(g *graph.Digraph, s graph.NodeID, w Weight) Tree {
	return DijkstraPotentials(g, s, w, nil)
}

// DijkstraPotentials computes shortest paths under the reduced weight
// w(e) + pot[From] − pot[To] (Johnson's technique), returning distances in
// the ORIGINAL weight. pot may be nil for plain Dijkstra. Reduced weights
// must be nonnegative; vertices with pot[v] == Inf are treated as removed.
func DijkstraPotentials(g *graph.Digraph, s graph.NodeID, w Weight, pot []int64) Tree {
	return DijkstraPotentialsInto(NewWorkspace(g.NumNodes()), g, s, w, pot)
}

// DijkstraInto is Dijkstra over caller-provided scratch. The returned Tree
// aliases the workspace (see Workspace).
//
//krsp:noalloc
func DijkstraInto(ws *Workspace, g *graph.Digraph, s graph.NodeID, w Weight) Tree {
	return DijkstraPotentialsInto(ws, g, s, w, nil)
}

// DijkstraPotentialsInto is DijkstraPotentials over caller-provided
// scratch. The returned Tree aliases the workspace (see Workspace).
//
//krsp:noalloc
//krsp:terminates(each vertex finalizes once and the heap holds ≤ m entries)
func DijkstraPotentialsInto(ws *Workspace, g *graph.Digraph, s graph.NodeID, w Weight, pot []int64) Tree {
	n := g.NumNodes()
	t := ws.tree(n)
	done := ws.done[:n]
	for v := range t.Dist {
		t.Dist[v] = Inf
		t.Parent[v] = -1
		done[v] = false
	}
	if pot != nil && pot[s] == Inf {
		return t
	}
	// dist here is in reduced weights; convert on exit.
	t.Dist[s] = 0
	h := ws.heap
	h.Reset()
	h.Push(int(s), 0)
	for h.Len() > 0 {
		ui, du := h.Pop()
		u := graph.NodeID(ui)
		if done[u] {
			continue
		}
		done[u] = true
		for _, id := range g.Out(u) {
			e := g.Edge(id)
			if done[e.To] {
				continue
			}
			rw := w(e)
			if pot != nil {
				if pot[e.To] == Inf {
					continue // unreachable in potential graph: skip
				}
				rw += pot[e.From] - pot[e.To]
			}
			if rw < 0 {
				//lint:allow nopanic potential-validity invariant; a violation is a solver bug, not bad input
				panic("shortest: negative reduced weight in Dijkstra")
			}
			nd := du + rw
			if nd < t.Dist[e.To] {
				t.Dist[e.To] = nd
				t.Parent[e.To] = id
				h.Push(int(e.To), nd)
			}
		}
	}
	if pot != nil {
		for v := range t.Dist {
			if t.Dist[v] != Inf {
				t.Dist[v] += pot[v] - pot[s] //lint:allow weightovf de-reduction: Dist and potentials are path sums under n*MaxWeight < 2^47
			}
		}
	}
	return t
}

// Topological returns a topological order of g, or ok=false if g has a
// cycle.
func Topological(g *graph.Digraph) (order []graph.NodeID, ok bool) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for _, e := range g.EdgesView() {
		indeg[e.To]++
	}
	var queue []graph.NodeID
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, graph.NodeID(v))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, id := range g.Out(u) {
			e := g.Edge(id)
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return order, len(order) == n
}

// DAGShortest computes shortest paths from s in a DAG under w (weights may
// be negative). ok=false if g is not a DAG.
func DAGShortest(g *graph.Digraph, s graph.NodeID, w Weight) (Tree, bool) {
	order, ok := Topological(g)
	n := g.NumNodes()
	t := Tree{Dist: make([]int64, n), Parent: make([]graph.EdgeID, n)}
	for v := range t.Dist {
		t.Dist[v] = Inf
		t.Parent[v] = -1
	}
	if !ok {
		return t, false
	}
	t.Dist[s] = 0
	for _, u := range order {
		if t.Dist[u] == Inf {
			continue
		}
		for _, id := range g.Out(u) {
			e := g.Edge(id)
			if nd := t.Dist[u] + w(e); nd < t.Dist[e.To] { //lint:allow weightovf finite Dist is a DAG path sum, |nd| < n*MaxWeight < 2^47
				t.Dist[e.To] = nd
				t.Parent[e.To] = id
			}
		}
	}
	return t, true
}
