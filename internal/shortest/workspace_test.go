package shortest

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randGraphWS(r *rand.Rand, n, m int, negative bool) *graph.Digraph {
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		c, d := int64(r.Intn(20)), int64(r.Intn(20))
		if negative {
			c -= 6
			d -= 6
		}
		g.AddEdge(graph.NodeID(u), graph.NodeID(v), c, d)
	}
	return g
}

func sameTree(t *testing.T, label string, a, b Tree) {
	t.Helper()
	if len(a.Dist) != len(b.Dist) {
		t.Fatalf("%s: tree sizes %d vs %d", label, len(a.Dist), len(b.Dist))
	}
	for v := range a.Dist {
		if a.Dist[v] != b.Dist[v] || a.Parent[v] != b.Parent[v] {
			t.Fatalf("%s: node %d: (%d,%d) vs (%d,%d)",
				label, v, a.Dist[v], a.Parent[v], b.Dist[v], b.Parent[v])
		}
	}
}

// TestIntoVariantsMatchAllocating: every *_Into kernel must agree exactly
// with its allocating wrapper while ONE workspace is reused across many
// graphs of varying size — the reuse pattern the solver's hot loops rely
// on. Stale state from a previous (larger or negative-weight) search must
// never leak into the next result.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ws := NewWorkspace(1)
	for round := 0; round < 200; round++ {
		n := 2 + r.Intn(30)
		m := r.Intn(4 * n)
		negative := round%3 == 0
		g := randGraphWS(r, n, m, negative)
		s := graph.NodeID(r.Intn(n))

		if !negative {
			want := DijkstraPotentials(g, s, CostWeight, nil)
			got := DijkstraPotentialsInto(ws, g, s, CostWeight, nil)
			sameTree(t, "dijkstra", want, got)
		}

		wantT, wantCyc, wantOK := SPFA(g, s, CostWeight)
		gotT, gotCyc, gotOK := SPFAInto(ws, g, s, CostWeight)
		if wantOK != gotOK {
			t.Fatalf("spfa: ok %v vs %v", wantOK, gotOK)
		}
		if wantOK {
			sameTree(t, "spfa", wantT, gotT)
		} else if len(wantCyc.Edges) != len(gotCyc.Edges) {
			t.Fatalf("spfa: cycle lengths %d vs %d", len(wantCyc.Edges), len(gotCyc.Edges))
		}

		wantT, wantCyc, wantOK = BellmanFordAll(g, CostWeight)
		gotT, gotCyc, gotOK = BellmanFordAllInto(ws, g, CostWeight)
		if wantOK != gotOK {
			t.Fatalf("bfAll: ok %v vs %v", wantOK, gotOK)
		}
		if wantOK {
			sameTree(t, "bfAll", wantT, gotT)
		} else if len(wantCyc.Edges) != len(gotCyc.Edges) {
			t.Fatalf("bfAll: cycle lengths %d vs %d", len(wantCyc.Edges), len(gotCyc.Edges))
		}

		wantCyc2, wantNeg, wantDone := SPFAAllBounded(g, CostWeight, 1<<30)
		gotCyc2, gotNeg, gotDone := SPFAAllBoundedInto(ws, g, CostWeight, 1<<30)
		if wantNeg != gotNeg || wantDone != gotDone {
			t.Fatalf("spfaBounded: (%v,%v) vs (%v,%v)", wantNeg, wantDone, gotNeg, gotDone)
		}
		if wantNeg && len(wantCyc2.Edges) != len(gotCyc2.Edges) {
			t.Fatalf("spfaBounded: cycle lengths differ")
		}
	}
}

// TestWorkspaceTreeAliasing documents the aliasing contract: a returned
// tree is clobbered by the next *_Into call, and Clone detaches it.
func TestWorkspaceTreeAliasing(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 5, 1)
	g.AddEdge(1, 2, 7, 1)
	ws := NewWorkspace(3)
	first := DijkstraInto(ws, g, 0, CostWeight)
	kept := first.Clone()
	_ = DijkstraInto(ws, g, 2, CostWeight) // clobbers `first`
	if first.Dist[1] == kept.Dist[1] && first.Dist[0] == kept.Dist[0] {
		t.Fatal("second search did not reuse the workspace arrays")
	}
	if kept.Dist[2] != 12 || kept.Dist[1] != 5 {
		t.Fatalf("clone corrupted: %v", kept.Dist)
	}
}

// TestWorkspaceGrowPreservesHeap: growing must not lose queued heap items
// (pq.Heap.Grow keeps them), and repeated Grow calls must be idempotent.
func TestWorkspaceGrowPreservesHeap(t *testing.T) {
	ws := NewWorkspace(4)
	ws.heap.Push(2, 10)
	ws.Grow(64)
	if ws.heap.Len() != 1 {
		t.Fatalf("heap lost items on grow: len=%d", ws.heap.Len())
	}
	idx, key := ws.heap.Pop()
	if idx != 2 || key != 10 {
		t.Fatalf("heap item corrupted: (%d,%d)", idx, key)
	}
	ws.Grow(8) // shrink request: no-op
	if cap(ws.dist) < 64 {
		t.Fatal("Grow shrank the workspace")
	}
}
