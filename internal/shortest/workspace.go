package shortest

import (
	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pq"
)

// Workspace holds the scratch arrays shared by every kernel in this
// package: distances, parent pointers, the SPFA queue and in-queue flags,
// and an indexed heap for Dijkstra. Allocating these dominates the cost of
// a single search on small graphs, and the solver's hot loops (cycle
// cancellation, budget sweeps, Lagrangian iterations) run thousands of
// searches over graphs of identical or slowly-growing size — a Workspace
// amortizes the allocations to zero.
//
// A Workspace may be reused freely across calls and across graphs of
// different sizes (Grow reallocates only on expansion), but it is NOT safe
// for concurrent use; parallel searches take one Workspace per worker.
//
// Trees returned by the *_Into kernels alias the workspace's dist/parent
// arrays: they are valid until the next *_Into call on the same Workspace.
// Callers that need the tree to outlive the workspace must copy it.
type Workspace struct {
	dist    []int64
	parent  []graph.EdgeID
	inQueue []bool
	pathLen []int
	queue   []graph.NodeID
	done    []bool
	heap    *pq.Heap
	metrics *obs.ShortestMetrics
	cancel  *cancel.Canceller
}

// SetMetrics attaches a metric sink to the workspace; every SPFA kernel
// run through it then reports run/relaxation/negative-cycle counts. A nil
// sink (the default) records nothing. Parallel sweeps may point many
// workspaces at the same sink: recording is atomic.
func (ws *Workspace) SetMetrics(m *obs.ShortestMetrics) { ws.metrics = m }

// SetCancel attaches a Canceller: kernels run through the workspace then
// poll it in their relaxation loops and bail out early once it stops. A nil
// Canceller (the default) costs one branch per poll site and nothing more.
// Cancellers are single-goroutine state — a workspace handed to a parallel
// worker must carry that worker's own cancel.Child.
//
// Cancellation semantics per kernel family: the bounded kernels
// (SPFAAllBoundedInto) report their usual no-verdict; the verdict kernels
// (SPFAInto, SPFAAllInto, BellmanFord*) return ok=true with an empty cycle,
// i.e. a conservative "nothing found". Solve-path callers must therefore
// check their Canceller after a kernel returns before trusting a negative
// verdict — core treats a stopped Canceller as "degrade now", never as
// proof that no cycle exists.
func (ws *Workspace) SetCancel(c *cancel.Canceller) { ws.cancel = c }

// recordSPFA folds one kernel run into the attached sink, if any. Counts
// are accumulated locally by the kernel and recorded once per run, so the
// relaxation loop carries no atomics.
func (ws *Workspace) recordSPFA(relaxations int, negCycle bool) {
	ws.metrics.RecordRun(int64(relaxations), negCycle)
}

// NewWorkspace returns a workspace sized for graphs of up to n vertices.
// It grows on demand, so n is a hint, not a limit.
func NewWorkspace(n int) *Workspace {
	ws := &Workspace{}
	ws.Grow(n)
	return ws
}

// Grow ensures capacity for n vertices, reallocating only on expansion.
func (ws *Workspace) Grow(n int) {
	if n <= cap(ws.dist) {
		return
	}
	ws.dist = make([]int64, n)          //lint:allow contracts amortized: reallocates only on expansion (n > cap), zero steady-state
	ws.parent = make([]graph.EdgeID, n) //lint:allow contracts amortized: reallocates only on expansion (n > cap), zero steady-state
	ws.inQueue = make([]bool, n)        //lint:allow contracts amortized: reallocates only on expansion (n > cap), zero steady-state
	ws.pathLen = make([]int, n)         //lint:allow contracts amortized: reallocates only on expansion (n > cap), zero steady-state
	ws.done = make([]bool, n)           //lint:allow contracts amortized: reallocates only on expansion (n > cap), zero steady-state
	if ws.heap == nil {
		ws.heap = pq.New(n)
	} else {
		ws.heap.Grow(n)
	}
}

// tree returns a Tree backed by the workspace, sized (and re-sliced) to n
// vertices. Contents are NOT initialized; kernels do that themselves.
func (ws *Workspace) tree(n int) Tree {
	ws.Grow(n)
	return Tree{Dist: ws.dist[:n], Parent: ws.parent[:n]}
}

// resetFlags clears the SPFA bookkeeping for n vertices and returns the
// (emptied) queue buffer.
func (ws *Workspace) resetFlags(n int) (inQueue []bool, pathLen []int, queue []graph.NodeID) {
	ws.Grow(n)
	inQueue = ws.inQueue[:n]
	pathLen = ws.pathLen[:n]
	for i := 0; i < n; i++ {
		inQueue[i] = false
		pathLen[i] = 0
	}
	return inQueue, pathLen, ws.queue[:0]
}

// Clone of a workspace-backed tree into fresh memory, for callers that keep
// results across further workspace use.
func (t Tree) Clone() Tree {
	return Tree{
		Dist:   append([]int64(nil), t.Dist...),
		Parent: append([]graph.EdgeID(nil), t.Parent...),
	}
}
