package shortest

import (
	"sort"

	"repro/internal/graph"
)

// KShortestPaths implements Yen's algorithm: the K cheapest vertex-simple
// s→t paths under w in nondecreasing weight order (fewer than K are
// returned when the graph runs out of simple paths). Weights must be
// nonnegative. It backs the Yen-greedy baseline and is generally useful as
// a substrate for path-enumeration heuristics.
func KShortestPaths(g *graph.Digraph, s, t graph.NodeID, K int, w Weight) []graph.Path {
	if K <= 0 {
		return nil
	}
	// One workspace serves the initial search and every spur search: each
	// tree is consumed (PathTo) before the next search overwrites it.
	ws := NewWorkspace(g.NumNodes())
	first := DijkstraInto(ws, g, s, w)
	p0, ok := first.PathTo(g, t)
	if !ok {
		return nil
	}
	accepted := []graph.Path{p0}
	type cand struct {
		path   graph.Path
		weight int64
	}
	var pool []cand
	seen := map[string]bool{pathKey(p0): true}

	for len(accepted) < K {
		prev := accepted[len(accepted)-1]
		prevNodes := prev.Nodes(g)
		// Spur from every vertex of the last accepted path.
		for i := 0; i < len(prev.Edges); i++ {
			spurNode := prevNodes[i]
			root := prev.Edges[:i]
			// Ban edges that would recreate any accepted path sharing this
			// root, and ban root vertices to keep paths simple.
			bannedEdges := graph.NewEdgeSet()
			for _, ap := range accepted {
				if len(ap.Edges) > i && equalPrefix(ap.Edges, root, i) {
					bannedEdges.Add(ap.Edges[i])
				}
			}
			bannedNodes := map[graph.NodeID]bool{}
			for _, v := range prevNodes[:i] {
				bannedNodes[v] = true
			}
			spur, ok := dijkstraRestricted(ws, g, spurNode, t, w, bannedEdges, bannedNodes)
			if !ok {
				continue
			}
			full := graph.Path{Edges: append(append([]graph.EdgeID(nil), root...), spur.Edges...)}
			key := pathKey(full)
			if seen[key] {
				continue
			}
			seen[key] = true
			var wt int64
			for _, id := range full.Edges {
				wt += w(g.Edge(id)) //lint:allow weightovf path sum; callers pass MaxWeight-bounded weightings
			}
			pool = append(pool, cand{full, wt})
		}
		if len(pool) == 0 {
			break
		}
		sort.Slice(pool, func(a, b int) bool { return pool[a].weight < pool[b].weight })
		accepted = append(accepted, pool[0].path)
		pool = pool[1:]
	}
	return accepted
}

// dijkstraRestricted runs Dijkstra avoiding banned edges and vertices,
// reusing the caller's workspace for the search tree.
func dijkstraRestricted(ws *Workspace, g *graph.Digraph, s, t graph.NodeID, w Weight,
	bannedEdges graph.EdgeSet, bannedNodes map[graph.NodeID]bool) (graph.Path, bool) {
	if bannedNodes[s] {
		return graph.Path{}, false
	}
	sub := graph.New(g.NumNodes())
	mapping := make([]graph.EdgeID, 0, g.NumEdges())
	for _, e := range g.EdgesView() {
		if bannedEdges.Has(e.ID) || bannedNodes[e.From] || bannedNodes[e.To] {
			continue
		}
		sub.AddEdge(e.From, e.To, e.Cost, e.Delay)
		mapping = append(mapping, e.ID)
	}
	tr := DijkstraInto(ws, sub, s, w)
	p, ok := tr.PathTo(sub, t)
	if !ok {
		return graph.Path{}, false
	}
	orig := make([]graph.EdgeID, len(p.Edges))
	for i, id := range p.Edges {
		orig[i] = mapping[id]
	}
	return graph.Path{Edges: orig}, true
}

func equalPrefix(a []graph.EdgeID, b []graph.EdgeID, n int) bool {
	if len(a) < n || len(b) < n {
		return false
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pathKey(p graph.Path) string {
	buf := make([]byte, 0, 4*len(p.Edges))
	for _, id := range p.Edges {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(buf)
}
