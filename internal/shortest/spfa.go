package shortest

import (
	"repro/internal/graph"
)

// SPFA is the queue-based Bellman–Ford variant (Shortest Path Faster
// Algorithm). Semantics match BellmanFord: shortest paths from s under w
// with negative weights allowed; if a negative cycle is reachable it is
// returned with ok=false. Typically much faster than the classic pass-based
// scan on sparse graphs, which matters because the bicameral search runs
// negative-cycle detection on large layered graphs.
func SPFA(g *graph.Digraph, s graph.NodeID, w Weight) (Tree, graph.Cycle, bool) {
	return SPFAInto(NewWorkspace(g.NumNodes()), g, s, w)
}

// SPFAInto is SPFA over caller-provided scratch. The returned Tree aliases
// the workspace (see Workspace).
//
//krsp:noalloc
func SPFAInto(ws *Workspace, g *graph.Digraph, s graph.NodeID, w Weight) (Tree, graph.Cycle, bool) {
	n := g.NumNodes()
	t := ws.tree(n)
	for v := range t.Dist {
		t.Dist[v] = Inf
		t.Parent[v] = -1
	}
	t.Dist[s] = 0
	tree, cyc, ok, done := spfaCore(ws, g, w, t, s, true, defaultBudget(g))
	if done {
		return tree, cyc, ok
	}
	if ws.cancel.Stopped() {
		// Cancelled mid-run: report "no cycle" rather than continue into
		// the fallback scan. See Workspace.SetCancel for the contract.
		return tree, graph.Cycle{}, true
	}
	// Relaxation budget blown without a certified verdict (possible when a
	// negative cycle keeps the parent graph transiently acyclic): fall back
	// to the pass-based scan, which always terminates with a proof.
	return BellmanFordInto(ws, g, s, w)
}

// SPFAAll runs SPFA from a virtual super-source (all distances start at 0),
// detecting a negative cycle anywhere in the graph; on success the
// distances are valid potentials.
func SPFAAll(g *graph.Digraph, w Weight) (Tree, graph.Cycle, bool) {
	return SPFAAllInto(NewWorkspace(g.NumNodes()), g, w)
}

// SPFAAllInto is SPFAAll over caller-provided scratch. The returned Tree
// aliases the workspace (see Workspace).
//
//krsp:noalloc
func SPFAAllInto(ws *Workspace, g *graph.Digraph, w Weight) (Tree, graph.Cycle, bool) {
	n := g.NumNodes()
	t := ws.tree(n)
	for v := range t.Dist {
		t.Dist[v] = 0
		t.Parent[v] = -1
	}
	tree, cyc, ok, done := spfaCore(ws, g, w, t, 0, false, defaultBudget(g))
	if done {
		return tree, cyc, ok
	}
	if ws.cancel.Stopped() {
		return tree, graph.Cycle{}, true // cancelled: see Workspace.SetCancel
	}
	return BellmanFordAllInto(ws, g, w)
}

func defaultBudget(g *graph.Digraph) int {
	return 4*g.NumNodes()*g.NumEdges() + 256
}

// SPFAAllBounded is negative-cycle detection with an explicit relaxation
// budget and no exact-distance promise: it returns (cycle, true, true) on
// detection, (_, false, true) when the graph is certified cycle-free, and
// (_, false, false) when the budget ran out first (no verdict). Large
// derived graphs (the layered auxiliary graphs) use it to keep worst-case
// time linear in the budget instead of O(V·E).
func SPFAAllBounded(g *graph.Digraph, w Weight, budget int) (graph.Cycle, bool, bool) {
	return SPFAAllBoundedInto(NewWorkspace(g.NumNodes()), g, w, budget)
}

// SPFAAllBoundedInto is SPFAAllBounded over caller-provided scratch.
//
//krsp:noalloc
func SPFAAllBoundedInto(ws *Workspace, g *graph.Digraph, w Weight, budget int) (graph.Cycle, bool, bool) {
	n := g.NumNodes()
	t := ws.tree(n)
	for v := range t.Dist {
		t.Dist[v] = 0
		t.Parent[v] = -1
	}
	_, cyc, ok, done := spfaCore(ws, g, w, t, 0, false, budget)
	if !done {
		return graph.Cycle{}, false, false
	}
	return cyc, !ok, true
}

// spfaCore returns done=false when its relaxation budget is exhausted
// before reaching a certified verdict; callers then fall back to the
// pass-based Bellman–Ford (or accept the non-verdict). With single=true the
// queue is seeded with s alone; otherwise every vertex is seeded (the
// virtual super-source).
func spfaCore(ws *Workspace, g *graph.Digraph, w Weight, t Tree, s graph.NodeID, single bool, budget int) (Tree, graph.Cycle, bool, bool) {
	n := g.NumNodes()
	// pathLen[v] is the edge count of the tentative shortest walk to v; a
	// walk of ≥ n edges repeats a vertex, certifying a negative cycle (the
	// correct SPFA criterion — per-vertex relax counts are NOT bounded by n
	// on negative-cycle-free graphs).
	inQueue, pathLen, queue := ws.resetFlags(n)
	defer func() { ws.queue = queue[:0] }()
	relaxations := 0
	if single {
		queue = append(queue, s) //lint:allow contracts amortized: appends reuse the persisted workspace queue buffer
		inQueue[s] = true
	} else {
		for v := 0; v < n; v++ {
			queue = append(queue, graph.NodeID(v)) //lint:allow contracts amortized: appends reuse the persisted workspace queue buffer
			inQueue[v] = true
		}
	}
	head := 0
	for head < len(queue) {
		if ws.cancel.Poll() {
			// Cancelled: no verdict. Callers distinguish this from budget
			// exhaustion via Canceller.Stopped (see Workspace.SetCancel).
			ws.recordSPFA(relaxations, false)
			return t, graph.Cycle{}, false, false
		}
		u := queue[head]
		head++
		inQueue[u] = false
		du := t.Dist[u]
		if du == Inf {
			continue
		}
		for _, id := range g.Out(u) {
			e := g.Edge(id)
			if nd := du + w(e); nd < t.Dist[e.To] { //lint:allow weightovf finite Dist is a <n edge path sum, |nd| < n*MaxWeight < 2^47
				budget--
				relaxations++
				if budget < 0 {
					ws.recordSPFA(relaxations, false)
					return t, graph.Cycle{}, false, false
				}
				t.Dist[e.To] = nd
				t.Parent[e.To] = id
				pathLen[e.To] = pathLen[u] + 1
				if pathLen[e.To] >= n {
					// Likely negative cycle. pathLen is a lazy snapshot, so
					// verify against the live parent graph: a repeated
					// vertex on the chain is a genuine negative cycle; a
					// rootward exit means the trigger was stale — record
					// the true length and move on.
					if at, cyclic := chainRepeat(g, t.Parent, e.To); cyclic {
						ws.recordSPFA(relaxations, true)
						return t, extractParentCycle(g, t.Parent, at), false, true
					}
					pathLen[e.To] = chainLength(g, t.Parent, e.To)
				}
				if !inQueue[e.To] {
					inQueue[e.To] = true
					queue = append(queue, e.To) //lint:allow contracts amortized: appends reuse the persisted workspace queue buffer
				}
			}
		}
	}
	ws.recordSPFA(relaxations, false)
	return t, graph.Cycle{}, true, true
}

// chainRepeat follows parent pointers from v and reports the first vertex
// seen twice (a vertex on a parent-graph cycle), or cyclic=false if the
// chain reaches a root.
//
//krsp:terminates(the seen set forces a repeat or a root exit within n steps)
func chainRepeat(g *graph.Digraph, parent []graph.EdgeID, v graph.NodeID) (graph.NodeID, bool) {
	seen := map[graph.NodeID]bool{v: true}
	for {
		id := parent[v]
		if id < 0 {
			return 0, false
		}
		v = g.Edge(id).From
		if seen[v] {
			return v, true
		}
		//lint:allow contracts cold path: map grows only while verifying a suspected cycle; counted in the bench-guard alloc budget
		seen[v] = true
	}
}

// chainLength counts parent-chain edges from v to its root. Callers only
// invoke it after chainRepeat reported no cycle, so it terminates.
//
//krsp:terminates(parent chain is acyclic here, ≤ n edges to the root)
func chainLength(g *graph.Digraph, parent []graph.EdgeID, v graph.NodeID) int {
	length := 0
	for parent[v] >= 0 {
		v = g.Edge(parent[v]).From
		length++
	}
	return length
}
