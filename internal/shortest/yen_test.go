package shortest

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestKShortestPathsSimple(t *testing.T) {
	// Three s→t routes with distinct costs 4, 5, 8.
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 0) // e0
	g.AddEdge(1, 3, 3, 0) // e1   route A: 4
	g.AddEdge(0, 2, 2, 0) // e2
	g.AddEdge(2, 3, 3, 0) // e3   route B: 5
	g.AddEdge(0, 3, 8, 0) // e4   route C: 8
	paths := KShortestPaths(g, 0, 3, 5, CostWeight)
	if len(paths) != 3 {
		t.Fatalf("got %d paths", len(paths))
	}
	wantCosts := []int64{4, 5, 8}
	for i, p := range paths {
		if err := p.Validate(g, 0, 3, true); err != nil {
			t.Fatal(err)
		}
		if p.Cost(g) != wantCosts[i] {
			t.Fatalf("path %d cost %d want %d", i, p.Cost(g), wantCosts[i])
		}
	}
}

func TestKShortestPathsDegenerate(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1, 0)
	if got := KShortestPaths(g, 0, 2, 3, CostWeight); got != nil {
		t.Fatalf("unreachable sink returned %d paths", len(got))
	}
	if got := KShortestPaths(g, 0, 1, 0, CostWeight); got != nil {
		t.Fatal("K=0 must return nil")
	}
	if got := KShortestPaths(g, 0, 1, 5, CostWeight); len(got) != 1 {
		t.Fatalf("single-route graph returned %d paths", len(got))
	}
}

// TestKShortestPathsMatchesEnumeration: Yen's output equals the K cheapest
// simple paths from exhaustive enumeration, in cost order, with no
// duplicates.
func TestKShortestPathsMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(5)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(1+r.Intn(20)), int64(r.Intn(20)))
			}
		}
		s, tt := graph.NodeID(0), graph.NodeID(n-1)
		K := 1 + r.Intn(6)
		got := KShortestPaths(g, s, tt, K, CostWeight)
		// Exhaustive baseline.
		var all []graph.Path
		var cur []graph.EdgeID
		on := map[graph.NodeID]bool{s: true}
		var dfs func(v graph.NodeID)
		dfs = func(v graph.NodeID) {
			if v == tt {
				all = append(all, graph.Path{Edges: append([]graph.EdgeID(nil), cur...)})
				return
			}
			for _, id := range g.Out(v) {
				e := g.Edge(id)
				if on[e.To] {
					continue
				}
				on[e.To] = true
				cur = append(cur, id)
				dfs(e.To)
				cur = cur[:len(cur)-1]
				delete(on, e.To)
			}
		}
		dfs(s)
		sort.SliceStable(all, func(a, b int) bool { return all[a].Cost(g) < all[b].Cost(g) })
		wantLen := K
		if len(all) < K {
			wantLen = len(all)
		}
		if len(got) != wantLen {
			return false
		}
		// Cost sequence must match (ties make exact path identity ambiguous).
		seen := map[string]bool{}
		for i, p := range got {
			if p.Validate(g, s, tt, true) != nil {
				return false
			}
			if p.Cost(g) != all[i].Cost(g) {
				return false
			}
			key := pathKey(p)
			if seen[key] {
				return false // duplicate
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
