package shortest

import (
	"repro/internal/graph"
)

// MinMeanCycle computes a cycle minimizing mean weight Σw/len using Karp's
// dynamic program. It returns the cycle, its mean as an exact rational
// (num/den with den = cycle length > 0), and found=false for acyclic
// graphs. Runs in O(n·m).
//
// The classic cycle-cancellation literature ([15] in the paper) applies
// this to residual graphs whose reversed edges carry zero cost; the paper's
// bicameral-cycle machinery exists precisely because min-mean search cannot
// handle residual graphs with BOTH negative costs and negative delays. We
// keep it as a baseline ingredient and for ablation E8.
func MinMeanCycle(g *graph.Digraph, w Weight) (cycle graph.Cycle, num, den int64, found bool) {
	n := g.NumNodes()
	if n == 0 || g.NumEdges() == 0 {
		return graph.Cycle{}, 0, 0, false
	}
	// dp[k][v] = min weight of a k-edge walk ending at v, from any start
	// (dp[0][v] = 0). pred[k][v] = edge used at step k.
	dp := make([][]int64, n+1)
	pred := make([][]graph.EdgeID, n+1)
	for k := 0; k <= n; k++ {
		dp[k] = make([]int64, n)
		pred[k] = make([]graph.EdgeID, n)
		for v := range dp[k] {
			if k == 0 {
				dp[k][v] = 0
			} else {
				dp[k][v] = Inf
			}
			pred[k][v] = -1
		}
	}
	edges := g.EdgesView()
	for k := 1; k <= n; k++ {
		for _, e := range edges {
			if dp[k-1][e.From] == Inf {
				continue
			}
			if nd := dp[k-1][e.From] + w(e); nd < dp[k][e.To] { //lint:allow weightovf dp[k-1] is a k-1 edge walk sum, |nd| < n*MaxWeight < 2^47
				dp[k][e.To] = nd
				pred[k][e.To] = e.ID
			}
		}
	}
	// μ* = min_v max_k (dp[n][v] − dp[k][v]) / (n − k), exact rationals.
	bestV := -1
	var bestNum, bestDen int64
	for v := 0; v < n; v++ {
		if dp[n][v] == Inf {
			continue
		}
		var vNum, vDen int64
		haveMax := false
		for k := 0; k < n; k++ {
			if dp[k][v] == Inf {
				continue
			}
			cn := dp[n][v] - dp[k][v]
			cd := int64(n - k)
			// compare cn/cd > vNum/vDen (cd, vDen > 0)
			if !haveMax || cn*vDen > vNum*cd {
				vNum, vDen = cn, cd
				haveMax = true
			}
		}
		if !haveMax {
			continue
		}
		if bestV < 0 || vNum*bestDen < bestNum*vDen {
			bestV, bestNum, bestDen = v, vNum, vDen
		}
	}
	if bestV < 0 {
		return graph.Cycle{}, 0, 0, false
	}
	// Extract a cycle from the n-edge walk ending at bestV: walk pred
	// pointers back from (n, bestV); the walk has n edges over n vertices so
	// some vertex repeats; the segment between repeats is a cycle with mean
	// ≤ μ* (and μ* is the minimum, so it equals μ* when the DP is tight).
	// To be robust we extract the minimum-mean cycle among all segments.
	type visit struct{ step int }
	walkEdges := make([]graph.EdgeID, n) // walkEdges[k-1] = edge used at step k
	v := graph.NodeID(bestV)
	for k := n; k >= 1; k-- {
		id := pred[k][v]
		walkEdges[k-1] = id
		v = g.Edge(id).From
	}
	// Find a repeated vertex along the walk and return that segment.
	seen := map[graph.NodeID]visit{v: {0}}
	cur := v
	for k := 1; k <= n; k++ {
		cur = g.Edge(walkEdges[k-1]).To
		if first, ok := seen[cur]; ok {
			seg := walkEdges[first.step:k]
			return graph.Cycle{Edges: append([]graph.EdgeID(nil), seg...)}, bestNum, bestDen, true
		}
		seen[cur] = visit{k}
	}
	// Unreachable: an n-edge walk over n vertices must repeat one.
	return graph.Cycle{}, 0, 0, false
}
