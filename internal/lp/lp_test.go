package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleLE(t *testing.T) {
	// min -x-y s.t. x+y ≤ 4, x ≤ 3, y ≤ 2  → x=3,y=1? No: max x+y=4 at any
	// point on x+y=4 within bounds; objective value -4.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddRow([]Coef{{0, 1}, {1, 1}}, LE, 4)
	p.AddBound(0, 3)
	p.AddBound(1, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !near(sol.Obj, -4) {
		t.Fatalf("obj = %v", sol.Obj)
	}
	if !near(sol.X[0]+sol.X[1], 4) {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x+3y s.t. x+y = 10, x ≥ 4 (as GE row), y ≥ 0 → x=10,y=0? x≥4
	// allows x=10: obj 20.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	p.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 10)
	p.AddRow([]Coef{{0, 1}}, GE, 4)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !near(sol.Obj, 20) || !near(sol.X[0], 10) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestGEBinding(t *testing.T) {
	// min x+y s.t. x+2y ≥ 6, 2x+y ≥ 6 → x=y=2, obj 4.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddRow([]Coef{{0, 1}, {1, 2}}, GE, 6)
	p.AddRow([]Coef{{0, 2}, {1, 1}}, GE, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !near(sol.Obj, 4) || !near(sol.X[0], 2) || !near(sol.X[1], 2) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddRow([]Coef{{0, 1}}, GE, 5)
	p.AddRow([]Coef{{0, 1}}, LE, 3)
	sol, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) || sol.Status != Infeasible {
		t.Fatalf("err=%v status=%v", err, sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddRow([]Coef{{0, 1}}, GE, 0)
	sol, err := p.Solve()
	if !errors.Is(err, ErrUnbounded) || sol.Status != Unbounded {
		t.Fatalf("err=%v status=%v", err, sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. −x ≤ −3 (i.e. x ≥ 3) → 3.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddRow([]Coef{{0, -1}}, LE, -3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !near(sol.Obj, 3) {
		t.Fatalf("obj = %v", sol.Obj)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows exercise the redundant-row handling.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 5)
	p.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 5)
	p.AddRow([]Coef{{0, 2}, {1, 2}}, EQ, 10)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !near(sol.Obj, 0) || !near(sol.X[1], 5) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestDegenerateCyclingGuard(t *testing.T) {
	// Classic Beale cycling example (degenerate); Bland's rule must
	// terminate at optimum -0.05.
	p := NewProblem(4)
	obj := []float64{-0.75, 150, -0.02, 6}
	for j, c := range obj {
		p.SetObjective(j, c)
	}
	p.AddRow([]Coef{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddRow([]Coef{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddRow([]Coef{{2, 1}}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !near(sol.Obj, -0.05) {
		t.Fatalf("obj = %v", sol.Obj)
	}
}

func TestTransportationLP(t *testing.T) {
	// 2 plants (supply 20, 30) × 2 markets (demand 25, 25) min-cost
	// transport; costs [[1,3],[2,1]] → optimal 20·1 + 5·2 + 25·1 = 55.
	p := NewProblem(4) // x00 x01 x10 x11
	costs := []float64{1, 3, 2, 1}
	for j, c := range costs {
		p.SetObjective(j, c)
	}
	p.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 20)
	p.AddRow([]Coef{{2, 1}, {3, 1}}, EQ, 30)
	p.AddRow([]Coef{{0, 1}, {2, 1}}, EQ, 25)
	p.AddRow([]Coef{{1, 1}, {3, 1}}, EQ, 25)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !near(sol.Obj, 55) {
		t.Fatalf("obj = %v, x = %v", sol.Obj, sol.X)
	}
}

func TestSolutionSatisfiesConstraints(t *testing.T) {
	// Random feasible-by-construction LPs: check returned point satisfies
	// all rows and has objective ≤ any of a set of random feasible points.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, float64(r.Intn(21)-10))
			p.AddBound(j, float64(1+r.Intn(9))) // box keeps it bounded
		}
		// A feasible reference point inside the box: the origin satisfies
		// every row we add of form Σ a_j x_j ≤ rhs with rhs ≥ 0.
		rows := 1 + r.Intn(4)
		type rowRec struct {
			coefs []Coef
			rhs   float64
		}
		var recs []rowRec
		for i := 0; i < rows; i++ {
			var coefs []Coef
			for j := 0; j < n; j++ {
				if r.Intn(2) == 0 {
					coefs = append(coefs, Coef{j, float64(r.Intn(11) - 5)})
				}
			}
			rhs := float64(r.Intn(10))
			p.AddRow(coefs, LE, rhs)
			recs = append(recs, rowRec{coefs, rhs})
		}
		sol, err := p.Solve()
		if err != nil {
			return false // origin is always feasible; bounded by box
		}
		for _, rec := range recs {
			var lhs float64
			for _, c := range rec.coefs {
				lhs += c.Val * sol.X[c.Var]
			}
			if lhs > rec.rhs+1e-6 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			if sol.X[j] < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectiveMatchesX(t *testing.T) {
	p := NewProblem(3)
	p.SetObjective(0, 2)
	p.SetObjective(1, -1)
	p.SetObjective(2, 0.5)
	p.AddRow([]Coef{{0, 1}, {1, 1}, {2, 1}}, EQ, 6)
	p.AddBound(1, 4)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	got := 2*sol.X[0] - sol.X[1] + 0.5*sol.X[2]
	if !near(got, sol.Obj) {
		t.Fatalf("obj %v vs recomputed %v", sol.Obj, got)
	}
	if !near(sol.Obj, -3) { // x1=4, x2=2: -4+1 = -3
		t.Fatalf("obj = %v", sol.Obj)
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("op strings")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("status strings")
	}
	if Op(99).String() != "?" || Status(99).String() != "?" {
		t.Fatal("unknown strings")
	}
}

func TestVarRangePanics(t *testing.T) {
	p := NewProblem(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.SetObjective(2, 1)
}

func TestMinCostFlowAsLP(t *testing.T) {
	// Min-cost 2-flow on the diamond graph, as an LP: matches the known
	// combinatorial optimum 10 (cross-validates the flow package result).
	// Vars: e0..e4 with costs 1,2,3,4,5; conservation at nodes 1,2;
	// outflow 2 at source; x ≤ 1.
	p := NewProblem(5)
	costs := []float64{1, 2, 3, 4, 5}
	for j, c := range costs {
		p.SetObjective(j, c)
		p.AddBound(j, 1)
	}
	p.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 2)           // source out
	p.AddRow([]Coef{{0, 1}, {2, -1}, {4, -1}}, EQ, 0) // node 1
	p.AddRow([]Coef{{1, 1}, {4, 1}, {3, -1}}, EQ, 0)  // node 2
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !near(sol.Obj, 10) {
		t.Fatalf("obj = %v x=%v", sol.Obj, sol.X)
	}
}
