// Package lp is a self-contained linear programming solver: a dense
// two-phase primal simplex with Bland's anti-cycling rule. It exists
// because the paper's Algorithm 3 solves LP (6) over auxiliary graphs and
// its phase 1 cites an LP-rounding algorithm [9]; the repository is
// stdlib-only, so the solver is hand-rolled.
//
// The solver targets the moderate, well-scaled LPs arising from flow
// formulations (thousands of variables at most). It is exact up to float64
// tolerances; callers needing exactness (ratio tests) verify candidate
// cycles with integer arithmetic after extraction.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status reports the outcome of Solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "?"
}

// ErrInfeasible and ErrUnbounded are returned by Solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
	ErrNoProgress = errors.New("lp: iteration limit reached")
)

// Coef is one nonzero coefficient of a constraint row.
type Coef struct {
	Var int
	Val float64
}

type row struct {
	coefs []Coef
	op    Op
	rhs   float64
}

// Problem is a linear program: minimize objᵀx subject to the added rows
// and x ≥ 0 for every variable. Upper bounds are expressed as rows
// (AddBound is a convenience). Maximization is minimization of −obj by the
// caller.
type Problem struct {
	numVars int
	obj     []float64
	rows    []row
}

// NewProblem creates a problem with n nonnegative variables and zero
// objective.
func NewProblem(n int) *Problem {
	return &Problem{numVars: n, obj: make([]float64, n)}
}

// NumVars reports the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumRows reports the number of constraint rows.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjective sets the objective coefficient of variable j.
func (p *Problem) SetObjective(j int, c float64) {
	p.check(j)
	p.obj[j] = c
}

// AddRow adds the constraint Σ coefs (op) rhs.
func (p *Problem) AddRow(coefs []Coef, op Op, rhs float64) {
	for _, c := range coefs {
		p.check(c.Var)
	}
	p.rows = append(p.rows, row{coefs: append([]Coef(nil), coefs...), op: op, rhs: rhs})
}

// AddBound adds x_j ≤ ub as a row.
func (p *Problem) AddBound(j int, ub float64) {
	p.AddRow([]Coef{{j, 1}}, LE, ub)
}

func (p *Problem) check(j int) {
	if j < 0 || j >= p.numVars {
		//lint:allow nopanic index-range invariant, same contract as slice indexing
		panic(fmt.Sprintf("lp: variable %d out of range [0,%d)", j, p.numVars))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// X holds structural variable values when Status == Optimal.
	X []float64
	// Obj is the optimal objective value when Status == Optimal.
	Obj float64
}

const eps = 1e-9

// Solve runs two-phase primal simplex. It returns ErrInfeasible or
// ErrUnbounded with a matching Status, and ErrNoProgress if the iteration
// cap is exhausted (indicates numerical trouble on a pathological input).
func (p *Problem) Solve() (Solution, error) {
	m := len(p.rows)
	// Column layout: [0,numVars) structural, then one slack/surplus per
	// LE/GE row, then one artificial per row needing it.
	nStruct := p.numVars
	slackCol := make([]int, m) // -1 if none
	nCols := nStruct
	for i, r := range p.rows {
		if r.op == LE || r.op == GE {
			slackCol[i] = nCols
			nCols++
		} else {
			slackCol[i] = -1
		}
	}
	artCol := make([]int, m)
	artStart := nCols
	// Normalize rhs sign first to decide artificials: after sign flip, a LE
	// row with slack +1 gives a ready basis column; GE/EQ need artificials,
	// and LE rows that got flipped to have negative slack do too.
	type nrow struct {
		a   []float64
		rhs float64
	}
	tab := make([]nrow, m)
	basis := make([]int, m)
	needArt := make([]bool, m)
	for i, r := range p.rows {
		a := make([]float64, nCols) // artificial columns appended later
		for _, c := range r.coefs {
			a[c.Var] += c.Val
		}
		rhs := r.rhs
		sign := 1.0
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			for j := range a {
				a[j] = -a[j]
			}
		}
		switch r.op {
		case LE:
			a[slackCol[i]] = sign // +1 normally, −1 if row was flipped
		case GE:
			a[slackCol[i]] = -sign
		}
		// Basis candidate: a slack with coefficient +1.
		if slackCol[i] >= 0 && a[slackCol[i]] == 1 {
			basis[i] = slackCol[i]
		} else {
			needArt[i] = true
		}
		tab[i] = nrow{a: a, rhs: rhs}
	}
	for i := range p.rows {
		if needArt[i] {
			artCol[i] = nCols
			nCols++
		} else {
			artCol[i] = -1
		}
	}
	// Extend rows with artificial columns.
	A := make([][]float64, m)
	b := make([]float64, m)
	for i := range tab {
		A[i] = make([]float64, nCols)
		copy(A[i], tab[i].a)
		if artCol[i] >= 0 {
			A[i][artCol[i]] = 1
			basis[i] = artCol[i]
		}
		b[i] = tab[i].rhs
	}

	// Phase 1: minimize sum of artificials.
	if artStart < nCols {
		c1 := make([]float64, nCols)
		for i := range p.rows {
			if artCol[i] >= 0 {
				c1[artCol[i]] = 1
			}
		}
		val, err := simplexCore(A, b, c1, basis, nCols)
		if err != nil {
			return Solution{Status: Infeasible}, err
		}
		if val > 1e-7 {
			return Solution{Status: Infeasible}, ErrInfeasible
		}
		// Drive remaining artificials out of the basis where possible.
		for i := range basis {
			if basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(A[i][j]) > 1e-7 {
					pivot(A, b, i, j)
					basis[i] = j
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is redundant (all-zero over structurals): keep the
				// artificial basic at value 0 with a consistent unit column.
				for j := range A[i] {
					A[i][j] = 0
				}
				A[i][basis[i]] = 1
				b[i] = 0
			}
		}
		// Forbid artificials from re-entering: zero their columns.
		for i := range A {
			for j := artStart; j < nCols; j++ {
				if basis[i] == j {
					continue
				}
				A[i][j] = 0
			}
		}
	}

	// Phase 2: original objective over structural + slack columns.
	// Artificial columns never re-enter (simplexCore only considers columns
	// below allowCols = artStart); any still-basic artificial sits at value
	// 0 on a redundant row, so costing it 0 keeps the objective exact.
	c2 := make([]float64, nCols)
	copy(c2, p.obj)
	val, err := simplexCore(A, b, c2, basis, artStart)
	if err != nil {
		if errors.Is(err, ErrUnbounded) {
			return Solution{Status: Unbounded}, err
		}
		return Solution{}, err
	}
	x := make([]float64, p.numVars)
	for i, bj := range basis {
		if bj < p.numVars {
			x[bj] = b[i]
		}
	}
	return Solution{Status: Optimal, X: x, Obj: val}, nil
}

// simplexCore runs primal simplex on the current tableau, minimizing c over
// columns [0, allowCols). basis must index a feasible basis (b ≥ 0). It
// mutates A, b, basis in place and returns the optimal objective value.
func simplexCore(A [][]float64, b []float64, c []float64, basis []int, allowCols int) (float64, error) {
	m := len(A)
	maxIter := 8000 + 40*(m+allowCols)
	for iter := 0; iter < maxIter; iter++ {
		// Reduced costs: r_j = c_j − c_Bᵀ B⁻¹ A_j. Tableau is kept in
		// B⁻¹A form, so r_j = c_j − Σ_i c_basis[i]·A[i][j].
		entering := -1
		for j := 0; j < allowCols; j++ {
			inBasis := false
			for _, bj := range basis {
				if bj == j {
					inBasis = true
					break
				}
			}
			if inBasis {
				continue
			}
			r := c[j]
			for i := 0; i < m; i++ {
				cb := c[basis[i]]
				if cb != 0 && A[i][j] != 0 {
					r -= cb * A[i][j]
				}
			}
			if r < -eps {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering < 0 {
			// Optimal: compute objective.
			var obj float64
			for i := 0; i < m; i++ {
				if cb := c[basis[i]]; cb != 0 {
					obj += cb * b[i]
				}
			}
			return obj, nil
		}
		// Ratio test with Bland tie-break on smallest basis index.
		leave := -1
		var best float64
		for i := 0; i < m; i++ {
			if A[i][entering] > eps {
				ratio := b[i] / A[i][entering]
				if leave < 0 || ratio < best-eps ||
					(math.Abs(ratio-best) <= eps && basis[i] < basis[leave]) {
					leave = i
					best = ratio
				}
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		pivot(A, b, leave, entering)
		basis[leave] = entering
	}
	return 0, ErrNoProgress
}

// pivot performs a Gauss–Jordan pivot on (row, col).
func pivot(A [][]float64, b []float64, row, col int) {
	pv := A[row][col]
	for j := range A[row] {
		A[row][j] /= pv
	}
	b[row] /= pv
	for i := range A {
		if i == row {
			continue
		}
		f := A[i][col]
		if f == 0 {
			continue
		}
		for j := range A[i] {
			A[i][j] -= f * A[row][j]
		}
		b[i] -= f * b[row]
	}
}
