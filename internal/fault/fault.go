// Package fault is a seeded, deterministic failpoint registry for the
// solver: named injection sites on the solve path consult it and, when the
// site is armed, receive an injected error, panic, or hook result. The nil
// *Registry is a free no-op — the same contract the obs nil-sink and the
// cancel nil-Canceller follow — so production solves carry no cost and no
// code path differences.
//
// Determinism: probabilistic arming draws from a rand.Rand seeded at New,
// guarded by a mutex, so a given seed and call sequence trips the same
// sites in the same order on every run. Injection sites are consulted only
// at serial points of the pipeline (the cancellation-loop body, the
// bicameral.Find entry, the LP rounding step) — never inside parallel
// workers, where an injected panic would crash the process instead of
// unwinding to a recover boundary.
//
// The chaos soak test (internal/core) and the krspd overload tests are the
// consumers; see DESIGN.md §10 for the failpoint catalogue.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected is the root of every injected error; sites wrap it with the
// point name. Callers distinguish injected failures with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Point names one injection site on the solve path.
type Point int

const (
	// PointResidualUpdate fires in the cancellation loop where the
	// incremental residual update would run; a trip simulates an update
	// failure and forces a full rebuild.
	PointResidualUpdate Point = iota
	// PointCycleSearch fires at the bicameral.Find entry; an error trip
	// makes the search report not-found (exercising the C_ref escalation
	// and phase-1 fallback), a panic trip exercises recover boundaries.
	PointCycleSearch
	// PointLPRound fires in the LP engine's rounding step; a trip discards
	// the round's candidates.
	PointLPRound
	// PointCancel fires at the top of the cancellation loop; a trip is
	// translated into Canceller.Trip — the deterministic "deadline fired"
	// lever that lets tests exercise degraded results without wall-clock
	// deadlines.
	PointCancel
	// PointProxyDial fires in krspd's cluster proxy just before a request
	// is sent to a peer; an error trip simulates a connection failure to
	// the owner (dead peer, partition) without touching real sockets, and a
	// blocking ArmFunc hook holds the attempt in flight so tests drive the
	// hedge and retry paths deterministically.
	PointProxyDial
	// PointProxyRead fires after a peer response arrives, before its body
	// is decoded; a trip simulates a mid-response failure (peer died while
	// streaming, truncated body) and exercises the retry-on-5xx/IO path.
	PointProxyRead
	// NumPoints bounds the Point enum.
	NumPoints
)

func (p Point) String() string {
	switch p {
	case PointResidualUpdate:
		return "residual-update"
	case PointCycleSearch:
		return "cycle-search"
	case PointLPRound:
		return "lp-round"
	case PointCancel:
		return "cancel"
	case PointProxyDial:
		return "proxy-dial"
	case PointProxyRead:
		return "proxy-read"
	}
	return fmt.Sprintf("point-%d", int(p))
}

type mode int

const (
	modeOff mode = iota
	modeError
	modePanic
	modeFunc
)

type site struct {
	mode  mode
	prob  float64
	fn    func() error
	trips int64
}

// Registry holds the armed failpoints. Safe for concurrent Check calls
// (sites are consulted from whatever goroutine runs the serial pipeline,
// and tests may arm/disarm concurrently with running solves).
type Registry struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites [NumPoints]site
}

// New returns a registry whose probabilistic trips draw from the given
// seed.
func New(seed int64) *Registry {
	return &Registry{rng: rand.New(rand.NewSource(seed))}
}

// Arm sets point p to inject an error with the given probability per Check
// (1.0 = every time).
func (r *Registry) Arm(p Point, prob float64) { r.arm(p, site{mode: modeError, prob: prob}) }

// ArmPanic sets point p to panic with the given probability per Check. The
// panic value wraps ErrInjected so recover boundaries can attribute it.
// Panic mode exists to exercise recover boundaries (cmd/krspd); arming it
// on a bare library solve will propagate to the caller by design.
func (r *Registry) ArmPanic(p Point, prob float64) { r.arm(p, site{mode: modePanic, prob: prob}) }

// ArmFunc sets point p to call fn on every Check and inject whatever it
// returns (nil = no injection). fn runs outside the registry lock, so it
// may block — the krspd overload test uses a blocking hook to hold a solve
// in flight deterministically.
func (r *Registry) ArmFunc(p Point, fn func() error) { r.arm(p, site{mode: modeFunc, fn: fn}) }

// Disarm turns point p off, preserving its trip count.
func (r *Registry) Disarm(p Point) {
	r.mu.Lock()
	trips := r.sites[p].trips
	r.sites[p] = site{trips: trips}
	r.mu.Unlock()
}

func (r *Registry) arm(p Point, s site) {
	r.mu.Lock()
	s.trips = r.sites[p].trips
	r.sites[p] = s
	r.mu.Unlock()
}

// InjectedPanic is the value thrown by panic-mode trips.
type InjectedPanic struct{ Point Point }

func (ip InjectedPanic) Error() string { return "fault: injected panic at " + ip.Point.String() }

// Unwrap ties InjectedPanic into the ErrInjected tree for recover
// boundaries that inspect the panic value as an error.
func (ip InjectedPanic) Unwrap() error { return ErrInjected }

// Check consults point p: nil-registry and unarmed sites return nil for
// free; an armed site trips according to its mode. Error mode returns an
// error wrapping ErrInjected; panic mode panics with an InjectedPanic;
// func mode returns the hook's result.
func (r *Registry) Check(p Point) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s := r.sites[p]
	if s.mode == modeOff {
		r.mu.Unlock()
		return nil
	}
	if s.mode != modeFunc && s.prob < 1 && r.rng.Float64() >= s.prob {
		r.mu.Unlock()
		return nil
	}
	r.sites[p].trips++
	r.mu.Unlock()
	switch s.mode {
	case modePanic:
		//lint:allow nopanic deliberate injected panic; exists to exercise recover boundaries
		panic(InjectedPanic{Point: p})
	case modeFunc:
		// Outside the lock: hooks may block (see ArmFunc).
		return s.fn()
	}
	return fmt.Errorf("%w at %s", ErrInjected, p)
}

// Trips returns how many times point p has fired.
func (r *Registry) Trips(p Point) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sites[p].trips
}
