package fault

import (
	"errors"
	"testing"
)

func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	for p := Point(0); p < NumPoints; p++ {
		if err := r.Check(p); err != nil {
			t.Fatalf("nil registry injected at %s", p)
		}
		if r.Trips(p) != 0 {
			t.Fatalf("nil registry counted trips at %s", p)
		}
	}
}

func TestUnarmedIsNoOp(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if err := r.Check(PointCycleSearch); err != nil {
			t.Fatal("unarmed point injected")
		}
	}
	if r.Trips(PointCycleSearch) != 0 {
		t.Fatal("unarmed point counted trips")
	}
}

func TestErrorModeAlways(t *testing.T) {
	r := New(1)
	r.Arm(PointResidualUpdate, 1.0)
	err := r.Check(PointResidualUpdate)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if got := r.Trips(PointResidualUpdate); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	r.Disarm(PointResidualUpdate)
	if err := r.Check(PointResidualUpdate); err != nil {
		t.Fatal("disarmed point still injects")
	}
	if got := r.Trips(PointResidualUpdate); got != 1 {
		t.Fatalf("Disarm lost the trip count: %d", got)
	}
}

func TestProbabilisticIsSeedDeterministic(t *testing.T) {
	outcomes := func(seed int64) []bool {
		r := New(seed)
		r.Arm(PointCancel, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Check(PointCancel) != nil
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at check %d", i)
		}
	}
	trips := 0
	for _, hit := range a {
		if hit {
			trips++
		}
	}
	if trips == 0 || trips == len(a) {
		t.Fatalf("prob 0.5 tripped %d/%d times; expected a mix", trips, len(a))
	}
}

func TestPanicMode(t *testing.T) {
	r := New(7)
	r.ArmPanic(PointCycleSearch, 1.0)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic mode did not panic")
		}
		ip, ok := p.(InjectedPanic)
		if !ok || ip.Point != PointCycleSearch {
			t.Fatalf("unexpected panic value %v", p)
		}
		if !errors.Is(ip, ErrInjected) {
			t.Fatal("InjectedPanic must wrap ErrInjected")
		}
	}()
	r.Check(PointCycleSearch)
}

func TestFuncMode(t *testing.T) {
	r := New(9)
	calls := 0
	sentinel := errors.New("hook")
	r.ArmFunc(PointLPRound, func() error {
		calls++
		if calls == 1 {
			return nil
		}
		return sentinel
	})
	if err := r.Check(PointLPRound); err != nil {
		t.Fatalf("first hook call: %v", err)
	}
	if err := r.Check(PointLPRound); !errors.Is(err, sentinel) {
		t.Fatalf("second hook call: %v", err)
	}
	if r.Trips(PointLPRound) != 2 {
		t.Fatalf("func-mode trips = %d, want 2 (invocations)", r.Trips(PointLPRound))
	}
}

func TestPointStrings(t *testing.T) {
	want := map[Point]string{
		PointResidualUpdate: "residual-update",
		PointCycleSearch:    "cycle-search",
		PointLPRound:        "lp-round",
		PointCancel:         "cancel",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}
