package cluster

import (
	"math/rand"
	"sync"
)

// Backoff defaults (nanoseconds).
const (
	// DefaultBackoffBaseNs is the attempt-0 backoff ceiling (10 ms).
	DefaultBackoffBaseNs = int64(10_000_000)
	// DefaultBackoffMaxNs caps the exponential growth (500 ms).
	DefaultBackoffMaxNs = int64(500_000_000)
)

// Backoff computes jittered exponential retry delays. Delays double per
// attempt up to the cap and carry full jitter (uniform in [cap/2, cap]),
// decorrelating retry storms across a fleet of clients while keeping a
// deterministic seed → delay-sequence mapping for tests. Safe for
// concurrent use; concurrent callers interleave draws from one seeded
// stream, so determinism holds per call sequence, not per goroutine.
type Backoff struct {
	mu sync.Mutex
	//krsp:guardedby(mu)
	rng *rand.Rand
	// base and max never change once NewBackoff returns, so the lock-free
	// reads in Delay are safe.
	base int64 //lint:allow lockcheck immutable after NewBackoff returns
	max  int64 //lint:allow lockcheck immutable after NewBackoff returns
}

// NewBackoff builds a backoff policy; non-positive base/max take the
// defaults. The seed fixes the jitter stream.
func NewBackoff(baseNs, maxNs, seed int64) *Backoff {
	if baseNs <= 0 {
		baseNs = DefaultBackoffBaseNs
	}
	if maxNs <= 0 {
		maxNs = DefaultBackoffMaxNs
	}
	if maxNs < baseNs {
		maxNs = baseNs
	}
	return &Backoff{rng: rand.New(rand.NewSource(seed)), base: baseNs, max: maxNs}
}

// Delay returns the jittered delay before retry number attempt (0-based:
// the delay between the first failure and the second try).
func (b *Backoff) Delay(attempt int) int64 {
	ceil := b.base
	for i := 0; i < attempt && ceil < b.max; i++ {
		ceil *= 2
	}
	if ceil > b.max {
		ceil = b.max
	}
	half := ceil / 2
	b.mu.Lock()
	j := b.rng.Int63n(ceil - half + 1)
	b.mu.Unlock()
	return half + j
}

// Budget is the deadline-budget account for one request's retry chain: an
// absolute monotonic deadline that retries must not overrun. The zero
// Budget is unlimited.
type Budget struct {
	deadline int64
	set      bool
}

// NewBudget builds a budget expiring at now+totalNs; totalNs ≤ 0 yields the
// unlimited budget.
func NewBudget(now, totalNs int64) Budget {
	if totalNs <= 0 {
		return Budget{}
	}
	return Budget{deadline: now + totalNs, set: true}
}

// Remaining reports the budget left at monotonic time now (never negative);
// unlimited budgets report a sentinel of 1<<62.
func (bu Budget) Remaining(now int64) int64 {
	if !bu.set {
		return 1 << 62
	}
	if r := bu.deadline - now; r > 0 {
		return r
	}
	return 0
}

// Allows reports whether sleeping delayNs at time now still leaves
// reserveNs of budget to do useful work afterwards. A retry whose backoff
// sleep would eat the remaining deadline is pointless — the caller should
// fall back (degraded local solve, stale cache) instead of burning the
// budget asleep.
func (bu Budget) Allows(now, delayNs, reserveNs int64) bool {
	if !bu.set {
		return true
	}
	return delayNs+reserveNs <= bu.Remaining(now)
}
