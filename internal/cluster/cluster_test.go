package cluster

import (
	"testing"
)

func newTestTable(t *testing.T, opt Options) *Table {
	t.Helper()
	tab, err := NewTable([]string{"a:1", "b:2", "c:3"}, "a:1", opt)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	cases := []struct {
		addrs []string
		self  string
	}{
		{nil, "a"},
		{[]string{"a", "a"}, "a"},
		{[]string{"a", ""}, "a"},
		{[]string{"a", "b"}, "z"},
	}
	for _, c := range cases {
		if _, err := NewTable(c.addrs, c.self, Options{}); err == nil {
			t.Errorf("NewTable(%v, %q): want error", c.addrs, c.self)
		}
	}
}

// TestOwnerDeterministicAndBalanced: every key has exactly one owner, the
// assignment is stable across calls and across tables built from the same
// list, and no member owns everything.
func TestOwnerDeterministicAndBalanced(t *testing.T) {
	t1 := newTestTable(t, Options{})
	t2, err := NewTable([]string{"a:1", "b:2", "c:3"}, "b:2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for key := uint64(0); key < 3000; key++ {
		o1, _ := t1.Owner(mix64(key))
		o2, _ := t2.Owner(mix64(key))
		if o1 != o2 {
			t.Fatalf("key %d: tables disagree on owner: %q vs %q", key, o1, o2)
		}
		counts[o1]++
	}
	for _, addr := range []string{"a:1", "b:2", "c:3"} {
		if counts[addr] < 500 {
			t.Fatalf("member %s owns only %d/3000 keys; ring is unbalanced: %v", addr, counts[addr], counts)
		}
	}
}

// TestOwnerEjectionRemapsMinimally: ejecting one member must remap only the
// keys it owned, and readmission must restore the original assignment
// exactly — the consistent-hashing property failover relies on.
func TestOwnerEjectionRemapsMinimally(t *testing.T) {
	tab := newTestTable(t, Options{FailThreshold: 1})
	before := make(map[uint64]string)
	for key := uint64(0); key < 2000; key++ {
		before[key], _ = tab.Owner(key)
	}
	if ejected := tab.Fail("c:3", 10); !ejected {
		t.Fatal("threshold-1 failure should eject")
	}
	for key := uint64(0); key < 2000; key++ {
		after, _ := tab.Owner(key)
		if after == "c:3" {
			t.Fatalf("key %d still owned by the ejected member", key)
		}
		if before[key] != "c:3" && after != before[key] {
			t.Fatalf("key %d moved from %q to %q though its owner never failed", key, before[key], after)
		}
	}
	if readmitted := tab.Succeed("c:3"); !readmitted {
		t.Fatal("Succeed on an ejected peer should readmit")
	}
	for key := uint64(0); key < 2000; key++ {
		if after, _ := tab.Owner(key); after != before[key] {
			t.Fatalf("key %d not restored to %q after readmission (got %q)", key, before[key], after)
		}
	}
}

func TestHealthTransitions(t *testing.T) {
	tab := newTestTable(t, Options{FailThreshold: 3, CooldownNs: 100})
	if h := tab.Health("b:2"); h != Up {
		t.Fatalf("initial health %v", h)
	}
	if tab.Fail("b:2", 1) {
		t.Fatal("first failure must not eject")
	}
	if h := tab.Health("b:2"); h != Suspect {
		t.Fatalf("after 1 failure: %v, want suspect", h)
	}
	// A success between failures resets the streak.
	tab.Succeed("b:2")
	if h := tab.Health("b:2"); h != Up {
		t.Fatalf("after success: %v, want up", h)
	}
	tab.Fail("b:2", 2)
	tab.Fail("b:2", 3)
	if !tab.Fail("b:2", 4) {
		t.Fatal("third consecutive failure should eject")
	}
	if h := tab.Health("b:2"); h != Ejected {
		t.Fatalf("after threshold: %v, want ejected", h)
	}
	// Ejected peers stay off the probe list until the cooldown lapses.
	if got := tab.ProbeTargets(50); len(got) != 0 {
		t.Fatalf("probe targets before cooldown: %v", got)
	}
	if got := tab.ProbeTargets(104); len(got) != 1 || got[0] != "b:2" {
		t.Fatalf("probe targets after cooldown: %v", got)
	}
	// A failed probe re-arms the cooldown instead of double-ejecting.
	if tab.Fail("b:2", 200) {
		t.Fatal("failing an already-ejected peer must not re-eject")
	}
	if got := tab.ProbeTargets(250); len(got) != 0 {
		t.Fatalf("cooldown not re-armed by failed probe: %v", got)
	}
	if got := tab.ProbeTargets(300); len(got) != 1 {
		t.Fatalf("probe targets after re-armed cooldown: %v", got)
	}
}

// TestSelfNeverEjected: failures recorded against self are ignored, and a
// node whose every peer is ejected owns all keys itself.
func TestSelfNeverEjected(t *testing.T) {
	tab := newTestTable(t, Options{FailThreshold: 1})
	tab.Fail("a:1", 1)
	if h := tab.Health("a:1"); h != Up {
		t.Fatalf("self health after Fail: %v, want up", h)
	}
	tab.Fail("b:2", 1)
	tab.Fail("c:3", 1)
	for key := uint64(0); key < 100; key++ {
		owner, isSelf := tab.Owner(key)
		if owner != "a:1" || !isSelf {
			t.Fatalf("fully partitioned node must own key %d itself (got %q)", key, owner)
		}
	}
}

func TestSnapshot(t *testing.T) {
	tab := newTestTable(t, Options{FailThreshold: 1})
	tab.Fail("c:3", 42)
	snap := tab.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot rows = %d", len(snap))
	}
	if !snap[0].Self || snap[0].Addr != "a:1" || snap[0].Health != "up" {
		t.Fatalf("row 0 = %+v", snap[0])
	}
	if snap[2].Health != "ejected" || snap[2].EjectedAtNs != 42 {
		t.Fatalf("row 2 = %+v", snap[2])
	}
	if tab.Self() != "a:1" || tab.Size() != 3 {
		t.Fatalf("self/size = %q/%d", tab.Self(), tab.Size())
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	b1 := NewBackoff(100, 1000, 7)
	b2 := NewBackoff(100, 1000, 7)
	ceil := int64(100)
	for attempt := 0; attempt < 8; attempt++ {
		d1 := b1.Delay(attempt)
		d2 := b2.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %d vs %d", attempt, d1, d2)
		}
		if d1 < ceil/2 || d1 > ceil {
			t.Fatalf("attempt %d: delay %d outside [%d, %d]", attempt, d1, ceil/2, ceil)
		}
		if ceil < 1000 {
			ceil *= 2
		}
		if ceil > 1000 {
			ceil = 1000
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	if d := b.Delay(0); d < DefaultBackoffBaseNs/2 || d > DefaultBackoffBaseNs {
		t.Fatalf("default base delay %d", d)
	}
	for attempt := 0; attempt < 30; attempt++ {
		if d := b.Delay(attempt); d > DefaultBackoffMaxNs {
			t.Fatalf("attempt %d: delay %d exceeds cap", attempt, d)
		}
	}
}

func TestBudget(t *testing.T) {
	unlimited := NewBudget(0, 0)
	if !unlimited.Allows(1<<40, 1<<40, 1<<40) {
		t.Fatal("unlimited budget should allow anything")
	}
	bu := NewBudget(1000, 500) // deadline at 1500
	if got := bu.Remaining(1200); got != 300 {
		t.Fatalf("remaining = %d, want 300", got)
	}
	if got := bu.Remaining(2000); got != 0 {
		t.Fatalf("expired remaining = %d, want 0", got)
	}
	if !bu.Allows(1200, 100, 100) {
		t.Fatal("100ns sleep + 100ns reserve fits in 300ns")
	}
	if bu.Allows(1200, 250, 100) {
		t.Fatal("250ns sleep + 100ns reserve must not fit in 300ns")
	}
}
