// Package cluster is the membership and failover substrate of krspd's
// sharded mode (DESIGN.md §14): a consistent-hash ring assigning instance
// fingerprints to owner nodes, a member table tracking per-peer health
// (Up → Suspect → Ejected → readmission) with a consecutive-failure circuit
// breaker, and deadline-budgeted retry backoff with seeded jitter.
//
// The package is deliberately transport-free and clock-free: it never opens
// a socket, never sleeps, and never reads the wall clock. Callers (cmd/
// krspd) pass monotonic nanosecond readings in and perform the actual
// sleeping and probing at the cmd/ edge, which keeps every state transition
// deterministic under test — the same discipline the solver's Canceller and
// obs.Clock follow.
package cluster

// Owner selection uses rendezvous (highest-random-weight) hashing: every
// member scores mix(key, memberHash) and the highest healthy score wins.
// Rendezvous hashing is consistent in the failover sense that matters here:
// ejecting a member remaps only the keys that member owned, and readmission
// restores exactly the original assignment — no token ring to rebalance,
// and every node computes the same owner from the same member list without
// coordination.

// hashAddr fingerprints a member address for ring placement.
func hashAddr(addr string) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < len(addr); i++ {
		h = mix64(h ^ uint64(addr[i]))
	}
	return h
}

// score is the rendezvous weight of key on the member with address hash ah.
func score(key, ah uint64) uint64 { return mix64(key ^ ah) }

// mix64 is the splitmix64 finalizer (same mixer the fingerprint uses; the
// inputs are already decorrelated by the per-side seeds).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
