package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// Health is a member's failure-detector state.
type Health int

const (
	// Up: the last contact succeeded (or the member is untried).
	Up Health = iota
	// Suspect: recent failures below the ejection threshold. Suspect
	// members still own their fingerprint ranges — one flaky hop must not
	// reshuffle the ring.
	Suspect
	// Ejected: the circuit breaker is open. Ejected members own nothing and
	// receive no proxied solves until a probe succeeds; after CooldownNs
	// they become probe targets (half-open breaker).
	Ejected
)

func (h Health) String() string {
	switch h {
	case Suspect:
		return "suspect"
	case Ejected:
		return "ejected"
	}
	return "up"
}

// Defaults for NewTable when the corresponding option is zero.
const (
	// DefaultFailThreshold consecutive failures eject a peer.
	DefaultFailThreshold = 3
	// DefaultCooldownNs is how long an ejected peer is shielded from
	// probes before the breaker half-opens (2 s).
	DefaultCooldownNs = int64(2_000_000_000)
)

// Options tunes a member table. Zero fields take the defaults above.
type Options struct {
	// FailThreshold is the consecutive-failure count that ejects a peer.
	FailThreshold int
	// CooldownNs is the ejection cooldown before probing may readmit.
	CooldownNs int64
}

// MemberInfo is a read-only health snapshot row (served by GET /readyz).
type MemberInfo struct {
	Addr     string `json:"addr"`
	Self     bool   `json:"self"`
	Health   string `json:"health"`
	Failures int    `json:"consecutiveFailures"`
	// EjectedAtNs is the monotonic ejection timestamp; 0 unless ejected.
	EjectedAtNs int64 `json:"ejectedAtNs,omitempty"`
}

type member struct {
	addr      string
	hash      uint64
	self      bool
	health    Health
	failures  int
	ejectedAt int64
}

// Table is the cluster member list with per-peer health and the ring's
// owner lookup. All methods are safe for concurrent use; the table is the
// single point of truth a krspd node consults for "who owns this
// fingerprint" and "may I talk to this peer".
type Table struct {
	mu sync.Mutex
	//krsp:guardedby(mu)
	members []member
	//krsp:guardedby(mu)
	byAddr map[string]int
	//krsp:guardedby(mu)
	selfIdx int
	//krsp:guardedby(mu)
	opt Options
}

// ErrBadMembership wraps member-list validation failures.
var ErrBadMembership = errors.New("cluster: bad membership")

// NewTable builds a table over the given member addresses; self must be one
// of them. Addresses are opaque identities (host:port): equality and hash
// placement are byte-wise, so every node must be configured with the same
// spellings.
func NewTable(addrs []string, self string, opt Options) (*Table, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: empty member list", ErrBadMembership)
	}
	if opt.FailThreshold <= 0 {
		opt.FailThreshold = DefaultFailThreshold
	}
	if opt.CooldownNs <= 0 {
		opt.CooldownNs = DefaultCooldownNs
	}
	t := &Table{byAddr: make(map[string]int, len(addrs)), selfIdx: -1, opt: opt}
	for _, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("%w: empty member address", ErrBadMembership)
		}
		if _, dup := t.byAddr[a]; dup {
			return nil, fmt.Errorf("%w: duplicate member %q", ErrBadMembership, a)
		}
		m := member{addr: a, hash: hashAddr(a), self: a == self}
		if m.self {
			t.selfIdx = len(t.members)
		}
		t.byAddr[a] = len(t.members)
		t.members = append(t.members, m)
	}
	if t.selfIdx < 0 {
		return nil, fmt.Errorf("%w: self %q not in member list", ErrBadMembership, self)
	}
	return t, nil
}

// Self returns this node's own address.
func (t *Table) Self() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.members[t.selfIdx].addr
}

// Size returns the total member count (any health).
func (t *Table) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.members)
}

// Owner returns the address owning the 64-bit fingerprint key: the
// highest-scoring non-ejected member, with self the last resort when every
// peer is ejected (a fully partitioned node serves everything itself). The
// boolean reports whether the owner is this node.
func (t *Table) Owner(key uint64) (addr string, isSelf bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	best := -1
	var bestScore uint64
	for i := range t.members {
		if t.members[i].health == Ejected {
			continue
		}
		if s := score(key, t.members[i].hash); best < 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	if best < 0 {
		best = t.selfIdx
	}
	return t.members[best].addr, best == t.selfIdx
}

// Fail records one failed contact with addr at monotonic time now,
// advancing Up → Suspect and, at the failure threshold, Suspect → Ejected.
// It reports whether this call ejected the peer (the caller's cue to bump
// krsp_peer_ejected_total). Failures of unknown addresses and of self are
// ignored.
func (t *Table) Fail(addr string, now int64) (ejected bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.byAddr[addr]
	if !ok || i == t.selfIdx {
		return false
	}
	m := &t.members[i]
	if m.health == Ejected {
		// A failed probe re-arms the cooldown so a dead peer is probed once
		// per cooldown, not hammered.
		m.ejectedAt = now
		return false
	}
	m.failures++
	if m.failures >= t.opt.FailThreshold {
		m.health = Ejected
		m.ejectedAt = now
		return true
	}
	m.health = Suspect
	return false
}

// Succeed records one successful contact with addr, resetting its failure
// streak. It reports whether this call readmitted an ejected peer.
func (t *Table) Succeed(addr string) (readmitted bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.byAddr[addr]
	if !ok {
		return false
	}
	m := &t.members[i]
	readmitted = m.health == Ejected
	m.health = Up
	m.failures = 0
	m.ejectedAt = 0
	return readmitted
}

// Health returns the current health of addr (Up for unknown addresses,
// which only a misconfigured caller would pass).
func (t *Table) Health(addr string) Health {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.byAddr[addr]; ok {
		return t.members[i].health
	}
	return Up
}

// ProbeTargets returns the ejected peers whose cooldown has lapsed at
// monotonic time now — the half-open breaker set the prober should contact.
func (t *Table) ProbeTargets(now int64) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for i := range t.members {
		m := &t.members[i]
		if m.health == Ejected && now-m.ejectedAt >= t.opt.CooldownNs {
			out = append(out, m.addr)
		}
	}
	return out
}

// Snapshot returns the member table in configuration order for /readyz.
func (t *Table) Snapshot() []MemberInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]MemberInfo, len(t.members))
	for i := range t.members {
		m := &t.members[i]
		out[i] = MemberInfo{
			Addr:        m.addr,
			Self:        m.self,
			Health:      m.health.String(),
			Failures:    m.failures,
			EjectedAtNs: m.ejectedAt,
		}
	}
	return out
}
