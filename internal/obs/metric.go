package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-op / zero), which is how the no-op sink
// contract reaches individual handles.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d. Negative deltas are ignored so counters stay monotone even
// if a caller wires a signed stat through by mistake.
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (it may go up and down).
// Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (use Add(1)/Add(-1) for in-flight tracking).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: ascending upper bounds chosen at
// registration, plus an implicit +Inf bucket. Observe is a linear scan over
// the (small, preallocated) bound slice followed by three atomic adds — no
// allocation, no locks. Nil-safe like Counter.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records v into the first bucket whose upper bound is ≥ v.
//
//krsp:terminates(the scan index strictly increases toward the fixed bucket count)
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count is the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum is the sum of all observed values (nanoseconds for duration
// histograms; exposition rescales).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}
