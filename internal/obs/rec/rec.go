// Package rec is the solver's flight recorder: a fixed-capacity,
// preallocated ring buffer of structured algorithm events — phase
// transitions, Lagrangian λ-iterations with their duality gap,
// augmentation rounds, cycle-cancellation steps, C_ref escalations,
// degradation decisions, and armed fault-point hits. Where the metrics
// registry (package obs) answers "how many / how long" in aggregate, the
// recorder answers "what did THIS solve do, in what order" — the
// convergence trajectory an engineer needs to tune ε, kernels, and
// warm-start strategies, and the black box krspd dumps when a solve
// degrades or dies.
//
// Two contracts mirror the obs registry:
//
//   - The nil recorder is free. Every method tolerates a nil receiver;
//     Record on a nil *Recorder is a single branch — zero allocations,
//     zero atomics — so solver code records unconditionally and a solve
//     with core.Options.Recorder unset pays only dead nil checks
//     (bench-twin-guarded in `make bench-guard`).
//   - The armed record path never allocates. The ring is preallocated at
//     construction; Record writes one fixed-size Event value into the next
//     slot and bumps an atomic sequence counter (verified by the
//     //krsp:noalloc contract and an AllocsPerRun test).
//
// Events carry a Kind from the catalogue (catalogue.go), a timestamp from
// the injected obs.Clock, and up to four int64 arguments whose meaning the
// catalogue names. When the ring wraps, the oldest events are overwritten
// — a flight recorder keeps the most recent history, which is the part
// that explains a degraded or crashed solve.
//
// Record is meant to be called from the serial points of the solve
// pipeline (the same discipline as fault injection sites); it is not a
// general concurrent event bus. DESIGN.md §13 documents the architecture
// and the event schema.
package rec

import (
	"sync/atomic"

	"repro/internal/obs"
)

// DefaultCapacity is the ring size used when New is given a non-positive
// capacity: enough for the full trajectory of mid-size solves while
// keeping a pooled recorder under ~200 KiB.
const DefaultCapacity = 4096

// Event is one recorded algorithm event. It is a fixed-size value type —
// recording one never allocates. Args are interpreted per Kind; the
// catalogue names them (see ArgNames).
type Event struct {
	// Seq is the global sequence number of the event (0-based, monotone
	// across ring wraps — Seq differences count dropped events).
	Seq uint64
	// T is the recorder clock reading in nanoseconds. Only differences are
	// meaningful; with a zero clock every event reads 0.
	T int64
	// Kind identifies the event in the catalogue.
	Kind Kind
	// Args are the kind-specific payload values.
	Args [4]int64
}

// Recorder is the fixed-capacity ring buffer. Construct with New; the nil
// recorder is a free no-op sink.
type Recorder struct {
	clock obs.Clock
	buf   []Event
	mask  uint64
	seq   atomic.Uint64
}

// New builds a recorder with the given ring capacity (rounded up to a
// power of two; non-positive means DefaultCapacity). A nil clock freezes
// timestamps at zero, which keeps unit tests deterministic while
// preserving event order through Seq.
func New(clock obs.Clock, capacity int) *Recorder {
	if clock == nil {
		clock = zeroClock{}
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Recorder{clock: clock, buf: make([]Event, size), mask: uint64(size - 1)}
}

// zeroClock mirrors the obs registry's frozen default clock.
type zeroClock struct{}

func (zeroClock) Now() int64 { return 0 }

// Record appends one event to the ring, overwriting the oldest when full.
// Nil-safe: a nil recorder records nothing at the cost of one branch.
//
//krsp:noalloc
func (r *Recorder) Record(k Kind, a0, a1, a2, a3 int64) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1) - 1
	//lint:allow contracts Clock implementations (ManualClock atomic load, RealClock runtime nanotime) do not allocate; interface dispatch is opaque to the checker
	r.buf[seq&r.mask] = Event{Seq: seq, T: r.clock.Now(), Kind: k, Args: [4]int64{a0, a1, a2, a3}}
}

// Len returns the number of events currently held (≤ Cap). Nil-safe.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.seq.Load()
	if n > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(n)
}

// Cap returns the ring capacity. Nil-safe.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded (including overwritten
// ones). Nil-safe.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Dropped returns how many events the ring has overwritten. Nil-safe.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	n := r.seq.Load()
	if n <= uint64(len(r.buf)) {
		return 0
	}
	return n - uint64(len(r.buf))
}

// Events returns a copy of the held events in recording order (oldest
// first). It allocates and is meant for the dump/analysis edge, never the
// solve path. Nil-safe (nil slice).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	n := r.seq.Load()
	if n == 0 {
		return nil
	}
	size := uint64(len(r.buf))
	out := make([]Event, 0, min(n, size))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	for s := start; s < n; s++ {
		out = append(out, r.buf[s&r.mask])
	}
	return out
}

// Reset discards all held events, keeping the ring allocation. The
// recorder can then be reused for a new solve (krspd pools recorders per
// request). Nil-safe.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.seq.Store(0)
}
