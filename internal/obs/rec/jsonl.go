package rec

// JSONL dump format for flight-recorder traces. A dump is a header line
// followed by one line per event, oldest first:
//
//	{"schema":1,"trace":"4bf9...","cap":4096,"total":973,"dropped":0}
//	{"seq":0,"t":0,"kind":"solve-start","args":{"n":40,"m":118,"k":2,"bound":57}}
//	{"seq":1,"t":1500,"kind":"phase-start","args":{"phase":0}}
//	...
//
// Arguments are keyed by their catalogue names so dumps are readable raw
// and join cleanly with krsp/krspd summary lines on (schema, trace). The
// codec lives on the dump/analysis edge and allocates freely — only
// Record is on the solve path.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Header is the first line of a JSONL trace dump.
type Header struct {
	// Schema is the event-schema version the dump was written under.
	Schema int `json:"schema"`
	// Trace is the W3C trace ID (32 lowercase hex) the solve ran under,
	// or "" for untraced CLI dumps.
	Trace string `json:"trace,omitempty"`
	// Cap, Total, Dropped snapshot the ring state at dump time.
	Cap     int    `json:"cap"`
	Total   uint64 `json:"total"`
	Dropped uint64 `json:"dropped"`
}

// eventLine is the wire form of one event.
type eventLine struct {
	Seq  uint64           `json:"seq"`
	T    int64            `json:"t"`
	Kind string           `json:"kind"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteJSONL dumps the recorder's held events to w: one header line, then
// one line per event in recording order. Nil-safe: a nil recorder writes a
// header describing an empty ring.
func (r *Recorder) WriteJSONL(w io.Writer, traceID string) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := Header{Schema: Schema, Trace: traceID, Cap: r.Cap(), Total: r.Total(), Dropped: r.Dropped()}
	if err := enc.Encode(h); err != nil {
		return err
	}
	for _, ev := range r.Events() {
		if err := enc.Encode(encodeEvent(ev)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeEvent(ev Event) eventLine {
	line := eventLine{Seq: ev.Seq, T: ev.T, Kind: ev.Kind.String()}
	names := ev.Kind.Info().Args
	for i, name := range names {
		if name == "" {
			continue
		}
		if line.Args == nil {
			line.Args = make(map[string]int64, 4)
		}
		line.Args[name] = ev.Args[i]
	}
	return line
}

// ReadJSONL parses a dump written by WriteJSONL: the header and the events
// in file order. Events whose kind is unknown to this build's catalogue
// are skipped (a dump from a newer schema degrades instead of failing);
// a malformed line is an error.
func ReadJSONL(rd io.Reader) (Header, []Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Header{}, nil, err
		}
		return Header{}, nil, io.ErrUnexpectedEOF
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return Header{}, nil, fmt.Errorf("trace header: %w", err)
	}
	var events []Event
	lineNo := 1
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line eventLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return h, events, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		k, ok := KindByName(line.Kind)
		if !ok {
			continue
		}
		ev := Event{Seq: line.Seq, T: line.T, Kind: k}
		for i, name := range k.Info().Args {
			if name == "" {
				continue
			}
			ev.Args[i] = line.Args[name]
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return h, events, err
	}
	return h, events, nil
}
