package rec

// This file is the flight recorder's event catalogue: every Kind the
// solver records, with its JSONL name and argument names. The krsplint
// `eventcat` analyzer closes the loop the compiler cannot: every Kind
// constant must appear in the catalogue exactly once, every Record call
// site must pass a declared constant, and no declared kind may rot unused.
// DESIGN.md §13 carries the prose version of this table.

// Schema is the version of the event schema and of the JSONL dump format.
// Bump it whenever a Kind is removed, renamed, or its argument meaning
// changes — offline tooling joins traces on (schema, kind name).
const Schema = 1

// Kind identifies one event type in the catalogue.
type Kind uint8

const (
	// KindSolveStart opens a solve: instance shape (n, m, k, bound).
	KindSolveStart Kind = iota
	// KindSolveEnd closes a solve: final cost, delay, cancellation
	// iterations, and outcome flags (FlagDegraded | FlagExact | ...).
	KindSolveEnd
	// KindPhaseStart marks entry into a pipeline phase (obs.Phase value).
	KindPhaseStart
	// KindPhaseEnd marks exit from a pipeline phase.
	KindPhaseEnd
	// KindLambdaIter is one phase-1 Lagrangian iteration: the multiplier
	// λ = p/q in force and the combined weight of the new interior flow.
	KindLambdaIter
	// KindDualityGap is the phase-1 convergence snapshot after an
	// iteration: feasible endpoint cost, best dual lower bound (floored to
	// an integer), and their gap — the quantity the scaled kernel's ε exit
	// tests and the krsptrace convergence table plots.
	KindDualityGap
	// KindAugment is one successive-shortest-path augmentation round in
	// the min-cost-flow kernel: round index and the round's s→t reduced
	// distance.
	KindAugment
	// KindCancelStep is one applied cycle cancellation: cycle edge count,
	// aggregate cost and delay of the applied candidate, bicameral type.
	KindCancelStep
	// KindCRefEscalate is a C_OPT stand-in escalation: old and new C_ref.
	KindCRefEscalate
	// KindSearchDone summarises one bicameral.Find call: found flag,
	// budget-ladder steps tried, candidates inspected, final budget.
	KindSearchDone
	// KindDegraded marks the decision to return a degraded (anytime)
	// answer: the phase in which the deadline fired.
	KindDegraded
	// KindRelaxedCap marks consumption of the relaxed-cap fallback
	// candidate (cost bound forfeited): candidate cost and delay.
	KindRelaxedCap
	// KindFallback marks returning the feasible phase-1 endpoint instead
	// of the cancelled solution (reason code: FallbackIterCap,
	// FallbackSearchExhausted, FallbackCheaper).
	KindFallback
	// KindResidualApply is one incremental residual update: cycles applied
	// and residual edges flipped.
	KindResidualApply
	// KindResidualRebuild is a full residual rebuild healing a failed (or
	// fault-injected) incremental update, at the given iteration.
	KindResidualRebuild
	// KindFaultHit is an armed fault-point trip observed at a solver seam
	// (fault.Point value).
	KindFaultHit
	// KindCacheHit is a solve answered from the fingerprint cache: the
	// entry's State (solvecache fresh=1/stale=2) and its age in
	// nanoseconds.
	KindCacheHit
	// KindSingleflight is a solve collapsed onto an identical in-flight
	// solve's result instead of running its own.
	KindSingleflight
	// KindProxyAttempt is one attempt to proxy a solve to its owning peer:
	// attempt index (0-based), outcome code (ProxyOK, ...), and whether
	// the attempt was a hedge.
	KindProxyAttempt
	// KindDegradedRoute marks a solve computed locally because the owning
	// peer was unreachable: the attempts burned before giving up.
	KindDegradedRoute
	// NumKinds bounds the Kind enum.
	NumKinds
)

// Solve-end outcome flags (KindSolveEnd arg 3, bitwise OR).
const (
	FlagDegraded int64 = 1 << iota
	FlagExact
	FlagRelaxedCap
	FlagFellBack
)

// KindFallback reason codes (arg 0).
const (
	// FallbackIterCap: the cancellation iteration cap was hit.
	FallbackIterCap int64 = iota
	// FallbackSearchExhausted: no bicameral cycle existed under any cap.
	FallbackSearchExhausted
	// FallbackCheaper: the feasible endpoint beat the cancelled solution.
	FallbackCheaper
)

// KindProxyAttempt outcome codes (arg 1).
const (
	// ProxyOK: the peer answered 2xx.
	ProxyOK int64 = iota
	// ProxyDialFailed: the connection could not be established.
	ProxyDialFailed
	// ProxyReadFailed: the peer connection died mid-response.
	ProxyReadFailed
	// ProxyBadStatus: the peer answered a retryable 5xx.
	ProxyBadStatus
)

// KindInfo is one catalogue row: the event's wire name (kebab-case, stable
// across releases within a Schema) and the names of its used arguments
// ("" marks an unused slot).
type KindInfo struct {
	Name string
	Args [4]string
	Doc  string
}

// kinds is the catalogue table. Keyed by Kind so the eventcat analyzer can
// check one-entry-per-kind structurally.
var kinds = [NumKinds]KindInfo{
	KindSolveStart: {
		Name: "solve-start",
		Args: [4]string{"n", "m", "k", "bound"},
		Doc:  "solve entry: instance shape",
	},
	KindSolveEnd: {
		Name: "solve-end",
		Args: [4]string{"cost", "delay", "iterations", "flags"},
		Doc:  "solve exit: result totals and outcome flags",
	},
	KindPhaseStart: {
		Name: "phase-start",
		Args: [4]string{"phase", "", "", ""},
		Doc:  "pipeline phase entry",
	},
	KindPhaseEnd: {
		Name: "phase-end",
		Args: [4]string{"phase", "", "", ""},
		Doc:  "pipeline phase exit",
	},
	KindLambdaIter: {
		Name: "lambda-iter",
		Args: [4]string{"iter", "p", "q", "weight"},
		Doc:  "phase-1 Lagrangian iteration at λ = p/q",
	},
	KindDualityGap: {
		Name: "duality-gap",
		Args: [4]string{"iter", "feasibleCost", "dualFloor", "gap"},
		Doc:  "phase-1 convergence snapshot: c(Lo) vs best dual bound",
	},
	KindAugment: {
		Name: "augment",
		Args: [4]string{"round", "dist", "", ""},
		Doc:  "min-cost-flow augmentation round",
	},
	KindCancelStep: {
		Name: "cancel-step",
		Args: [4]string{"edges", "cost", "delay", "type"},
		Doc:  "applied cycle cancellation",
	},
	KindCRefEscalate: {
		Name: "cref-escalate",
		Args: [4]string{"old", "new", "", ""},
		Doc:  "C_OPT stand-in escalation",
	},
	KindSearchDone: {
		Name: "search-done",
		Args: [4]string{"found", "budgets", "candidates", "lastBudget"},
		Doc:  "bicameral search summary",
	},
	KindDegraded: {
		Name: "degraded",
		Args: [4]string{"phase", "", "", ""},
		Doc:  "deadline fired; returning the anytime answer",
	},
	KindRelaxedCap: {
		Name: "relaxed-cap",
		Args: [4]string{"cost", "delay", "", ""},
		Doc:  "relaxed-cap fallback candidate consumed",
	},
	KindFallback: {
		Name: "fallback",
		Args: [4]string{"reason", "", "", ""},
		Doc:  "returned the feasible phase-1 endpoint",
	},
	KindResidualApply: {
		Name: "residual-apply",
		Args: [4]string{"cycles", "flipped", "", ""},
		Doc:  "incremental residual update",
	},
	KindResidualRebuild: {
		Name: "residual-rebuild",
		Args: [4]string{"iteration", "", "", ""},
		Doc:  "full residual rebuild healing a failed update",
	},
	KindFaultHit: {
		Name: "fault-hit",
		Args: [4]string{"point", "", "", ""},
		Doc:  "armed fault-point trip at a solver seam",
	},
	KindCacheHit: {
		Name: "cache-hit",
		Args: [4]string{"state", "ageNs", "", ""},
		Doc:  "solve answered from the fingerprint cache",
	},
	KindSingleflight: {
		Name: "singleflight-collapse",
		Args: [4]string{"", "", "", ""},
		Doc:  "solve collapsed onto an identical in-flight solve",
	},
	KindProxyAttempt: {
		Name: "proxy-attempt",
		Args: [4]string{"attempt", "outcome", "hedge", ""},
		Doc:  "one proxy attempt toward the owning peer",
	},
	KindDegradedRoute: {
		Name: "degraded-route",
		Args: [4]string{"attempts", "", "", ""},
		Doc:  "owner unreachable; solved locally off-route",
	},
}

// String returns the kind's stable wire name.
func (k Kind) String() string {
	if k >= NumKinds {
		return "unknown"
	}
	return kinds[k].Name
}

// Info returns the catalogue row for k (zero value for out-of-range).
func (k Kind) Info() KindInfo {
	if k >= NumKinds {
		return KindInfo{Name: "unknown"}
	}
	return kinds[k]
}

// ArgNames returns the named (used) argument slots of k.
func (k Kind) ArgNames() []string {
	info := k.Info()
	var out []string
	for _, a := range info.Args {
		if a != "" {
			out = append(out, a)
		}
	}
	return out
}

// KindByName resolves a wire name back to its Kind; ok is false for
// unknown names (a newer or older schema).
func KindByName(name string) (Kind, bool) {
	for k := Kind(0); k < NumKinds; k++ {
		if kinds[k].Name == name {
			return k, true
		}
	}
	return NumKinds, false
}

// Catalogue returns the full table in Kind order (for docs and tests).
func Catalogue() []KindInfo {
	out := make([]KindInfo, NumKinds)
	copy(out, kinds[:])
	return out
}
