package rec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	r.Record(KindSolveStart, 1, 2, 3, 4)
	r.Reset()
	if got := r.Len(); got != 0 {
		t.Errorf("nil Len = %d, want 0", got)
	}
	if got := r.Cap(); got != 0 {
		t.Errorf("nil Cap = %d, want 0", got)
	}
	if got := r.Total(); got != 0 {
		t.Errorf("nil Total = %d, want 0", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Errorf("nil Dropped = %d, want 0", got)
	}
	if got := r.Events(); got != nil {
		t.Errorf("nil Events = %v, want nil", got)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(KindLambdaIter, 1, 2, 3, 4)
	})
	if allocs != 0 {
		t.Errorf("nil Record allocates %v/op, want 0", allocs)
	}
}

func TestRecordOrderAndWrap(t *testing.T) {
	clock := new(obs.ManualClock)
	r := New(clock, 4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	for i := 0; i < 6; i++ {
		clock.Advance(10)
		r.Record(KindLambdaIter, int64(i), 0, 0, 0)
	}
	if r.Total() != 6 {
		t.Errorf("Total = %d, want 6", r.Total())
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(i + 2) // oldest two overwritten
		if ev.Seq != wantSeq {
			t.Errorf("event %d Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Args[0] != int64(i+2) {
			t.Errorf("event %d arg0 = %d, want %d", i, ev.Args[0], i+2)
		}
		if want := int64(10 * (i + 3)); ev.T != want {
			t.Errorf("event %d T = %d, want %d", i, ev.T, want)
		}
	}
}

func TestCapacityRounding(t *testing.T) {
	if got := New(nil, 5).Cap(); got != 8 {
		t.Errorf("New(5).Cap = %d, want 8", got)
	}
	if got := New(nil, 8).Cap(); got != 8 {
		t.Errorf("New(8).Cap = %d, want 8", got)
	}
	if got := New(nil, 0).Cap(); got != DefaultCapacity {
		t.Errorf("New(0).Cap = %d, want %d", got, DefaultCapacity)
	}
	if got := New(nil, -3).Cap(); got != DefaultCapacity {
		t.Errorf("New(-3).Cap = %d, want %d", got, DefaultCapacity)
	}
}

func TestReset(t *testing.T) {
	r := New(nil, 8)
	r.Record(KindSolveStart, 0, 0, 0, 0)
	r.Record(KindSolveEnd, 0, 0, 0, 0)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Events() != nil {
		t.Errorf("after Reset: Len=%d Total=%d Events=%v, want all empty", r.Len(), r.Total(), r.Events())
	}
	r.Record(KindSolveStart, 7, 0, 0, 0)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Seq != 0 || evs[0].Args[0] != 7 {
		t.Errorf("record after Reset = %+v, want fresh seq 0", evs)
	}
}

func TestArmedRecordZeroAlloc(t *testing.T) {
	r := New(new(obs.ManualClock), 64)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(KindCancelStep, 1, 2, 3, 4)
	})
	if allocs != 0 {
		t.Errorf("armed Record allocates %v/op, want 0", allocs)
	}
}

func TestCatalogueComplete(t *testing.T) {
	seenName := make(map[string]Kind, NumKinds)
	for k := Kind(0); k < NumKinds; k++ {
		info := k.Info()
		if info.Name == "" {
			t.Errorf("kind %d has no catalogue entry", k)
			continue
		}
		if info.Doc == "" {
			t.Errorf("kind %s has no doc", info.Name)
		}
		if prev, dup := seenName[info.Name]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, info.Name)
		}
		seenName[info.Name] = k
		if strings.ToLower(info.Name) != info.Name || strings.ContainsAny(info.Name, " _") {
			t.Errorf("kind name %q is not kebab-case", info.Name)
		}
		// Used arg slots must be contiguous from slot 0 so positional
		// Args and named JSONL args agree.
		sawEmpty := false
		for i, a := range info.Args {
			if a == "" {
				sawEmpty = true
			} else if sawEmpty {
				t.Errorf("kind %s: arg slot %d named after an empty slot", info.Name, i)
			}
		}
		back, ok := KindByName(info.Name)
		if !ok || back != k {
			t.Errorf("KindByName(%q) = %v,%v, want %v,true", info.Name, back, ok, k)
		}
	}
	if Kind(NumKinds).String() != "unknown" {
		t.Errorf("out-of-range String = %q, want unknown", Kind(NumKinds).String())
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Error("KindByName accepted an unknown name")
	}
	if got := len(Catalogue()); got != int(NumKinds) {
		t.Errorf("Catalogue len = %d, want %d", got, NumKinds)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	clock := new(obs.ManualClock)
	r := New(clock, 16)
	r.Record(KindSolveStart, 40, 118, 2, 57)
	clock.Advance(1500)
	r.Record(KindPhaseStart, int64(obs.PhasePhase1), 0, 0, 0)
	clock.Advance(300)
	r.Record(KindLambdaIter, 0, 3, 2, 91)
	r.Record(KindDualityGap, 0, 120, 100, 20)
	clock.Advance(100)
	r.Record(KindSolveEnd, 115, 50, 3, FlagExact)

	var buf bytes.Buffer
	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	if err := r.WriteJSONL(&buf, traceID); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}

	h, evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if h.Schema != Schema || h.Trace != traceID || h.Cap != 16 || h.Total != 5 || h.Dropped != 0 {
		t.Errorf("header = %+v", h)
	}
	want := r.Events()
	if len(evs) != len(want) {
		t.Fatalf("round-trip %d events, want %d", len(evs), len(want))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, evs[i], want[i])
		}
	}
}

func TestJSONLNamedArgs(t *testing.T) {
	r := New(nil, 8)
	r.Record(KindLambdaIter, 2, 7, 5, 333)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, ""); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want 2", len(lines))
	}
	for _, frag := range []string{`"kind":"lambda-iter"`, `"iter":2`, `"p":7`, `"q":5`, `"weight":333`} {
		if !strings.Contains(lines[1], frag) {
			t.Errorf("event line missing %s: %s", frag, lines[1])
		}
	}
	if strings.Contains(lines[0], "trace") {
		t.Errorf("empty trace ID should be omitted from header: %s", lines[0])
	}
}

func TestReadJSONLUnknownKindSkipped(t *testing.T) {
	dump := `{"schema":99,"cap":8,"total":2,"dropped":0}
{"seq":0,"t":0,"kind":"from-the-future","args":{"x":1}}
{"seq":1,"t":5,"kind":"fallback","args":{"reason":2}}
`
	h, evs, err := ReadJSONL(strings.NewReader(dump))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if h.Schema != 99 {
		t.Errorf("Schema = %d, want 99", h.Schema)
	}
	if len(evs) != 1 || evs[0].Kind != KindFallback || evs[0].Args[0] != FallbackCheaper {
		t.Errorf("events = %+v, want one fallback/cheaper", evs)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("empty input: want error")
	}
	if _, _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("bad header: want error")
	}
	bad := "{\"schema\":1,\"cap\":8,\"total\":1,\"dropped\":0}\n{broken\n"
	if _, _, err := ReadJSONL(strings.NewReader(bad)); err == nil {
		t.Error("bad event line: want error")
	}
}

func TestNilRecorderWriteJSONL(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, ""); err != nil {
		t.Fatalf("WriteJSONL on nil recorder: %v", err)
	}
	h, evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if h.Cap != 0 || h.Total != 0 || len(evs) != 0 {
		t.Errorf("nil dump header=%+v events=%d, want empty", h, len(evs))
	}
}
