package obs

import "time"

// This file is the single sanctioned wall-clock read outside cmd/: the
// krsplint `wallclock` analyzer exempts exactly internal/obs/realclock.go,
// so every other library package must take time through the Clock
// interface (DESIGN.md §9).

// procStart anchors RealClock readings to process start so Now fits an
// int64 of nanoseconds with maximal headroom and inherits the runtime's
// monotonic clock (immune to wall-clock steps).
var procStart = time.Now()

// RealClock reads the process monotonic clock. Inject it into obs.New at
// the cmd/ edge; never construct it inside deterministic packages.
type RealClock struct{}

// Now returns nanoseconds since process start, monotonic.
func (RealClock) Now() int64 { return time.Since(procStart).Nanoseconds() }
