package obs

import "sync/atomic"

// Clock supplies monotonic time in nanoseconds. The solver libraries never
// read the wall clock directly (krsplint `wallclock` invariant); they read
// whatever Clock the Registry was constructed with. Production injects
// RealClock at the cmd/ edge; tests inject ManualClock; `New(nil)` freezes
// time at zero.
type Clock interface {
	// Now returns a monotonic timestamp in nanoseconds. Only differences
	// between readings are meaningful.
	Now() int64
}

// ManualClock is a deterministic test clock advanced explicitly. The zero
// value reads 0 and is ready to use; it is safe for concurrent use.
type ManualClock struct {
	t atomic.Int64
}

// Now reads the current manual time.
func (c *ManualClock) Now() int64 { return c.t.Load() }

// Advance moves the clock forward by d nanoseconds.
func (c *ManualClock) Advance(d int64) { c.t.Add(d) }

// Set jumps the clock to t nanoseconds.
func (c *ManualClock) Set(t int64) { c.t.Store(t) }

// zeroClock is the frozen clock behind New(nil): spans record zero
// durations but still count, keeping unit tests deterministic without a
// ManualClock in hand.
type zeroClock struct{}

func (zeroClock) Now() int64 { return 0 }
