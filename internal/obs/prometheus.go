package obs

import (
	"io"
	"strconv"
)

// WritePrometheus emits every registered metric in Prometheus text
// exposition format 0.0.4. HELP/TYPE headers appear once per family (the
// catalogue registers each family's entries consecutively); histogram
// buckets are cumulative with `le` in exposition units (seconds for
// duration histograms). Nil-safe: a nil registry writes nothing.
//
// The whole exposition is rendered into one buffer and written with a
// single Write, so a scrape is a consistent point-in-time-ish snapshot
// modulo individual atomic loads.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	buf := make([]byte, 0, 1<<14)
	prev := ""
	for _, e := range r.entries {
		if e.family != prev {
			buf = append(buf, "# HELP "...)
			buf = append(buf, e.family...)
			buf = append(buf, ' ')
			buf = append(buf, e.help...)
			buf = append(buf, "\n# TYPE "...)
			buf = append(buf, e.family...)
			buf = append(buf, ' ')
			buf = append(buf, typeName(e.kind)...)
			buf = append(buf, '\n')
			prev = e.family
		}
		switch e.kind {
		case kindCounter:
			buf = appendSample(buf, e.family, "", e.labels, "")
			buf = strconv.AppendInt(buf, e.c.Value(), 10)
			buf = append(buf, '\n')
		case kindGauge:
			buf = appendSample(buf, e.family, "", e.labels, "")
			buf = strconv.AppendInt(buf, e.g.Value(), 10)
			buf = append(buf, '\n')
		case kindHistogram:
			cum := int64(0)
			for i, b := range e.h.bounds {
				cum += e.h.counts[i].Load() //lint:allow nilflow registration invariant: kindHistogram entries always carry h
				buf = appendSample(buf, e.family, "_bucket", e.labels, formatBound(b, e.scale))
				buf = strconv.AppendInt(buf, cum, 10)
				buf = append(buf, '\n')
			}
			buf = appendSample(buf, e.family, "_bucket", e.labels, "+Inf")
			buf = strconv.AppendInt(buf, e.h.Count(), 10)
			buf = append(buf, '\n')
			buf = appendSample(buf, e.family, "_sum", e.labels, "")
			if e.scale == 1 {
				buf = strconv.AppendInt(buf, e.h.Sum(), 10)
			} else {
				buf = strconv.AppendFloat(buf, float64(e.h.Sum())/e.scale, 'g', -1, 64)
			}
			buf = append(buf, '\n')
			buf = appendSample(buf, e.family, "_count", e.labels, "")
			buf = strconv.AppendInt(buf, e.h.Count(), 10)
			buf = append(buf, '\n')
		}
	}
	_, err := w.Write(buf)
	return err
}

// appendSample renders `family[suffix]{labels,le="bound"} ` (trailing
// space, value appended by the caller). Either labels or bound may be
// empty; braces are omitted when both are.
func appendSample(buf []byte, family, suffix, labels, le string) []byte {
	buf = append(buf, family...)
	buf = append(buf, suffix...)
	if labels != "" || le != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		if le != "" {
			if labels != "" {
				buf = append(buf, ',')
			}
			buf = append(buf, `le="`...)
			buf = append(buf, le...)
			buf = append(buf, '"')
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	return buf
}

func typeName(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}
