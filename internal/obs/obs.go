// Package obs is the solver's observability layer: a stdlib-only metrics
// registry (atomic counters, gauges, preallocated fixed-bucket histograms)
// plus a lightweight phase tracer driven by an injected Clock.
//
// Two contracts shape the package:
//
//   - Zero allocations on the record path. Counter.Inc, Gauge.Set,
//     Histogram.Observe and StartSpan/End never allocate; histograms
//     preallocate their buckets at registration time and record with a
//     linear scan plus atomic adds. The `make bench-guard` gate and the
//     alloc tests in this package keep that honest.
//   - The nil sink is a no-op. Every handle type (*Registry, *Counter,
//     *Gauge, *Histogram, the typed metric groups) tolerates a nil
//     receiver, so solver code records unconditionally and a solve with
//     core.Options.Metrics unset pays only dead nil checks.
//
// Time never comes from the wall clock inside deterministic packages: the
// Registry reads an injected Clock, with the single sanctioned real-clock
// shim living in realclock.go (enforced by the krsplint `wallclock`
// analyzer). Tests inject a ManualClock; `obs.New(nil)` yields a frozen
// zero clock, which keeps span recording deterministic (all durations 0)
// while still counting observations.
//
// DESIGN.md §9 documents the architecture and the metric name catalogue.
package obs

import (
	"sort"
	"strconv"
)

// kind discriminates registry entries for exposition.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric plus its exposition metadata.
type entry struct {
	family string // Prometheus metric family name
	help   string
	labels string // rendered const labels, e.g. `phase="phase1"`; "" for none
	kind   kind
	scale  float64 // exposition divisor (1e9 turns nanosecond sums into seconds)

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry owns a fixed set of metrics registered at construction time and
// exposes them in Prometheus text format and as an expvar-style snapshot.
// Registration (Counter/Gauge/Histogram and friends) allocates and is meant
// for startup; recording through the returned handles never does.
//
// The typed groups (Server, Solver, Flow, Bicameral, Shortest) are the
// solver's metric catalogue, eagerly registered by New so instrumentation
// sites hold direct pointers and never perform name lookups.
type Registry struct {
	clock   Clock
	entries []*entry

	// Server instruments cmd/krspd's HTTP surface.
	Server ServerMetrics
	// Solver instruments core.Solve / core.SolveScaled outcomes.
	Solver SolverMetrics
	// Flow instruments flow.MinCostKFlow.
	Flow FlowMetrics
	// Bicameral instruments the bicameral-cycle engines.
	Bicameral BicameralMetrics
	// Shortest instruments the SPFA kernels.
	Shortest ShortestMetrics
	// Cluster instruments krspd's sharded mode: cache, singleflight,
	// proxying, and peer health.
	Cluster ClusterMetrics

	phase [NumPhases]*Histogram
}

// New builds a registry with the full solver catalogue registered. A nil
// clock freezes time at zero: spans still count observations but record
// zero durations, which is the right default for deterministic tests. The
// cmd/ edge injects RealClock{}.
func New(clock Clock) *Registry {
	if clock == nil {
		clock = zeroClock{}
	}
	r := &Registry{clock: clock}
	r.registerCatalogue()
	return r
}

// Now reads the registry clock (monotonic nanoseconds). Nil-safe: a nil
// registry reads 0.
func (r *Registry) Now() int64 {
	if r == nil {
		return 0
	}
	return r.clock.Now()
}

// Counter registers and returns a new counter. Nil-safe: a nil registry
// returns a nil (no-op) handle.
func (r *Registry) Counter(family, help string) *Counter {
	return r.LabeledCounter(family, help, "")
}

// LabeledCounter is Counter with constant labels rendered into the
// exposition (e.g. `type="0"`). Labels are fixed at registration so the
// record path stays allocation-free.
func (r *Registry) LabeledCounter(family, help, labels string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.entries = append(r.entries, &entry{family: family, help: help, labels: labels, kind: kindCounter, scale: 1, c: c})
	return c
}

// Gauge registers and returns a new gauge. Nil-safe like Counter.
func (r *Registry) Gauge(family, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.entries = append(r.entries, &entry{family: family, help: help, kind: kindGauge, scale: 1, g: g})
	return g
}

// Histogram registers a fixed-bucket histogram over the given ascending
// upper bounds (an implicit +Inf bucket is appended). Nil-safe.
func (r *Registry) Histogram(family, help string, bounds []int64) *Histogram {
	return r.histogram(family, help, "", bounds, 1)
}

// DurationHistogram registers a histogram recording nanosecond durations,
// exposed in seconds with log-spaced latency buckets from 100µs to 30s.
func (r *Registry) DurationHistogram(family, help, labels string) *Histogram {
	return r.histogram(family, help, labels, durationBounds, 1e9)
}

func (r *Registry) histogram(family, help, labels string, bounds []int64, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(bounds)
	r.entries = append(r.entries, &entry{family: family, help: help, labels: labels, kind: kindHistogram, scale: scale, h: h})
	return h
}

// durationBounds are nanosecond bucket bounds: 100µs, 316µs, 1ms, …, 30s
// (half-decade log spacing), matching the solve-latency range from
// micro-instances to the pseudo-polynomial worst cases.
var durationBounds = []int64{
	100_000, 316_000,
	1_000_000, 3_160_000,
	10_000_000, 31_600_000,
	100_000_000, 316_000_000,
	1_000_000_000, 3_160_000_000,
	10_000_000_000, 30_000_000_000,
}

// countBounds are generic bucket bounds for per-solve event counts
// (λ-iterations, cancellations): powers of two up to 1024.
var countBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Snapshot returns an expvar-compatible view of every metric: counters and
// gauges as numbers, histograms as {count, sum, buckets} objects keyed by
// upper bound. Keys are "family" or "family{labels}". Nil-safe (empty map).
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	for _, e := range r.entries {
		key := e.family
		if e.labels != "" {
			key += "{" + e.labels + "}"
		}
		switch e.kind {
		case kindCounter:
			out[key] = e.c.Value()
		case kindGauge:
			out[key] = e.g.Value()
		case kindHistogram:
			buckets := map[string]int64{}
			cum := int64(0)
			for i, b := range e.h.bounds {
				cum += e.h.counts[i].Load() //lint:allow nilflow registration invariant: kindHistogram entries always carry h
				buckets[formatBound(b, e.scale)] = cum
			}
			buckets["+Inf"] = e.h.Count()
			out[key] = map[string]any{
				"count":   e.h.Count(),
				"sum":     float64(e.h.Sum()) / e.scale,
				"buckets": buckets,
			}
		}
	}
	return out
}

// Families returns the distinct metric family names in registration order
// (exposition order). Mostly for tests and docs tooling.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, e := range r.entries {
		if !seen[e.family] {
			seen[e.family] = true
			out = append(out, e.family)
		}
	}
	return out
}

// sortedSnapshotKeys is a test convenience: Snapshot keys in sorted order.
func (r *Registry) sortedSnapshotKeys() []string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatBound renders a bucket upper bound in exposition units.
func formatBound(b int64, scale float64) string {
	if scale == 1 {
		return strconv.FormatInt(b, 10)
	}
	return strconv.FormatFloat(float64(b)/scale, 'g', -1, 64)
}
