package obs

// This file is the solver's metric catalogue: the typed groups threaded
// through each layer and their eager registration. DESIGN.md §9 carries
// the prose version of this table.

// ServerMetrics instruments cmd/krspd's HTTP surface.
type ServerMetrics struct {
	// SolveRequests counts POST /solve requests accepted for solving.
	SolveRequests *Counter
	// FeasibleRequests counts POST /feasible requests.
	FeasibleRequests *Counter
	// RequestErrors counts requests answered with a 4xx/5xx status.
	RequestErrors *Counter
	// Inflight tracks concurrently executing solve/feasible requests.
	Inflight *Gauge
	// RequestDuration is the end-to-end request latency histogram.
	RequestDuration *Histogram
	// Shed counts requests rejected 429 by admission control (overload).
	Shed *Counter
	// PanicsRecovered counts handler panics converted to 500s by the
	// recover middleware.
	PanicsRecovered *Counter
}

// RecordPanic folds one recovered handler panic (answered as a 500) into
// the group. Nil-safe like every handle, so the HTTP layer records
// unconditionally even when the daemon runs without a registry.
func (m *ServerMetrics) RecordPanic() {
	if m == nil {
		return
	}
	m.PanicsRecovered.Inc()
	m.RequestErrors.Inc()
}

// RecordShed counts one request rejected 429 by admission control.
func (m *ServerMetrics) RecordShed() {
	if m == nil {
		return
	}
	m.Shed.Inc()
}

// RecordError counts one request answered with a 4xx/5xx status.
func (m *ServerMetrics) RecordError() {
	if m == nil {
		return
	}
	m.RequestErrors.Inc()
}

// ObserveRequest records one end-to-end request latency (nanoseconds).
func (m *ServerMetrics) ObserveRequest(ns int64) {
	if m == nil {
		return
	}
	m.RequestDuration.Observe(ns)
}

// RecordAccepted counts one accepted request on the named endpoint counter
// (feasible selects FeasibleRequests, otherwise SolveRequests).
func (m *ServerMetrics) RecordAccepted(feasible bool) {
	if m == nil {
		return
	}
	if feasible {
		m.FeasibleRequests.Inc()
	} else {
		m.SolveRequests.Inc()
	}
}

// AddInflight tracks request concurrency; call with +1 on entry and -1 on
// exit.
func (m *ServerMetrics) AddInflight(d int64) {
	if m == nil {
		return
	}
	m.Inflight.Add(d)
}

// SolverMetrics instruments core.Solve / core.SolveScaled outcomes. The
// per-solve counters are recorded post-hoc from the returned core.Stats so
// the cancellation loop itself gains no record calls.
type SolverMetrics struct {
	// Solves counts completed Solve/SolveScaled calls (success or error).
	Solves *Counter
	// Errors counts solves that returned an error (incl. ErrNoKPaths).
	Errors *Counter
	// Exact counts solves whose certificate proves exact optimality.
	Exact *Counter
	// Cancellations counts Algorithm 1 cycle cancellations applied.
	Cancellations *Counter
	// Cycles counts cancellations by bicameral cycle type (Definition 10).
	Cycles [3]*Counter
	// CRefEscalations counts C_ref cost-cap escalations.
	CRefEscalations *Counter
	// RelaxedCap counts solves that needed the relaxed cost cap.
	RelaxedCap *Counter
	// Phase1Fallbacks counts solves that fell back to the Phase-1 answer.
	Phase1Fallbacks *Counter
	// BudgetEscalations accumulates Stats.BudgetsTried across solves.
	BudgetEscalations *Counter
	// LambdaIterations is the per-solve Phase-1 λ-iteration histogram.
	LambdaIterations *Histogram
	// CancellationsPerSolve is the per-solve cancellation-count histogram.
	CancellationsPerSolve *Histogram
	// CycleCancelIters is the per-solve phase-2 loop-iteration histogram:
	// applied cancellations PLUS the no-cycle C_ref escalation rounds, the
	// full iteration count of the loop that dominates solve time at scale
	// (ROADMAP item 3). CancellationsPerSolve counts only the applied subset.
	CycleCancelIters *Histogram
	// Degraded counts solves cut short by a deadline that returned the best
	// feasible intermediate solution (Stats.Degraded).
	Degraded *Counter
	// ResidualRebuilds accumulates Stats.ResidualRebuilds: full residual
	// rebuilds healing a failed incremental update.
	ResidualRebuilds *Counter
}

// FlowMetrics instruments flow.MinCostKFlow.
type FlowMetrics struct {
	// Calls counts MinCostKFlow invocations.
	Calls *Counter
	// Augmentations counts successive-shortest-path augmentation rounds.
	Augmentations *Counter
	// Relaxations counts improving edge relaxations in the SSP Dijkstra.
	Relaxations *Counter
	// Infeasible counts calls that found fewer than k units of flow.
	Infeasible *Counter
}

// BicameralMetrics instruments the bicameral-cycle search engines.
type BicameralMetrics struct {
	// Finds counts bicameral.Find invocations.
	Finds *Counter
	// Searches counts negative-cycle searches across all budgets.
	Searches *Counter
	// Candidates counts qualifying candidate cycles inspected.
	Candidates *Counter
	// BudgetEscalations counts layered-search budget ladder steps tried.
	BudgetEscalations *Counter
	// NotFound counts Find calls that exhausted every engine.
	NotFound *Counter
	// SeedSweeps counts parallel seed sweeps launched.
	SeedSweeps *Counter
	// SweepWorkers records the worker count used per parallel sweep.
	SweepWorkers *Histogram
}

// ShortestMetrics instruments the SPFA kernels feeding the bicameral
// search. Recorded once per kernel run from locally accumulated counts,
// so the relaxation loop carries no atomics.
type ShortestMetrics struct {
	// Runs counts SPFA kernel invocations.
	Runs *Counter
	// Relaxations counts improving relaxations across all runs.
	Relaxations *Counter
	// NegCycles counts runs that found a negative cycle.
	NegCycles *Counter
}

// RecordRun folds one SPFA kernel run into the group. Nil-safe so
// shortest.Workspace can call it unconditionally.
func (m *ShortestMetrics) RecordRun(relaxations int64, negCycle bool) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	m.Relaxations.Add(relaxations)
	if negCycle {
		m.NegCycles.Inc()
	}
}

// ClusterMetrics instruments krspd's sharded mode (DESIGN.md §14): the
// fingerprint cache, singleflight collapsing, peer proxying with
// retry/hedging, and the circuit breaker's eject/readmit transitions.
type ClusterMetrics struct {
	// CacheHits counts solves answered from a fresh cache entry.
	CacheHits *Counter
	// CacheMisses counts solve fingerprints not found fresh in the cache.
	CacheMisses *Counter
	// StaleServed counts deadline-pressure responses served from a stale
	// cache entry instead of a 503.
	StaleServed *Counter
	// SingleflightCollapsed counts solves collapsed onto an identical
	// in-flight solve's result.
	SingleflightCollapsed *Counter
	// ProxyRequests counts solves proxied to the owning peer.
	ProxyRequests *Counter
	// ProxyRetries counts proxy attempts repeated after a retryable failure.
	ProxyRetries *Counter
	// ProxyHedged counts hedged second attempts launched on slow proxies.
	ProxyHedged *Counter
	// PeerEjected counts circuit-breaker peer ejections.
	PeerEjected *Counter
	// PeerReadmitted counts ejected peers readmitted by a successful probe.
	PeerReadmitted *Counter
	// DegradedRoute counts solves computed locally because the owning peer
	// was unreachable.
	DegradedRoute *Counter
}

// RecordCacheLookup folds one cache lookup: a fresh hit or a miss. Stale
// hits count as misses here (the solve still runs); serving a stale entry
// is recorded separately via RecordStaleServed.
func (m *ClusterMetrics) RecordCacheLookup(fresh bool) {
	if m == nil {
		return
	}
	if fresh {
		m.CacheHits.Inc()
	} else {
		m.CacheMisses.Inc()
	}
}

// RecordStaleServed counts one stale cache entry served under deadline
// pressure in place of a 503.
func (m *ClusterMetrics) RecordStaleServed() {
	if m == nil {
		return
	}
	m.StaleServed.Inc()
}

// RecordCollapsed counts one solve collapsed onto an in-flight duplicate.
func (m *ClusterMetrics) RecordCollapsed() {
	if m == nil {
		return
	}
	m.SingleflightCollapsed.Inc()
}

// RecordProxy counts one proxied solve and the retries it needed beyond
// the first attempt.
func (m *ClusterMetrics) RecordProxy(retries int64) {
	if m == nil {
		return
	}
	m.ProxyRequests.Inc()
	if retries > 0 {
		m.ProxyRetries.Add(retries)
	}
}

// RecordHedged counts one hedged second attempt launched.
func (m *ClusterMetrics) RecordHedged() {
	if m == nil {
		return
	}
	m.ProxyHedged.Inc()
}

// RecordEjected counts one circuit-breaker peer ejection.
func (m *ClusterMetrics) RecordEjected() {
	if m == nil {
		return
	}
	m.PeerEjected.Inc()
}

// RecordReadmitted counts one peer readmission after a successful probe.
func (m *ClusterMetrics) RecordReadmitted() {
	if m == nil {
		return
	}
	m.PeerReadmitted.Inc()
}

// RecordDegradedRoute counts one local solve forced by an unreachable
// owner.
func (m *ClusterMetrics) RecordDegradedRoute() {
	if m == nil {
		return
	}
	m.DegradedRoute.Inc()
}

// ServerMetrics returns the HTTP metric group; nil on a nil registry.
func (r *Registry) ServerMetrics() *ServerMetrics {
	if r == nil {
		return nil
	}
	return &r.Server
}

// SolverMetrics returns the solver metric group; nil on a nil registry.
func (r *Registry) SolverMetrics() *SolverMetrics {
	if r == nil {
		return nil
	}
	return &r.Solver
}

// FlowMetrics returns the min-cost-flow metric group; nil on a nil
// registry (flow.MinCostKFlowMetered treats nil as "don't record").
func (r *Registry) FlowMetrics() *FlowMetrics {
	if r == nil {
		return nil
	}
	return &r.Flow
}

// BicameralMetrics returns the bicameral metric group; nil on a nil
// registry.
func (r *Registry) BicameralMetrics() *BicameralMetrics {
	if r == nil {
		return nil
	}
	return &r.Bicameral
}

// ClusterMetrics returns the sharded-mode metric group; nil on a nil
// registry.
func (r *Registry) ClusterMetrics() *ClusterMetrics {
	if r == nil {
		return nil
	}
	return &r.Cluster
}

// ShortestMetrics returns the SPFA metric group; nil on a nil registry.
func (r *Registry) ShortestMetrics() *ShortestMetrics {
	if r == nil {
		return nil
	}
	return &r.Shortest
}

// registerCatalogue eagerly registers every solver metric. Entries of one
// family are registered consecutively so exposition emits HELP/TYPE
// headers exactly once per family.
func (r *Registry) registerCatalogue() {
	if r == nil {
		return
	}
	// cmd/krspd HTTP surface.
	r.Server.SolveRequests = r.Counter("krspd_solve_requests_total",
		"POST /solve requests accepted for solving.")
	r.Server.FeasibleRequests = r.Counter("krspd_feasible_requests_total",
		"POST /feasible requests accepted.")
	r.Server.RequestErrors = r.Counter("krspd_request_errors_total",
		"Requests answered with a 4xx/5xx status.")
	r.Server.Inflight = r.Gauge("krspd_inflight_requests",
		"Solve/feasible requests currently executing.")
	r.Server.RequestDuration = r.DurationHistogram("krspd_request_duration_seconds",
		"End-to-end request latency.", "")
	r.Server.Shed = r.Counter("krspd_shed_total",
		"Requests rejected 429 by admission control.")
	r.Server.PanicsRecovered = r.Counter("krspd_panic_recovered_total",
		"Handler panics converted to 500s by the recover middleware.")

	// core solve outcomes.
	r.Solver.Solves = r.Counter("krsp_solves_total",
		"Completed Solve/SolveScaled calls, success or error.")
	r.Solver.Errors = r.Counter("krsp_solve_errors_total",
		"Solves that returned an error (incl. no-k-paths).")
	r.Solver.Exact = r.Counter("krsp_solves_exact_total",
		"Solves whose certificate proves exact optimality.")
	r.Solver.Cancellations = r.Counter("krsp_cancellations_total",
		"Algorithm 1 cycle cancellations applied.")
	for i := range r.Solver.Cycles {
		r.Solver.Cycles[i] = r.LabeledCounter("krsp_cycles_total",
			"Cancellations by bicameral cycle type (Definition 10).",
			cycleTypeLabels[i])
	}
	r.Solver.CRefEscalations = r.Counter("krsp_cref_escalations_total",
		"C_ref cost-cap escalations during cancellation.")
	r.Solver.RelaxedCap = r.Counter("krsp_relaxed_cap_total",
		"Solves that needed the relaxed cost cap.")
	r.Solver.Phase1Fallbacks = r.Counter("krsp_phase1_fallbacks_total",
		"Solves that fell back to the Phase-1 answer.")
	r.Solver.BudgetEscalations = r.Counter("krsp_budget_escalations_total",
		"Bicameral budget escalations accumulated across solves.")
	r.Solver.LambdaIterations = r.Histogram("krsp_phase1_lambda_iterations",
		"Phase-1 Lagrangian iterations per solve.", countBounds)
	r.Solver.CancellationsPerSolve = r.Histogram("krsp_cancellations_per_solve",
		"Cycle cancellations per solve.", countBounds)
	r.Solver.CycleCancelIters = r.Histogram("krsp_cycle_cancel_iters",
		"Phase-2 cancellation loop iterations per solve (applied cancellations plus no-cycle escalation rounds).",
		countBounds)
	r.Solver.Degraded = r.Counter("krsp_solve_degraded_total",
		"Solves cut short by a deadline, answered with the best feasible intermediate.")
	r.Solver.ResidualRebuilds = r.Counter("krsp_residual_rebuilds_total",
		"Full residual rebuilds healing a failed incremental update.")
	for p := Phase(0); p < NumPhases; p++ {
		r.phase[p] = r.DurationHistogram("krsp_solve_phase_duration_seconds",
			"Solve pipeline phase duration.", `phase="`+p.String()+`"`)
	}

	// flow.MinCostKFlow.
	r.Flow.Calls = r.Counter("krsp_flow_mincost_calls_total",
		"MinCostKFlow invocations.")
	r.Flow.Augmentations = r.Counter("krsp_flow_augmentations_total",
		"Successive-shortest-path augmentation rounds.")
	r.Flow.Relaxations = r.Counter("krsp_flow_relaxations_total",
		"Improving edge relaxations in the SSP Dijkstra.")
	r.Flow.Infeasible = r.Counter("krsp_flow_infeasible_total",
		"MinCostKFlow calls that found fewer than k flow units.")

	// bicameral search.
	r.Bicameral.Finds = r.Counter("krsp_bicameral_finds_total",
		"bicameral.Find invocations.")
	r.Bicameral.Searches = r.Counter("krsp_bicameral_searches_total",
		"Negative-cycle searches across all budgets.")
	r.Bicameral.Candidates = r.Counter("krsp_bicameral_candidates_total",
		"Qualifying candidate cycles inspected.")
	r.Bicameral.BudgetEscalations = r.Counter("krsp_bicameral_budgets_total",
		"Layered-search budget ladder steps tried.")
	r.Bicameral.NotFound = r.Counter("krsp_bicameral_not_found_total",
		"Find calls that exhausted every engine without a cycle.")
	r.Bicameral.SeedSweeps = r.Counter("krsp_bicameral_parallel_sweeps_total",
		"Parallel seed sweeps launched.")
	r.Bicameral.SweepWorkers = r.Histogram("krsp_bicameral_sweep_workers",
		"Worker count used per parallel sweep.",
		[]int64{1, 2, 4, 8, 16, 32, 64})

	// krspd sharded mode.
	r.Cluster.CacheHits = r.Counter("krsp_cache_hits_total",
		"Solves answered from a fresh cache entry.")
	r.Cluster.CacheMisses = r.Counter("krsp_cache_misses_total",
		"Solve fingerprints not found fresh in the cache.")
	r.Cluster.StaleServed = r.Counter("krsp_cache_stale_served_total",
		"Stale cache entries served under deadline pressure instead of a 503.")
	r.Cluster.SingleflightCollapsed = r.Counter("krsp_singleflight_collapsed_total",
		"Solves collapsed onto an identical in-flight solve's result.")
	r.Cluster.ProxyRequests = r.Counter("krsp_proxy_requests_total",
		"Solves proxied to the owning peer.")
	r.Cluster.ProxyRetries = r.Counter("krsp_proxy_retries_total",
		"Proxy attempts repeated after a retryable failure.")
	r.Cluster.ProxyHedged = r.Counter("krsp_proxy_hedged_total",
		"Hedged second attempts launched on slow proxies.")
	r.Cluster.PeerEjected = r.Counter("krsp_peer_ejected_total",
		"Circuit-breaker peer ejections.")
	r.Cluster.PeerReadmitted = r.Counter("krsp_peer_readmitted_total",
		"Ejected peers readmitted by a successful probe.")
	r.Cluster.DegradedRoute = r.Counter("krsp_degraded_route_total",
		"Solves computed locally because the owning peer was unreachable.")

	// shortest SPFA kernels.
	r.Shortest.Runs = r.Counter("krsp_spfa_runs_total",
		"SPFA kernel invocations.")
	r.Shortest.Relaxations = r.Counter("krsp_spfa_relaxations_total",
		"Improving relaxations across all SPFA runs.")
	r.Shortest.NegCycles = r.Counter("krsp_spfa_negative_cycles_total",
		"SPFA runs that found a negative cycle.")
}

// cycleTypeLabels pre-renders the const labels for krsp_cycles_total so
// registration stays a pure table.
var cycleTypeLabels = [3]string{`type="0"`, `type="1"`, `type="2"`}
