package obs

// Phase identifies one stage of the solve pipeline for duration tracing.
// Each phase owns a duration histogram in the registry
// (krsp_solve_phase_duration_seconds{phase="..."}).
type Phase int

const (
	// PhasePhase1 covers the Lagrangian lower-bound search (core.Phase1).
	PhasePhase1 Phase = iota
	// PhaseCancel covers Algorithm 1's cycle-cancellation loop.
	PhaseCancel
	// PhaseDecompose covers flow decomposition into the k result paths.
	PhaseDecompose
	// PhaseScale covers Theorem 4's scaling wrapper around the core solve.
	PhaseScale
	// PhaseTotal covers a whole Solve/SolveScaled call end to end.
	PhaseTotal
	// NumPhases sizes per-phase arrays.
	NumPhases
)

// String returns the phase label used in metric exposition.
func (p Phase) String() string {
	switch p {
	case PhasePhase1:
		return "phase1"
	case PhaseCancel:
		return "cancel"
	case PhaseDecompose:
		return "decompose"
	case PhaseScale:
		return "scale"
	case PhaseTotal:
		return "total"
	default:
		return "unknown"
	}
}

// Span is an in-flight phase measurement. It is a small value type — no
// heap allocation — created by StartSpan and closed by End, which observes
// the elapsed clock time into the phase's duration histogram. The zero
// Span (and any Span from a nil Registry) is inert: End is a no-op.
type Span struct {
	r     *Registry
	phase Phase
	start int64
}

// StartSpan opens a span for phase p at the current clock reading.
// Nil-safe: a nil registry returns an inert span.
func (r *Registry) StartSpan(p Phase) Span {
	if r == nil || p < 0 || p >= NumPhases {
		return Span{}
	}
	return Span{r: r, phase: p, start: r.clock.Now()}
}

// End closes the span, observing the elapsed nanoseconds into the phase
// histogram. Calling End on an inert span does nothing.
func (s Span) End() {
	if s.r == nil {
		return
	}
	s.r.phase[s.phase].Observe(s.r.clock.Now() - s.start)
}

// PhaseHistogram returns the duration histogram for p (for tests and
// exposition checks). Nil-safe.
func (r *Registry) PhaseHistogram(p Phase) *Histogram {
	if r == nil || p < 0 || p >= NumPhases {
		return nil
	}
	return r.phase[p]
}
