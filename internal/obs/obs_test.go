package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New(nil)
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 150, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 1, 1, 1} // ≤10: {5,10}; ≤100: {11}; ≤1000: {150}; +Inf: {5000}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 || h.Sum() != 5176 {
		t.Fatalf("count/sum = %d/%d, want 5/5176", h.Count(), h.Sum())
	}
}

func TestSpanWithManualClock(t *testing.T) {
	clk := &ManualClock{}
	r := New(clk)
	clk.Set(1_000_000)
	s := r.StartSpan(PhaseCancel)
	clk.Advance(250_000_000) // 250ms
	s.End()
	h := r.PhaseHistogram(PhaseCancel)
	if h.Count() != 1 || h.Sum() != 250_000_000 {
		t.Fatalf("phase hist count/sum = %d/%d, want 1/250000000", h.Count(), h.Sum())
	}
	// 250ms lands in the ≤316ms bucket; the exposition must show it
	// cumulatively from there up.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `krsp_solve_phase_duration_seconds_bucket{phase="cancel",le="0.316"} 1`) {
		t.Fatalf("missing cumulative bucket line in:\n%s", out)
	}
	if !strings.Contains(out, `krsp_solve_phase_duration_seconds_sum{phase="cancel"} 0.25`) {
		t.Fatalf("missing sum line in:\n%s", out)
	}
}

func TestZeroClockSpansStillCount(t *testing.T) {
	r := New(nil)
	s := r.StartSpan(PhaseTotal)
	s.End()
	if got := r.PhaseHistogram(PhaseTotal).Count(); got != 1 {
		t.Fatalf("total phase count = %d, want 1", got)
	}
	if got := r.PhaseHistogram(PhaseTotal).Sum(); got != 0 {
		t.Fatalf("total phase sum = %d, want 0 under the zero clock", got)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if r.Now() != 0 {
		t.Fatal("nil registry Now should read 0")
	}
	r.Counter("x", "h").Inc()
	r.Gauge("x", "h").Set(3)
	r.Histogram("x", "h", []int64{1}).Observe(2)
	r.StartSpan(PhaseCancel).End()
	r.ShortestMetrics().RecordRun(10, true)
	r.SolverMetrics()
	r.FlowMetrics()
	r.BicameralMetrics()
	r.ServerMetrics()
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
	if r.PhaseHistogram(PhaseTotal) != nil {
		t.Fatal("nil registry phase histogram should be nil")
	}
}

func TestExpositionFormat(t *testing.T) {
	r := New(nil)
	r.Solver.Cycles[0].Add(3)
	r.Solver.Cycles[2].Inc()
	r.Server.Inflight.Set(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP krsp_cycles_total ",
		"# TYPE krsp_cycles_total counter",
		`krsp_cycles_total{type="0"} 3`,
		`krsp_cycles_total{type="1"} 0`,
		`krsp_cycles_total{type="2"} 1`,
		"# TYPE krspd_inflight_requests gauge",
		"krspd_inflight_requests 2",
		"# TYPE krsp_solve_phase_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// HELP/TYPE headers must appear exactly once per family even though
	// krsp_cycles_total has three labeled entries.
	if n := strings.Count(out, "# TYPE krsp_cycles_total counter"); n != 1 {
		t.Errorf("TYPE header for krsp_cycles_total appears %d times, want 1", n)
	}
	// Every line must be a header or `name[{labels}] value`.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := New(nil)
	r.Solver.Solves.Add(2)
	r.Solver.LambdaIterations.Observe(3)
	snap := r.Snapshot()
	if got := snap["krsp_solves_total"]; got != int64(2) {
		t.Fatalf("snapshot solves = %v, want 2", got)
	}
	hist, ok := snap["krsp_phase1_lambda_iterations"].(map[string]any)
	if !ok {
		t.Fatalf("lambda iterations snapshot is %T, want map", snap["krsp_phase1_lambda_iterations"])
	}
	if hist["count"] != int64(1) {
		t.Fatalf("hist count = %v, want 1", hist["count"])
	}
	if hist["buckets"].(map[string]int64)["4"] != 1 {
		t.Fatalf("cumulative ≤4 bucket = %v, want 1", hist["buckets"])
	}
	keys := r.sortedSnapshotKeys()
	if len(keys) != len(snap) {
		t.Fatalf("sortedSnapshotKeys len %d != snapshot len %d", len(keys), len(snap))
	}
}

func TestFamiliesDistinctAndOrdered(t *testing.T) {
	r := New(nil)
	fams := r.Families()
	seen := map[string]bool{}
	for _, f := range fams {
		if seen[f] {
			t.Fatalf("family %s repeated", f)
		}
		seen[f] = true
	}
	if fams[0] != "krspd_solve_requests_total" {
		t.Fatalf("first family = %s; catalogue order changed?", fams[0])
	}
}

// The zero-alloc contract: recording must not allocate, with a live
// registry or a nil one. bench-guard enforces the same end to end.
func TestRecordPathAllocs(t *testing.T) {
	clk := &ManualClock{}
	r := New(clk)
	checks := []struct {
		name string
		f    func()
	}{
		{"counter-inc", func() { r.Solver.Solves.Inc() }},
		{"counter-add", func() { r.Flow.Relaxations.Add(17) }},
		{"gauge", func() { r.Server.Inflight.Add(1) }},
		{"histogram", func() { r.Solver.LambdaIterations.Observe(9) }},
		{"span", func() { s := r.StartSpan(PhaseCancel); clk.Advance(5); s.End() }},
		{"record-run", func() { r.ShortestMetrics().RecordRun(40, false) }},
	}
	var nilReg *Registry
	checks = append(checks, struct {
		name string
		f    func()
	}{"nil-span", func() { nilReg.StartSpan(PhaseTotal).End() }})
	for _, c := range checks {
		if n := testing.AllocsPerRun(200, c.f); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", c.name, n)
		}
	}
}
