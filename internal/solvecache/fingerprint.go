// Package solvecache keys solved kRSP instances by a canonical fingerprint
// and serves repeated solves from an LRU cache, collapsing identical
// in-flight solves through a singleflight group. It is the memory layer of
// krspd's cluster mode (DESIGN.md §14): the fingerprint decides which node
// owns an instance, the cache turns re-solves of hot instances into sub-ms
// lookups, and the singleflight group sheds redundant work under request
// storms — a cache hit or a collapsed waiter is one less multi-second solve
// competing for the admission semaphore.
//
// Package contracts:
//
//   - Fingerprints are canonical: byte-identical across edge insertion
//     orders, graph clones, and FlipEdge round-trips. Two requests carrying
//     the same instance always land on the same owner and the same cache
//     line, whichever node or byte order produced them.
//   - The fingerprint + lookup path is allocation-free, and Put reuses
//     evicted entries through a freelist, so in steady state the cache
//     layer adds zero allocations per solve (bench-guarded by
//     BenchmarkSolveN60K3CacheMiss).
//   - Time never comes from the wall clock: callers pass monotonic
//     nanosecond readings (krspd reads its obs.Registry clock), which keeps
//     TTL/staleness decisions deterministic in tests.
package solvecache

import (
	"math"

	"repro/internal/graph"
)

// FP is a 128-bit canonical instance fingerprint. The zero value never
// collides with a real fingerprint in practice and is safe as a map key.
type FP struct {
	Hi, Lo uint64
}

// Key64 folds the fingerprint to the 64-bit key the cluster ring hashes.
func (f FP) Key64() uint64 { return mix64(f.Hi ^ rotl(f.Lo, 32)) }

// String renders the fingerprint as 32 lowercase hex digits.
func (f FP) String() string {
	var b [32]byte
	const hexdigits = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		b[15-i] = hexdigits[(f.Hi>>(4*i))&0xf]
		b[31-i] = hexdigits[(f.Lo>>(4*i))&0xf]
	}
	return string(b[:])
}

// Fingerprint computes the canonical fingerprint of a solve request: the
// instance (graph shape, s, t, k, D) plus the algorithm variant and its ε.
// The per-edge hashes are combined by summation, so the result is
// independent of edge insertion order; FlipEdge round-trips restore every
// edge tuple exactly and therefore the fingerprint too. The instance Name
// is a display label and deliberately excluded. Pass variant "" / eps 0 for
// the default exact solve; distinct variants (phase1, scaled) hash apart so
// a cached phase-1 answer can never satisfy a full solve.
//
//krsp:noalloc
func Fingerprint(ins graph.Instance, variant string, eps float64) FP {
	// Order-independent multiset hash of the edge tuples: two accumulators
	// with decorrelated per-edge mixes give 128 bits against collision and
	// defeat the cancellation weakness of a single XOR/sum.
	var sum1, sum2 uint64
	for _, e := range ins.G.EdgesView() {
		x := mix64(uint64(uint32(e.From)) ^ seedEdge)
		x = mix64(x ^ uint64(uint32(e.To)))
		x = mix64(x ^ uint64(e.Cost))
		x = mix64(x ^ uint64(e.Delay))
		sum1 += x
		sum2 += mix64(x ^ seedTwin)
	}
	var vh uint64 = seedVariant
	for i := 0; i < len(variant); i++ {
		vh = mix64(vh ^ uint64(variant[i]))
	}
	header := [8]uint64{
		uint64(ins.G.NumNodes()),
		uint64(ins.G.NumEdges()),
		uint64(uint32(ins.S)),
		uint64(uint32(ins.T)),
		uint64(ins.K),
		uint64(ins.Bound),
		math.Float64bits(eps),
		vh,
	}
	hi, lo := sum1^seedHi, sum2^seedLo
	for _, w := range header {
		hi = mix64(hi ^ w)
		lo = mix64(lo ^ rotl(w, 17))
	}
	return FP{Hi: mix64(hi ^ sum2), Lo: mix64(lo ^ sum1)}
}

// Hash seeds: arbitrary odd constants, fixed forever — fingerprints are
// pinned by golden tests and must stay stable across releases.
const (
	seedEdge    = 0x9e3779b97f4a7c15
	seedTwin    = 0xc2b2ae3d27d4eb4f
	seedVariant = 0x165667b19e3779f9
	seedHi      = 0x27d4eb2f165667c5
	seedLo      = 0x85ebca77c2b2ae63
)

// mix64 is the splitmix64 finalizer: a fast, well-dispersed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }
