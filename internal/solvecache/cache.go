package solvecache

import (
	"errors"
	"sync"
)

// State classifies a cache lookup.
type State int

const (
	// Miss: no entry for the fingerprint.
	Miss State = iota
	// Fresh: an entry exists and is within its TTL.
	Fresh
	// Stale: an entry exists but its TTL has lapsed. Stale entries are NOT
	// evicted on read — krspd's graceful-degradation path serves them
	// (flagged "stale": true) when a fresh solve cannot fit the deadline.
	Stale
)

func (s State) String() string {
	switch s {
	case Fresh:
		return "hit"
	case Stale:
		return "stale"
	}
	return "miss"
}

// Cache is a fingerprint-keyed LRU of solved results with TTL-based
// staleness. The nil *Cache is a disabled cache: Get always misses and Put
// is a no-op, so callers wire it unconditionally. All methods are safe for
// concurrent use.
//
// Evicted and removed entries return to a freelist and are reused by the
// next Put, so a full cache serves arbitrary churn with zero steady-state
// allocations on the solve path.
type Cache[V any] struct {
	mu sync.Mutex
	//krsp:guardedby(mu)
	cap int
	//krsp:guardedby(mu)
	ttl int64 // ns; ≤ 0 means entries never go stale
	//krsp:guardedby(mu)
	entries map[FP]*entry[V]
	// Doubly-linked LRU list threaded through the entries; head is the most
	// recently used. The list is circular through a fixed sentinel root so
	// insertion and removal are branch-free.
	//krsp:guardedby(mu)
	root entry[V]
	//krsp:guardedby(mu)
	free *entry[V]
}

type entry[V any] struct {
	fp         FP
	v          V
	stored     int64
	prev, next *entry[V]
}

// NewCache builds an LRU solution cache holding up to capacity entries;
// entries older than ttlNs nanoseconds are reported Stale (ttlNs ≤ 0
// disables staleness). A capacity ≤ 0 returns nil — the disabled cache.
func NewCache[V any](capacity int, ttlNs int64) *Cache[V] {
	if capacity <= 0 {
		return nil
	}
	c := &Cache[V]{cap: capacity, ttl: ttlNs, entries: make(map[FP]*entry[V], capacity)}
	c.root.prev, c.root.next = &c.root, &c.root
	return c
}

// Get looks up fp at monotonic time now, promoting a found entry to most
// recently used. The value is returned for both Fresh and Stale states;
// the caller decides whether a stale answer is acceptable.
func (c *Cache[V]) Get(fp FP, now int64) (V, State) {
	if c == nil {
		var zero V
		return zero, Miss
	}
	c.mu.Lock()
	e, ok := c.entries[fp]
	if !ok {
		c.mu.Unlock()
		var zero V
		return zero, Miss
	}
	c.unlink(e)
	c.pushFront(e)
	// Staleness is decided under the lock: c.ttl is guarded state, and
	// reading it after Unlock would race a concurrent reconfiguration.
	v, stale := e.v, c.ttl > 0 && now-e.stored > c.ttl
	c.mu.Unlock()
	if stale {
		return v, Stale
	}
	return v, Fresh
}

// Put stores v under fp with storage time now, evicting the least recently
// used entry when full. An existing entry is overwritten in place (and its
// freshness clock restarted).
func (c *Cache[V]) Put(fp FP, v V, now int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[fp]; ok {
		e.v, e.stored = v, now
		c.unlink(e)
		c.pushFront(e)
		c.mu.Unlock()
		return
	}
	var e *entry[V]
	if len(c.entries) >= c.cap {
		e = c.root.prev // LRU victim
		c.unlink(e)
		delete(c.entries, e.fp)
	} else if c.free != nil {
		e = c.free
		c.free = e.next
	} else {
		e = new(entry[V])
	}
	e.fp, e.v, e.stored = fp, v, now
	c.entries[fp] = e
	c.pushFront(e)
	c.mu.Unlock()
}

// Remove deletes the entry for fp, recycling it onto the freelist.
func (c *Cache[V]) Remove(fp FP) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[fp]; ok {
		c.unlink(e)
		delete(c.entries, fp)
		var zero V
		e.v = zero // drop the reference for the GC
		e.next, c.free = c.free, e
	}
	c.mu.Unlock()
}

// Len reports the number of cached entries (fresh and stale).
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// unlink detaches e from the LRU list.
//
//krsp:locked(mu)
func (c *Cache[V]) unlink(e *entry[V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// pushFront inserts e at the most-recently-used head.
//
//krsp:locked(mu)
func (c *Cache[V]) pushFront(e *entry[V]) {
	e.prev, e.next = &c.root, c.root.next
	c.root.next.prev = e
	c.root.next = e
}

// ErrLeaderFailed is delivered to singleflight waiters whose leader died
// without producing a result (a panicking solve unwound through Do). The
// waiters' requests fail cleanly instead of hanging or re-panicking.
var ErrLeaderFailed = errors.New("solvecache: singleflight leader failed without a result")

// Group collapses concurrent solves of the same fingerprint: the first
// caller (the leader) runs fn, every concurrent duplicate blocks and
// receives the leader's result. The nil *Group is a disabled group that
// just runs fn. Collapsed waiters double as overload shedding — each one is
// a solve that never entered the solver.
type Group[V any] struct {
	mu sync.Mutex
	//krsp:guardedby(mu)
	m map[FP]*flightCall[V]
}

type flightCall[V any] struct {
	wg  sync.WaitGroup
	v   V
	err error
}

// NewGroup builds a singleflight group.
func NewGroup[V any]() *Group[V] { return &Group[V]{m: make(map[FP]*flightCall[V])} }

// Do runs fn under fp, collapsing concurrent duplicates. collapsed reports
// whether this call waited on another in-flight solve instead of running
// fn itself. If the leader panics, the panic propagates to the leader's
// caller (krspd's recover middleware) and waiters receive ErrLeaderFailed.
func (g *Group[V]) Do(fp FP, fn func() (V, error)) (v V, err error, collapsed bool) {
	if g == nil {
		v, err = fn()
		return v, err, false
	}
	g.mu.Lock()
	if c, ok := g.m[fp]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.v, c.err, true
	}
	c := &flightCall[V]{}
	c.wg.Add(1)
	g.m[fp] = c
	g.mu.Unlock()

	done := false
	defer func() {
		if !done {
			c.err = ErrLeaderFailed
		}
		g.mu.Lock()
		delete(g.m, fp)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.v, c.err = fn()
	done = true
	return c.v, c.err, false
}
