package solvecache

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// fpInstance builds a small instance with a controllable edge insertion
// order: perm[i] gives the position in the canonical edge list of the i-th
// edge inserted.
func fpInstance(t *testing.T, perm []int) graph.Instance {
	t.Helper()
	edges := [][4]int64{
		{0, 1, 1, 10},
		{1, 3, 1, 10},
		{0, 2, 5, 1},
		{2, 3, 5, 1},
		{0, 3, 3, 5},
		{0, 3, 3, 5}, // deliberate parallel duplicate: multiset hashing must keep it
	}
	g := graph.New(4)
	for _, i := range perm {
		e := edges[i]
		g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), e[2], e[3])
	}
	return graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: 10}
}

func TestFingerprintCanonical(t *testing.T) {
	base := fpInstance(t, []int{0, 1, 2, 3, 4, 5})
	want := Fingerprint(base, "", 0)

	// Insertion order must not matter.
	for _, perm := range [][]int{
		{5, 4, 3, 2, 1, 0},
		{2, 0, 5, 1, 4, 3},
	} {
		if got := Fingerprint(fpInstance(t, perm), "", 0); got != want {
			t.Fatalf("permutation %v: fingerprint %v != %v", perm, got, want)
		}
	}

	// Clones hash identically.
	clone := base
	clone.G = base.G.Clone()
	if got := Fingerprint(clone, "", 0); got != want {
		t.Fatalf("clone fingerprint %v != %v", got, want)
	}

	// A FlipEdge round trip restores the edge tuple and the fingerprint.
	clone.G.FlipEdge(2)
	if got := Fingerprint(clone, "", 0); got == want {
		t.Fatal("flipped graph must hash differently (edge reversed and negated)")
	}
	clone.G.FlipEdge(2)
	if got := Fingerprint(clone, "", 0); got != want {
		t.Fatalf("flip round trip fingerprint %v != %v", got, want)
	}

	// The wire format round trip is canonical too.
	var buf bytes.Buffer
	if err := graph.WriteInstance(&buf, base); err != nil {
		t.Fatal(err)
	}
	parsed, err := graph.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := Fingerprint(parsed, "", 0); got != want {
		t.Fatalf("serialized round trip fingerprint %v != %v", got, want)
	}

	// The Name label is display-only.
	named := base
	named.Name = "some label"
	if got := Fingerprint(named, "", 0); got != want {
		t.Fatalf("name changed the fingerprint: %v != %v", got, want)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := fpInstance(t, []int{0, 1, 2, 3, 4, 5})
	want := Fingerprint(base, "", 0)
	mutate := func(name string, f func(ins *graph.Instance)) {
		ins := base
		ins.G = base.G.Clone()
		f(&ins)
		if got := Fingerprint(ins, "", 0); got == want {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
	mutate("cost", func(ins *graph.Instance) { ins.G.SetEdgeWeights(0, 2, 10) })
	mutate("delay", func(ins *graph.Instance) { ins.G.SetEdgeWeights(0, 1, 11) })
	mutate("k", func(ins *graph.Instance) { ins.K = 3 })
	mutate("bound", func(ins *graph.Instance) { ins.Bound = 11 })
	mutate("terminals", func(ins *graph.Instance) { ins.S, ins.T = 1, 2 })
	mutate("extra edge", func(ins *graph.Instance) { ins.G.AddEdge(1, 2, 1, 1) })
	// One duplicate removed must change the hash (multiset, not set).
	smaller := fpInstance(t, []int{0, 1, 2, 3, 4})
	if got := Fingerprint(smaller, "", 0); got == want {
		t.Error("dropping a parallel duplicate left the fingerprint unchanged")
	}
	// Variant and eps are part of the key.
	if got := Fingerprint(base, "scaled", 0.25); got == want {
		t.Error("variant/eps not folded into the fingerprint")
	}
	if Fingerprint(base, "scaled", 0.25) == Fingerprint(base, "scaled", 0.5) {
		t.Error("eps not folded into the fingerprint")
	}
	if Fingerprint(base, "phase1", 0) == Fingerprint(base, "", 0) {
		t.Error("variant not folded into the fingerprint")
	}
}

// TestFingerprintGoldenFigure1 pins the canonical hash of the paper's
// Figure 1 instance. If this test starts failing, the canonicalization
// changed: every cached entry and every ring placement in a mixed-version
// cluster is invalidated, so treat it as a wire-format break, not a test to
// update casually.
func TestFingerprintGoldenFigure1(t *testing.T) {
	ins, _, err := gen.Figure1(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	const want = "e1628e711e1497ef8feffed953afaf4b"
	if got := Fingerprint(ins, "", 0).String(); got != want {
		t.Fatalf("gen.Figure1(3,4) fingerprint = %s, want pinned %s", got, want)
	}
}

func TestFingerprintZeroAlloc(t *testing.T) {
	ins, _, err := gen.Figure1(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	var sink FP
	if allocs := testing.AllocsPerRun(100, func() {
		sink = Fingerprint(ins, "scaled", 0.25)
	}); allocs != 0 {
		t.Fatalf("Fingerprint allocates %v per run, want 0", allocs)
	}
	_ = sink
}

func fpOf(i uint64) FP { return FP{Hi: i, Lo: ^i} }

func TestCacheLRU(t *testing.T) {
	c := NewCache[int](2, 0)
	c.Put(fpOf(1), 100, 0)
	c.Put(fpOf(2), 200, 1)
	if v, st := c.Get(fpOf(1), 2); st != Fresh || v != 100 {
		t.Fatalf("get 1 = %d/%v", v, st)
	}
	// 1 is now MRU; inserting 3 evicts 2.
	c.Put(fpOf(3), 300, 3)
	if _, st := c.Get(fpOf(2), 4); st != Miss {
		t.Fatalf("2 should have been evicted, got %v", st)
	}
	if v, st := c.Get(fpOf(1), 5); st != Fresh || v != 100 {
		t.Fatalf("1 lost: %d/%v", v, st)
	}
	if v, st := c.Get(fpOf(3), 6); st != Fresh || v != 300 {
		t.Fatalf("3 lost: %d/%v", v, st)
	}
	// Overwrite in place.
	c.Put(fpOf(3), 333, 7)
	if v, _ := c.Get(fpOf(3), 8); v != 333 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheTTL(t *testing.T) {
	c := NewCache[string](4, 100)
	c.Put(fpOf(1), "v", 1000)
	if _, st := c.Get(fpOf(1), 1050); st != Fresh {
		t.Fatalf("within TTL: %v", st)
	}
	if v, st := c.Get(fpOf(1), 1200); st != Stale || v != "v" {
		t.Fatalf("past TTL: %q/%v, want stale value", v, st)
	}
	// A fresh Put restarts the freshness clock.
	c.Put(fpOf(1), "v2", 1200)
	if v, st := c.Get(fpOf(1), 1250); st != Fresh || v != "v2" {
		t.Fatalf("after re-put: %q/%v", v, st)
	}
	if Fresh.String() != "hit" || Stale.String() != "stale" || Miss.String() != "miss" {
		t.Fatal("State strings are part of the response contract")
	}
}

// TestCacheTTLBoundary pins the strict inequality of the staleness
// decision, which Get now computes under the lock (the former lock-free
// read of c.ttl after Unlock was flagged by lockcheck): an entry aged
// exactly ttl is still Fresh, one nanosecond more is Stale, and ttl ≤ 0
// never goes stale.
func TestCacheTTLBoundary(t *testing.T) {
	c := NewCache[string](2, 100)
	c.Put(fpOf(1), "v", 1000)
	if _, st := c.Get(fpOf(1), 1100); st != Fresh {
		t.Fatalf("age == ttl: %v, want hit", st)
	}
	if _, st := c.Get(fpOf(1), 1101); st != Stale {
		t.Fatalf("age == ttl+1: %v, want stale", st)
	}
	forever := NewCache[string](2, 0)
	forever.Put(fpOf(1), "v", 0)
	if _, st := forever.Get(fpOf(1), 1<<62); st != Fresh {
		t.Fatalf("ttl 0 must never go stale: %v", st)
	}
}

// TestCacheConcurrentChurn is the race-regression guard for the guarded
// fields: readers, writers and removers hammer overlapping fingerprints
// while every Get must observe a consistent (value, state) pair — the
// value always matches the fingerprint it was stored under. Run under
// -race this also proves the staleness computation stays inside the
// critical section.
func TestCacheConcurrentChurn(t *testing.T) {
	c := NewCache[uint64](8, 50)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (seed + uint64(i)) % 16
				fp := fpOf(k)
				switch i % 4 {
				case 0:
					c.Put(fp, k, int64(i))
				case 1:
					if v, st := c.Get(fp, int64(i)); st != Miss && v != k {
						t.Errorf("fp %d returned value %d", k, v)
						return
					}
				case 2:
					c.Remove(fp)
				default:
					c.Len()
				}
			}
		}(uint64(w) * 5)
	}
	wg.Wait()
}

func TestCacheRemoveAndNil(t *testing.T) {
	c := NewCache[int](2, 0)
	c.Put(fpOf(1), 1, 0)
	c.Remove(fpOf(1))
	if _, st := c.Get(fpOf(1), 1); st != Miss {
		t.Fatalf("after remove: %v", st)
	}
	c.Remove(fpOf(9)) // no-op
	var nilc *Cache[int]
	if _, st := nilc.Get(fpOf(1), 0); st != Miss {
		t.Fatal("nil cache must miss")
	}
	nilc.Put(fpOf(1), 1, 0)
	nilc.Remove(fpOf(1))
	if nilc.Len() != 0 {
		t.Fatal("nil cache len")
	}
	if NewCache[int](0, 0) != nil {
		t.Fatal("capacity 0 must return the disabled cache")
	}
}

// TestCacheSteadyStateAllocs: once entries recycle through the freelist,
// the Get-miss → Put → Remove churn the cache-miss solve path performs
// allocates nothing.
func TestCacheSteadyStateAllocs(t *testing.T) {
	c := NewCache[int](8, 0)
	fp := fpOf(42)
	c.Put(fp, 1, 0)
	c.Remove(fp)
	if allocs := testing.AllocsPerRun(200, func() {
		if _, st := c.Get(fp, 0); st != Miss {
			t.Fatal("expected miss")
		}
		c.Put(fp, 7, 0)
		c.Remove(fp)
	}); allocs != 0 {
		t.Fatalf("steady-state churn allocates %v per run, want 0", allocs)
	}
}

func TestSingleflightCollapse(t *testing.T) {
	g := NewGroup[int]()
	const waiters = 8
	entered := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	var collapsedCount, leaderRuns int
	var wg sync.WaitGroup
	fp := fpOf(1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, collapsed := g.Do(fp, func() (int, error) {
			close(entered)
			<-release
			mu.Lock()
			leaderRuns++
			mu.Unlock()
			return 99, nil
		})
		if v != 99 || err != nil || collapsed {
			t.Errorf("leader got %d/%v/%v", v, err, collapsed)
		}
	}()
	<-entered
	var about atomic.Int32
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			about.Add(1)
			v, err, collapsed := g.Do(fp, func() (int, error) {
				t.Error("waiter ran the solve")
				return 0, nil
			})
			if v != 99 || err != nil {
				t.Errorf("waiter got %d/%v", v, err)
			}
			if collapsed {
				mu.Lock()
				collapsedCount++
				mu.Unlock()
			}
		}()
	}
	// The leader is parked inside fn until release closes, so any waiter
	// that reaches Do before then collapses. Wait until all eight are one
	// step from Do, give the scheduler a generous margin, then release.
	for about.Load() != waiters {
		runtime.Gosched()
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if leaderRuns != 1 {
		t.Fatalf("leader ran %d times", leaderRuns)
	}
	if collapsedCount != waiters {
		t.Fatalf("collapsed %d of %d waiters", collapsedCount, waiters)
	}
	// After completion the key is free again: a new Do runs fresh.
	v, err, collapsed := g.Do(fp, func() (int, error) { return 7, nil })
	if v != 7 || err != nil || collapsed {
		t.Fatalf("post-flight Do = %d/%v/%v", v, err, collapsed)
	}
}

func TestSingleflightLeaderPanic(t *testing.T) {
	g := NewGroup[int]()
	fp := fpOf(2)
	entered := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		defer func() { recover() }() // the leader's own panic boundary
		g.Do(fp, func() (int, error) {
			close(entered)
			//lint:allow nopanic test simulates a panicking solve behind the singleflight leader
			panic("injected solver panic")
		})
	}()
	<-entered
	go func() {
		_, err, _ := g.Do(fp, func() (int, error) { return 0, nil })
		waiterDone <- err
	}()
	// The waiter either collapsed onto the dying leader (ErrLeaderFailed)
	// or arrived after cleanup and ran fn itself (nil). Both are sound;
	// hanging forever is the failure mode this guards against.
	if err := <-waiterDone; err != nil && err != ErrLeaderFailed {
		t.Fatalf("waiter err = %v", err)
	}
}

func TestNilGroup(t *testing.T) {
	var g *Group[int]
	v, err, collapsed := g.Do(fpOf(1), func() (int, error) { return 5, nil })
	if v != 5 || err != nil || collapsed {
		t.Fatalf("nil group Do = %d/%v/%v", v, err, collapsed)
	}
}

func TestFPString(t *testing.T) {
	fp := FP{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	if got := fp.String(); got != "0123456789abcdeffedcba9876543210" {
		t.Fatalf("String() = %q", got)
	}
	if (FP{}).Key64() == fp.Key64() {
		t.Fatal("Key64 collision on trivially different fingerprints")
	}
}
