package lint

import (
	"go/ast"
	"go/types"
	"sync"
	"testing"
)

// The dataflow corpus is loaded into its own Program (not the shared golden
// one): these tests drive the engine directly rather than through Run.
var (
	dfOnce sync.Once
	dfProg *Program
	dfPkg  *Package
	dfErr  error
)

func dataflowProgram(t *testing.T) (*dfEngine, *Package) {
	t.Helper()
	dfOnce.Do(func() {
		prog, err := NewProgram(".")
		if err != nil {
			dfErr = err
			return
		}
		pkg, err := prog.LoadDirAs("testdata/dataflow", "repro/internal/golden/dataflow")
		if err != nil {
			dfErr = err
			return
		}
		dfProg, dfPkg = prog, pkg
	})
	if dfErr != nil {
		t.Fatal(dfErr)
	}
	return dfProg.dataflow(), dfPkg
}

func analyzeNamed(t *testing.T, name string, hooks *dfHooks) {
	t.Helper()
	e, pkg := dataflowProgram(t)
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %s in dataflow corpus", name)
	}
	e.analyze(fn, hooks)
}

// indexVerdicts returns the bounds-proof verdict per index site, keyed by
// the textual base (the corpus keeps bases distinct per function).
func indexVerdicts(t *testing.T, fnName string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	analyzeNamed(t, fnName, &dfHooks{
		index: func(n *ast.IndexExpr, idx ival, proven bool, env *absEnv) {
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				out[id.Name] = proven
			}
		},
	})
	return out
}

func TestDataflowIndexProofs(t *testing.T) {
	cases := []struct {
		fn   string
		want map[string]bool
	}{
		{"LoopIndex", map[string]bool{"s": true}},
		{"LoopIndexOff", map[string]bool{"s": true}},
		{"Overrun", map[string]bool{"s": false}},
		{"LenAlias", map[string]bool{"s": true}},
		{"RangeIndex", map[string]bool{"s": true, "d": false}},
		{"GotoDegrade", map[string]bool{"s": false}},
	}
	for _, c := range cases {
		got := indexVerdicts(t, c.fn)
		if len(got) != len(c.want) {
			t.Errorf("%s: index sites %v, want %v", c.fn, got, c.want)
			continue
		}
		for base, want := range c.want {
			if got[base] != want {
				t.Errorf("%s: %s[...] proven=%v, want %v", c.fn, base, got[base], want)
			}
		}
	}
}

func TestDataflowSliceProofs(t *testing.T) {
	cases := map[string]bool{
		"SliceHead":     true,
		"SliceWindow":   true,
		"SliceUnproven": false,
	}
	for fn, want := range cases {
		var got *bool
		analyzeNamed(t, fn, &dfHooks{
			slice: func(n *ast.SliceExpr, proven bool, env *absEnv) {
				p := proven
				got = &p
			},
		})
		if got == nil {
			t.Errorf("%s: slice hook never fired", fn)
		} else if *got != want {
			t.Errorf("%s: proven=%v, want %v", fn, *got, want)
		}
	}
}

func TestDataflowBinaryRanges(t *testing.T) {
	binOf := func(fn string) ival {
		var r ival
		fired := false
		analyzeNamed(t, fn, &dfHooks{
			binary: func(n *ast.BinaryExpr, x, y, res ival, env *absEnv) {
				r = res
				fired = true
			},
		})
		if !fired {
			t.Fatalf("%s: binary hook never fired", fn)
		}
		return r
	}
	// Guard-refined operands prove the sum within [0, 2^31].
	if r := binOf("Clamp"); !r.within(0, int64(1)<<31) {
		t.Errorf("Clamp: a+w = %v, want within [0, 2^31]", r)
	}
	// Unconstrained int64 addition must widen to top — never a finite lie.
	if r := binOf("Unbounded"); !r.isTop() {
		t.Errorf("Unbounded: a+w = %v, want top", r)
	}
	// The interprocedural summary of nine() feeds the addition.
	if r := binOf("UsesSummary"); !r.within(9, 109) {
		t.Errorf("UsesSummary: a+nine() = %v, want within [9, 109]", r)
	}
}

func TestDataflowNilness(t *testing.T) {
	derefOf := func(fn string) nilness {
		var nl nilness
		fired := false
		analyzeNamed(t, fn, &dfHooks{
			deref: func(at ast.Node, base ast.Expr, n nilness, env *absEnv) {
				nl = n
				fired = true
			},
		})
		if !fired {
			t.Fatalf("%s: deref hook never fired", fn)
		}
		return nl
	}
	if nl := derefOf("NilGuard"); nl != nilNonNil {
		t.Errorf("NilGuard: deref sees %v, want non-nil", nl)
	}
	if nl := derefOf("NilMaybe"); nl != nilMaybe {
		t.Errorf("NilMaybe: deref sees %v, want maybe-nil", nl)
	}
}

func TestDataflowSummaries(t *testing.T) {
	e, pkg := dataflowProgram(t)
	fn, ok := pkg.Types.Scope().Lookup("nine").(*types.Func)
	if !ok {
		t.Fatal("no nine in dataflow corpus")
	}
	iv, ok := e.retIval[fn]
	if !ok {
		t.Fatal("nine has no return summary")
	}
	if !iv.eq(ivConst(9)) {
		t.Errorf("summary of nine = %v, want [9,9]", iv)
	}
}
