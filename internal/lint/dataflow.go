package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"sort"
	"strings"
)

// This file is the state half of the dataflow engine (DESIGN.md §12): the
// abstract environment threaded through the CFG of ir.go, the per-program
// engine with its interprocedural return summaries, and the fixpoint
// driver. The transfer functions live in dfeval.go; interval.go supplies
// the numeric lattice.

// nilness is the three-point pointer lattice. The zero value is the top
// ("maybe nil"), so missing map entries are automatically conservative.
type nilness int8

const (
	nilMaybe nilness = iota
	nilIsNil
	nilNonNil
)

func (n nilness) String() string {
	switch n {
	case nilIsNil:
		return "nil"
	case nilNonNil:
		return "non-nil"
	}
	return "maybe-nil"
}

// symRef names a trackable storage location symbolically: a variable, or a
// field path rooted at one (`ws` + ".done" for ws.done). Field-path facts
// are killed at every call — a callee can mutate them through an alias —
// while facts on plain locals survive (a callee cannot reassign a local
// whose address was never taken; address-taken locals are never tracked).
type symRef struct {
	root types.Object
	path string
}

// lenUB is a symbolic upper bound: the owning reference is ≤ len(sym)+delta
// (delta = -1 encodes the strict `i < len(s)` that proves s[i] in bounds).
type lenUB struct {
	sym   symRef
	delta int64
}

// absEnv is the abstract state at one program point.
type absEnv struct {
	bot  bool
	vals map[symRef]ival
	nils map[symRef]nilness
	// lens records integer variables currently equal to len(sym)
	// (`n := len(row)`), so `i < n` refines like `i < len(row)`.
	lens map[symRef]symRef
	// ubs records the symbolic upper bounds in force per reference.
	ubs map[symRef][]lenUB
}

func newEnv() *absEnv {
	return &absEnv{
		vals: map[symRef]ival{},
		nils: map[symRef]nilness{},
		lens: map[symRef]symRef{},
		ubs:  map[symRef][]lenUB{},
	}
}

func botEnv() *absEnv { return &absEnv{bot: true} }

func (e *absEnv) clone() *absEnv {
	if e.bot {
		return botEnv()
	}
	out := newEnv()
	for k, v := range e.vals {
		out.vals[k] = v
	}
	for k, v := range e.nils {
		out.nils[k] = v
	}
	for k, v := range e.lens {
		out.lens[k] = v
	}
	for k, v := range e.ubs {
		out.ubs[k] = append([]lenUB(nil), v...)
	}
	return out
}

// join is the lattice least upper bound: facts survive only when both
// branches agree (a missing entry is "no fact" = top). Interval entries
// join pointwise; len upper bounds keep the weakest shared delta.
func (e *absEnv) join(o *absEnv) *absEnv {
	if e.bot {
		return o.clone()
	}
	if o.bot {
		return e.clone()
	}
	out := newEnv()
	for k, v := range e.vals {
		if w, ok := o.vals[k]; ok {
			j := v.join(w)
			if !j.isTop() {
				out.vals[k] = j
			}
		}
	}
	for k, v := range e.nils {
		if w, ok := o.nils[k]; ok && v == w && v != nilMaybe {
			out.nils[k] = v
		}
	}
	for k, v := range e.lens {
		if w, ok := o.lens[k]; ok && v == w {
			out.lens[k] = v
		}
	}
	for k, v := range e.ubs {
		w, ok := o.ubs[k]
		if !ok {
			continue
		}
		var merged []lenUB
		for _, a := range v {
			for _, b := range w {
				if a.sym == b.sym {
					merged = append(merged, lenUB{sym: a.sym, delta: max64(a.delta, b.delta)})
				}
			}
		}
		if len(merged) > 0 {
			out.ubs[k] = normalizeUBs(merged)
		}
	}
	return out
}

// widen is join with threshold widening on the intervals; applied at loop
// heads so changing bounds jump to the next architecture threshold instead
// of crawling. Symbolic facts use plain join — they only ever shrink, so
// they terminate on their own.
func (e *absEnv) widen(next *absEnv) *absEnv {
	if e.bot {
		return next.clone()
	}
	if next.bot {
		return e.clone()
	}
	out := e.join(next)
	for k, j := range out.vals {
		if prev, ok := e.vals[k]; ok {
			w := prev.widen(j)
			if w.isTop() {
				delete(out.vals, k)
			} else {
				out.vals[k] = w
			}
		}
	}
	return out
}

func (e *absEnv) eq(o *absEnv) bool {
	if e.bot || o.bot {
		return e.bot == o.bot
	}
	if len(e.vals) != len(o.vals) || len(e.nils) != len(o.nils) ||
		len(e.lens) != len(o.lens) || len(e.ubs) != len(o.ubs) {
		return false
	}
	for k, v := range e.vals {
		if w, ok := o.vals[k]; !ok || !v.eq(w) {
			return false
		}
	}
	for k, v := range e.nils {
		if w, ok := o.nils[k]; !ok || v != w {
			return false
		}
	}
	for k, v := range e.lens {
		if w, ok := o.lens[k]; !ok || v != w {
			return false
		}
	}
	for k, v := range e.ubs {
		w, ok := o.ubs[k]
		if !ok || len(v) != len(w) {
			return false
		}
		for i := range v {
			if v[i] != w[i] {
				return false
			}
		}
	}
	return true
}

// normalizeUBs dedups bounds per symbol (keeping the tightest delta) and
// sorts for deterministic eq comparison.
func normalizeUBs(ubs []lenUB) []lenUB {
	best := map[symRef]int64{}
	for _, u := range ubs {
		if d, ok := best[u.sym]; !ok || u.delta < d {
			best[u.sym] = u.delta
		}
	}
	out := make([]lenUB, 0, len(best))
	for sym, d := range best {
		out = append(out, lenUB{sym: sym, delta: d})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.sym.root != b.sym.root {
			return a.sym.root.Pos() < b.sym.root.Pos()
		}
		if a.sym.path != b.sym.path {
			return a.sym.path < b.sym.path
		}
		return a.delta < b.delta
	})
	return out
}

// setVal records an interval for ref (dropped when top, keeping envs small).
// Mutators are no-ops on bottom: an unreachable environment stays empty.
func (e *absEnv) setVal(ref symRef, v ival) {
	if e.bot {
		return
	}
	if v.isTop() {
		delete(e.vals, ref)
	} else {
		e.vals[ref] = v
	}
}

func (e *absEnv) setNil(ref symRef, n nilness) {
	if e.bot {
		return
	}
	if n == nilMaybe {
		delete(e.nils, ref)
	} else {
		e.nils[ref] = n
	}
}

// setLen records ref as an alias of len(sym).
func (e *absEnv) setLen(ref, sym symRef) {
	if e.bot {
		return
	}
	e.lens[ref] = sym
}

// addUB records ref ≤ len(sym)+delta, keeping the tightest delta per sym.
func (e *absEnv) addUB(ref symRef, sym symRef, delta int64) {
	if e.bot {
		return
	}
	e.ubs[ref] = normalizeUBs(append(e.ubs[ref], lenUB{sym: sym, delta: delta}))
}

// ubFor returns the tightest recorded delta of ref against sym.
func (e *absEnv) ubFor(ref, sym symRef) (int64, bool) {
	for _, u := range e.ubs[ref] {
		if u.sym == sym {
			return u.delta, true
		}
	}
	return 0, false
}

// killRoot drops every fact about a reassigned variable: facts keyed by a
// reference rooted at it, length aliases pointing at it, and upper bounds
// measured against a slice rooted at it (its length changed).
func (e *absEnv) killRoot(root types.Object) {
	for k := range e.vals {
		if k.root == root {
			delete(e.vals, k)
		}
	}
	for k := range e.nils {
		if k.root == root {
			delete(e.nils, k)
		}
	}
	for k, v := range e.lens {
		if k.root == root || v.root == root {
			delete(e.lens, k)
		}
	}
	for k, ubs := range e.ubs {
		if k.root == root {
			delete(e.ubs, k)
			continue
		}
		kept := ubs[:0]
		for _, u := range ubs {
			if u.sym.root != root {
				kept = append(kept, u)
			}
		}
		if len(kept) == 0 {
			delete(e.ubs, k)
		} else {
			e.ubs[k] = kept
		}
	}
}

// killHeap drops every fact that reaches through a field path — the sound
// response to a call or a store through a pointer, either of which may
// mutate any field an alias can see. Facts on plain locals survive.
func (e *absEnv) killHeap() {
	for k := range e.vals {
		if k.path != "" {
			delete(e.vals, k)
		}
	}
	for k := range e.nils {
		if k.path != "" {
			delete(e.nils, k)
		}
	}
	for k, v := range e.lens {
		if k.path != "" || v.path != "" {
			delete(e.lens, k)
		}
	}
	for k, ubs := range e.ubs {
		if k.path != "" {
			delete(e.ubs, k)
			continue
		}
		kept := ubs[:0]
		for _, u := range ubs {
			if u.sym.path == "" {
				kept = append(kept, u)
			}
		}
		if len(kept) == 0 {
			delete(e.ubs, k)
		} else {
			e.ubs[k] = kept
		}
	}
}

// absVal is the result of evaluating one expression.
type absVal struct {
	iv ival
	nl nilness
	// lenOf, when non-nil, marks the value as exactly len(*lenOf) — so an
	// assignment `n := len(row)` records the alias that later lets `i < n`
	// prove row[i] in bounds.
	lenOf *symRef
}

func typedVal(t types.Type) absVal { return absVal{iv: typeInterval(t)} }

// dfHooks are the analyzer callbacks fired during the post-fixpoint walk.
// Each site is visited exactly once, under the stabilized environment in
// force there; env.bot marks unreachable code.
type dfHooks struct {
	// binary fires on every +, -, * whose static type is int64, with the
	// operand and (pre-truncation, saturating) result intervals.
	binary func(n *ast.BinaryExpr, x, y, r ival, env *absEnv)
	// assignOp fires on += / *= / -= with int64 left-hand side.
	assignOp func(n *ast.AssignStmt, x, y, r ival, env *absEnv)
	// index fires on every index expression over a slice or array, with the
	// index interval and whether the engine proved 0 ≤ idx < len.
	index func(n *ast.IndexExpr, idx ival, proven bool, env *absEnv)
	// slice fires on every slice expression, with whether the engine proved
	// 0 ≤ low ≤ high ≤ len.
	slice func(n *ast.SliceExpr, proven bool, env *absEnv)
	// deref fires on every pointer indirection (field selection through a
	// pointer, value-receiver method on a pointer, unary *), with the
	// nilness of the pointer operand.
	deref func(at ast.Node, base ast.Expr, nl nilness, env *absEnv)
	// ret fires on every return statement with the evaluated results
	// (empty for naked returns resolved through named results).
	ret func(n *ast.ReturnStmt, vals []absVal, env *absEnv)
}

// dfEngine is the per-Program dataflow engine. Built lazily once, it holds
// the interprocedural summaries: the return interval of every module
// function with a single integer result, and whether a single-pointer
// result is provably non-nil. Summaries are computed in two passes over the
// call graph — pass one starts from type-derived tops (sound for any
// recursion), pass two recomputes with pass-one results, so a stale-wider
// summary is the worst case, never an unsound one.
type dfEngine struct {
	prog      *Program
	cg        *callGraph
	irs       map[*ast.FuncDecl]*funcIR
	retIval   map[*types.Func]ival
	retNonNil map[*types.Func]bool
}

// dataflow builds (once) and returns the program's dataflow engine.
func (p *Program) dataflow() *dfEngine {
	if p.df != nil {
		return p.df
	}
	e := &dfEngine{
		prog:      p,
		cg:        p.buildCallGraph(),
		irs:       map[*ast.FuncDecl]*funcIR{},
		retIval:   map[*types.Func]ival{},
		retNonNil: map[*types.Func]bool{},
	}
	p.df = e
	e.buildSummaries()
	return e
}

func (e *dfEngine) irFor(fd *ast.FuncDecl) *funcIR {
	if ir, ok := e.irs[fd]; ok {
		return ir
	}
	ir := buildIR(fd.Body)
	e.irs[fd] = ir
	return ir
}

// summarizable reports the single result worth summarizing: an integer
// (interval summary) or pointer (nilness summary) type.
func summarizable(fn *types.Func) (types.Type, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return nil, false
	}
	t := sig.Results().At(0).Type()
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return t, u.Info()&types.IsInteger != 0
	case *types.Pointer:
		return t, true
	}
	return nil, false
}

func (e *dfEngine) buildSummaries() {
	for pass := 0; pass < 2; pass++ {
		for _, fn := range e.cg.order {
			t, ok := summarizable(fn)
			if !ok {
				continue
			}
			site := e.cg.decls[fn]
			ret := ivBot()
			nonNil := true
			sawReturn := false
			hooks := &dfHooks{ret: func(n *ast.ReturnStmt, vals []absVal, env *absEnv) {
				if env.bot {
					return
				}
				sawReturn = true
				if len(vals) != 1 {
					nonNil = false
					ret = ret.join(typeInterval(t))
					return
				}
				ret = ret.join(vals[0].iv)
				if vals[0].nl != nilNonNil {
					nonNil = false
				}
			}}
			e.interpret(site, hooks)
			if !sawReturn {
				// Never returns normally (panics or loops); bottom summary
				// makes call results vacuous, which is exactly right.
				e.retIval[fn] = ivBot()
				e.retNonNil[fn] = false
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				e.retNonNil[fn] = nonNil
			} else {
				e.retIval[fn] = ret.meet(typeInterval(t))
			}
		}
	}
}

// summaryIval returns the sound return-interval of a call to fn.
func (e *dfEngine) summaryIval(fn *types.Func, t types.Type) ival {
	if iv, ok := e.retIval[fn]; ok {
		return iv
	}
	return typeInterval(t)
}

// analyze runs the fixpoint over fn's body and then fires hooks in one
// deterministic walk under the stabilized environments.
func (e *dfEngine) analyze(fn *types.Func, hooks *dfHooks) {
	if site := e.cg.decls[fn]; site != nil {
		e.interpret(site, hooks)
	}
}

// interpVisitCap bounds total block visits per function; a function that
// fails to stabilize under it (none in the module — the cap is ~40× the
// worst observed) degrades to type-only environments, which is sound.
const interpVisitCap = 20000

// interpret is the engine core: fixpoint + hook walk for one declaration.
func (e *dfEngine) interpret(site *declSite, hooks *dfHooks) {
	fi := &funcInterp{
		e:         e,
		site:      site,
		info:      site.pkg.Info,
		untracked: untrackedObjects(site.fd.Body, site.pkg.Info),
	}
	ir := e.irFor(site.fd)
	fi.run(ir, site.fd.Type, site.fd.Recv, hooks)
}

// funcInterp is the interpreter state for one function (or closure) body.
type funcInterp struct {
	e    *dfEngine
	site *declSite
	info *types.Info
	// untracked holds objects whose facts would be unsound to keep:
	// address-taken locals and variables written inside closures.
	untracked map[types.Object]bool
	hooks     *dfHooks
	// results holds the named result objects, so naked returns can report
	// their current abstract values to the ret hook.
	results []types.Object
	// evaled dedups hook firing for condition expressions shared by the
	// true and false edges of a branch.
	evaled map[ast.Expr]bool
}

// run drives the fixpoint for one IR and then the hook walk. ftype/recv
// seed the entry environment (named results start at their zero values).
func (fi *funcInterp) run(ir *funcIR, ftype *ast.FuncType, recv *ast.FieldList, hooks *dfHooks) {
	in := make([]*absEnv, len(ir.blocks))
	for i := range in {
		in[i] = botEnv()
	}
	entry := newEnv()
	if ftype.Results != nil {
		for _, f := range ftype.Results.List {
			for _, name := range f.Names {
				if obj := fi.info.Defs[name]; obj != nil {
					fi.setZero(entry, symRef{root: obj})
					fi.results = append(fi.results, obj)
				}
			}
		}
	}
	in[ir.entry.id] = entry

	if ir.unsupported == "" {
		work := []*irBlock{ir.entry}
		queued := map[int]bool{ir.entry.id: true}
		visits := 0
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			queued[b.id] = false
			visits++
			if visits > interpVisitCap {
				ir.unsupported = "fixpoint budget"
				break
			}
			env := in[b.id].clone()
			for _, s := range b.stmts {
				fi.transfer(env, s)
			}
			for _, edge := range b.succs {
				out := env.clone()
				if edge.cond != nil {
					out = fi.assume(out, edge.cond, !edge.negate)
				}
				if edge.rng != nil {
					fi.bindRange(out, edge.rng)
				}
				var next *absEnv
				if edge.to.loopHead {
					next = in[edge.to.id].widen(in[edge.to.id].join(out))
				} else {
					next = in[edge.to.id].join(out)
				}
				if !next.eq(in[edge.to.id]) {
					in[edge.to.id] = next
					if !queued[edge.to.id] {
						queued[edge.to.id] = true
						work = append(work, edge.to)
					}
				}
			}
		}
	}
	if ir.unsupported != "" {
		// Degraded mode: every block gets the fact-free environment; all
		// lookups fall back to static types.
		for i := range in {
			in[i] = newEnv()
		}
		in[ir.entry.id] = entry
	}

	// Hook walk: one deterministic pass, hooks firing during evaluation.
	if hooks == nil {
		return
	}
	fi.hooks = hooks
	fi.evaled = map[ast.Expr]bool{}
	defer func() { fi.hooks = nil; fi.evaled = nil }()
	for _, b := range ir.blocks {
		env := in[b.id].clone()
		for _, s := range b.stmts {
			fi.transfer(env, s)
		}
		for _, edge := range b.succs {
			if edge.cond != nil && !fi.evaled[edge.cond] {
				fi.evaled[edge.cond] = true
				fi.eval(env, edge.cond)
			}
			if edge.rng != nil && !fi.evaled[edge.rng.X] {
				fi.evaled[edge.rng.X] = true
				fi.eval(env, edge.rng.X)
			}
		}
	}
}

// setZero seeds ref with its type's zero value (named results at entry,
// `var x T` declarations without initializers).
func (fi *funcInterp) setZero(env *absEnv, ref symRef) {
	t := ref.root.Type()
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
		env.setVal(ref, ivConst(0))
		return
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		env.setNil(ref, nilIsNil)
	}
}

// untrackedObjects collects the objects whose dataflow facts cannot be
// trusted: locals whose address is taken (a callee or alias may reassign
// them) and variables assigned inside a function literal (the closure may
// run between any two statements via a call).
func untrackedObjects(body *ast.BlockStmt, info *types.Info) map[types.Object]bool {
	out := map[types.Object]bool{}
	var inLit int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						out[obj] = true
					}
				}
			}
		case *ast.FuncLit:
			inLit++
			ast.Inspect(n.Body, walk)
			inLit--
			return false
		case *ast.AssignStmt:
			if inLit > 0 {
				for _, lhs := range n.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							out[obj] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if inLit > 0 {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						out[obj] = true
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// symRefOf resolves an expression to a trackable reference: an identifier,
// or an unbroken field-selection path rooted at one. Index expressions,
// calls and dereferences of non-root position break the chain.
func (fi *funcInterp) symRefOf(e ast.Expr) (symRef, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := fi.info.ObjectOf(e)
		if obj == nil || fi.untracked[obj] {
			return symRef{}, false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return symRef{}, false
		}
		return symRef{root: obj}, true
	case *ast.SelectorExpr:
		// Only field selections extend a path; method selections and
		// package-qualified names do not.
		if sel, ok := fi.info.Selections[e]; !ok || sel.Kind() != types.FieldVal {
			return symRef{}, false
		}
		base, ok := fi.symRefOf(e.X)
		if !ok {
			return symRef{}, false
		}
		return symRef{root: base.root, path: base.path + "." + e.Sel.Name}, true
	}
	return symRef{}, false
}

// lookup returns the abstract value of a trackable reference, falling back
// to the static type.
func (fi *funcInterp) lookup(env *absEnv, ref symRef, t types.Type) absVal {
	v := typedVal(t)
	if iv, ok := env.vals[ref]; ok {
		v.iv = v.iv.meet(iv)
	}
	if nl, ok := env.nils[ref]; ok {
		v.nl = nl
	}
	if sym, ok := env.lens[ref]; ok {
		s := sym
		v.lenOf = &s
	}
	return v
}

// sinkPtrType reports whether t is a pointer to a named type declared in a
// package whose path contains one of the given segments.
func sinkPtrType(t types.Type, segs map[string]bool) (string, bool) {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if !pathHasAnySegment(named.Obj().Pkg().Path(), segs) {
		return "", false
	}
	return "*" + named.Obj().Pkg().Name() + "." + named.Obj().Name(), true
}

// graphIndexType reports whether t is one of the graph index types whose
// values the frozen-CSR invariant keeps in range (NodeID/EdgeID, int32).
func graphIndexType(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	name := named.Obj().Name()
	if (name == "NodeID" || name == "EdgeID") && pathHasSegment(named.Obj().Pkg().Path(), "graph") {
		return name, true
	}
	return "", false
}

// intMaxIval is the widest value len() can produce.
func lenIval() ival { return ival{lo: 0, hi: math.MaxInt64} }

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// pkgSegTail reports the last segment of a package path, for messages.
func pkgSegTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
