package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleReport() Report {
	return Report{
		Root: "/mod",
		Diagnostics: []Diagnostic{
			{
				Analyzer: "ctxpoll",
				Position: token.Position{Filename: "/mod/internal/core/solve.go", Line: 42, Column: 2},
				Message:  "unbounded loop on the solve path never polls the Canceller",
			},
			{
				Analyzer: "contracts",
				Position: token.Position{Filename: "/mod/internal/shortest/spfa.go", Line: 7, Column: 9},
				Message:  "make allocates but is reachable from //krsp:noalloc SPFAInto",
			},
		},
	}
}

func TestWriteJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("want 2 objects, got %d", len(got))
	}
	first := got[0]
	if first["file"] != "internal/core/solve.go" {
		t.Errorf("file not module-relative: %v", first["file"])
	}
	if first["line"] != float64(42) || first["column"] != float64(2) {
		t.Errorf("position mangled: %v:%v", first["line"], first["column"])
	}
	if first["analyzer"] != "ctxpoll" || first["message"] == "" {
		t.Errorf("analyzer/message mangled: %v", first)
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := (Report{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Fatalf("empty report must encode as [], got %q", s)
	}
}

// sarifValidate is a structural SARIF 2.1.0 check: it decodes the document
// generically and asserts every property GitHub code scanning requires, so
// a drift in the typed model fails here instead of at upload time.
func sarifValidate(t *testing.T, data []byte) {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF output is not JSON: %v", err)
	}
	schema, _ := doc["$schema"].(string)
	if !strings.Contains(schema, "sarif-schema-2.1.0") {
		t.Errorf("$schema must name the 2.1.0 schema, got %q", schema)
	}
	if v, _ := doc["version"].(string); v != "2.1.0" {
		t.Errorf("version must be \"2.1.0\", got %q", v)
	}
	runs, _ := doc["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("want exactly one run, got %d", len(runs))
	}
	run, _ := runs[0].(map[string]any)
	tool, _ := run["tool"].(map[string]any)
	driver, _ := tool["driver"].(map[string]any)
	if name, _ := driver["name"].(string); name == "" {
		t.Error("tool.driver.name is required")
	}
	ruleIDs := map[string]bool{}
	rules, _ := driver["rules"].([]any)
	if len(rules) == 0 {
		t.Fatal("tool.driver.rules must list the suite")
	}
	for _, r := range rules {
		rule, _ := r.(map[string]any)
		id, _ := rule["id"].(string)
		if id == "" {
			t.Fatal("every rule needs an id")
		}
		ruleIDs[id] = true
		sd, _ := rule["shortDescription"].(map[string]any)
		if text, _ := sd["text"].(string); text == "" {
			t.Errorf("rule %s needs shortDescription.text", id)
		}
	}
	results, ok := run["results"].([]any)
	if !ok {
		t.Fatal("run.results must be present (empty array for a clean run)")
	}
	for _, r := range results {
		res, _ := r.(map[string]any)
		rid, _ := res["ruleId"].(string)
		if !ruleIDs[rid] {
			t.Errorf("result ruleId %q not in the rule table", rid)
		}
		msg, _ := res["message"].(map[string]any)
		if text, _ := msg["text"].(string); text == "" {
			t.Error("result needs message.text")
		}
		if lvl, _ := res["level"].(string); lvl != "error" {
			t.Errorf("result level %q, want error", lvl)
		}
		locs, _ := res["locations"].([]any)
		if len(locs) == 0 {
			t.Fatal("result needs at least one location")
		}
		loc, _ := locs[0].(map[string]any)
		phys, _ := loc["physicalLocation"].(map[string]any)
		art, _ := phys["artifactLocation"].(map[string]any)
		if uri, _ := art["uri"].(string); uri == "" || strings.HasPrefix(uri, "/") {
			t.Errorf("artifactLocation.uri must be a relative path, got %q", uri)
		}
		region, _ := phys["region"].(map[string]any)
		if line, _ := region["startLine"].(float64); line < 1 {
			t.Errorf("region.startLine must be ≥ 1, got %v", line)
		}
	}
}

func TestWriteSARIFValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteSARIF(&buf); err != nil {
		t.Fatal(err)
	}
	sarifValidate(t, buf.Bytes())
	var doc sarifLog
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs[0].Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(doc.Runs[0].Results))
	}
	if got := doc.Runs[0].Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "internal/core/solve.go" {
		t.Errorf("URI not module-relative: %q", got)
	}
}

func TestWriteSARIFEmptyStillListsRules(t *testing.T) {
	var buf bytes.Buffer
	if err := (Report{}).WriteSARIF(&buf); err != nil {
		t.Fatal(err)
	}
	sarifValidate(t, buf.Bytes())
	var doc sarifLog
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if want := len(All()) + 1; len(doc.Runs[0].Tool.Driver.Rules) != want {
		t.Fatalf("rule table: got %d, want %d (suite + directive)", len(doc.Runs[0].Tool.Driver.Rules), want)
	}
}
