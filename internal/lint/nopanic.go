package lint

import (
	"go/ast"
	"go/types"
)

// Nopanic forbids panic, log.Fatal* / log.Panic* and os.Exit in library
// packages (everything under internal/ outside cmd/ and examples/). A solver
// that panics on input-dependent conditions cannot be embedded in a service;
// input validation must return errors. True programmer-error invariants
// (corrupt internal state that no input can reach) may stay as panics when
// annotated with //lint:allow nopanic <reason>.
var Nopanic = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic/log.Fatal/os.Exit in library packages",
	AppliesTo: func(path string) bool {
		return !pathHasSegment(path, "cmd") && !pathHasSegment(path, "examples") && !pathHasSegment(path, "main")
	},
	Run: runNopanic,
}

var fatalFuncs = map[string]map[string]bool{
	"log": {"Fatal": true, "Fatalf": true, "Fatalln": true, "Panic": true, "Panicf": true, "Panicln": true},
	"os":  {"Exit": true},
}

func runNopanic(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					if _, isBuiltin := info.ObjectOf(fun).(*types.Builtin); isBuiltin {
						pass.Reportf(call.Pos(), "panic in library package; return an error for input-dependent failures (or annotate an invariant with //lint:allow nopanic <reason>)")
					}
				}
			case *ast.SelectorExpr:
				pkgID, ok := fun.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := info.ObjectOf(pkgID).(*types.PkgName)
				if !ok {
					return true
				}
				if names, ok := fatalFuncs[pn.Imported().Path()]; ok && names[fun.Sel.Name] {
					pass.Reportf(call.Pos(), "%s.%s in library package; return an error instead", pn.Imported().Path(), fun.Sel.Name)
				}
			}
			return true
		})
	}
}
