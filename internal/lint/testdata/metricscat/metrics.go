// Package metricsgolden is mounted at repro/internal/obs/metricsgolden by
// the analyzer self-tests: an obs-segment package with miniature instrument
// and registry types, so the catalogue audit runs without importing the
// real obs package.
package metricsgolden

// Counter is a miniature obs-style counter.
type Counter struct{ n int64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.n++ }

// Gauge is a miniature obs-style gauge.
type Gauge struct{ v int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v = v }

// Registry is a miniature obs-style registry.
type Registry struct{}

// Counter registers a counter family.
func (r *Registry) Counter(family string) *Counter {
	_ = family
	return &Counter{}
}

// Gauge registers a gauge family.
func (r *Registry) Gauge(family string) *Gauge {
	_ = family
	return &Gauge{}
}

// SolverMetrics is the golden catalogue group.
type SolverMetrics struct {
	Good    *Counter // registered and recorded: clean
	Orphan  *Gauge   // registered, never recorded: orphan diagnostic
	Missing *Counter // never registered: nil-deref diagnostic
}

// register wires the catalogue.
func register(r *Registry, m *SolverMetrics) {
	m.Good = r.Counter("good_ops_total")
	m.Orphan = r.Gauge("orphan_depth")
}

// work records the one live metric.
func work(m *SolverMetrics) {
	m.Good.Inc()
}
