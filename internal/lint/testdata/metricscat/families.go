package metricsgolden

// families exercises the family-name hygiene checks.
func families(r *Registry) {
	r.Counter("Bad_total")      // uppercase: not a well-formed Prometheus name
	r.Counter("missing_suffix") // counter family without the _total suffix
	r.Gauge("dup_depth")
	r.Gauge("dup_depth") // second site: silently merged series
	delegated(r, "delegated_ops_total")
	local := "computed_total"
	r.Counter(local) // neither constant nor delegated parameter
}

// delegated forwards a family name: a parameter is an accepted argument,
// because the constant lives at the delegating call site.
func delegated(r *Registry, family string) *Counter {
	return r.Counter(family)
}
