// Package ctxpollgolden is mounted at repro/internal/core/ctxpollgolden by
// the analyzer self-tests: a solve-path package whose Solve* function roots
// the reachability analysis for the ctxpoll invariant.
package ctxpollgolden

import "repro/internal/cancel"

// SolveSpin drives the violating loops so they are reachable.
func SolveSpin(c *cancel.Canceller, work int) int {
	total := drainNoPoll(work)
	total += ladderNoPoll(work)
	total += okPolls(c, work)
	total += visitClosure(c, work)
	total += boundedWalk(work)
	return total
}

// drainNoPoll spins on a condition without ever polling: flagged.
func drainNoPoll(work int) int {
	n := 0
	for work > 0 {
		work /= 2
		n++
	}
	return n
}

// ladderNoPoll is an infinite ladder with a break and no poll: flagged.
func ladderNoPoll(work int) int {
	n := 0
	for {
		if work <= n {
			break
		}
		n++
	}
	return n
}
