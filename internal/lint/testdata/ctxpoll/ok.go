package ctxpollgolden

import "repro/internal/cancel"

// okPolls exercises the accepted cancellation shapes: a Poll in the body,
// a Check in an infinite ladder, and a Stopped in the condition.
func okPolls(c *cancel.Canceller, work int) int {
	n := 0
	for work > n {
		if c.Poll() {
			break
		}
		n++
	}
	for {
		if c.Check() || work <= n {
			break
		}
		n++
	}
	for !c.Stopped() && n < work {
		n++
	}
	return n
}

// visitClosure polls only inside the closure the loop calls each round —
// accepted because the closure body is part of the loop body's subtree
// when declared inline.
func visitClosure(c *cancel.Canceller, work int) int {
	n := 0
	for n < work {
		stop := func() bool { return c.Check() }
		if stop() {
			break
		}
		n++
	}
	return n
}

// boundedWalk documents a structural bound instead of polling.
func boundedWalk(work int) int {
	n := 0
	//lint:allow ctxpoll golden: trip count bounded by the halving argument
	for work > 0 {
		work /= 2
		n++
	}
	return n
}

// notReachable is outside the Solve* call graph: not flagged even without
// a poll.
func notReachable(work int) int {
	n := 0
	for work > n {
		n++
	}
	return n
}
