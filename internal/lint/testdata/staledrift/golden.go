// Package staledrift is mounted at repro/internal/gen/staledrift by the
// suppressdrift self-test: one live suppression, one stale, one naming an
// unknown analyzer.
package staledrift

// Gather suppresses a real detmap finding: the allow is used and must NOT
// be reported as stale.
func Gather(m map[int]int) []int {
	var out []int
	//lint:allow detmap golden: the caller sorts, so collection order is erased
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// Stale carries an allow with nothing left to suppress: the loop below
// ranges a slice, not a map.
func Stale(xs []int) int {
	total := 0
	//lint:allow detmap golden: stale — no map iteration below anymore
	for _, x := range xs {
		total += x
	}
	return total
}

// Unknown names an analyzer outside the suite; the suppression can never
// fire, whichever analyzers run.
func Unknown() int {
	//lint:allow detmpa golden: typo'd analyzer name can never fire
	return 0
}
