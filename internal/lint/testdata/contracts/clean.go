package golden

// CopyInto is annotated and clean: it writes into presized scratch only.
//
//krsp:noalloc
func CopyInto(dst, src []int64) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] = src[i]
	}
}

// WalkChain's condition-only loop is covered by the function's own bound;
// the verifier must not demand a poll from it.
//
//krsp:terminates(golden: the cursor strictly advances to the sentinel)
func WalkChain(next []int, start int) int {
	v := start
	for next[v] >= 0 {
		v = next[v]
	}
	return v
}

// Fold is deterministic: the map range writes only into a map, which the
// order-sensitivity rule treats as commutative.
//
//krsp:deterministic
func Fold(m map[int]int) map[int]bool {
	seen := make(map[int]bool, len(m))
	for k := range m {
		seen[k] = true
	}
	return seen
}
