package golden

// Widget shows a misplaced contract: only function declarations are
// verified, so a contract on a type binds to nothing.
//
//krsp:deterministic
type Widget struct{}

// DupInto carries the same contract twice: the second must report.
//
//krsp:noalloc
//krsp:noalloc
func DupInto(dst []int) []int {
	return dst[:0]
}

// badReason omits the mandatory terminates bound.
//
//krsp:terminates
func badReason() {}

// badVerb uses a contract verb outside the grammar.
//
//krsp:frobnicates(golden)
func badVerb() {}
