// Package golden is mounted at repro/internal/auxgraph/golden by the
// analyzer self-tests: a solve-path package for the contracts checker.
package golden

import "sort"

// ScratchInto lacks the mandatory //krsp:noalloc: the coverage check must
// demand the annotation on every *_Into kernel in a solve-path package.
func ScratchInto(dst []int, n int) []int {
	_ = n
	return dst[:0]
}

// BuildInto funnels through a callee that allocates: the verifier must
// report at the make, one call deep.
//
//krsp:noalloc
func BuildInto(dst []int64, n int) []int64 {
	return fill(dst, n)
}

func fill(dst []int64, n int) []int64 {
	buf := make([]int64, n)
	copy(dst, buf)
	return dst[:0]
}

// SortInto leaves the module: sort is not on the allocation-safe list, so
// the call is unverifiable and must report.
//
//krsp:noalloc
func SortInto(xs []int) {
	sort.Ints(xs)
}

// Drain's callee spins on a condition-only loop with no poll and no bound
// of its own: the terminates verifier must report at the loop.
//
//krsp:terminates(golden: one queue item is consumed per pass)
func Drain(q []int) int {
	return drainLoop(q)
}

func drainLoop(q []int) int {
	i, n := 0, 0
	for i < len(q) {
		n += q[i]
		i++
	}
	return n
}

// Reduce's callee performs an order-sensitive write under map iteration in
// a package outside the detmap set: only the contract sees across the call.
//
//krsp:deterministic
func Reduce(m map[int]int) []int {
	return collect(m)
}

func collect(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
