// Package eventgolden is mounted at repro/internal/obs/rec/eventgolden by
// the analyzer self-tests: a rec-segment package with miniature Kind /
// KindInfo / Recorder types, so the event-catalogue audit runs without
// importing the real rec package.
package eventgolden

// Kind is the miniature event-kind enum.
type Kind uint8

const (
	// KindClean is catalogued and recorded: no diagnostics.
	KindClean Kind = iota
	// KindBadName has a malformed (non-kebab-case) wire name.
	KindBadName
	// KindDupA and KindDupB share a wire name.
	KindDupA
	KindDupB
	// KindMissing has no catalogue row.
	KindMissing
	// KindOrphan is catalogued but never passed to Record.
	KindOrphan
	// NumKinds bounds the enum (excluded from the audit).
	NumKinds
)

// KindInfo is the miniature catalogue row.
type KindInfo struct {
	Name string
	Doc  string
}

// kinds is the miniature catalogue table.
var kinds = [NumKinds]KindInfo{
	KindClean:   {Name: "clean-event", Doc: "ok"},
	KindBadName: {Name: "Bad_Event", Doc: "malformed wire name"},
	KindDupA:    {Name: "dup-event", Doc: "first holder of the name"},
	KindDupB:    {Name: "dup-event", Doc: "duplicate wire name"},
	KindOrphan:  {Name: "orphan-event", Doc: "never recorded"},
}

// Name exposes the table so it is not itself dead code.
func (k Kind) Name() string {
	if k >= NumKinds {
		return "unknown"
	}
	return kinds[k].Name
}

// Recorder is the miniature flight recorder.
type Recorder struct{ n int }

// Record appends one event.
func (r *Recorder) Record(k Kind, a0, a1, a2, a3 int64) {
	if r == nil {
		return
	}
	r.n++
}

// use exercises the Record call-site checks.
func use(r *Recorder, dyn Kind) {
	r.Record(KindClean, 0, 0, 0, 0)
	r.Record(KindBadName, 1, 0, 0, 0)
	r.Record(KindDupA, 0, 0, 0, 0)
	r.Record(KindDupB, 0, 0, 0, 0)
	r.Record(KindMissing, 0, 0, 0, 0)
	r.Record(dyn, 0, 0, 0, 0) // computed kind: undecodable events
}
