// Package nilgolden is mounted at repro/internal/obs/nilgolden by the
// analyzer self-tests: it imports the real obs and cancel packages, so the
// nilflow sink set and the engine's nilness lattice run against the actual
// contract types. Every site in this file must stay silent.
package nilgolden

import (
	"repro/internal/cancel"
	"repro/internal/obs"
)

// SpanNow reads the clock through a method call on a possibly-nil registry
// — the contract's sanctioned shape, exempt from the deref audit.
func SpanNow(r *obs.Registry) int64 {
	return r.Now()
}

// GuardedServer takes the server metric group behind an explicit guard: the
// engine proves r non-nil at the field dereference.
func GuardedServer(r *obs.Registry) *obs.ServerMetrics {
	if r == nil {
		return nil
	}
	return &r.Server
}

// PollAll counts cancellation hits through nil-safe canceller methods,
// silent on a possibly-nil receiver.
func PollAll(cn *cancel.Canceller, n int) int {
	hits := 0
	for i := 0; i < n; i++ {
		if cn.Poll() {
			hits++
		}
	}
	return hits
}
