// The violating half of the nilflow corpus: dereferences that bypass the
// method-level nil guards of the sink contract.
package nilgolden

import (
	"repro/internal/cancel"
	"repro/internal/obs"
)

// UnguardedServer reads a metric-group field off a possibly-nil registry —
// the field-dereference diagnostic.
func UnguardedServer(r *obs.Registry) *obs.ServerMetrics {
	return &r.Server
}

// CopyCanceller copies a possibly-nil canceller through a star dereference.
func CopyCanceller(cn *cancel.Canceller) cancel.Canceller {
	return *cn
}

// LostGuard guards the wrong pointer: a is checked, b is dereferenced.
func LostGuard(a, b *obs.Registry) *obs.ServerMetrics {
	if a == nil {
		return nil
	}
	return &b.Server
}
