// Package directive is mounted at repro/internal/golden/directive by the
// analyzer self-tests to prove that a reason-less allow is itself reported.
package directive

// Keys carries a malformed suppression: no reason after the analyzer name.
func Keys(m map[int]int) []int {
	var out []int
	//lint:allow detmap
	for k := range m {
		out = append(out, k)
	}
	return out
}
