package lockgolden

import "sync"

// Store is the clean counterpart: every access pattern lockcheck accepts.
type Store struct {
	mu sync.Mutex
	//krsp:guardedby(mu)
	items map[string]int
	// capHint is immutable after construction: justified, not annotated.
	capHint int //lint:allow lockcheck immutable after NewStore returns
}

// NewStore initializes guarded state through a constructor-fresh local:
// nothing else can hold a reference yet.
func NewStore(capHint int) *Store {
	s := &Store{capHint: capHint}
	s.items = make(map[string]int, capHint)
	return s
}

// Put writes under the deferred-unlock idiom.
func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = v
}

// Get reads under an early-unlock-and-return shape on the hit path.
func (s *Store) Get(k string) (int, bool) {
	s.mu.Lock()
	if v, ok := s.items[k]; ok {
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	return 0, false
}

// drop requires the lock held by the caller.
//
//krsp:locked(mu)
func (s *Store) drop(k string) {
	delete(s.items, k)
}

// Evict holds the lock across the locked-helper call.
func (s *Store) Evict(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drop(k)
}

// View pins the read-lock side of the RWMutex discipline.
type View struct {
	rw sync.RWMutex
	//krsp:guardedby(rw)
	rev int
}

// Rev reads rev under RLock: a read hold satisfies reads.
func (v *View) Rev() int {
	v.rw.RLock()
	defer v.rw.RUnlock()
	return v.rev
}

// Tick writes rev under the exclusive lock.
func (v *View) Tick() {
	v.rw.Lock()
	v.rev++
	v.rw.Unlock()
}
