// Package lockgolden is the lockcheck self-test corpus: bad.go pins the
// violating shapes (unlocked access, weak holds, missing coverage, bad
// directives), ok.go must stay silent.
package lockgolden

import "sync"

// Registry pins the field-level violations.
type Registry struct {
	mu sync.Mutex
	// count is the guarded request counter.
	//krsp:guardedby(mu)
	count int
	// names lacks an annotation and an allow: the coverage sweep flags it.
	names []string
	// tags names a non-mutex sibling as its lock: a directive diagnostic,
	// and the field then still lacks coverage.
	//krsp:guardedby(names)
	tags map[string]int
}

// Peek reads the guarded counter without the lock.
func (r *Registry) Peek() int {
	return r.count
}

// Bump writes the guarded counter without the lock.
func (r *Registry) Bump() {
	r.count++
}

// adjust requires the caller to hold r.mu.
//
//krsp:locked(mu)
func (r *Registry) adjust(d int) {
	r.count += d
}

// Misuse calls the locked helper without holding the lock.
func (r *Registry) Misuse() {
	r.adjust(2)
}

// Gauge pins the RWMutex write-vs-read distinction.
type Gauge struct {
	rw sync.RWMutex
	//krsp:guardedby(rw)
	val int
}

// Weaken writes val under a read lock only: not exclusive.
func (g *Gauge) Weaken() {
	g.rw.RLock()
	g.val = 3
	g.rw.RUnlock()
}

// Misplaced carries a guardedby on a function: a placement diagnostic.
//
//krsp:guardedby(mu)
func Misplaced() {}
