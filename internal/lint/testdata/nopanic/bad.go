// Package nopaniclib is mounted at repro/internal/golden/nopaniclib by the
// analyzer self-tests: a library path, so the nopanic rules apply.
package nopaniclib

import (
	"log"
	"os"
)

// Check panics on an input-dependent condition: must return an error.
func Check(x int) {
	if x < 0 {
		panic("negative input")
	}
}

// Die aborts the whole process from library code.
func Die() {
	log.Fatal("giving up")
}

// Quit exits from library code.
func Quit() {
	os.Exit(1)
}
