package nopaniclib

import "errors"

// CheckErr reports bad input as an error.
func CheckErr(x int) error {
	if x < 0 {
		return errors.New("negative input")
	}
	return nil
}

// mustInvariant keeps a true programmer-error invariant as an annotated
// panic.
func mustInvariant(ok bool) {
	if !ok {
		//lint:allow nopanic golden: corrupt internal state no input can reach
		panic("corrupt state")
	}
}
