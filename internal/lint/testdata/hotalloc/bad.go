// Package golden is mounted at repro/internal/core/golden by the analyzer
// self-tests: a solve-path package whose Solve* functions root the hotalloc
// reachability analysis.
package golden

// SumInto is the workspace variant of Sum.
func SumInto(dst []int64, xs []int64) []int64 {
	dst = dst[:0]
	var total int64
	for _, x := range xs {
		total += x
	}
	return append(dst, total)
}

// Sum is the allocating convenience wrapper; its own body is exempt.
func Sum(xs []int64) []int64 {
	return SumInto(nil, xs)
}

// Solve calls the allocating kernel and allocates per iteration.
func Solve(xs []int64, rounds int) int {
	n := 0
	for i := 0; i < rounds; i++ {
		r := Sum(xs)
		buf := make([]int64, len(xs))
		var acc []int64
		acc = append(acc, r...)
		n += len(buf) + len(acc)
	}
	return n
}
