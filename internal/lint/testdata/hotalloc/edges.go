package golden

import "repro/internal/graph"

// Route walks the graph the allocating way and the zero-copy way: Edges
// copies the whole edge slice per call and is banned in hot packages;
// EdgesView is the free alternative.
func Route(g *graph.Digraph) int {
	n := 0
	for _, e := range g.Edges() {
		n += int(e.Cost)
	}
	for _, e := range g.EdgesView() {
		n += int(e.Delay)
	}
	return n
}

// RouteAllowed documents a deliberate boundary copy.
func RouteAllowed(g *graph.Digraph) []graph.Edge {
	return g.Edges() //lint:allow hotalloc snapshot handed to the caller; mutation-safe copy is the point
}
