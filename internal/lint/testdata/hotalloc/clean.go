package golden

// SolveClean hoists scratch out of the loop and uses the Into kernel.
func SolveClean(xs []int64, rounds int) int {
	buf := make([]int64, len(xs))
	acc := make([]int64, 0, len(xs))
	n := 0
	for i := 0; i < rounds; i++ {
		r := SumInto(acc, xs)
		n += len(buf) + len(r)
	}
	return n
}

// SolveAnnotated documents a deliberate boundary allocation.
func SolveAnnotated(xs []int64) int {
	n := 0
	for i := 0; i < len(xs); i++ {
		out := Sum(xs) //lint:allow hotalloc golden: boundary allocation outside the hot loop
		n += len(out)
	}
	return n
}
