// Package seamgolden is mounted at repro/internal/fault/seamgolden by the
// analyzer self-tests: a fault-segment package with its own miniature
// Point/Registry pair, so the seam audit runs without importing the real
// fault package.
package seamgolden

// Point names one golden failpoint.
type Point int

// The golden catalogue: one fully wired point, one unarmed, one dead.
const (
	PointWired Point = iota
	PointUnarmed
	PointDead
	NumPoints // sentinel, excluded from the audit like fault.NumPoints
)

// Registry is a miniature fault registry.
type Registry struct {
	armed [NumPoints]bool
}

// Check consults a failpoint.
func (r *Registry) Check(p Point) error {
	if r != nil && r.armed[p] {
		return errInjected
	}
	return nil
}

// Arm arms a failpoint.
func (r *Registry) Arm(p Point) { r.armed[p] = true }

var errInjected = errorString("seamgolden: injected")

type errorString string

func (e errorString) Error() string { return string(e) }

// seams consults two of the three points; the computed argument is its own
// diagnostic, and PointDead is consulted nowhere.
func seams(r *Registry) {
	_ = r.Check(PointWired)
	_ = r.Check(PointUnarmed)
	_ = r.Check(Point(2))
}
