// Package seamgolden is mounted at repro/internal/fault/seamgolden by the
// analyzer self-tests: a fault-segment package with its own miniature
// Point/Registry pair, so the seam audit runs without importing the real
// fault package.
package seamgolden

// Point names one golden failpoint.
type Point int

// The golden catalogue: one fully wired point, one unarmed, one dead, and
// one consulted from inside a retry loop and armed via ArmFunc — the
// proxy-failover pattern (krspd's PointProxyDial/PointProxyRead).
const (
	PointWired Point = iota
	PointUnarmed
	PointDead
	PointRetryWired
	NumPoints // sentinel, excluded from the audit like fault.NumPoints
)

// Registry is a miniature fault registry.
type Registry struct {
	armed [NumPoints]bool
}

// Check consults a failpoint.
func (r *Registry) Check(p Point) error {
	if r != nil && r.armed[p] {
		return errInjected
	}
	return nil
}

// Arm arms a failpoint.
func (r *Registry) Arm(p Point) { r.armed[p] = true }

// ArmFunc installs a hook as the failure decision, like fault.ArmFunc.
func (r *Registry) ArmFunc(p Point, fn func() error) {
	r.armed[p] = true
	_ = fn
}

var errInjected = errorString("seamgolden: injected")

type errorString string

func (e errorString) Error() string { return string(e) }

// seams consults two of the three points; the computed argument is its own
// diagnostic, and PointDead is consulted nowhere.
func seams(r *Registry) {
	_ = r.Check(PointWired)
	_ = r.Check(PointUnarmed)
	_ = r.Check(Point(2))
}

// retrySeams consults a point from inside a bounded retry loop — the
// shape of a proxy failover path. The analyzer must see through the loop
// and credit the consultation like any other.
func retrySeams(r *Registry) error {
	for try := 0; try < 3; try++ {
		if err := r.Check(PointRetryWired); err != nil {
			continue
		}
		return nil
	}
	return errInjected
}
