package seamgolden

import "testing"

// TestWired arms the wired point; the analyzer's syntactic scan picks the
// constant name out of the Arm argument list. (This file is never compiled
// by the go tool — testdata is skipped — but the faultseam analyzer parses
// it to credit the arming.)
func TestWired(t *testing.T) {
	var r Registry
	r.Arm(PointWired)
	if err := r.Check(PointWired); err == nil {
		t.Fatal("want injected error")
	}
}

// TestRetryWired arms the retry-loop point through ArmFunc — the hook
// style krspd's proxy chaos tests use (fail N times, then recover) — and
// the analyzer must credit ArmFunc argument lists exactly like Arm's.
func TestRetryWired(t *testing.T) {
	var r Registry
	r.ArmFunc(PointRetryWired, func() error { return errInjected })
	if err := retrySeams(&r); err == nil {
		t.Fatal("want retries exhausted")
	}
}
