package seamgolden

import "testing"

// TestWired arms the wired point; the analyzer's syntactic scan picks the
// constant name out of the Arm argument list. (This file is never compiled
// by the go tool — testdata is skipped — but the faultseam analyzer parses
// it to credit the arming.)
func TestWired(t *testing.T) {
	var r Registry
	r.Arm(PointWired)
	if err := r.Check(PointWired); err == nil {
		t.Fatal("want injected error")
	}
}
