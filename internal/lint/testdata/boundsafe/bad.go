// The violating half of the boundsafe corpus: each function pins exactly
// one diagnostic shape — an undischargeable index, a missing contract on a
// CSR kernel, and an undischargeable slice expression.
package boundsgolden

import "repro/internal/graph"

// ScatterInto indexes dst with values read from raw — no guard, no typed
// ID, so the index diagnostic fires (raw[i] itself is interval-proven by
// the loop condition).
//
//krsp:noalloc
//krsp:inbounds
func ScatterInto(dst []int64, raw []int) {
	for i := 0; i < len(raw); i++ {
		dst[raw[i]] = 1
	}
}

// UncoveredScanInto is a CSR kernel without //krsp:inbounds — the coverage
// diagnostic fires on the declaration.
//
//krsp:noalloc
func UncoveredScanInto(dst []graph.NodeID, c *graph.CSR) {
	m := c.NumEdges()
	for i := 0; i < m; i++ {
		id := graph.EdgeID(i)
		dst[id] = c.Tail(id)
	}
}

// WindowInto reslices with unconstrained bounds — the slice diagnostic.
//
//krsp:noalloc
//krsp:inbounds
func WindowInto(dst []int64, lo, hi int) []int64 {
	return dst[lo:hi]
}
