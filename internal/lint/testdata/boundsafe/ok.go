// Package boundsgolden is mounted at repro/internal/shortest/boundsgolden
// by the analyzer self-tests: a solve-path package importing the real CSR
// type, so the boundsafe coverage sweep and all three discharge rules run
// exactly as they do over the production kernels. Every site in this file
// must be discharged and stay silent.
package boundsgolden

import "repro/internal/graph"

// HeadsInto records each edge's current head. Every index is a typed
// graph.EdgeID — the frozen-CSR axiom discharge.
//
//krsp:noalloc
//krsp:inbounds
func HeadsInto(dst []graph.NodeID, c *graph.CSR) {
	m := c.NumEdges()
	for i := 0; i < m; i++ {
		id := graph.EdgeID(i)
		dst[id] = c.Head(id)
	}
}

// RowMaxInto folds each frozen row of vals through the CSR row pattern
// offs[v]:offs[v+1] — the monotone-rows discharge on the slice, typed
// NodeIDs on the offset and destination indexes, and an interval proof on
// the inner scan.
//
//krsp:noalloc
//krsp:inbounds
func RowMaxInto(dst []int64, vals []int64, offs []int32, c *graph.CSR) {
	n := c.NumNodes()
	for v := graph.NodeID(0); int(v) < n; v++ {
		row := vals[offs[v]:offs[v+1]]
		best := int64(0)
		for i := 0; i < len(row); i++ {
			if row[i] > best {
				best = row[i]
			}
		}
		dst[v] = best
	}
}

// ClampInto writes through an explicitly range-checked index — the pure
// interval discharge, no typed IDs involved.
//
//krsp:noalloc
//krsp:inbounds
func ClampInto(dst []int64, i int) {
	if i < 0 || i >= len(dst) {
		return
	}
	dst[i] = 1
}
