// Package dataflow is the golden corpus for the abstract interpreter: each
// function is analyzed directly by dataflow_test.go, which pins the hook
// verdicts (index proofs, binary ranges, pointer nilness) per line.
package dataflow

const maxW = 1 << 30

// LoopIndex's access is proven by the loop condition: 0 ≤ i < len(s).
func LoopIndex(s []int64) int64 {
	var sum int64
	for i := 0; i < len(s); i++ {
		sum += s[i] // PROVEN
	}
	return sum
}

// LoopIndexOff walks one past the bound; the proof must fail.
func LoopIndexOff(s []int64) int64 {
	var sum int64
	for i := 0; i+1 < len(s); i++ {
		sum += s[i+1] // PROVEN (i+1 ≤ len(s)-1 from the shifted condition)
	}
	return sum
}

// Overrun reads s[i+1] under the plain condition; not provable.
func Overrun(s []int64) int64 {
	var sum int64
	for i := 0; i < len(s); i++ {
		sum += s[i+1] // NOT PROVEN
	}
	return sum
}

// LenAlias bounds the loop against n := len(s); the alias fact carries the
// proof.
func LenAlias(s []int64) int64 {
	n := len(s)
	var sum int64
	for i := 0; i < n; i++ {
		sum += s[i] // PROVEN
	}
	return sum
}

// RangeIndex: the range key proves s[i]; nothing relates i to len(d).
func RangeIndex(s, d []int64) {
	for i := range s {
		d[i] = s[i] // d[i] NOT PROVEN, s[i] PROVEN
	}
}

// Clamp: both operands are range-checked, so the sum is provably within
// [0, 2^31].
func Clamp(a, w int64) int64 {
	if w < 0 || w > maxW {
		return 0
	}
	if a < 0 || a > maxW {
		return 0
	}
	return a + w // in [0, 2^31]
}

// Unbounded adds two arbitrary int64s; the result interval must be top.
func Unbounded(a, w int64) int64 {
	return a + w // top
}

func nine() int64 { return 9 }

// UsesSummary relies on the interprocedural return summary of nine.
func UsesSummary(a int64) int64 {
	if a < 0 || a > 100 {
		return 0
	}
	return a + nine() // in [9, 109]
}

type box struct{ v int64 }

// NilGuard dereferences only after the nil check.
func NilGuard(b *box) int64 {
	if b == nil {
		return 0
	}
	return b.v // NON-NIL
}

// NilMaybe dereferences an unchecked pointer.
func NilMaybe(b *box) int64 {
	return b.v // MAYBE-NIL
}

// GotoDegrade uses goto, which the IR builder does not model; the engine
// must degrade to type-only facts and fail the proof rather than lie.
func GotoDegrade(s []int64) int64 {
	i := 0
loop:
	if i >= len(s) {
		return 0
	}
	_ = s[i] // NOT PROVEN (degraded)
	i++
	goto loop
}

// SliceHead takes a guarded prefix; the upper bound fact carries the proof.
func SliceHead(s []int64, hi int) []int64 {
	if hi < 0 || hi > len(s) {
		return nil
	}
	return s[:hi] // PROVEN
}

// SliceWindow slices [i, i+1) under the loop bound; both ends decompose to
// the same base variable, so low ≤ high is structural.
func SliceWindow(s []int64) {
	for i := 0; i < len(s); i++ {
		_ = s[i : i+1] // PROVEN
	}
}

// SliceUnproven has no relation between the offsets and the slice.
func SliceUnproven(s []int64, lo, hi int) []int64 {
	return s[lo:hi] // NOT PROVEN
}
