package mixlib

import (
	"sync"
	"sync/atomic"
)

// calls is all-atomic: one discipline, no diagnostics.
var calls int64

// Tally bumps atomically.
func Tally() { atomic.AddInt64(&calls, 1) }

// Total reads atomically.
func Total() int64 { return atomic.LoadInt64(&calls) }

// resets is cleared plainly during single-threaded setup: justified.
var resets int64

// Reset runs before any goroutine starts.
func Reset() {
	resets = 0 //lint:allow atomicmix single-threaded setup, no concurrent readers yet
}

// CountReset bumps atomically on the concurrent path.
func CountReset() { atomic.AddInt64(&resets, 1) }

// Guard is the clean lock discipline: deferred and all-paths unlocks.
type Guard struct {
	mu sync.Mutex
	n  int
}

// Inc uses the deferred unlock.
func (g *Guard) Inc() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// Add unlocks on both paths before returning.
func (g *Guard) Add(d int) int {
	g.mu.Lock()
	if d == 0 {
		g.mu.Unlock()
		return 0
	}
	g.n += d
	out := g.n
	g.mu.Unlock()
	return out
}
