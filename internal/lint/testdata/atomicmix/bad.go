// Package mixlib is the atomicmix self-test corpus: bad.go pins mixed
// atomic/plain access, double-checked locking and the lock leak; ok.go
// must stay silent.
package mixlib

import (
	"sync"
	"sync/atomic"
)

// hits is updated atomically by Record but read plainly by Report.
var hits int64

// Record bumps the counter atomically.
func Record() {
	atomic.AddInt64(&hits, 1)
}

// Report reads the same counter without atomics: no ordering at all.
func Report() int64 {
	return hits
}

// Box pins double-checked locking and the lock leak.
type Box struct {
	mu    sync.Mutex
	ready bool
	bad   bool
}

// Init is the classic double-checked initialization race.
func (b *Box) Init() {
	if !b.ready {
		b.mu.Lock()
		if !b.ready {
			b.ready = true
		}
		b.mu.Unlock()
	}
}

// Leak returns early with the lock still held.
func (b *Box) Leak() {
	b.mu.Lock()
	if b.bad {
		return
	}
	b.mu.Unlock()
}
