package golden

// PathCost accumulates an int64 weight with no visible bound: the loop
// widens the total to +∞, so the engine reports it unprovable.
func PathCost(costs []int64) int64 {
	var total int64
	for _, cost := range costs {
		total += cost
	}
	return total
}

// ScaleDelay multiplies two unconstrained weight quantities.
func ScaleDelay(delay, factor int64) int64 {
	return delay * factor
}

// TotalDelay documents its real bound with a suppression.
func TotalDelay(delays []int64) int64 {
	var total int64
	for _, delay := range delays {
		total += delay //lint:allow weightovf golden: inputs capped far below 2^62
	}
	return total
}
