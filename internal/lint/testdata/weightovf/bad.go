// Package golden is mounted at repro/internal/rsp/golden by the analyzer
// self-tests: a solver package, so the weightovf rules apply.
package golden

// PathCost accumulates an int64 weight without any visible bound.
func PathCost(costs []int64) int64 {
	var total int64
	for _, cost := range costs {
		total += cost
	}
	return total
}

// ScaleDelay multiplies two weight quantities without a guard.
func ScaleDelay(delay, factor int64) int64 {
	return delay * factor
}
