// Package golden is mounted at repro/internal/rsp/golden by the analyzer
// self-tests: a solver package, so the weightovf rules apply. This file is
// the range-proven third of the precision corpus — every site here must be
// proven safe by the dataflow engine and stay silent.
package golden

const maxWeight = 1 << 30 // mirrors graph.MaxWeight, Instance.Validate's cap

// BoundedCost range-checks both operands against the MaxWeight cap; the
// engine proves the sum within [0, 2^31].
func BoundedCost(cost, add int64) int64 {
	if cost < 0 || cost > maxWeight || add < 0 || add > maxWeight {
		return 0
	}
	return cost + add
}

// ScaledLayer multiplies two capped weights: 2^30 · 2^30 = 2^60 < 2^62.
func ScaledLayer(cost, delay int64) int64 {
	if cost < 0 || cost > maxWeight || delay < 0 || delay > maxWeight {
		return 0
	}
	return cost * delay
}

// Tick's small-constant increment is exempt by construction.
func Tick(cost int64) int64 {
	return cost + 1
}

func capWeight(w int64) int64 {
	if w < 0 {
		return 0
	}
	if w > maxWeight {
		return maxWeight
	}
	return w
}

// SummedCaps adds through the interprocedural summary of capWeight.
func SummedCaps(cost, delay int64) int64 {
	return capWeight(cost) + capWeight(delay)
}
