package golden

import "math"

// BoundedCost visibly guards against the sentinel range before adding.
func BoundedCost(cost, add int64) int64 {
	if cost > math.MaxInt64/4 || add > math.MaxInt64/4 {
		return math.MaxInt64 / 2
	}
	return cost + add
}

// Tick's small-constant increment is exempt by construction.
func Tick(cost int64) int64 {
	return cost + 1
}

// TotalDelay documents its bound with a suppression.
func TotalDelay(delays []int64) int64 {
	var total int64
	for _, delay := range delays {
		total += delay //lint:allow weightovf golden: inputs capped far below 2^62
	}
	return total
}
