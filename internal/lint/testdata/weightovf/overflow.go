package golden

// SaturatedDouble doubles a weight already past 2^62: every evaluation
// wraps, which the engine reports as a certain overflow.
func SaturatedDouble(cost int64) int64 {
	if cost < 1<<62 {
		return cost
	}
	return cost + cost
}
