package lifelib

import "sync"

// consume drains one item.
func consume(int) {}

// RunOnce is loop-free: the body terminates by construction.
func RunOnce() {
	go func() {
		work()
	}()
}

// Serve spawns a worker that shuts down on a channel receive.
func Serve(stop chan struct{}, in chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-in:
				consume(v)
			}
		}
	}()
}

// Drain ranges over the channel: the producer's close is the signal.
func Drain(in chan int) {
	go func() {
		for v := range in {
			consume(v)
		}
	}()
}

// pump loops with a range receive; Start spawns it by name.
func pump(in chan int) {
	for v := range in {
		consume(v)
	}
}

// Start spawns the named module-local pump.
func Start(in chan int) {
	go pump(in)
}

// Launch spawns through a local function-literal variable.
func Launch() {
	hop := func() { work() }
	go hop()
}

// Fan joins its workers through the WaitGroup it waits on: the
// condition-only countdown loop needs no receive because the spawner
// blocks on the join.
func Fan(jobs []int) {
	out := make([]int, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := jobs[i]
			for n > 0 {
				n--
			}
			out[i] = n
		}(i)
	}
	wg.Wait()
}

// Beacon intentionally outlives its spawner.
//
//krsp:detached(heartbeat runs for the process lifetime by design)
func Beacon() {
	go func() {
		for {
			work()
		}
	}()
}

// Spin is a deliberate busy-wait kept for the corpus: suppressed inline.
func Spin() {
	//lint:allow gorolife drained externally by the bench harness
	go func() {
		for {
			work()
		}
	}()
}
