// Package lifelib is the gorolife self-test corpus: bad.go pins the
// leak-prone spawns and the stale waiver, ok.go must stay silent.
package lifelib

// work is an opaque sink.
func work() {}

// SpinForever spawns a worker with a bare loop and no shutdown signal.
func SpinForever() {
	go func() {
		for {
			work()
		}
	}()
}

// SpawnOpaque spawns a function value the analyzer cannot resolve to a
// body.
func SpawnOpaque(f func()) {
	go f()
}

// Stale carries a detached waiver but spawns nothing.
//
//krsp:detached(claims a detached worker that no longer exists)
func Stale() {}
