// Package golden is mounted at repro/internal/graph/golden by the analyzer
// self-tests, so the detmap rules for deterministic packages apply.
package golden

// collectKeys appends under map iteration: output order is run-dependent.
func collectKeys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// firstKey returns mid-iteration: the chosen key is run-dependent.
func firstKey(m map[int]int) (int, bool) {
	for k := range m {
		return k, true
	}
	return 0, false
}

// pickMax assigns an outer variable under map iteration; ties resolve in a
// run-dependent order.
func pickMax(m map[int]int) int {
	best := -1
	for k, v := range m {
		if v > 0 {
			best = k
		}
	}
	return best
}
