package golden

// count accumulates with an order-insensitive counter.
func count(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// invert writes into a map: insertion order does not matter.
func invert(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// keysUnsorted demonstrates a justified suppression: the caller sorts.
func keysUnsorted(m map[int]int) []int {
	out := make([]int, 0, len(m))
	//lint:allow detmap golden: collection order is erased by the caller's sort
	for k := range m {
		out = append(out, k)
	}
	return out
}
