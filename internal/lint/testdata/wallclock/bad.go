// Package clock is mounted at repro/internal/golden/clock by the analyzer
// self-tests: a library path, so the wallclock rules apply.
package clock

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock from library code.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Roll draws from the process-global random source.
func Roll() int {
	return rand.Intn(6)
}
