package clock

import "math/rand"

// RollSeeded draws from an injected seed: deterministic and allowed.
func RollSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}
