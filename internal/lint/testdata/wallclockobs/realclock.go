// Package golden is mounted at repro/internal/obs/golden by the analyzer
// self-tests. This file is named realclock.go, so the wallclock analyzer
// must skip it entirely: it models the sanctioned bridge that adapts the
// process clock into the injected obs.Clock interface.
package golden

import "time"

var procStart = time.Now()

// RealClock reads monotonic nanoseconds since process start.
type RealClock struct{}

// Now implements the Clock interface on the real process clock.
func (RealClock) Now() int64 { return time.Since(procStart).Nanoseconds() }
