package golden

import "time"

// Elapsed reads the wall clock outside the sanctioned realclock.go file:
// the exemption is per-file, not per-package, so this must still report.
func Elapsed(start time.Time) int64 {
	return time.Since(start).Nanoseconds()
}
