package lint

import (
	"math"
	"testing"
)

func TestIntervalLattice(t *testing.T) {
	a := ivRange(0, 10)
	b := ivRange(5, 20)
	if j := a.join(b); !j.eq(ivRange(0, 20)) {
		t.Errorf("join = %v", j)
	}
	if m := a.meet(b); !m.eq(ivRange(5, 10)) {
		t.Errorf("meet = %v", m)
	}
	if m := ivRange(0, 3).meet(ivRange(5, 9)); !m.bot {
		t.Errorf("disjoint meet = %v, want ⊥", m)
	}
	if j := ivBot().join(a); !j.eq(a) {
		t.Errorf("⊥ join = %v", j)
	}
	if !ivBot().within(0, 0) {
		t.Error("⊥ must be vacuously within any range")
	}
	if ivTop().within(math.MinInt64, math.MaxInt64) {
		t.Error("top must not be within: an unbounded end is never a proof")
	}
	if !ivRange(2, 5).within(0, 10) || ivRange(2, 50).within(0, 10) {
		t.Error("within misjudges finite ranges")
	}
}

func TestIntervalWiden(t *testing.T) {
	// A growing upper bound jumps to the next architecture threshold; the
	// stable lower bound stays exact.
	w := ivRange(0, 1).widen(ivRange(0, 2))
	if !w.eq(ivRange(0, int64(1)<<30)) {
		t.Errorf("widen(hi 1→2) = %v, want [0,2^30]", w)
	}
	w = ivRange(0, int64(1)<<30).widen(ivRange(0, int64(1)<<30+1))
	if !w.eq(ivRange(0, int64(1)<<31)) {
		t.Errorf("widen past 2^30 = %v, want [0,2^31]", w)
	}
	// Unchanged bounds must not widen at all.
	w = ivRange(3, 7).widen(ivRange(3, 7))
	if !w.eq(ivRange(3, 7)) {
		t.Errorf("widen(stable) = %v", w)
	}
}

func TestIntervalArith(t *testing.T) {
	if s := ivRange(1, 2).add(ivRange(10, 20)); !s.eq(ivRange(11, 22)) {
		t.Errorf("add = %v", s)
	}
	// Saturation: an end that may wrap becomes unbounded, never a wrapped lie.
	s := ivConst(math.MaxInt64).add(ivConst(1))
	if s.hasHi() {
		t.Errorf("overflowing add kept a finite hi: %v", s)
	}
	if p := ivRange(-3, 4).mul(ivRange(-2, 5)); !p.eq(ivRange(-15, 20)) {
		t.Errorf("mul = %v", p)
	}
	p := ivConst(int64(1) << 40).mul(ivConst(int64(1) << 40))
	if p.hasHi() {
		t.Errorf("overflowing mul kept a finite hi: %v", p)
	}
	if n := ivRange(-5, 3).neg(); !n.eq(ivRange(-3, 5)) {
		t.Errorf("neg = %v", n)
	}
	if n := ivConst(math.MinInt64).neg(); n.hasHi() {
		t.Errorf("neg(MinInt64) kept a finite hi: %v", n)
	}
	if s := ivConst(1).shl(ivConst(30)); !s.eq(ivConst(1 << 30)) {
		t.Errorf("shl = %v", s)
	}
	if d := ivDiv(ivRange(-10, 100), ivRange(2, 5)); !d.eq(ivRange(-5, 50)) {
		t.Errorf("div = %v", d)
	}
	if r := ivRem(ivRange(0, 1000), ivConst(7)); !r.eq(ivRange(0, 6)) {
		t.Errorf("rem = %v", r)
	}
	if m := ivMin(ivRange(0, 10), ivRange(5, 7)); !m.eq(ivRange(0, 7)) {
		t.Errorf("min = %v", m)
	}
	if m := ivMax(ivRange(0, 10), ivRange(5, 7)); !m.eq(ivRange(5, 10)) {
		t.Errorf("max = %v", m)
	}
}
