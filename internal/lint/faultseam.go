package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Faultseam audits the fault-injection registry end to end. internal/fault
// declares the Point enum; the value of a failpoint is zero unless (a) the
// solve path actually consults it at a seam and (b) at least one test arms
// it — an unconsulted point is dead configuration, an unarmed one is a seam
// the chaos suite silently stopped exercising.
//
//  1. Every Point constant (NumPoints excluded) must appear as the argument
//     of at least one Registry.Check call in the loaded program.
//  2. Every Check call site must pass a named Point constant — a computed
//     or literal argument defeats the greppable catalogue DESIGN.md §10
//     promises.
//  3. Every Point constant must be armed (Arm/ArmPanic/ArmFunc) by at least
//     one _test.go file. Test files are outside the type-checked load, so
//     this check is syntactic: the analyzer parses _test.go files from the
//     requested packages' directories and looks for the constant's name in
//     an Arm* argument list.
var Faultseam = &Analyzer{
	Name:       "faultseam",
	Doc:        "fault points must be consulted at a seam, named by constant, and armed by at least one test",
	RunProgram: runFaultseam,
}

func runFaultseam(pass *Pass) {
	prog := pass.Prog

	// Phase 1: the Point catalogue, from requested fault-segment packages.
	type pointConst struct {
		obj  *types.Const
		pos  token.Pos
		pkg  *Package
		used bool
	}
	var points []*pointConst
	byObj := map[types.Object]*pointConst{}
	for _, pkg := range prog.Requested {
		if !pathHasSegment(pkg.Path, "fault") {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || strings.HasPrefix(name, "Num") {
				continue
			}
			if !isFaultPoint(c.Type()) {
				continue
			}
			points = append(points, &pointConst{obj: c, pos: c.Pos(), pkg: pkg})
			byObj[c] = points[len(points)-1]
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].pos < points[j].pos })

	// Phase 2: Check call sites across requested packages. The argument must
	// resolve (possibly through a local const or selector) to a catalogued
	// Point constant.
	for _, pkg := range prog.Requested {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Check" {
					return true
				}
				fn, ok := pkg.Info.ObjectOf(sel.Sel).(*types.Func)
				if !ok {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Params().Len() != 1 || !isFaultPoint(sig.Params().At(0).Type()) {
					return true
				}
				obj := constObjOf(pkg.Info, call.Args[0])
				pc := byObj[obj]
				if pc == nil {
					pass.Reportf(call.Args[0].Pos(),
						"fault Check argument must be a registered Point constant so the failpoint catalogue stays greppable")
					return true
				}
				pc.used = true
				return true
			})
		}
	}

	// Phase 3: syntactic arm scan over _test.go files of every requested
	// package directory (the loader skips test files by design).
	armed := map[string]bool{}
	dirs := map[string]bool{}
	for _, pkg := range prog.Requested {
		dirs[pkg.Dir] = true
	}
	sortedDirs := make([]string, 0, len(dirs))
	for d := range dirs {
		sortedDirs = append(sortedDirs, d)
	}
	sort.Strings(sortedDirs)
	for _, dir := range sortedDirs {
		collectArmedPoints(dir, armed)
	}

	for _, pc := range points {
		name := pc.obj.Name()
		if !pc.used {
			pass.Reportf(pc.pos, "fault point %s is never consulted by a Registry.Check seam on the solve path", name)
			continue
		}
		if !armed[name] {
			pass.Reportf(pc.pos, "fault point %s is consulted but never armed (Arm/ArmPanic/ArmFunc) by any test; the seam is unexercised", name)
		}
	}
}

// isFaultPoint reports whether t is a type named Point declared in a
// fault-segment package.
func isFaultPoint(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Point" && obj.Pkg() != nil && pathHasSegment(obj.Pkg().Path(), "fault")
}

// constObjOf resolves an expression to the constant object it names, or nil.
func constObjOf(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if c, ok := info.ObjectOf(e).(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := info.ObjectOf(e.Sel).(*types.Const); ok {
			return c
		}
	case *ast.ParenExpr:
		return constObjOf(info, e.X)
	}
	return nil
}

// collectArmedPoints parses each _test.go file in dir (comments stripped,
// no type check) and records every identifier appearing inside the argument
// list of an Arm/ArmPanic/ArmFunc call.
func collectArmedPoints(dir string, armed map[string]bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee string
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = fun.Name
			case *ast.SelectorExpr:
				callee = fun.Sel.Name
			}
			switch callee {
			case "Arm", "ArmPanic", "ArmFunc":
			default:
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						armed[id.Name] = true
					}
					return true
				})
			}
			return true
		})
	}
}
