package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path the package was loaded under. Analyzer
	// applicability is decided from it (see pathHasSegment).
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a set of packages sharing one FileSet, one type universe and
// one import cache. Analyzers that need whole-program information (the
// hotalloc call graph) see every module-local package ever loaded through
// the program, including dependencies of the requested ones.
type Program struct {
	Fset *token.FileSet
	// Packages lists every module-local package loaded, in load order.
	// Dependencies appear here too; Requested marks the analysis targets.
	Packages  []*Package
	Requested []*Package

	modRoot string
	modPath string
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool

	callGraph   *callGraph     // lazily built, shared by hotalloc/ctxpoll/contracts
	contractIdx *contractIndex // lazily built //krsp: annotation index
	df          *dfEngine      // lazily built dataflow engine (weightovf/boundsafe/nilflow)
}

// NewProgram prepares a loader rooted at the module containing dir.
// The module path is read from go.mod; stdlib imports are type-checked
// from GOROOT source, so no network or module cache is needed.
func NewProgram(dir string) (*Program, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Program{
		Fset:    fset,
		modRoot: root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// ModuleRoot returns the directory containing go.mod.
func (p *Program) ModuleRoot() string { return p.modRoot }

// LoadAll walks the module and loads every package outside testdata,
// vendor and hidden directories, marking all of them as requested.
func (p *Program) LoadAll() error {
	var dirs []string
	err := filepath.WalkDir(p.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != p.modRoot && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		rel, err := filepath.Rel(p.modRoot, dir)
		if err != nil {
			return err
		}
		importPath := p.modPath
		if rel != "." {
			importPath = p.modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := p.load(dir, importPath)
		if err != nil {
			return err
		}
		p.Requested = append(p.Requested, pkg)
	}
	return nil
}

// LoadDirAs loads a single directory under an explicit import path and
// marks it requested. Self-tests use it to mount golden packages at paths
// that trigger the analyzer applicability rules (e.g. a testdata directory
// loaded as "repro/internal/graph/golden" gets the detmap treatment).
func (p *Program) LoadDirAs(dir, importPath string) (*Package, error) {
	pkg, err := p.load(dir, importPath)
	if err != nil {
		return nil, err
	}
	p.Requested = append(p.Requested, pkg)
	return pkg, nil
}

// load parses and type-checks one directory, caching by import path.
func (p *Program) load(dir, importPath string) (*Package, error) {
	if pkg, ok := p.cache[importPath]; ok {
		return pkg, nil
	}
	if p.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	p.loading[importPath] = true
	defer delete(p.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: p}
	tpkg, err := conf.Check(importPath, p.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	p.cache[importPath] = pkg
	p.Packages = append(p.Packages, pkg)
	return pkg, nil
}

// Import implements types.Importer: module-local paths resolve against the
// module root; everything else is delegated to the GOROOT source importer.
func (p *Program) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == p.modPath || strings.HasPrefix(path, p.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, p.modPath), "/")
		dir := filepath.Join(p.modRoot, filepath.FromSlash(rel))
		pkg, err := p.load(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return p.std.Import(path)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
