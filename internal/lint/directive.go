package lint

import (
	"fmt"
	"strings"
)

// This file is the single parser for the project's two comment-directive
// families:
//
//	//lint:allow <analyzer> <reason>      suppress one diagnostic site
//	//krsp:noalloc                        contract: steady-state zero-alloc
//	//krsp:terminates(<reason>)           contract: bounded / cancellable
//	//krsp:deterministic                  contract: run-independent output
//	//krsp:inbounds                       contract: proven index arithmetic
//	//krsp:guardedby(<field>)             contract: field accessed under lock
//	//krsp:locked(<field>)                contract: method requires lock held
//	//krsp:detached(<reason>)             contract: goroutine outlives spawner
//
// Both grammars are strict: a directive that almost parses is a diagnostic,
// never a silent no-op (a typo'd contract would otherwise quietly stop
// being checked). FuzzDirectiveParser exercises the parsers against
// arbitrary comment text.

const (
	allowPrefix    = "//lint:allow"
	contractPrefix = "//krsp:"
)

// Contract enumerates the checked //krsp: contract kinds.
type Contract int

const (
	// ContractNoAlloc asserts the function performs no steady-state heap
	// allocation: no make/append/new/map-insert/closure-creation anywhere in
	// the transitive closure of its statically-resolved module-local callees
	// (deliberate amortized growth sites carry //lint:allow contracts).
	ContractNoAlloc Contract = iota
	// ContractTerminates asserts every loop the function can reach is
	// structurally bounded or polls the Canceller; the mandatory reason
	// documents the bound for the function's own loops.
	ContractTerminates
	// ContractDeterministic asserts the function's transitive closure reads
	// no wall clock or global randomness and performs no order-sensitive
	// work under map iteration.
	ContractDeterministic
	// ContractInBounds asserts every slice/array index and slice expression
	// in the function body is proven in range by the boundsafe dataflow
	// analyzer (CSR row-offset monotonicity, typed NodeID/EdgeID indices, or
	// interval facts); unproven sites are diagnostics, and `krsplint -bce`
	// additionally requires the compiler to eliminate the bounds checks.
	ContractInBounds
	// ContractGuardedBy, on a struct field, asserts every read and write of
	// the field holds the named sibling sync.Mutex/RWMutex (writes need the
	// write lock; reads accept RLock). Verified path-sensitively by the
	// lockcheck analyzer; the argument names the lock field.
	ContractGuardedBy
	// ContractLocked, on a method, asserts the named receiver lock is
	// already held by every caller: the body is analyzed with the lock in
	// the entry lock-set, and each call site must prove it holds the lock.
	ContractLocked
	// ContractDetached, on a function containing a go statement, waives the
	// gorolife termination-signal obligation for the goroutines it spawns;
	// the mandatory reason documents why outliving the spawner is safe.
	ContractDetached
)

func (c Contract) String() string {
	switch c {
	case ContractNoAlloc:
		return "noalloc"
	case ContractTerminates:
		return "terminates"
	case ContractDeterministic:
		return "deterministic"
	case ContractInBounds:
		return "inbounds"
	case ContractGuardedBy:
		return "guardedby"
	case ContractLocked:
		return "locked"
	case ContractDetached:
		return "detached"
	}
	return fmt.Sprintf("contract-%d", int(c))
}

// parseAllow parses one comment line as a //lint:allow directive.
// ok=false means the comment is not an allow directive at all; err is set
// when it is one but malformed (missing analyzer or mandatory reason).
func parseAllow(text string) (analyzer, reason string, ok bool, err error) {
	rest, found := strings.CutPrefix(text, allowPrefix)
	if !found {
		return "", "", false, nil
	}
	// "//lint:allowx" is not the directive; require a separator (or EOL,
	// which the field check below rejects as malformed).
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", "", true, fmt.Errorf("malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" (reason is mandatory)")
	}
	return fields[0], strings.Join(fields[1:], " "), true, nil
}

// parseContract parses one comment line as a //krsp: contract directive.
// ok=false means the comment does not carry the //krsp: prefix; err is set
// for a prefixed comment that does not parse (unknown verb, missing or
// empty terminates reason, trailing junk).
func parseContract(text string) (c Contract, reason string, ok bool, err error) {
	rest, found := strings.CutPrefix(text, contractPrefix)
	if !found {
		return 0, "", false, nil
	}
	rest = strings.TrimSpace(rest)
	switch {
	case rest == "noalloc":
		return ContractNoAlloc, "", true, nil
	case rest == "deterministic":
		return ContractDeterministic, "", true, nil
	case rest == "terminates":
		return 0, "", true, fmt.Errorf("malformed //krsp:terminates: want //krsp:terminates(<reason>) — the bound is mandatory")
	case strings.HasPrefix(rest, "terminates"):
		arg := strings.TrimPrefix(rest, "terminates")
		if !strings.HasPrefix(arg, "(") || !strings.HasSuffix(arg, ")") {
			return 0, "", true, fmt.Errorf("malformed //krsp:terminates: want //krsp:terminates(<reason>)")
		}
		reason = strings.TrimSpace(arg[1 : len(arg)-1])
		if reason == "" {
			return 0, "", true, fmt.Errorf("malformed //krsp:terminates: the reason inside the parentheses must be non-empty")
		}
		return ContractTerminates, reason, true, nil
	case rest == "inbounds":
		return ContractInBounds, "", true, nil
	case rest == "guardedby" || strings.HasPrefix(rest, "guardedby"):
		return parseContractArg(rest, "guardedby", ContractGuardedBy, "the guarding lock field is mandatory", true)
	case rest == "locked" || strings.HasPrefix(rest, "locked"):
		return parseContractArg(rest, "locked", ContractLocked, "the required lock field is mandatory", true)
	case rest == "detached" || strings.HasPrefix(rest, "detached"):
		return parseContractArg(rest, "detached", ContractDetached, "the reason is mandatory", false)
	case rest == "noalloc()" || strings.HasPrefix(rest, "noalloc("):
		return 0, "", true, fmt.Errorf("malformed //krsp:noalloc: the contract takes no argument")
	case rest == "deterministic()" || strings.HasPrefix(rest, "deterministic("):
		return 0, "", true, fmt.Errorf("malformed //krsp:deterministic: the contract takes no argument")
	case rest == "inbounds()" || strings.HasPrefix(rest, "inbounds("):
		return 0, "", true, fmt.Errorf("malformed //krsp:inbounds: the contract takes no argument")
	default:
		verb := rest
		if i := strings.IndexAny(verb, "( \t"); i >= 0 {
			verb = verb[:i]
		}
		return 0, "", true, fmt.Errorf("unknown //krsp: contract %q (want noalloc, terminates(<reason>), deterministic, inbounds, guardedby(<field>), locked(<field>) or detached(<reason>))", verb)
	}
}

// parseContractArg parses the `verb(<arg>)` contract forms that carry a
// mandatory argument (terminates has bespoke wording and stays inline
// above). fieldArg additionally requires the argument to be a single Go
// identifier — guardedby/locked name a struct field, not free text.
func parseContractArg(rest, verb string, kind Contract, missing string, fieldArg bool) (Contract, string, bool, error) {
	arg := strings.TrimPrefix(rest, verb)
	if arg == "" {
		return 0, "", true, fmt.Errorf("malformed //krsp:%s: want //krsp:%s(<%s>) — %s",
			verb, verb, argName(fieldArg), missing)
	}
	if !strings.HasPrefix(arg, "(") || !strings.HasSuffix(arg, ")") {
		return 0, "", true, fmt.Errorf("malformed //krsp:%s: want //krsp:%s(<%s>)", verb, verb, argName(fieldArg))
	}
	val := strings.TrimSpace(arg[1 : len(arg)-1])
	if val == "" {
		return 0, "", true, fmt.Errorf("malformed //krsp:%s: the %s inside the parentheses must be non-empty", verb, argName(fieldArg))
	}
	if fieldArg && !isGoIdent(val) {
		return 0, "", true, fmt.Errorf("malformed //krsp:%s: %q is not a field name (want a single Go identifier)", verb, val)
	}
	return kind, val, true, nil
}

func argName(fieldArg bool) string {
	if fieldArg {
		return "field"
	}
	return "reason"
}

// isGoIdent reports whether s is a plain Go identifier (ASCII letters,
// digits, underscore; no leading digit) — the field-name grammar for
// guardedby/locked arguments.
func isGoIdent(s string) bool {
	for i, r := range s {
		switch {
		case r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z'):
		case '0' <= r && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}
