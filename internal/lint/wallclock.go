package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// Wallclock forbids wall-clock reads and globally-seeded randomness outside
// cmd/ and the internal/exp timing harness. A library that consults
// time.Now or the process-global rand source produces run-dependent results
// and defeats the determinism tests; randomness must flow from an injected
// seed (rand.New(rand.NewSource(seed)) is fine and is what every generator
// does). Measurement code belongs in internal/exp or cmd/.
//
// One file is exempt: realclock.go inside an obs package. It is the
// sanctioned bridge that turns the wall clock into an injected obs.Clock at
// the cmd/ edge; every other package receives time through that interface,
// so the determinism argument is preserved (see DESIGN.md §9).
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now and unseeded math/rand outside cmd/, internal/exp and obs/realclock.go",
	AppliesTo: func(path string) bool {
		return !pathHasSegment(path, "cmd") && !pathHasSegment(path, "examples") &&
			!pathHasSegment(path, "exp") && !pathHasSegment(path, "main")
	},
	Run: runWallclock,
}

// wallclockFuncs are the forbidden package-level functions. For math/rand,
// everything except the explicit-source constructors draws from the global
// (wall-clock-ish) source.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}
var randSeededCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runWallclock(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// The obs package's realclock.go is the single sanctioned
		// wall-clock read: it adapts time.Since(start) into the injected
		// Clock interface consumed everywhere else.
		if pathHasSegment(pass.Pkg.Path, "obs") &&
			filepath.Base(pass.Prog.Fset.Position(f.Pos()).Filename) == "realclock.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.ObjectOf(pkgID).(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if timeFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s in deterministic code; timing belongs in internal/exp or cmd/", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !randSeededCtors[sel.Sel.Name] {
					if _, isFunc := info.ObjectOf(sel.Sel).(*types.Func); isFunc {
						pass.Reportf(sel.Pos(), "rand.%s uses the global source; inject a seed via rand.New(rand.NewSource(seed))", sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
}
