package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Gorolife is the goroutine-lifecycle analyzer: every go statement in a
// requested package must spawn a body with a provable termination signal,
// or the spawning function must carry //krsp:detached(<reason>). A body
// proves termination when
//
//   - it is loop-free (it runs to its end and exits), or
//   - every condition-only loop in it receives from a channel (a select
//     case, a <-ctx.Done() poll, a ticker drain — receives are how
//     shutdown reaches a worker), polls the cancel.Canceller, or is
//     structurally bounded (for i := 0; i < n; i++ and range loops), or
//   - it signals a sync.WaitGroup with Done and the spawning function
//     Waits on the same WaitGroup — the spawner joins the goroutine, so a
//     leak would deadlock the join and cannot go unnoticed.
//
// Spawns whose target cannot be statically resolved (dynamic function
// values from other scopes, interface methods) are diagnostics too: a
// goroutine the analyzer cannot see into is a goroutine nobody proved
// terminates. The //krsp:detached contract is itself checked for drift — a
// detached annotation on a function that spawns nothing must be removed.
var Gorolife = &Analyzer{
	Name:       "gorolife",
	Version:    1,
	Doc:        "prove every go statement has a reachable termination signal or a //krsp:detached waiver",
	RunProgram: runGorolife,
}

func runGorolife(pass *Pass) {
	prog := pass.Prog
	ci := prog.contractIndex()
	cg := prog.buildCallGraph()
	ci.emit(pass)

	requested := map[*Package]bool{}
	for _, pkg := range prog.Requested {
		requested[pkg] = true
	}

	for _, fn := range cg.order {
		site := cg.decls[fn]
		if site == nil || !requested[site.pkg] {
			continue
		}
		detached := ci.contract(fn, ContractDetached)
		spawns := 0
		ast.Inspect(site.fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			spawns++
			if detached != nil {
				return true
			}
			checkSpawn(pass, cg, site, g)
			return true
		})
		if detached != nil && spawns == 0 {
			pass.Reportf(detached.pos,
				"//krsp:detached on %s but the function spawns no goroutine; remove the stale contract", fn.Name())
		}
	}
}

// checkSpawn resolves one go statement's target body and verdicts it.
func checkSpawn(pass *Pass, cg *callGraph, site *declSite, g *ast.GoStmt) {
	body, bodyInfo := spawnedBody(cg, site, g.Call)
	if body == nil {
		pass.Reportf(g.Pos(),
			"cannot statically resolve the spawned function to a body; spawn a function literal or a module-local function, or annotate the spawner with //krsp:detached(<reason>)")
		return
	}
	if ok, why := terminationSignal(bodyInfo, site, body); !ok {
		pass.Reportf(g.Pos(),
			"goroutine has no provable termination signal (%s); make every loop bounded, receive from a channel, or poll the Canceller — or join via sync.WaitGroup, or annotate the spawner with //krsp:detached(<reason>)", why)
	}
}

// spawnedBody resolves the body the go statement runs: a function literal
// (direct, or a local variable assigned one) or a module-local declared
// function. The returned info belongs to the body's declaring package.
func spawnedBody(cg *callGraph, site *declSite, call *ast.CallExpr) (*ast.BlockStmt, *types.Info) {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, site.pkg.Info
	case *ast.Ident:
		obj := site.pkg.Info.ObjectOf(fun)
		if v, ok := obj.(*types.Var); ok {
			if lit := localFuncLit(site.fd, site.pkg.Info, v); lit != nil {
				return lit.Body, site.pkg.Info
			}
			return nil, nil
		}
		if f, ok := obj.(*types.Func); ok {
			if decl := cg.decls[originFunc(f)]; decl != nil {
				return decl.fd.Body, decl.pkg.Info
			}
		}
	case *ast.SelectorExpr:
		if f, ok := site.pkg.Info.ObjectOf(fun.Sel).(*types.Func); ok {
			if decl := cg.decls[originFunc(f)]; decl != nil {
				return decl.fd.Body, decl.pkg.Info
			}
		}
	}
	return nil, nil
}

// localFuncLit finds the function literal a local variable was defined
// from (launch := func() {...}; go launch()).
func localFuncLit(fd *ast.FuncDecl, info *types.Info, v *types.Var) *ast.FuncLit {
	var found *ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || info.ObjectOf(id) != v {
					continue
				}
				if lit, ok := n.Rhs[i].(*ast.FuncLit); ok {
					found = lit
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, name := range n.Names {
				if info.Defs[name] != v {
					continue
				}
				if lit, ok := n.Values[i].(*ast.FuncLit); ok {
					found = lit
				}
			}
		}
		return true
	})
	return found
}

// terminationSignal verdicts a spawned body. why describes the first
// missing obligation for the diagnostic.
func terminationSignal(info *types.Info, spawner *declSite, body *ast.BlockStmt) (ok bool, why string) {
	// WaitGroup join: Done in the body (usually deferred) paired with a
	// Wait on the same WaitGroup object in the spawning function.
	for _, done := range waitGroupCalls(info, body, "Done") {
		for _, wait := range waitGroupCalls(spawner.pkg.Info, spawner.fd.Body, "Wait") {
			if done == wait {
				return true, ""
			}
		}
	}
	var unproven *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if unproven != nil {
			return false
		}
		loop, isFor := n.(*ast.ForStmt)
		if !isFor {
			return true
		}
		// Structurally bounded three-clause loops and range loops pass; a
		// condition-only or bare loop needs a shutdown signal inside.
		if loop.Init != nil && loop.Post != nil {
			return true
		}
		if containsChanReceive(loop.Body) || loopPollsCanceller(info, loop) {
			return true
		}
		unproven = loop
		return true
	})
	if unproven != nil {
		return false, "a condition-only loop neither receives from a channel nor polls the Canceller"
	}
	return true, ""
}

// containsChanReceive reports whether the node contains a channel receive
// (<-ch) — including select communication clauses and ticker drains.
func containsChanReceive(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
		}
		return true
	})
	return found
}

// waitGroupCalls collects the sync.WaitGroup objects the node calls the
// given method on (wg.Done(), s.wg.Wait(), ...).
func waitGroupCalls(info *types.Info, n ast.Node, method string) []types.Object {
	var out []types.Object
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Name() != method {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !isWaitGroupType(sig.Recv().Type()) {
			return true
		}
		if obj := objOfExpr(info, sel.X); obj != nil {
			out = append(out, obj)
		}
		return true
	})
	return out
}

func isWaitGroupType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// objOfExpr resolves the object an expression names: the ident itself, or
// the field/var a selector terminates in.
func objOfExpr(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			return info.ObjectOf(x.Sel)
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}
