package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// InBoundsExtent is the source span of one //krsp:inbounds function — the
// unit the krsplint -bce audit matches the compiler's ssa/check_bce reports
// against. The boundsafe analyzer proves index arithmetic in range at the
// source level; the audit closes the loop by counting the bounds checks the
// compiler still emits inside these spans and ratcheting them against a
// committed baseline.
type InBoundsExtent struct {
	Name      string // function name, Type.Method for methods
	File      string // module-relative, slash-separated
	StartLine int    // first line of the declaration
	EndLine   int    // last line of the body
}

// Key is the stable baseline identity: file plus function name, no line
// numbers, so unrelated edits that shift a kernel do not churn the ratchet.
func (e InBoundsExtent) Key() string { return e.File + ":" + e.Name }

// Contains reports whether the module-relative file/line falls in the span.
func (e InBoundsExtent) Contains(file string, line int) bool {
	return file == e.File && e.StartLine <= line && line <= e.EndLine
}

// InBoundsExtents lists every //krsp:inbounds function declared in the
// requested packages, sorted by (File, StartLine).
func InBoundsExtents(p *Program) []InBoundsExtent {
	ci := p.contractIndex()
	var out []InBoundsExtent
	for _, pkg := range p.Requested {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || !ci.has(fn, ContractInBounds) {
					continue
				}
				start := p.Fset.Position(fd.Pos())
				end := p.Fset.Position(fd.End())
				file := start.Filename
				if rel, err := filepath.Rel(p.modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = filepath.ToSlash(rel)
				}
				name := fn.Name()
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					name = recvTypeName(sig.Recv().Type()) + "." + name
				}
				out = append(out, InBoundsExtent{
					Name: name, File: file,
					StartLine: start.Line, EndLine: end.Line,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].StartLine < out[j].StartLine
	})
	return out
}

// recvTypeName names a receiver's base type (pointers stripped).
func recvTypeName(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
