package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"strings"
)

// Weightovf polices int64 weight arithmetic in the solver packages. The
// sentinel-mask trick (excludedW = 2^62) and the layered lexicographic
// factor both rely on every relaxation staying strictly below 2^62; an
// unguarded `+` or `*` on cost/delay/weight/dist quantities can silently
// wrap and invalidate the paper's exact integral scaling (Lemma 3,
// Theorem 4).
//
// Verdicts come from the interval dataflow engine (DESIGN.md §12), anchored
// by graph.MaxWeight = 2^30 wherever Instance.Validate's cap is visible as a
// constant comparison: a site whose saturating result interval stays finite
// is proven safe and stays silent; a site whose operands provably exceed the
// int64 range is reported as a certain overflow; everything else —
// accumulation loops whose bound lives outside the function, unconstrained
// parameters — is reported as unprovable and documents its real bound via
// //lint:allow weightovf <reason>.
var Weightovf = &Analyzer{
	Name:    "weightovf",
	Version: 2, // v2: dataflow-proven verdicts replaced the syntactic guard heuristic
	Doc:     "prove int64 weight arithmetic in solver packages stays in range",
	AppliesTo: func(path string) bool {
		return pathHasAnySegment(path, map[string]bool{
			"core": true, "bicameral": true, "residual": true, "graph": true,
			"flow": true, "rsp": true, "shortest": true, "auxgraph": true,
		})
	},
	Run: runWeightovf,
}

var weightNameParts = []string{"cost", "delay", "weight", "dist"}

// ovfVerdict classifies one weight-arithmetic site.
type ovfVerdict int8

const (
	ovfProven     ovfVerdict = iota // result interval finite: cannot wrap
	ovfOverflow                     // every concrete evaluation wraps
	ovfUnprovable                   // the engine cannot bound the result
)

// ovfSite is one +/* (or +=/*=) whose static type is int64 and whose
// operands mention a weight-like quantity.
type ovfSite struct {
	pos     token.Pos
	op      token.Token
	x, y, r ival
	verdict ovfVerdict
}

func runWeightovf(pass *Pass) {
	for _, site := range weightovfSites(pass.Prog, pass.Pkg) {
		switch site.verdict {
		case ovfOverflow:
			pass.Reportf(site.pos, "int64 weight %s provably overflows: operands in %s and %s; rescale or clamp before combining", site.op, site.x, site.y)
		case ovfUnprovable:
			pass.Reportf(site.pos, "cannot prove %s on int64 weight values stays in range (operands %s, %s); bound them against MaxWeight/excludedW or annotate //lint:allow weightovf <reason>", site.op, site.x, site.y)
		}
	}
}

// weightovfSites computes the dataflow verdict for every weight-arithmetic
// site in the package. Sites the engine's hook walk misses (a body the IR
// builder rejected mid-way) are swept up syntactically as unprovable, so the
// verdict set always covers the syntactic candidate set — the differential
// test pins that containment against the legacy pass.
func weightovfSites(prog *Program, pkg *Package) []*ovfSite {
	e := prog.dataflow()
	info := pkg.Info
	sites := map[token.Pos]*ovfSite{}
	hooks := &dfHooks{
		binary: func(n *ast.BinaryExpr, x, y, r ival, env *absEnv) {
			if n.Op != token.ADD && n.Op != token.MUL {
				return
			}
			if !ovfCandidate(info, n.X, n.Y) {
				return
			}
			sites[n.OpPos] = &ovfSite{pos: n.OpPos, op: n.Op, x: x, y: y, r: r,
				verdict: classifyOvf(n.Op, x, y, r)}
		},
		assignOp: func(n *ast.AssignStmt, x, y, r ival, env *absEnv) {
			if n.Tok != token.ADD_ASSIGN && n.Tok != token.MUL_ASSIGN {
				return
			}
			if !ovfCandidate(info, n.Lhs[0], n.Rhs[0]) {
				return
			}
			op := token.ADD
			if n.Tok == token.MUL_ASSIGN {
				op = token.MUL
			}
			sites[n.TokPos] = &ovfSite{pos: n.TokPos, op: n.Tok, x: x, y: y, r: r,
				verdict: classifyOvf(op, x, y, r)}
		},
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				e.analyze(fn, hooks)
			}
		}
		// Coverage sweep: any candidate the hook walk did not reach is
		// unprovable by definition.
		for _, c := range syntacticOvfCandidates(info, f) {
			if _, ok := sites[c.pos]; !ok {
				sites[c.pos] = &ovfSite{pos: c.pos, op: c.op,
					x: ivTop(), y: ivTop(), r: ivTop(), verdict: ovfUnprovable}
			}
		}
	}
	out := make([]*ovfSite, 0, len(sites))
	for _, s := range sites {
		out = append(out, s)
	}
	return out
}

// classifyOvf turns the saturating result interval into a verdict: finite
// means no evaluation can wrap; a saturated corner on the *near* side means
// every evaluation wraps; anything else is unprovable.
func classifyOvf(op token.Token, x, y, r ival) ovfVerdict {
	if r.bot || (r.hasLo() && r.hasHi()) {
		return ovfProven
	}
	switch op {
	case token.ADD:
		if x.hasLo() && y.hasLo() {
			if v, ok := addSat(x.lo, y.lo); !ok && v == math.MaxInt64 {
				return ovfOverflow
			}
		}
		if x.hasHi() && y.hasHi() {
			if v, ok := addSat(x.hi, y.hi); !ok && v == math.MinInt64 {
				return ovfOverflow
			}
		}
	case token.MUL:
		if x.hasLo() && y.hasLo() && x.lo > 0 && y.lo > 0 {
			if _, ok := mulSat(x.lo, y.lo); !ok {
				return ovfOverflow
			}
		}
	}
	return ovfUnprovable
}

// ovfCandidate applies the site trigger shared with the legacy pass: int64
// static type, a weight-like operand, and no small-constant operand (x + 1
// bookkeeping cannot reach 2^62 alone).
func ovfCandidate(info *types.Info, x, y ast.Expr) bool {
	if !isInt64(info, x) {
		return false
	}
	if smallConst(info, x) || smallConst(info, y) {
		return false
	}
	return weightLike(info, x) || weightLike(info, y)
}

// --- legacy syntactic pass -------------------------------------------------
//
// The pre-dataflow detector, kept as the reference for the differential test
// (weightovf_test.go): every site it would have flagged as unguarded must
// receive a dataflow verdict, so the rewrite can only refine, never drop.

type ovfCandidateSite struct {
	pos token.Pos
	op  token.Token
}

// syntacticOvfCandidates lists every site matching the trigger, with no
// guard exemption.
func syntacticOvfCandidates(info *types.Info, f *ast.File) []ovfCandidateSite {
	var out []ovfCandidateSite
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if (n.Op == token.ADD || n.Op == token.MUL) && ovfCandidate(info, n.X, n.Y) {
				out = append(out, ovfCandidateSite{pos: n.OpPos, op: n.Op})
			}
		case *ast.AssignStmt:
			if (n.Tok == token.ADD_ASSIGN || n.Tok == token.MUL_ASSIGN) && len(n.Lhs) == 1 &&
				ovfCandidate(info, n.Lhs[0], n.Rhs[0]) {
				out = append(out, ovfCandidateSite{pos: n.TokPos, op: n.Tok})
			}
		}
		return true
	})
	return out
}

// legacyGuardIdents marked a function overflow-aware when referenced
// anywhere in its body.
var legacyGuardIdents = map[string]bool{
	"Inf": true, "MaxInt64": true, "MaxWeight": true, "excludedW": true,
}

// legacyWeightovfFlagged reproduces the v1 analyzer: candidate sites in
// functions with no visible guard reference.
func legacyWeightovfFlagged(info *types.Info, f *ast.File) []token.Pos {
	guarded := map[*ast.FuncDecl]bool{}
	isGuarded := func(fd *ast.FuncDecl) bool {
		if fd == nil {
			return false
		}
		if g, ok := guarded[fd]; ok {
			return g
		}
		g := false
		ast.Inspect(fd, func(n ast.Node) bool {
			if g {
				return false
			}
			switch n := n.(type) {
			case *ast.Ident:
				if legacyGuardIdents[n.Name] {
					g = true
				}
			case ast.Expr:
				if tv, ok := info.Types[n]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
					if v, ok := constant.Int64Val(tv.Value); ok && v >= 1<<59 {
						g = true
					}
				}
			}
			return true
		})
		guarded[fd] = g
		return g
	}
	var out []token.Pos
	for _, c := range syntacticOvfCandidates(info, f) {
		if !isGuarded(enclosingFuncDecl(f, c.pos)) {
			out = append(out, c.pos)
		}
	}
	return out
}

func isInt64(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// weightLike reports whether the expression textually denotes a weight:
// an identifier or field whose name mentions cost/delay/weight/dist, or a
// call through a value of a named Weight function type.
func weightLike(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return weightLike(info, e.X)
	case *ast.Ident:
		return weightName(e.Name)
	case *ast.SelectorExpr:
		return weightName(e.Sel.Name) || weightLike(info, e.X)
	case *ast.IndexExpr:
		return weightLike(info, e.X)
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.Type != nil {
			if named, ok := tv.Type.(*types.Named); ok && weightName(named.Obj().Name()) {
				return true
			}
		}
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			return weightName(fun.Name)
		case *ast.SelectorExpr:
			return weightName(fun.Sel.Name)
		}
	case *ast.BinaryExpr:
		return weightLike(info, e.X) || weightLike(info, e.Y)
	case *ast.UnaryExpr:
		return weightLike(info, e.X)
	}
	return false
}

func weightName(name string) bool {
	lower := strings.ToLower(name)
	for _, part := range weightNameParts {
		if strings.Contains(lower, part) {
			return true
		}
	}
	return false
}

// smallConst reports whether e is a compile-time integer constant with
// magnitude below 2^32 — bookkeeping increments, loop factors and the like.
func smallConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v > -(1<<32) && v < 1<<32
}
