package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Weightovf polices int64 weight arithmetic in the solver packages. The
// sentinel-mask trick (excludedW = 2^62) and the layered lexicographic
// factor both rely on every relaxation staying strictly below 2^62; an
// unguarded `+` or `*` on cost/delay/weight/dist quantities can silently
// wrap and invalidate the paper's exact integral scaling (Lemma 3,
// Theorem 4). An addition or multiplication whose static type is int64 and
// whose operands mention a weight-like name is flagged unless the enclosing
// function visibly guards the range: it references a sentinel bound (Inf,
// MaxWeight, MaxInt64, excludedW) or compares against a constant ≥ 2^59.
// Sites whose bound lives elsewhere document it via
// //lint:allow weightovf <reason>.
var Weightovf = &Analyzer{
	Name: "weightovf",
	Doc:  "flag unguarded +/* on int64 weight quantities in solver packages",
	AppliesTo: func(path string) bool {
		return pathHasAnySegment(path, map[string]bool{
			"core": true, "bicameral": true, "residual": true, "graph": true,
			"flow": true, "rsp": true, "shortest": true, "auxgraph": true,
		})
	},
	Run: runWeightovf,
}

var weightNameParts = []string{"cost", "delay", "weight", "dist"}

// guardIdents mark a function as overflow-aware when referenced anywhere in
// its body.
var guardIdents = map[string]bool{
	"Inf": true, "MaxInt64": true, "MaxWeight": true, "excludedW": true,
}

func runWeightovf(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Guarded functions: computed lazily per declaration.
		guarded := map[*ast.FuncDecl]bool{}
		isGuarded := func(fd *ast.FuncDecl) bool {
			if fd == nil {
				return false
			}
			if g, ok := guarded[fd]; ok {
				return g
			}
			g := false
			ast.Inspect(fd, func(n ast.Node) bool {
				if g {
					return false
				}
				switch n := n.(type) {
				case *ast.Ident:
					if guardIdents[n.Name] {
						g = true
					}
				case ast.Expr:
					if tv, ok := info.Types[n]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
						if v, ok := constant.Int64Val(tv.Value); ok && v >= 1<<59 {
							g = true
						}
					}
				}
				return true
			})
			guarded[fd] = g
			return g
		}

		ast.Inspect(f, func(n ast.Node) bool {
			var op token.Token
			var pos token.Pos
			var operands []ast.Expr
			var resultExpr ast.Expr
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.ADD && n.Op != token.MUL {
					return true
				}
				op, pos, operands, resultExpr = n.Op, n.OpPos, []ast.Expr{n.X, n.Y}, n.X
			case *ast.AssignStmt:
				if n.Tok != token.ADD_ASSIGN && n.Tok != token.MUL_ASSIGN || len(n.Lhs) != 1 {
					return true
				}
				op, pos, operands, resultExpr = n.Tok, n.TokPos, []ast.Expr{n.Lhs[0], n.Rhs[0]}, n.Lhs[0]
			default:
				return true
			}
			if !isInt64(info, resultExpr) {
				return true
			}
			weighty := false
			for _, o := range operands {
				if smallConst(info, o) {
					return true // x + 1 style bookkeeping cannot reach 2^62 alone
				}
				if weightLike(info, o) {
					weighty = true
				}
			}
			if !weighty {
				return true
			}
			if isGuarded(enclosingFuncDecl(f, pos)) {
				return true
			}
			pass.Reportf(pos, "unguarded %s on int64 weight values; bound operands against the 2^62 sentinel range (or annotate //lint:allow weightovf <reason>)", op)
			return true
		})
	}
}

func isInt64(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// weightLike reports whether the expression textually denotes a weight:
// an identifier or field whose name mentions cost/delay/weight/dist, or a
// call through a value of a named Weight function type.
func weightLike(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return weightLike(info, e.X)
	case *ast.Ident:
		return weightName(e.Name)
	case *ast.SelectorExpr:
		return weightName(e.Sel.Name) || weightLike(info, e.X)
	case *ast.IndexExpr:
		return weightLike(info, e.X)
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.Type != nil {
			if named, ok := tv.Type.(*types.Named); ok && weightName(named.Obj().Name()) {
				return true
			}
		}
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			return weightName(fun.Name)
		case *ast.SelectorExpr:
			return weightName(fun.Sel.Name)
		}
	case *ast.BinaryExpr:
		return weightLike(info, e.X) || weightLike(info, e.Y)
	case *ast.UnaryExpr:
		return weightLike(info, e.X)
	}
	return false
}

func weightName(name string) bool {
	lower := strings.ToLower(name)
	for _, part := range weightNameParts {
		if strings.Contains(lower, part) {
			return true
		}
	}
	return false
}

// smallConst reports whether e is a compile-time integer constant with
// magnitude below 2^32 — bookkeeping increments, loop factors and the like.
func smallConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v > -(1<<32) && v < 1<<32
}
