package lint

// All returns the full krsplint analyzer suite in report order.
func All() []*Analyzer {
	return []*Analyzer{Ctxpoll, Detmap, Nopanic, Hotalloc, Wallclock, Weightovf}
}

// ByName returns the named analyzers, erroring on unknown names via the
// second return (the unknown name itself, or "").
func ByName(names []string) ([]*Analyzer, string) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, n
		}
		out = append(out, a)
	}
	return out, ""
}
