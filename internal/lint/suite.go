package lint

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
)

// All returns the full krsplint analyzer suite in report order: the six
// per-package invariant checks, the whole-module dataflow and contract
// checkers, the concurrency layer (lock-sets, goroutine lifecycles,
// atomics discipline), and the cross-layer consistency analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		Ctxpoll, Detmap, Nopanic, Hotalloc, Wallclock, Weightovf,
		Boundsafe, Nilflow, Lockcheck, Gorolife, Atomicmix,
		Contracts, Metricscat, Eventcat, Faultseam, Suppressdrift,
	}
}

// engineSchema is the version of the shared analysis machinery — loader,
// call graph, IR, interval dataflow, directive grammar. Bump it whenever a
// change outside any single analyzer can alter verdicts for unchanged
// sources (a sharper widening, a new discharge rule), so warm krsplint
// caches invalidate instead of replaying stale reports.
const engineSchema = 3 // 3: lock-set walker + field-level contract index (2: SSA-lite IR + interval dataflow)

// Fingerprint digests the engine schema plus each requested analyzer's
// name and Version into a short hex string. cmd/krsplint mixes it into the
// result-cache key: a cache entry is only replayed when both the sources
// AND the analysis semantics that produced it are unchanged.
func Fingerprint(analyzers []*Analyzer) string {
	parts := make([]string, 0, len(analyzers)+1)
	parts = append(parts, fmt.Sprintf("engine:%d", engineSchema))
	for _, a := range analyzers {
		parts = append(parts, fmt.Sprintf("%s:%d", a.Name, a.Version))
	}
	sort.Strings(parts[1:])
	sum := sha256.Sum256([]byte(strings.Join(parts, "\n")))
	return fmt.Sprintf("%x", sum[:8])
}

// UnknownAnalyzerError reports a name that matches no registered analyzer.
type UnknownAnalyzerError struct{ Name string }

func (e *UnknownAnalyzerError) Error() string {
	return fmt.Sprintf("lint: unknown analyzer %q", e.Name)
}

// DuplicateAnalyzerError reports a name requested more than once; running
// an analyzer twice would report every finding twice.
type DuplicateAnalyzerError struct{ Name string }

func (e *DuplicateAnalyzerError) Error() string {
	return fmt.Sprintf("lint: analyzer %q requested more than once", e.Name)
}

// ByName resolves the named analyzers against the registered suite. A name
// outside the suite yields an *UnknownAnalyzerError, a repeated name a
// *DuplicateAnalyzerError; both leave the returned slice nil.
func ByName(names []string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	seen := map[string]bool{}
	var out []*Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, &UnknownAnalyzerError{Name: n}
		}
		if seen[n] {
			return nil, &DuplicateAnalyzerError{Name: n}
		}
		seen[n] = true
		out = append(out, a)
	}
	return out, nil
}
