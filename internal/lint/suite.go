package lint

import "fmt"

// All returns the full krsplint analyzer suite in report order: the six
// per-package invariant checks, the whole-module contract checker, and the
// three cross-layer consistency analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		Ctxpoll, Detmap, Nopanic, Hotalloc, Wallclock, Weightovf,
		Contracts, Metricscat, Faultseam, Suppressdrift,
	}
}

// UnknownAnalyzerError reports a name that matches no registered analyzer.
type UnknownAnalyzerError struct{ Name string }

func (e *UnknownAnalyzerError) Error() string {
	return fmt.Sprintf("lint: unknown analyzer %q", e.Name)
}

// DuplicateAnalyzerError reports a name requested more than once; running
// an analyzer twice would report every finding twice.
type DuplicateAnalyzerError struct{ Name string }

func (e *DuplicateAnalyzerError) Error() string {
	return fmt.Sprintf("lint: analyzer %q requested more than once", e.Name)
}

// ByName resolves the named analyzers against the registered suite. A name
// outside the suite yields an *UnknownAnalyzerError, a repeated name a
// *DuplicateAnalyzerError; both leave the returned slice nil.
func ByName(names []string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	seen := map[string]bool{}
	var out []*Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, &UnknownAnalyzerError{Name: n}
		}
		if seen[n] {
			return nil, &DuplicateAnalyzerError{Name: n}
		}
		seen[n] = true
		out = append(out, a)
	}
	return out, nil
}
