package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// concCoveredSegments are the package path segments whose shared state must
// carry //krsp:guardedby annotations: the cluster member table and backoff,
// the solution cache and singleflight group, and krspd's server-side state.
// In a covered package, every named field sharing a struct with a
// sync.Mutex/RWMutex is either annotated, of a self-synchronizing type
// (sync.*, sync/atomic.*, channels), or justified with //lint:allow
// lockcheck <reason> (the immutable-after-construction idiom).
var concCoveredSegments = map[string]bool{
	"cluster": true, "solvecache": true, "krspd": true,
}

// Lockcheck is the lock-set analyzer behind the //krsp:guardedby and
// //krsp:locked contracts. Every read of a guarded field must hold the
// named lock (RLock suffices), every write must hold it exclusively, and
// every call to a //krsp:locked method must already hold the receiver's
// lock — all verified path-sensitively by the lock-set walker (locksets.go):
// branches merge by intersection, early unlock-and-return paths are
// tracked, deferred unlocks count, and goroutine bodies start lock-free.
// Accesses through a constructor-fresh local (t := &Table{...}) are exempt:
// no other goroutine can hold a reference yet.
//
// The analyzer also enforces annotation coverage over the cluster,
// solvecache and krspd packages (concCoveredSegments), so removing an
// annotation from shared state is itself a diagnostic, and it owns the
// directive-level diagnostics of the guardedby/locked verbs (grammar,
// placement, unknown lock fields).
var Lockcheck = &Analyzer{
	Name:       "lockcheck",
	Version:    1,
	Doc:        "verify //krsp:guardedby field accesses and //krsp:locked call sites hold the named lock on all paths",
	RunProgram: runLockcheck,
}

func runLockcheck(pass *Pass) {
	prog := pass.Prog
	ci := prog.contractIndex()
	cg := prog.buildCallGraph()
	ci.emit(pass)

	requested := map[*Package]bool{}
	for _, pkg := range prog.Requested {
		requested[pkg] = true
	}

	for _, fn := range cg.order {
		site := cg.decls[fn]
		if site == nil || !requested[site.pkg] {
			continue
		}
		entry := lockSet{}
		if lc := ci.contract(fn, ContractLocked); lc != nil {
			recvName, lockOK := checkLockedDecl(pass, fn, site, lc)
			if recvName != "" && lockOK {
				entry.acquire(recvName+"."+lc.reason, holdWrite, site.fd.Pos())
			}
		}
		fresh := freshLocals(site.pkg.Info, site.fd)
		hooks := &lockHooks{
			access: func(sel *ast.SelectorExpr, base ast.Expr, fld *types.Var, write bool, held lockSet) {
				gb := ci.byField[originVar(fld)]
				if gb == nil {
					return
				}
				if root := exprRootIdent(base); root != nil && fresh[site.pkg.Info.ObjectOf(root)] {
					return
				}
				key := types.ExprString(base) + "." + gb.lock
				h := held[key]
				switch {
				case write && h.kind != holdWrite:
					pass.Reportf(sel.Sel.Pos(),
						"write to %s needs %s held exclusively (//krsp:guardedby(%s) on field %s)",
						types.ExprString(sel), key, gb.lock, fld.Name())
				case !write && h.kind == 0:
					pass.Reportf(sel.Sel.Pos(),
						"read of %s needs %s held (//krsp:guardedby(%s) on field %s)",
						types.ExprString(sel), key, gb.lock, fld.Name())
				}
			},
			call: func(call *ast.CallExpr, callee *types.Func, held lockSet) {
				lc := ci.contract(originFunc(callee), ContractLocked)
				if lc == nil {
					return
				}
				funSel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return
				}
				if root := exprRootIdent(funSel.X); root != nil && fresh[site.pkg.Info.ObjectOf(root)] {
					return
				}
				key := types.ExprString(funSel.X) + "." + lc.reason
				if held[key].kind == 0 {
					pass.Reportf(call.Pos(),
						"call to //krsp:locked %s needs %s held by the caller",
						callee.Name(), key)
				}
			},
		}
		walkLocks(site, entry, hooks)
	}

	runLockCoverage(pass, ci)
}

// checkLockedDecl validates a //krsp:locked contract's declaration: the
// method must have a named receiver whose struct declares the named lock as
// a sync.Mutex/RWMutex field. It returns the receiver name and whether the
// lock resolved.
func checkLockedDecl(pass *Pass, fn *types.Func, site *declSite, lc *parsedContract) (recvName string, ok bool) {
	recv := site.fd.Recv
	if recv == nil || len(recv.List) == 0 || len(recv.List[0].Names) == 0 {
		return "", false
	}
	recvName = recv.List[0].Names[0].Name
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return recvName, false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	strct, isStruct := t.Underlying().(*types.Struct)
	if !isStruct {
		pass.Reportf(lc.pos, "//krsp:locked(%s): receiver of %s is not a struct", lc.reason, fn.Name())
		return recvName, false
	}
	for i := 0; i < strct.NumFields(); i++ {
		f := strct.Field(i)
		if f.Name() == lc.reason {
			if !isMutexType(f.Type()) {
				pass.Reportf(lc.pos, "//krsp:locked(%s): the named field is not a sync.Mutex or sync.RWMutex", lc.reason)
				return recvName, false
			}
			return recvName, true
		}
	}
	pass.Reportf(lc.pos, "//krsp:locked(%s): the receiver struct of %s declares no such field", lc.reason, fn.Name())
	return recvName, false
}

// runLockCoverage enforces guardedby coverage over the covered packages:
// any named field sharing a struct with a mutex must be annotated, of a
// self-synchronizing type, or carry a //lint:allow lockcheck justification.
func runLockCoverage(pass *Pass, ci *contractIndex) {
	for _, pkg := range pass.Prog.Requested {
		if !pathHasAnySegment(pkg.Path, concCoveredSegments) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				lockName := ""
				for _, fld := range st.Fields.List {
					if tv, ok := pkg.Info.Types[fld.Type]; ok && isMutexType(tv.Type) && len(fld.Names) > 0 {
						lockName = fld.Names[0].Name
						break
					}
				}
				if lockName == "" {
					return true
				}
				for _, fld := range st.Fields.List {
					tv, ok := pkg.Info.Types[fld.Type]
					if !ok || selfSynchronized(tv.Type) {
						continue
					}
					for _, name := range fld.Names {
						v, isVar := pkg.Info.Defs[name].(*types.Var)
						if !isVar || ci.byField[v] != nil {
							continue
						}
						pass.Reportf(name.Pos(),
							"field %s of %s shares the struct with lock %s but carries no //krsp:guardedby; annotate the lock or justify immutability with //lint:allow lockcheck <reason>",
							name.Name, ts.Name.Name, lockName)
					}
				}
				return true
			})
		}
	}
}

// selfSynchronized reports field types exempt from guardedby coverage:
// locks themselves, the sync and sync/atomic types (self-synchronizing by
// construction), and channels (synchronized by the runtime).
func selfSynchronized(t types.Type) bool {
	if isMutexType(t) {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if p := named.Obj().Pkg(); p != nil && (p.Path() == "sync" || p.Path() == "sync/atomic") {
			return true
		}
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// freshLocals collects the function's constructor-fresh locals: variables
// defined from a composite literal (&T{...} / T{...}) or new(T). A struct
// reachable only through such a local has no concurrent readers yet, so
// its guarded fields may be initialized lock-free (the NewTable/NewCache
// constructor idiom).
func freshLocals(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	record := func(name *ast.Ident, value ast.Expr) {
		if name == nil || value == nil || name.Name == "_" {
			return
		}
		if isFreshExpr(info, value) {
			if obj := info.Defs[name]; obj != nil {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					record(name, n.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}

// isFreshExpr reports expressions that denote a brand-new value: a
// composite literal, its address, or a new(T) call.
func isFreshExpr(info *types.Info, e ast.Expr) bool {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, isLit := e.X.(*ast.CompositeLit)
		return isLit
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, isB := info.ObjectOf(id).(*types.Builtin); isB && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// originVar normalizes a possibly-instantiated generic struct field to its
// generic origin, so a Cache[string] access matches the annotation on the
// generic Cache[V] declaration.
func originVar(v *types.Var) *types.Var {
	if v == nil {
		return nil
	}
	return v.Origin()
}

// originFunc is originVar for methods of generic types.
func originFunc(f *types.Func) *types.Func {
	if f == nil {
		return nil
	}
	return f.Origin()
}
