package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// goldenMounts maps testdata subdirectories to the synthetic import paths
// that put each golden package inside the analyzer's applicability set.
var goldenMounts = map[string]string{
	"ctxpoll":      "repro/internal/core/ctxpollgolden",
	"detmap":       "repro/internal/graph/golden",
	"nopanic":      "repro/internal/golden/nopaniclib",
	"hotalloc":     "repro/internal/core/golden",
	"wallclock":    "repro/internal/golden/clock",
	"wallclockobs": "repro/internal/obs/golden",
	"weightovf":    "repro/internal/rsp/golden",
	"boundsafe":    "repro/internal/shortest/boundsgolden",
	"nilflow":      "repro/internal/obs/nilgolden",
	"directive":    "repro/internal/golden/directive",
	"contracts":    "repro/internal/auxgraph/golden",
	"metricscat":   "repro/internal/obs/metricsgolden",
	"eventcat":     "repro/internal/obs/rec/eventgolden",
	"faultseam":    "repro/internal/fault/seamgolden",
	"staledrift":   "repro/internal/gen/staledrift",
	"lockcheck":    "repro/internal/cluster/lockgolden",
	"gorolife":     "repro/internal/golden/lifelib",
	"atomicmix":    "repro/internal/golden/mixlib",
}

var (
	goldenOnce sync.Once
	goldenProg *Program
	goldenErr  error
)

// goldenProgram loads every golden package into one shared Program so the
// GOROOT source importer's work is paid once across all analyzer tests.
func goldenProgram(t *testing.T) *Program {
	t.Helper()
	goldenOnce.Do(func() {
		prog, err := NewProgram(".")
		if err != nil {
			goldenErr = err
			return
		}
		dirs := make([]string, 0, len(goldenMounts))
		for dir := range goldenMounts {
			dirs = append(dirs, dir)
		}
		sort.Strings(dirs)
		for _, dir := range dirs {
			if _, err := prog.LoadDirAs(filepath.Join("testdata", dir), goldenMounts[dir]); err != nil {
				goldenErr = fmt.Errorf("loading testdata/%s: %w", dir, err)
				return
			}
		}
		goldenProg = prog
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenProg
}

// runOne runs a single analyzer over the golden program and returns the
// surviving diagnostics attributed to it as "dir/file.go:line:col" strings
// relative to testdata (malformed-directive reports are filtered out; they
// have their own test).
func runOne(t *testing.T, a *Analyzer) []string {
	t.Helper()
	return runFiltered(t, a, a.Name)
}

func runFiltered(t *testing.T, a *Analyzer, name string) []string {
	t.Helper()
	prog := goldenProgram(t)
	var got []string
	for _, d := range Run(prog, []*Analyzer{a}) {
		if d.Analyzer != name {
			continue
		}
		fname := filepath.ToSlash(d.Position.Filename)
		rel, ok := strings.CutPrefix(fname, "testdata/")
		if !ok {
			t.Fatalf("diagnostic outside testdata: %s", d.String())
		}
		got = append(got, fmt.Sprintf("%s:%d:%d", rel, d.Position.Line, d.Position.Column))
	}
	return got
}

func expectDiags(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("diagnostics:\n  got  %v\n  want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diagnostic %d:\n  got  %v\n  want %v", i, got, want)
		}
	}
}

// Each test pins the exact positions from the violating golden file and, by
// asserting the complete list, also proves that the clean file's suppressed
// and order-insensitive sites produce nothing.

func TestCtxpollGolden(t *testing.T) {
	expectDiags(t, runOne(t, Ctxpoll), []string{
		"ctxpoll/bad.go:21:2", // condition drain without a poll
		"ctxpoll/bad.go:31:2", // infinite ladder without a poll
	})
}

func TestDetmapGolden(t *testing.T) {
	expectDiags(t, runOne(t, Detmap), []string{
		"detmap/bad.go:8:2",  // append to outer slice under map range
		"detmap/bad.go:16:2", // return mid-iteration
		"detmap/bad.go:26:2", // assign to outer variable
	})
}

func TestNopanicGolden(t *testing.T) {
	expectDiags(t, runOne(t, Nopanic), []string{
		"nopanic/bad.go:13:3", // panic on input-dependent condition
		"nopanic/bad.go:19:2", // log.Fatal
		"nopanic/bad.go:24:2", // os.Exit
	})
}

func TestHotallocGolden(t *testing.T) {
	expectDiags(t, runOne(t, Hotalloc), []string{
		"hotalloc/bad.go:25:8",    // call to Sum where SumInto exists
		"hotalloc/bad.go:26:10",   // make inside solve-path loop
		"hotalloc/bad.go:28:9",    // append to nil slice declared in loop
		"hotalloc/edges.go:10:20", // g.Edges() in a hot package; EdgesView is free
	})
}

func TestWallclockGolden(t *testing.T) {
	expectDiags(t, runOne(t, Wallclock), []string{
		"wallclock/bad.go:12:9",   // time.Now
		"wallclock/bad.go:17:9",   // global-source rand.Intn
		"wallclockobs/bad.go:8:9", // time.Since outside the exempt realclock.go
	})
}

// TestWeightovfGolden pins the precision corpus: proven.go (range-proven
// sums and products, silent), overflow.go (certain overflow) and
// unprovable.go (unbounded accumulation, reported unless allowed).
func TestWeightovfGolden(t *testing.T) {
	expectDiags(t, runOne(t, Weightovf), []string{
		"weightovf/overflow.go:9:14",    // cost+cost with cost proven ≥ 2^62
		"weightovf/unprovable.go:8:9",   // unbounded += accumulation
		"weightovf/unprovable.go:15:15", // unconstrained * on weights
	})
}

// TestWeightovfDifferential pins the rewrite against the legacy syntactic
// pass: every site v1 flagged as unguarded must receive a dataflow verdict —
// the engine may refine (prove or sharpen) but never silently drop a site.
func TestWeightovfDifferential(t *testing.T) {
	prog := goldenProgram(t)
	for _, pkg := range prog.Requested {
		if !Weightovf.AppliesTo(pkg.Path) {
			continue
		}
		verdicts := map[string]bool{}
		for _, s := range weightovfSites(prog, pkg) {
			verdicts[prog.Fset.Position(s.pos).String()] = true
		}
		for _, f := range pkg.Files {
			for _, pos := range legacyWeightovfFlagged(pkg.Info, f) {
				p := prog.Fset.Position(pos).String()
				if !verdicts[p] {
					t.Errorf("%s: flagged by the legacy pass but has no dataflow verdict", p)
				}
			}
		}
	}
}

// TestBoundsafeGolden pins the //krsp:inbounds corpus: ok.go exercises all
// three discharge rules (interval, typed graph ID, monotone rows) over the
// real CSR type and must stay silent; bad.go pins the index, coverage and
// slice diagnostics.
func TestBoundsafeGolden(t *testing.T) {
	expectDiags(t, runOne(t, Boundsafe), []string{
		"boundsafe/bad.go:16:6",  // dst[raw[i]]: unconstrained index value
		"boundsafe/bad.go:24:6",  // UncoveredScanInto lacks //krsp:inbounds
		"boundsafe/bad.go:37:12", // dst[lo:hi]: unconstrained slice bounds
	})
}

// TestNilflowGolden pins the nil-sink audit against the real obs and cancel
// types: method calls and guarded field derefs stay silent, unguarded field
// reads, star copies and wrong-pointer guards are reported.
func TestNilflowGolden(t *testing.T) {
	expectDiags(t, runOne(t, Nilflow), []string{
		"nilflow/bad.go:13:10", // &r.Server off an unguarded registry
		"nilflow/bad.go:18:9",  // *cn copy of a possibly-nil canceller
		"nilflow/bad.go:26:10", // guard on a, deref of b
	})
}

// TestContractsGolden covers the whole-module contract checker: annotation
// coverage (including the SumInto kernel in the hotalloc golden, which the
// cross-package sweep must also see), transitive noalloc/terminates/
// deterministic verification, and the directive-level diagnostics.
func TestContractsGolden(t *testing.T) {
	expectDiags(t, runOne(t, Contracts), []string{
		"contracts/bad.go:9:6",         // ScratchInto lacks //krsp:noalloc
		"contracts/bad.go:23:9",        // make in fill, reached from noalloc BuildInto
		"contracts/bad.go:33:2",        // sort.Ints: unverifiable extern call from noalloc SortInto
		"contracts/bad.go:46:2",        // unpolled condition loop in drainLoop, from terminates Drain
		"contracts/bad.go:63:2",        // order-sensitive map range in collect, from deterministic Reduce
		"contracts/directives.go:6:1",  // misplaced contract on a type
		"contracts/directives.go:12:1", // duplicate //krsp:noalloc
		"contracts/directives.go:19:1", // terminates without the mandatory bound
		"contracts/directives.go:24:1", // unknown contract verb
		"hotalloc/bad.go:7:6",          // SumInto in the hotalloc golden also lacks //krsp:noalloc
	})
}

func TestMetricscatGolden(t *testing.T) {
	expectDiags(t, runOne(t, Metricscat), []string{
		"metricscat/families.go:5:12",  // "Bad_total" is not a well-formed family name
		"metricscat/families.go:6:12",  // counter family without _total
		"metricscat/families.go:8:10",  // duplicate family "dup_depth"
		"metricscat/families.go:11:12", // computed (non-constant, non-parameter) family argument
		"metricscat/metrics.go:37:2",   // Orphan registered but never recorded
		"metricscat/metrics.go:38:2",   // Missing never registered
	})
}

func TestEventcatGolden(t *testing.T) {
	expectDiags(t, runOne(t, Eventcat), []string{
		"eventcat/events.go:19:2",  // KindMissing has no catalogue row
		"eventcat/events.go:21:2",  // KindOrphan catalogued but never recorded
		"eventcat/events.go:35:22", // "Bad_Event" is not kebab-case
		"eventcat/events.go:37:22", // duplicate wire name "dup-event"
		"eventcat/events.go:67:11", // computed Record kind
	})
}

func TestFaultseamGolden(t *testing.T) {
	expectDiags(t, runOne(t, Faultseam), []string{
		"faultseam/seam.go:15:2",  // PointUnarmed consulted but never armed by a test
		"faultseam/seam.go:16:2",  // PointDead never consulted at a Check seam
		"faultseam/seam.go:54:14", // computed Check argument defeats the catalogue
	})
}

// TestLockcheckGolden pins the lock-set corpus, mounted under a cluster
// path so the coverage sweep applies: unlocked reads/writes, a write under
// a read hold, a locked-helper call without the lock, coverage gaps, and
// the directive-placement diagnostics. ok.go (defer-unlock, early unlock,
// constructor freshness, RLock reads and one allowed immutable field) must
// stay silent.
func TestLockcheckGolden(t *testing.T) {
	expectDiags(t, runOne(t, Lockcheck), []string{
		"lockcheck/bad.go:15:2",  // names shares the struct with mu, no guardedby
		"lockcheck/bad.go:18:2",  // guardedby(names): names is not a mutex
		"lockcheck/bad.go:19:2",  // tags still uncovered after the bad directive
		"lockcheck/bad.go:24:11", // Peek reads count without the lock
		"lockcheck/bad.go:29:4",  // Bump writes count without the lock
		"lockcheck/bad.go:41:2",  // Misuse calls the locked helper lock-free
		"lockcheck/bad.go:54:4",  // Weaken writes val under RLock only
		"lockcheck/bad.go:60:1",  // guardedby on a function declaration
	})
}

// TestGorolifeGolden pins the goroutine-lifecycle corpus: a bare spin loop,
// an unresolvable spawn target and a stale detached waiver. ok.go (select
// receive, channel range, named spawn, local literal, WaitGroup join, a
// legitimate //krsp:detached and one inline allow) must stay silent.
func TestGorolifeGolden(t *testing.T) {
	expectDiags(t, runOne(t, Gorolife), []string{
		"gorolife/bad.go:10:2", // bare for loop, no termination signal
		"gorolife/bad.go:20:2", // go f(): body not statically resolvable
		"gorolife/bad.go:25:1", // //krsp:detached on a spawn-free function
	})
}

// TestAtomicmixGolden pins the atomics-discipline corpus: mixed
// atomic/plain access to one variable, double-checked locking, and a path
// that returns with the mutex held. ok.go (all-atomic counters, deferred
// and all-paths unlocks, one allowed setup-phase plain write) must stay
// silent.
func TestAtomicmixGolden(t *testing.T) {
	expectDiags(t, runOne(t, Atomicmix), []string{
		"atomicmix/bad.go:21:9", // plain read of the atomically-updated hits
		"atomicmix/bad.go:33:2", // double-checked locking on b.ready
		"atomicmix/bad.go:46:3", // return with b.mu still held
	})
}

// TestSuppressdriftGolden runs detmap together with suppressdrift: the used
// allow in Gather survives, the stale one and the unknown-analyzer one are
// reported, and allows naming analyzers that did not run are left alone.
func TestSuppressdriftGolden(t *testing.T) {
	prog := goldenProgram(t)
	var got []string
	for _, d := range Run(prog, []*Analyzer{Detmap, Suppressdrift}) {
		if d.Analyzer != Suppressdrift.Name {
			continue
		}
		fname := filepath.ToSlash(d.Position.Filename)
		rel, ok := strings.CutPrefix(fname, "testdata/")
		if !ok {
			t.Fatalf("diagnostic outside testdata: %s", d.String())
		}
		got = append(got, fmt.Sprintf("%s:%d:%d", rel, d.Position.Line, d.Position.Column))
	}
	expectDiags(t, got, []string{
		"staledrift/golden.go:21:2", // detmap ran, allow suppressed nothing
		"staledrift/golden.go:31:2", // "detmpa" is no registered analyzer
	})
}

// TestMalformedDirectiveReported proves a reason-less //lint:allow is itself
// a diagnostic (and does not suppress anything).
func TestMalformedDirectiveReported(t *testing.T) {
	expectDiags(t, runFiltered(t, Detmap, "directive"), []string{
		"directive/bad.go:8:2",
	})
}

// TestRepoClean runs the full suite over the real module: the repo must stay
// lint-clean, with every deliberate exception carrying an annotated reason.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow")
	}
	prog, err := NewProgram(".")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.LoadAll(); err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, All())
	for _, d := range diags {
		t.Errorf("%s", d.StringRel(prog.ModuleRoot()))
	}
}
