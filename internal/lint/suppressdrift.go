package lint

// Suppressdrift keeps the //lint:allow audit trail honest. An allow
// directive is a standing claim — "this site violates analyzer X for the
// stated reason" — and the claim rots the moment the code changes: either
// the violation is gone (the directive is dead weight hiding future
// regressions at the same site) or the analyzer name was never right (a
// typo'd allow silently suppresses nothing while reading as if it did).
//
// The analyzer's logic lives inside Run, which already owns the suppression
// bookkeeping: after every requested analyzer has reported and allows have
// been applied, each directive that (a) names an analyzer outside the
// registered suite or (b) names one that ran yet suppressed nothing is
// itself a diagnostic. Directives naming analyzers that did NOT run this
// invocation are left alone, so partial `-analyzers` runs never flag the
// rest of the suite's annotations. This declaration exists so the check can
// be selected, listed and itself suppressed like any other analyzer.
var Suppressdrift = &Analyzer{
	Name: "suppressdrift",
	Doc:  "flag stale //lint:allow directives: unknown analyzer names and suppressions that no longer fire",
}
