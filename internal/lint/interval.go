package lint

import (
	"fmt"
	"go/types"
	"math"
)

// This file is the numeric half of the dataflow layer (DESIGN.md §12): a
// classic interval lattice over int64 with explicit infinities, saturating
// transfer functions, and threshold widening tuned to the solver's weight
// architecture. The abstract interpreter in dataflow.go drives it over the
// per-function CFG built in ir.go; weightovf and boundsafe consume the
// resulting ranges as proof obligations.

// ival is one element of the interval lattice: the set of int64 values in
// [lo, hi], with loInf/hiInf marking an unbounded end (the numeric bound is
// ignored on that side). The bottom element (empty set — unreachable code
// or contradictory refinement) is represented by bot.
type ival struct {
	lo, hi       int64
	loInf, hiInf bool
	bot          bool
}

func ivBot() ival          { return ival{bot: true} }
func ivTop() ival          { return ival{loInf: true, hiInf: true} }
func ivConst(v int64) ival { return ival{lo: v, hi: v} }

// ivRange is the interval [lo, hi]; lo > hi yields bottom.
func ivRange(lo, hi int64) ival {
	if lo > hi {
		return ivBot()
	}
	return ival{lo: lo, hi: hi}
}

func (a ival) isTop() bool { return !a.bot && a.loInf && a.hiInf }

// hasLo/hasHi report a finite bound on the respective side.
func (a ival) hasLo() bool { return !a.bot && !a.loInf }
func (a ival) hasHi() bool { return !a.bot && !a.hiInf }

func (a ival) String() string {
	switch {
	case a.bot:
		return "⊥"
	case a.loInf && a.hiInf:
		return "[-∞,+∞]"
	case a.loInf:
		return fmt.Sprintf("[-∞,%d]", a.hi)
	case a.hiInf:
		return fmt.Sprintf("[%d,+∞]", a.lo)
	}
	return fmt.Sprintf("[%d,%d]", a.lo, a.hi)
}

// join is the lattice least upper bound (set union, widened to an interval).
func (a ival) join(b ival) ival {
	if a.bot {
		return b
	}
	if b.bot {
		return a
	}
	out := ival{}
	if a.loInf || b.loInf {
		out.loInf = true
	} else {
		out.lo = min64(a.lo, b.lo)
	}
	if a.hiInf || b.hiInf {
		out.hiInf = true
	} else {
		out.hi = max64(a.hi, b.hi)
	}
	return out
}

// meet is the lattice greatest lower bound (set intersection).
func (a ival) meet(b ival) ival {
	if a.bot || b.bot {
		return ivBot()
	}
	out := ival{loInf: a.loInf && b.loInf, hiInf: a.hiInf && b.hiInf}
	switch {
	case a.loInf:
		out.lo = b.lo
	case b.loInf:
		out.lo = a.lo
	default:
		out.lo = max64(a.lo, b.lo)
	}
	switch {
	case a.hiInf:
		out.hi = b.hi
	case b.hiInf:
		out.hi = a.hi
	default:
		out.hi = min64(a.hi, b.hi)
	}
	if !out.loInf && !out.hiInf && out.lo > out.hi {
		return ivBot()
	}
	if out.loInf && !out.hiInf {
		out.lo = 0
	}
	if out.hiInf && !out.loInf {
		out.hi = 0
	}
	return out
}

// widenThresholds are the jump targets for threshold widening, chosen so
// the bounds the solver's proofs care about survive a widen instead of
// blowing straight to ±∞: 0 and ±1 (loop counters and parities), MaxWeight
// = 2^30 (Instance.Validate's edge-weight cap), 2^31 (int32 index range,
// the CSR row-offset width), 2^59 (weightovf's historical guard constant),
// 2^61 (the Σ over m weights bound), 2^62 (the masking sentinel) and the
// int64 extremes.
var widenThresholds = []int64{
	math.MinInt64, -(int64(1) << 62), -(int64(1) << 61), -(int64(1) << 59),
	-(int64(1) << 31), -(int64(1) << 30), -1, 0, 1,
	int64(1) << 30, int64(1) << 31, int64(1) << 59, int64(1) << 61,
	int64(1) << 62, math.MaxInt64,
}

// widen extrapolates a changing bound to the next threshold: if next grew
// past prev on a side, that side jumps outward to the nearest enclosing
// threshold (±∞ past the extremes). Bounds that held stay exact, so a
// nonnegative loop counter keeps lo = 0 while hi widens.
func (a ival) widen(next ival) ival {
	if a.bot {
		return next
	}
	if next.bot {
		return a
	}
	out := next
	if !a.loInf && !next.loInf && next.lo < a.lo {
		out.loInf = true
		for i := len(widenThresholds) - 1; i >= 0; i-- {
			if widenThresholds[i] <= next.lo {
				out.lo, out.loInf = widenThresholds[i], false
				break
			}
		}
	} else if a.loInf {
		out.loInf = true
	}
	if !a.hiInf && !next.hiInf && next.hi > a.hi {
		out.hiInf = true
		for _, t := range widenThresholds {
			if t >= next.hi {
				out.hi, out.hiInf = t, false
				break
			}
		}
	} else if a.hiInf {
		out.hiInf = true
	}
	return out
}

// eq reports lattice equality.
func (a ival) eq(b ival) bool {
	if a.bot || b.bot {
		return a.bot == b.bot
	}
	if a.loInf != b.loInf || a.hiInf != b.hiInf {
		return false
	}
	if !a.loInf && a.lo != b.lo {
		return false
	}
	if !a.hiInf && a.hi != b.hi {
		return false
	}
	return true
}

// within reports that every value of a lies in [lo, hi] — the proof check.
// Bottom (unreachable) is vacuously within any bounds.
func (a ival) within(lo, hi int64) bool {
	if a.bot {
		return true
	}
	return !a.loInf && !a.hiInf && a.lo >= lo && a.hi <= hi
}

// addSat / mulSat saturate on int64 overflow, reporting whether the exact
// result fit. Saturation direction follows the sign of the true result.
func addSat(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		if a > 0 {
			return math.MaxInt64, false
		}
		return math.MinInt64, false
	}
	return s, true
}

func mulSat(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if a == math.MinInt64 || b == math.MinInt64 || p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64, false
		}
		return math.MinInt64, false
	}
	return p, true
}

// add is interval addition; a saturated (overflowing) end becomes ±∞, so a
// possibly-wrapping sum can never be proven in range.
func (a ival) add(b ival) ival {
	if a.bot || b.bot {
		return ivBot()
	}
	out := ival{loInf: a.loInf || b.loInf, hiInf: a.hiInf || b.hiInf}
	if !out.loInf {
		v, ok := addSat(a.lo, b.lo)
		out.lo, out.loInf = v, !ok
	}
	if !out.hiInf {
		v, ok := addSat(a.hi, b.hi)
		out.hi, out.hiInf = v, !ok
	}
	return out
}

// neg is interval negation (-MinInt64 overflows to an unbounded top end).
func (a ival) neg() ival {
	if a.bot {
		return a
	}
	out := ival{loInf: a.hiInf, hiInf: a.loInf}
	if !out.loInf {
		out.lo = -a.hi
	}
	if !out.hiInf {
		if a.lo == math.MinInt64 {
			out.hiInf = true
		} else {
			out.hi = -a.lo
		}
	}
	return out
}

// sub is a + (-b).
func (a ival) sub(b ival) ival { return a.add(b.neg()) }

// mul is interval multiplication over the four corner products, with any
// unbounded or saturating corner widening the result end to ±∞.
func (a ival) mul(b ival) ival {
	if a.bot || b.bot {
		return ivBot()
	}
	if a.isTop() || b.isTop() {
		return ivTop()
	}
	// An unbounded end behaves like an overflowing corner: the result is
	// unbounded on both sides unless the other operand is exactly zero.
	if a.loInf || a.hiInf || b.loInf || b.hiInf {
		if a.eq(ivConst(0)) || b.eq(ivConst(0)) {
			return ivConst(0)
		}
		return ivTop()
	}
	corners := [4][2]int64{{a.lo, b.lo}, {a.lo, b.hi}, {a.hi, b.lo}, {a.hi, b.hi}}
	out := ival{lo: math.MaxInt64, hi: math.MinInt64}
	for _, c := range corners {
		v, ok := mulSat(c[0], c[1])
		if !ok {
			if v > 0 {
				out.hiInf = true
			} else {
				out.loInf = true
			}
			continue
		}
		out.lo = min64(out.lo, v)
		out.hi = max64(out.hi, v)
	}
	if out.loInf && !out.hiInf && out.hi == math.MinInt64 {
		out.hi = math.MaxInt64 // all corners underflowed
		out.hiInf = true
	}
	if out.hiInf && !out.loInf && out.lo == math.MaxInt64 {
		out.loInf = true
	}
	return out
}

// shl is a << k for a constant shift k (used for the 1<<k idiom); variable
// shifts return top.
func (a ival) shl(k ival) ival {
	if a.bot || k.bot {
		return ivBot()
	}
	if !k.hasLo() || !k.hasHi() || k.lo != k.hi || k.lo < 0 || k.lo > 62 {
		return ivTop()
	}
	return a.mul(ivConst(int64(1) << uint(k.lo)))
}

// typeInterval returns the value range implied by a static type: exact for
// the fixed-width integer kinds, conservatively 64-bit for int/uint(ptr),
// and top for everything non-integer. This is the engine's base fact: an
// int32 expression is in [-2^31, 2^31-1] with no analysis at all, which is
// what makes NodeID/EdgeID (int32) arithmetic cheap to bound.
func typeInterval(t types.Type) ival {
	if t == nil {
		return ivTop()
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ivTop()
	}
	switch b.Kind() {
	case types.Int8:
		return ivRange(math.MinInt8, math.MaxInt8)
	case types.Int16:
		return ivRange(math.MinInt16, math.MaxInt16)
	case types.Int32, types.UntypedRune:
		return ivRange(math.MinInt32, math.MaxInt32)
	case types.Int64, types.Int:
		return ivRange(math.MinInt64, math.MaxInt64)
	case types.Uint8:
		return ivRange(0, math.MaxUint8)
	case types.Uint16:
		return ivRange(0, math.MaxUint16)
	case types.Uint32:
		return ivRange(0, math.MaxUint32)
	case types.Uint64, types.Uint, types.Uintptr:
		// The upper half of uint64 is outside int64; only the lower bound
		// survives in this lattice.
		return ival{lo: 0, hiInf: true}
	}
	return ivTop()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
