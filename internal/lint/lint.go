// Package lint is the project-invariant static-analysis suite behind
// cmd/krsplint. It runs at two levels. Six per-package analyzers enforce
// the properties PR 1 made load-bearing but left unguarded: bit-identical
// determinism for any worker count, zero-alloc *_Into kernels on the solve
// path, and overflow-safe int64 weight arithmetic within the 2^62 sentinel
// range. On top of them a whole-module interprocedural engine loads every
// package into one shared type universe, builds a static call graph and an
// SSA-lite interval dataflow layer (DESIGN.md §12), and runs six
// cross-layer analyzers: boundsafe (the checked //krsp:inbounds contract —
// index arithmetic in annotated CSR kernels proven in range), nilflow (no
// possibly-nil *obs.Registry / *cancel.Canceller dereference on any solve
// path), contracts (checked //krsp:noalloc, //krsp:terminates(<reason>)
// and //krsp:deterministic annotations, verified against each function's
// transitive callees), metricscat (the obs metric catalogue: registered,
// recorded, well-formed unique family names), faultseam (every fault point
// consulted at a seam and armed by a test), and suppressdrift (stale
// //lint:allow directives are errors). The weightovf per-package analyzer
// also rides the dataflow layer: its verdicts are interval proofs rather
// than syntactic guesses. The concurrency layer (DESIGN.md §15) adds three
// more cross-layer analyzers on the same engine: lockcheck (lock-set
// analysis for the //krsp:guardedby(<lock>) field contract and the
// //krsp:locked(<lock>) caller-holds-lock helper contract, plus coverage
// of mutex-sharing fields in the cluster, solvecache and krspd packages),
// gorolife (every go statement proves a termination signal or carries
// //krsp:detached(<reason>)), and atomicmix (mixed atomic/plain access,
// double-checked locking, paths exiting with a mutex held).
//
// The framework is built on the standard library only (go/ast, go/parser,
// go/types with GOROOT source importing), so it runs offline. Analyzers
// report diagnostics with exact positions; a site can opt out with a
// same-line or preceding-line directive
//
//	//lint:allow <analyzer> <reason>
//
// where the reason is mandatory — an allow without a justification is
// itself reported, and one that no longer suppresses anything is flagged
// by suppressdrift. DESIGN.md §8 lists each analyzer and the invariant it
// protects.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named check. Per-package analyzers set Run and report
// through a Pass bound to each requested package in turn; AppliesTo filters
// by package import path so invariants can target the deterministic or
// solve-path package sets. Whole-module analyzers (the call-graph contract
// checker and the cross-layer consistency checks) set RunProgram instead:
// it is invoked once per Run with Pass.Pkg == nil and sees every loaded
// package through Pass.Prog.
type Analyzer struct {
	Name string
	// Version participates in the cache fingerprint (Fingerprint): bump it
	// whenever the analyzer's verdicts change for unchanged sources, so warm
	// krsplint caches invalidate instead of replaying stale results.
	Version int
	Doc     string
	// AppliesTo reports whether the analyzer runs on the given import path.
	// nil means every requested package. Ignored for RunProgram analyzers.
	AppliesTo func(pkgPath string) bool
	Run       func(pass *Pass)
	// RunProgram, when non-nil, makes the analyzer whole-module: it runs
	// once per Run call instead of once per package.
	RunProgram func(pass *Pass)
}

// Pass is the per-(analyzer, package) analysis context.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders "path:line:col: analyzer: message" with the file path
// relative to root (when nonempty) so CI output is machine-stable.
func (d Diagnostic) String() string { return d.StringRel("") }

// StringRel is String with file paths rewritten relative to root.
func (d Diagnostic) StringRel(root string) string {
	file := d.Position.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", file, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Run executes the analyzers over every requested package of prog, applies
// //lint:allow suppressions, and returns the surviving diagnostics sorted
// by (file, line, column, analyzer, message) — a stable report for CI
// diffing. Malformed allow directives are reported under the pseudo-analyzer
// name "directive".
//
// Suppression usage is tracked: when the suppressdrift analyzer is among
// the requested set, every //lint:allow whose named analyzer also ran but
// which suppressed nothing is itself reported — stale annotations rot the
// audit trail exactly like stale code comments. An allow naming an analyzer
// that did not run this invocation is left alone (a partial `-analyzers`
// run must not flag the rest of the suite's annotations).
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	pkgs := append([]*Package(nil), prog.Requested...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.RunProgram != nil || a.Run == nil {
				continue
			}
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &Pass{Analyzer: a, Prog: prog, diags: &diags}
		a.RunProgram(pass)
	}
	allows, malformed := collectAllows(prog, pkgs)
	diags = append(diags, malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if allows.suppresses(d) {
			continue
		}
		kept = append(kept, d)
	}
	if ran[Suppressdrift.Name] {
		stale := staleAllowDiags(allows, ran)
		for _, d := range stale {
			if allows.suppresses(d) {
				continue
			}
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}

// allowKey identifies a suppression site: a directive on line L suppresses
// diagnostics of its analyzer on line L (end-of-line form) and line L+1
// (preceding-line form).
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowDirective is one well-formed //lint:allow with its usage bookkeeping.
type allowDirective struct {
	pos      token.Position
	analyzer string
	used     bool
}

type allowSet map[allowKey]*allowDirective

func (s allowSet) suppresses(d Diagnostic) bool {
	f, l := d.Position.Filename, d.Position.Line
	if a := s[allowKey{f, l, d.Analyzer}]; a != nil {
		a.used = true
		return true
	}
	if a := s[allowKey{f, l - 1, d.Analyzer}]; a != nil {
		a.used = true
		return true
	}
	return false
}

func collectAllows(prog *Program, pkgs []*Package) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					analyzer, _, isAllow, err := parseAllow(c.Text)
					if !isAllow {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					if err != nil {
						malformed = append(malformed, Diagnostic{
							Analyzer: "directive",
							Position: pos,
							Message:  err.Error(),
						})
						continue
					}
					allows[allowKey{pos.Filename, pos.Line, analyzer}] = &allowDirective{pos: pos, analyzer: analyzer}
				}
			}
		}
	}
	return allows, malformed
}

// staleAllowDiags reports, in deterministic order, every allow directive
// that (a) names an analyzer outside the registered suite, or (b) names an
// analyzer that ran in this invocation yet suppressed no diagnostic.
func staleAllowDiags(allows allowSet, ran map[string]bool) []Diagnostic {
	known := map[string]bool{"directive": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, a := range allows {
		switch {
		case !known[a.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: Suppressdrift.Name,
				Position: a.pos,
				Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q; the suppression can never fire", a.analyzer),
			})
		case ran[a.analyzer] && !a.used:
			out = append(out, Diagnostic{
				Analyzer: Suppressdrift.Name,
				Position: a.pos,
				Message:  fmt.Sprintf("stale //lint:allow %s: the line no longer triggers the analyzer; remove the directive", a.analyzer),
			})
		}
	}
	return out
}

// pathHasSegment reports whether path, split on '/', contains seg.
func pathHasSegment(path, seg string) bool {
	for len(path) > 0 {
		i := strings.IndexByte(path, '/')
		var head string
		if i < 0 {
			head, path = path, ""
		} else {
			head, path = path[:i], path[i+1:]
		}
		if head == seg {
			return true
		}
	}
	return false
}

func pathHasAnySegment(path string, segs map[string]bool) bool {
	for len(path) > 0 {
		i := strings.IndexByte(path, '/')
		var head string
		if i < 0 {
			head, path = path, ""
		} else {
			head, path = path[:i], path[i+1:]
		}
		if segs[head] {
			return true
		}
	}
	return false
}

// enclosingFuncDecl returns the innermost function declaration containing
// pos in the file, or nil.
func enclosingFuncDecl(f *ast.File, pos token.Pos) *ast.FuncDecl {
	var found *ast.FuncDecl
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			found = fd
		}
	}
	return found
}
