// Package lint is the project-invariant static-analysis suite behind
// cmd/krsplint. It enforces the three properties PR 1 made load-bearing but
// left unguarded: bit-identical determinism for any worker count, zero-alloc
// *_Into kernels on the solve path, and overflow-safe int64 weight
// arithmetic within the 2^62 sentinel range.
//
// The framework is built on the standard library only (go/ast, go/parser,
// go/types with GOROOT source importing), so it runs offline. Analyzers
// report diagnostics with exact positions; a site can opt out with a
// same-line or preceding-line directive
//
//	//lint:allow <analyzer> <reason>
//
// where the reason is mandatory — an allow without a justification is
// itself reported. DESIGN.md §8 lists each analyzer and the invariant it
// protects.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named check. Run reports through the Pass; AppliesTo
// filters by package import path so invariants can target the deterministic
// or solve-path package sets.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo reports whether the analyzer runs on the given import path.
	// nil means every requested package.
	AppliesTo func(pkgPath string) bool
	Run       func(pass *Pass)
}

// Pass is the per-(analyzer, package) analysis context.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders "path:line:col: analyzer: message" with the file path
// relative to root (when nonempty) so CI output is machine-stable.
func (d Diagnostic) String() string { return d.StringRel("") }

// StringRel is String with file paths rewritten relative to root.
func (d Diagnostic) StringRel(root string) string {
	file := d.Position.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", file, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Run executes the analyzers over every requested package of prog, applies
// //lint:allow suppressions, and returns the surviving diagnostics sorted
// by (file, line, column, analyzer, message) — a stable report for CI
// diffing. Malformed allow directives are reported under the pseudo-analyzer
// name "directive".
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	pkgs := append([]*Package(nil), prog.Requested...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	allows, malformed := collectAllows(prog, pkgs)
	diags = append(diags, malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if allows.suppresses(d) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}

// allowKey identifies a suppression site: a directive on line L suppresses
// diagnostics of its analyzer on line L (end-of-line form) and line L+1
// (preceding-line form).
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

func (s allowSet) suppresses(d Diagnostic) bool {
	f, l := d.Position.Filename, d.Position.Line
	return s[allowKey{f, l, d.Analyzer}] || s[allowKey{f, l - 1, d.Analyzer}]
}

const allowPrefix = "//lint:allow"

func collectAllows(prog *Program, pkgs []*Package) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Analyzer: "directive",
							Position: pos,
							Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" (reason is mandatory)",
						})
						continue
					}
					allows[allowKey{pos.Filename, pos.Line, fields[0]}] = true
				}
			}
		}
	}
	return allows, malformed
}

// pathHasSegment reports whether path, split on '/', contains seg.
func pathHasSegment(path, seg string) bool {
	for len(path) > 0 {
		i := strings.IndexByte(path, '/')
		var head string
		if i < 0 {
			head, path = path, ""
		} else {
			head, path = path[:i], path[i+1:]
		}
		if head == seg {
			return true
		}
	}
	return false
}

func pathHasAnySegment(path string, segs map[string]bool) bool {
	for len(path) > 0 {
		i := strings.IndexByte(path, '/')
		var head string
		if i < 0 {
			head, path = path, ""
		} else {
			head, path = path[:i], path[i+1:]
		}
		if segs[head] {
			return true
		}
	}
	return false
}

// enclosingFuncDecl returns the innermost function declaration containing
// pos in the file, or nil.
func enclosingFuncDecl(f *ast.File, pos token.Pos) *ast.FuncDecl {
	var found *ast.FuncDecl
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			found = fd
		}
	}
	return found
}
