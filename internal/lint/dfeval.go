package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
)

// This file holds the transfer functions of the dataflow engine: statement
// effects, the expression evaluator (which doubles as the hook-firing walk
// after the fixpoint stabilizes), and branch-condition refinement. All
// arithmetic is saturating (interval.go): a possibly-wrapping operation
// widens to ±∞ rather than ever being proven in range.

// transfer applies one straight-line statement to env in place.
func (fi *funcInterp) transfer(env *absEnv, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		fi.transferAssign(env, s)
	case *ast.IncDecStmt:
		v := fi.eval(env, s.X)
		one := ivConst(1)
		var r ival
		if s.Tok == token.INC {
			r = v.iv.add(one)
		} else {
			r = v.iv.sub(one)
		}
		if ref, ok := fi.symRefOf(s.X); ok {
			t := fi.info.Types[s.X].Type
			if ref.path != "" {
				env.killHeap()
			} else {
				env.killRoot(ref.root)
			}
			env.setVal(ref, r.meet(typeInterval(t)))
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			switch {
			case len(vs.Values) == len(vs.Names):
				vals := make([]absVal, len(vs.Values))
				for i, e := range vs.Values {
					vals[i] = fi.eval(env, e)
				}
				if fi.hasCall(vs.Values...) {
					env.killHeap()
				}
				for i, name := range vs.Names {
					fi.assignIdent(env, name, vals[i])
				}
			case len(vs.Values) == 0:
				for _, name := range vs.Names {
					if obj := fi.info.Defs[name]; obj != nil && !fi.untracked[obj] {
						fi.setZero(env, symRef{root: obj})
					}
				}
			default: // tuple initializer
				for _, e := range vs.Values {
					fi.eval(env, e)
				}
				env.killHeap()
				for _, name := range vs.Names {
					if obj := fi.info.Defs[name]; obj != nil {
						env.killRoot(obj)
					}
				}
			}
		}
	case *ast.ExprStmt:
		fi.eval(env, s.X)
		if fi.hasCall(s.X) {
			env.killHeap()
		}
	case *ast.ReturnStmt:
		var vals []absVal
		if len(s.Results) > 0 {
			vals = make([]absVal, len(s.Results))
			for i, e := range s.Results {
				vals[i] = fi.eval(env, e)
			}
		} else {
			for _, obj := range fi.results {
				vals = append(vals, fi.lookup(env, symRef{root: obj}, obj.Type()))
			}
		}
		if fi.hooks != nil && fi.hooks.ret != nil {
			fi.hooks.ret(s, vals, env)
		}
	case *ast.DeferStmt:
		fi.eval(env, s.Call)
		env.killHeap()
	case *ast.GoStmt:
		fi.eval(env, s.Call)
		env.killHeap()
	case *ast.SendStmt:
		fi.eval(env, s.Chan)
		fi.eval(env, s.Value)
		if fi.hasCall(s.Chan, s.Value) {
			env.killHeap()
		}
	}
}

func (fi *funcInterp) transferAssign(env *absEnv, s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) == len(s.Rhs) {
			vals := make([]absVal, len(s.Rhs))
			for i, e := range s.Rhs {
				vals[i] = fi.eval(env, e)
			}
			if fi.hasCall(s.Rhs...) {
				env.killHeap()
			}
			for i, lhs := range s.Lhs {
				fi.assignTo(env, lhs, vals[i])
			}
			return
		}
		// Tuple assignment: a call, map lookup, type assertion or receive.
		for _, e := range s.Rhs {
			fi.eval(env, e)
		}
		env.killHeap()
		for _, lhs := range s.Lhs {
			fi.assignTo(env, lhs, absVal{iv: ivTop()})
		}
	default:
		// Op-assign: x op= y desugars to x = x op y.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return
		}
		xv := fi.eval(env, s.Lhs[0])
		yv := fi.eval(env, s.Rhs[0])
		op, ok := assignOpToken(s.Tok)
		if !ok {
			fi.assignTo(env, s.Lhs[0], absVal{iv: ivTop()})
			return
		}
		r := fi.applyOp(op, xv.iv, yv.iv)
		// No node-level dedup needed: each statement lives in exactly one
		// block and the hook walk transfers each block once.
		if fi.hooks != nil && fi.hooks.assignOp != nil &&
			(op == token.ADD || op == token.SUB || op == token.MUL) &&
			isInt64(fi.info, s.Lhs[0]) {
			fi.hooks.assignOp(s, xv.iv, yv.iv, r, env)
		}
		if fi.hasCall(s.Rhs...) {
			env.killHeap()
		}
		t := fi.info.Types[s.Lhs[0]].Type
		fi.assignTo(env, s.Lhs[0], absVal{iv: r.meet(typeInterval(t))})
	}
}

func assignOpToken(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	case token.SHL_ASSIGN:
		return token.SHL, true
	case token.SHR_ASSIGN:
		return token.SHR, true
	case token.AND_ASSIGN:
		return token.AND, true
	case token.OR_ASSIGN:
		return token.OR, true
	case token.XOR_ASSIGN:
		return token.XOR, true
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT, true
	}
	return 0, false
}

// assignTo stores v into an lvalue. Stores through fields or pointers kill
// every heap fact first (the store may alias any of them), then record the
// stored fact; element stores through an index leave the environment alone
// (elements are never tracked, lengths do not change).
func (fi *funcInterp) assignTo(env *absEnv, lhs ast.Expr, v absVal) {
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		fi.assignIdent(env, l, v)
	case *ast.SelectorExpr:
		bv := fi.eval(env, l.X)
		if isPtr(fi.info.Types[l.X].Type) {
			fi.fireDeref(l, l.X, bv.nl, env)
		}
		ref, ok := fi.symRefOf(l)
		env.killHeap()
		if ok {
			fi.store(env, ref, v, fi.info.Types[l].Type)
		}
	case *ast.IndexExpr:
		fi.eval(env, l)
	case *ast.StarExpr:
		bv := fi.eval(env, l.X)
		fi.fireDeref(l, l.X, bv.nl, env)
		env.killHeap()
	}
}

func (fi *funcInterp) assignIdent(env *absEnv, id *ast.Ident, v absVal) {
	if id.Name == "_" {
		return
	}
	obj := fi.info.ObjectOf(id)
	if obj == nil || fi.untracked[obj] {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	env.killRoot(obj)
	fi.store(env, symRef{root: obj}, v, obj.Type())
}

func (fi *funcInterp) store(env *absEnv, ref symRef, v absVal, t types.Type) {
	env.setVal(ref, v.iv.meet(typeInterval(t)))
	env.setNil(ref, v.nl)
	if v.lenOf != nil {
		env.setLen(ref, *v.lenOf)
	}
}

// fireOnce gates a hook callback: true exactly once per AST node, and only
// during the post-fixpoint hook walk. The same node can be evaluated more
// than once (a condition feeds both its branch edges, and short-circuit
// refinement re-walks operands), so hook firing dedups by node identity.
func (fi *funcInterp) fireOnce(n ast.Expr) bool {
	if fi.hooks == nil || fi.evaled[n] {
		return false
	}
	fi.evaled[n] = true
	return true
}

func (fi *funcInterp) fireDeref(at ast.Expr, base ast.Expr, nl nilness, env *absEnv) {
	if fi.hooks != nil && fi.hooks.deref != nil && fi.fireOnce(at) {
		fi.hooks.deref(at, base, nl, env)
	}
}

// eval computes the abstract value of an expression, firing analyzer hooks
// at arithmetic, index, slice and dereference sites along the way.
func (fi *funcInterp) eval(env *absEnv, e ast.Expr) absVal {
	tv := fi.info.Types[e]
	if tv.IsNil() {
		return absVal{iv: ivTop(), nl: nilIsNil}
	}
	if tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, ok := constant.Int64Val(tv.Value); ok {
			return absVal{iv: ivConst(v)}
		}
		return typedVal(tv.Type)
	}

	switch e := e.(type) {
	case *ast.ParenExpr:
		return fi.eval(env, e.X)

	case *ast.Ident:
		if ref, ok := fi.symRefOf(e); ok {
			return fi.lookup(env, ref, tv.Type)
		}
		return typedVal(tv.Type)

	case *ast.SelectorExpr:
		// Package-qualified names have no selection entry; fields and
		// methods do. A selection through a pointer base is a dereference.
		if _, ok := fi.info.Selections[e]; !ok {
			return typedVal(tv.Type)
		}
		bv := fi.eval(env, e.X)
		if isPtr(fi.info.Types[e.X].Type) {
			fi.fireDeref(e, e.X, bv.nl, env)
		}
		if ref, ok := fi.symRefOf(e); ok {
			return fi.lookup(env, ref, tv.Type)
		}
		return typedVal(tv.Type)

	case *ast.IndexExpr:
		fi.eval(env, e.X)
		idx := fi.eval(env, e.Index)
		if indexable(fi.info.Types[e.X].Type) {
			if fi.hooks != nil && fi.hooks.index != nil && fi.fireOnce(e) {
				fi.hooks.index(e, idx.iv, fi.indexProven(env, e.X, e.Index, idx.iv), env)
			}
		}
		return typedVal(tv.Type)

	case *ast.SliceExpr:
		fi.eval(env, e.X)
		var low, high absVal
		if e.Low != nil {
			low = fi.eval(env, e.Low)
		}
		if e.High != nil {
			high = fi.eval(env, e.High)
		}
		if e.Max != nil {
			fi.eval(env, e.Max)
		}
		if fi.hooks != nil && fi.hooks.slice != nil && fi.fireOnce(e) {
			fi.hooks.slice(e, fi.sliceProven(env, e, low, high), env)
		}
		return absVal{iv: ivTop()}

	case *ast.CallExpr:
		return fi.evalCall(env, e, tv.Type)

	case *ast.BinaryExpr:
		return fi.evalBinary(env, e, tv.Type)

	case *ast.UnaryExpr:
		switch e.Op {
		case token.SUB:
			v := fi.eval(env, e.X)
			return absVal{iv: v.iv.neg().meet(typeInterval(tv.Type))}
		case token.AND:
			fi.eval(env, e.X)
			return absVal{iv: ivTop(), nl: nilNonNil}
		case token.NOT, token.ADD, token.XOR, token.ARROW:
			fi.eval(env, e.X)
			return typedVal(tv.Type)
		}
		fi.eval(env, e.X)
		return typedVal(tv.Type)

	case *ast.StarExpr:
		v := fi.eval(env, e.X)
		fi.fireDeref(e, e.X, v.nl, env)
		return typedVal(tv.Type)

	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				fi.eval(env, kv.Value)
				continue
			}
			fi.eval(env, el)
		}
		return absVal{iv: ivTop(), nl: nilNonNil}

	case *ast.FuncLit:
		// Closures run under their own little fixpoint so hooks inside
		// worker bodies still see refined ranges; return summaries stay
		// with the enclosing declaration (ret hook stripped).
		if fi.hooks != nil && fi.fireOnce(e) {
			sub := &funcInterp{
				e:         fi.e,
				site:      fi.site,
				info:      fi.info,
				untracked: mergeUntracked(fi.untracked, untrackedObjects(e.Body, fi.info)),
			}
			subHooks := *fi.hooks
			subHooks.ret = nil
			sub.run(buildIR(e.Body), e.Type, nil, &subHooks)
		}
		return absVal{iv: ivTop(), nl: nilNonNil}

	case *ast.TypeAssertExpr:
		fi.eval(env, e.X)
		return typedVal(tv.Type)
	}
	return typedVal(tv.Type)
}

func mergeUntracked(a, b map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (fi *funcInterp) evalCall(env *absEnv, call *ast.CallExpr, t types.Type) absVal {
	if fv, ok := fi.info.Types[call.Fun]; ok && fv.IsType() {
		// Conversion: exact when the operand provably fits the target's
		// range; otherwise the target type's full range (wrapping).
		v := fi.eval(env, call.Args[0])
		ti := typeInterval(t)
		out := absVal{iv: ti, nl: v.nl}
		if v.iv.bot {
			out.iv = ivBot()
		} else if ti.hasLo() && ti.hasHi() && v.iv.within(ti.lo, ti.hi) {
			out.iv = v.iv
		}
		return out
	}

	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := fi.info.ObjectOf(id).(*types.Builtin); isBuiltin {
			return fi.evalBuiltin(env, id.Name, call, t)
		}
	}

	fi.eval(env, call.Fun)
	for _, a := range call.Args {
		fi.eval(env, a)
	}
	out := typedVal(t)
	if callee := calleeFunc(fi.info, call); callee != nil {
		if _, declared := fi.e.cg.decls[callee]; declared {
			out.iv = fi.e.summaryIval(callee, t).meet(typeInterval(t))
			if fi.e.retNonNil[callee] {
				out.nl = nilNonNil
			}
		}
	}
	return out
}

func (fi *funcInterp) evalBuiltin(env *absEnv, name string, call *ast.CallExpr, t types.Type) absVal {
	for _, a := range call.Args {
		fi.eval(env, a)
	}
	switch name {
	case "len":
		out := absVal{iv: lenIval()}
		if ref, ok := fi.symRefOf(call.Args[0]); ok {
			out.lenOf = &ref
		}
		if at, ok := fi.info.Types[call.Args[0]].Type.Underlying().(*types.Array); ok {
			out.iv = ivConst(at.Len())
		}
		return out
	case "cap":
		return absVal{iv: lenIval()}
	case "min", "max":
		if len(call.Args) == 0 {
			return typedVal(t)
		}
		acc := fi.eval(env, call.Args[0]).iv
		for _, a := range call.Args[1:] {
			v := fi.eval(env, a).iv
			if name == "min" {
				acc = ivMin(acc, v)
			} else {
				acc = ivMax(acc, v)
			}
		}
		return absVal{iv: acc.meet(typeInterval(t))}
	case "make", "new", "append":
		return absVal{iv: ivTop(), nl: nilNonNil}
	}
	return typedVal(t)
}

// ivMin/ivMax are the pointwise interval images of the min/max builtins.
func ivMin(a, b ival) ival {
	if a.bot || b.bot {
		return ivBot()
	}
	out := ival{loInf: a.loInf || b.loInf, hiInf: a.hiInf && b.hiInf}
	if !out.loInf {
		out.lo = min64(a.lo, b.lo)
	}
	if !out.hiInf {
		switch {
		case a.hiInf:
			out.hi = b.hi
		case b.hiInf:
			out.hi = a.hi
		default:
			out.hi = min64(a.hi, b.hi)
		}
	}
	return out
}

func ivMax(a, b ival) ival {
	return ivMin(a.neg(), b.neg()).neg()
}

func (fi *funcInterp) evalBinary(env *absEnv, e *ast.BinaryExpr, t types.Type) absVal {
	switch e.Op {
	case token.LAND:
		fi.eval(env, e.X)
		fi.eval(fi.assume(env.clone(), e.X, true), e.Y)
		return typedVal(t)
	case token.LOR:
		fi.eval(env, e.X)
		fi.eval(fi.assume(env.clone(), e.X, false), e.Y)
		return typedVal(t)
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		fi.eval(env, e.X)
		fi.eval(env, e.Y)
		return typedVal(t)
	}
	xv := fi.eval(env, e.X)
	yv := fi.eval(env, e.Y)
	r := fi.applyOp(e.Op, xv.iv, yv.iv)
	if fi.hooks != nil && fi.hooks.binary != nil &&
		(e.Op == token.ADD || e.Op == token.SUB || e.Op == token.MUL) &&
		isInt64(fi.info, e) && fi.fireOnce(e) {
		fi.hooks.binary(e, xv.iv, yv.iv, r, env)
	}
	return absVal{iv: r.meet(typeInterval(t))}
}

// applyOp is the interval image of one arithmetic operator. Everything here
// saturates: an end that may wrap becomes ±∞, never a finite lie.
func (fi *funcInterp) applyOp(op token.Token, x, y ival) ival {
	switch op {
	case token.ADD:
		return x.add(y)
	case token.SUB:
		return x.sub(y)
	case token.MUL:
		return x.mul(y)
	case token.QUO:
		return ivDiv(x, y)
	case token.REM:
		return ivRem(x, y)
	case token.SHL:
		return x.shl(y)
	case token.SHR:
		return ivShr(x, y)
	case token.AND:
		if x.hasLo() && x.lo >= 0 && y.hasLo() && y.lo >= 0 {
			out := ival{lo: 0, hiInf: x.hiInf && y.hiInf}
			if !out.hiInf {
				switch {
				case x.hiInf:
					out.hi = y.hi
				case y.hiInf:
					out.hi = x.hi
				default:
					out.hi = min64(x.hi, y.hi)
				}
			}
			return out
		}
	case token.AND_NOT:
		if x.hasLo() && x.lo >= 0 {
			return ival{lo: 0, hi: x.hi, hiInf: x.hiInf}
		}
	case token.OR, token.XOR:
		if x.hasLo() && x.lo >= 0 && x.hasHi() && y.hasLo() && y.lo >= 0 && y.hasHi() {
			// a|b and a^b stay below the next power of two above both.
			bound := int64(1)
			for bound <= x.hi || bound <= y.hi {
				if bound > math.MaxInt64/2 {
					return ival{lo: 0, hi: math.MaxInt64}
				}
				bound <<= 1
			}
			return ival{lo: 0, hi: bound - 1}
		}
	}
	if x.bot || y.bot {
		return ivBot()
	}
	return ivTop()
}

func ivDiv(x, y ival) ival {
	if x.bot || y.bot {
		return ivBot()
	}
	if y.hasLo() && y.lo >= 1 && x.hasLo() && x.hasHi() {
		// Positive divisor: quotient is monotone in x, anti-monotone in y.
		yhi := y.hi
		if y.hiInf {
			yhi = math.MaxInt64
		}
		c := []int64{x.lo / y.lo, x.hi / y.lo, x.lo / yhi, x.hi / yhi}
		out := ival{lo: c[0], hi: c[0]}
		for _, v := range c[1:] {
			out.lo = min64(out.lo, v)
			out.hi = max64(out.hi, v)
		}
		return out
	}
	if x.hasLo() && x.hasHi() && x.lo != math.MinInt64 {
		// |x/y| ≤ |x| for any divisor of magnitude ≥ 1 (y = 0 panics, so
		// contributes no value).
		m := max64(abs64(x.lo), abs64(x.hi))
		return ivRange(-m, m)
	}
	return ivTop()
}

func ivRem(x, y ival) ival {
	if x.bot || y.bot {
		return ivBot()
	}
	if y.hasLo() && y.lo >= 1 && y.hasHi() {
		if x.hasLo() && x.lo >= 0 {
			return ivRange(0, y.hi-1)
		}
		return ivRange(-(y.hi - 1), y.hi-1)
	}
	return ivTop()
}

func ivShr(x, y ival) ival {
	if x.bot || y.bot {
		return ivBot()
	}
	if x.hasLo() && x.lo >= 0 {
		if y.hasLo() && y.hasHi() && y.lo == y.hi && y.lo >= 0 && y.lo < 64 {
			out := ival{lo: x.lo >> uint(y.lo), hiInf: x.hiInf}
			if !out.hiInf {
				out.hi = x.hi >> uint(y.lo)
			}
			return out
		}
		return ival{lo: 0, hi: x.hi, hiInf: x.hiInf}
	}
	return ivTop()
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// --- bounds proofs ---------------------------------------------------------

// decompose resolves an integer expression to ref+delta where ref is a
// trackable reference: `i` → (i, 0), `i+2` → (i, 2), `i-1` → (i, -1).
func (fi *funcInterp) decompose(e ast.Expr) (symRef, int64, bool) {
	e = unparen(e)
	if ref, ok := fi.symRefOf(e); ok {
		return ref, 0, true
	}
	b, ok := e.(*ast.BinaryExpr)
	if !ok || (b.Op != token.ADD && b.Op != token.SUB) {
		return symRef{}, 0, false
	}
	if c, ok := fi.constInt(b.Y); ok {
		if ref, d, ok := fi.decompose(b.X); ok {
			if b.Op == token.SUB {
				c = -c
			}
			return ref, d + c, true
		}
	}
	if b.Op == token.ADD {
		if c, ok := fi.constInt(b.X); ok {
			if ref, d, ok := fi.decompose(b.Y); ok {
				return ref, d + c, true
			}
		}
	}
	return symRef{}, 0, false
}

func (fi *funcInterp) constInt(e ast.Expr) (int64, bool) {
	tv, ok := fi.info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// lenSymOf resolves an expression that denotes a length: `len(s)` → sym(s),
// an integer variable recorded equal to a length, or either plus a constant
// (`len(s)-1`). Returns the slice symbol and the delta.
func (fi *funcInterp) lenSymOf(env *absEnv, e ast.Expr) (symRef, int64, bool) {
	e = unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
			if _, isBuiltin := fi.info.ObjectOf(id).(*types.Builtin); isBuiltin {
				if ref, ok := fi.symRefOf(call.Args[0]); ok {
					return ref, 0, true
				}
			}
		}
	}
	if ref, ok := fi.symRefOf(e); ok {
		if sym, ok := env.lens[ref]; ok {
			return sym, 0, true
		}
	}
	if b, ok := e.(*ast.BinaryExpr); ok && (b.Op == token.ADD || b.Op == token.SUB) {
		if c, ok := fi.constInt(b.Y); ok {
			if sym, d, ok := fi.lenSymOf(env, b.X); ok {
				if b.Op == token.SUB {
					c = -c
				}
				return sym, d + c, true
			}
		}
	}
	return symRef{}, 0, false
}

// indexProven reports a full bounds proof for base[idxExpr]: 0 ≤ idx and
// idx < len(base), from the numeric interval plus the symbolic len facts.
func (fi *funcInterp) indexProven(env *absEnv, base, idxExpr ast.Expr, idx ival) bool {
	if env.bot || idx.bot {
		return true // unreachable site
	}
	if !idx.hasLo() || idx.lo < 0 {
		return false
	}
	// Arrays prove numerically against the static length.
	if at, ok := arrayTypeOf(fi.info.Types[base].Type); ok {
		return idx.hasHi() && idx.hi <= at.Len()-1
	}
	baseSym, ok := fi.symRefOf(base)
	if !ok {
		return false
	}
	// idx = ref + k with ref ≤ len(base) + d proves idx ≤ len(base)+d+k;
	// in bounds iff d + k ≤ -1.
	if ref, k, ok := fi.decompose(idxExpr); ok {
		if d, ok := env.ubFor(ref, baseSym); ok && d+k <= -1 {
			return true
		}
	}
	// idx itself written as len(base) - j, j ≥ 1.
	if sym, d, ok := fi.lenSymOf(env, idxExpr); ok && sym == baseSym && d <= -1 {
		return true
	}
	return false
}

// sliceProven reports a full proof for base[low:high]: 0 ≤ low ≤ high ≤
// len(base).
func (fi *funcInterp) sliceProven(env *absEnv, e *ast.SliceExpr, low, high absVal) bool {
	if env.bot {
		return true
	}
	if e.Max != nil {
		return false // 3-index caps are beyond the len-fact language
	}
	baseSym, symOK := fi.symRefOf(e.X)

	// low ≥ 0.
	lowZero := e.Low == nil
	if !lowZero {
		if low.iv.bot {
			return true
		}
		if !low.iv.hasLo() || low.iv.lo < 0 {
			return false
		}
	}
	// high ≤ len(base).
	highOK := e.High == nil
	if !highOK {
		if high.iv.bot {
			return true
		}
		if symOK {
			if sym, d, ok := fi.lenSymOf(env, e.High); ok && sym == baseSym && d <= 0 {
				highOK = true
			}
			if !highOK {
				if ref, k, ok := fi.decompose(e.High); ok {
					if d, ok := env.ubFor(ref, baseSym); ok && d+k <= 0 {
						highOK = true
					}
				}
			}
		}
		if at, ok := arrayTypeOf(fi.info.Types[e.X].Type); ok {
			if high.iv.hasHi() && high.iv.hi <= at.Len() {
				highOK = true
			}
		}
	}
	if !highOK {
		return false
	}
	// low ≤ high: trivial when low is 0 or omitted (high ≥ 0 holds for any
	// well-typed in-range high we just proved symbolically only when its
	// numeric lower bound says so, so require it), else shared-base deltas
	// or disjoint numeric ranges.
	if e.Low == nil {
		return true
	}
	if e.High == nil {
		// base[low:] needs low ≤ len(base).
		if ref, k, ok := fi.decompose(e.Low); ok && symOK {
			if d, ok := env.ubFor(ref, baseSym); ok && d+k <= 0 {
				return true
			}
		}
		if sym, d, ok := fi.lenSymOf(env, e.Low); ok && symOK && sym == baseSym && d <= 0 {
			return true
		}
		return false
	}
	if lr, lk, ok := fi.decompose(e.Low); ok {
		if hr, hk, ok2 := fi.decompose(e.High); ok2 && lr == hr && lk <= hk {
			return true
		}
	}
	if low.iv.hasHi() && high.iv.hasLo() && low.iv.hi <= high.iv.lo {
		return true
	}
	return false
}

func arrayTypeOf(t types.Type) (*types.Array, bool) {
	if t == nil {
		return nil, false
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return u, true
	case *types.Pointer:
		at, ok := u.Elem().Underlying().(*types.Array)
		return at, ok
	}
	return nil, false
}

// indexable reports whether indexing t is a bounds-checked sequence access
// (slice, array, pointer-to-array or string — not a map or type parameter).
func indexable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

func isPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// --- branch refinement -----------------------------------------------------

// assume refines env under `cond == truth`, returning the refined (possibly
// bottom) environment. env is owned by the caller and mutated in place.
func (fi *funcInterp) assume(env *absEnv, cond ast.Expr, truth bool) *absEnv {
	if env.bot {
		return env
	}
	cond = unparen(cond)
	if tv, ok := fi.info.Types[cond]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
		if constant.BoolVal(tv.Value) != truth {
			return botEnv()
		}
		return env
	}
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return fi.assume(env, c.X, !truth)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if truth {
				env = fi.assume(env, c.X, true)
				return fi.assume(env, c.Y, true)
			}
			return env
		case token.LOR:
			if !truth {
				env = fi.assume(env, c.X, false)
				return fi.assume(env, c.Y, false)
			}
			return env
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			op := c.Op
			if !truth {
				op = negateCmp(op)
			}
			return fi.assumeCmp(env, c.X, op, c.Y)
		}
	}
	return env
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return op
}

func swapCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// assumeCmp refines env under `x op y`.
func (fi *funcInterp) assumeCmp(env *absEnv, x ast.Expr, op token.Token, y ast.Expr) *absEnv {
	// Nil comparisons refine the pointer side.
	if tv, ok := fi.info.Types[y]; ok && tv.IsNil() {
		return fi.assumeNil(env, x, op)
	}
	if tv, ok := fi.info.Types[x]; ok && tv.IsNil() {
		return fi.assumeNil(env, y, op)
	}

	xv := fi.eval(env, x)
	yv := fi.eval(env, y)
	env = fi.refineNumeric(env, x, op, yv.iv)
	if env.bot {
		return env
	}
	env = fi.refineNumeric(env, y, swapCmp(op), xv.iv)
	if env.bot {
		return env
	}
	fi.refineSymbolic(env, x, op, y)
	fi.refineSymbolic(env, y, swapCmp(op), x)
	return env
}

func (fi *funcInterp) assumeNil(env *absEnv, p ast.Expr, op token.Token) *absEnv {
	ref, ok := fi.symRefOf(p)
	if !ok {
		return env
	}
	cur := env.nils[ref]
	switch op {
	case token.EQL:
		if cur == nilNonNil {
			return botEnv()
		}
		env.setNil(ref, nilIsNil)
	case token.NEQ:
		if cur == nilIsNil {
			return botEnv()
		}
		env.setNil(ref, nilNonNil)
	}
	return env
}

// refineNumeric tightens x's interval under `x op [other]`.
func (fi *funcInterp) refineNumeric(env *absEnv, x ast.Expr, op token.Token, other ival) *absEnv {
	ref, ok := fi.symRefOf(x)
	if !ok || other.bot {
		return env
	}
	t := fi.info.Types[x].Type
	if t == nil {
		return env
	}
	if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return env
	}
	cur := fi.lookup(env, ref, t).iv
	var bound ival
	switch op {
	case token.LSS:
		bound = ival{loInf: true, hi: other.hi - 1, hiInf: other.hiInf}
		if !other.hiInf && other.hi == math.MinInt64 {
			return botEnv()
		}
	case token.LEQ:
		bound = ival{loInf: true, hi: other.hi, hiInf: other.hiInf}
	case token.GTR:
		bound = ival{lo: other.lo + 1, loInf: other.loInf, hiInf: true}
		if !other.loInf && other.lo == math.MaxInt64 {
			return botEnv()
		}
	case token.GEQ:
		bound = ival{lo: other.lo, loInf: other.loInf, hiInf: true}
	case token.EQL:
		bound = other
	case token.NEQ:
		// Only boundary exclusion is expressible in an interval.
		next := cur
		if next.hasLo() && next.hasHi() && other.hasLo() && other.hasHi() && other.lo == other.hi {
			if next.lo == other.lo {
				next = ivRange(next.lo+1, next.hi)
			} else if next.hi == other.hi {
				next = ivRange(next.lo, next.hi-1)
			}
		}
		if next.bot {
			return botEnv()
		}
		env.setVal(ref, next)
		return env
	default:
		return env
	}
	next := cur.meet(bound)
	if next.bot {
		return botEnv()
	}
	env.setVal(ref, next)
	return env
}

// refineSymbolic records len-relative upper bounds from `x op y` where y
// denotes a length (or carries length bounds of its own, which propagate
// transitively: x < y ≤ len(s)+d gives x ≤ len(s)+d-1).
func (fi *funcInterp) refineSymbolic(env *absEnv, x ast.Expr, op token.Token, y ast.Expr) {
	if op != token.LSS && op != token.LEQ && op != token.EQL {
		return
	}
	ref, k, ok := fi.decompose(x)
	if !ok {
		return
	}
	strict := int64(0)
	if op == token.LSS {
		strict = -1
	}
	if sym, d, ok := fi.lenSymOf(env, y); ok {
		// x + k op len(sym) + d  ⇒  x ≤ len(sym) + d - k (+ strict)
		env.addUB(ref, sym, d-k+strict)
	}
	// Transitive propagation: x < y with y ≤ len(s)+d gives x ≤ len(s)+d-1.
	if yref, ok := fi.symRefOf(y); ok {
		for _, u := range append([]lenUB(nil), env.ubs[yref]...) {
			env.addUB(ref, u.sym, u.delta-k+strict)
		}
	}
}

// bindRange binds a range statement's key/value variables on the edge into
// the loop body: slice/string keys get [0, +∞) plus the symbolic strict
// upper bound against the operand, arrays get exact bounds, `range n` keys
// get [0, n-1].
func (fi *funcInterp) bindRange(env *absEnv, rng *ast.RangeStmt) {
	if env.bot {
		return
	}
	xt := fi.info.Types[rng.X].Type
	if xt == nil {
		return
	}
	keyObj := fi.rangeVarObj(rng.Key)
	valObj := fi.rangeVarObj(rng.Value)
	setKey := func(v absVal) {
		if keyObj == nil {
			return
		}
		env.killRoot(keyObj)
		fi.store(env, symRef{root: keyObj}, v, keyObj.Type())
	}
	setElem := func(v absVal) {
		if valObj == nil {
			return
		}
		env.killRoot(valObj)
		fi.store(env, symRef{root: valObj}, v, valObj.Type())
	}
	keyWithLenUB := func() {
		setKey(absVal{iv: ival{lo: 0, hiInf: true}})
		if keyObj != nil {
			if sym, ok := fi.symRefOf(rng.X); ok {
				env.addUB(symRef{root: keyObj}, sym, -1)
			}
		}
	}
	switch u := xt.Underlying().(type) {
	case *types.Slice:
		keyWithLenUB()
		setElem(typedVal(u.Elem()))
	case *types.Array:
		setKey(absVal{iv: ivRange(0, u.Len()-1)})
		setElem(typedVal(u.Elem()))
	case *types.Pointer:
		if at, ok := u.Elem().Underlying().(*types.Array); ok {
			setKey(absVal{iv: ivRange(0, at.Len()-1)})
			setElem(typedVal(at.Elem()))
		}
	case *types.Basic:
		switch {
		case u.Info()&types.IsString != 0:
			keyWithLenUB()
			setElem(typedVal(types.Typ[types.Rune]))
		case u.Info()&types.IsInteger != 0:
			n := fi.eval(env, rng.X).iv
			k := ival{lo: 0, hiInf: true}
			if n.hasHi() && n.hi > 0 {
				k = ivRange(0, n.hi-1)
			}
			setKey(absVal{iv: k})
		}
	case *types.Map:
		setKey(typedVal(u.Key()))
		setElem(typedVal(u.Elem()))
	case *types.Chan:
		setKey(typedVal(u.Elem()))
	}
}

// rangeVarObj resolves a range key/value position to its variable object.
func (fi *funcInterp) rangeVarObj(e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := fi.info.Defs[id]
	if obj == nil {
		obj = fi.info.Uses[id]
	}
	if obj == nil || fi.untracked[obj] {
		return nil
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}

// hasCall reports whether any of the expressions contains a genuine call —
// not a conversion, not a builtin — whose callee might mutate heap state.
func (fi *funcInterp) hasCall(exprs ...ast.Expr) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := fi.info.Types[call.Fun]; ok && tv.IsType() {
				return true
			}
			if id, ok := unparen(call.Fun).(*ast.Ident); ok {
				if _, b := fi.info.ObjectOf(id).(*types.Builtin); b {
					return true
				}
			}
			found = true
			return false
		})
		if found {
			return true
		}
	}
	return false
}
