package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Contracts is the whole-module checked-annotation analyzer. A function may
// declare, in its doc comment, one or more //krsp: contracts:
//
//	//krsp:noalloc               steady-state zero-alloc
//	//krsp:terminates(<reason>)  bounded or cancellable; reason states the bound
//	//krsp:deterministic         no wall clock, no global rand, no
//	                             order-sensitive map iteration
//
// Each contract is verified against the transitive closure of the
// function's statically-resolved callees over the module-wide call graph —
// an annotation is a checked fact, not a comment. Violations are reported
// at the offending site (the make, the unpolled loop, the time.Now) with
// the call chain from the annotated root, so one fix or one justified
// //lint:allow contracts <reason> covers every kernel that funnels through
// the site. Sites already justified to the matching per-package analyzer
// (hotalloc for allocations, ctxpoll for loops, detmap/wallclock for
// determinism) are honoured: the contract generalises those analyzers
// across calls rather than demanding a second annotation.
//
// The analyzer also enforces annotation coverage: every *_Into workspace
// kernel in a solve-path package must carry //krsp:noalloc, turning the
// bench-guard's runtime allocs/op ceiling into a compile-time fact.
// Malformed, misplaced and duplicate directives are themselves diagnostics.
var Contracts = &Analyzer{
	Name:       "contracts",
	Doc:        "verify //krsp:noalloc, //krsp:terminates and //krsp:deterministic contracts over the module call graph",
	RunProgram: runContracts,
}

// parsedContract is one //krsp: directive attached to a function.
type parsedContract struct {
	kind   Contract
	reason string
	pos    token.Pos
}

// guardedByInfo is one //krsp:guardedby(<lock>) annotation on a struct
// field, with enough declaration context for lockcheck to validate the
// lock target against the field's siblings.
type guardedByInfo struct {
	lock  string // the guarding lock field's name
	pos   token.Pos
	strct *ast.StructType // the declaring struct
	pkg   *Package
	field *ast.Field
	ident *ast.Ident // the specific name the annotation binds to
}

// contractIndex is the module-wide //krsp: annotation table plus the
// directive-level diagnostics found while building it. Function contracts
// live in byFunc; field-level guardedby annotations in byField, keyed by
// the field's (generic-origin) *types.Var. Directive diagnostics carry the
// analyzer that owns the verb — guardedby/locked belong to lockcheck,
// detached to gorolife, the rest to contracts — so a partial `-analyzers`
// run still surfaces grammar and placement errors for the verbs it checks.
type contractIndex struct {
	byFunc  map[*types.Func][]parsedContract
	byField map[*types.Var]*guardedByInfo
	diags   []Diagnostic
}

func (ci *contractIndex) has(fn *types.Func, kind Contract) bool {
	for _, c := range ci.byFunc[fn] {
		if c.kind == kind {
			return true
		}
	}
	return false
}

// contract returns fn's parsed contract of the given kind, or nil.
func (ci *contractIndex) contract(fn *types.Func, kind Contract) *parsedContract {
	for i := range ci.byFunc[fn] {
		if ci.byFunc[fn][i].kind == kind {
			return &ci.byFunc[fn][i]
		}
	}
	return nil
}

// emit appends the index's directive diagnostics owned by pass's analyzer.
// Each of contracts, lockcheck and gorolife calls this once, so every
// grammar/placement error surfaces exactly once per run regardless of
// which subset of the suite was requested.
func (ci *contractIndex) emit(pass *Pass) {
	for _, d := range ci.diags {
		if d.Analyzer == pass.Analyzer.Name {
			*pass.diags = append(*pass.diags, d)
		}
	}
}

// contractOwner names the analyzer that owns a //krsp: verb's directive
// diagnostics. Literal analyzer names break init cycles with the analyzer
// vars (see the "contracts" literal below).
func contractOwner(text string) string {
	verb := strings.TrimPrefix(text, contractPrefix)
	if i := strings.IndexAny(verb, "( \t"); i >= 0 {
		verb = verb[:i]
	}
	switch verb {
	case "guardedby", "locked":
		return "lockcheck"
	case "detached":
		return "gorolife"
	}
	return "contracts"
}

// contractIndex parses every //krsp: directive in the program (built once).
// Function contracts (noalloc/terminates/deterministic/inbounds plus
// locked/detached) must live in the doc comment of a function declaration;
// guardedby must annotate a named struct field (doc or same-line comment).
// Anything else — a floating comment, a type or var doc, a body comment —
// is misplaced, because a contract that is not bound to a declaration is
// not checked by anything. Directive diagnostics are only recorded for
// requested packages: dependencies of golden test packages are loaded but
// not re-audited.
func (p *Program) contractIndex() *contractIndex {
	if p.contractIdx != nil {
		return p.contractIdx
	}
	ci := &contractIndex{
		byFunc:  map[*types.Func][]parsedContract{},
		byField: map[*types.Var]*guardedByInfo{},
	}
	requested := map[*Package]bool{}
	for _, pkg := range p.Requested {
		requested[pkg] = true
	}
	type fieldRef struct {
		field *ast.Field
		strct *ast.StructType
	}
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			docOf := map[*ast.CommentGroup]*ast.FuncDecl{}
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
					docOf[fd.Doc] = fd
				}
			}
			fieldOf := map[*ast.CommentGroup]fieldRef{}
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, fld := range st.Fields.List {
					if fld.Doc != nil {
						fieldOf[fld.Doc] = fieldRef{field: fld, strct: st}
					}
					if fld.Comment != nil {
						fieldOf[fld.Comment] = fieldRef{field: fld, strct: st}
					}
				}
				return true
			})
			for _, cg := range f.Comments {
				fd := docOf[cg]
				fr, onField := fieldOf[cg]
				for _, c := range cg.List {
					kind, reason, isContract, err := parseContract(c.Text)
					if !isContract {
						continue
					}
					report := func(format string, args ...any) {
						if requested[pkg] {
							ci.diags = append(ci.diags, Diagnostic{
								// contractOwner returns literal analyzer names;
								// using Contracts.Name here would recreate the
								// init cycle with runCtxpoll.
								Analyzer: contractOwner(c.Text),
								Position: p.Fset.Position(c.Pos()),
								Message:  fmt.Sprintf(format, args...),
							})
						}
					}
					if err != nil {
						report("%v", err)
						continue
					}
					if kind == ContractGuardedBy {
						ci.indexGuardedBy(pkg, fr.field, fr.strct, onField, reason, c.Pos(), report)
						continue
					}
					if onField {
						report("misplaced //krsp:%s: only guardedby may annotate a struct field; %s binds to a function declaration", kind, kind)
						continue
					}
					if fd == nil {
						report("misplaced //krsp:%s: contracts must appear in the doc comment of a function declaration", kind)
						continue
					}
					if kind == ContractLocked && fd.Recv == nil {
						report("misplaced //krsp:locked: the contract must annotate a method — the lock it names is a receiver field")
						continue
					}
					obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					if ci.has(obj, kind) {
						report("duplicate //krsp:%s on %s", kind, fd.Name.Name)
						continue
					}
					ci.byFunc[obj] = append(ci.byFunc[obj], parsedContract{kind: kind, reason: reason, pos: c.Pos()})
				}
			}
		}
	}
	p.contractIdx = ci
	return ci
}

// indexGuardedBy validates and records one //krsp:guardedby(<lock>)
// annotation: it must sit on a named (non-embedded) struct field, and the
// lock must be a sibling field of type sync.Mutex or sync.RWMutex.
func (ci *contractIndex) indexGuardedBy(pkg *Package, field *ast.Field, strct *ast.StructType, onField bool, lock string, pos token.Pos, report func(string, ...any)) {
	if !onField {
		report("misplaced //krsp:guardedby: the contract must annotate a struct field (doc or same-line comment)")
		return
	}
	if len(field.Names) == 0 {
		report("//krsp:guardedby cannot annotate an embedded field; name the field to guard it")
		return
	}
	lockField := findStructField(strct, lock)
	if lockField == nil {
		report("//krsp:guardedby(%s) names no sibling field: the guarding lock must be declared in the same struct", lock)
		return
	}
	if lt, ok := pkg.Info.Types[lockField.Type]; !ok || !isMutexType(lt.Type) {
		report("//krsp:guardedby(%s): the named field is not a sync.Mutex or sync.RWMutex", lock)
		return
	}
	for _, name := range field.Names {
		v, ok := pkg.Info.Defs[name].(*types.Var)
		if !ok {
			continue
		}
		if ci.byField[v] != nil {
			report("duplicate //krsp:guardedby on field %s", name.Name)
			continue
		}
		ci.byField[v] = &guardedByInfo{
			lock: lock, pos: pos, strct: strct, pkg: pkg, field: field, ident: name,
		}
	}
}

// findStructField returns the struct's field declaration carrying the
// given name, or nil.
func findStructField(strct *ast.StructType, name string) *ast.Field {
	for _, fld := range strct.Fields.List {
		for _, n := range fld.Names {
			if n.Name == name {
				return fld
			}
		}
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (pointers
// included: a *sync.Mutex field locks the same way).
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// allocSafeExternPkgs are non-module packages whose functions are known not
// to allocate; calls into any other package from a noalloc closure are
// unverifiable and therefore diagnostics.
var allocSafeExternPkgs = map[string]bool{
	"sync/atomic": true, "math": true, "math/bits": true,
}

func runContracts(pass *Pass) {
	prog := pass.Prog
	ci := prog.contractIndex()
	cg := prog.buildCallGraph()
	ci.emit(pass) // directive diags owned by the conc analyzers emit there

	// Sibling-analyzer allows: a site justified to hotalloc/ctxpoll/detmap/
	// wallclock already carries its reason; the contract does not demand a
	// second one. (Usage tracking of those allows stays with their owning
	// analyzers — this read-only view never marks them used.)
	sibling, _ := collectAllows(prog, prog.Requested)
	justified := func(pos token.Pos, analyzers ...string) bool {
		position := prog.Fset.Position(pos)
		for _, name := range analyzers {
			if sibling[allowKey{position.Filename, position.Line, name}] != nil ||
				sibling[allowKey{position.Filename, position.Line - 1, name}] != nil {
				return true
			}
		}
		return false
	}

	requested := map[*Package]bool{}
	for _, pkg := range prog.Requested {
		requested[pkg] = true
	}
	inRequested := func(fn *types.Func) bool {
		site := cg.decls[fn]
		return site != nil && requested[site.pkg]
	}

	// Annotation coverage: *_Into kernels on the solve path must carry
	// //krsp:noalloc.
	for _, fn := range cg.order {
		if !inRequested(fn) || fn.Pkg() == nil || !pathHasAnySegment(fn.Pkg().Path(), hotPackages) {
			continue
		}
		name := fn.Name()
		if len(name) > len("Into") && strings.HasSuffix(name, "Into") && !ci.has(fn, ContractNoAlloc) {
			pass.Reportf(cg.decls[fn].fd.Name.Pos(),
				"workspace kernel %s lacks //krsp:noalloc; annotate the contract (it is verified against the kernel's transitive callees)", name)
		}
	}

	// Verification proper. Sites are deduplicated across roots: the first
	// annotated root (in declaration order) that reaches a site names it.
	type siteKey struct {
		pos  token.Pos
		what string
	}
	reported := map[siteKey]bool{}
	reportSite := func(pos token.Pos, what, format string, args ...any) {
		k := siteKey{pos, what}
		if reported[k] {
			return
		}
		reported[k] = true
		pass.Reportf(pos, format, args...)
	}

	for _, root := range cg.order {
		if !inRequested(root) {
			continue
		}
		for _, c := range ci.byFunc[root] {
			closure := cg.closure([]*types.Func{root})
			var members []*types.Func
			for _, fn := range cg.order {
				if closure[fn] {
					members = append(members, fn)
				}
			}
			switch c.kind {
			case ContractNoAlloc:
				checkNoAlloc(pass, cg, root, members, reportSite, justified)
			case ContractTerminates:
				checkTerminates(pass, cg, ci, root, members, reportSite, justified)
			case ContractDeterministic:
				checkDeterministic(pass, cg, root, members, reportSite, justified)
			case ContractInBounds:
				// Verified by the boundsafe dataflow analyzer, which owns
				// both the interval proofs and the coverage sweep.
			case ContractLocked:
				// Verified by the lockcheck lock-set analyzer: the body is
				// analyzed with the lock pre-held and every call site must
				// prove it holds the lock.
			case ContractDetached:
				// Consumed by the gorolife analyzer: it waives the
				// termination-signal obligation for the function's spawns.
			}
		}
	}
}

type siteReporter func(pos token.Pos, what, format string, args ...any)
type siteJustified func(pos token.Pos, analyzers ...string) bool

// checkNoAlloc flags every steady-state allocation reachable from root:
// direct alloc operations (make/append/new/map-insert/closure/go) anywhere
// in the closure, plus calls that leave the module into packages not known
// to be allocation-free.
func checkNoAlloc(pass *Pass, cg *callGraph, root *types.Func, members []*types.Func, report siteReporter, justified siteJustified) {
	for _, fn := range members {
		site := cg.decls[fn]
		if site != nil {
			for _, op := range allocOps(site) {
				if justified(op.pos, Hotalloc.Name) {
					continue
				}
				report(op.pos, "noalloc",
					"%s allocates but is reachable from //krsp:noalloc %s (%s); hoist into a Workspace or justify with //lint:allow contracts <reason>",
					op.what, root.Name(), chainString(cg.pathFrom(root, fn)))
			}
		}
		for _, callee := range cg.callees[fn] {
			if _, declared := cg.decls[callee]; declared {
				continue
			}
			pkgPath := ""
			if callee.Pkg() != nil {
				pkgPath = callee.Pkg().Path()
			}
			if allocSafeExternPkgs[pkgPath] {
				continue
			}
			pos := cg.callPos[[2]*types.Func{fn, callee}]
			if justified(pos, Hotalloc.Name) {
				continue
			}
			report(pos, "noalloc",
				"call to %s cannot be verified allocation-free (no body in the module) but is reachable from //krsp:noalloc %s (%s)",
				calleeLabel(callee), root.Name(), chainString(cg.pathFrom(root, fn)))
		}
	}
}

// checkTerminates flags condition-only loops (`for {}` / `for cond {}`)
// reachable from root that neither poll the Canceller nor sit inside a
// function carrying its own //krsp:terminates bound.
func checkTerminates(pass *Pass, cg *callGraph, ci *contractIndex, root *types.Func, members []*types.Func, report siteReporter, justified siteJustified) {
	for _, fn := range members {
		site := cg.decls[fn]
		if site == nil || ci.has(fn, ContractTerminates) {
			continue
		}
		ast.Inspect(site.fd.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Init != nil || loop.Post != nil {
				return true
			}
			if loopPollsCanceller(site.pkg.Info, loop) {
				return true
			}
			if justified(loop.Pos(), Ctxpoll.Name) {
				return true
			}
			report(loop.Pos(), "terminates",
				"unbounded loop is reachable from //krsp:terminates %s (%s) but neither polls the Canceller nor carries its own //krsp:terminates bound on %s",
				root.Name(), chainString(cg.pathFrom(root, fn)), fn.Name())
			return true
		})
	}
}

// checkDeterministic flags wall-clock reads, global-source randomness and
// order-sensitive map iteration anywhere in root's closure — including
// packages outside the per-package det/wallclock sets, which is the point
// of stating the contract on an entry function.
func checkDeterministic(pass *Pass, cg *callGraph, root *types.Func, members []*types.Func, report siteReporter, justified siteJustified) {
	for _, fn := range members {
		site := cg.decls[fn]
		if site == nil {
			continue
		}
		// The single sanctioned wall-clock bridge (see Wallclock).
		if pathHasSegment(site.pkg.Path, "obs") &&
			filepath.Base(cg.fset.Position(site.file.Pos()).Filename) == "realclock.go" {
			continue
		}
		info := site.pkg.Info
		ast.Inspect(site.fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgID, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := info.ObjectOf(pkgID).(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "time":
					if timeFuncs[n.Sel.Name] && !justified(n.Pos(), Wallclock.Name) {
						report(n.Pos(), "deterministic",
							"time.%s is reachable from //krsp:deterministic %s (%s)",
							n.Sel.Name, root.Name(), chainString(cg.pathFrom(root, fn)))
					}
				case "math/rand", "math/rand/v2":
					if !randSeededCtors[n.Sel.Name] {
						if _, isFunc := info.ObjectOf(n.Sel).(*types.Func); isFunc && !justified(n.Pos(), Wallclock.Name) {
							report(n.Pos(), "deterministic",
								"rand.%s draws from the global source but is reachable from //krsp:deterministic %s (%s)",
								n.Sel.Name, root.Name(), chainString(cg.pathFrom(root, fn)))
						}
					}
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if reason := orderSensitiveWrite(info, n); reason != "" && !justified(n.For, Detmap.Name) {
					report(n.For, "deterministic",
						"map iteration with order-sensitive write (%s) is reachable from //krsp:deterministic %s (%s)",
						reason, root.Name(), chainString(cg.pathFrom(root, fn)))
				}
			}
			return true
		})
	}
}

// allocOp is one statically-detectable allocation inside a function body.
type allocOp struct {
	pos  token.Pos
	what string
}

// allocOps scans a declaration for the allocation operations the noalloc
// contract forbids. Composite literals and string conversions are left to
// escape analysis (they are routinely stack-allocated); the listed forms
// always heap-allocate when they execute on a growth path. One exception:
// a function literal that is the immediate callee of a defer OUTSIDE any
// loop is open-coded by the compiler and does not escape, so the common
// `defer func() { ws.cleanup() }()` shape stays contract-clean.
func allocOps(site *declSite) []allocOp {
	info := site.pkg.Info
	var loopRanges [][2]token.Pos
	ast.Inspect(site.fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopRanges = append(loopRanges, [2]token.Pos{n.Pos(), n.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, r := range loopRanges {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	openCodedDefer := map[*ast.FuncLit]bool{}
	ast.Inspect(site.fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && !inLoop(d.Pos()) {
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				openCodedDefer[lit] = true
			}
		}
		return true
	})
	var out []allocOp
	ast.Inspect(site.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make", "append", "new":
						out = append(out, allocOp{pos: n.Pos(), what: id.Name})
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if tv, ok := info.Types[ix.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						out = append(out, allocOp{pos: lhs.Pos(), what: "map insert"})
					}
				}
			}
		case *ast.FuncLit:
			if !openCodedDefer[n] {
				out = append(out, allocOp{pos: n.Pos(), what: "function literal (captured closure)"})
			}
		case *ast.GoStmt:
			out = append(out, allocOp{pos: n.Pos(), what: "go statement"})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// calleeLabel renders an extern callee as pkg.Name or Type.Method.
func calleeLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
