package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicmix is the atomics-discipline analyzer. It reports three racy
// shapes:
//
//  1. Mixed access: a variable or field updated through sync/atomic
//     (atomic.AddInt64(&v, ...)) that is also read or written with plain
//     loads/stores elsewhere in the package. The Go memory model gives
//     such mixtures no ordering at all — the obs registry and cluster
//     health counters are all-atomic by convention, and this makes the
//     convention a checked invariant. (The typed atomic.Int64 family is
//     immune by construction and needs no checking.)
//  2. Double-checked locking: `if cond { mu.Lock(); if cond {...} }` with
//     a byte-identical condition — the unlocked first check races every
//     writer; hold the lock for both checks or make the field atomic.
//  3. Lock leaks: a path that returns (or falls off the end) with a lock
//     acquired in the function still held and no deferred release — the
//     classic missing-Unlock bug, verified by the same lock-set walker
//     lockcheck rides (locksets.go), so removing an Unlock fails the
//     conc-audit gate.
var Atomicmix = &Analyzer{
	Name:       "atomicmix",
	Version:    1,
	Doc:        "flag mixed atomic/plain access, double-checked locking, and Lock without all-paths Unlock",
	RunProgram: runAtomicmix,
}

func runAtomicmix(pass *Pass) {
	prog := pass.Prog
	cg := prog.buildCallGraph()

	for _, pkg := range prog.Requested {
		checkMixedAtomics(pass, pkg)
		for _, f := range pkg.Files {
			checkDoubleChecked(pass, pkg, f)
		}
	}

	requested := map[*Package]bool{}
	for _, pkg := range prog.Requested {
		requested[pkg] = true
	}
	for _, fn := range cg.order {
		site := cg.decls[fn]
		if site == nil || !requested[site.pkg] {
			continue
		}
		hooks := &lockHooks{
			exit: func(pos token.Pos, leaked []leakedLock) {
				for _, l := range leaked {
					pass.Reportf(pos,
						"path exits with %s still locked (acquired at line %d); unlock on every path or defer the unlock",
						l.key, prog.Fset.Position(l.pos).Line)
				}
			},
		}
		walkLocks(site, lockSet{}, hooks)
	}
}

// checkMixedAtomics flags package objects accessed both through sync/atomic
// calls and through plain loads/stores.
func checkMixedAtomics(pass *Pass, pkg *Package) {
	info := pkg.Info
	atomicAt := map[types.Object]token.Pos{} // first atomic site per target
	skip := map[token.Pos]bool{}             // idents consumed by &target args

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // typed atomic.Int64 methods are fine by construction
			}
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			obj := targetObj(info, addr.X)
			if obj == nil {
				return true
			}
			if _, seen := atomicAt[obj]; !seen {
				atomicAt[obj] = call.Pos()
			}
			if id := terminalIdent(addr.X); id != nil {
				skip[id.Pos()] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	type plainSite struct {
		obj types.Object
		pos token.Pos
	}
	var plains []plainSite
	seenObj := map[types.Object]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				// Struct-literal keys name the field without accessing it.
				if id, ok := kv.Key.(*ast.Ident); ok {
					skip[id.Pos()] = true
				}
				return true
			}
			id, ok := n.(*ast.Ident)
			if !ok || skip[id.Pos()] {
				return true
			}
			obj := info.Uses[id]
			if v, isVar := obj.(*types.Var); isVar {
				obj = originVar(v)
			}
			if obj == nil || seenObj[obj] {
				return true
			}
			if _, isAtomic := atomicAt[obj]; !isAtomic {
				return true
			}
			seenObj[obj] = true
			plains = append(plains, plainSite{obj: obj, pos: id.Pos()})
			return true
		})
	}
	for _, p := range plains {
		pass.Reportf(p.pos,
			"%s is updated through sync/atomic (line %d) but accessed here without atomics; mixed access has no ordering — use atomic loads/stores everywhere or guard every access with one mutex",
			p.obj.Name(), pass.Prog.Fset.Position(atomicAt[p.obj]).Line)
	}
}

// targetObj resolves the object whose address an atomic call takes:
// &v → v's object, &s.f → the field f (generic-origin normalized),
// &arr[i] → the array variable.
func targetObj(info *types.Info, e ast.Expr) types.Object {
	obj := objOfExpr(info, e)
	if obj == nil {
		if ix, ok := e.(*ast.IndexExpr); ok {
			obj = objOfExpr(info, ix.X)
		}
	}
	if v, ok := obj.(*types.Var); ok {
		return originVar(v)
	}
	return obj
}

// terminalIdent returns the rightmost ident of the expression (&s.f → f).
func terminalIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return x.Sel
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkDoubleChecked flags `if cond { ...Lock()...; if cond { ... } }`
// where the re-check condition prints byte-identically to the unlocked
// outer check.
func checkDoubleChecked(pass *Pass, pkg *Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		outer, ok := n.(*ast.IfStmt)
		if !ok || outer.Cond == nil {
			return true
		}
		cond := types.ExprString(outer.Cond)
		locked := false
		for _, s := range outer.Body.List {
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if op, _, isOp := mutexOp(pkg.Info, call); isOp && (op == "Lock" || op == "RLock") {
						locked = true
						continue
					}
				}
			}
			inner, ok := s.(*ast.IfStmt)
			if !ok || !locked || inner.Cond == nil {
				continue
			}
			if types.ExprString(inner.Cond) == cond {
				pass.Reportf(outer.If,
					"double-checked locking on %q: the unlocked first check races every writer; hold the lock for both checks or make the field atomic",
					cond)
			}
		}
		return true
	})
}
