package lint

import (
	"go/ast"
	"go/token"
)

// This file is the SSA-lite IR under the dataflow engine (DESIGN.md §12):
// a per-function control-flow graph whose blocks hold straight-line
// statements and whose edges carry the branch condition that must hold
// along them. The abstract interpreter (dataflow.go) runs a worklist
// fixpoint over this graph, refining variable ranges on condition edges —
// which is what turns `if i < len(row)` into a proof that `row[i]` is in
// bounds on the true edge.
//
// Def-use information is implicit in the environment the interpreter
// threads block to block (an assignment is the def; every later eval of
// the object is a use killed by the next def). The builder handles the
// structured-control subset the solver uses — if/for/range/switch/select,
// labeled and unlabeled break/continue, fallthrough, early return, and
// terminating panic calls. A function using goto (one cold validator in
// the module) falls back to flow-insensitive typing: the builder reports
// unsupported and the engine answers every query from static types only.

// irEdge is one CFG edge. When cond is non-nil, the edge is taken only if
// cond evaluates to !negate; the interpreter refines the environment under
// that assumption.
type irEdge struct {
	to     *irBlock
	cond   ast.Expr
	negate bool
	// rng, when non-nil, marks the body-entry edge of a range loop: the
	// interpreter binds the key/value variables from the range operand.
	rng *ast.RangeStmt
}

// irBlock is a maximal straight-line run of statements. Loop heads are the
// widening points of the fixpoint.
type irBlock struct {
	id       int
	stmts    []ast.Stmt
	succs    []irEdge
	loopHead bool
}

// funcIR is the CFG of one function body.
type funcIR struct {
	entry  *irBlock
	blocks []*irBlock
	// unsupported names the construct that made the builder bail ("" when
	// the CFG is complete). The engine then degrades to type-only facts.
	unsupported string
}

// irTargets is the (break, continue) destination pair of one enclosing
// loop, switch or select. cont is nil for non-loops.
type irTargets struct {
	brk, cont *irBlock
	label     string
}

// irBuilder carries the under-construction graph plus the break/continue
// target stack and a pending label to attach to the next loop or switch.
type irBuilder struct {
	ir           *funcIR
	targets      []*irTargets
	pendingLabel string
}

// buildIR builds the CFG of one function or closure body.
func buildIR(body *ast.BlockStmt) *funcIR {
	ir := &funcIR{}
	b := &irBuilder{ir: ir}
	ir.entry = b.newBlock()
	b.stmtList(body.List, ir.entry)
	return ir
}

func (b *irBuilder) newBlock() *irBlock {
	blk := &irBlock{id: len(b.ir.blocks)}
	b.ir.blocks = append(b.ir.blocks, blk)
	return blk
}

func (b *irBuilder) edge(from, to *irBlock) {
	if from != nil && to != nil {
		from.succs = append(from.succs, irEdge{to: to})
	}
}

func (b *irBuilder) condEdges(from *irBlock, cond ast.Expr, onTrue, onFalse *irBlock) {
	if from == nil {
		return
	}
	if onTrue != nil {
		from.succs = append(from.succs, irEdge{to: onTrue, cond: cond})
	}
	if onFalse != nil {
		from.succs = append(from.succs, irEdge{to: onFalse, cond: cond, negate: true})
	}
}

// takeLabel consumes the label of an enclosing *ast.LabeledStmt, if any.
func (b *irBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *irBuilder) push(t *irTargets) { b.targets = append(b.targets, t) }
func (b *irBuilder) pop()              { b.targets = b.targets[:len(b.targets)-1] }

// breakTarget resolves the destination of a break: the innermost frame, or
// the labeled one.
func (b *irBuilder) breakTarget(label *ast.Ident) *irBlock {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label == nil || t.label == label.Name {
			return t.brk
		}
	}
	return nil
}

// continueTarget resolves the destination of a continue: the innermost
// loop frame (skipping switches and selects), or the labeled loop.
func (b *irBuilder) continueTarget(label *ast.Ident) *irBlock {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if t.cont == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t.cont
		}
	}
	return nil
}

// stmtList threads stmts through cur and returns the live exit block (nil
// when control cannot fall off the end).
func (b *irBuilder) stmtList(stmts []ast.Stmt, cur *irBlock) *irBlock {
	for _, s := range stmts {
		if b.ir.unsupported != "" {
			return nil
		}
		if cur == nil {
			// Dead code after a return/break: build it anyway so its sites
			// still get (unreachable ⇒ bottom) environments.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *irBuilder) stmt(s ast.Stmt, cur *irBlock) *irBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		thenB := b.newBlock()
		join := b.newBlock()
		if s.Else != nil {
			elseB := b.newBlock()
			b.condEdges(cur, s.Cond, thenB, elseB)
			b.edge(b.stmtList(s.Body.List, thenB), join)
			b.edge(b.stmt(s.Else, elseB), join)
		} else {
			b.condEdges(cur, s.Cond, thenB, join)
			b.edge(b.stmtList(s.Body.List, thenB), join)
		}
		return join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		head := b.newBlock()
		head.loopHead = true
		body := b.newBlock()
		exit := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.stmts = append(post.stmts, s.Post)
			b.edge(post, head)
		}
		b.edge(cur, head)
		if s.Cond != nil {
			b.condEdges(head, s.Cond, body, exit)
		} else {
			b.edge(head, body)
		}
		b.push(&irTargets{brk: exit, cont: post, label: label})
		b.edge(b.stmtList(s.Body.List, body), post)
		b.pop()
		return exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		head.loopHead = true
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(cur, head)
		head.succs = append(head.succs,
			irEdge{to: body, rng: s},
			irEdge{to: exit})
		b.push(&irTargets{brk: exit, cont: head, label: label})
		b.edge(b.stmtList(s.Body.List, body), head)
		b.pop()
		return exit

	case *ast.SwitchStmt:
		return b.switchStmt(s, cur)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		exit := b.newBlock()
		b.push(&irTargets{brk: exit, label: label})
		for _, c := range s.Body.List {
			body := b.newBlock()
			b.edge(cur, body)
			b.edge(b.stmtList(c.(*ast.CaseClause).Body, body), exit)
		}
		b.edge(cur, exit)
		b.pop()
		return exit

	case *ast.SelectStmt:
		label := b.takeLabel()
		exit := b.newBlock()
		b.push(&irTargets{brk: exit, label: label})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := b.newBlock()
			if cc.Comm != nil {
				body.stmts = append(body.stmts, cc.Comm)
			}
			b.edge(cur, body)
			b.edge(b.stmtList(cc.Body, body), exit)
		}
		if len(s.Body.List) == 0 {
			b.edge(cur, exit)
		}
		b.pop()
		return exit

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
		}
		// A label on a plain statement only matters as a goto target, and
		// goto itself makes the builder bail.
		return b.stmt(s.Stmt, cur)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.breakTarget(s.Label); t != nil {
				b.edge(cur, t)
				return nil
			}
		case token.CONTINUE:
			if t := b.continueTarget(s.Label); t != nil {
				b.edge(cur, t)
				return nil
			}
		case token.FALLTHROUGH:
			// Wired by switchStmt at the case level.
			return cur
		}
		b.ir.unsupported = s.Tok.String()
		return nil

	case *ast.ReturnStmt:
		cur.stmts = append(cur.stmts, s)
		return nil

	case *ast.ExprStmt:
		cur.stmts = append(cur.stmts, s)
		if isTerminalCall(s.X) {
			return nil
		}
		return cur

	default:
		// Assignments, declarations, inc/dec, defer, go, send — straight-
		// line statements the transfer function interprets (or skips).
		cur.stmts = append(cur.stmts, s)
		return cur
	}
}

// switchStmt builds an expression switch. A condition-less switch whose
// non-default clauses each carry one expression is an if/else ladder and
// refines like one; everything else joins conservatively (every case body
// reachable from the head). Fallthrough wires case i's exit to case i+1's
// body either way.
func (b *irBuilder) switchStmt(s *ast.SwitchStmt, cur *irBlock) *irBlock {
	label := b.takeLabel()
	if s.Init != nil {
		cur.stmts = append(cur.stmts, s.Init)
	}
	if s.Tag != nil {
		cur.stmts = append(cur.stmts, &ast.ExprStmt{X: s.Tag})
	}
	exit := b.newBlock()
	b.push(&irTargets{brk: exit, label: label})
	defer b.pop()

	clauses := make([]*ast.CaseClause, len(s.Body.List))
	for i, c := range s.Body.List {
		clauses[i] = c.(*ast.CaseClause)
	}
	bodies := make([]*irBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}

	ladder := s.Tag == nil
	defaultIdx := -1
	for i, cc := range clauses {
		if cc.List == nil {
			defaultIdx = i
		} else if len(cc.List) != 1 {
			ladder = false
		}
	}

	if ladder {
		sel := cur
		for i, cc := range clauses {
			if cc.List == nil {
				continue
			}
			next := b.newBlock()
			b.condEdges(sel, cc.List[0], bodies[i], next)
			sel = next
		}
		if defaultIdx >= 0 {
			b.edge(sel, bodies[defaultIdx])
		} else {
			b.edge(sel, exit)
		}
	} else {
		for i, cc := range clauses {
			// Record tag-switch case expressions as uses so hooks still
			// fire on arithmetic inside them (no refinement attempted).
			for _, e := range cc.List {
				cur.stmts = append(cur.stmts, &ast.ExprStmt{X: e})
			}
			b.edge(cur, bodies[i])
		}
		if defaultIdx < 0 {
			b.edge(cur, exit)
		}
	}

	for i, cc := range clauses {
		end := b.stmtList(cc.Body, bodies[i])
		if end != nil && endsInFallthrough(cc.Body) && i+1 < len(bodies) {
			b.edge(end, bodies[i+1])
		} else {
			b.edge(end, exit)
		}
	}
	return exit
}

// endsInFallthrough reports whether a case body's last statement is
// fallthrough.
func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminalCall reports whether e is a call that never returns: the panic
// builtin (refining `if x < 0 { panic(...) }` to x ≥ 0 on the fall-through
// path) or the conventional never-returning stdlib exits.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return (pkg.Name == "os" && fun.Sel.Name == "Exit") ||
				(pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"))
		}
	}
	return false
}
