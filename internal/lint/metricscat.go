package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// Metricscat audits the observability catalogue end to end. The typed
// metric groups in internal/obs (structs named *Metrics with *Counter,
// *Gauge or *Histogram fields) are the contract between the solver and its
// dashboards; this analyzer closes the loop the compiler cannot:
//
//  1. Every catalogue field must be registered (assigned) somewhere — an
//     unregistered field is a nil pointer waiting for the first Inc.
//  2. Every registered field must also be recorded (read/Inc'd/observed)
//     somewhere reachable — an orphan metric is dashboard noise that decays
//     into a lie about coverage.
//  3. Prometheus family names passed to Registry.Counter/LabeledCounter/
//     Gauge/Histogram/DurationHistogram must be well-formed
//     ([a-z][a-z0-9_]*, counters ending _total) and unique per call site;
//     two sites registering the same family silently merge series.
//
// Group discovery and field diagnostics are confined to requested
// obs-segment packages; uses are counted anywhere in the loaded program, so
// a metric recorded in cmd/krspd still counts.
var Metricscat = &Analyzer{
	Name:       "metricscat",
	Doc:        "obs metric catalogue: no unregistered fields, no orphan metrics, well-formed unique family names",
	RunProgram: runMetricscat,
}

var familyNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metricField is one tracked catalogue field.
type metricField struct {
	obj        *types.Var
	structName string
	pos        token.Pos
}

func runMetricscat(pass *Pass) {
	prog := pass.Prog
	requested := map[*Package]bool{}
	for _, pkg := range prog.Requested {
		requested[pkg] = true
	}

	// Phase 1: discover catalogue fields in requested obs-segment packages.
	var fields []*metricField
	tracked := map[*types.Var]*metricField{}
	for _, pkg := range prog.Requested {
		if !pathHasSegment(pkg.Path, "obs") {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || !hasMetricsSuffix(ts.Name.Name) {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						v, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok || !isInstrumentType(v.Type()) {
							continue
						}
						mf := &metricField{obj: v, structName: ts.Name.Name, pos: name.Pos()}
						fields = append(fields, mf)
						tracked[v] = mf
					}
				}
				return true
			})
		}
	}

	// Phase 2: classify every use of a tracked field across the whole
	// program. An assignment LHS is a registration; ranging over an array
	// field is neutral (registerCatalogue loops over it); anything else —
	// Inc, Add, Observe, a read — is a record.
	registered := map[*types.Var]bool{}
	recorded := map[*types.Var]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			regPos := map[token.Pos]bool{}
			neutralPos := map[token.Pos]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if sel := baseSelector(lhs); sel != nil {
							regPos[sel.Pos()] = true
						}
					}
				case *ast.RangeStmt:
					if sel := baseSelector(n.X); sel != nil {
						neutralPos[sel.Pos()] = true
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v, ok := pkg.Info.ObjectOf(sel.Sel).(*types.Var)
				if !ok || tracked[v] == nil {
					return true
				}
				switch {
				case regPos[sel.Pos()]:
					registered[v] = true
				case neutralPos[sel.Pos()]:
				default:
					recorded[v] = true
				}
				return true
			})
		}
	}
	for _, mf := range fields {
		switch {
		case !registered[mf.obj]:
			pass.Reportf(mf.pos, "catalogue field %s.%s is never registered; the first Inc would dereference nil",
				mf.structName, mf.obj.Name())
		case !recorded[mf.obj]:
			pass.Reportf(mf.pos, "catalogue field %s.%s is registered but never recorded anywhere in the module (orphan metric)",
				mf.structName, mf.obj.Name())
		}
	}

	// Phase 3: family-name hygiene at Registry construction call sites in
	// requested packages.
	type familySite struct {
		pos  token.Pos
		name string
	}
	firstSite := map[string]token.Pos{}
	var sites []familySite
	for _, pkg := range prog.Requested {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !isMetricCtor(sel.Sel.Name) || len(call.Args) == 0 {
					return true
				}
				if !isObsRegistry(pkg.Info.TypeOf(sel.X)) {
					return true
				}
				arg := call.Args[0]
				tv := pkg.Info.Types[arg]
				if tv.Value == nil || tv.Value.Kind() != constant.String {
					if !isParamOfEnclosing(pkg.Info, f, call, arg) {
						pass.Reportf(arg.Pos(),
							"metric family passed to %s must be a constant string (or a parameter delegated from one)", sel.Sel.Name)
					}
					return true
				}
				name := constant.StringVal(tv.Value)
				if !familyNameRE.MatchString(name) {
					pass.Reportf(arg.Pos(), "metric family %q is not a well-formed Prometheus name (want [a-z][a-z0-9_]*)", name)
					return true
				}
				if (sel.Sel.Name == "Counter" || sel.Sel.Name == "LabeledCounter") && !hasTotalSuffix(name) {
					pass.Reportf(arg.Pos(), "counter family %q must end in _total (Prometheus naming convention)", name)
				}
				sites = append(sites, familySite{pos: arg.Pos(), name: name})
				return true
			})
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	for _, s := range sites {
		if prev, ok := firstSite[s.name]; ok && prev != s.pos {
			pass.Reportf(s.pos, "metric family %q is already registered at another call site (%s); two sites silently merge series",
				s.name, prog.Fset.Position(prev))
			continue
		}
		firstSite[s.name] = s.pos
	}
}

func hasMetricsSuffix(name string) bool {
	return len(name) > len("Metrics") && name[len(name)-len("Metrics"):] == "Metrics"
}

func hasTotalSuffix(name string) bool {
	return len(name) > len("_total") && name[len(name)-len("_total"):] == "_total"
}

// isInstrumentType reports whether t is *Counter/*Gauge/*Histogram (declared
// in an obs-segment package) or an array of such pointers.
func isInstrumentType(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		t = arr.Elem()
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathHasSegment(obj.Pkg().Path(), "obs") {
		return false
	}
	switch obj.Name() {
	case "Counter", "Gauge", "Histogram":
		return true
	}
	return false
}

func isMetricCtor(name string) bool {
	switch name {
	case "Counter", "LabeledCounter", "Gauge", "Histogram", "DurationHistogram":
		return true
	}
	return false
}

// isObsRegistry reports whether t is (a pointer to) a type named Registry
// declared in an obs-segment package.
func isObsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && pathHasSegment(obj.Pkg().Path(), "obs")
}

// baseSelector unwraps index/paren/star wrappers down to the selector at the
// root of an assignable expression, or nil.
func baseSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}

// isParamOfEnclosing reports whether arg is a bare identifier naming a
// parameter of the function declaration enclosing the call — the delegation
// shape Registry.Counter uses to forward its family to LabeledCounter.
func isParamOfEnclosing(info *types.Info, f *ast.File, call *ast.CallExpr, arg ast.Expr) bool {
	id, ok := arg.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	fd := enclosingFuncDecl(f, call.Pos())
	if fd == nil || fd.Type.Params == nil {
		return false
	}
	for _, fld := range fd.Type.Params.List {
		for _, name := range fld.Names {
			if info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}
