package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Boundsafe verifies the //krsp:inbounds contract: every slice/array index
// and slice expression in an annotated function must be discharged as
// in-range, so the CSR flat-array kernels cannot panic on index arithmetic
// and the compiler can eliminate their bounds checks (krsplint -bce audits
// the latter). Three discharge rules, strongest first:
//
//  1. interval — the dataflow engine (DESIGN.md §12) proves 0 ≤ idx < len
//     from guards, range bindings and len-relative facts;
//  2. typed — the index expression's static type is graph.NodeID or
//     graph.EdgeID. This encodes the frozen-CSR axiom: a CSR's packed
//     arrays are sized n(+1)/m at construction and never re-packed, and
//     the kernels only materialize IDs drawn from the view itself, so a
//     typed ID indexes its own view's arrays in range. The axiom is
//     assumed here, not proven — Instance.Validate and CSR.Validate
//     enforce it at runtime, and the BCE audit backstops the emitted code;
//  3. monotone-rows — a slice of the form X[Y[i]:Y[i+1]] (both bounds
//     indexing the same offsets array at adjacent positions) is the CSR
//     row pattern: row offsets ascend by construction, so low ≤ high and
//     the nonnegative-degree invariant holds without interval facts.
//
// Anything not discharged is a diagnostic; a genuinely cross-array
// invariant (workspace slices sized to the bound view) carries
// //lint:allow boundsafe <reason>. The analyzer also enforces coverage:
// every *_Into kernel in a solve-path package that takes a *graph.CSR
// must carry the contract.
var Boundsafe = &Analyzer{
	Name:       "boundsafe",
	Version:    1,
	Doc:        "prove index arithmetic in //krsp:inbounds kernels cannot go out of bounds",
	RunProgram: runBoundsafe,
}

func runBoundsafe(pass *Pass) {
	prog := pass.Prog
	ci := prog.contractIndex()
	cg := prog.buildCallGraph()
	e := prog.dataflow()

	requested := map[*Package]bool{}
	for _, pkg := range prog.Requested {
		requested[pkg] = true
	}

	for _, fn := range cg.order {
		site := cg.decls[fn]
		if site == nil || !requested[site.pkg] {
			continue
		}
		if pathHasAnySegment(site.pkg.Path, hotPackages) && isCSRKernel(fn) && !ci.has(fn, ContractInBounds) {
			pass.Reportf(site.fd.Name.Pos(),
				"CSR kernel %s lacks //krsp:inbounds; annotate the contract (boundsafe proves its index arithmetic stays in range)", fn.Name())
		}
		if !ci.has(fn, ContractInBounds) {
			continue
		}
		info := site.pkg.Info
		hooks := &dfHooks{
			index: func(n *ast.IndexExpr, idx ival, proven bool, env *absEnv) {
				if proven || typedGraphIndex(info, n.Index) {
					return
				}
				pass.Reportf(n.Lbrack,
					"cannot prove %s[%s] in bounds under //krsp:inbounds %s: index interval %s, no typed-ID or length fact; guard it or annotate //lint:allow boundsafe <invariant>",
					types.ExprString(n.X), types.ExprString(n.Index), fn.Name(), idx)
			},
			slice: func(n *ast.SliceExpr, proven bool, env *absEnv) {
				if proven || monotoneRowSlice(info, n) {
					return
				}
				pass.Reportf(n.Lbrack,
					"cannot prove slice bounds of %s in range under //krsp:inbounds %s; guard them or annotate //lint:allow boundsafe <invariant>",
					types.ExprString(n.X), fn.Name())
			},
		}
		e.analyze(fn, hooks)
	}
}

// isCSRKernel reports whether fn is a workspace kernel over a CSR view: the
// name carries the Into suffix and a parameter or the receiver is *graph.CSR.
func isCSRKernel(fn *types.Func) bool {
	name := fn.Name()
	if len(name) <= len("Into") || !strings.HasSuffix(name, "Into") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil && isCSRPtr(recv.Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isCSRPtr(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isCSRPtr(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "CSR" &&
		named.Obj().Pkg() != nil && pathHasSegment(named.Obj().Pkg().Path(), "graph")
}

// typedGraphIndex reports the typed-ID discharge: the index expression's
// static type is graph.NodeID or graph.EdgeID.
func typedGraphIndex(info *types.Info, idx ast.Expr) bool {
	tv, ok := info.Types[unparen(idx)]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = graphIndexType(tv.Type)
	return ok
}

// monotoneRowSlice reports the CSR row-pattern discharge for a slice
// expression X[Y[i] : Y[i+d]], d ∈ {0, 1}: both bounds index the same
// offsets array at the same or adjacent positions, so ascending row offsets
// give 0 ≤ low ≤ high ≤ len(X) by construction.
func monotoneRowSlice(info *types.Info, n *ast.SliceExpr) bool {
	if n.Slice3 || n.Low == nil || n.High == nil {
		return false
	}
	lo, ok := unparen(n.Low).(*ast.IndexExpr)
	if !ok {
		return false
	}
	hi, ok := unparen(n.High).(*ast.IndexExpr)
	if !ok {
		return false
	}
	if types.ExprString(lo.X) != types.ExprString(hi.X) {
		return false
	}
	lBase, lDelta, ok := indexParts(info, lo.Index)
	if !ok {
		return false
	}
	hBase, hDelta, ok := indexParts(info, hi.Index)
	if !ok {
		return false
	}
	return lBase == hBase && (hDelta == lDelta || hDelta == lDelta+1)
}

// indexParts splits an index expression into a rendered base plus a constant
// offset: v → (v, 0), v+1 → (v, 1), v-2 → (v, -2).
func indexParts(info *types.Info, e ast.Expr) (base string, delta int64, ok bool) {
	e = unparen(e)
	if b, isBin := e.(*ast.BinaryExpr); isBin && (b.Op == token.ADD || b.Op == token.SUB) {
		if k, isConst := constIndexOffset(info, b.Y); isConst {
			if b.Op == token.SUB {
				k = -k
			}
			return types.ExprString(b.X), k, true
		}
		if k, isConst := constIndexOffset(info, b.X); isConst && b.Op == token.ADD {
			return types.ExprString(b.Y), k, true
		}
		return "", 0, false
	}
	return types.ExprString(e), 0, true
}

func constIndexOffset(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
