package lint

import (
	"go/ast"
	"go/types"
)

// detPackages is the deterministic set: every package whose outputs must be
// bit-identical across runs and worker counts. Matching is by path segment
// so golden test packages mounted under these paths inherit the rules.
var detPackages = map[string]bool{
	"core": true, "bicameral": true, "residual": true, "graph": true,
	"flow": true, "rsp": true, "shortest": true, "gen": true,
}

// Detmap flags `range` over a map whose body performs an order-sensitive
// write in a deterministic package. Go randomizes map iteration order, so a
// body that appends to an outer slice, assigns to an outer variable or
// container, calls a builder/accumulator method on an outer value, or
// returns, produces run-dependent results — the exact failure mode that
// breaks bit-identical parallel solves. Writes to maps/sets and to
// variables scoped inside the loop are order-insensitive and are not
// flagged. Iterate a sorted key slice instead, or annotate provably
// order-insensitive uses with //lint:allow detmap <reason>.
var Detmap = &Analyzer{
	Name:      "detmap",
	Doc:       "flag order-sensitive writes under map iteration in deterministic packages",
	AppliesTo: func(path string) bool { return pathHasAnySegment(path, detPackages) },
	Run:       runDetmap,
}

// builderMethods are method names treated as order-sensitive accumulation.
// EdgeSet.Add is included: adding to a *set* is order-insensitive, but the
// analyzer cannot see through the method, so set-building under map ranges
// carries an explicit allow.
var builderMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Add": true, "Append": true, "Push": true,
}

func runDetmap(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderSensitiveWrite(info, rng); reason != "" {
				pass.Reportf(rng.For, "map iteration with order-sensitive write (%s); iterate sorted keys instead", reason)
			}
			return true
		})
	}
}

// orderSensitiveWrite scans the body of rng for the first construct whose
// effect depends on iteration order, returning a description or "".
func orderSensitiveWrite(info *types.Info, rng *ast.RangeStmt) string {
	declaredOutside := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	}
	reason := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			reason = "returns mid-iteration"
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch l := lhs.(type) {
				case *ast.Ident:
					if declaredOutside(l) {
						reason = "assigns to outer variable " + l.Name
					}
				case *ast.IndexExpr:
					// Index-assignment into a map is order-insensitive;
					// into a slice or array it is positional.
					if bt, ok := info.Types[l.X]; ok {
						if _, isMap := bt.Type.Underlying().(*types.Map); !isMap && declaredOutside(l.X) {
							reason = "writes into outer indexed container"
						}
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if declaredOutside(n.Args[0]) {
					reason = "appends to outer slice"
				}
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && builderMethods[sel.Sel.Name] {
				if declaredOutside(sel.X) {
					reason = "calls " + sel.Sel.Name + " on outer value"
				}
			}
		}
		return true
	})
	return reason
}

// rootIdent unwraps selectors/parens/indexing to the base identifier of an
// expression, or nil if it has none.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
