package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Report packages one Run's surviving diagnostics for rendering. Root, when
// nonempty, rewrites file paths relative to the module root so output is
// machine-stable across checkouts (CI diffing, SARIF artifact upload).
type Report struct {
	Root        string
	Diagnostics []Diagnostic
}

// relPath rewrites file relative to r.Root with forward slashes.
func (r Report) relPath(file string) string {
	if r.Root != "" {
		if rel, err := filepath.Rel(r.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// WriteText renders the classic one-line-per-diagnostic form.
func (r Report) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.StringRel(r.Root)); err != nil {
			return err
		}
	}
	return nil
}

// jsonDiagnostic is the stable machine-readable shape of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders the report as a JSON array (never null: an empty report
// is []), one object per diagnostic, in report order.
func (r Report) WriteJSON(w io.Writer) error {
	out := make([]jsonDiagnostic, 0, len(r.Diagnostics))
	for _, d := range r.Diagnostics {
		out = append(out, jsonDiagnostic{
			File:     r.relPath(d.Position.Filename),
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 document model — the minimal subset of the OASIS schema that
// GitHub code scanning and sarif-tools consume. Field names follow the
// specification exactly; sarifValidate (format_test.go) asserts the
// required-property skeleton so drift here fails the build, not the upload.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// WriteSARIF renders the report as a SARIF 2.1.0 log with one run. The rule
// table always lists the full registered suite (plus the "directive"
// pseudo-analyzer), so a clean run still publishes which checks were in
// force.
func (r Report) WriteSARIF(w io.Writer) error {
	rules := []sarifRule{{
		ID:               "directive",
		ShortDescription: sarifMessage{Text: "malformed //lint:allow directive"},
	}}
	for _, a := range All() {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(r.Diagnostics))
	for _, d := range r.Diagnostics {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: r.relPath(d.Position.Filename)},
					Region: sarifRegion{
						StartLine:   d.Position.Line,
						StartColumn: d.Position.Column,
					},
				},
			}},
		})
	}
	doc := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "krsplint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
