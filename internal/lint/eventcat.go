package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// Eventcat audits the flight-recorder event catalogue the same way
// metricscat audits the metric catalogue. The Kind enum and the `kinds`
// table in internal/obs/rec are the contract between the solver's Record
// call sites and every trace consumer (krsptrace, dashboards, goldens);
// this analyzer closes the loop the compiler cannot:
//
//  1. Every Kind constant (NumKinds aside) must have a catalogue row with
//     a nonempty wire name — a missing row serialises as the zero
//     KindInfo and silently drops the event's name and arguments from
//     dumps.
//  2. Wire names must be well-formed kebab-case ([a-z][a-z0-9-]*) and
//     unique — a duplicate makes KindByName resolve two kinds to one.
//  3. Every Recorder.Record call site must pass a declared Kind constant,
//     not a computed value — dumps of unknown kinds are skipped by
//     readers, so a dynamic kind is an event that silently vanishes.
//  4. Every declared kind must be recorded somewhere in the module — an
//     orphan kind is catalogue rot that decays into a lie about trace
//     coverage.
//
// Catalogue discovery and kind diagnostics are confined to requested
// rec-segment packages; Record call sites are scanned program-wide, so an
// event recorded only in internal/flow still counts.
var Eventcat = &Analyzer{
	Name:       "eventcat",
	Version:    1,
	Doc:        "flight-recorder event catalogue: every kind declared exactly once, kebab-case unique names, constant Record kinds, no orphan kinds",
	RunProgram: runEventcat,
}

var eventNameRE = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// eventKind is one tracked Kind constant.
type eventKind struct {
	obj *types.Const
	pos token.Pos
}

func runEventcat(pass *Pass) {
	prog := pass.Prog

	// Phase 1: discover Kind constants and the catalogue table in requested
	// rec-segment packages.
	kindsByValue := map[int64]*eventKind{}
	var kindOrder []*eventKind
	catalogued := map[*types.Const]token.Pos{}
	nameAt := map[string]token.Pos{}
	for _, pkg := range prog.Requested {
		if !pathHasSegment(pkg.Path, "rec") {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				vs, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for _, name := range vs.Names {
					c, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok || !isRecKind(c.Type()) || isBoundName(name.Name) {
						continue
					}
					v, ok := constant.Int64Val(c.Val())
					if !ok {
						continue
					}
					ek := &eventKind{obj: c, pos: name.Pos()}
					kindsByValue[v] = ek
					kindOrder = append(kindOrder, ek)
				}
				return true
			})
		}
		// The catalogue table: a composite literal of array-of-KindInfo
		// keyed by Kind constants. Validate each row's Name.
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok || !isKindInfoArray(pkg.Info.TypeOf(lit)) {
					return true
				}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						pass.Reportf(elt.Pos(), "catalogue entries must be keyed by Kind constant, not positional")
						continue
					}
					c := constOf(pkg.Info, kv.Key)
					if c == nil || !isRecKind(c.Type()) {
						pass.Reportf(kv.Key.Pos(), "catalogue key must be a declared Kind constant")
						continue
					}
					catalogued[c] = kv.Key.Pos()
					name, namePos, ok := kindInfoName(pkg.Info, kv.Value)
					if !ok || name == "" {
						pass.Reportf(kv.Key.Pos(), "catalogue entry for %s has no wire name", c.Name())
						continue
					}
					if !eventNameRE.MatchString(name) {
						pass.Reportf(namePos, "event name %q is not kebab-case (want [a-z][a-z0-9-]*)", name)
						continue
					}
					if prev, dup := nameAt[name]; dup {
						pass.Reportf(namePos, "event name %q is already used at %s; KindByName would resolve two kinds to one",
							name, prog.Fset.Position(prev))
						continue
					}
					nameAt[name] = namePos
				}
				return false
			})
		}
	}

	// Phase 2: scan Record call sites program-wide. The kind argument must
	// be a constant; constant kinds mark their Kind as recorded.
	recorded := map[int64]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Record" || !isRecRecorder(pkg.Info.TypeOf(sel.X)) {
					return true
				}
				tv := pkg.Info.Types[call.Args[0]]
				if tv.Value == nil || tv.Value.Kind() != constant.Int {
					pass.Reportf(call.Args[0].Pos(),
						"Record kind must be a declared Kind constant; a computed kind records events no reader can decode")
					return true
				}
				if v, ok := constant.Int64Val(tv.Value); ok {
					recorded[v] = true
				}
				return true
			})
		}
	}

	// Phase 3: close the loop over the declared kinds.
	for _, ek := range kindOrder {
		v, _ := constant.Int64Val(ek.obj.Val())
		if _, ok := catalogued[ek.obj]; !ok {
			pass.Reportf(ek.pos, "kind %s has no catalogue entry; its events would dump with the zero KindInfo",
				ek.obj.Name())
			continue
		}
		if !recorded[v] {
			pass.Reportf(ek.pos, "kind %s is catalogued but never passed to Record anywhere in the module (orphan kind)",
				ek.obj.Name())
		}
	}
}

// isBoundName reports enum-bound sentinels (NumKinds) that size arrays
// rather than name events.
func isBoundName(name string) bool {
	return len(name) >= 3 && name[:3] == "Num"
}

// isRecKind reports whether t is a type named Kind declared in a
// rec-segment package.
func isRecKind(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Kind" && obj.Pkg() != nil && pathHasSegment(obj.Pkg().Path(), "rec")
}

// isRecRecorder reports whether t is (a pointer to) a type named Recorder
// declared in a rec-segment package.
func isRecRecorder(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Recorder" && obj.Pkg() != nil && pathHasSegment(obj.Pkg().Path(), "rec")
}

// isKindInfoArray reports whether t is an array of a struct type named
// KindInfo declared in a rec-segment package.
func isKindInfoArray(t types.Type) bool {
	if t == nil {
		return false
	}
	arr, ok := t.Underlying().(*types.Array)
	if !ok {
		return false
	}
	named, ok := arr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "KindInfo" && obj.Pkg() != nil && pathHasSegment(obj.Pkg().Path(), "rec")
}

// constOf resolves an expression to the constant it names, or nil.
func constOf(info *types.Info, e ast.Expr) *types.Const {
	switch x := e.(type) {
	case *ast.Ident:
		c, _ := info.ObjectOf(x).(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := info.ObjectOf(x.Sel).(*types.Const)
		return c
	}
	return nil
}

// kindInfoName extracts the Name field's constant string from a KindInfo
// composite literal row.
func kindInfoName(info *types.Info, e ast.Expr) (string, token.Pos, bool) {
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return "", e.Pos(), false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Name" {
			continue
		}
		tv := info.Types[kv.Value]
		if tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", kv.Value.Pos(), false
		}
		return constant.StringVal(tv.Value), kv.Value.Pos(), true
	}
	return "", lit.Pos(), false
}
