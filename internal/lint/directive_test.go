package lint

import (
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text                  string
		analyzer, reason      string
		wantOK, wantMalformed bool
	}{
		{"//lint:allow detmap the caller sorts", "detmap", "the caller sorts", true, false},
		{"//lint:allow detmap", "", "", true, true},
		{"//lint:allow", "", "", true, true},
		{"//lint:allowance is not the directive", "", "", false, false},
		{"// regular comment", "", "", false, false},
		{"//lint:allow  ctxpoll   spaced   reason", "ctxpoll", "spaced reason", true, false},
	}
	for _, c := range cases {
		analyzer, reason, ok, err := parseAllow(c.text)
		if ok != c.wantOK || (err != nil) != c.wantMalformed {
			t.Errorf("parseAllow(%q): ok=%v err=%v, want ok=%v malformed=%v", c.text, ok, err, c.wantOK, c.wantMalformed)
			continue
		}
		if ok && err == nil && (analyzer != c.analyzer || reason != c.reason) {
			t.Errorf("parseAllow(%q) = %q,%q want %q,%q", c.text, analyzer, reason, c.analyzer, c.reason)
		}
	}
}

func TestParseContract(t *testing.T) {
	cases := []struct {
		text                  string
		kind                  Contract
		reason                string
		wantOK, wantMalformed bool
	}{
		{"//krsp:noalloc", ContractNoAlloc, "", true, false},
		{"//krsp:deterministic", ContractDeterministic, "", true, false},
		{"//krsp:inbounds", ContractInBounds, "", true, false},
		{"//krsp:inbounds(arg)", 0, "", true, true},
		{"//krsp:terminates(the walk closes in n steps)", ContractTerminates, "the walk closes in n steps", true, false},
		{"//krsp:terminates", 0, "", true, true},
		{"//krsp:terminates()", 0, "", true, true},
		{"//krsp:terminates(   )", 0, "", true, true},
		{"//krsp:noalloc(arg)", 0, "", true, true},
		{"//krsp:frobnicates(x)", 0, "", true, true},
		{"//krsp:guardedby(mu)", ContractGuardedBy, "mu", true, false},
		{"//krsp:guardedby( mu )", ContractGuardedBy, "mu", true, false},
		{"//krsp:guardedby", 0, "", true, true},
		{"//krsp:guardedby()", 0, "", true, true},
		{"//krsp:guardedby(t.mu)", 0, "", true, true},
		{"//krsp:guardedby(two words)", 0, "", true, true},
		{"//krsp:locked(mu)", ContractLocked, "mu", true, false},
		{"//krsp:locked", 0, "", true, true},
		{"//krsp:locked(7up)", 0, "", true, true},
		{"//krsp:detached(prober runs for process lifetime)", ContractDetached, "prober runs for process lifetime", true, false},
		{"//krsp:detached", 0, "", true, true},
		{"//krsp:detached()", 0, "", true, true},
		{"// plain comment", 0, "", false, false},
		{"//lint:allow detmap r", 0, "", false, false},
	}
	for _, c := range cases {
		kind, reason, ok, err := parseContract(c.text)
		if ok != c.wantOK || (err != nil) != c.wantMalformed {
			t.Errorf("parseContract(%q): ok=%v err=%v, want ok=%v malformed=%v", c.text, ok, err, c.wantOK, c.wantMalformed)
			continue
		}
		if ok && err == nil && (kind != c.kind || reason != c.reason) {
			t.Errorf("parseContract(%q) = %v,%q want %v,%q", c.text, kind, reason, c.kind, c.reason)
		}
	}
}

// FuzzDirectiveParser throws arbitrary comment text at both directive
// parsers and checks their structural invariants: no panics, prefix
// discipline (ok only for prefixed input), and no silent half-parse — a
// prefixed directive either parses fully or carries an error.
func FuzzDirectiveParser(f *testing.F) {
	seeds := []string{
		"//lint:allow detmap the caller sorts",
		"//lint:allow detmap",
		"//lint:allowance",
		"//krsp:noalloc",
		"//krsp:terminates(bounded by n)",
		"//krsp:terminates",
		"//krsp:terminates(",
		"//krsp:deterministic()",
		"//krsp:",
		"//krsp:noalloc extra",
		"// nothing",
		"",
		"//lint:allow\tctxpoll\ttabbed reason",
		"//krsp:terminates(()nested())",
		"//krsp:guardedby(mu)",
		"//krsp:guardedby(t.mu)",
		"//krsp:locked()",
		"//krsp:detached(serves until process exit)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, ok, err := parseAllow(text)
		if ok && !strings.HasPrefix(text, "//lint:allow") {
			t.Fatalf("parseAllow claimed ok for unprefixed %q", text)
		}
		if !ok && err != nil {
			t.Fatalf("parseAllow(%q): error without ok", text)
		}
		if ok && err == nil {
			if analyzer == "" || reason == "" {
				t.Fatalf("parseAllow(%q): well-formed directive with empty analyzer/reason", text)
			}
			if strings.ContainsAny(analyzer, " \t") {
				t.Fatalf("parseAllow(%q): analyzer %q contains whitespace", text, analyzer)
			}
		}
		kind, creason, cok, cerr := parseContract(text)
		if cok && !strings.HasPrefix(text, "//krsp:") {
			t.Fatalf("parseContract claimed ok for unprefixed %q", text)
		}
		if !cok && cerr != nil {
			t.Fatalf("parseContract(%q): error without ok", text)
		}
		if cok && cerr == nil {
			switch kind {
			case ContractNoAlloc, ContractDeterministic, ContractInBounds:
				if creason != "" {
					t.Fatalf("parseContract(%q): %v carries unexpected reason %q", text, kind, creason)
				}
			case ContractTerminates, ContractDetached:
				if creason == "" {
					t.Fatalf("parseContract(%q): %v with empty reason", text, kind)
				}
			case ContractGuardedBy, ContractLocked:
				if !isGoIdent(creason) {
					t.Fatalf("parseContract(%q): %v argument %q is not an identifier", text, kind, creason)
				}
			default:
				t.Fatalf("parseContract(%q): unknown kind %v parsed ok", text, kind)
			}
		}
	})
}
