package lint

import (
	"go/ast"
	"go/types"
)

// hotPackages is the solve path: packages whose kernels run inside the
// cancellation loop, the Lagrangian search and the budget sweeps, where
// per-call allocation is the dominant cost on small graphs (see DESIGN.md
// §7). Matching is by path segment, like detPackages.
var hotPackages = map[string]bool{
	"core": true, "bicameral": true, "residual": true, "flow": true,
	"shortest": true, "rsp": true, "auxgraph": true,
}

// Hotalloc enforces the zero-alloc kernel discipline on the solve path:
//
//  1. A call to an allocating kernel variant F is flagged when the callee's
//     package also provides FInto (the workspace variant). Convenience
//     wrappers (a function F whose own FInto sibling exists) are exempt —
//     they ARE the allocating variant, delegating inward.
//  2. Inside for/range loops of functions statically reachable from
//     core.Solve*, `make` calls and appends to slices declared empty in the
//     same loop are flagged: both allocate once per iteration and belong in
//     a Workspace.
//  3. Calls to (*graph.Digraph).Edges are flagged anywhere in a hot
//     package: Edges copies the whole edge slice per call, and every solve
//     kernel has an allocation-free alternative (EdgesView, or the packed
//     CSR view).
//
// Deliberate boundary allocations carry //lint:allow hotalloc <reason>.
var Hotalloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "flag allocating kernel calls and per-iteration allocation on the solve path",
	AppliesTo: func(path string) bool { return pathHasAnySegment(path, hotPackages) },
	Run:       runHotalloc,
}

func runHotalloc(pass *Pass) {
	info := pass.Pkg.Info
	scopeHasInto := func(scope *types.Scope, name string) bool {
		if scope == nil {
			return false
		}
		obj, ok := scope.Lookup(name + "Into").(*types.Func)
		_ = obj
		return ok
	}
	reachable := pass.Prog.buildCallGraph().reachable

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return true
			}
			if callee.Type().(*types.Signature).Recv() != nil {
				if callee.Name() == "Edges" && callee.Pkg() != nil && callee.Pkg().Name() == "graph" {
					pass.Reportf(call.Pos(), "(*graph.Digraph).Edges copies the edge slice on every call; range EdgesView (or the CSR view) on the solve path")
				}
				return true
			}
			if callee.Pkg() == nil || !scopeHasInto(callee.Pkg().Scope(), callee.Name()) {
				return true
			}
			// Wrapper exemption: inside F when FInto exists, delegation to
			// other allocating variants is the wrapper doing its one job.
			if enc := enclosingFuncDecl(f, call.Pos()); enc != nil && enc.Recv == nil &&
				scopeHasInto(pass.Pkg.Types.Scope(), enc.Name.Name) {
				return true
			}
			pass.Reportf(call.Pos(), "call to allocating kernel %s.%s; use %sInto with a Workspace on the solve path",
				callee.Pkg().Name(), callee.Name(), callee.Name())
			return true
		})
	}

	// Per-iteration allocations in functions reachable from core.Solve*.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok || !reachable[obj] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					body = loop.Body
				case *ast.RangeStmt:
					body = loop.Body
				default:
					return true
				}
				flagLoopAllocs(pass, info, body)
				return true
			})
		}
	}
}

// flagLoopAllocs reports make calls and appends-to-nil-slice inside one
// loop body (nested loops are visited by the caller's Inspect as well, so
// each loop flags only its direct statements to avoid duplicates).
func flagLoopAllocs(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// Slices declared empty inside this loop: `var x []T`.
	nilSlices := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if inNestedLoop(body, n) {
			return false
		}
		switch n := n.(type) {
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := info.Defs[name]; obj != nil {
						if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
							nilSlices[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make":
						pass.Reportf(n.Pos(), "make inside a solve-path loop allocates every iteration; hoist into a Workspace or preallocate")
					case "append":
						if len(n.Args) > 0 {
							if root := rootIdent(n.Args[0]); root != nil && nilSlices[info.ObjectOf(root)] {
								pass.Reportf(n.Pos(), "append to nil slice %s declared in this loop allocates every iteration; hoist and reuse with [:0]", root.Name)
							}
						}
					}
				}
			}
		}
		return true
	})
}

// inNestedLoop reports whether n sits inside a loop nested within outer
// (excluding outer itself), so the outer pass can skip it.
func inNestedLoop(outer *ast.BlockStmt, n ast.Node) bool {
	if n == nil {
		return false
	}
	nested := false
	ast.Inspect(outer, func(m ast.Node) bool {
		if nested || m == nil {
			return false
		}
		switch m.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if m.Pos() <= n.Pos() && n.End() <= m.End() && m != n {
				nested = true
			}
			return false
		}
		return true
	})
	return nested
}

// The static call graph, solve-path reachability and calleeFunc live in
// callgraph.go, shared with ctxpoll and the contracts analyzer.
