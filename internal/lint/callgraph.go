package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the whole-module interprocedural layer shared by every
// analyzer that reasons across calls: the solve-path reachability used by
// hotalloc and ctxpoll, and the transitive contract verification
// (//krsp:noalloc / terminates / deterministic) done by the contracts
// analyzer.
//
// The graph is static: calls are resolved through go/types to their
// declared *types.Func. Dynamic calls through function values (the Weight
// closures the kernels take) and interface method dispatch are not traced —
// the former's allocation/termination behaviour is charged to the closure's
// definition site, the latter shows up as an unverifiable callee where a
// contract needs to see through it. Function literals are inspected as part
// of their enclosing declaration, so a worker body inside a go statement
// still contributes its calls to the declaring function's out-edges.

// declSite pairs a function declaration with the type info of its package.
type declSite struct {
	fd   *ast.FuncDecl
	file *ast.File
	pkg  *Package
}

// callGraph is the module-wide static call graph: one node per function
// declaration loaded through the Program (dependencies included), with
// deterministic out-edge order.
type callGraph struct {
	fset *token.FileSet
	// decls maps every module-local declared function (and method) with a
	// body to its declaration site.
	decls map[*types.Func]*declSite
	// callees lists the statically-resolved callees of each declared
	// function, deduplicated and sorted by position for deterministic
	// traversal. Extern (non-module) callees are included; traversal
	// descends only into functions present in decls.
	callees map[*types.Func][]*types.Func
	// callPos records one representative call position per (caller, callee)
	// edge, for diagnostics.
	callPos map[[2]*types.Func]token.Pos
	// reachable marks functions statically reachable from the core.Solve*
	// roots — the "solve path" set hotalloc and ctxpoll police.
	reachable map[*types.Func]bool
	// order lists decls sorted by (file, position) so whole-graph scans are
	// deterministic.
	order []*types.Func
}

// buildCallGraph builds (once) and returns the program's call graph.
func (p *Program) buildCallGraph() *callGraph {
	if p.callGraph != nil {
		return p.callGraph
	}
	cg := &callGraph{
		fset:    p.Fset,
		decls:   map[*types.Func]*declSite{},
		callees: map[*types.Func][]*types.Func{},
		callPos: map[[2]*types.Func]token.Pos{},
	}
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						cg.decls[obj] = &declSite{fd: fd, file: f, pkg: pkg}
					}
				}
			}
		}
	}
	for obj, site := range cg.decls {
		seen := map[*types.Func]bool{}
		var out []*types.Func
		ast.Inspect(site.fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(site.pkg.Info, call)
			if callee == nil {
				return true
			}
			key := [2]*types.Func{obj, callee}
			if _, ok := cg.callPos[key]; !ok {
				cg.callPos[key] = call.Pos()
			}
			if !seen[callee] {
				seen[callee] = true
				out = append(out, callee)
			}
			return true
		})
		sort.Slice(out, func(i, j int) bool { return cg.less(out[i], out[j]) })
		cg.callees[obj] = out
	}
	for fn := range cg.decls {
		cg.order = append(cg.order, fn)
	}
	sort.Slice(cg.order, func(i, j int) bool { return cg.less(cg.order[i], cg.order[j]) })

	// Solve-path reachability: everything transitively callable from the
	// core package's Solve* entry points.
	var roots []*types.Func
	for _, fn := range cg.order {
		if fn.Pkg() != nil && pathHasSegment(fn.Pkg().Path(), "core") &&
			len(fn.Name()) >= 5 && fn.Name()[:5] == "Solve" {
			roots = append(roots, fn)
		}
	}
	cg.reachable = cg.closure(roots)

	p.callGraph = cg
	return cg
}

// less orders functions by declaration position (extern functions, which
// have no position in this fset, sort by package path and name).
func (cg *callGraph) less(a, b *types.Func) bool {
	da, db := cg.decls[a], cg.decls[b]
	switch {
	case da != nil && db != nil:
		pa, pb := cg.fset.Position(da.fd.Pos()), cg.fset.Position(db.fd.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	case da != nil:
		return true
	case db != nil:
		return false
	}
	ap, bp := pkgPathOf(a), pkgPathOf(b)
	if ap != bp {
		return ap < bp
	}
	return a.FullName() < b.FullName()
}

func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// closure returns the set of functions reachable from roots (roots
// included), descending only through declared module-local functions.
func (cg *callGraph) closure(roots []*types.Func) map[*types.Func]bool {
	reach := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reach[fn] {
			return
		}
		reach[fn] = true
		if _, ok := cg.decls[fn]; !ok {
			return
		}
		for _, c := range cg.callees[fn] {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return reach
}

// pathFrom returns a shortest call chain root → … → target (inclusive), or
// nil if target is unreachable from root. BFS over the sorted out-edges
// keeps the returned witness deterministic.
func (cg *callGraph) pathFrom(root, target *types.Func) []*types.Func {
	if root == target {
		return []*types.Func{root}
	}
	parent := map[*types.Func]*types.Func{root: nil}
	queue := []*types.Func{root}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if _, ok := cg.decls[fn]; !ok {
			continue
		}
		for _, c := range cg.callees[fn] {
			if _, seen := parent[c]; seen {
				continue
			}
			parent[c] = fn
			if c == target {
				var path []*types.Func
				for at := c; at != nil; at = parent[at] {
					path = append(path, at)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, c)
		}
	}
	return nil
}

// chainString renders a call path as "A → B → C" using bare function names.
func chainString(path []*types.Func) string {
	s := ""
	for i, fn := range path {
		if i > 0 {
			s += " → "
		}
		s += fn.Name()
	}
	return s
}

// calleeFunc resolves the static callee of a call, or nil for dynamic calls
// and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := info.ObjectOf(fun).(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return f
	}
	return nil
}
