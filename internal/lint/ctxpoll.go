package lint

import (
	"go/ast"
	"go/types"
)

// Ctxpoll enforces the anytime-solve contract introduced with SolveCtx: a
// deadline can only be honoured if every potentially long-running loop on
// the solve path reaches a cancellation point. A `for {}` / `for cond {}`
// loop (no init, no post — the shape of work-list drains, search ladders
// and fixpoint iterations whose trip count is input-dependent) inside a
// function statically reachable from core.Solve* must call Poll, Check or
// Stopped on a *cancel.Canceller somewhere in its condition or body —
// directly or through a nested loop. Loops whose trip count is structurally
// bounded (path walks over n vertices, peel loops that remove an edge per
// pass) document that bound with //krsp:terminates(<reason>) on the
// enclosing function — which the contracts analyzer then re-verifies
// transitively — or, for a single odd loop, //lint:allow ctxpoll <reason>.
var Ctxpoll = &Analyzer{
	Name:      "ctxpoll",
	Doc:       "unbounded solve-path loops must poll the Canceller",
	AppliesTo: func(path string) bool { return pathHasAnySegment(path, hotPackages) },
	Run:       runCtxpoll,
}

func runCtxpoll(pass *Pass) {
	info := pass.Pkg.Info
	reachable := pass.Prog.buildCallGraph().reachable
	contracts := pass.Prog.contractIndex()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok || !reachable[obj] {
				continue
			}
			// A //krsp:terminates(<reason>) contract subsumes the per-loop
			// allow: the bound is documented once on the function and the
			// contracts analyzer re-checks it transitively.
			if contracts.has(obj, ContractTerminates) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok || loop.Init != nil || loop.Post != nil {
					return true
				}
				if loopPollsCanceller(info, loop) {
					return true
				}
				pass.Reportf(loop.Pos(), "unbounded loop on the solve path never polls the Canceller; call Poll/Check/Stopped or annotate the bound with //lint:allow ctxpoll <reason>")
				return true
			})
		}
	}
}

// loopPollsCanceller reports whether the loop's condition or body contains
// a Poll/Check/Stopped call on a *cancel.Canceller. Nested function
// literals count: a DFS closure polling inside the walk keeps the outer
// drive loop honest.
func loopPollsCanceller(info *types.Info, loop *ast.ForStmt) bool {
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Poll", "Check", "Stopped":
		default:
			return true
		}
		if isCancellerType(info.TypeOf(sel.X)) {
			found = true
			return false
		}
		return true
	}
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, check)
	}
	ast.Inspect(loop.Body, check)
	return found
}

// isCancellerType reports whether t is cancel.Canceller or a pointer to it,
// identified by type name and defining-package segment so golden mounts
// and the real package both match.
func isCancellerType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Canceller" && obj.Pkg() != nil &&
		pathHasSegment(obj.Pkg().Path(), "cancel")
}
