package lint

import (
	"go/types"
	"strings"
	"testing"
)

// TestCSRKernelsCarryNoalloc pins the annotation coverage of the CSR kernel
// tier: every exported CSR *Into kernel in repro/internal/shortest must
// carry a (verified) //krsp:noalloc contract. The contracts analyzer would
// flag a MISSING annotation on any *Into function generically; this test
// additionally fails if the kernels are renamed or moved out of the
// solve-path package, so the bench-guard's flat-allocs claim for the CSR
// core keeps a compile-time witness.
func TestCSRKernelsCarryNoalloc(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow")
	}
	prog, err := NewProgram(".")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.LoadAll(); err != nil {
		t.Fatal(err)
	}
	ci := prog.contractIndex()
	want := map[string]bool{
		"DijkstraCSRInto":       false,
		"SPFAAllCSRInto":        false,
		"BellmanFordAllCSRInto": false,
	}
	for _, pkg := range prog.Packages {
		if !strings.HasSuffix(pkg.Path, "internal/shortest") {
			continue
		}
		scope := pkg.Types.Scope()
		for name := range want {
			fn, ok := scope.Lookup(name).(*types.Func)
			if !ok {
				t.Errorf("%s: CSR kernel missing from package %s", name, pkg.Path)
				continue
			}
			if !ci.has(fn, ContractNoAlloc) {
				t.Errorf("%s: lacks //krsp:noalloc", name)
				continue
			}
			if !ci.has(fn, ContractInBounds) {
				t.Errorf("%s: lacks //krsp:inbounds", name)
				continue
			}
			want[name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("%s: not found in any loaded shortest package", name)
		}
	}
}
